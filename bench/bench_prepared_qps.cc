// Prepared-statement QPS benchmark: real loopback round trips through
// the network front end (src/net), prepared-and-pipelined execution vs
// parse-per-query ad-hoc SQL, over N concurrent connections.
//
// Two workloads:
//   - point lookups (primary-index probe, ~16us of engine work) where
//     per-query parse/analyze/optimize dominates the unprepared path;
//   - selective scans (compiled full-table predicate) where engine work
//     is larger and the planning overhead proportionally smaller.
//
// The headline counter is speedup_vs_unprepared on the point-lookup
// entries (>= 5x expected: EXECUTE binds parameters into a cached plan
// and pipelines frames, QUERY re-plans from SQL text every round trip).
// Exact p50/p99 per-round-trip tails are reported for both modes.
//
// Like the other benches, writes machine-readable JSON (consumed by CI)
// to BENCH_prepared_qps.json unless --benchmark_out is given.
#include <algorithm>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "indexed/indexed_dataframe.h"
#include "net/client.h"
#include "net/server.h"
#include "service/query_service.h"

namespace idf {
namespace {

constexpr int64_t kTableRows = 100000;
// Point lookups are cheap enough to need volume; scans carry their own
// weight at a fraction of the count.
constexpr int kLookupsPerConn = 600;
constexpr int kScansPerConn = 60;
constexpr size_t kPipelineBurst = 64;

SchemaPtr PostSchema() {
  return Schema::Make({{"id", TypeId::kInt64, false},
                       {"creator", TypeId::kInt64, false},
                       {"content", TypeId::kString, false}});
}

RowVec MakeRows(int64_t begin, int64_t end) {
  RowVec rows;
  rows.reserve(static_cast<size_t>(end - begin));
  for (int64_t i = begin; i < end; ++i) {
    rows.push_back(
        {Value(i), Value(i % 1000), Value("content-" + std::to_string(i))});
  }
  return rows;
}

QueryServicePtr BuildService() {
  ServiceConfig cfg;
  cfg.max_inflight = 16;
  cfg.max_queue = 256;
  auto service = QueryService::Make(cfg).ValueOrDie();
  auto session = Session::Make(cfg.engine).ValueOrDie();
  auto df =
      session->CreateDataFrame(PostSchema(), MakeRows(0, kTableRows), "posts")
          .ValueOrDie();
  auto rel = IndexedDataFrame::CreateIndex(df, 0, "posts_by_id")
                 .ValueOrDie()
                 .relation();
  IDF_CHECK(service->RegisterTable("posts", rel).ok());
  return service;
}

uint64_t Pct(std::vector<uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  size_t rank = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

struct ModeResult {
  std::vector<uint64_t> latencies_us;  // sorted; one entry per round trip
  double qps = 0;
};

/// One workload template: SQL with a '?' hole, the matching ad-hoc
/// rendering, and the parameter stream.
struct Workload {
  std::string template_sql;
  int queries_per_conn;
  // The i-th parameter for connection c.
  std::function<int64_t(int c, int i)> param;
};

Workload PointLookups() {
  return {"SELECT content FROM posts WHERE id = ?", kLookupsPerConn,
          [](int c, int i) {
            return (static_cast<int64_t>(i) * 7919 + c * 13) % kTableRows;
          }};
}

Workload SelectiveScans() {
  // creator = k matches kTableRows/1000 rows: a compiled-predicate scan,
  // not an index probe — engine work dominates the round trip.
  return {"SELECT id FROM posts WHERE creator = ?", kScansPerConn,
          [](int c, int i) {
            return static_cast<int64_t>(i * 31 + c * 7) % 1000;
          }};
}

/// Prepared mode: prepare once per connection, execute pipelined bursts.
/// Per-round-trip latency is measured on the burst and amortized.
ModeResult RunPrepared(uint16_t port, int connections, const Workload& w) {
  std::vector<std::vector<uint64_t>> per_conn(
      static_cast<size_t>(connections));
  std::vector<std::thread> threads;
  const auto begin = std::chrono::steady_clock::now();
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      auto client = net::Client::Connect("127.0.0.1", port).ValueOrDie();
      net::PreparedReply prep = client->Prepare(w.template_sql).ValueOrDie();
      auto& lat = per_conn[static_cast<size_t>(c)];
      lat.reserve(static_cast<size_t>(w.queries_per_conn));
      for (int i = 0; i < w.queries_per_conn;) {
        std::vector<std::vector<Value>> burst;
        while (burst.size() < kPipelineBurst && i < w.queries_per_conn) {
          burst.push_back({Value(w.param(c, i++))});
        }
        const auto t0 = std::chrono::steady_clock::now();
        auto replies =
            client->ExecutePipelined(prep.handle, burst, /*busy_retries=*/50);
        const auto t1 = std::chrono::steady_clock::now();
        IDF_CHECK(replies.ok()) << replies.status().ToString();
        const uint64_t us = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                .count());
        for (size_t k = 0; k < burst.size(); ++k) {
          lat.push_back(us / burst.size());
        }
      }
      IDF_CHECK(client->Close(prep.handle).ok());
    });
  }
  for (std::thread& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();

  ModeResult result;
  for (auto& v : per_conn) {
    result.latencies_us.insert(result.latencies_us.end(), v.begin(), v.end());
  }
  std::sort(result.latencies_us.begin(), result.latencies_us.end());
  result.qps = static_cast<double>(result.latencies_us.size()) / secs;
  return result;
}

/// Unprepared mode: every round trip ships SQL text with the literal
/// spliced in; the server parses, analyzes, and optimizes per query.
ModeResult RunUnprepared(uint16_t port, int connections, const Workload& w) {
  std::vector<std::vector<uint64_t>> per_conn(
      static_cast<size_t>(connections));
  std::vector<std::thread> threads;
  const auto begin = std::chrono::steady_clock::now();
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      auto client = net::Client::Connect("127.0.0.1", port).ValueOrDie();
      auto& lat = per_conn[static_cast<size_t>(c)];
      lat.reserve(static_cast<size_t>(w.queries_per_conn));
      const size_t hole = w.template_sql.find('?');
      for (int i = 0; i < w.queries_per_conn; ++i) {
        std::string sql = w.template_sql;
        sql.replace(hole, 1, std::to_string(w.param(c, i)));
        const auto t0 = std::chrono::steady_clock::now();
        auto reply = client->Query(sql);
        const auto t1 = std::chrono::steady_clock::now();
        IDF_CHECK(reply.ok()) << reply.status().ToString();
        lat.push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                .count()));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();

  ModeResult result;
  for (auto& v : per_conn) {
    result.latencies_us.insert(result.latencies_us.end(), v.begin(), v.end());
  }
  std::sort(result.latencies_us.begin(), result.latencies_us.end());
  result.qps = static_cast<double>(result.latencies_us.size()) / secs;
  return result;
}

void RunWorkload(benchmark::State& state, const Workload& w) {
  const int connections = static_cast<int>(state.range(0));
  for (auto _ : state) {
    QueryServicePtr service = BuildService();
    auto server = net::Server::Start(service, net::ServerConfig{}).ValueOrDie();

    ModeResult unprepared = RunUnprepared(server->port(), connections, w);
    ModeResult prepared = RunPrepared(server->port(), connections, w);
    server->Stop();

    ServiceStats stats = service->Stats();
    state.counters["prepared_qps"] = prepared.qps;
    state.counters["unprepared_qps"] = unprepared.qps;
    state.counters["speedup_vs_unprepared"] = prepared.qps / unprepared.qps;
    state.counters["prepared_p50_us"] =
        static_cast<double>(Pct(prepared.latencies_us, 0.50));
    state.counters["prepared_p99_us"] =
        static_cast<double>(Pct(prepared.latencies_us, 0.99));
    state.counters["unprepared_p50_us"] =
        static_cast<double>(Pct(unprepared.latencies_us, 0.50));
    state.counters["unprepared_p99_us"] =
        static_cast<double>(Pct(unprepared.latencies_us, 0.99));
    // One plan build per connection; every EXECUTE after that binds into
    // the cached plan (plan_cache_hits counts the re-prepares).
    state.counters["statements_prepared"] =
        static_cast<double>(stats.statements_prepared);
    state.counters["plan_cache_hits"] =
        static_cast<double>(stats.plan_cache_hits);
    state.counters["prepared_executions"] =
        static_cast<double>(stats.prepared_executions);
    state.counters["prepared_replans"] =
        static_cast<double>(stats.prepared_replans);
    state.counters["busy_rejections"] =
        static_cast<double>(stats.net_busy_rejections);
  }
}

void BM_PointLookupRoundTrips(benchmark::State& state) {
  RunWorkload(state, PointLookups());
}

BENCHMARK(BM_PointLookupRoundTrips)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

void BM_SelectiveScanRoundTrips(benchmark::State& state) {
  RunWorkload(state, SelectiveScans());
}

BENCHMARK(BM_SelectiveScanRoundTrips)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

}  // namespace
}  // namespace idf

// Like BENCHMARK_MAIN(), but defaults to also writing machine-readable
// JSON results to BENCH_prepared_qps.json (consumed by CI) when the
// caller passes no --benchmark_out of their own.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_prepared_qps.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
