// CTrie microbenchmarks: insert/lookup/snapshot costs, and a comparison
// against std::unordered_map (the obvious non-concurrent alternative) to
// quantify what the lock-free snapshots cost.
#include <benchmark/benchmark.h>

#include <unordered_map>

#include "common/hash.h"
#include "ctrie/ctrie.h"

namespace idf {
namespace {

void BM_CTrieInsert(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    CTrie t;
    for (uint64_t i = 0; i < n; ++i) t.Insert(i, i);
    benchmark::DoNotOptimize(t.size_hint());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_CTrieInsert)->Arg(1000)->Arg(100000)->Unit(benchmark::kMicrosecond);

void BM_UnorderedMapInsert(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    std::unordered_map<uint64_t, uint64_t> m;
    for (uint64_t i = 0; i < n; ++i) m.emplace(i, i);
    benchmark::DoNotOptimize(m.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_UnorderedMapInsert)
    ->Arg(1000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_CTrieLookupHit(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  CTrie t;
  for (uint64_t i = 0; i < n; ++i) t.Insert(i, i);
  Random64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.Lookup(rng.Uniform(n)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CTrieLookupHit)->Arg(1000)->Arg(1000000);

void BM_UnorderedMapLookupHit(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  std::unordered_map<uint64_t, uint64_t> m;
  for (uint64_t i = 0; i < n; ++i) m.emplace(i, i);
  Random64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.find(rng.Uniform(n)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_UnorderedMapLookupHit)->Arg(1000)->Arg(1000000);

void BM_CTrieLookupMiss(benchmark::State& state) {
  CTrie t;
  for (uint64_t i = 0; i < 100000; ++i) t.Insert(i, i);
  Random64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.Lookup(1000000 + rng.Uniform(100000)));
  }
}
BENCHMARK(BM_CTrieLookupMiss);

// The headline property: snapshots are O(1) regardless of trie size.
void BM_CTrieSnapshot(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  CTrie t;
  for (uint64_t i = 0; i < n; ++i) t.Insert(i, i);
  for (auto _ : state) {
    CTrie snap = t.ReadOnlySnapshot();
    benchmark::DoNotOptimize(&snap);
    // Touch the live trie so the next snapshot isn't trivially identical.
    t.Insert(n + static_cast<uint64_t>(state.iterations()), 1);
  }
}
BENCHMARK(BM_CTrieSnapshot)->Arg(1000)->Arg(100000)->Arg(1000000);

// Write amplification after a snapshot: the first writes re-copy paths
// (lazy copy-on-write), later writes run at full speed.
void BM_CTrieInsertAfterSnapshot(benchmark::State& state) {
  CTrie t;
  for (uint64_t i = 0; i < 100000; ++i) t.Insert(i, i);
  std::vector<CTrie> snaps;
  uint64_t next = 100000;
  for (auto _ : state) {
    state.PauseTiming();
    snaps.push_back(t.ReadOnlySnapshot());
    state.ResumeTiming();
    // 100 writes immediately after a snapshot (pay the path-renewal cost).
    for (int i = 0; i < 100; ++i) t.Insert(next++, 1);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_CTrieInsertAfterSnapshot)->Unit(benchmark::kMicrosecond);

void BM_CTrieRemove(benchmark::State& state) {
  const uint64_t n = 100000;
  CTrie t;
  uint64_t next = 0;
  for (uint64_t i = 0; i < n; ++i) t.Insert(i, i);
  for (auto _ : state) {
    t.Remove(next % n);
    state.PauseTiming();
    t.Insert(next % n, 1);  // keep the trie populated
    state.ResumeTiming();
    ++next;
  }
}
BENCHMARK(BM_CTrieRemove);

}  // namespace
}  // namespace idf

BENCHMARK_MAIN();
