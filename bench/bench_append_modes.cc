// Append-mode ablation (paper §2: "the append rows operation can be
// performed both in a fine-grained and a batch-oriented mode by organizing
// the rows we need to append as a regular Spark Dataframe").
//
// Sweeps rows-per-append from 1 (lowest latency) to 10k (highest
// throughput) and reports per-row cost. BM_AppendBatchedVsPerRow is the
// acceptance benchmark of the partition-parallel batched write path:
// batched rows/sec vs a per-row baseline measured once at startup
// (speedup_vs_serial; >= 2x expected on a multi-core host).
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "common/logging.h"
#include "indexed/indexed_relation.h"
#include "sql/session.h"

namespace idf {
namespace {

SchemaPtr EdgeSchema() {
  return Schema::Make({{"src", TypeId::kInt64, false},
                       {"dst", TypeId::kInt64, false}});
}

void BM_AppendMode(benchmark::State& state) {
  const size_t batch_rows = static_cast<size_t>(state.range(0));
  EngineConfig cfg;
  cfg.num_partitions = 8;
  auto ctx = ExecutorContext::Make(cfg).ValueOrDie();
  auto rel =
      IndexedRelation::Build(*ctx, "append", EdgeSchema(), 0, {}).ValueOrDie();
  int64_t next = 0;
  RowVec batch;
  batch.reserve(batch_rows);
  for (auto _ : state) {
    state.PauseTiming();
    batch.clear();
    for (size_t i = 0; i < batch_rows; ++i, ++next) {
      batch.push_back({Value(next % 1000), Value(next)});
    }
    state.ResumeTiming();
    Status st = rel->AppendRows(*ctx, batch);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch_rows));
  state.counters["rows_per_append"] = static_cast<double>(batch_rows);
}

BENCHMARK(BM_AppendMode)
    ->Arg(1)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

// Row-batch size ablation (paper §2: "Both the batch and row sizes are
// configurable parameters"). Sweeps the batch size and measures bulk
// append throughput plus the batch count the store ends up with.
void BM_RowBatchSize(benchmark::State& state) {
  const size_t batch_bytes = static_cast<size_t>(state.range(0));
  EngineConfig cfg;
  cfg.num_partitions = 8;
  cfg.row_batch_bytes = batch_bytes;
  cfg.max_row_bytes = std::min<size_t>(1024, batch_bytes / 4);
  auto ctx = ExecutorContext::Make(cfg).ValueOrDie();
  constexpr size_t kRows = 100000;
  RowVec rows;
  rows.reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    rows.push_back({Value(static_cast<int64_t>(i % 5000)),
                    Value(static_cast<int64_t>(i))});
  }
  IndexedRelationPtr rel;
  for (auto _ : state) {
    rel = IndexedRelation::Build(*ctx, "bsize", EdgeSchema(), 0, rows)
              .ValueOrDie();
    benchmark::DoNotOptimize(rel->num_rows());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kRows));
  size_t batches = 0;
  for (int p = 0; p < rel->num_partitions(); ++p) {
    batches += rel->partition(p).store().num_batches();
  }
  state.counters["batch_KB"] = static_cast<double>(batch_bytes) / 1024;
  state.counters["num_batches"] = static_cast<double>(batches);
  state.counters["allocated_MB"] = [&] {
    size_t b = 0;
    for (int p = 0; p < rel->num_partitions(); ++p) {
      b += rel->partition(p).store().allocated_bytes();
    }
    return static_cast<double>(b) / (1024 * 1024);
  }();
}
BENCHMARK(BM_RowBatchSize)
    ->Arg(16 * 1024)
    ->Arg(256 * 1024)
    ->Arg(4 * 1024 * 1024)  // the paper's default
    ->Unit(benchmark::kMillisecond);

// Single-row direct append: the lowest-latency fine-grained path (no
// shuffle routing machinery).
void BM_AppendRowDirect(benchmark::State& state) {
  EngineConfig cfg;
  cfg.num_partitions = 8;
  auto ctx = ExecutorContext::Make(cfg).ValueOrDie();
  auto rel =
      IndexedRelation::Build(*ctx, "append1", EdgeSchema(), 0, {}).ValueOrDie();
  int64_t next = 0;
  for (auto _ : state) {
    Status st = rel->AppendRow({Value(next % 1000), Value(next)});
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    ++next;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AppendRowDirect)->Unit(benchmark::kMicrosecond);

// --- Batched vs per-row append throughput ------------------------------
//
// Same rows, two write paths: AppendRows (batch encoded off the locks, one
// lock acquisition per touched partition, one version bump) vs an
// AppendRow loop (per-row lock churn). The per-row baseline is measured
// once; batched runs report speedup_vs_serial against it.

constexpr size_t kThroughputRows = 20000;

RowVec ThroughputRows() {
  RowVec rows;
  rows.reserve(kThroughputRows);
  for (size_t i = 0; i < kThroughputRows; ++i) {
    rows.push_back({Value(static_cast<int64_t>(i % 2000)),
                    Value(static_cast<int64_t>(i))});
  }
  return rows;
}

double PerRowBaselineMs() {
  static const double baseline = [] {
    EngineConfig cfg;
    cfg.num_partitions = 8;
    auto ctx = ExecutorContext::Make(cfg).ValueOrDie();
    auto rel =
        IndexedRelation::Build(*ctx, "base", EdgeSchema(), 0, {}).ValueOrDie();
    RowVec rows = ThroughputRows();
    auto start = std::chrono::steady_clock::now();
    for (const Row& row : rows) IDF_CHECK_OK(rel->AppendRow(row));
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  }();
  return baseline;
}

void BM_AppendBatchedVsPerRow(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  EngineConfig cfg;
  cfg.num_partitions = 8;
  cfg.num_threads = threads;
  auto ctx = ExecutorContext::Make(cfg).ValueOrDie();
  const RowVec rows = ThroughputRows();
  const double baseline_ms = PerRowBaselineMs();
  double total_ms = 0;
  size_t iters = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto rel =
        IndexedRelation::Build(*ctx, "batched", EdgeSchema(), 0, {}).ValueOrDie();
    ctx->metrics().Reset();
    state.ResumeTiming();
    auto start = std::chrono::steady_clock::now();
    Status st = rel->AppendRows(*ctx, rows);
    total_ms += std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    ++iters;
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kThroughputRows));
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["partition_locks_per_batch"] =
      static_cast<double>(ctx->metrics().append_partition_locks());
  state.counters["rows_encoded_parallel"] =
      static_cast<double>(ctx->metrics().rows_appended_parallel());
  if (iters > 0 && total_ms > 0) {
    state.counters["speedup_vs_serial"] = baseline_ms / (total_ms / iters);
  }
}
BENCHMARK(BM_AppendBatchedVsPerRow)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace idf

// Like BENCHMARK_MAIN(), but defaults to also writing machine-readable
// JSON results to BENCH_append_modes.json (consumed by the perf-smoke CI
// job) when the caller passes no --benchmark_out of their own.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_append_modes.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
