// Standing-query benchmark: the case for incremental view maintenance
// with shared arrangements (DESIGN.md §13). N dashboards watching the
// same aggregate cost ONE delta propagation per commit when subscribed,
// versus N full executions per commit when polling from scratch — the
// headline counter is speedup_scratch_vs_standing (>= 10x expected at
// N=100). A second benchmark profiles per-commit propagation latency
// (commit start to subscriber callback) for each maintenance strategy:
// compiled select, grouped aggregate, indexed join.
//
// The from-scratch phase runs FIRST, against the smaller table; the
// standing phase then continues appending, so its per-commit cost is
// measured against a strictly larger table — the comparison is
// conservative in favor of from-scratch.
//
// Like the other benches, writes machine-readable JSON (consumed by CI)
// to BENCH_standing_queries.json unless --benchmark_out is given.
#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "indexed/indexed_dataframe.h"
#include "service/query_service.h"

namespace idf {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int64_t kSeedRows = 20000;
constexpr int64_t kBatchRows = 256;
constexpr int64_t kCreators = 200;
constexpr int kScratchCommits = 8;
constexpr int kStandingCommits = 50;

SchemaPtr PostSchema() {
  return Schema::Make({{"id", TypeId::kInt64, false},
                       {"creator", TypeId::kInt64, false},
                       {"score", TypeId::kInt64, false}});
}

SchemaPtr UserSchema() {
  return Schema::Make(
      {{"uid", TypeId::kInt64, false}, {"region", TypeId::kString, false}});
}

RowVec MakePosts(int64_t begin, int64_t end) {
  RowVec rows;
  rows.reserve(static_cast<size_t>(end - begin));
  for (int64_t i = begin; i < end; ++i) {
    rows.push_back({Value(i), Value(i % kCreators), Value((i * 7919) % 1000)});
  }
  return rows;
}

/// Service with posts indexed on creator (the join/group column) and, when
/// `with_users` is set, a users table indexed on uid so join views
/// maintain incrementally.
QueryServicePtr BuildService(bool with_users) {
  ServiceConfig cfg;
  cfg.max_inflight = 16;
  cfg.max_queue = 256;
  auto service = QueryService::Make(cfg).ValueOrDie();
  auto session = Session::Make(cfg.engine).ValueOrDie();
  auto df = session->CreateDataFrame(PostSchema(), MakePosts(0, kSeedRows),
                                     "posts")
                .ValueOrDie();
  auto rel = IndexedDataFrame::CreateIndex(df, 1, "posts_by_creator")
                 .ValueOrDie()
                 .relation();
  IDF_CHECK(service->RegisterTable("posts", rel).ok());
  if (with_users) {
    RowVec users;
    for (int64_t u = 0; u < kCreators; ++u) {
      users.push_back({Value(u), Value("region-" + std::to_string(u % 8))});
    }
    auto udf =
        session->CreateDataFrame(UserSchema(), std::move(users), "users")
            .ValueOrDie();
    auto urel = IndexedDataFrame::CreateIndex(udf, 0, "users_by_uid")
                    .ValueOrDie()
                    .relation();
    IDF_CHECK(service->RegisterTable("users", urel).ok());
  }
  return service;
}

double Pct(std::vector<double>& v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[static_cast<size_t>(q * static_cast<double>(v.size() - 1))];
}

/// N subscribers on one shared maintained aggregate vs N from-scratch
/// executions per commit. state.range(0) = subscriber count.
void BM_SharedViewVsFromScratch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::string sql =
      "SELECT creator, COUNT(*), SUM(score) FROM posts GROUP BY creator";
  for (auto _ : state) {
    QueryServicePtr service = BuildService(/*with_users=*/false);
    int64_t next = kSeedRows;

    // --- Phase 1: from-scratch — every commit, all N clients re-execute.
    auto scratch_start = Clock::now();
    for (int c = 0; c < kScratchCommits; ++c) {
      IDF_CHECK(service->Append("posts", MakePosts(next, next + kBatchRows))
                    .ok());
      next += kBatchRows;
      for (int i = 0; i < n; ++i) {
        QueryResult r = service->Execute(sql);
        IDF_CHECK(r.ok());
        benchmark::DoNotOptimize(r.rows.size());
      }
    }
    const double scratch_us_per_commit =
        std::chrono::duration<double, std::micro>(Clock::now() - scratch_start)
            .count() /
        kScratchCommits;

    // --- Phase 2: standing — N subscriptions share ONE arrangement; each
    // commit propagates one delta and every client reads lock-free.
    std::vector<double> prop_us;
    prop_us.reserve(kStandingCommits);
    Clock::time_point commit_start{};
    std::vector<ViewSubscriptionPtr> subs;
    subs.reserve(static_cast<size_t>(n));
    // The first subscriber's callback timestamps commit-to-publish.
    subs.push_back(service
                       ->Subscribe(sql,
                                   [&](const ViewSnapshot&) {
                                     prop_us.push_back(
                                         std::chrono::duration<double,
                                                               std::micro>(
                                             Clock::now() - commit_start)
                                             .count());
                                   })
                       .ValueOrDie());
    for (int i = 1; i < n; ++i) {
      subs.push_back(service->Subscribe(sql).ValueOrDie());
    }
    IDF_CHECK(service->views().num_views() == 1);

    auto standing_start = Clock::now();
    for (int c = 0; c < kStandingCommits; ++c) {
      commit_start = Clock::now();
      IDF_CHECK(service->Append("posts", MakePosts(next, next + kBatchRows))
                    .ok());
      next += kBatchRows;
      for (const auto& sub : subs) {
        benchmark::DoNotOptimize(sub->Snapshot()->rows->size());
      }
    }
    const double standing_us_per_commit =
        std::chrono::duration<double, std::micro>(Clock::now() -
                                                  standing_start)
            .count() /
        kStandingCommits;

    ServiceStats stats = service->Stats();
    for (const auto& sub : subs) IDF_CHECK(service->Unsubscribe(sub).ok());

    state.counters["scratch_us_per_commit"] = scratch_us_per_commit;
    state.counters["standing_us_per_commit"] = standing_us_per_commit;
    state.counters["speedup_scratch_vs_standing"] =
        scratch_us_per_commit / std::max(1.0, standing_us_per_commit);
    state.counters["propagation_p50_us"] = Pct(prop_us, 0.50);
    state.counters["propagation_p99_us"] = Pct(prop_us, 0.99);
    state.counters["arrangements_shared"] =
        static_cast<double>(stats.arrangements_shared);
    state.counters["rows_maintained"] =
        static_cast<double>(stats.rows_maintained_incrementally);
  }
}

BENCHMARK(BM_SharedViewVsFromScratch)
    ->Arg(10)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

/// Per-commit propagation latency by maintenance strategy: one subscriber,
/// callback-timed from just before Append to snapshot publish.
void BM_PropagationLatencyByKind(benchmark::State& state) {
  static const char* kSqls[] = {
      // compiled/vectorized select
      "SELECT id FROM posts WHERE score > 900",
      // grouped aggregate with resident state
      "SELECT creator, COUNT(*), SUM(score) FROM posts GROUP BY creator",
      // delta-probed indexed join
      "SELECT p.id, u.region FROM posts p JOIN users u ON p.creator = u.uid",
  };
  static const char* kKinds[] = {"select", "aggregate", "join"};
  const size_t which = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    QueryServicePtr service = BuildService(/*with_users=*/true);
    std::vector<double> prop_us;
    Clock::time_point commit_start{};
    auto sub = service
                   ->Subscribe(kSqls[which],
                               [&](const ViewSnapshot&) {
                                 prop_us.push_back(
                                     std::chrono::duration<double, std::micro>(
                                         Clock::now() - commit_start)
                                         .count());
                               })
                   .ValueOrDie();
    IDF_CHECK(std::string(ViewKindToString(sub->kind())) == kKinds[which]);

    int64_t next = kSeedRows;
    for (int c = 0; c < kStandingCommits; ++c) {
      commit_start = Clock::now();
      IDF_CHECK(service->Append("posts", MakePosts(next, next + kBatchRows))
                    .ok());
      next += kBatchRows;
    }
    IDF_CHECK(service->Unsubscribe(sub).ok());
    state.counters["propagation_p50_us"] = Pct(prop_us, 0.50);
    state.counters["propagation_p99_us"] = Pct(prop_us, 0.99);
    state.counters["commits"] = static_cast<double>(prop_us.size());
    state.SetLabel(kKinds[which]);
  }
}

BENCHMARK(BM_PropagationLatencyByKind)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

}  // namespace
}  // namespace idf

// Like BENCHMARK_MAIN(), but defaults to also writing machine-readable
// JSON results to BENCH_standing_queries.json (consumed by CI) when the
// caller passes no --benchmark_out of their own.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_standing_queries.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
