// Figure 3 reproduction: the seven SNB Interactive Short ("simple read")
// queries, Indexed DataFrame vs. vanilla execution.
//
// Paper result (SF300, log-scale axis): "The Indexed DataFrame speeds up
// all queries, with the exception of Q5 and Q6, which cannot make use of
// the index." Here the scale is IDF_SF (default 2); the shape — SQ1-SQ4
// and SQ7 sped up, SQ5/SQ6 at parity — is the reproduction target.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace idf {
namespace {

using bench::SharedSnbContext;

void RunShort(benchmark::State& state, bool indexed) {
  auto& ctx = SharedSnbContext();
  const int q = static_cast<int>(state.range(0));
  const int64_t param = snb::DefaultParam(ctx, q);
  size_t result_rows = 0;
  for (auto _ : state) {
    auto rows = snb::RunShortQuery(ctx, q, indexed, param);
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    result_rows = rows->size();
    benchmark::DoNotOptimize(rows->data());
  }
  state.counters["result_rows"] = static_cast<double>(result_rows);
  state.SetLabel(snb::ShortQueryDescription(q));
}

void BM_SNB_Vanilla(benchmark::State& state) { RunShort(state, false); }
void BM_SNB_IndexedDF(benchmark::State& state) { RunShort(state, true); }

BENCHMARK(BM_SNB_IndexedDF)
    ->DenseRange(1, 7)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SNB_Vanilla)
    ->DenseRange(1, 7)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace idf

BENCHMARK_MAIN();
