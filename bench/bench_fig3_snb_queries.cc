// Figure 3 reproduction: the seven SNB Interactive Short ("simple read")
// queries, Indexed DataFrame vs. vanilla execution.
//
// Paper result (SF300, log-scale axis): "The Indexed DataFrame speeds up
// all queries, with the exception of Q5 and Q6, which cannot make use of
// the index." Here the scale is IDF_SF (default 2); the shape — SQ1-SQ4
// and SQ7 sped up, SQ5/SQ6 at parity — is the reproduction target.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace idf {
namespace {

using bench::SharedSnbContext;

void RunShort(benchmark::State& state, bool indexed) {
  auto& ctx = SharedSnbContext();
  const int q = static_cast<int>(state.range(0));
  const int64_t param = snb::DefaultParam(ctx, q);
  size_t result_rows = 0;
  for (auto _ : state) {
    auto rows = snb::RunShortQuery(ctx, q, indexed, param);
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    result_rows = rows->size();
    benchmark::DoNotOptimize(rows->data());
  }
  state.counters["result_rows"] = static_cast<double>(result_rows);
  state.SetLabel(snb::ShortQueryDescription(q));
}

void BM_SNB_Vanilla(benchmark::State& state) { RunShort(state, false); }
void BM_SNB_IndexedDF(benchmark::State& state) { RunShort(state, true); }

BENCHMARK(BM_SNB_IndexedDF)
    ->DenseRange(1, 7)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SNB_Vanilla)
    ->DenseRange(1, 7)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace idf

// Like BENCHMARK_MAIN(), but defaults to also writing machine-readable
// JSON results to BENCH_fig3_snb_queries.json (consumed by the perf-smoke
// CI job) when the caller passes no --benchmark_out of their own.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_fig3_snb_queries.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
