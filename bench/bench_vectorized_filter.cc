// Batch-at-a-time vectorized evaluation (DESIGN.md §12) vs the row-at-a-
// time compiled interpreter, over the same encoded morsels:
//
//  - SelectiveScanKernel: the bare evaluation loop — gather + lane-wise
//    compare/Kleene + selection-vector append (FilterBatch) against
//    EvalEncoded called row by row on identical payload pointers. This
//    isolates the vectorization win from scan plumbing; its
//    speedup_vs_scalar counter is the headline number.
//  - SelectiveScan / FusedGroupBy: the full operators with
//    EngineConfig::vectorized_execution on vs off — what a query actually
//    sees, including flatten, morsel dispatch, and survivor decode.
//
// Sweeps selectivity via the `v < threshold` arg: 10 keeps ~1% (filter
// cost dominates), 500 keeps ~50% (decode amortizes the eval win).
#include <benchmark/benchmark.h>

#include <chrono>
#include <map>
#include <string>
#include <vector>

#include "common/logging.h"
#include "indexed/indexed_dataframe.h"
#include "indexed/indexed_operators.h"
#include "sql/session.h"
#include "sql/vectorized_eval.h"
#include "storage/row_batch.h"

namespace idf {
namespace {

constexpr int64_t kRows = 200000;

struct Fixture {
  SessionPtr vec_session;     // vectorized_execution = true (the default)
  SessionPtr scalar_session;  // vectorized_execution = false
  IndexedRelationPtr rel;     // {k, v, d, s, a, b}
  SchemaPtr schema;
};

Fixture& SharedFixture() {
  static Fixture* f = [] {
    auto fx = new Fixture();
    EngineConfig cfg;
    cfg.num_partitions = 8;
    fx->vec_session = Session::Make(cfg).ValueOrDie();
    cfg.vectorized_execution = false;
    fx->scalar_session = Session::Make(cfg).ValueOrDie();

    fx->schema = Schema::Make({{"k", TypeId::kInt64, false},
                               {"v", TypeId::kInt64, true},
                               {"d", TypeId::kFloat64, true},
                               {"s", TypeId::kString, false},
                               {"a", TypeId::kInt64, false},
                               {"b", TypeId::kFloat64, false}});
    RowVec rows;
    rows.reserve(kRows);
    for (int64_t i = 0; i < kRows; ++i) {
      rows.push_back({Value(i),
                      i % 97 == 0 ? Value::Null() : Value(i % 1000),
                      Value(0.5 * (i % 53)), Value("tag-" + std::to_string(i % 31)),
                      Value(i % 1024), Value(static_cast<double>(i % 7))});
    }
    auto df = fx->vec_session->CreateDataFrame(fx->schema, rows, "t").ValueOrDie();
    fx->rel = IndexedDataFrame::CreateIndex(df, 0, "t_by_k").ValueOrDie()
                  .relation();
    return fx;
  }();
  return *f;
}

// Three compiled comparisons and two Kleene ANDs per row; `v` carries
// NULLs so the tri-state path is exercised, not just the boolean one.
ExprPtr Predicate(int64_t threshold) {
  auto& fx = SharedFixture();
  return BindExpr(And(Lt(Col("v"), Lit(Value(threshold))),
                      And(Lt(Col("d"), Lit(Value(24.0))),
                          Ge(Col("b"), Lit(Value(1.0))))),
                  *fx.schema)
      .ValueOrDie();
}

// ---------------------------------------------------------------------------
// Kernel: FilterBatch vs row-at-a-time EvalEncoded on the same payloads
// ---------------------------------------------------------------------------

// Rows encoded back to back in one arena (the layout a RowBatch gives the
// operators), with the payload-pointer array the morsel drivers hand to
// FilterBatch.
struct EncodedColumn {
  std::vector<uint8_t> arena;
  std::vector<const uint8_t*> ptrs;
};

EncodedColumn& EncodedRows() {
  static EncodedColumn* enc = [] {
    auto& fx = SharedFixture();
    auto* e = new EncodedColumn();
    std::vector<size_t> offsets;
    offsets.reserve(kRows);
    for (int64_t i = 0; i < kRows; ++i) {
      Row row = {Value(i), i % 97 == 0 ? Value::Null() : Value(i % 1000),
                 Value(0.5 * (i % 53)), Value("tag-" + std::to_string(i % 31)),
                 Value(i % 1024), Value(static_cast<double>(i % 7))};
      std::vector<uint8_t> buf;
      IDF_CHECK_OK(EncodeRow(*fx.schema, row, &buf));
      offsets.push_back(e->arena.size());
      e->arena.insert(e->arena.end(), buf.begin(), buf.end());
    }
    e->ptrs.reserve(kRows);
    for (size_t off : offsets) e->ptrs.push_back(e->arena.data() + off);
    return e;
  }();
  return *enc;
}

// Per-iteration milliseconds of the row-at-a-time kernel, measured once
// per threshold and reused as the speedup baseline.
double ScalarKernelMs(int64_t threshold) {
  static std::map<int64_t, double> cache;
  auto it = cache.find(threshold);
  if (it != cache.end()) return it->second;
  auto& fx = SharedFixture();
  EncodedColumn& enc = EncodedRows();
  ExprPtr pred = Predicate(threshold);
  std::optional<CompiledPredicate> compiled =
      CompiledPredicate::Compile(pred, *fx.schema);
  IDF_CHECK(compiled.has_value());
  constexpr int kIters = 20;
  size_t kept = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int iter = 0; iter < kIters; ++iter) {
    for (const uint8_t* payload : enc.ptrs) {
      kept += compiled->EvalEncoded(payload) == TriBool::kTrue ? 1 : 0;
    }
  }
  const std::chrono::duration<double, std::milli> dt =
      std::chrono::steady_clock::now() - t0;
  benchmark::DoNotOptimize(kept);
  const double ms = dt.count() / kIters;
  cache[threshold] = ms;
  return ms;
}

void BM_SelectiveScanKernel_Vectorized(benchmark::State& state) {
  auto& fx = SharedFixture();
  EncodedColumn& enc = EncodedRows();
  ExprPtr pred = Predicate(state.range(0));
  std::optional<CompiledPredicate> compiled =
      CompiledPredicate::Compile(pred, *fx.schema);
  if (!compiled.has_value()) {
    state.SkipWithError("predicate unexpectedly not compilable");
    return;
  }
  VectorizedPredicate vec(*compiled);
  VectorScratch scratch;
  std::vector<uint32_t> sel(VectorizedPredicate::kBatchRows);
  size_t kept = 0;
  size_t iters = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    for (size_t base = 0; base < enc.ptrs.size();
         base += VectorizedPredicate::kBatchRows) {
      const size_t n =
          std::min(enc.ptrs.size() - base,
                   static_cast<size_t>(VectorizedPredicate::kBatchRows));
      kept += vec.FilterBatch(enc.ptrs.data() + base, n, sel.data(), &scratch);
    }
    ++iters;
  }
  const std::chrono::duration<double, std::milli> dt =
      std::chrono::steady_clock::now() - t0;
  benchmark::DoNotOptimize(kept);
  state.counters["rows"] = static_cast<double>(kRows);
  state.counters["scalar_ms"] = ScalarKernelMs(state.range(0));
  if (iters > 0 && dt.count() > 0) {
    state.counters["speedup_vs_scalar"] =
        ScalarKernelMs(state.range(0)) / (dt.count() / iters);
  }
}
BENCHMARK(BM_SelectiveScanKernel_Vectorized)
    ->Arg(10)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond);

void BM_SelectiveScanKernel_RowAtATime(benchmark::State& state) {
  auto& fx = SharedFixture();
  EncodedColumn& enc = EncodedRows();
  ExprPtr pred = Predicate(state.range(0));
  std::optional<CompiledPredicate> compiled =
      CompiledPredicate::Compile(pred, *fx.schema);
  IDF_CHECK(compiled.has_value());
  size_t kept = 0;
  for (auto _ : state) {
    for (const uint8_t* payload : enc.ptrs) {
      kept += compiled->EvalEncoded(payload) == TriBool::kTrue ? 1 : 0;
    }
  }
  benchmark::DoNotOptimize(kept);
  state.counters["rows"] = static_cast<double>(kRows);
}
BENCHMARK(BM_SelectiveScanKernel_RowAtATime)
    ->Arg(10)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Full operators: vectorized_execution on vs off
// ---------------------------------------------------------------------------

double TimeOp(const PhysicalOpPtr& op, ExecutorContext& ctx, int iters) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    auto parts = op->Execute(ctx);
    IDF_CHECK(parts.ok()) << parts.status().ToString();
    benchmark::DoNotOptimize(TotalRows(*parts));
  }
  const std::chrono::duration<double, std::milli> dt =
      std::chrono::steady_clock::now() - t0;
  return dt.count() / iters;
}

void RunOperatorPair(benchmark::State& state, const PhysicalOpPtr& op) {
  auto& fx = SharedFixture();
  // Scalar baseline measured once per benchmark (same op object — the
  // session's vectorized_execution flag selects the path inside Execute).
  const double scalar_ms = TimeOp(op, fx.scalar_session->exec(), 5);
  size_t iters = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    auto parts = op->Execute(fx.vec_session->exec());
    if (!parts.ok()) {
      state.SkipWithError(parts.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(TotalRows(*parts));
    ++iters;
  }
  const std::chrono::duration<double, std::milli> dt =
      std::chrono::steady_clock::now() - t0;
  state.counters["rows"] = static_cast<double>(kRows);
  state.counters["scalar_ms"] = scalar_ms;
  if (iters > 0 && dt.count() > 0) {
    state.counters["speedup_vs_scalar"] = scalar_ms / (dt.count() / iters);
  }
}

void BM_SelectiveScan_Vectorized(benchmark::State& state) {
  auto& fx = SharedFixture();
  ExprPtr pred = Predicate(state.range(0));
  auto op = std::make_shared<IndexedScanFilterOp>(
      fx.rel, pred,
      PushedFilter::FromSplit(SplitForCompilation(pred, *fx.schema)));
  fx.vec_session->metrics().Reset();
  RunOperatorPair(state, op);
  state.counters["rows_filtered_vectorized"] = static_cast<double>(
      fx.vec_session->metrics().rows_filtered_vectorized());
}
BENCHMARK(BM_SelectiveScan_Vectorized)
    ->Arg(10)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond);

void BM_FusedGroupBy_Vectorized(benchmark::State& state) {
  auto& fx = SharedFixture();
  ExprPtr pred = Predicate(state.range(0));
  std::vector<ExprPtr> groups = {BindExpr(Col("a"), *fx.schema).ValueOrDie()};
  std::vector<AggSpec> aggs = {
      CountStar("cnt"), SumOf(BindExpr(Col("v"), *fx.schema).ValueOrDie(), "sv"),
      MinOf(BindExpr(Col("d"), *fx.schema).ValueOrDie(), "mn"),
      MaxOf(BindExpr(Col("d"), *fx.schema).ValueOrDie(), "mx")};
  SchemaPtr out = Schema::Make({{"a", TypeId::kInt64, false},
                                {"cnt", TypeId::kInt64, false},
                                {"sv", TypeId::kInt64, true},
                                {"mn", TypeId::kFloat64, true},
                                {"mx", TypeId::kFloat64, true}});
  auto op = std::make_shared<IndexedScanAggregateOp>(
      fx.rel, pred, PushedFilter::FromSplit(SplitForCompilation(pred, *fx.schema)),
      groups, aggs, out);
  RunOperatorPair(state, op);
}
BENCHMARK(BM_FusedGroupBy_Vectorized)
    ->Arg(10)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond);

// Global (no groups) fused aggregate: the lane-accumulation fast path.
void BM_FusedGlobalAgg_Vectorized(benchmark::State& state) {
  auto& fx = SharedFixture();
  ExprPtr pred = Predicate(state.range(0));
  std::vector<AggSpec> aggs = {
      CountStar("cnt"), SumOf(BindExpr(Col("v"), *fx.schema).ValueOrDie(), "sv"),
      AvgOf(BindExpr(Col("d"), *fx.schema).ValueOrDie(), "ad")};
  SchemaPtr out = Schema::Make({{"cnt", TypeId::kInt64, false},
                                {"sv", TypeId::kInt64, true},
                                {"ad", TypeId::kFloat64, true}});
  auto op = std::make_shared<IndexedScanAggregateOp>(
      fx.rel, pred, PushedFilter::FromSplit(SplitForCompilation(pred, *fx.schema)),
      std::vector<ExprPtr>{}, aggs, out);
  RunOperatorPair(state, op);
}
BENCHMARK(BM_FusedGlobalAgg_Vectorized)
    ->Arg(10)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace idf

// Like BENCHMARK_MAIN(), but defaults to also writing machine-readable
// JSON results to BENCH_vectorized_filter.json (consumed by CI) when the
// caller passes no --benchmark_out of their own.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_vectorized_filter.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
