// Memory-overhead experiment (paper §2: "the Indexed DataFrame has a
// relatively low memory overhead in addition to the original data").
//
// Reports index bytes vs. data bytes across table size and key cardinality
// (cardinality drives chain length: few distinct keys = long backward
// chains but a small cTrie; unique keys = a cTrie entry per row).
#include <benchmark/benchmark.h>

#include "indexed/indexed_relation.h"
#include "sql/session.h"

namespace idf {
namespace {

SchemaPtr EdgeSchema() {
  return Schema::Make({{"src", TypeId::kInt64, false},
                       {"dst", TypeId::kInt64, false},
                       {"ts", TypeId::kTimestamp, false},
                       {"payload", TypeId::kString, false}});
}

RowVec EdgeRows(size_t n, size_t distinct_keys, size_t pad_bytes) {
  RowVec rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back({Value(static_cast<int64_t>(i % distinct_keys)),
                    Value(static_cast<int64_t>(i * 7)),
                    Value(static_cast<int64_t>(1500000000000000 + i)),
                    Value(std::string(pad_bytes, 'p'))});
  }
  return rows;
}

void BM_MemoryOverhead(benchmark::State& state) {
  const size_t rows_n = static_cast<size_t>(state.range(0));
  const size_t keys = static_cast<size_t>(state.range(1));
  const size_t pad = static_cast<size_t>(state.range(2));
  EngineConfig cfg;
  cfg.num_partitions = 8;
  auto ctx = ExecutorContext::Make(cfg).ValueOrDie();
  IndexedRelationPtr rel;
  for (auto _ : state) {
    rel = IndexedRelation::Build(*ctx, "mem", EdgeSchema(), 0,
                                 EdgeRows(rows_n, keys, pad))
              .ValueOrDie();
    benchmark::DoNotOptimize(rel->num_rows());
  }
  state.counters["data_MB"] =
      static_cast<double>(rel->data_bytes()) / (1024 * 1024);
  state.counters["index_MB"] =
      static_cast<double>(rel->index_bytes()) / (1024 * 1024);
  state.counters["overhead_ratio"] =
      static_cast<double>(rel->index_bytes()) /
      static_cast<double>(rel->data_bytes());
  // The arena also holds nodes retired by path-copying inserts; reported
  // separately as the cost of the no-free reclamation strategy.
  state.counters["arena_MB"] =
      static_cast<double>(rel->arena_bytes()) / (1024 * 1024);
  state.counters["distinct_keys"] = static_cast<double>(keys);
}

BENCHMARK(BM_MemoryOverhead)
    ->Args({100000, 100, 0})      // minimal rows, long chains, tiny trie
    ->Args({100000, 10000, 0})    // minimal rows, medium cardinality
    ->Args({100000, 100000, 0})   // minimal rows, unique keys (worst case)
    ->Args({100000, 100000, 100}) // 100-byte payloads, unique keys
    ->Args({100000, 100000, 500}) // ~0.5 KB rows (paper-like), unique keys
    ->Args({400000, 40000, 100})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace idf

BENCHMARK_MAIN();
