// Compiled predicate pushdown (DESIGN.md §9): the fused scan-filter
// evaluates a compiled program against the encoded payload and decodes
// only survivors, vs the interpreted baseline (generic FilterOp over an
// IndexedScan) that decodes every row before evaluating the predicate.
//
// Sweeps selectivity (selective ~1% vs non-selective ~50%) and row width
// (narrow 3-column vs wide 9-column with strings): the decode-avoiding
// win grows with both the reject rate and the cost of a decode.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "indexed/indexed_dataframe.h"
#include "indexed/indexed_operators.h"
#include "sql/session.h"

namespace idf {
namespace {

constexpr int64_t kRows = 200000;

struct Fixture {
  SessionPtr session;
  IndexedRelationPtr narrow;  // {k, v, d}
  IndexedRelationPtr wide;    // {k, v, d, 3 strings, 3 more numerics}
};

Fixture& SharedFixture() {
  static Fixture* f = [] {
    auto fx = new Fixture();
    EngineConfig cfg;
    cfg.num_partitions = 8;
    fx->session = Session::Make(cfg).ValueOrDie();

    auto narrow_schema = Schema::Make({{"k", TypeId::kInt64, false},
                                       {"v", TypeId::kInt64, false},
                                       {"d", TypeId::kFloat64, false}});
    RowVec rows;
    rows.reserve(kRows);
    for (int64_t i = 0; i < kRows; ++i) {
      rows.push_back({Value(i), Value(i % 1000), Value(0.5 * (i % 97))});
    }
    auto df =
        fx->session->CreateDataFrame(narrow_schema, rows, "narrow").ValueOrDie();
    fx->narrow =
        IndexedDataFrame::CreateIndex(df, 0, "narrow_idx").ValueOrDie().relation();

    auto wide_schema = Schema::Make({{"k", TypeId::kInt64, false},
                                     {"v", TypeId::kInt64, false},
                                     {"d", TypeId::kFloat64, false},
                                     {"s1", TypeId::kString, false},
                                     {"s2", TypeId::kString, false},
                                     {"s3", TypeId::kString, false},
                                     {"a", TypeId::kInt64, false},
                                     {"b", TypeId::kFloat64, false},
                                     {"c", TypeId::kInt32, false}});
    RowVec wide_rows;
    wide_rows.reserve(kRows);
    for (int64_t i = 0; i < kRows; ++i) {
      wide_rows.push_back({Value(i), Value(i % 1000), Value(0.5 * (i % 97)),
                           Value("payload-" + std::to_string(i % 997)),
                           Value("tag-" + std::to_string(i % 31)),
                           Value(std::string(24, 'x')), Value(i * 3),
                           Value(static_cast<double>(i)),
                           Value(static_cast<int32_t>(i % 7))});
    }
    auto wdf =
        fx->session->CreateDataFrame(wide_schema, wide_rows, "wide").ValueOrDie();
    fx->wide =
        IndexedDataFrame::CreateIndex(wdf, 0, "wide_idx").ValueOrDie().relation();
    return fx;
  }();
  return *f;
}

// `v < threshold` over v uniform in [0, 1000): threshold 10 keeps ~1%,
// threshold 500 keeps ~50%.
ExprPtr Predicate(const IndexedRelationPtr& rel, int64_t threshold) {
  return BindExpr(Lt(Col("v"), Lit(Value(threshold))), *rel->schema())
      .ValueOrDie();
}

void RunScanFilter(benchmark::State& state, const IndexedRelationPtr& rel,
                   bool compiled) {
  auto& fx = SharedFixture();
  ExprPtr pred = Predicate(rel, state.range(0));
  PhysicalOpPtr op;
  if (compiled) {
    PredicateSplit split = SplitForCompilation(pred, *rel->schema());
    if (!split.compiled.has_value()) {
      state.SkipWithError("predicate unexpectedly not compilable");
      return;
    }
    op = std::make_shared<IndexedScanFilterOp>(
        rel, pred, PushedFilter::FromSplit(std::move(split)));
  } else {
    op = std::make_shared<FilterOp>(std::make_shared<IndexedScanOp>(rel), pred);
  }
  fx.session->metrics().Reset();
  for (auto _ : state) {
    auto parts = op->Execute(fx.session->exec());
    if (!parts.ok()) {
      state.SkipWithError(parts.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(TotalRows(*parts));
  }
  state.counters["rows"] = static_cast<double>(kRows);
  state.counters["rows_filtered_encoded"] =
      static_cast<double>(fx.session->metrics().rows_filtered_encoded());
}

void BM_NarrowScan_Compiled(benchmark::State& state) {
  RunScanFilter(state, SharedFixture().narrow, /*compiled=*/true);
}
void BM_NarrowScan_Interpreted(benchmark::State& state) {
  RunScanFilter(state, SharedFixture().narrow, /*compiled=*/false);
}
void BM_WideScan_Compiled(benchmark::State& state) {
  RunScanFilter(state, SharedFixture().wide, /*compiled=*/true);
}
void BM_WideScan_Interpreted(benchmark::State& state) {
  RunScanFilter(state, SharedFixture().wide, /*compiled=*/false);
}

// Arg = filter threshold: 10 → ~1% selective, 500 → ~50% non-selective.
BENCHMARK(BM_NarrowScan_Compiled)->Arg(10)->Arg(500)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NarrowScan_Interpreted)
    ->Arg(10)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WideScan_Compiled)->Arg(10)->Arg(500)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WideScan_Interpreted)
    ->Arg(10)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond);

// Conjunction with an interpreter-only conjunct: the compiled part prunes
// on encoded bytes, LIKE runs only on survivors (the split fallback path).
void BM_WideScan_SplitResidual(benchmark::State& state) {
  auto& fx = SharedFixture();
  const IndexedRelationPtr& rel = fx.wide;
  ExprPtr pred = BindExpr(And(Lt(Col("v"), Lit(Value(state.range(0)))),
                              Like(Col("s1"), "payload-1%")),
                          *rel->schema())
                     .ValueOrDie();
  PredicateSplit split = SplitForCompilation(pred, *rel->schema());
  auto op = std::make_shared<IndexedScanFilterOp>(
      rel, pred, PushedFilter::FromSplit(std::move(split)));
  for (auto _ : state) {
    auto parts = op->Execute(fx.session->exec());
    if (!parts.ok()) {
      state.SkipWithError(parts.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(TotalRows(*parts));
  }
}
BENCHMARK(BM_WideScan_SplitResidual)
    ->Arg(10)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond);

// Filtered index lookup: residual pushed into the chain walk (multi-key
// IN-list probe with a residual range filter on a non-indexed column).
void BM_LookupWithPushedFilter(benchmark::State& state) {
  auto& fx = SharedFixture();
  const IndexedRelationPtr& rel = fx.narrow;
  std::vector<Value> keys;
  for (int64_t i = 0; i < 1000; ++i) keys.push_back(Value(i * 13 % kRows));
  ExprPtr pred = Predicate(rel, state.range(0));
  PushedFilter filter =
      PushedFilter::FromSplit(SplitForCompilation(pred, *rel->schema()));
  auto op = std::make_shared<IndexLookupOp>(rel, keys, std::move(filter));
  for (auto _ : state) {
    auto parts = op->Execute(fx.session->exec());
    if (!parts.ok()) {
      state.SkipWithError(parts.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(TotalRows(*parts));
  }
}
BENCHMARK(BM_LookupWithPushedFilter)
    ->Arg(10)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace idf

// Like BENCHMARK_MAIN(), but defaults to also writing machine-readable
// JSON results to BENCH_predicate_pushdown.json (consumed by CI) when the
// caller passes no --benchmark_out of their own.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_predicate_pushdown.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
