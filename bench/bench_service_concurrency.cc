// Service concurrency benchmark: N reader threads issuing point-lookup
// SQL through the QueryService, first against an idle table, then with a
// live appender streaming batches into the same table. Reports exact
// (sort-based) p50/p95/p99 reader latency for both phases and the
// live/idle p99 ratio — the demo's "low-latency queries on updatable
// data" claim quantified: MVCC snapshot pinning must keep reader tails
// within a small factor of the idle tails while the index ingests.
//
// Like the other benches, writes machine-readable JSON (consumed by CI)
// to BENCH_service_concurrency.json unless --benchmark_out is given.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "indexed/indexed_dataframe.h"
#include "service/query_service.h"

namespace idf {
namespace {

constexpr int64_t kTableRows = 100000;
constexpr int kQueriesPerReader = 400;
// The live append stream: one batch per millisecond. Small batches keep
// the epoch-gate hold (and thus the reader pin wait) short — the paper's
// streaming scenario, not a bulk load.
constexpr int64_t kAppendBatchRows = 128;
constexpr std::chrono::milliseconds kAppendInterval{1};

SchemaPtr PostSchema() {
  return Schema::Make({{"id", TypeId::kInt64, false},
                       {"creator", TypeId::kInt64, false},
                       {"content", TypeId::kString, false}});
}

RowVec MakeRows(int64_t begin, int64_t end) {
  RowVec rows;
  rows.reserve(static_cast<size_t>(end - begin));
  for (int64_t i = begin; i < end; ++i) {
    rows.push_back(
        {Value(i), Value(i % 1000), Value("content-" + std::to_string(i))});
  }
  return rows;
}

QueryServicePtr BuildService(size_t max_inflight) {
  ServiceConfig cfg;
  cfg.max_inflight = max_inflight;
  cfg.max_queue = 256;
  auto service = QueryService::Make(cfg).ValueOrDie();
  auto session = Session::Make(cfg.engine).ValueOrDie();
  auto df = session->CreateDataFrame(PostSchema(), MakeRows(0, kTableRows),
                                     "posts")
                .ValueOrDie();
  auto rel =
      IndexedDataFrame::CreateIndex(df, 0, "posts_by_id").ValueOrDie().relation();
  IDF_CHECK(service->RegisterTable("posts", rel).ok());
  return service;
}

uint64_t Pct(std::vector<uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  size_t rank = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

/// Runs `readers` threads of point lookups; returns sorted latencies (us).
/// With `appender_rows` non-null, a 1-thread append stream runs alongside
/// and its committed row count is reported there.
std::vector<uint64_t> RunReaders(const QueryServicePtr& service, int readers,
                                 int64_t* appender_rows) {
  std::atomic<bool> stop{false};
  std::thread appender;
  if (appender_rows != nullptr) {
    appender = std::thread([&] {
      int64_t next = kTableRows;
      while (!stop.load(std::memory_order_acquire)) {
        IDF_CHECK(
            service->Append("posts", MakeRows(next, next + kAppendBatchRows))
                .ok());
        next += kAppendBatchRows;
        std::this_thread::sleep_for(kAppendInterval);
      }
      *appender_rows = next - kTableRows;
    });
  }

  std::vector<std::vector<uint64_t>> per_reader(static_cast<size_t>(readers));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(readers));
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      std::vector<uint64_t>& lat = per_reader[static_cast<size_t>(r)];
      lat.reserve(kQueriesPerReader);
      for (int q = 0; q < kQueriesPerReader; ++q) {
        // Spread lookups over the whole id range, distinct per reader.
        int64_t id = (static_cast<int64_t>(q) * 7919 + r * 13) % kTableRows;
        QueryResult res = service->Execute(
            "SELECT content FROM posts WHERE id = " + std::to_string(id));
        IDF_CHECK(res.ok());
        IDF_CHECK(res.rows.size() == 1);
        lat.push_back(res.total_micros);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  stop.store(true, std::memory_order_release);
  if (appender.joinable()) appender.join();

  std::vector<uint64_t> all;
  all.reserve(static_cast<size_t>(readers) * kQueriesPerReader);
  for (const auto& v : per_reader) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  return all;
}

/// Idle phase then live-append phase over the same fresh service; exports
/// both latency profiles and the live/idle p99 ratio as counters.
void BM_ReadersUnderLiveAppend(benchmark::State& state) {
  const int readers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    QueryServicePtr service = BuildService(/*max_inflight=*/readers);

    std::vector<uint64_t> idle = RunReaders(service, readers, nullptr);
    int64_t appended = 0;
    std::vector<uint64_t> live = RunReaders(service, readers, &appended);

    state.counters["idle_p50_us"] = static_cast<double>(Pct(idle, 0.50));
    state.counters["idle_p95_us"] = static_cast<double>(Pct(idle, 0.95));
    state.counters["idle_p99_us"] = static_cast<double>(Pct(idle, 0.99));
    state.counters["live_p50_us"] = static_cast<double>(Pct(live, 0.50));
    state.counters["live_p95_us"] = static_cast<double>(Pct(live, 0.95));
    state.counters["live_p99_us"] = static_cast<double>(Pct(live, 0.99));
    const double idle_p99 = std::max(1.0, static_cast<double>(Pct(idle, 0.99)));
    state.counters["p99_ratio_live_vs_idle"] =
        static_cast<double>(Pct(live, 0.99)) / idle_p99;
    state.counters["appended_rows"] = static_cast<double>(appended);
    state.counters["queries"] = static_cast<double>(idle.size() + live.size());
  }
}

BENCHMARK(BM_ReadersUnderLiveAppend)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// Admission control under oversubscription: far more client threads than
/// slots. Everything must drain — queued or rejected, never stuck.
void BM_AdmissionOversubscribed(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ServiceConfig cfg;
    cfg.max_inflight = 4;
    cfg.max_queue = 8;
    QueryServicePtr service = BuildService(cfg.max_inflight);
    std::atomic<int64_t> ok{0};
    std::atomic<int64_t> rejected{0};
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (int q = 0; q < 25; ++q) {
          QueryResult r = service->Execute(
              "SELECT content FROM posts WHERE id = " +
              std::to_string((c * 101 + q) % kTableRows));
          if (r.ok()) {
            ok.fetch_add(1);
          } else {
            IDF_CHECK(r.status.IsCapacityError());
            rejected.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    state.counters["ok"] = static_cast<double>(ok.load());
    state.counters["rejected"] = static_cast<double>(rejected.load());
  }
}

BENCHMARK(BM_AdmissionOversubscribed)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

}  // namespace
}  // namespace idf

// Like BENCHMARK_MAIN(), but defaults to also writing machine-readable
// JSON results to BENCH_service_concurrency.json (consumed by CI) when
// the caller passes no --benchmark_out of their own.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_service_concurrency.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
