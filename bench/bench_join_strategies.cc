// Join-strategy ablation (paper §2, "Scheduling Physical Operators"):
// the indexed join shuffles the probe side to the index's partitioning,
// but "when the Dataframe size is small enough to be broadcasted
// efficiently, our implementation falls back to a broadcast-join".
//
// Sweeps the probe-side size to locate the broadcast/shuffle crossover and
// compares both indexed strategies against the vanilla shuffled hash join.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "indexed/indexed_dataframe.h"
#include "indexed/indexed_operators.h"
#include "sql/session.h"

namespace idf {
namespace {

struct Fixture {
  SessionPtr session;
  DataFrame build_df;           // 200k-row build side
  IndexedRelationPtr rel;       // same data, indexed
  SchemaPtr probe_schema;
};

Fixture& SharedFixture() {
  static Fixture* f = [] {
    auto fx = new Fixture();
    EngineConfig cfg;
    cfg.num_partitions = 8;
    fx->session = Session::Make(cfg).ValueOrDie();
    auto schema = Schema::Make({{"k", TypeId::kInt64, false},
                                {"payload", TypeId::kString, false}});
    RowVec rows;
    constexpr int64_t kBuildRows = 200000;
    for (int64_t i = 0; i < kBuildRows; ++i) {
      rows.push_back({Value(i % 50000), Value("p" + std::to_string(i % 997))});
    }
    auto df = fx->session->CreateDataFrame(schema, rows, "build").ValueOrDie();
    fx->build_df = df.Cache("build").ValueOrDie();
    auto idf = IndexedDataFrame::CreateIndex(df, 0, "build_idx").ValueOrDie();
    fx->rel = idf.relation();
    fx->probe_schema = Schema::Make({{"fk", TypeId::kInt64, false}});
    return fx;
  }();
  return *f;
}

DataFrame MakeProbe(Fixture& fx, int64_t n) {
  RowVec rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) rows.push_back({Value((i * 37) % 50000)});
  return fx.session->CreateDataFrame(fx.probe_schema, rows, "probe")
      .ValueOrDie();
}

// Indexed join with an explicitly chosen probe strategy (bypassing the
// planner's threshold so both strategies can be measured at every size).
void RunIndexedJoin(benchmark::State& state, bool broadcast_probe) {
  auto& fx = SharedFixture();
  const int64_t probe_n = state.range(0);
  DataFrame probe = MakeProbe(fx, probe_n);
  auto probe_plan = probe.plan();
  auto analyzed = fx.session->OptimizeOnly(probe_plan).ValueOrDie();
  auto probe_op = fx.session->PlanQuery(probe_plan).ValueOrDie();
  SchemaPtr out_schema =
      Schema::Concat(*fx.rel->schema(), *fx.probe_schema);
  ExprPtr probe_key = BindExpr(Col("fk"), *fx.probe_schema).ValueOrDie();
  auto join = std::make_shared<IndexedJoinOp>(fx.rel, probe_op, probe_key,
                                              /*indexed_on_left=*/true,
                                              broadcast_probe, out_schema);
  for (auto _ : state) {
    auto parts = join->Execute(fx.session->exec());
    if (!parts.ok()) {
      state.SkipWithError(parts.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(TotalRows(*parts));
  }
  state.counters["probe_rows"] = static_cast<double>(probe_n);
}

void BM_IndexedJoin_BroadcastProbe(benchmark::State& state) {
  RunIndexedJoin(state, /*broadcast_probe=*/true);
}
void BM_IndexedJoin_ShuffledProbe(benchmark::State& state) {
  RunIndexedJoin(state, /*broadcast_probe=*/false);
}

BENCHMARK(BM_IndexedJoin_BroadcastProbe)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IndexedJoin_ShuffledProbe)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Vanilla baseline at the same probe sizes (planner-selected strategy).
void BM_VanillaJoin(benchmark::State& state) {
  auto& fx = SharedFixture();
  DataFrame probe = MakeProbe(fx, state.range(0));
  for (auto _ : state) {
    auto joined = fx.build_df.Join(probe, "k", "fk").ValueOrDie();
    auto n = joined.Count();
    if (!n.ok()) {
      state.SkipWithError(n.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*n);
  }
  state.counters["probe_rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_VanillaJoin)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Vanilla strategy ablation (DESIGN.md §6): sort-merge join (Spark's
// default) vs shuffled hash join, both sides large so broadcast is out.
void RunVanillaStrategy(benchmark::State& state, bool prefer_smj) {
  EngineConfig cfg;
  cfg.num_partitions = 8;
  cfg.broadcast_threshold_bytes = 1;  // force the large-large path
  cfg.prefer_sort_merge_join = prefer_smj;
  auto session = Session::Make(cfg).ValueOrDie();
  auto schema = Schema::Make({{"k", TypeId::kInt64, false}});
  RowVec rows;
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) rows.push_back({Value(i % (n / 4 + 1))});
  auto left = session->CreateDataFrame(schema, rows, "l").ValueOrDie()
                  .Cache("l").ValueOrDie();
  auto right = session->CreateDataFrame(schema, rows, "r").ValueOrDie()
                   .Cache("r").ValueOrDie();
  for (auto _ : state) {
    auto joined = left.Join(right, "k", "k").ValueOrDie();
    auto count = joined.Count();
    if (!count.ok()) {
      state.SkipWithError(count.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*count);
  }
}
void BM_Vanilla_SortMergeJoin(benchmark::State& state) {
  RunVanillaStrategy(state, true);
}
void BM_Vanilla_ShuffledHashJoin(benchmark::State& state) {
  RunVanillaStrategy(state, false);
}
BENCHMARK(BM_Vanilla_SortMergeJoin)->Arg(50000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Vanilla_ShuffledHashJoin)->Arg(50000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace idf

// Like BENCHMARK_MAIN(), but defaults to also writing machine-readable
// JSON results to BENCH_join_strategies.json (consumed by CI) when the
// caller passes no --benchmark_out of their own.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_join_strategies.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
