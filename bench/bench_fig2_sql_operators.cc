// Figure 2 reproduction: SQL operators (Join, Filter, Equality Filter,
// Aggregation, Projection, Scan) on the Indexed DataFrame vs. vanilla
// Spark-style execution, all over cached in-memory data.
//
// Paper setup: "All the operators were applied to the person-knows-person
// tables, while the join is computed between person-knows-person and
// person tables", everything cached.
//
// Expected shape (paper Figure 2): join and equality filter are
// significantly faster on the Indexed DataFrame; scan / range filter /
// aggregation are comparable; projection is the one operator where vanilla
// wins, because its cache is columnar while the Indexed DataFrame stores
// rows.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "snb/datagen.h"

namespace idf {
namespace {

using bench::SharedSnbContext;

int64_t HotPerson() {
  return SharedSnbContext().dataset.first_person_id + 3;
}

int64_t MidDate() {
  return snb::SnbTimestamp(540);  // mid-window timestamp
}

// --- Join: person_knows_person JOIN person ---

void BM_Join_Vanilla(benchmark::State& state) {
  auto& ctx = SharedSnbContext();
  for (auto _ : state) {
    // Both relations exceed the (rescaled) broadcast threshold: Spark's
    // planner picks SortMergeJoin and shuffles + sorts both sides.
    auto joined = ctx.knows.Join(ctx.person, "person1Id", "id").ValueOrDie();
    benchmark::DoNotOptimize(joined.Count().ValueOrDie());
  }
}
BENCHMARK(BM_Join_Vanilla)->Unit(benchmark::kMillisecond);

void BM_Join_IndexedDF(benchmark::State& state) {
  auto& ctx = SharedSnbContext();
  for (auto _ : state) {
    // The indexed (large) knows table is the pre-built build side; only
    // the person probe side moves.
    auto joined =
        ctx.knows_by_person1->Join(ctx.person, "person1Id", "id").ValueOrDie();
    benchmark::DoNotOptimize(joined.Count().ValueOrDie());
  }
}
BENCHMARK(BM_Join_IndexedDF)->Unit(benchmark::kMillisecond);

// --- Filter (range, not index-usable) ---

void BM_Filter_Vanilla(benchmark::State& state) {
  auto& ctx = SharedSnbContext();
  for (auto _ : state) {
    auto f = ctx.knows.Filter(Gt(Col("creationDate"), Lit(Value(MidDate()))))
                 .ValueOrDie();
    benchmark::DoNotOptimize(f.Collect().ValueOrDie());
  }
}
BENCHMARK(BM_Filter_Vanilla)->Unit(benchmark::kMillisecond);

void BM_Filter_IndexedDF(benchmark::State& state) {
  auto& ctx = SharedSnbContext();
  for (auto _ : state) {
    auto f = ctx.knows_by_person1->ToDataFrame()
                 .Filter(Gt(Col("creationDate"), Lit(Value(MidDate()))))
                 .ValueOrDie();
    benchmark::DoNotOptimize(f.Collect().ValueOrDie());
  }
}
BENCHMARK(BM_Filter_IndexedDF)->Unit(benchmark::kMillisecond);

// --- Equality Filter (index-usable) ---

void BM_EqualityFilter_Vanilla(benchmark::State& state) {
  auto& ctx = SharedSnbContext();
  for (auto _ : state) {
    auto f = ctx.knows.Filter(Eq(Col("person1Id"), Lit(Value(HotPerson()))))
                 .ValueOrDie();
    benchmark::DoNotOptimize(f.Collect().ValueOrDie());
  }
}
BENCHMARK(BM_EqualityFilter_Vanilla)->Unit(benchmark::kMillisecond);

void BM_EqualityFilter_IndexedDF(benchmark::State& state) {
  auto& ctx = SharedSnbContext();
  for (auto _ : state) {
    auto f = ctx.knows_by_person1->ToDataFrame()
                 .Filter(Eq(Col("person1Id"), Lit(Value(HotPerson()))))
                 .ValueOrDie();
    benchmark::DoNotOptimize(f.Collect().ValueOrDie());
  }
}
BENCHMARK(BM_EqualityFilter_IndexedDF)->Unit(benchmark::kMillisecond);

// --- Aggregation ---

void BM_Aggregation_Vanilla(benchmark::State& state) {
  auto& ctx = SharedSnbContext();
  for (auto _ : state) {
    auto agg =
        ctx.knows.GroupByAgg({"person1Id"}, {CountStar("degree")}).ValueOrDie();
    benchmark::DoNotOptimize(agg.Count().ValueOrDie());
  }
}
BENCHMARK(BM_Aggregation_Vanilla)->Unit(benchmark::kMillisecond);

void BM_Aggregation_IndexedDF(benchmark::State& state) {
  auto& ctx = SharedSnbContext();
  for (auto _ : state) {
    auto agg = ctx.knows_by_person1->ToDataFrame()
                   .GroupByAgg({"person1Id"}, {CountStar("degree")})
                   .ValueOrDie();
    benchmark::DoNotOptimize(agg.Count().ValueOrDie());
  }
}
BENCHMARK(BM_Aggregation_IndexedDF)->Unit(benchmark::kMillisecond);

// --- Projection (vanilla's columnar cache should win) ---

void BM_Projection_Vanilla(benchmark::State& state) {
  auto& ctx = SharedSnbContext();
  for (auto _ : state) {
    auto p = ctx.knows.Select({"person2Id", "creationDate"}).ValueOrDie();
    benchmark::DoNotOptimize(p.Collect().ValueOrDie());
  }
}
BENCHMARK(BM_Projection_Vanilla)->Unit(benchmark::kMillisecond);

void BM_Projection_IndexedDF(benchmark::State& state) {
  auto& ctx = SharedSnbContext();
  for (auto _ : state) {
    auto p = ctx.knows_by_person1->ToDataFrame()
                 .Select({"person2Id", "creationDate"})
                 .ValueOrDie();
    benchmark::DoNotOptimize(p.Collect().ValueOrDie());
  }
}
BENCHMARK(BM_Projection_IndexedDF)->Unit(benchmark::kMillisecond);

// --- Scan ---

void BM_Scan_Vanilla(benchmark::State& state) {
  auto& ctx = SharedSnbContext();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.knows.Collect().ValueOrDie());
  }
}
BENCHMARK(BM_Scan_Vanilla)->Unit(benchmark::kMillisecond);

void BM_Scan_IndexedDF(benchmark::State& state) {
  auto& ctx = SharedSnbContext();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ctx.knows_by_person1->ToDataFrame().Collect().ValueOrDie());
  }
}
BENCHMARK(BM_Scan_IndexedDF)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace idf

BENCHMARK_MAIN();
