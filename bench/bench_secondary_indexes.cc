// Secondary-index probes (DESIGN.md §14) vs the vectorized scan over the
// same relation and predicates:
//
//  - RangeBetween: a BETWEEN over the sorted range index at 1% and 50%
//    selectivity. At 1% the costing rule picks the index probe and the
//    speedup_vs_scan counter is the headline number (>= 5x expected); at
//    50% the costing rule itself falls back to the vectorized scan in BOTH
//    sessions, so the ratio hovering near 1x is the "costing works"
//    signal, not a regression.
//  - BitmapIn: a two-key IN over the bitmap index on a 32-value column
//    (~6% selective).
//
// The scan baseline runs the identical query in a session whose
// secondary_probe_max_selectivity is 0 (probe rewrites disabled), so both
// paths include the same planning and decode plumbing and the delta is the
// access path alone.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "common/logging.h"
#include "indexed/indexed_dataframe.h"
#include "sql/session.h"

namespace idf {
namespace {

constexpr int64_t kRows = 500000;
constexpr int64_t kCats = 32;        // bitmap column cardinality
constexpr int64_t kScoreMax = 100000;  // range column domain [0, kScoreMax)

RowVec BenchRows() {
  RowVec rows;
  rows.reserve(kRows);
  for (int64_t i = 0; i < kRows; ++i) {
    // Deterministic pseudo-random spread (golden-ratio hash) so range
    // matches are scattered across batches, not clustered.
    const int64_t score = (i * 2654435761u) % kScoreMax;
    rows.push_back({Value(i), Value(i % kCats), Value(score),
                    Value("p" + std::to_string(i % 997))});
  }
  return rows;
}

struct Fixture {
  SessionPtr probe_session;  // costing rule live (default threshold)
  SessionPtr scan_session;   // secondary_probe_max_selectivity = 0
  DataFrame probe_df;
  DataFrame scan_df;
};

Fixture& SharedFixture() {
  static Fixture* f = [] {
    auto fx = new Fixture();
    EngineConfig cfg;
    cfg.num_partitions = 8;
    fx->probe_session = Session::Make(cfg).ValueOrDie();
    cfg.secondary_probe_max_selectivity = 0.0;  // disables probe rewrites
    fx->scan_session = Session::Make(cfg).ValueOrDie();

    SchemaPtr schema = Schema::Make({{"id", TypeId::kInt64, false},
                                     {"cat", TypeId::kInt64, true},
                                     {"score", TypeId::kInt64, true},
                                     {"pad", TypeId::kString, true}});
    RowVec rows = BenchRows();
    for (SessionPtr* s : {&fx->probe_session, &fx->scan_session}) {
      DataFrame df = (*s)->CreateDataFrame(schema, rows, "t").ValueOrDie();
      auto idf = IndexedDataFrame::CreateIndex(df, 0, "t_by_id").ValueOrDie();
      IDF_CHECK_OK(idf.relation()->AddSecondaryIndex(
          "cat", SecondaryIndexKind::kBitmap));
      IDF_CHECK_OK(idf.relation()->AddSecondaryIndex(
          "score", SecondaryIndexKind::kRange));
      DataFrame indexed = idf.ToDataFrame();
      if (s == &fx->probe_session) {
        fx->probe_df = indexed;
      } else {
        fx->scan_df = indexed;
      }
    }
    return fx;
  }();
  return *f;
}

/// BETWEEN predicate keeping ~`pct`% of the rows.
ExprPtr BetweenPct(int64_t pct) {
  const int64_t lo = kScoreMax / 3;
  const int64_t hi = lo + kScoreMax * pct / 100 - 1;
  return And(Ge(Col("score"), Lit(Value(lo))), Le(Col("score"), Lit(Value(hi))));
}

ExprPtr TwoKeyIn() {
  return Or(Eq(Col("cat"), Lit(Value(int64_t{3}))),
            Eq(Col("cat"), Lit(Value(int64_t{17}))));
}

/// Per-iteration milliseconds of `pred` in the scan-only session.
double ScanMs(const ExprPtr& pred, size_t* count) {
  auto& fx = SharedFixture();
  DataFrame q = fx.scan_df.Filter(pred).ValueOrDie();
  *count = q.Count().ValueOrDie();
  constexpr int kIters = 5;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    benchmark::DoNotOptimize(q.Count().ValueOrDie());
  }
  const std::chrono::duration<double, std::milli> dt =
      std::chrono::steady_clock::now() - t0;
  return dt.count() / kIters;
}

void RunProbeVsScan(benchmark::State& state, const ExprPtr& pred) {
  auto& fx = SharedFixture();
  size_t scan_count = 0;
  const double scan_ms = ScanMs(pred, &scan_count);
  DataFrame q = fx.probe_df.Filter(pred).ValueOrDie();
  const size_t probe_count = q.Count().ValueOrDie();
  IDF_CHECK(probe_count == scan_count)
      << "probe/scan disagree: " << probe_count << " vs " << scan_count;
  fx.probe_session->metrics().Reset();
  size_t iters = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.Count().ValueOrDie());
    ++iters;
  }
  const std::chrono::duration<double, std::milli> dt =
      std::chrono::steady_clock::now() - t0;
  const QueryMetrics& m = fx.probe_session->metrics();
  state.counters["rows"] = static_cast<double>(kRows);
  state.counters["matches"] = static_cast<double>(probe_count);
  state.counters["scan_ms"] = scan_ms;
  if (iters > 0) {
    state.counters["range_probes"] =
        static_cast<double>(m.range_probes()) / static_cast<double>(iters);
    state.counters["bitmap_probes"] =
        static_cast<double>(m.bitmap_probes()) / static_cast<double>(iters);
    state.counters["index_scans_avoided"] =
        static_cast<double>(m.index_scans_avoided()) /
        static_cast<double>(iters);
    if (dt.count() > 0) {
      state.counters["speedup_vs_scan"] = scan_ms / (dt.count() / iters);
    }
  }
}

void BM_RangeBetween(benchmark::State& state) {
  RunProbeVsScan(state, BetweenPct(state.range(0)));
}
BENCHMARK(BM_RangeBetween)->Arg(1)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_BitmapIn(benchmark::State& state) { RunProbeVsScan(state, TwoKeyIn()); }
BENCHMARK(BM_BitmapIn)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace idf

// Like BENCHMARK_MAIN(), but defaults to also writing machine-readable
// JSON results to BENCH_secondary_indexes.json (consumed by CI) when the
// caller passes no --benchmark_out of their own.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_secondary_indexes.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
