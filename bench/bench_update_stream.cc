// Continuously-growing-data experiment (paper §1/§4 demo scenario): a
// Kafka-style update stream keeps appending knows-edges while query
// threads run point lookups against MVCC snapshots. Reports append and
// query latency percentiles while the dataset grows.
#include <benchmark/benchmark.h>

#include "snb/tables.h"
#include "snb/update_stream.h"
#include "stream/streaming_driver.h"

#include "bench_common.h"

namespace idf {
namespace {

void BM_UpdateStreamWithQueries(benchmark::State& state) {
  const size_t rows_per_batch = static_cast<size_t>(state.range(0));
  const int query_threads = static_cast<int>(state.range(1));

  for (auto _ : state) {
    state.PauseTiming();
    // Fresh relation per iteration so growth is comparable across runs.
    EngineConfig cfg;
    cfg.num_partitions = 8;
    auto session = Session::Make(cfg).ValueOrDie();
    snb::SnbConfig scfg;
    scfg.scale_factor = 0.5;
    auto ds = snb::GenerateSnb(scfg);
    auto knows_df =
        session->CreateDataFrame(snb::KnowsSchema(), ds.knows, "knows")
            .ValueOrDie();
    auto idf = IndexedDataFrame::CreateIndex(knows_df, snb::knows::kPerson1,
                                             "knows_stream")
                   .ValueOrDie()
                   .Cache();
    snb::UpdateStreamGenerator gen(ds);
    Value hot_key(ds.first_person_id + 1);
    StreamingConfig stream_cfg;
    stream_cfg.num_batches = 4000 / rows_per_batch + 1;
    stream_cfg.rows_per_batch = rows_per_batch;
    stream_cfg.num_query_threads = query_threads;
    state.ResumeTiming();

    auto report = RunStreamingWorkload(
        idf,
        [&gen, rows_per_batch](size_t) {
          return gen.NextKnowsBatch(rows_per_batch / 2 + 1);
        },
        [&idf, &hot_key]() { return idf.GetRows(hot_key).Collect().status(); },
        stream_cfg);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    state.counters["append_p50_us"] = report->append_latency.Percentile(50);
    state.counters["append_p99_us"] = report->append_latency.Percentile(99);
    state.counters["query_p50_us"] = report->query_latency.Percentile(50);
    state.counters["query_p99_us"] = report->query_latency.Percentile(99);
    state.counters["queries_run"] = static_cast<double>(report->queries_run);
    state.counters["rows_appended"] =
        static_cast<double>(report->rows_appended);
  }
}

BENCHMARK(BM_UpdateStreamWithQueries)
    ->Args({10, 1})    // fine-grained appends, one query thread
    ->Args({100, 1})   // batched appends
    ->Args({10, 2})    // more query pressure
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace idf

BENCHMARK_MAIN();
