// Continuously-growing-data experiment (paper §1/§4 demo scenario): a
// Kafka-style update stream keeps appending knows-edges while query
// threads run point lookups against MVCC snapshots. Reports append and
// query latency percentiles while the dataset grows.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "indexed/compactor.h"
#include "snb/tables.h"
#include "snb/update_stream.h"
#include "stream/streaming_driver.h"

#include "bench_common.h"

namespace idf {
namespace {

void BM_UpdateStreamWithQueries(benchmark::State& state) {
  const size_t rows_per_batch = static_cast<size_t>(state.range(0));
  const int query_threads = static_cast<int>(state.range(1));

  for (auto _ : state) {
    state.PauseTiming();
    // Fresh relation per iteration so growth is comparable across runs.
    EngineConfig cfg;
    cfg.num_partitions = 8;
    auto session = Session::Make(cfg).ValueOrDie();
    snb::SnbConfig scfg;
    scfg.scale_factor = 0.5;
    auto ds = snb::GenerateSnb(scfg);
    auto knows_df =
        session->CreateDataFrame(snb::KnowsSchema(), ds.knows, "knows")
            .ValueOrDie();
    auto idf = IndexedDataFrame::CreateIndex(knows_df, snb::knows::kPerson1,
                                             "knows_stream")
                   .ValueOrDie()
                   .Cache();
    snb::UpdateStreamGenerator gen(ds);
    Value hot_key(ds.first_person_id + 1);
    StreamingConfig stream_cfg;
    stream_cfg.num_batches = 4000 / rows_per_batch + 1;
    stream_cfg.rows_per_batch = rows_per_batch;
    stream_cfg.num_query_threads = query_threads;
    state.ResumeTiming();

    auto report = RunStreamingWorkload(
        idf,
        [&gen, rows_per_batch](size_t) {
          return gen.NextKnowsBatch(rows_per_batch / 2 + 1);
        },
        [&idf, &hot_key]() { return idf.GetRows(hot_key).Collect().status(); },
        stream_cfg);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    state.counters["append_p50_us"] = report->append_latency.Percentile(50);
    state.counters["append_p99_us"] = report->append_latency.Percentile(99);
    state.counters["query_p50_us"] = report->query_latency.Percentile(50);
    state.counters["query_p99_us"] = report->query_latency.Percentile(99);
    state.counters["queries_run"] = static_cast<double>(report->queries_run);
    state.counters["rows_appended"] =
        static_cast<double>(report->rows_appended);
  }
}

BENCHMARK(BM_UpdateStreamWithQueries)
    ->Args({10, 1})    // fine-grained appends, one query thread
    ->Args({100, 1})   // batched appends
    ->Args({10, 2})    // more query pressure
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// --- Sustained appends: lookup p99 with compaction on vs off -----------
//
// A hot key is appended to by every batch, so its chain fragments across
// one row batch per append; the point-lookup chain walk degrades with the
// batch span. With the background Compactor on, chains are periodically
// rewritten key-clustered and the lookup p99 stays bounded. Counters:
// lookup_p99_us, mean_batch_span (at the end of the run), compactions_run.
void BM_SustainedAppendLookupP99(benchmark::State& state) {
  const bool compaction_on = state.range(0) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    EngineConfig cfg;
    cfg.num_partitions = 4;
    cfg.row_batch_bytes = 16 * 1024;  // small batches: worst-case spans
    auto ctx = ExecutorContext::Make(cfg).ValueOrDie();
    auto schema = Schema::Make(
        {{"k", TypeId::kInt64, false}, {"v", TypeId::kInt64, false}});
    auto rel =
        IndexedRelation::Build(*ctx, "stream", schema, 0, {}).ValueOrDie();
    CompactionConfig ccfg;
    ccfg.max_mean_batch_span = 4.0;
    ccfg.min_partition_rows = 1024;
    ccfg.interval = std::chrono::milliseconds(10);
    Compactor compactor(rel, ccfg);
    if (compaction_on) compactor.Start();

    constexpr int kBatches = 400;
    constexpr size_t kRowsPerBatch = 200;
    constexpr int64_t kKeys = 16;  // every batch extends every chain
    std::atomic<bool> done{false};
    std::thread appender([&] {
      int64_t next = 0;
      for (int b = 0; b < kBatches; ++b) {
        RowVec rows;
        rows.reserve(kRowsPerBatch);
        for (size_t i = 0; i < kRowsPerBatch; ++i, ++next) {
          rows.push_back({Value(next % kKeys), Value(next)});
        }
        IDF_CHECK_OK(rel->AppendRows(*ctx, rows));
      }
      done.store(true, std::memory_order_release);
    });

    Value hot_key(int64_t{1});
    std::vector<double> lookup_us;
    lookup_us.reserve(1 << 16);
    state.ResumeTiming();
    while (!done.load(std::memory_order_acquire)) {
      auto start = std::chrono::steady_clock::now();
      RowVec rows = rel->GetRows(hot_key);
      lookup_us.push_back(std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - start)
                              .count());
      benchmark::DoNotOptimize(rows.size());
    }
    state.PauseTiming();
    appender.join();
    compactor.Stop();
    if (compaction_on) {
      // The stream ends mid-interval; a catch-up pass settles the steady
      // state the background thread maintains under a longer stream.
      IDF_CHECK_OK(compactor.RunOnce().status());
    }
    compactor.DrainRetired();

    std::sort(lookup_us.begin(), lookup_us.end());
    auto pct = [&](double p) {
      if (lookup_us.empty()) return 0.0;
      size_t i = static_cast<size_t>(p / 100.0 *
                                     static_cast<double>(lookup_us.size() - 1));
      return lookup_us[i];
    };
    state.counters["lookup_p50_us"] = pct(50);
    state.counters["lookup_p99_us"] = pct(99);
    state.counters["lookups_run"] = static_cast<double>(lookup_us.size());
    state.counters["mean_batch_span"] = rel->ChainStats().MeanBatchSpan();
    state.counters["compactions_run"] =
        static_cast<double>(compactor.stats().compactions_run);
    state.counters["bytes_reclaimed"] =
        static_cast<double>(compactor.stats().bytes_reclaimed);
    state.ResumeTiming();
  }
}

BENCHMARK(BM_SustainedAppendLookupP99)
    ->Arg(0)  // compaction off: chains fragment unboundedly
    ->Arg(1)  // compaction on: batch span (and lookup p99) stay bounded
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace idf

// Like BENCHMARK_MAIN(), but defaults to also writing machine-readable
// JSON results to BENCH_update_stream.json (consumed by the perf-smoke CI
// job) when the caller passes no --benchmark_out of their own.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_update_stream.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
