// Multi-hop graph traversal (paper §1: "on-line analytics on changing
// graphs is a challenging use case for Spark as graph navigation is very
// join-intensive"). Each hop is an equi-join of the frontier against the
// knows table; with the Indexed DataFrame the edge table is a pre-built
// build side for every hop, so the per-hop cost is proportional to the
// frontier, not the graph.
//
// The backward-pointer chain walk in View::ForEachRawRow prefetches the
// next chain node's payload before checking the current node, overlapping
// the dependent-pointer-chase miss with the match/concat work. On the SNB
// scale used here the chains mostly sit in L2/L3, so this bench moves
// little (depth-3 CPU ~0.36 ms before and after on a 1-core dev VM); the
// prefetch pays off when hot chains outgrow the cache (long chains over
// large row-batch stores).
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace idf {
namespace {

using bench::SharedSnbContext;

Result<size_t> HopsVanilla(const snb::SnbContext& ctx, int64_t start, int hops) {
  IDF_ASSIGN_OR_RETURN(
      DataFrame frontier,
      ctx.knows.Filter(Eq(Col("person1Id"), Lit(Value(start)))));
  IDF_ASSIGN_OR_RETURN(frontier, frontier.SelectExprs({Col("person2Id")},
                                                      {"frontierId"}));
  for (int h = 1; h < hops; ++h) {
    // frontier JOIN knows ON frontierId = person1Id
    IDF_ASSIGN_OR_RETURN(DataFrame joined,
                         frontier.Join(ctx.knows, "frontierId", "person1Id"));
    IDF_ASSIGN_OR_RETURN(frontier, joined.SelectExprs({Col("person2Id")},
                                                      {"frontierId"}));
  }
  return frontier.Count();
}

Result<size_t> HopsIndexed(const snb::SnbContext& ctx, int64_t start, int hops) {
  DataFrame frontier = ctx.knows_by_person1->GetRows(Value(start));
  IDF_ASSIGN_OR_RETURN(frontier, frontier.SelectExprs({Col("person2Id")},
                                                      {"frontierId"}));
  for (int h = 1; h < hops; ++h) {
    // The indexed edge table is the build side; the frontier probes it.
    IDF_ASSIGN_OR_RETURN(
        DataFrame joined,
        ctx.knows_by_person1->Join(frontier, "person1Id", "frontierId"));
    IDF_ASSIGN_OR_RETURN(frontier, joined.SelectExprs({Col("person2Id")},
                                                      {"frontierId"}));
  }
  return frontier.Count();
}

void RunTraversal(benchmark::State& state, bool indexed) {
  auto& ctx = SharedSnbContext();
  const int hops = static_cast<int>(state.range(0));
  const int64_t start = ctx.dataset.first_person_id + 1;
  size_t reached = 0;
  for (auto _ : state) {
    auto n = indexed ? HopsIndexed(ctx, start, hops)
                     : HopsVanilla(ctx, start, hops);
    if (!n.ok()) {
      state.SkipWithError(n.status().ToString().c_str());
      return;
    }
    reached = *n;
    benchmark::DoNotOptimize(reached);
  }
  state.counters["paths_reached"] = static_cast<double>(reached);
}

void BM_Traversal_Vanilla(benchmark::State& state) {
  RunTraversal(state, false);
}
void BM_Traversal_IndexedDF(benchmark::State& state) {
  RunTraversal(state, true);
}

BENCHMARK(BM_Traversal_IndexedDF)
    ->DenseRange(1, 3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Traversal_Vanilla)
    ->DenseRange(1, 3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace idf

BENCHMARK_MAIN();
