// Shared benchmark scaffolding: a lazily constructed SNB context at a
// scale factor configurable via the IDF_SF environment variable.
//
// Scale note: the paper evaluates on LDBC SF300 on a 10-node EC2 cluster;
// this reproduction runs single-node, so the default laptop scale factor is
// IDF_SF=2 (~2000 persons, ~40k knows edges, 24k posts, 36k comments).
// Shapes (who wins, crossovers), not absolute milliseconds, are the
// reproduction target — see EXPERIMENTS.md.
#pragma once

#include <cstdlib>
#include <string>

#include "snb/short_queries.h"

namespace idf {
namespace bench {

inline double ScaleFactor() {
  const char* env = std::getenv("IDF_SF");
  if (env == nullptr) return 2.0;
  double sf = std::atof(env);
  return sf > 0 ? sf : 2.0;
}

inline snb::SnbContext& SharedSnbContext() {
  static snb::SnbContext* ctx = [] {
    EngineConfig cfg;
    cfg.num_partitions = 8;
    // Spark's 10 MB broadcast threshold is tiny relative to SF300 tables;
    // scale it down the same way the data is scaled down, so the vanilla
    // baseline joins large-vs-large the way the paper's cluster did
    // (sort-merge join, both sides shuffled).
    cfg.broadcast_threshold_bytes = 64 * 1024;
    snb::SnbConfig scfg;
    scfg.scale_factor = ScaleFactor();
    auto session = Session::Make(cfg).ValueOrDie();
    auto dataset = snb::GenerateSnb(scfg);
    return new snb::SnbContext(
        snb::MakeSnbContext(session, std::move(dataset)).ValueOrDie());
  }();
  return *ctx;
}

}  // namespace bench
}  // namespace idf
