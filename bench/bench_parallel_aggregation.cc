// Morsel-parallel aggregation over encoded rows (DESIGN.md §10): the fused
// IndexedScanAggregate reads group keys and aggregate inputs straight from
// the encoded payloads via CompiledAccessor (rows never materialize as
// decoded Rows — counted in rows_aggregated_encoded), builds thread-local
// partial hash tables per morsel, and merges them with a hash-partitioned
// parallel merge.
//
// Two axes: encoded-fused vs the generic decoded pipeline
// (Filter over IndexedScan feeding HashAggregate), and serial (1 thread)
// vs parallel (4 threads) execution of the same 1M-row group-by. The
// parallel runs report speedup_vs_serial against a serial baseline of the
// same operator measured once at startup; on a machine with 4+ cores the
// fused parallel run is expected to be >= 2x the serial one.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "indexed/indexed_dataframe.h"
#include "indexed/indexed_operators.h"
#include "sql/session.h"

namespace idf {
namespace {

constexpr int64_t kRows = 1000000;
constexpr int kParallelThreads = 4;

struct Fixture {
  SessionPtr builder;   // owns the data
  SessionPtr serial;    // num_threads = 1
  SessionPtr parallel;  // num_threads = kParallelThreads
  IndexedRelationPtr rel;
  PhysicalOpPtr fused;    // IndexedScanAggregate (encoded path)
  PhysicalOpPtr generic;  // HashAggregate over Filter over IndexedScan
};

SessionPtr MakeSession(int threads) {
  EngineConfig cfg;
  cfg.num_partitions = 8;
  cfg.num_threads = threads;
  return Session::Make(cfg).ValueOrDie();
}

Fixture& SharedFixture() {
  static Fixture* f = [] {
    auto fx = new Fixture();
    fx->builder = MakeSession(0);
    fx->serial = MakeSession(1);
    fx->parallel = MakeSession(kParallelThreads);

    auto schema = Schema::Make({{"k", TypeId::kInt64, false},
                                {"g", TypeId::kInt64, false},
                                {"v", TypeId::kInt64, false},
                                {"d", TypeId::kFloat64, false}});
    RowVec rows;
    rows.reserve(kRows);
    for (int64_t i = 0; i < kRows; ++i) {
      rows.push_back({Value(i), Value(i % 1024), Value(i % 1000),
                      Value(0.5 * (i % 97))});
    }
    auto df = fx->builder->CreateDataFrame(schema, rows, "agg").ValueOrDie();
    fx->rel =
        IndexedDataFrame::CreateIndex(df, 0, "agg_idx").ValueOrDie().relation();

    // GROUP BY g with a compiled 90%-selective filter in front: the fused
    // operator selects survivors on the payload bytes and folds them into
    // the partial tables without a decoded intermediate.
    const Schema& in = *fx->rel->schema();
    ExprPtr pred =
        BindExpr(Lt(Col("v"), Lit(Value(int64_t{900}))), in).ValueOrDie();
    std::vector<ExprPtr> groups{BindExpr(Col("g"), in).ValueOrDie()};
    std::vector<AggSpec> aggs{
        CountStar("cnt"), SumOf(BindExpr(Col("v"), in).ValueOrDie(), "sv"),
        AvgOf(BindExpr(Col("d"), in).ValueOrDie(), "ad"),
        MinOf(BindExpr(Col("v"), in).ValueOrDie(), "mn"),
        MaxOf(BindExpr(Col("v"), in).ValueOrDie(), "mx")};
    auto out_schema = Schema::Make({{"g", TypeId::kInt64, false},
                                    {"cnt", TypeId::kInt64, false},
                                    {"sv", TypeId::kInt64, true},
                                    {"ad", TypeId::kFloat64, true},
                                    {"mn", TypeId::kInt64, true},
                                    {"mx", TypeId::kInt64, true}});

    PredicateSplit split = SplitForCompilation(pred, in);
    fx->fused = std::make_shared<IndexedScanAggregateOp>(
        fx->rel, pred, PushedFilter::FromSplit(std::move(split)), groups, aggs,
        out_schema);
    fx->generic = std::make_shared<HashAggregateOp>(
        std::make_shared<FilterOp>(std::make_shared<IndexedScanOp>(fx->rel),
                                   pred),
        groups, aggs, out_schema);
    return fx;
  }();
  return *f;
}

double MeasureOnceMs(const PhysicalOpPtr& op, ExecutorContext& ctx) {
  auto t0 = std::chrono::steady_clock::now();
  auto parts = op->Execute(ctx);
  if (!parts.ok()) return -1;
  benchmark::DoNotOptimize(TotalRows(*parts));
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Serial wall time per execution of `op`, measured once (best of 3).
double SerialBaselineMs(const PhysicalOpPtr& op) {
  double best = -1;
  for (int i = 0; i < 3; ++i) {
    double ms = MeasureOnceMs(op, SharedFixture().serial->exec());
    if (ms >= 0 && (best < 0 || ms < best)) best = ms;
  }
  return best;
}

void RunAgg(benchmark::State& state, const PhysicalOpPtr& op,
            SessionPtr session, double baseline_ms) {
  auto& fx = SharedFixture();
  (void)fx;
  session->metrics().Reset();
  double total_ms = 0;
  size_t iters = 0;
  for (auto _ : state) {
    double ms = MeasureOnceMs(op, session->exec());
    if (ms < 0) {
      state.SkipWithError("aggregation failed");
      return;
    }
    total_ms += ms;
    ++iters;
  }
  state.counters["rows"] = static_cast<double>(kRows);
  state.counters["rows_aggregated_encoded"] =
      static_cast<double>(session->metrics().rows_aggregated_encoded());
  state.counters["agg_morsels"] =
      static_cast<double>(session->metrics().agg_morsels());
  state.counters["agg_partials_merged"] =
      static_cast<double>(session->metrics().agg_partials_merged());
  if (baseline_ms > 0 && iters > 0 && total_ms > 0) {
    state.counters["speedup_vs_serial"] = baseline_ms / (total_ms / iters);
  }
}

void BM_GroupBy_Encoded_Serial(benchmark::State& state) {
  auto& fx = SharedFixture();
  RunAgg(state, fx.fused, fx.serial, /*baseline_ms=*/0);
}
void BM_GroupBy_Encoded_Parallel4(benchmark::State& state) {
  auto& fx = SharedFixture();
  static const double baseline = SerialBaselineMs(fx.fused);
  RunAgg(state, fx.fused, fx.parallel, baseline);
}
void BM_GroupBy_Decoded_Serial(benchmark::State& state) {
  auto& fx = SharedFixture();
  RunAgg(state, fx.generic, fx.serial, /*baseline_ms=*/0);
}
void BM_GroupBy_Decoded_Parallel4(benchmark::State& state) {
  auto& fx = SharedFixture();
  static const double baseline = SerialBaselineMs(fx.generic);
  RunAgg(state, fx.generic, fx.parallel, baseline);
}

BENCHMARK(BM_GroupBy_Encoded_Serial)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GroupBy_Encoded_Parallel4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GroupBy_Decoded_Serial)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GroupBy_Decoded_Parallel4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace idf

// Like BENCHMARK_MAIN(), but defaults to also writing machine-readable
// JSON results to BENCH_parallel_aggregation.json (consumed by CI) when
// the caller passes no --benchmark_out of their own.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_parallel_aggregation.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
