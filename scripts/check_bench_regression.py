#!/usr/bin/env python3
"""Compare a Google-Benchmark JSON run against a committed baseline.

Report-only by default: emits GitHub Actions ::warning annotations for
benchmarks whose real_time regressed by more than the threshold (default
15%), plus a human-readable table, and exits 0 — CI perf numbers on shared
runners are too noisy to block merges on, the annotations are a prompt to
look, not a gate. Pass --fail-on-regression to opt into exit code 1 when
any benchmark crosses the threshold (for dedicated runners or local
pre-merge checks where timings are trustworthy).

Usage: check_bench_regression.py BASELINE.json CURRENT.json
           [--threshold 0.15] [--fail-on-regression]
"""

import argparse
import json
import sys

UNIT_NS = {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}


def load(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repeated runs).
        if b.get("run_type") == "aggregate":
            continue
        ns = b["real_time"] * UNIT_NS.get(b.get("time_unit", "ns"), 1)
        out[b["name"]] = ns
    return out


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="regression ratio that triggers a warning")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 (instead of warning only) when any "
                             "benchmark regresses beyond the threshold")
    args = parser.parse_args()

    try:
        base = load(args.baseline)
    except OSError:
        # Not silent: a bench wired into the gate without a committed
        # baseline compares against nothing, which reads as "pass" forever.
        print(f"NO BASELINE COMMITTED for {args.current}: "
              f"{args.baseline} does not exist, so this run was NOT checked "
              f"for regressions.")
        print(f"To enable the diff, run the benchmark once on a quiet "
              f"machine and commit its JSON as {args.baseline}.")
        print(f"::warning::no baseline committed at {args.baseline}; "
              f"{args.current} was not checked for regressions")
        return 0
    cur = load(args.current)

    regressions = []
    rows = []
    for name, base_ns in sorted(base.items()):
        cur_ns = cur.get(name)
        if cur_ns is None:
            rows.append((name, base_ns, None, None))
            continue
        ratio = (cur_ns - base_ns) / base_ns if base_ns > 0 else 0.0
        rows.append((name, base_ns, cur_ns, ratio))
        if ratio > args.threshold:
            regressions.append((name, base_ns, cur_ns, ratio))

    print(f"{'benchmark':<50} {'baseline':>12} {'current':>12} {'delta':>8}")
    for name, base_ns, cur_ns, ratio in rows:
        if cur_ns is None:
            print(f"{name:<50} {base_ns / 1e6:>10.3f}ms {'absent':>12} {'':>8}")
        else:
            print(f"{name:<50} {base_ns / 1e6:>10.3f}ms {cur_ns / 1e6:>10.3f}ms "
                  f"{ratio:>+7.1%}")
    for name in sorted(set(cur) - set(base)):
        print(f"{name:<50} {'(new)':>12} {cur[name] / 1e6:>10.3f}ms")

    for name, base_ns, cur_ns, ratio in regressions:
        # Spell out which number is which: the annotation is all a reviewer
        # sees without downloading the JSON artifacts.
        print(f"::warning::perf regression {name}: candidate "
              f"{cur_ns / 1e6:.3f}ms is {ratio:+.1%} vs baseline "
              f"{base_ns / 1e6:.3f}ms (threshold {args.threshold:.0%})")
    if not regressions:
        print(f"\nno regressions beyond {args.threshold:.0%}")
    if regressions and args.fail_on_regression:
        print(f"::error::{len(regressions)} benchmark(s) regressed beyond "
              f"{args.threshold:.0%} and --fail-on-regression is set")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
