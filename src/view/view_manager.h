// MaterializedViewManager: standing queries maintained incrementally
// (DESIGN.md §13). A client Subscribe()s a SQL query once and thereafter
// reads maintained results; every Append commit feeds the manager a delta
// batch (SnapshotManager::CommitSink) and one maintenance pass advances
// every registered view by the delta alone:
//
//   select views     compiled/vectorized predicates filter the encoded
//                    delta rows; survivors append to the resident result.
//   aggregate views  the group state lives resident (GroupStateMap); the
//                    delta folds into a local partial map which merges in
//                    via aggregate_common's MergeStates — the same kernels
//                    the from-scratch operator uses, so finalized values
//                    agree to the bit.
//   join views       the insert-only delta rule Δ(L⋈R) = ΔL⋈R_cur +
//                    L_prev⋈ΔR: delta rows probe the other side's pinned
//                    cTrie index (point lookups, newest-first chains), and
//                    the previous pass's pin on the left keeps pairs of
//                    same-pass deltas from counting twice.
//   anything else    correct-but-not-incremental fallback: the SQL is
//                    re-executed against each new epoch pin (counted as
//                    views_recomputed).
//
// Arrangement sharing: subscriptions whose analyzed plans render to the
// same fingerprint attach to ONE maintained view (refcounted); 100
// dashboards asking the same question cost one delta propagation per
// commit, not 100 scans.
//
// Subscriber reads are lock-free: each pass publishes an immutable
// ViewSnapshot (epoch-tagged, monotonically versioned) via an atomic
// shared_ptr swap; Snapshot() never touches a mutex. Optional callbacks
// fire after the pass releases the maintenance lock.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/snapshot_manager.h"
#include "sql/aggregate_common.h"
#include "sql/vectorized_eval.h"
#include "view/view_plan.h"

namespace idf {

/// One immutable published result. `epoch` is the service epoch the state
/// reflects; `version` increments on every publish of this view.
struct ViewSnapshot {
  uint64_t epoch = 0;
  uint64_t version = 0;
  SchemaPtr schema;
  std::shared_ptr<const RowVec> rows;
};
using ViewSnapshotPtr = std::shared_ptr<const ViewSnapshot>;

class MaterializedViewManager;
namespace view_detail {
struct MaintainedView;
struct CompiledFilter;
}

/// A client's handle on a standing query. Snapshot() is wait-free (one
/// atomic shared_ptr load); the optional callback passed to Subscribe()
/// fires once per publish, outside the maintenance lock, on the thread
/// that ran the pass.
class ViewSubscription {
 public:
  using Callback = std::function<void(const ViewSnapshot&)>;

  uint64_t id() const { return id_; }
  const std::string& sql() const { return sql_; }
  /// The maintenance strategy chosen at subscribe time (a later pass may
  /// still degrade the arrangement to recompute on a maintenance error).
  ViewKind kind() const { return kind_; }

  /// Latest published result (never null after Subscribe returns).
  ViewSnapshotPtr Snapshot() const;

 private:
  friend class MaterializedViewManager;
  uint64_t id_ = 0;
  std::string sql_;
  ViewKind kind_ = ViewKind::kRecompute;
  Callback callback_;
  std::shared_ptr<view_detail::MaintainedView> view_;
};
using ViewSubscriptionPtr = std::shared_ptr<ViewSubscription>;

/// Counters exported through ServiceStats.
struct ViewManagerStats {
  uint64_t views_registered = 0;    ///< live maintained arrangements
  uint64_t view_subscribers = 0;    ///< live subscriptions
  uint64_t arrangements_shared = 0; ///< subscriptions that joined an existing arrangement
  uint64_t deltas_propagated = 0;   ///< delta batches applied to views
  uint64_t rows_maintained_incrementally = 0;  ///< delta rows folded into resident state
  uint64_t views_recomputed = 0;    ///< full recompute passes (fallback shape)
  uint64_t maintenance_errors = 0;  ///< passes that degraded a view to recompute
};

class MaterializedViewManager final : public SnapshotManager::CommitSink {
 public:
  /// Does not own `snapshots`; the caller (QueryService) installs this as
  /// its commit sink and guarantees the manager outlives the delta feed.
  MaterializedViewManager(SnapshotManager* snapshots, ExecutorContextPtr exec);
  ~MaterializedViewManager() override;

  /// Registers a standing query. Parses and classifies `sql`, attaches to
  /// an existing arrangement when the plan fingerprint matches one, and
  /// otherwise builds the initial state from a fresh epoch pin. The
  /// returned subscription carries a valid Snapshot() immediately.
  Result<ViewSubscriptionPtr> Subscribe(const std::string& sql,
                                        ViewSubscription::Callback callback =
                                            nullptr);

  /// Detaches one subscription; the arrangement is torn down when its last
  /// subscriber leaves.
  Status Unsubscribe(const ViewSubscriptionPtr& sub);

  // --- SnapshotManager::CommitSink ---
  bool wants_deltas() const override {
    return has_views_.load(std::memory_order_acquire);
  }
  void OnCommit(const std::string& table, std::shared_ptr<const RowVec> rows,
                uint64_t epoch) override;

  /// True when queued deltas are waiting and at least one view is live.
  bool HasWork() const;

  /// Drains the delta queue into every registered view and publishes new
  /// snapshots. Serialized internally; concurrent callers coalesce (a
  /// caller may find its delta already propagated by another thread).
  void Propagate();

  ViewManagerStats Stats() const;
  size_t num_views() const;

 private:
  struct DeltaBatch {
    std::string table;
    uint64_t epoch = 0;
    std::shared_ptr<const RowVec> rows;
    // Lazily encoded once per pass, shared by every view that filters
    // this batch through the compiled/vectorized path.
    std::optional<EncodedRowBatch> enc;
    std::vector<const uint8_t*> payloads;
  };

  using MaintainedView = view_detail::MaintainedView;

  /// Runs one maintenance pass. Caller holds maintenance_mu_; publishes
  /// snapshots and appends (callback, snapshot) pairs to `callbacks` for
  /// the caller to fire after unlocking.
  void PropagateLocked(
      std::vector<std::pair<ViewSubscription::Callback, ViewSnapshotPtr>>*
          callbacks);

  /// Applies one delta batch to one view's resident state (no publish).
  /// `right_term` enables join term 2 (L_prev ⋈ ΔR); InitializeState
  /// disables it while seeding the left table so a self-join (left table
  /// == right table) does not count the seed rows twice.
  Status ApplyDelta(MaintainedView* view, DeltaBatch* delta,
                    const ServiceSnapshot& cur, bool right_term = true);

  /// Runs one delta batch through a view's prepared filter; returns the
  /// ascending indexes of surviving rows. Encodes the batch lazily when
  /// the compiled/vectorized path can use it (shared across views).
  static Result<std::vector<uint32_t>> FilterDelta(
      view_detail::CompiledFilter* filter, DeltaBatch* delta,
      const SchemaPtr& schema, ExecutorContext& exec);

  /// Rebuilds the view's published snapshot from its resident state (or,
  /// for recompute views, by re-executing the SQL against `cur`).
  Status PublishLocked(MaintainedView* view, const ServiceSnapshot& cur,
                       std::vector<std::pair<ViewSubscription::Callback,
                                             ViewSnapshotPtr>>* callbacks);

  /// Feeds the full pinned contents of the view's base table(s) through
  /// the delta path to build the initial resident state.
  Status InitializeState(MaintainedView* view, const ServiceSnapshot& snap);

  /// Re-executes the view's SQL against `snap` (recompute fallback).
  Result<RowVec> RecomputeAgainst(const std::string& sql,
                                  const ServiceSnapshot& snap);

  SnapshotManager* snapshots_;
  ExecutorContextPtr exec_;

  std::atomic<bool> has_views_{false};
  std::atomic<uint64_t> next_id_{1};

  // Leaf lock: only ever guards the queue (pushed under the snapshot
  // manager's commit mutex, popped under maintenance_mu_).
  mutable std::mutex queue_mu_;
  std::deque<DeltaBatch> queue_;

  // Serializes maintenance passes and view registry mutation.
  mutable std::mutex maintenance_mu_;
  std::unordered_map<std::string, std::shared_ptr<MaintainedView>>
      views_by_fingerprint_;

  std::atomic<uint64_t> deltas_propagated_{0};
  std::atomic<uint64_t> rows_maintained_{0};
  std::atomic<uint64_t> arrangements_shared_{0};
  std::atomic<uint64_t> views_recomputed_{0};
  std::atomic<uint64_t> maintenance_errors_{0};
};

}  // namespace idf
