#include "view/view_plan.h"

#include <algorithm>
#include <unordered_set>

#include "types/value.h"

namespace idf {

std::string ViewKindToString(ViewKind kind) {
  switch (kind) {
    case ViewKind::kSelect:
      return "select";
    case ViewKind::kAggregate:
      return "aggregate";
    case ViewKind::kJoin:
      return "join";
    case ViewKind::kRecompute:
      return "recompute";
  }
  return "?";
}

std::string PlanFingerprint(const LogicalPlanPtr& analyzed) {
  return analyzed->TreeString();
}

namespace {

void CollectScanTables(const LogicalPlanPtr& plan,
                       std::vector<std::string>* out) {
  if (plan->kind() == PlanKind::kScan) {
    out->push_back(static_cast<const ScanNode*>(plan.get())->table()->name);
  }
  for (const LogicalPlanPtr& c : plan->children()) CollectScanTables(c, out);
}

void Dedup(std::vector<std::string>* names) {
  std::unordered_set<std::string> seen;
  names->erase(std::remove_if(names->begin(), names->end(),
                              [&](const std::string& n) {
                                return !seen.insert(n).second;
                              }),
               names->end());
}

/// Matches Scan(t) or Filter(Scan(t)); fills `out` on success.
bool MatchInput(const LogicalPlanPtr& plan, ViewInput* out) {
  const LogicalPlan* scan = plan.get();
  ExprPtr predicate;
  if (plan->kind() == PlanKind::kFilter) {
    predicate = static_cast<const FilterNode*>(plan.get())->predicate();
    scan = plan->children()[0].get();
  }
  if (scan->kind() != PlanKind::kScan) return false;
  out->table = static_cast<const ScanNode*>(scan)->table()->name;
  out->schema = scan->output_schema();
  out->predicate = std::move(predicate);
  return true;
}

}  // namespace

Result<ViewSpec> BuildViewSpec(const std::string& sql,
                               const LogicalPlanPtr& analyzed) {
  if (!analyzed || !analyzed->analyzed()) {
    return Status::Internal("BuildViewSpec requires an analyzed plan");
  }
  ViewSpec spec;
  spec.sql = sql;
  spec.fingerprint = PlanFingerprint(analyzed);
  spec.output_schema = analyzed->output_schema();
  CollectScanTables(analyzed, &spec.tables);
  Dedup(&spec.tables);

  // Peel publish-time operators off the top until a core candidate remains.
  // A Filter is part of the core only when it sits directly on a Scan.
  LogicalPlanPtr core = analyzed;
  std::vector<ViewPostOp> post;  // collected outermost-first
  for (bool peeled = true; peeled;) {
    peeled = false;
    switch (core->kind()) {
      case PlanKind::kLimit: {
        const auto* n = static_cast<const LimitNode*>(core.get());
        post.push_back(ViewPostOp{ViewPostOp::kLimit, nullptr, {}, {}, n->n()});
        core = core->children()[0];
        peeled = true;
        break;
      }
      case PlanKind::kTopK: {
        const auto* n = static_cast<const TopKNode*>(core.get());
        post.push_back(ViewPostOp{ViewPostOp::kLimit, nullptr, {}, {}, n->n()});
        post.push_back(ViewPostOp{ViewPostOp::kSort, nullptr, {}, n->keys(), 0});
        core = core->children()[0];
        peeled = true;
        break;
      }
      case PlanKind::kSort: {
        const auto* n = static_cast<const SortNode*>(core.get());
        post.push_back(ViewPostOp{ViewPostOp::kSort, nullptr, {}, n->keys(), 0});
        core = core->children()[0];
        peeled = true;
        break;
      }
      case PlanKind::kProject: {
        const auto* n = static_cast<const ProjectNode*>(core.get());
        post.push_back(
            ViewPostOp{ViewPostOp::kProject, nullptr, n->exprs(), {}, 0});
        core = core->children()[0];
        peeled = true;
        break;
      }
      case PlanKind::kFilter: {
        if (core->children()[0]->kind() == PlanKind::kScan) break;
        const auto* n = static_cast<const FilterNode*>(core.get());
        post.push_back(
            ViewPostOp{ViewPostOp::kFilter, n->predicate(), {}, {}, 0});
        core = core->children()[0];
        peeled = true;
        break;
      }
      default:
        break;
    }
  }
  std::reverse(post.begin(), post.end());  // innermost-first for apply
  spec.post = std::move(post);
  spec.core_schema = core->output_schema();

  switch (core->kind()) {
    case PlanKind::kScan:
    case PlanKind::kFilter:
      if (MatchInput(core, &spec.input)) {
        spec.kind = ViewKind::kSelect;
        return spec;
      }
      break;
    case PlanKind::kAggregate: {
      const auto* agg = static_cast<const AggregateNode*>(core.get());
      if (!MatchInput(core->children()[0], &spec.input)) break;
      spec.kind = ViewKind::kAggregate;
      spec.group_exprs = agg->group_exprs();
      spec.aggs = agg->aggs();
      const Schema& out = *core->output_schema();
      for (size_t a = 0; a < spec.aggs.size(); ++a) {
        spec.agg_out_types.push_back(
            out.field(spec.group_exprs.size() + a).type);
      }
      return spec;
    }
    case PlanKind::kJoin: {
      const auto* join = static_cast<const JoinNode*>(core.get());
      if (join->join_type() != JoinType::kInner) break;
      if (join->left_key()->kind() != ExprKind::kColumnRef ||
          join->right_key()->kind() != ExprKind::kColumnRef) {
        break;
      }
      const auto* lk = static_cast<const ColumnRefExpr*>(join->left_key().get());
      const auto* rk =
          static_cast<const ColumnRefExpr*>(join->right_key().get());
      if (!lk->bound() || !rk->bound()) break;
      if (!MatchInput(join->left(), &spec.left) ||
          !MatchInput(join->right(), &spec.right)) {
        break;
      }
      spec.kind = ViewKind::kJoin;
      spec.left_key_col = lk->index();
      spec.right_key_col = rk->index();
      return spec;
    }
    default:
      break;
  }

  // Unsupported shape: maintain by recomputation against each new epoch.
  spec.kind = ViewKind::kRecompute;
  spec.core_schema = spec.output_schema;
  spec.post.clear();
  return spec;
}

Status ApplyPostOps(const std::vector<ViewPostOp>& post, RowVec* rows) {
  for (const ViewPostOp& op : post) {
    switch (op.kind) {
      case ViewPostOp::kFilter: {
        RowVec kept;
        kept.reserve(rows->size());
        for (Row& row : *rows) {
          IDF_ASSIGN_OR_RETURN(Value v, op.predicate->Eval(row));
          if (v.is_bool() && v.bool_value()) {
            kept.push_back(std::move(row));
          }
        }
        *rows = std::move(kept);
        break;
      }
      case ViewPostOp::kProject: {
        RowVec projected;
        projected.reserve(rows->size());
        for (const Row& row : *rows) {
          Row out;
          out.reserve(op.exprs.size());
          for (const ExprPtr& e : op.exprs) {
            IDF_ASSIGN_OR_RETURN(Value v, e->Eval(row));
            out.push_back(std::move(v));
          }
          projected.push_back(std::move(out));
        }
        *rows = std::move(projected);
        break;
      }
      case ViewPostOp::kSort: {
        // Same comparator as SortOp: per-key Value ordering (nulls first),
        // ties keep input order (stable).
        std::vector<std::pair<Row, Row>> keyed;  // (sort key values, row)
        keyed.reserve(rows->size());
        for (Row& row : *rows) {
          Row keys;
          keys.reserve(op.keys.size());
          for (const SortKey& k : op.keys) {
            IDF_ASSIGN_OR_RETURN(Value v, k.expr->Eval(row));
            keys.push_back(std::move(v));
          }
          keyed.emplace_back(std::move(keys), std::move(row));
        }
        std::stable_sort(keyed.begin(), keyed.end(),
                         [&](const auto& a, const auto& b) {
                           for (size_t i = 0; i < op.keys.size(); ++i) {
                             const Value& va = a.first[i];
                             const Value& vb = b.first[i];
                             if (va < vb) return op.keys[i].ascending;
                             if (vb < va) return !op.keys[i].ascending;
                           }
                           return false;
                         });
        rows->clear();
        for (auto& [keys, row] : keyed) rows->push_back(std::move(row));
        break;
      }
      case ViewPostOp::kLimit:
        if (rows->size() > op.limit) rows->resize(op.limit);
        break;
    }
  }
  return Status::OK();
}

}  // namespace idf
