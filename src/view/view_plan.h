// Standing-query plan analysis: classifies an analyzed logical plan into a
// maintainable ViewSpec — the shape the incremental maintenance pass knows
// how to advance delta-at-a-time — and derives the normalized fingerprint
// that lets subscribers with the same plan share one maintained
// arrangement (Shared Arrangements, McSherry et al.).
//
// Maintainable cores (everything append-only; the store never deletes):
//
//   kSelect     Filter?(Scan(t))             — maintained result rows; the
//               filter runs compiled/vectorized over the encoded delta.
//   kAggregate  Aggregate(Filter?(Scan(t)))  — resident GroupStateMap,
//               +delta merges via aggregate_common's state kernels.
//   kJoin       Join(Filter?(Scan(a)), Filter?(Scan(b))) — inner equi-join
//               on plain columns; deltas probe the other side's pinned
//               cTrie index instead of rebuilding either side.
//
// Above the core, any stack of Filter (HAVING) / Project / Sort / TopK /
// Limit is peeled into a publish-time post-op pipeline (those operators
// are cheap over the maintained result and don't affect the delta math).
// Every other shape degrades to kRecompute: the subscription still works,
// but each commit re-executes the query against the fresh epoch pin —
// correct, just not incremental (ViewManager counts these separately).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/logical_plan.h"
#include "sql/predicate_compiler.h"

namespace idf {

enum class ViewKind : uint8_t { kSelect, kAggregate, kJoin, kRecompute };

std::string ViewKindToString(ViewKind kind);

/// One base-table input of a maintainable core: the scan plus the optional
/// predicate bound to the table schema (the compiled/vectorized filter of
/// the delta path is built from it at subscribe time).
struct ViewInput {
  std::string table;
  SchemaPtr schema;
  ExprPtr predicate;  // bound to `schema`; null = keep every row
};

/// One publish-time operator peeled from above the core, applied
/// innermost-first to the maintained result on every snapshot build.
struct ViewPostOp {
  enum Kind : uint8_t { kFilter, kProject, kSort, kLimit } kind;
  ExprPtr predicate;                // kFilter (e.g. HAVING)
  std::vector<ExprPtr> exprs;       // kProject
  std::vector<SortKey> keys;        // kSort
  size_t limit = 0;                 // kLimit
};

/// A classified standing query.
struct ViewSpec {
  ViewKind kind = ViewKind::kRecompute;
  std::string sql;          // original text (re-executed by kRecompute)
  std::string fingerprint;  // normalized analyzed-plan rendering
  SchemaPtr output_schema;  // final schema (after post-ops)
  SchemaPtr core_schema;    // schema of the maintained core result

  /// Tables whose commits touch this view (deduplicated).
  std::vector<std::string> tables;

  // kSelect / kAggregate:
  ViewInput input;

  // kAggregate (exprs bound to the table schema):
  std::vector<ExprPtr> group_exprs;
  std::vector<AggSpec> aggs;
  std::vector<TypeId> agg_out_types;

  // kJoin:
  ViewInput left, right;
  int left_key_col = -1;   // ordinal in left.schema
  int right_key_col = -1;  // ordinal in right.schema

  std::vector<ViewPostOp> post;  // innermost (closest to core) first
};

/// Classifies `analyzed` (a fully analyzed plan whose leaves are ScanNodes
/// of registered tables). Never fails on shape — unsupported shapes come
/// back as kRecompute; errors are reserved for malformed plans.
Result<ViewSpec> BuildViewSpec(const std::string& sql,
                               const LogicalPlanPtr& analyzed);

/// Deterministic rendering of an analyzed plan, used as the arrangement
/// sharing key. Two subscriptions share one arrangement iff their analyzed
/// plans render identically (the analyzer normalizes name binding, so
/// textual variations like aliasing collapse; commutations like
/// `1 = a` vs `a = 1` do not — they maintain separate arrangements).
std::string PlanFingerprint(const LogicalPlanPtr& analyzed);

/// Applies a view's post-op pipeline to `rows` (in place). `core_schema`
/// is the pipeline's input schema; evaluation errors abort the publish.
Status ApplyPostOps(const std::vector<ViewPostOp>& post, RowVec* rows);

}  // namespace idf
