#include "view/view_manager.h"

#include <algorithm>
#include <utility>

#include "indexed/indexed_rules.h"
#include "sql/analyzer.h"
#include "sql/session.h"

namespace idf {

namespace view_detail {

/// A base-table filter prepared at subscribe time: the conjunction is
/// split into a compiled program (run batch-at-a-time over the encoded
/// delta) and an interpreter residual (run on the survivors only) — the
/// same split the scan operators use.
struct CompiledFilter {
  ExprPtr predicate;  // null = accept every row
  PredicateSplit split;
  std::unique_ptr<VectorizedPredicate> vec;
  VectorScratch scratch;

  void Build(const ExprPtr& pred, const SchemaPtr& schema) {
    predicate = pred;
    if (predicate == nullptr) return;
    split = SplitForCompilation(predicate, *schema);
    if (split.compiled.has_value()) {
      vec = std::make_unique<VectorizedPredicate>(*split.compiled);
    }
  }
};

/// One maintained arrangement, shared by every subscription whose plan
/// fingerprint matches. All fields except `published` are guarded by the
/// manager's maintenance mutex; `published` is swapped/read via the atomic
/// shared_ptr free functions (lock-free subscriber reads).
struct MaintainedView {
  uint64_t id = 0;
  ViewSpec spec;

  CompiledFilter input_filter;          // kSelect / kAggregate
  CompiledFilter left_filter, right_filter;  // kJoin

  RowVec core_rows;     // kSelect / kJoin resident result
  GroupStateMap groups; // kAggregate resident state

  /// Deltas with epoch <= this are already reflected in the state.
  uint64_t applied_epoch = 0;
  uint64_t published_version = 0;

  /// kJoin: the pin of this view's previous pass. Right-side deltas probe
  /// the left table HERE (not in the current pin) so pairs where both rows
  /// arrived since the last pass are not counted by both join terms.
  ServiceSnapshot prev_pin;

  std::shared_ptr<const ViewSnapshot> published;

  std::vector<std::weak_ptr<ViewSubscription>> subscribers;
  size_t subscriber_count = 0;
};

}  // namespace view_detail

using view_detail::CompiledFilter;
using view_detail::MaintainedView;

ViewSnapshotPtr ViewSubscription::Snapshot() const {
  return std::atomic_load_explicit(&view_->published,
                                   std::memory_order_acquire);
}

namespace {

/// The pin of `table`'s index on column `col` inside `snap`, or null.
PinnedSnapshotPtr FindPin(const ServiceSnapshot& snap, const std::string& table,
                          int col) {
  const PinnedTable* t = snap.find(table);
  if (t == nullptr) return nullptr;
  for (const auto& [ordinal, pin] : t->pins) {
    if (ordinal == col) return pin;
  }
  return nullptr;
}

/// Collects the full contents of `table`'s primary pin (append order per
/// partition).
Result<RowVec> ScanPinnedTable(const ServiceSnapshot& snap,
                               const std::string& table) {
  const PinnedTable* t = snap.find(table);
  if (t == nullptr) {
    return Status::Internal("view init: table not pinned: " + table);
  }
  RowVec rows;
  const IndexedRelationSnapshot& rel = t->primary()->snapshot();
  for (int p = 0; p < rel.num_partitions(); ++p) {
    rel.view(p).Scan([&rows](const Row& row) { rows.push_back(row); });
  }
  return rows;
}

bool EvalKeep(const ExprPtr& predicate, const Row& row, Status* status) {
  Result<Value> v = predicate->Eval(row);
  if (!v.ok()) {
    *status = v.status();
    return false;
  }
  return v.ValueOrDie().is_bool() && v.ValueOrDie().bool_value();
}

}  // namespace

MaterializedViewManager::MaterializedViewManager(SnapshotManager* snapshots,
                                                 ExecutorContextPtr exec)
    : snapshots_(snapshots), exec_(std::move(exec)) {}

MaterializedViewManager::~MaterializedViewManager() = default;

void MaterializedViewManager::OnCommit(const std::string& table,
                                       std::shared_ptr<const RowVec> rows,
                                       uint64_t epoch) {
  DeltaBatch batch;
  batch.table = table;
  batch.epoch = epoch;
  batch.rows = std::move(rows);
  std::lock_guard<std::mutex> lock(queue_mu_);
  queue_.push_back(std::move(batch));
}

bool MaterializedViewManager::HasWork() const {
  if (!has_views_.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(queue_mu_);
  return !queue_.empty();
}

size_t MaterializedViewManager::num_views() const {
  std::lock_guard<std::mutex> lock(maintenance_mu_);
  return views_by_fingerprint_.size();
}

void MaterializedViewManager::Propagate() {
  std::vector<std::pair<ViewSubscription::Callback, ViewSnapshotPtr>> callbacks;
  {
    std::lock_guard<std::mutex> lock(maintenance_mu_);
    PropagateLocked(&callbacks);
  }
  for (auto& [callback, snapshot] : callbacks) callback(*snapshot);
}

Result<std::vector<uint32_t>> MaterializedViewManager::FilterDelta(
    CompiledFilter* filter, DeltaBatch* delta, const SchemaPtr& schema,
    ExecutorContext& exec) {
  const RowVec& rows = *delta->rows;
  const uint32_t n = static_cast<uint32_t>(rows.size());
  std::vector<uint32_t> sel;
  if (filter->predicate == nullptr) {
    sel.resize(n);
    for (uint32_t i = 0; i < n; ++i) sel[i] = i;
    return sel;
  }
  Status status = Status::OK();
  if (filter->vec != nullptr) {
    if (!delta->enc.has_value()) {
      IDF_ASSIGN_OR_RETURN(EncodedRowBatch enc,
                           EncodeRowBatch(exec, *schema, rows));
      delta->enc = std::move(enc);
      delta->payloads.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        delta->payloads[i] = delta->enc->payload(i);
      }
    }
    sel.resize(n);
    const size_t kept = filter->vec->FilterBatch(delta->payloads.data(), n,
                                                 sel.data(), &filter->scratch);
    sel.resize(kept);
    if (filter->split.residual != nullptr) {
      std::vector<uint32_t> out;
      out.reserve(kept);
      for (uint32_t i : sel) {
        if (EvalKeep(filter->split.residual, rows[i], &status)) out.push_back(i);
        IDF_RETURN_NOT_OK(status);
      }
      sel = std::move(out);
    }
  } else {
    for (uint32_t i = 0; i < n; ++i) {
      if (EvalKeep(filter->predicate, rows[i], &status)) sel.push_back(i);
      IDF_RETURN_NOT_OK(status);
    }
  }
  return sel;
}

Status MaterializedViewManager::ApplyDelta(MaintainedView* view,
                                           DeltaBatch* delta,
                                           const ServiceSnapshot& cur,
                                           bool right_term) {
  const ViewSpec& spec = view->spec;
  switch (spec.kind) {
    case ViewKind::kSelect: {
      IDF_ASSIGN_OR_RETURN(std::vector<uint32_t> sel,
                           FilterDelta(&view->input_filter, delta,
                                       spec.input.schema, *exec_));
      view->core_rows.reserve(view->core_rows.size() + sel.size());
      for (uint32_t i : sel) view->core_rows.push_back((*delta->rows)[i]);
      rows_maintained_.fetch_add(sel.size(), std::memory_order_relaxed);
      return Status::OK();
    }
    case ViewKind::kAggregate: {
      IDF_ASSIGN_OR_RETURN(std::vector<uint32_t> sel,
                           FilterDelta(&view->input_filter, delta,
                                       spec.input.schema, *exec_));
      const size_t num_aggs = spec.aggs.size();
      // Fold the delta into a partial map, then merge it into the resident
      // arrangement with the same MergeStates kernels the from-scratch
      // operator's partial-merge phase uses.
      GroupStateMap partial;
      for (uint32_t i : sel) {
        const Row& row = (*delta->rows)[i];
        Row key;
        key.reserve(spec.group_exprs.size());
        for (const ExprPtr& g : spec.group_exprs) {
          IDF_ASSIGN_OR_RETURN(Value v, g->Eval(row));
          key.push_back(std::move(v));
        }
        std::vector<AggState>& states = partial[std::move(key)];
        if (states.empty()) states.resize(num_aggs);
        for (size_t a = 0; a < num_aggs; ++a) {
          Value v;
          if (spec.aggs[a].arg != nullptr) {
            IDF_ASSIGN_OR_RETURN(v, spec.aggs[a].arg->Eval(row));
          }
          UpdateState(&states[a], spec.aggs[a].fn, v);
        }
      }
      for (auto& [key, states] : partial) {
        std::vector<AggState>& resident = view->groups[key];
        if (resident.empty()) resident.resize(num_aggs);
        for (size_t a = 0; a < num_aggs; ++a) {
          MergeStates(&resident[a], spec.aggs[a].fn, states[a]);
        }
      }
      rows_maintained_.fetch_add(sel.size(), std::memory_order_relaxed);
      return Status::OK();
    }
    case ViewKind::kJoin: {
      size_t emitted = 0;
      Status status = Status::OK();
      // Term 1: ΔL ⋈ R_cur — new left rows probe the right index pinned at
      // the CURRENT epoch (which already contains any same-pass right
      // deltas, so cross-delta pairs are produced exactly here).
      if (delta->table == spec.left.table) {
        IDF_ASSIGN_OR_RETURN(std::vector<uint32_t> sel,
                             FilterDelta(&view->left_filter, delta,
                                         spec.left.schema, *exec_));
        PinnedSnapshotPtr right_pin =
            FindPin(cur, spec.right.table, spec.right_key_col);
        if (right_pin == nullptr) {
          return Status::Internal("join view: right-side index pin missing");
        }
        for (uint32_t i : sel) {
          const Row& l = (*delta->rows)[i];
          const Value& key = l[static_cast<size_t>(spec.left_key_col)];
          if (key.is_null()) continue;  // inner join: null never matches
          for (const Row& r : right_pin->GetRows(key)) {
            if (spec.right.predicate != nullptr &&
                !EvalKeep(spec.right.predicate, r, &status)) {
              IDF_RETURN_NOT_OK(status);
              continue;
            }
            view->core_rows.push_back(ConcatRows(l, r));
            ++emitted;
          }
        }
      }
      // Term 2: L_prev ⋈ ΔR — new right rows probe the left index pinned
      // at the PREVIOUS pass, so a (ΔL, ΔR) pair of this pass is counted
      // by term 1 only.
      if (right_term && delta->table == spec.right.table) {
        IDF_ASSIGN_OR_RETURN(std::vector<uint32_t> sel,
                             FilterDelta(&view->right_filter, delta,
                                         spec.right.schema, *exec_));
        PinnedSnapshotPtr left_pin =
            FindPin(view->prev_pin, spec.left.table, spec.left_key_col);
        if (left_pin == nullptr) {
          return Status::Internal("join view: left-side index pin missing");
        }
        for (uint32_t i : sel) {
          const Row& r = (*delta->rows)[i];
          const Value& key = r[static_cast<size_t>(spec.right_key_col)];
          if (key.is_null()) continue;
          for (const Row& l : left_pin->GetRows(key)) {
            if (spec.left.predicate != nullptr &&
                !EvalKeep(spec.left.predicate, l, &status)) {
              IDF_RETURN_NOT_OK(status);
              continue;
            }
            view->core_rows.push_back(ConcatRows(l, r));
            ++emitted;
          }
        }
      }
      rows_maintained_.fetch_add(emitted, std::memory_order_relaxed);
      return Status::OK();
    }
    case ViewKind::kRecompute:
      return Status::OK();  // state is rebuilt at publish time
  }
  return Status::Internal("unreachable view kind");
}

Status MaterializedViewManager::PublishLocked(
    MaintainedView* view, const ServiceSnapshot& cur,
    std::vector<std::pair<ViewSubscription::Callback, ViewSnapshotPtr>>*
        callbacks) {
  const ViewSpec& spec = view->spec;
  RowVec out;
  if (spec.kind == ViewKind::kRecompute) {
    IDF_ASSIGN_OR_RETURN(out, RecomputeAgainst(spec.sql, cur));
    views_recomputed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    if (spec.kind == ViewKind::kAggregate) {
      out.reserve(view->groups.size());
      for (const auto& [key, states] : view->groups) {
        Row row = key;
        for (size_t a = 0; a < spec.aggs.size(); ++a) {
          AppendFinal(&row, spec.aggs[a].fn, states[a], spec.agg_out_types[a]);
        }
        out.push_back(std::move(row));
      }
      // The hash map iterates in an unspecified order; publish a canonical
      // one so equal states always render equal snapshots.
      SortRows(&out);
    } else {
      out = view->core_rows;
    }
    IDF_RETURN_NOT_OK(ApplyPostOps(spec.post, &out));
  }

  auto snapshot = std::make_shared<ViewSnapshot>();
  snapshot->epoch = cur.epoch;
  snapshot->version = ++view->published_version;
  snapshot->schema = spec.output_schema;
  snapshot->rows = std::make_shared<const RowVec>(std::move(out));
  std::atomic_store_explicit(&view->published,
                             ViewSnapshotPtr(std::move(snapshot)),
                             std::memory_order_release);

  ViewSnapshotPtr published =
      std::atomic_load_explicit(&view->published, std::memory_order_acquire);
  for (auto it = view->subscribers.begin(); it != view->subscribers.end();) {
    ViewSubscriptionPtr sub = it->lock();
    if (sub == nullptr) {
      it = view->subscribers.erase(it);
      continue;
    }
    if (sub->callback_ != nullptr) callbacks->emplace_back(sub->callback_, published);
    ++it;
  }
  return Status::OK();
}

void MaterializedViewManager::PropagateLocked(
    std::vector<std::pair<ViewSubscription::Callback, ViewSnapshotPtr>>*
        callbacks) {
  if (views_by_fingerprint_.empty()) {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.clear();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.empty()) return;
  }
  // Pin FIRST, then pop only deltas at or below the pin's epoch: the
  // exclusive gate inside PinAll synchronizes with every commit it
  // includes, so those commits' deltas are guaranteed enqueued by now.
  // Later deltas stay queued for the next pass.
  ServiceSnapshot cur = snapshots_->PinAll();
  std::vector<DeltaBatch> pass;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    while (!queue_.empty() && queue_.front().epoch <= cur.epoch) {
      pass.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
  }
  if (pass.empty()) return;

  for (auto& [fingerprint, view] : views_by_fingerprint_) {
    bool touched = false;
    for (DeltaBatch& delta : pass) {
      // A delta already covered by this view's starting pin (it subscribed
      // mid-stream) or by a previous pass is skipped for this view only.
      if (delta.epoch <= view->applied_epoch) continue;
      if (std::find(view->spec.tables.begin(), view->spec.tables.end(),
                    delta.table) == view->spec.tables.end()) {
        continue;
      }
      if (view->spec.kind != ViewKind::kRecompute) {
        Status st = ApplyDelta(view.get(), &delta, cur);
        if (!st.ok()) {
          // Never fail the append path: degrade this arrangement to the
          // recompute fallback and keep serving.
          maintenance_errors_.fetch_add(1, std::memory_order_relaxed);
          view->spec.kind = ViewKind::kRecompute;
        }
      }
      touched = true;
      deltas_propagated_.fetch_add(1, std::memory_order_relaxed);
    }
    view->applied_epoch = std::max(view->applied_epoch, cur.epoch);
    if (view->spec.kind == ViewKind::kJoin) view->prev_pin = cur;
    if (touched) {
      Status st = PublishLocked(view.get(), cur, callbacks);
      if (!st.ok() && view->spec.kind != ViewKind::kRecompute) {
        maintenance_errors_.fetch_add(1, std::memory_order_relaxed);
        view->spec.kind = ViewKind::kRecompute;
        st = PublishLocked(view.get(), cur, callbacks);
      }
      if (!st.ok()) {
        // Even recompute failed; keep the last good snapshot.
        maintenance_errors_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

Status MaterializedViewManager::InitializeState(MaintainedView* view,
                                                const ServiceSnapshot& snap) {
  ViewSpec& spec = view->spec;
  switch (spec.kind) {
    case ViewKind::kRecompute:
      return Status::OK();
    case ViewKind::kSelect:
    case ViewKind::kAggregate: {
      if (spec.kind == ViewKind::kAggregate && spec.group_exprs.empty()) {
        // A global aggregate always has exactly one group, even over an
        // empty table (COUNT(*) = 0, SUM/MIN/MAX = null).
        view->groups[Row{}].resize(spec.aggs.size());
      }
      IDF_ASSIGN_OR_RETURN(RowVec rows,
                           ScanPinnedTable(snap, spec.input.table));
      if (rows.empty()) return Status::OK();
      DeltaBatch seed;
      seed.table = spec.input.table;
      seed.epoch = snap.epoch;
      seed.rows = std::make_shared<const RowVec>(std::move(rows));
      return ApplyDelta(view, &seed, snap);
    }
    case ViewKind::kJoin: {
      // Feed the whole left table through join term 1 against `snap`:
      // L_all ⋈ R_snap is the complete initial join, and the caller then
      // sets prev_pin = snap so future right-side deltas probe exactly
      // this left state. Term 2 is disabled for the seed so a self-join
      // (left table == right table) cannot also count the rows as ΔR.
      IDF_ASSIGN_OR_RETURN(RowVec rows, ScanPinnedTable(snap, spec.left.table));
      if (rows.empty()) return Status::OK();
      DeltaBatch seed;
      seed.table = spec.left.table;
      seed.epoch = snap.epoch;
      seed.rows = std::make_shared<const RowVec>(std::move(rows));
      return ApplyDelta(view, &seed, snap, /*right_term=*/false);
    }
  }
  return Status::Internal("unreachable view kind");
}

Result<RowVec> MaterializedViewManager::RecomputeAgainst(
    const std::string& sql, const ServiceSnapshot& snap) {
  IDF_ASSIGN_OR_RETURN(
      ExecutorContextPtr exec,
      ExecutorContext::MakeWithPool(exec_->config(), exec_->shared_pool()));
  IDF_ASSIGN_OR_RETURN(SessionPtr session, Session::MakeWithContext(exec));
  InstallIndexedExtensions(*session);
  for (const PinnedTable& table : snap.tables) {
    IDF_RETURN_NOT_OK(session->RegisterTable(
        table.table, session->FromPlan(std::make_shared<SnapshotScanNode>(
                         table.primary()))));
  }
  IDF_ASSIGN_OR_RETURN(DataFrame df, session->Sql(sql));
  return session->ExecuteCollect(df.plan());
}

Result<ViewSubscriptionPtr> MaterializedViewManager::Subscribe(
    const std::string& sql, ViewSubscription::Callback callback) {
  // Plan against empty stand-in tables: classification and fingerprinting
  // need bound expressions and schemas, not data. Using the registered
  // tables' real schemas keeps the fingerprint identical to what any other
  // subscriber of the same query produces.
  std::vector<TableInfo> infos = snapshots_->TableInfos();
  IDF_ASSIGN_OR_RETURN(
      ExecutorContextPtr plan_exec,
      ExecutorContext::MakeWithPool(exec_->config(), exec_->shared_pool()));
  IDF_ASSIGN_OR_RETURN(SessionPtr session, Session::MakeWithContext(plan_exec));
  for (const TableInfo& info : infos) {
    IDF_ASSIGN_OR_RETURN(
        DataFrame df, session->CreateDataFrame(info.schema, {}, info.name));
    IDF_RETURN_NOT_OK(session->RegisterTable(info.name, std::move(df)));
  }
  IDF_ASSIGN_OR_RETURN(DataFrame df, session->Sql(sql));
  IDF_ASSIGN_OR_RETURN(LogicalPlanPtr analyzed, Analyze(df.plan()));
  IDF_ASSIGN_OR_RETURN(ViewSpec spec, BuildViewSpec(sql, analyzed));

  if (spec.kind == ViewKind::kJoin) {
    // Both probe directions need a PRIMARY (cTrie) index on the join
    // column; without one the view still works, just by recomputation.
    // indexed_columns deliberately excludes bitmap/range secondary
    // indexes: incremental join maintenance walks per-key chains through
    // a pinned trie arrangement, and a secondary index's position cut is
    // published per append batch, not pinned per epoch — maintaining
    // through one could read a cut newer than the view's epoch. A column
    // that only carries a secondary index therefore downgrades the view
    // to safe recomputation instead of risking a torn arrangement.
    auto has_index = [&infos](const std::string& table, int col) {
      for (const TableInfo& info : infos) {
        if (info.name != table) continue;
        return std::find(info.indexed_columns.begin(),
                         info.indexed_columns.end(),
                         col) != info.indexed_columns.end();
      }
      return false;
    };
    if (!has_index(spec.right.table, spec.right_key_col) ||
        !has_index(spec.left.table, spec.left_key_col)) {
      spec.kind = ViewKind::kRecompute;
      spec.core_schema = spec.output_schema;
      spec.post.clear();
    }
  }

  std::vector<std::pair<ViewSubscription::Callback, ViewSnapshotPtr>> callbacks;
  ViewSubscriptionPtr sub;
  {
    std::lock_guard<std::mutex> lock(maintenance_mu_);
    std::shared_ptr<MaintainedView> view;
    auto it = views_by_fingerprint_.find(spec.fingerprint);
    if (it != views_by_fingerprint_.end()) {
      view = it->second;
      arrangements_shared_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Bring existing views current and drain the queue, then register
      // BEFORE pinning: any commit after the registration point enqueues
      // its delta, and any commit before it is inside the pin — either
      // way, nothing is missed and applied_epoch filters overlaps.
      PropagateLocked(&callbacks);
      view = std::make_shared<MaintainedView>();
      view->id = next_id_.fetch_add(1, std::memory_order_relaxed);
      view->spec = std::move(spec);
      if (view->spec.kind == ViewKind::kSelect ||
          view->spec.kind == ViewKind::kAggregate) {
        view->input_filter.Build(view->spec.input.predicate,
                                 view->spec.input.schema);
      } else if (view->spec.kind == ViewKind::kJoin) {
        view->left_filter.Build(view->spec.left.predicate,
                                view->spec.left.schema);
        view->right_filter.Build(view->spec.right.predicate,
                                 view->spec.right.schema);
      }
      views_by_fingerprint_[view->spec.fingerprint] = view;
      has_views_.store(true, std::memory_order_release);

      ServiceSnapshot snap = snapshots_->PinAll();
      Status st = InitializeState(view.get(), snap);
      if (st.ok()) {
        view->applied_epoch = snap.epoch;
        if (view->spec.kind == ViewKind::kJoin) view->prev_pin = snap;
        st = PublishLocked(view.get(), snap, &callbacks);
      }
      if (!st.ok()) {
        views_by_fingerprint_.erase(view->spec.fingerprint);
        if (views_by_fingerprint_.empty()) {
          has_views_.store(false, std::memory_order_release);
        }
        return st;
      }
    }
    sub = std::make_shared<ViewSubscription>();
    sub->id_ = next_id_.fetch_add(1, std::memory_order_relaxed);
    sub->sql_ = sql;
    sub->kind_ = view->spec.kind;
    sub->callback_ = std::move(callback);
    sub->view_ = view;
    view->subscribers.push_back(sub);
    ++view->subscriber_count;
  }
  for (auto& [cb, snapshot] : callbacks) cb(*snapshot);
  return sub;
}

Status MaterializedViewManager::Unsubscribe(const ViewSubscriptionPtr& sub) {
  if (sub == nullptr || sub->view_ == nullptr) {
    return Status::InvalidArgument("Unsubscribe: null subscription");
  }
  std::lock_guard<std::mutex> lock(maintenance_mu_);
  const std::shared_ptr<MaintainedView>& view = sub->view_;
  bool found = false;
  for (auto it = view->subscribers.begin(); it != view->subscribers.end();) {
    ViewSubscriptionPtr s = it->lock();
    if (s == nullptr) {
      it = view->subscribers.erase(it);
    } else if (s == sub) {
      it = view->subscribers.erase(it);
      found = true;
    } else {
      ++it;
    }
  }
  if (!found) {
    return Status::InvalidArgument("Unsubscribe: already unsubscribed");
  }
  --view->subscriber_count;
  if (view->subscriber_count == 0) {
    views_by_fingerprint_.erase(view->spec.fingerprint);
    if (views_by_fingerprint_.empty()) {
      has_views_.store(false, std::memory_order_release);
      std::lock_guard<std::mutex> queue_lock(queue_mu_);
      queue_.clear();
    }
  }
  // The subscription keeps its shared_ptr to the (unregistered) view, so
  // Snapshot() stays valid — it just stops advancing.
  return Status::OK();
}

ViewManagerStats MaterializedViewManager::Stats() const {
  ViewManagerStats stats;
  {
    std::lock_guard<std::mutex> lock(maintenance_mu_);
    stats.views_registered = views_by_fingerprint_.size();
    for (const auto& [fingerprint, view] : views_by_fingerprint_) {
      stats.view_subscribers += view->subscriber_count;
    }
  }
  stats.arrangements_shared =
      arrangements_shared_.load(std::memory_order_relaxed);
  stats.deltas_propagated = deltas_propagated_.load(std::memory_order_relaxed);
  stats.rows_maintained_incrementally =
      rows_maintained_.load(std::memory_order_relaxed);
  stats.views_recomputed = views_recomputed_.load(std::memory_order_relaxed);
  stats.maintenance_errors =
      maintenance_errors_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace idf
