#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace idf {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad address " + host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(fd);
    return Errno("connect " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

Status Client::SendFrame(Op op, const std::string& payload) {
  return SendAll(EncodeFrame(op, payload));
}

Status Client::SendAll(const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = write(fd_, bytes.data() + sent, bytes.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Frame> Client::ReadFrame() {
  Frame frame;
  while (!decoder_.Next(&frame)) {
    char buf[64 * 1024];
    const ssize_t n = read(fd_, buf, sizeof(buf));
    if (n == 0) return Status::Internal("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    IDF_RETURN_NOT_OK(decoder_.Feed(buf, static_cast<size_t>(n)));
  }
  return frame;
}

Result<Frame> Client::ReadReply(Op expected) {
  IDF_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.op == Op::kError || frame.op == Op::kBusy) {
    return DecodeError(frame.payload, frame.op);
  }
  if (frame.op != expected) {
    return Status::Internal("unexpected reply opcode " +
                            std::to_string(static_cast<unsigned>(frame.op)));
  }
  return frame;
}

Result<PreparedReply> Client::Prepare(const std::string& sql) {
  std::string payload;
  WireWriter w(&payload);
  w.PutString(sql);
  IDF_RETURN_NOT_OK(SendFrame(Op::kPrepare, payload));
  IDF_ASSIGN_OR_RETURN(Frame frame, ReadReply(Op::kOkPrepared));
  return DecodeOkPrepared(frame.payload);
}

Result<RowsReply> Client::Execute(uint64_t handle,
                                  const std::vector<Value>& params) {
  IDF_RETURN_NOT_OK(SendFrame(Op::kExecute, EncodeExecute(handle, params)));
  IDF_ASSIGN_OR_RETURN(Frame frame, ReadReply(Op::kOkRows));
  return DecodeOkRows(frame.payload);
}

Result<std::vector<RowsReply>> Client::ExecutePipelined(
    uint64_t handle, const std::vector<std::vector<Value>>& param_sets,
    int busy_retries) {
  std::vector<RowsReply> replies(param_sets.size());
  // Indices still awaiting a successful reply; BUSY rounds retry the
  // remainder, keeping replies aligned with param_sets.
  std::vector<size_t> todo(param_sets.size());
  for (size_t i = 0; i < todo.size(); ++i) todo[i] = i;
  for (int attempt = 0; attempt <= busy_retries && !todo.empty(); ++attempt) {
    // Write the whole burst as one buffer before reading: one syscall for
    // N requests, and replies stream back in order.
    std::string burst;
    for (size_t i : todo) {
      burst += EncodeFrame(Op::kExecute, EncodeExecute(handle, param_sets[i]));
    }
    IDF_RETURN_NOT_OK(SendAll(burst));
    std::vector<size_t> busy;
    for (size_t i : todo) {
      IDF_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
      if (frame.op == Op::kBusy) {
        busy.push_back(i);
        continue;
      }
      if (frame.op == Op::kError) {
        return DecodeError(frame.payload, frame.op);
      }
      if (frame.op != Op::kOkRows) {
        return Status::Internal(
            "unexpected reply opcode " +
            std::to_string(static_cast<unsigned>(frame.op)));
      }
      IDF_ASSIGN_OR_RETURN(replies[i], DecodeOkRows(frame.payload));
    }
    todo.swap(busy);
  }
  if (!todo.empty()) {
    return Status::CapacityError(std::to_string(todo.size()) +
                                 " request(s) still BUSY after " +
                                 std::to_string(busy_retries) + " retries");
  }
  return replies;
}

Result<RowsReply> Client::Query(const std::string& sql) {
  std::string payload;
  WireWriter w(&payload);
  w.PutString(sql);
  IDF_RETURN_NOT_OK(SendFrame(Op::kQuery, payload));
  IDF_ASSIGN_OR_RETURN(Frame frame, ReadReply(Op::kOkRows));
  return DecodeOkRows(frame.payload);
}

Status Client::Close(uint64_t handle) {
  std::string payload;
  WireWriter w(&payload);
  w.PutU64(handle);
  IDF_RETURN_NOT_OK(SendFrame(Op::kClose, payload));
  return ReadReply(Op::kOkRows).status();
}

Result<std::string> Client::Stats() {
  IDF_RETURN_NOT_OK(SendFrame(Op::kStats, ""));
  IDF_ASSIGN_OR_RETURN(Frame frame, ReadReply(Op::kStatsJson));
  WireReader r(frame.payload);
  IDF_ASSIGN_OR_RETURN(std::string json, r.String());
  IDF_RETURN_NOT_OK(r.ExpectEnd());
  return json;
}

}  // namespace net
}  // namespace idf
