#include "net/protocol.h"

#include <cstring>

namespace idf {
namespace net {

namespace {

constexpr uint8_t kNullTag = 0xFF;

void PutLE(std::string* out, uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

}  // namespace

void WireWriter::PutU16(uint16_t v) { PutLE(out_, v, 2); }
void WireWriter::PutU32(uint32_t v) { PutLE(out_, v, 4); }
void WireWriter::PutU64(uint64_t v) { PutLE(out_, v, 8); }

void WireWriter::PutF64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_->append(s);
}

void WireWriter::PutValue(const Value& v) {
  if (v.is_null()) {
    PutU8(kNullTag);
  } else if (v.is_bool()) {
    PutU8(static_cast<uint8_t>(TypeId::kBool));
    PutU8(v.bool_value() ? 1 : 0);
  } else if (v.is_int32()) {
    PutU8(static_cast<uint8_t>(TypeId::kInt32));
    PutU32(static_cast<uint32_t>(v.int32_value()));
  } else if (v.is_int64()) {
    PutU8(static_cast<uint8_t>(TypeId::kInt64));
    PutU64(static_cast<uint64_t>(v.int64_value()));
  } else if (v.is_double()) {
    PutU8(static_cast<uint8_t>(TypeId::kFloat64));
    PutF64(v.double_value());
  } else {
    PutU8(static_cast<uint8_t>(TypeId::kString));
    PutString(v.string_value());
  }
}

void WireWriter::PutRow(const Row& row) {
  PutU16(static_cast<uint16_t>(row.size()));
  for (const Value& v : row) PutValue(v);
}

void WireWriter::PutSchema(const Schema& schema) {
  PutU16(static_cast<uint16_t>(schema.num_fields()));
  for (const Field& f : schema.fields()) {
    PutString(f.name);
    PutU8(static_cast<uint8_t>(f.type));
  }
}

Status WireReader::Need(size_t n) const {
  if (size_ - pos_ < n) {
    return Status::InvalidArgument("truncated frame payload: need " +
                                   std::to_string(n) + " bytes, have " +
                                   std::to_string(size_ - pos_));
  }
  return Status::OK();
}

Result<uint8_t> WireReader::U8() {
  IDF_RETURN_NOT_OK(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint16_t> WireReader::U16() {
  IDF_RETURN_NOT_OK(Need(2));
  uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 2;
  return v;
}

Result<uint32_t> WireReader::U32() {
  IDF_RETURN_NOT_OK(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> WireReader::U64() {
  IDF_RETURN_NOT_OK(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<double> WireReader::F64() {
  IDF_ASSIGN_OR_RETURN(uint64_t bits, U64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> WireReader::String() {
  IDF_ASSIGN_OR_RETURN(uint32_t len, U32());
  IDF_RETURN_NOT_OK(Need(len));
  std::string s(data_ + pos_, len);
  pos_ += len;
  return s;
}

Result<Value> WireReader::ReadValue() {
  IDF_ASSIGN_OR_RETURN(uint8_t tag, U8());
  if (tag == kNullTag) return Value::Null();
  switch (static_cast<TypeId>(tag)) {
    case TypeId::kBool: {
      IDF_ASSIGN_OR_RETURN(uint8_t b, U8());
      return Value(b != 0);
    }
    case TypeId::kInt32: {
      IDF_ASSIGN_OR_RETURN(uint32_t v, U32());
      return Value(static_cast<int32_t>(v));
    }
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      IDF_ASSIGN_OR_RETURN(uint64_t v, U64());
      return Value(static_cast<int64_t>(v));
    }
    case TypeId::kFloat64: {
      IDF_ASSIGN_OR_RETURN(double v, F64());
      return Value(v);
    }
    case TypeId::kString: {
      IDF_ASSIGN_OR_RETURN(std::string s, String());
      return Value(std::move(s));
    }
    default:
      return Status::InvalidArgument("unknown value tag " +
                                     std::to_string(tag));
  }
}

Result<Row> WireReader::ReadRow() {
  IDF_ASSIGN_OR_RETURN(uint16_t n, U16());
  Row row;
  row.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    IDF_ASSIGN_OR_RETURN(Value v, ReadValue());
    row.push_back(std::move(v));
  }
  return row;
}

Result<SchemaPtr> WireReader::ReadSchema() {
  IDF_ASSIGN_OR_RETURN(uint16_t n, U16());
  std::vector<Field> fields;
  fields.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    Field f;
    IDF_ASSIGN_OR_RETURN(f.name, String());
    IDF_ASSIGN_OR_RETURN(uint8_t type, U8());
    if (type > static_cast<uint8_t>(TypeId::kTimestamp)) {
      return Status::InvalidArgument("unknown field type " +
                                     std::to_string(type));
    }
    f.type = static_cast<TypeId>(type);
    fields.push_back(std::move(f));
  }
  return Schema::Make(std::move(fields));
}

Status WireReader::ExpectEnd() const {
  if (pos_ != size_) {
    return Status::InvalidArgument(
        "frame payload has " + std::to_string(size_ - pos_) +
        " trailing byte(s)");
  }
  return Status::OK();
}

std::string EncodeFrame(Op op, const std::string& payload) {
  std::string out;
  out.reserve(5 + payload.size());
  const uint32_t len = static_cast<uint32_t>(payload.size()) + 1;
  PutLE(&out, len, 4);
  out.push_back(static_cast<char>(op));
  out.append(payload);
  return out;
}

Status FrameDecoder::Feed(const char* data, size_t size) {
  if (poisoned_) {
    return Status::InvalidArgument("frame decoder poisoned by earlier error");
  }
  buf_.append(data, size);
  // Consume via an offset and compact once at the end: erasing the front
  // of the buffer per frame would memmove the tail once per frame when a
  // pipelined burst of replies lands in a single read.
  size_t pos = 0;
  Status status = Status::OK();
  for (;;) {
    if (buf_.size() - pos < 4) break;
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(static_cast<uint8_t>(buf_[pos + static_cast<size_t>(i)]))
             << (8 * i);
    }
    if (len == 0 || len > kMaxFrameBytes) {
      poisoned_ = true;
      status = Status::InvalidArgument(
          len == 0 ? "zero-length frame"
                   : "frame of " + std::to_string(len) +
                         " bytes exceeds the " +
                         std::to_string(kMaxFrameBytes) + "-byte limit");
      break;
    }
    if (buf_.size() - pos < 4u + len) break;  // partial frame
    Frame f;
    f.op = static_cast<Op>(static_cast<uint8_t>(buf_[pos + 4]));
    f.payload.assign(buf_, pos + 5, len - 1);
    ready_.push_back(std::move(f));
    pos += 4u + len;
  }
  buf_.erase(0, pos);
  return status;
}

bool FrameDecoder::Next(Frame* out) {
  if (ready_.empty()) return false;
  *out = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

std::string EncodeError(const Status& status) {
  std::string payload;
  WireWriter w(&payload);
  w.PutU8(static_cast<uint8_t>(status.code()));
  w.PutString(status.message());
  return payload;
}

std::string EncodeBusy(const Status& status) { return EncodeError(status); }

Status DecodeError(const std::string& payload, Op op) {
  WireReader r(payload);
  Result<uint8_t> code = r.U8();
  if (!code.ok()) return code.status();
  Result<std::string> msg = r.String();
  if (!msg.ok()) return msg.status();
  Status end = r.ExpectEnd();
  if (!end.ok()) return end;
  if (op == Op::kBusy) return Status::CapacityError(*std::move(msg));
  if (*code == 0 ||
      *code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    return Status::Internal("server error: " + *msg);
  }
  return Status(static_cast<StatusCode>(*code), *std::move(msg));
}

std::string EncodeOkRows(uint64_t epoch, const Schema& schema,
                         const RowVec& rows) {
  std::string payload;
  WireWriter w(&payload);
  w.PutU64(epoch);
  w.PutSchema(schema);
  w.PutU32(static_cast<uint32_t>(rows.size()));
  for (const Row& row : rows) w.PutRow(row);
  return payload;
}

Result<RowsReply> DecodeOkRows(const std::string& payload) {
  WireReader r(payload);
  RowsReply reply;
  IDF_ASSIGN_OR_RETURN(reply.epoch, r.U64());
  IDF_ASSIGN_OR_RETURN(reply.schema, r.ReadSchema());
  IDF_ASSIGN_OR_RETURN(uint32_t n, r.U32());
  reply.rows.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    IDF_ASSIGN_OR_RETURN(Row row, r.ReadRow());
    reply.rows.push_back(std::move(row));
  }
  IDF_RETURN_NOT_OK(r.ExpectEnd());
  return reply;
}

std::string EncodeOkPrepared(uint64_t handle,
                             const std::vector<TypeId>& param_types,
                             const Schema& schema) {
  std::string payload;
  WireWriter w(&payload);
  w.PutU64(handle);
  w.PutU16(static_cast<uint16_t>(param_types.size()));
  for (TypeId t : param_types) w.PutU8(static_cast<uint8_t>(t));
  w.PutSchema(schema);
  return payload;
}

Result<PreparedReply> DecodeOkPrepared(const std::string& payload) {
  WireReader r(payload);
  PreparedReply reply;
  IDF_ASSIGN_OR_RETURN(reply.handle, r.U64());
  IDF_ASSIGN_OR_RETURN(uint16_t n, r.U16());
  reply.param_types.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    IDF_ASSIGN_OR_RETURN(uint8_t t, r.U8());
    if (t > static_cast<uint8_t>(TypeId::kTimestamp)) {
      return Status::InvalidArgument("unknown parameter type " +
                                     std::to_string(t));
    }
    reply.param_types.push_back(static_cast<TypeId>(t));
  }
  IDF_ASSIGN_OR_RETURN(reply.schema, r.ReadSchema());
  IDF_RETURN_NOT_OK(r.ExpectEnd());
  return reply;
}

std::string EncodeExecute(uint64_t handle, const std::vector<Value>& params) {
  std::string payload;
  WireWriter w(&payload);
  w.PutU64(handle);
  w.PutU16(static_cast<uint16_t>(params.size()));
  for (const Value& v : params) w.PutValue(v);
  return payload;
}

Result<ExecuteRequest> DecodeExecute(const std::string& payload) {
  WireReader r(payload);
  ExecuteRequest req;
  IDF_ASSIGN_OR_RETURN(req.handle, r.U64());
  IDF_ASSIGN_OR_RETURN(uint16_t n, r.U16());
  req.params.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    IDF_ASSIGN_OR_RETURN(Value v, r.ReadValue());
    req.params.push_back(std::move(v));
  }
  IDF_RETURN_NOT_OK(r.ExpectEnd());
  return req;
}

}  // namespace net
}  // namespace idf
