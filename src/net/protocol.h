// Wire protocol for the network front end (DESIGN.md §15).
//
// Every message is one length-prefixed frame:
//
//   [u32 length, little-endian][u8 opcode][payload...]
//
// where `length` counts the opcode byte plus the payload (so an empty
// message has length 1). Frames larger than kMaxFrameBytes are a protocol
// error: the decoder rejects them without buffering, which bounds memory
// per connection and makes torn or hostile length prefixes harmless.
//
// Requests:
//   PREPARE  [sql: string]
//   EXECUTE  [handle: u64][nparams: u16][value...]
//   QUERY    [sql: string]                      (ad-hoc, unprepared)
//   CLOSE    [handle: u64]
//   STATS    []
//
// Responses:
//   OK_PREPARED [handle: u64][nparams: u16][type: u8 ...][schema]
//   OK_ROWS     [epoch: u64][schema][nrows: u32][row...]
//   STATS_JSON  [json: string]
//   ERROR       [code: u8][message: string]
//   BUSY        [message: string]               (admission backpressure)
//
// Encodings: string = [u32 length][bytes]; value = [u8 tag][payload]
// where tag 0xFF is NULL and otherwise a TypeId; schema = [u16 nfields]
// ([string name][u8 type])*. All integers little-endian.
//
// The decoder is incremental: FrameDecoder::Feed accepts arbitrary byte
// chunks (partial frames, many frames at once) and surfaces complete
// frames in order, which is exactly what a non-blocking socket read loop
// needs.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "types/row.h"
#include "types/schema.h"

namespace idf {
namespace net {

/// Hard per-frame ceiling (16 MiB): larger prefixes are rejected before
/// any payload is buffered.
constexpr uint32_t kMaxFrameBytes = 16u << 20;

enum class Op : uint8_t {
  // Requests.
  kPrepare = 0x01,
  kExecute = 0x02,
  kQuery = 0x03,
  kClose = 0x04,
  kStats = 0x05,
  // Responses.
  kOkPrepared = 0x81,
  kOkRows = 0x82,
  kStatsJson = 0x83,
  kError = 0x84,
  kBusy = 0x85,
};

/// One decoded frame: opcode plus raw payload bytes.
struct Frame {
  Op op = Op::kError;
  std::string payload;
};

/// Appends integers/strings/values in wire byte order to a buffer.
class WireWriter {
 public:
  explicit WireWriter(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutF64(double v);
  void PutString(const std::string& s);
  void PutValue(const Value& v);
  void PutRow(const Row& row);
  void PutSchema(const Schema& schema);

 private:
  std::string* out_;
};

/// Bounds-checked cursor over a frame payload. Every accessor fails with
/// InvalidArgument instead of reading past the end, so a malformed or
/// truncated payload can never crash the server.
class WireReader {
 public:
  WireReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::string& payload)
      : WireReader(payload.data(), payload.size()) {}

  Result<uint8_t> U8();
  Result<uint16_t> U16();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<double> F64();
  Result<std::string> String();
  Result<Value> ReadValue();
  Result<Row> ReadRow();
  Result<SchemaPtr> ReadSchema();

  size_t remaining() const { return size_ - pos_; }
  /// Fails unless the whole payload was consumed (trailing garbage is a
  /// protocol error, not padding).
  Status ExpectEnd() const;

 private:
  Status Need(size_t n) const;
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Wraps `op` + `payload` in a length-prefixed frame ready to write to a
/// socket.
std::string EncodeFrame(Op op, const std::string& payload);

/// Incremental frame reassembly over arbitrary byte chunks.
class FrameDecoder {
 public:
  /// Consumes `size` bytes from the peer. Complete frames become
  /// available via Next(). Fails (permanently) on an oversized or
  /// zero-length frame prefix.
  Status Feed(const char* data, size_t size);

  /// Pops the next complete frame into `out`; false when none is ready.
  bool Next(Frame* out);

 private:
  std::string buf_;
  std::deque<Frame> ready_;
  bool poisoned_ = false;
};

// Response payload builders / parsers used by both server and client.

std::string EncodeError(const Status& status);
std::string EncodeBusy(const Status& status);
/// Reconstructs the Status carried by an ERROR/BUSY payload (a malformed
/// payload itself decodes to InvalidArgument). Never returns OK.
Status DecodeError(const std::string& payload, Op op);

std::string EncodeOkRows(uint64_t epoch, const Schema& schema,
                         const RowVec& rows);
struct RowsReply {
  uint64_t epoch = 0;
  SchemaPtr schema;
  RowVec rows;
};
Result<RowsReply> DecodeOkRows(const std::string& payload);

std::string EncodeOkPrepared(uint64_t handle,
                             const std::vector<TypeId>& param_types,
                             const Schema& schema);
struct PreparedReply {
  uint64_t handle = 0;
  std::vector<TypeId> param_types;
  SchemaPtr schema;
};
Result<PreparedReply> DecodeOkPrepared(const std::string& payload);

std::string EncodeExecute(uint64_t handle, const std::vector<Value>& params);
struct ExecuteRequest {
  uint64_t handle = 0;
  std::vector<Value> params;
};
Result<ExecuteRequest> DecodeExecute(const std::string& payload);

}  // namespace net
}  // namespace idf
