#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/protocol.h"

namespace idf {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

/// One client connection's state machine: reassembles request frames
/// from whatever the socket delivers and drains responses through a
/// write buffer that survives short writes.
struct Connection {
  int fd = -1;
  FrameDecoder decoder;
  std::string outbuf;
  size_t outpos = 0;
  bool close_after_flush = false;

  void Queue(std::string frame) { outbuf.append(frame); }
  bool want_write() const { return outpos < outbuf.size(); }
};

}  // namespace

struct Server::Impl {
  QueryServicePtr service;
  ServerConfig config;
  int listen_fd = -1;
  std::atomic<bool> running{false};

  struct IoLoop {
    int epoll_fd = -1;
    int wake_fd = -1;  // eventfd: shutdown + new-connection kick
    std::mutex mu;     // guards pending
    std::vector<int> pending;
    std::unordered_map<int, Connection> conns;
    std::thread thread;
  };
  std::vector<std::unique_ptr<IoLoop>> loops;
  std::thread accept_thread;
  int accept_wake_fd = -1;

  ~Impl() { StopAll(); }

  Status Listen() {
    listen_fd = socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) return Errno("socket");
    const int one = 1;
    setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config.port);
    if (inet_pton(AF_INET, config.host.c_str(), &addr.sin_addr) != 1) {
      return Status::InvalidArgument("bad listen address " + config.host);
    }
    if (bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      return Errno("bind " + config.host + ":" + std::to_string(config.port));
    }
    if (listen(listen_fd, 128) < 0) return Errno("listen");
    IDF_RETURN_NOT_OK(SetNonBlocking(listen_fd));
    // Read the kernel-assigned port back (config.port == 0).
    socklen_t len = sizeof(addr);
    if (getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
      return Errno("getsockname");
    }
    config.port = ntohs(addr.sin_port);
    return Status::OK();
  }

  Status StartThreads() {
    running.store(true, std::memory_order_release);
    accept_wake_fd = eventfd(0, EFD_NONBLOCK);
    if (accept_wake_fd < 0) return Errno("eventfd");
    for (size_t i = 0; i < config.io_threads; ++i) {
      auto loop = std::make_unique<IoLoop>();
      loop->epoll_fd = epoll_create1(0);
      loop->wake_fd = eventfd(0, EFD_NONBLOCK);
      if (loop->epoll_fd < 0 || loop->wake_fd < 0) return Errno("epoll/eventfd");
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = loop->wake_fd;
      if (epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &ev) < 0) {
        return Errno("epoll_ctl(wake)");
      }
      loops.push_back(std::move(loop));
    }
    for (auto& loop : loops) {
      IoLoop* l = loop.get();
      l->thread = std::thread([this, l] { RunLoop(l); });
    }
    accept_thread = std::thread([this] { RunAccept(); });
    return Status::OK();
  }

  void StopAll() {
    if (!running.exchange(false)) {
      // Never started or already stopped; still reap any resources.
    } else {
      const uint64_t one = 1;
      if (accept_wake_fd >= 0) {
        [[maybe_unused]] ssize_t n =
            write(accept_wake_fd, &one, sizeof(one));
      }
      for (auto& loop : loops) {
        [[maybe_unused]] ssize_t n = write(loop->wake_fd, &one, sizeof(one));
      }
    }
    if (accept_thread.joinable()) accept_thread.join();
    for (auto& loop : loops) {
      if (loop->thread.joinable()) loop->thread.join();
    }
    for (auto& loop : loops) {
      for (auto& [fd, conn] : loop->conns) close(fd);
      loop->conns.clear();
      for (int fd : loop->pending) close(fd);
      loop->pending.clear();
      if (loop->epoll_fd >= 0) close(loop->epoll_fd);
      if (loop->wake_fd >= 0) close(loop->wake_fd);
      loop->epoll_fd = loop->wake_fd = -1;
    }
    loops.clear();
    if (accept_wake_fd >= 0) close(accept_wake_fd);
    accept_wake_fd = -1;
    if (listen_fd >= 0) close(listen_fd);
    listen_fd = -1;
  }

  void RunAccept() {
    const int epfd = epoll_create1(0);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd;
    epoll_ctl(epfd, EPOLL_CTL_ADD, listen_fd, &ev);
    ev.data.fd = accept_wake_fd;
    epoll_ctl(epfd, EPOLL_CTL_ADD, accept_wake_fd, &ev);
    size_t next_loop = 0;
    while (running.load(std::memory_order_acquire)) {
      epoll_event events[16];
      const int n = epoll_wait(epfd, events, 16, 100);
      if (n < 0 && errno != EINTR) break;
      for (;;) {
        const int fd = accept(listen_fd, nullptr, nullptr);
        if (fd < 0) break;  // EAGAIN: drained
        if (!SetNonBlocking(fd).ok()) {
          close(fd);
          continue;
        }
        const int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        service->NoteNetConnection();
        // Hand the fd to a loop round-robin; the loop adopts it at its
        // next wakeup (connections are only ever touched by their loop).
        IoLoop* loop = loops[next_loop++ % loops.size()].get();
        {
          std::lock_guard<std::mutex> lock(loop->mu);
          loop->pending.push_back(fd);
        }
        const uint64_t kick = 1;
        [[maybe_unused]] ssize_t w = write(loop->wake_fd, &kick, sizeof(kick));
      }
    }
    close(epfd);
  }

  void UpdateInterest(IoLoop* loop, Connection& conn) {
    epoll_event ev{};
    ev.events = EPOLLIN | (conn.want_write() ? EPOLLOUT : 0u);
    ev.data.fd = conn.fd;
    epoll_ctl(loop->epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
  }

  void CloseConn(IoLoop* loop, int fd) {
    epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    close(fd);
    loop->conns.erase(fd);
  }

  /// Writes as much of the out buffer as the socket accepts right now.
  /// Returns false when the connection died.
  bool Flush(Connection& conn) {
    while (conn.want_write()) {
      const ssize_t n = write(conn.fd, conn.outbuf.data() + conn.outpos,
                              conn.outbuf.size() - conn.outpos);
      if (n > 0) {
        conn.outpos += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    conn.outbuf.clear();
    conn.outpos = 0;
    return !conn.close_after_flush;
  }

  /// Executes one request frame and queues the response.
  void HandleFrame(Connection& conn, const Frame& frame) {
    service->NoteNetRequest();
    switch (frame.op) {
      case Op::kPrepare: {
        WireReader r(frame.payload);
        Result<std::string> sql = r.String();
        Status status = sql.ok() ? r.ExpectEnd() : sql.status();
        if (!status.ok()) {
          conn.Queue(EncodeFrame(Op::kError, EncodeError(status)));
          return;
        }
        Result<PreparedInfo> info = service->Prepare(sql.ValueUnsafe());
        if (!info.ok()) {
          conn.Queue(EncodeFrame(Op::kError, EncodeError(info.status())));
          return;
        }
        conn.Queue(EncodeFrame(
            Op::kOkPrepared,
            EncodeOkPrepared(info->handle, info->param_types,
                             *info->result_schema)));
        return;
      }
      case Op::kExecute: {
        Result<ExecuteRequest> req = DecodeExecute(frame.payload);
        if (!req.ok()) {
          conn.Queue(EncodeFrame(Op::kError, EncodeError(req.status())));
          return;
        }
        QueryResult result =
            service->ExecutePrepared(req->handle, req->params);
        QueueQueryResult(conn, result);
        return;
      }
      case Op::kQuery: {
        WireReader r(frame.payload);
        Result<std::string> sql = r.String();
        Status status = sql.ok() ? r.ExpectEnd() : sql.status();
        if (!status.ok()) {
          conn.Queue(EncodeFrame(Op::kError, EncodeError(status)));
          return;
        }
        QueryResult result = service->Execute(sql.ValueUnsafe());
        QueueQueryResult(conn, result);
        return;
      }
      case Op::kClose: {
        WireReader r(frame.payload);
        Result<uint64_t> handle = r.U64();
        Status status = handle.ok() ? r.ExpectEnd() : handle.status();
        if (status.ok()) status = service->ClosePrepared(*handle);
        if (!status.ok()) {
          conn.Queue(EncodeFrame(Op::kError, EncodeError(status)));
          return;
        }
        conn.Queue(EncodeFrame(Op::kOkRows, EncodeOkRows(0, Schema(), {})));
        return;
      }
      case Op::kStats: {
        std::string payload;
        WireWriter w(&payload);
        w.PutString(service->Stats().ToJson());
        conn.Queue(EncodeFrame(Op::kStatsJson, payload));
        return;
      }
      default:
        conn.Queue(EncodeFrame(
            Op::kError,
            EncodeError(Status::InvalidArgument(
                "unknown opcode " +
                std::to_string(static_cast<unsigned>(frame.op))))));
        return;
    }
  }

  void QueueQueryResult(Connection& conn, const QueryResult& result) {
    if (result.status.ok()) {
      conn.Queue(EncodeFrame(
          Op::kOkRows,
          EncodeOkRows(result.epoch,
                       result.schema ? *result.schema : Schema(),
                       result.rows)));
    } else if (result.status.IsCapacityError()) {
      // Backpressure, not failure: the client should retry.
      service->NoteNetBusyRejection();
      conn.Queue(EncodeFrame(Op::kBusy, EncodeBusy(result.status)));
    } else {
      conn.Queue(EncodeFrame(Op::kError, EncodeError(result.status)));
    }
  }

  void RunLoop(IoLoop* loop) {
    while (running.load(std::memory_order_acquire)) {
      epoll_event events[32];
      const int n = epoll_wait(loop->epoll_fd, events, 32, 100);
      if (n < 0 && errno != EINTR) break;
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == loop->wake_fd) {
          uint64_t drain;
          while (read(loop->wake_fd, &drain, sizeof(drain)) > 0) {
          }
          AdoptPending(loop);
          continue;
        }
        auto it = loop->conns.find(fd);
        if (it == loop->conns.end()) continue;
        Connection& conn = it->second;
        bool alive = true;
        if (events[i].events & (EPOLLHUP | EPOLLERR)) alive = false;
        if (alive && (events[i].events & EPOLLIN)) alive = ReadSome(conn);
        if (alive && (events[i].events & EPOLLOUT)) alive = Flush(conn);
        if (!alive) {
          CloseConn(loop, fd);
        } else {
          UpdateInterest(loop, conn);
        }
      }
      // A stopped epoll_wait timeout also adopts stragglers (covers a
      // wakeup racing the epoll registration).
      AdoptPending(loop);
    }
  }

  void AdoptPending(IoLoop* loop) {
    std::vector<int> fds;
    {
      std::lock_guard<std::mutex> lock(loop->mu);
      fds.swap(loop->pending);
    }
    for (int fd : fds) {
      Connection conn;
      conn.fd = fd;
      loop->conns.emplace(fd, std::move(conn));
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      if (epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
        close(fd);
        loop->conns.erase(fd);
      }
    }
  }

  /// Reads whatever the socket has, feeds the frame decoder, and serves
  /// every complete frame. Returns false when the connection died.
  bool ReadSome(Connection& conn) {
    char buf[64 * 1024];
    for (;;) {
      const ssize_t n = read(conn.fd, buf, sizeof(buf));
      if (n == 0) return false;  // peer closed
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        return false;
      }
      Status fed = conn.decoder.Feed(buf, static_cast<size_t>(n));
      if (!fed.ok()) {
        // Protocol violation (oversized frame, ...): tell the peer once,
        // then close after the error drains.
        conn.Queue(EncodeFrame(Op::kError, EncodeError(fed)));
        conn.close_after_flush = true;
        break;
      }
    }
    Frame frame;
    while (conn.decoder.Next(&frame)) HandleFrame(conn, frame);
    return Flush(conn);
  }
};

Server::Server(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {
  port_ = impl_->config.port;
}

Server::~Server() { Stop(); }

void Server::Stop() {
  if (impl_ != nullptr) impl_->StopAll();
}

Result<std::unique_ptr<Server>> Server::Start(QueryServicePtr service,
                                              const ServerConfig& config) {
  if (service == nullptr) {
    return Status::InvalidArgument("net::Server needs a QueryService");
  }
  if (config.io_threads == 0) {
    return Status::InvalidArgument("io_threads must be at least 1");
  }
  auto impl = std::make_unique<Impl>();
  impl->service = std::move(service);
  impl->config = config;
  IDF_RETURN_NOT_OK(impl->Listen());
  IDF_RETURN_NOT_OK(impl->StartThreads());
  return std::unique_ptr<Server>(new Server(std::move(impl)));
}

}  // namespace net
}  // namespace idf
