// Async network front end for QueryService (DESIGN.md §15).
//
// A small io-thread-pool server: one accept thread plus `io_threads`
// event loops, each running its own epoll set of non-blocking
// connections. A connection is a state machine — bytes arrive in
// arbitrary chunks, a FrameDecoder reassembles frames, responses queue
// in a per-connection write buffer that drains on EPOLLOUT — so torn
// reads, short writes, and pipelined request bursts are all handled
// without a thread per connection.
//
// Requests execute inline on the owning loop thread against the bound
// QueryService; actual query work fans out across the service's shared
// worker pool, so loop threads stay thin. Admission backpressure
// (CapacityError) maps to a protocol-level BUSY response instead of an
// error or a dropped connection: the client sees "try again", the
// service sheds load, and the connection stays usable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "service/query_service.h"

namespace idf {
namespace net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via Server::port().
  uint16_t port = 0;
  /// Event-loop threads. Each owns a disjoint set of connections.
  size_t io_threads = 2;
};

class Server {
 public:
  /// Binds, listens, and starts the accept + io threads.
  static Result<std::unique_ptr<Server>> Start(QueryServicePtr service,
                                               const ServerConfig& config);

  /// Stops accepting, closes every connection, joins all threads.
  /// Idempotent; also run by the destructor.
  void Stop();

  ~Server();

  uint16_t port() const { return port_; }

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

 private:
  struct Impl;
  explicit Server(std::unique_ptr<Impl> impl);

  std::unique_ptr<Impl> impl_;
  uint16_t port_ = 0;
};

}  // namespace net
}  // namespace idf
