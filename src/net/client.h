// Blocking client for the network front end: one TCP connection, one
// request/response exchange per call — plus a pipelined Execute that
// keeps many requests in flight on the single connection, which is what
// it takes to beat the loopback round-trip on point lookups.
//
// Not thread-safe: use one Client per thread (the server multiplexes any
// number of connections).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/protocol.h"

namespace idf {
namespace net {

class Client {
 public:
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port);

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// PREPARE: returns the server-side statement handle and the inferred
  /// parameter signature.
  Result<PreparedReply> Prepare(const std::string& sql);

  /// EXECUTE: one prepared execution. CapacityError means the server
  /// answered BUSY (admission backpressure) — retry later.
  Result<RowsReply> Execute(uint64_t handle, const std::vector<Value>& params);

  /// EXECUTE pipelined: writes every request before reading any reply,
  /// so `param_sets.size()` requests share the connection's round trips.
  /// Replies come back in order; `busy_retries` re-issues BUSY'd requests
  /// (other errors fail the batch).
  Result<std::vector<RowsReply>> ExecutePipelined(
      uint64_t handle, const std::vector<std::vector<Value>>& param_sets,
      int busy_retries = 0);

  /// QUERY: ad-hoc SQL, parsed and planned per call (the unprepared
  /// baseline).
  Result<RowsReply> Query(const std::string& sql);

  /// CLOSE: releases the server-side handle.
  Status Close(uint64_t handle);

  /// STATS: the service's ServiceStats as JSON.
  Result<std::string> Stats();

 private:
  explicit Client(int fd) : fd_(fd) {}

  Status SendFrame(Op op, const std::string& payload);
  /// Writes raw pre-framed bytes (a pipelined burst) in one syscall.
  Status SendAll(const std::string& bytes);
  Result<Frame> ReadFrame();
  /// Reads one reply frame and maps ERROR/BUSY payloads onto Status.
  Result<Frame> ReadReply(Op expected);

  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace net
}  // namespace idf
