// CSV reader/writer: the storage substrate standing in for the paper's
// Amazon-S3-hosted SNB Datagen files (DESIGN.md §2). Schema-driven typed
// parsing, RFC-4180-style quoting, empty field = NULL.
#pragma once

#include <string>

#include "common/result.h"
#include "types/row.h"
#include "types/schema.h"

namespace idf {
namespace io {

struct CsvOptions {
  char delimiter = ',';
  /// Write/expect a header line of column names.
  bool header = true;
  /// Representation of NULL cells (also accepted on read in addition to
  /// the empty string).
  std::string null_token;
};

/// Writes `rows` (validated against `schema`) to `path`.
Status WriteCsv(const std::string& path, const Schema& schema, const RowVec& rows,
                const CsvOptions& options = CsvOptions());

/// Reads `path` into typed rows. When `options.header` is set, the header
/// is validated against the schema's column names.
Result<RowVec> ReadCsv(const std::string& path, const Schema& schema,
                       const CsvOptions& options = CsvOptions());

/// Serializes rows to a CSV string (testing and streaming sinks).
std::string ToCsvString(const Schema& schema, const RowVec& rows,
                        const CsvOptions& options = CsvOptions());

/// Parses a CSV string (inverse of ToCsvString).
Result<RowVec> FromCsvString(const std::string& data, const Schema& schema,
                             const CsvOptions& options = CsvOptions());

}  // namespace io
}  // namespace idf
