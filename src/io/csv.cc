#include "io/csv.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

namespace idf {
namespace io {

namespace {

bool NeedsQuoting(const std::string& s, char delimiter) {
  // Empty strings are quoted so they stay distinguishable from NULL
  // (an unquoted empty field reads back as NULL).
  return s.empty() || s.find(delimiter) != std::string::npos ||
         s.find('"') != std::string::npos || s.find('\n') != std::string::npos ||
         s.find('\r') != std::string::npos;
}

void AppendField(std::string* out, const std::string& field, char delimiter,
                 bool force_quote = false) {
  if (!force_quote && !NeedsQuoting(field, delimiter)) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

std::string CellToString(const Value& v, const CsvOptions& options) {
  if (v.is_null()) return options.null_token;
  if (v.is_bool()) return v.bool_value() ? "true" : "false";
  if (v.is_string()) return v.string_value();
  if (v.is_double()) {
    // Round-trippable double rendering.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v.double_value());
    return buf;
  }
  return std::to_string(v.AsInt64());
}

/// Splits one logical CSV record (which may span lines via quoted fields)
/// starting at `*pos`; advances `*pos` past the record.
Result<std::vector<std::string>> ParseRecord(const std::string& data, size_t* pos,
                                             char delimiter,
                                             std::vector<bool>* quoted_out) {
  std::vector<std::string> fields;
  quoted_out->clear();
  std::string field;
  bool in_quotes = false;
  bool was_quoted = false;
  size_t i = *pos;
  const size_t n = data.size();
  for (;;) {
    if (i >= n) {
      if (in_quotes) {
        return Status::InvalidArgument("CSV: unterminated quoted field");
      }
      fields.push_back(std::move(field));
      quoted_out->push_back(was_quoted);
      *pos = i;
      return fields;
    }
    char c = data[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && data[i + 1] == '"') {
          field.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field.push_back(c);
      ++i;
      continue;
    }
    if (c == '"' && field.empty()) {
      in_quotes = true;
      was_quoted = true;
      ++i;
      continue;
    }
    if (c == delimiter) {
      fields.push_back(std::move(field));
      quoted_out->push_back(was_quoted);
      field.clear();
      was_quoted = false;
      ++i;
      continue;
    }
    if (c == '\n' || c == '\r') {
      fields.push_back(std::move(field));
      quoted_out->push_back(was_quoted);
      // Swallow \r\n / \n.
      if (c == '\r' && i + 1 < n && data[i + 1] == '\n') ++i;
      *pos = i + 1;
      return fields;
    }
    field.push_back(c);
    ++i;
  }
}

Result<Value> ParseCell(const std::string& text, bool quoted, TypeId type,
                        const CsvOptions& options, size_t record_no, int col) {
  auto err = [&](const std::string& what) {
    return Status::InvalidArgument(
        "CSV record " + std::to_string(record_no) + ", column " +
        std::to_string(col) + ": " + what + " ('" + text + "')");
  };
  if (!quoted && (text.empty() || text == options.null_token)) {
    return Value::Null();
  }
  try {
    switch (type) {
      case TypeId::kBool:
        if (text == "true" || text == "1") return Value(true);
        if (text == "false" || text == "0") return Value(false);
        return err("expected boolean");
      case TypeId::kInt32: {
        size_t used = 0;
        long long v = std::stoll(text, &used);
        if (used != text.size()) return err("trailing characters in int32");
        if (v < INT32_MIN || v > INT32_MAX) return err("int32 out of range");
        return Value(static_cast<int32_t>(v));
      }
      case TypeId::kInt64:
      case TypeId::kTimestamp: {
        size_t used = 0;
        long long v = std::stoll(text, &used);
        if (used != text.size()) return err("trailing characters in int64");
        return Value(static_cast<int64_t>(v));
      }
      case TypeId::kFloat64: {
        size_t used = 0;
        double v = std::stod(text, &used);
        if (used != text.size()) return err("trailing characters in float64");
        return Value(v);
      }
      case TypeId::kString:
        return Value(text);
    }
  } catch (const std::exception&) {
    return err("failed to parse as " + TypeIdToString(type));
  }
  return err("unknown column type");
}

}  // namespace

std::string ToCsvString(const Schema& schema, const RowVec& rows,
                        const CsvOptions& options) {
  std::string out;
  if (options.header) {
    for (int i = 0; i < schema.num_fields(); ++i) {
      if (i > 0) out.push_back(options.delimiter);
      AppendField(&out, schema.field(i).name, options.delimiter);
    }
    out.push_back('\n');
  }
  for (const Row& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(options.delimiter);
      if (row[i].is_null()) {
        // NULLs are written raw (unquoted) so the reader sees them as
        // NULL, not as an empty/sentinel string.
        out.append(options.null_token);
      } else {
        std::string cell = CellToString(row[i], options);
        // A real string that happens to equal the null token must be
        // quoted to stay a string on read-back.
        bool force_quote = row[i].is_string() && !options.null_token.empty() &&
                           cell == options.null_token;
        AppendField(&out, cell, options.delimiter, force_quote);
      }
    }
    out.push_back('\n');
  }
  return out;
}

Result<RowVec> FromCsvString(const std::string& data, const Schema& schema,
                             const CsvOptions& options) {
  RowVec rows;
  size_t pos = 0;
  size_t record_no = 0;
  std::vector<bool> quoted;
  bool saw_header = !options.header;
  while (pos < data.size()) {
    if (data[pos] == '\n' || data[pos] == '\r') {
      if (data[pos] == '\r' && pos + 1 < data.size() && data[pos + 1] == '\n') {
        ++pos;
      }
      ++pos;
      // An empty line is a record for single-column schemas (a lone NULL
      // cell serializes to nothing); otherwise blank lines are skipped.
      if (schema.num_fields() == 1 && saw_header) {
        ++record_no;
        Row row{Value::Null()};
        IDF_RETURN_NOT_OK(ValidateRow(schema, row));
        rows.push_back(std::move(row));
      }
      continue;
    }
    IDF_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                         ParseRecord(data, &pos, options.delimiter, &quoted));
    ++record_no;
    if (!saw_header) {
      saw_header = true;
      if (static_cast<int>(fields.size()) != schema.num_fields()) {
        return Status::InvalidArgument(
            "CSV header has " + std::to_string(fields.size()) +
            " columns, schema expects " + std::to_string(schema.num_fields()));
      }
      for (int i = 0; i < schema.num_fields(); ++i) {
        if (fields[static_cast<size_t>(i)] != schema.field(i).name) {
          return Status::InvalidArgument(
              "CSV header mismatch at column " + std::to_string(i) + ": '" +
              fields[static_cast<size_t>(i)] + "' vs schema '" +
              schema.field(i).name + "'");
        }
      }
      continue;
    }
    if (static_cast<int>(fields.size()) != schema.num_fields()) {
      return Status::InvalidArgument(
          "CSV record " + std::to_string(record_no) + " has " +
          std::to_string(fields.size()) + " fields, schema expects " +
          std::to_string(schema.num_fields()));
    }
    Row row;
    row.reserve(fields.size());
    for (int i = 0; i < schema.num_fields(); ++i) {
      IDF_ASSIGN_OR_RETURN(
          Value v, ParseCell(fields[static_cast<size_t>(i)],
                             quoted[static_cast<size_t>(i)],
                             schema.field(i).type, options, record_no, i));
      row.push_back(std::move(v));
    }
    IDF_RETURN_NOT_OK(ValidateRow(schema, row));
    rows.push_back(std::move(row));
  }
  return rows;
}

Status WriteCsv(const std::string& path, const Schema& schema, const RowVec& rows,
                const CsvOptions& options) {
  for (const Row& row : rows) {
    IDF_RETURN_NOT_OK(ValidateRow(schema, row));
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path +
                                   "' for writing: " + std::strerror(errno));
  }
  std::string data = ToCsvString(schema, rows, options);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

Result<RowVec> ReadCsv(const std::string& path, const Schema& schema,
                       const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::InvalidArgument("cannot open '" + path +
                                   "' for reading: " + std::strerror(errno));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return FromCsvString(buffer.str(), schema, options);
}

}  // namespace io
}  // namespace idf
