// CTrie: a lock-free concurrent hash trie with O(1) non-blocking snapshots,
// after Prokopec, Bronson, Bagwell, Odersky, "Concurrent Tries with
// Efficient Non-Blocking Snapshots" (PPoPP 2012) — reference [7] of the
// reproduced paper.
//
// This is the index of the Indexed DataFrame: it maps a 64-bit key (the
// canonical hash of the indexed column value) to a packed 64-bit row
// pointer (storage/packed_pointer.h). Snapshots provide the paper's
// "updates with multi-version concurrency": queries read an O(1) snapshot
// while the update stream keeps appending to the live trie.
//
// Implementation notes:
//  * 64-way branching (6 hash bits per level), 64-bit hashes.
//  * GCAS (generation-compare-and-swap) on INode main pointers and RDCSS on
//    the root make snapshot-vs-write races linearizable, exactly as in the
//    PPoPP paper.
//  * The hash function is pluggable so tests can force collisions deep
//    enough to exercise LNode (collision list) paths; production use
//    passes Mix64 (a bijection on uint64, so LNodes never form).
//  * Memory reclamation: nodes are registered in a NodeArena shared by all
//    snapshots of a trie family and freed when the last snapshot dies.
//    This trades peak memory for simplicity instead of hazard pointers;
//    the Indexed DataFrame's usage (append-mostly, bounded query lifetime)
//    tolerates it, and it is documented in DESIGN.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/macros.h"

namespace idf {

namespace ctrie_internal {

enum class NodeKind : uint8_t {
  kINode,
  kSNode,
  kCNode,
  kTNode,
  kLNode,
  kFailed,
  kRdcssDescriptor,
  kGen,
};

/// Base of every heap node; intrusively linked into the owning NodeArena.
struct ArenaNode {
  explicit ArenaNode(NodeKind k) : kind(k) {}
  virtual ~ArenaNode() = default;
  const NodeKind kind;
  ArenaNode* arena_next = nullptr;
};

/// Owns all nodes ever allocated by a trie family (lock-free push).
class NodeArena {
 public:
  NodeArena() = default;
  ~NodeArena();
  IDF_DISALLOW_COPY_AND_ASSIGN(NodeArena);

  template <typename T, typename... Args>
  T* New(Args&&... args) {
    T* node = new T(std::forward<Args>(args)...);
    Register(node);
    return node;
  }

  size_t allocated_count() const { return count_.load(std::memory_order_relaxed); }

 private:
  void Register(ArenaNode* node);
  std::atomic<ArenaNode*> head_{nullptr};
  std::atomic<size_t> count_{0};
};

/// Generation token; identity (address) is what matters.
struct Gen : ArenaNode {
  Gen() : ArenaNode(NodeKind::kGen) {}
};

struct MainNode;

/// A branch of a CNode: either an INode or an SNode.
struct Branch : ArenaNode {
  using ArenaNode::ArenaNode;
};

/// Main nodes hang off INodes and carry the GCAS `prev` field.
struct MainNode : ArenaNode {
  using ArenaNode::ArenaNode;
  std::atomic<MainNode*> prev{nullptr};
};

/// Single key/value leaf.
struct SNode : Branch {
  SNode(uint64_t k, uint64_t h, uint64_t v)
      : Branch(NodeKind::kSNode), key(k), hash(h), value(v) {}
  const uint64_t key;
  const uint64_t hash;
  const uint64_t value;
};

/// Tombed SNode (single-entry node pending contraction).
struct TNode : MainNode {
  explicit TNode(SNode* s) : MainNode(NodeKind::kTNode), sn(s) {}
  SNode* const sn;
};

/// Collision list node (full 64-bit hash collision).
struct LNode : MainNode {
  LNode(SNode* s, LNode* n) : MainNode(NodeKind::kLNode), sn(s), next(n) {}
  SNode* const sn;
  LNode* const next;
};

/// GCAS failure marker: `prev` holds the node to roll back to.
struct FailedNode : MainNode {
  explicit FailedNode(MainNode* p) : MainNode(NodeKind::kFailed) {
    prev.store(p, std::memory_order_relaxed);
  }
};

/// Branching node: 64-bit bitmap plus a dense branch array.
struct CNode : MainNode {
  CNode(uint64_t b, std::vector<Branch*> a, Gen* g)
      : MainNode(NodeKind::kCNode), bmp(b), array(std::move(a)), gen(g) {}
  const uint64_t bmp;
  const std::vector<Branch*> array;
  Gen* const gen;
};

/// Indirection node: the only mutable cell in the trie (via GCAS).
struct INode : Branch {
  INode(MainNode* m, Gen* g) : Branch(NodeKind::kINode), gen(g) {
    main.store(m, std::memory_order_relaxed);
  }
  std::atomic<MainNode*> main;
  Gen* const gen;
};

/// RDCSS descriptor temporarily installed at the root during snapshots.
struct RdcssDescriptor : ArenaNode {
  RdcssDescriptor(INode* o, MainNode* e, INode* n)
      : ArenaNode(NodeKind::kRdcssDescriptor), ov(o), expmain(e), nv(n) {}
  INode* const ov;
  MainNode* const expmain;
  INode* const nv;
  std::atomic<bool> committed{false};
};

}  // namespace ctrie_internal

/// \brief Lock-free map<uint64, uint64> with O(1) snapshots.
class CTrie {
 public:
  using HashFn = uint64_t (*)(uint64_t);

  /// `hash_fn` must be deterministic; nullptr selects Mix64.
  explicit CTrie(HashFn hash_fn = nullptr);

  CTrie(CTrie&& other) noexcept
      : arena_(std::move(other.arena_)),
        hash_fn_(other.hash_fn_),
        root_(std::move(other.root_)),
        read_only_(other.read_only_),
        size_hint_(other.size_hint_.load(std::memory_order_relaxed)) {}
  CTrie& operator=(CTrie&& other) noexcept {
    arena_ = std::move(other.arena_);
    hash_fn_ = other.hash_fn_;
    root_ = std::move(other.root_);
    read_only_ = other.read_only_;
    size_hint_.store(other.size_hint_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    return *this;
  }
  IDF_DISALLOW_COPY_AND_ASSIGN(CTrie);

  /// Inserts or updates; returns the previous value if the key was present.
  /// Must not be called on a read-only snapshot.
  std::optional<uint64_t> Insert(uint64_t key, uint64_t value);

  /// Looks up `key`; returns the bound value or nullopt.
  std::optional<uint64_t> Lookup(uint64_t key) const;

  /// Removes `key`; returns the removed value if it was present.
  std::optional<uint64_t> Remove(uint64_t key);

  /// O(1) writable snapshot. Both `this` and the snapshot remain writable;
  /// subsequent writes to either copy paths lazily (no data is copied up
  /// front).
  CTrie Snapshot();

  /// O(1) read-only snapshot: cheaper reads (no renewal CASes) and no
  /// writes allowed.
  CTrie ReadOnlySnapshot();

  bool read_only() const { return read_only_; }

  /// Exact element count via full traversal of a consistent snapshot.
  size_t Size() const;

  /// Cheap element-count estimate maintained by Insert/Remove on this
  /// handle; exact in the single-writer usage of the Indexed DataFrame.
  size_t size_hint() const { return size_hint_.load(std::memory_order_relaxed); }

  /// Visits every (key, value) pair of a consistent snapshot.
  void ForEach(const std::function<void(uint64_t, uint64_t)>& fn) const;

  /// Number of nodes ever allocated by this trie family (diagnostics).
  size_t allocated_nodes() const { return arena_->allocated_count(); }

  /// Approximate heap bytes held by the trie family arena. Includes
  /// garbage from path-copying updates, which the arena retains until the
  /// whole snapshot family dies (see the reclamation note above).
  size_t MemoryBytesEstimate() const;

  /// Bytes of the *live* trie structure (nodes reachable from the current
  /// root): the real index size, comparable to the paper's memory-overhead
  /// claim. O(n) traversal of a read-only snapshot.
  size_t LiveMemoryBytes() const;

 private:
  using INode = ctrie_internal::INode;
  using MainNode = ctrie_internal::MainNode;
  using CNode = ctrie_internal::CNode;
  using SNode = ctrie_internal::SNode;
  using TNode = ctrie_internal::TNode;
  using LNode = ctrie_internal::LNode;
  using Branch = ctrie_internal::Branch;
  using Gen = ctrie_internal::Gen;

  CTrie(std::shared_ptr<ctrie_internal::NodeArena> arena, HashFn hash_fn,
        INode* root, bool read_only, size_t size_hint);

  enum class OpResult : uint8_t { kDone, kRestart, kNotFound };

  // --- RDCSS root access ---
  INode* RdcssReadRoot(bool abort = false) const;
  INode* RdcssComplete(bool abort) const;
  bool RdcssRoot(INode* ov, MainNode* expmain, INode* nv);

  // --- GCAS ---
  MainNode* GcasRead(INode* in) const;
  MainNode* GcasCommit(INode* in, MainNode* m) const;
  bool Gcas(INode* in, MainNode* old_main, MainNode* new_main);

  // --- recursive ops ---
  OpResult DoInsert(INode* in, uint64_t key, uint64_t hash, uint64_t value,
                    int lev, INode* parent, Gen* startgen,
                    std::optional<uint64_t>* previous);
  OpResult DoLookup(INode* in, uint64_t key, uint64_t hash, int lev,
                    INode* parent, Gen* startgen, uint64_t* out) const;
  OpResult DoRemove(INode* in, uint64_t key, uint64_t hash, int lev,
                    INode* parent, Gen* startgen,
                    std::optional<uint64_t>* removed);

  // --- helpers ---
  CNode* RenewedCNode(const CNode* cn, Gen* gen);
  INode* CopyINodeToGen(INode* in, Gen* gen);
  Branch* Resurrect(Branch* b) const;
  MainNode* ToContracted(CNode* cn, int lev);
  MainNode* ToCompressed(const CNode* cn, int lev, Gen* gen);
  void Clean(INode* in, int lev);
  void CleanParent(INode* parent, INode* in, uint64_t hash, int lev,
                   Gen* startgen);
  CNode* DualBranchCNode(SNode* a, SNode* b, int lev, Gen* gen);
  void ForEachNode(ctrie_internal::MainNode* m,
                   const std::function<void(uint64_t, uint64_t)>& fn) const;
  size_t LiveBytesOfMain(ctrie_internal::MainNode* m) const;

  static constexpr int kBitsPerLevel = 6;
  static constexpr int kBranchFactor = 64;
  static constexpr uint64_t kLevelMask = kBranchFactor - 1;
  static constexpr int kMaxLevel = 64;

  std::shared_ptr<ctrie_internal::NodeArena> arena_;
  HashFn hash_fn_;
  /// Either an INode* or an RdcssDescriptor* (tagged by NodeKind).
  std::unique_ptr<std::atomic<ctrie_internal::ArenaNode*>> root_;
  bool read_only_ = false;
  mutable std::atomic<size_t> size_hint_{0};
};

}  // namespace idf
