#include "ctrie/ctrie.h"

#include <bit>

#include "common/hash.h"
#include "common/logging.h"

namespace idf {

namespace ci = ctrie_internal;

namespace ctrie_internal {

NodeArena::~NodeArena() {
  ArenaNode* node = head_.load(std::memory_order_acquire);
  while (node != nullptr) {
    ArenaNode* next = node->arena_next;
    delete node;
    node = next;
  }
}

void NodeArena::Register(ArenaNode* node) {
  ArenaNode* old_head = head_.load(std::memory_order_relaxed);
  do {
    node->arena_next = old_head;
  } while (!head_.compare_exchange_weak(old_head, node, std::memory_order_release,
                                        std::memory_order_relaxed));
  count_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace ctrie_internal

namespace {
uint64_t DefaultHash(uint64_t key) { return Mix64(key); }
}  // namespace

CTrie::CTrie(HashFn hash_fn)
    : arena_(std::make_shared<ci::NodeArena>()),
      hash_fn_(hash_fn ? hash_fn : &DefaultHash),
      root_(std::make_unique<std::atomic<ci::ArenaNode*>>()) {
  Gen* gen = arena_->New<Gen>();
  CNode* empty = arena_->New<CNode>(0, std::vector<Branch*>{}, gen);
  INode* root = arena_->New<INode>(empty, gen);
  root_->store(root, std::memory_order_release);
}

CTrie::CTrie(std::shared_ptr<ci::NodeArena> arena, HashFn hash_fn, INode* root,
             bool read_only, size_t size_hint)
    : arena_(std::move(arena)),
      hash_fn_(hash_fn),
      root_(std::make_unique<std::atomic<ci::ArenaNode*>>()),
      read_only_(read_only) {
  root_->store(root, std::memory_order_release);
  size_hint_.store(size_hint, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// RDCSS root access (snapshot linearization point)
// ---------------------------------------------------------------------------

CTrie::INode* CTrie::RdcssReadRoot(bool abort) const {
  ci::ArenaNode* r = root_->load(std::memory_order_acquire);
  if (IDF_PREDICT_TRUE(r->kind == ci::NodeKind::kINode)) {
    return static_cast<INode*>(r);
  }
  return const_cast<CTrie*>(this)->RdcssComplete(abort);
}

CTrie::INode* CTrie::RdcssComplete(bool abort) const {
  for (;;) {
    ci::ArenaNode* r = root_->load(std::memory_order_acquire);
    if (r->kind == ci::NodeKind::kINode) return static_cast<INode*>(r);
    auto* desc = static_cast<ci::RdcssDescriptor*>(r);
    INode* ov = desc->ov;
    MainNode* exp = desc->expmain;
    if (!abort) {
      MainNode* main = GcasRead(ov);
      if (main == exp) {
        ci::ArenaNode* expected = desc;
        if (root_->compare_exchange_strong(expected, desc->nv,
                                           std::memory_order_acq_rel)) {
          desc->committed.store(true, std::memory_order_release);
          return desc->nv;
        }
        continue;
      }
    }
    ci::ArenaNode* expected = desc;
    if (root_->compare_exchange_strong(expected, ov, std::memory_order_acq_rel)) {
      return ov;
    }
  }
}

bool CTrie::RdcssRoot(INode* ov, MainNode* expmain, INode* nv) {
  auto* desc = arena_->New<ci::RdcssDescriptor>(ov, expmain, nv);
  ci::ArenaNode* expected = ov;
  if (root_->compare_exchange_strong(expected, desc, std::memory_order_acq_rel)) {
    RdcssComplete(/*abort=*/false);
    return desc->committed.load(std::memory_order_acquire);
  }
  return false;
}

// ---------------------------------------------------------------------------
// GCAS
// ---------------------------------------------------------------------------

CTrie::MainNode* CTrie::GcasRead(INode* in) const {
  MainNode* m = in->main.load(std::memory_order_acquire);
  if (IDF_PREDICT_TRUE(m->prev.load(std::memory_order_acquire) == nullptr)) {
    return m;
  }
  return GcasCommit(in, m);
}

CTrie::MainNode* CTrie::GcasCommit(INode* in, MainNode* m) const {
  for (;;) {
    MainNode* p = m->prev.load(std::memory_order_acquire);
    INode* root = RdcssReadRoot(/*abort=*/true);
    if (p == nullptr) return m;
    if (p->kind == ci::NodeKind::kFailed) {
      // The write failed; roll the main pointer back to the grandparent.
      MainNode* rollback = p->prev.load(std::memory_order_acquire);
      MainNode* expected = m;
      if (in->main.compare_exchange_strong(expected, rollback,
                                           std::memory_order_acq_rel)) {
        return rollback;
      }
      m = in->main.load(std::memory_order_acquire);
      continue;
    }
    if (root->gen == in->gen && !read_only_) {
      // Generation still current: try to commit.
      MainNode* expected = p;
      if (m->prev.compare_exchange_strong(expected, nullptr,
                                          std::memory_order_acq_rel)) {
        return m;
      }
      continue;
    }
    // Generation changed (or read-only snapshot): mark failed and retry.
    MainNode* expected = p;
    m->prev.compare_exchange_strong(expected,
                                    arena_->New<ci::FailedNode>(p),
                                    std::memory_order_acq_rel);
    m = in->main.load(std::memory_order_acquire);
  }
}

bool CTrie::Gcas(INode* in, MainNode* old_main, MainNode* new_main) {
  new_main->prev.store(old_main, std::memory_order_release);
  MainNode* expected = old_main;
  if (in->main.compare_exchange_strong(expected, new_main,
                                       std::memory_order_acq_rel)) {
    GcasCommit(in, new_main);
    return new_main->prev.load(std::memory_order_acquire) == nullptr;
  }
  return false;
}

// ---------------------------------------------------------------------------
// CNode helpers
// ---------------------------------------------------------------------------

namespace {

inline int BranchPos(uint64_t hash, int lev) {
  return static_cast<int>((hash >> lev) & 63);
}

inline uint64_t FlagOf(int pos) { return 1ULL << pos; }

inline int ArrayIndex(uint64_t bmp, uint64_t flag) {
  return std::popcount(bmp & (flag - 1));
}

std::vector<ci::Branch*> WithInserted(const std::vector<ci::Branch*>& a, int idx,
                                      ci::Branch* b) {
  std::vector<ci::Branch*> out;
  out.reserve(a.size() + 1);
  out.insert(out.end(), a.begin(), a.begin() + idx);
  out.push_back(b);
  out.insert(out.end(), a.begin() + idx, a.end());
  return out;
}

std::vector<ci::Branch*> WithUpdated(const std::vector<ci::Branch*>& a, int idx,
                                     ci::Branch* b) {
  std::vector<ci::Branch*> out = a;
  out[static_cast<size_t>(idx)] = b;
  return out;
}

std::vector<ci::Branch*> WithRemoved(const std::vector<ci::Branch*>& a, int idx) {
  std::vector<ci::Branch*> out;
  out.reserve(a.size() - 1);
  out.insert(out.end(), a.begin(), a.begin() + idx);
  out.insert(out.end(), a.begin() + idx + 1, a.end());
  return out;
}

}  // namespace

CTrie::CNode* CTrie::RenewedCNode(const CNode* cn, Gen* gen) {
  std::vector<Branch*> array = cn->array;
  for (Branch*& b : array) {
    if (b->kind == ci::NodeKind::kINode) {
      b = CopyINodeToGen(static_cast<INode*>(b), gen);
    }
  }
  return arena_->New<CNode>(cn->bmp, std::move(array), gen);
}

CTrie::INode* CTrie::CopyINodeToGen(INode* in, Gen* gen) {
  return arena_->New<INode>(GcasRead(in), gen);
}

ci::Branch* CTrie::Resurrect(Branch* b) const {
  if (b->kind == ci::NodeKind::kINode) {
    MainNode* m = GcasRead(static_cast<INode*>(b));
    if (m->kind == ci::NodeKind::kTNode) {
      return static_cast<TNode*>(m)->sn;
    }
  }
  return b;
}

CTrie::MainNode* CTrie::ToContracted(CNode* cn, int lev) {
  if (lev > 0 && cn->array.size() == 1 &&
      cn->array[0]->kind == ci::NodeKind::kSNode) {
    return arena_->New<TNode>(static_cast<SNode*>(cn->array[0]));
  }
  return cn;
}

CTrie::MainNode* CTrie::ToCompressed(const CNode* cn, int lev, Gen* gen) {
  std::vector<Branch*> array = cn->array;
  for (Branch*& b : array) b = Resurrect(b);
  return ToContracted(arena_->New<CNode>(cn->bmp, std::move(array), gen), lev);
}

void CTrie::Clean(INode* in, int lev) {
  MainNode* m = GcasRead(in);
  if (m->kind == ci::NodeKind::kCNode) {
    Gcas(in, m, ToCompressed(static_cast<CNode*>(m), lev, in->gen));
  }
}

void CTrie::CleanParent(INode* parent, INode* in, uint64_t hash, int lev,
                        Gen* startgen) {
  for (;;) {
    MainNode* m = GcasRead(in);
    MainNode* pm = GcasRead(parent);
    if (pm->kind != ci::NodeKind::kCNode) return;
    CNode* cn = static_cast<CNode*>(pm);
    int pos = BranchPos(hash, lev);
    uint64_t flag = FlagOf(pos);
    if ((cn->bmp & flag) == 0) return;
    int idx = ArrayIndex(cn->bmp, flag);
    Branch* sub = cn->array[static_cast<size_t>(idx)];
    if (sub != in) return;
    if (m->kind != ci::NodeKind::kTNode) return;
    CNode* ncn = arena_->New<CNode>(
        cn->bmp, WithUpdated(cn->array, idx, static_cast<TNode*>(m)->sn),
        parent->gen);
    if (Gcas(parent, cn, ToContracted(ncn, lev))) return;
    if (RdcssReadRoot()->gen != startgen) return;
  }
}

CTrie::CNode* CTrie::DualBranchCNode(SNode* a, SNode* b, int lev, Gen* gen) {
  // Callers route full 64-bit hash collisions to LNodes before calling, so
  // two distinct hashes always diverge at some level <= 60 here.
  IDF_CHECK_LT(lev, kMaxLevel) << "DualBranchCNode on equal hashes";
  int pa = BranchPos(a->hash, lev);
  int pb = BranchPos(b->hash, lev);
  if (pa != pb) {
    std::vector<Branch*> array;
    if (pa < pb) {
      array = {a, b};
    } else {
      array = {b, a};
    }
    return arena_->New<CNode>(FlagOf(pa) | FlagOf(pb), std::move(array), gen);
  }
  CNode* child = DualBranchCNode(a, b, lev + kBitsPerLevel, gen);
  INode* in = arena_->New<INode>(child, gen);
  return arena_->New<CNode>(FlagOf(pa), std::vector<Branch*>{in}, gen);
}

// ---------------------------------------------------------------------------
// Insert
// ---------------------------------------------------------------------------

std::optional<uint64_t> CTrie::Insert(uint64_t key, uint64_t value) {
  IDF_CHECK(!read_only_) << "Insert on a read-only CTrie snapshot";
  uint64_t hash = hash_fn_(key);
  for (;;) {
    INode* root = RdcssReadRoot();
    std::optional<uint64_t> previous;
    OpResult res = DoInsert(root, key, hash, value, 0, nullptr, root->gen,
                            &previous);
    if (res == OpResult::kDone) {
      if (!previous.has_value()) {
        size_hint_.fetch_add(1, std::memory_order_relaxed);
      }
      return previous;
    }
  }
}

CTrie::OpResult CTrie::DoInsert(INode* in, uint64_t key, uint64_t hash,
                                uint64_t value, int lev, INode* parent,
                                Gen* startgen, std::optional<uint64_t>* previous) {
  MainNode* m = GcasRead(in);
  switch (m->kind) {
    case ci::NodeKind::kCNode: {
      CNode* cn = static_cast<CNode*>(m);
      int pos = BranchPos(hash, lev);
      uint64_t flag = FlagOf(pos);
      int idx = ArrayIndex(cn->bmp, flag);
      if ((cn->bmp & flag) == 0) {
        CNode* rn = (cn->gen == in->gen) ? cn : RenewedCNode(cn, in->gen);
        SNode* sn = arena_->New<SNode>(key, hash, value);
        CNode* ncn = arena_->New<CNode>(rn->bmp | flag,
                                        WithInserted(rn->array, idx, sn), in->gen);
        if (Gcas(in, cn, ncn)) {
          previous->reset();
          return OpResult::kDone;
        }
        return OpResult::kRestart;
      }
      Branch* branch = cn->array[static_cast<size_t>(idx)];
      if (branch->kind == ci::NodeKind::kINode) {
        INode* sin = static_cast<INode*>(branch);
        if (sin->gen == startgen) {
          return DoInsert(sin, key, hash, value, lev + kBitsPerLevel, in,
                          startgen, previous);
        }
        if (Gcas(in, cn, RenewedCNode(cn, startgen))) {
          return DoInsert(in, key, hash, value, lev, parent, startgen, previous);
        }
        return OpResult::kRestart;
      }
      SNode* sn = static_cast<SNode*>(branch);
      CNode* rn = (cn->gen == in->gen) ? cn : RenewedCNode(cn, in->gen);
      if (sn->hash == hash && sn->key == key) {
        SNode* nsn = arena_->New<SNode>(key, hash, value);
        CNode* ncn =
            arena_->New<CNode>(rn->bmp, WithUpdated(rn->array, idx, nsn), in->gen);
        if (Gcas(in, cn, ncn)) {
          *previous = sn->value;
          return OpResult::kDone;
        }
        return OpResult::kRestart;
      }
      SNode* nsn = arena_->New<SNode>(key, hash, value);
      MainNode* child;
      if (sn->hash == hash) {
        // Full hash collision directly below this level.
        child = arena_->New<LNode>(nsn, arena_->New<LNode>(sn, nullptr));
      } else {
        child = DualBranchCNode(sn, nsn, lev + kBitsPerLevel, in->gen);
      }
      INode* nin = arena_->New<INode>(child, in->gen);
      CNode* ncn =
          arena_->New<CNode>(rn->bmp, WithUpdated(rn->array, idx, nin), in->gen);
      if (Gcas(in, cn, ncn)) {
        previous->reset();
        return OpResult::kDone;
      }
      return OpResult::kRestart;
    }
    case ci::NodeKind::kTNode: {
      if (parent != nullptr) Clean(parent, lev - kBitsPerLevel);
      return OpResult::kRestart;
    }
    case ci::NodeKind::kLNode: {
      LNode* ln = static_cast<LNode*>(m);
      // Rebuild the list, replacing the key if present.
      SNode* nsn = arena_->New<SNode>(key, hash, value);
      LNode* nln = arena_->New<LNode>(nsn, nullptr);
      std::optional<uint64_t> old;
      for (LNode* p = ln; p != nullptr; p = p->next) {
        if (p->sn->key == key) {
          old = p->sn->value;
          continue;
        }
        nln = arena_->New<LNode>(p->sn, nln);
      }
      if (Gcas(in, ln, nln)) {
        *previous = old;
        return OpResult::kDone;
      }
      return OpResult::kRestart;
    }
    default:
      IDF_LOG(Fatal) << "unexpected main node kind in DoInsert";
      return OpResult::kRestart;
  }
}

// ---------------------------------------------------------------------------
// Lookup
// ---------------------------------------------------------------------------

std::optional<uint64_t> CTrie::Lookup(uint64_t key) const {
  uint64_t hash = hash_fn_(key);
  for (;;) {
    INode* root = RdcssReadRoot();
    uint64_t out = 0;
    OpResult res = const_cast<CTrie*>(this)->DoLookup(root, key, hash, 0,
                                                      nullptr, root->gen, &out);
    if (res == OpResult::kDone) return out;
    if (res == OpResult::kNotFound) return std::nullopt;
  }
}

CTrie::OpResult CTrie::DoLookup(INode* in, uint64_t key, uint64_t hash, int lev,
                                INode* parent, Gen* startgen,
                                uint64_t* out) const {
  MainNode* m = GcasRead(in);
  switch (m->kind) {
    case ci::NodeKind::kCNode: {
      CNode* cn = static_cast<CNode*>(m);
      int pos = BranchPos(hash, lev);
      uint64_t flag = FlagOf(pos);
      if ((cn->bmp & flag) == 0) return OpResult::kNotFound;
      int idx = ArrayIndex(cn->bmp, flag);
      Branch* branch = cn->array[static_cast<size_t>(idx)];
      if (branch->kind == ci::NodeKind::kINode) {
        INode* sin = static_cast<INode*>(branch);
        if (read_only_ || sin->gen == startgen) {
          return DoLookup(sin, key, hash, lev + kBitsPerLevel, in, startgen, out);
        }
        if (const_cast<CTrie*>(this)->Gcas(
                in, cn, const_cast<CTrie*>(this)->RenewedCNode(cn, startgen))) {
          return DoLookup(in, key, hash, lev, parent, startgen, out);
        }
        return OpResult::kRestart;
      }
      SNode* sn = static_cast<SNode*>(branch);
      if (sn->hash == hash && sn->key == key) {
        *out = sn->value;
        return OpResult::kDone;
      }
      return OpResult::kNotFound;
    }
    case ci::NodeKind::kTNode: {
      TNode* tn = static_cast<TNode*>(m);
      if (read_only_) {
        // Deliver from the tomb: a read-only snapshot never cleans.
        if (tn->sn->hash == hash && tn->sn->key == key) {
          *out = tn->sn->value;
          return OpResult::kDone;
        }
        return OpResult::kNotFound;
      }
      if (parent != nullptr) {
        const_cast<CTrie*>(this)->Clean(parent, lev - kBitsPerLevel);
      }
      return OpResult::kRestart;
    }
    case ci::NodeKind::kLNode: {
      for (LNode* p = static_cast<LNode*>(m); p != nullptr; p = p->next) {
        if (p->sn->key == key) {
          *out = p->sn->value;
          return OpResult::kDone;
        }
      }
      return OpResult::kNotFound;
    }
    default:
      IDF_LOG(Fatal) << "unexpected main node kind in DoLookup";
      return OpResult::kRestart;
  }
}

// ---------------------------------------------------------------------------
// Remove
// ---------------------------------------------------------------------------

std::optional<uint64_t> CTrie::Remove(uint64_t key) {
  IDF_CHECK(!read_only_) << "Remove on a read-only CTrie snapshot";
  uint64_t hash = hash_fn_(key);
  for (;;) {
    INode* root = RdcssReadRoot();
    std::optional<uint64_t> removed;
    OpResult res = DoRemove(root, key, hash, 0, nullptr, root->gen, &removed);
    if (res == OpResult::kDone) {
      if (removed.has_value()) {
        size_hint_.fetch_sub(1, std::memory_order_relaxed);
      }
      return removed;
    }
    if (res == OpResult::kNotFound) return std::nullopt;
  }
}

CTrie::OpResult CTrie::DoRemove(INode* in, uint64_t key, uint64_t hash, int lev,
                                INode* parent, Gen* startgen,
                                std::optional<uint64_t>* removed) {
  MainNode* m = GcasRead(in);
  switch (m->kind) {
    case ci::NodeKind::kCNode: {
      CNode* cn = static_cast<CNode*>(m);
      int pos = BranchPos(hash, lev);
      uint64_t flag = FlagOf(pos);
      if ((cn->bmp & flag) == 0) return OpResult::kNotFound;
      int idx = ArrayIndex(cn->bmp, flag);
      Branch* branch = cn->array[static_cast<size_t>(idx)];
      OpResult res;
      if (branch->kind == ci::NodeKind::kINode) {
        INode* sin = static_cast<INode*>(branch);
        if (sin->gen == startgen) {
          res = DoRemove(sin, key, hash, lev + kBitsPerLevel, in, startgen,
                         removed);
        } else if (Gcas(in, cn, RenewedCNode(cn, startgen))) {
          res = DoRemove(in, key, hash, lev, parent, startgen, removed);
        } else {
          return OpResult::kRestart;
        }
      } else {
        SNode* sn = static_cast<SNode*>(branch);
        if (sn->hash != hash || sn->key != key) return OpResult::kNotFound;
        CNode* rn = (cn->gen == in->gen) ? cn : RenewedCNode(cn, in->gen);
        CNode* ncn = arena_->New<CNode>(rn->bmp & ~flag,
                                        WithRemoved(rn->array, idx), in->gen);
        if (Gcas(in, cn, ToContracted(ncn, lev))) {
          *removed = sn->value;
          res = OpResult::kDone;
        } else {
          return OpResult::kRestart;
        }
      }
      if (res == OpResult::kDone && removed->has_value() && parent != nullptr) {
        MainNode* now = GcasRead(in);
        if (now->kind == ci::NodeKind::kTNode) {
          CleanParent(parent, in, hash, lev - kBitsPerLevel, startgen);
        }
      }
      return res;
    }
    case ci::NodeKind::kTNode: {
      if (parent != nullptr) Clean(parent, lev - kBitsPerLevel);
      return OpResult::kRestart;
    }
    case ci::NodeKind::kLNode: {
      LNode* ln = static_cast<LNode*>(m);
      std::optional<uint64_t> old;
      LNode* nln = nullptr;
      size_t remaining = 0;
      for (LNode* p = ln; p != nullptr; p = p->next) {
        if (p->sn->key == key) {
          old = p->sn->value;
          continue;
        }
        nln = arena_->New<LNode>(p->sn, nln);
        ++remaining;
      }
      if (!old.has_value()) return OpResult::kNotFound;
      // LNodes are created with >= 2 entries, so at least one remains.
      IDF_CHECK_GE(remaining, 1u);
      MainNode* replacement;
      if (remaining == 1) {
        replacement = arena_->New<TNode>(nln->sn);
      } else {
        replacement = nln;
      }
      if (Gcas(in, ln, replacement)) {
        *removed = old;
        return OpResult::kDone;
      }
      return OpResult::kRestart;
    }
    default:
      IDF_LOG(Fatal) << "unexpected main node kind in DoRemove";
      return OpResult::kRestart;
  }
}

// ---------------------------------------------------------------------------
// Snapshots and traversal
// ---------------------------------------------------------------------------

CTrie CTrie::Snapshot() {
  for (;;) {
    INode* r = RdcssReadRoot();
    MainNode* expmain = GcasRead(r);
    Gen* mine = arena_->New<Gen>();
    if (read_only_ ||
        RdcssRoot(r, expmain, arena_->New<INode>(expmain, mine))) {
      Gen* theirs = arena_->New<Gen>();
      INode* snap_root = arena_->New<INode>(expmain, theirs);
      return CTrie(arena_, hash_fn_, snap_root, /*read_only=*/false,
                   size_hint_.load(std::memory_order_relaxed));
    }
  }
}

CTrie CTrie::ReadOnlySnapshot() {
  for (;;) {
    INode* r = RdcssReadRoot();
    MainNode* expmain = GcasRead(r);
    Gen* mine = arena_->New<Gen>();
    if (read_only_ ||
        RdcssRoot(r, expmain, arena_->New<INode>(expmain, mine))) {
      // The old root r is frozen: every future write renews away from it.
      return CTrie(arena_, hash_fn_, r, /*read_only=*/true,
                   size_hint_.load(std::memory_order_relaxed));
    }
  }
}

void CTrie::ForEachNode(ci::MainNode* m,
                        const std::function<void(uint64_t, uint64_t)>& fn) const {
  switch (m->kind) {
    case ci::NodeKind::kCNode: {
      CNode* cn = static_cast<CNode*>(m);
      for (Branch* b : cn->array) {
        if (b->kind == ci::NodeKind::kSNode) {
          SNode* sn = static_cast<SNode*>(b);
          fn(sn->key, sn->value);
        } else {
          ForEachNode(GcasRead(static_cast<INode*>(b)), fn);
        }
      }
      break;
    }
    case ci::NodeKind::kTNode: {
      TNode* tn = static_cast<TNode*>(m);
      fn(tn->sn->key, tn->sn->value);
      break;
    }
    case ci::NodeKind::kLNode: {
      for (LNode* p = static_cast<LNode*>(m); p != nullptr; p = p->next) {
        fn(p->sn->key, p->sn->value);
      }
      break;
    }
    default:
      break;
  }
}

void CTrie::ForEach(const std::function<void(uint64_t, uint64_t)>& fn) const {
  if (read_only_) {
    INode* root = RdcssReadRoot();
    ForEachNode(GcasRead(root), fn);
    return;
  }
  CTrie snap = const_cast<CTrie*>(this)->ReadOnlySnapshot();
  snap.ForEach(fn);
}

size_t CTrie::Size() const {
  size_t n = 0;
  ForEach([&n](uint64_t, uint64_t) { ++n; });
  return n;
}

size_t CTrie::MemoryBytesEstimate() const {
  // Rough per-node average: node header + payload + arena link.
  return arena_->allocated_count() * 72;
}

size_t CTrie::LiveBytesOfMain(ci::MainNode* m) const {
  switch (m->kind) {
    case ci::NodeKind::kCNode: {
      CNode* cn = static_cast<CNode*>(m);
      size_t bytes = sizeof(CNode) + cn->array.capacity() * sizeof(Branch*);
      for (Branch* b : cn->array) {
        if (b->kind == ci::NodeKind::kSNode) {
          bytes += sizeof(SNode);
        } else {
          bytes += sizeof(INode) + LiveBytesOfMain(GcasRead(static_cast<INode*>(b)));
        }
      }
      return bytes;
    }
    case ci::NodeKind::kTNode:
      return sizeof(TNode) + sizeof(SNode);
    case ci::NodeKind::kLNode: {
      size_t bytes = 0;
      for (LNode* p = static_cast<LNode*>(m); p != nullptr; p = p->next) {
        bytes += sizeof(LNode) + sizeof(SNode);
      }
      return bytes;
    }
    default:
      return 0;
  }
}

size_t CTrie::LiveMemoryBytes() const {
  if (read_only_) {
    INode* root = RdcssReadRoot();
    return sizeof(INode) + LiveBytesOfMain(GcasRead(root));
  }
  CTrie snap = const_cast<CTrie*>(this)->ReadOnlySnapshot();
  return snap.LiveMemoryBytes();
}

}  // namespace idf
