// Column data types supported by the engine.
//
// The paper recommends primitive column types for indexed columns:
// (un)signed 32/64-bit integers, floating point, strings, datetime. We
// support exactly that set plus booleans.
#pragma once

#include <cstdint>
#include <string>

namespace idf {

enum class TypeId : uint8_t {
  kBool = 0,
  kInt32 = 1,
  kInt64 = 2,
  kFloat64 = 3,
  kString = 4,
  kTimestamp = 5,  // microseconds since the Unix epoch, stored as int64
};

/// Name as it appears in schema printouts, e.g. "int64".
std::string TypeIdToString(TypeId id);

/// True for types with a fixed-size binary representation.
bool IsFixedWidth(TypeId id);

/// Encoded width in bytes of a fixed-width type; 0 for variable-width.
size_t FixedWidthBytes(TypeId id);

/// True if the type is backed by an integer (Int32/Int64/Timestamp/Bool).
bool IsIntegerBacked(TypeId id);

}  // namespace idf
