// Value: a dynamically-typed cell used at API boundaries and inside
// expression evaluation. The hot storage path uses binary RowBatch encoding
// instead (storage/row_batch.h).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/hash.h"
#include "common/result.h"
#include "types/data_type.h"

namespace idf {

/// \brief One dynamically typed, nullable cell.
///
/// Null is represented by std::monostate. Timestamps are carried as int64
/// microseconds; the schema distinguishes kInt64 from kTimestamp.
class Value {
 public:
  Value() : repr_(std::monostate{}) {}
  Value(bool v) : repr_(v) {}                 // NOLINT
  Value(int32_t v) : repr_(v) {}              // NOLINT
  Value(int64_t v) : repr_(v) {}              // NOLINT
  Value(double v) : repr_(v) {}               // NOLINT
  Value(std::string v) : repr_(std::move(v)) {}  // NOLINT
  Value(const char* v) : repr_(std::string(v)) {}  // NOLINT

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_bool() const { return std::holds_alternative<bool>(repr_); }
  bool is_int32() const { return std::holds_alternative<int32_t>(repr_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }

  bool bool_value() const { return std::get<bool>(repr_); }
  int32_t int32_value() const { return std::get<int32_t>(repr_); }
  int64_t int64_value() const { return std::get<int64_t>(repr_); }
  double double_value() const { return std::get<double>(repr_); }
  const std::string& string_value() const { return std::get<std::string>(repr_); }

  /// Numeric widening view: int32/int64/bool as int64. Aborts on other types.
  int64_t AsInt64() const;
  /// Numeric view as double (widens integers).
  double AsDouble() const;

  /// Strict equality: null == null is true here (used by tests and
  /// group-by); SQL three-valued logic lives in expression evaluation.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total ordering for sorting: null first, then by numeric/string value.
  /// Cross-type numeric comparison widens to double.
  bool operator<(const Value& other) const;

  /// Stable 64-bit hash used for index keys and hash partitioning.
  uint64_t Hash() const;

  std::string ToString() const;

  /// Checks that this value is storable in a column of `type`.
  /// Integer values are accepted by wider integer columns.
  Status CheckType(TypeId type) const;

  /// Coerces to the exact runtime representation of `type`
  /// (e.g. int32 literal into an int64 column). Fails on lossy coercions.
  Result<Value> CastTo(TypeId type) const;

 private:
  std::variant<std::monostate, bool, int32_t, int64_t, double, std::string> repr_;
};

}  // namespace idf
