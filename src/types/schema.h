// Schema: an ordered list of named, typed fields.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/data_type.h"

namespace idf {

/// One column of a schema.
struct Field {
  std::string name;
  TypeId type;
  bool nullable = true;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type && nullable == other.nullable;
  }
};

/// \brief Ordered collection of fields, shared immutably between plans.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  static std::shared_ptr<Schema> Make(std::vector<Field> fields) {
    return std::make_shared<Schema>(std::move(fields));
  }

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field with this name, or -1 if absent.
  int FieldIndex(const std::string& name) const;

  /// Field index or a KeyError naming the missing column.
  Result<int> ResolveFieldIndex(const std::string& name) const;

  bool Equals(const Schema& other) const { return fields_ == other.fields_; }

  /// "name:type[?], ..." rendering for diagnostics.
  std::string ToString() const;

  /// Schema of this projected to `indices` (in order).
  std::shared_ptr<Schema> Project(const std::vector<int>& indices) const;

  /// Concatenation of two schemas (join output), with name disambiguation
  /// left to the caller.
  static std::shared_ptr<Schema> Concat(const Schema& left, const Schema& right);

 private:
  std::vector<Field> fields_;
};

using SchemaPtr = std::shared_ptr<Schema>;

}  // namespace idf
