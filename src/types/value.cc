#include "types/value.h"

#include <cstring>

#include "common/logging.h"

namespace idf {

int64_t Value::AsInt64() const {
  if (is_int64()) return int64_value();
  if (is_int32()) return int32_value();
  if (is_bool()) return bool_value() ? 1 : 0;
  IDF_LOG(Fatal) << "Value::AsInt64 on non-integer value " << ToString();
  return 0;
}

double Value::AsDouble() const {
  if (is_double()) return double_value();
  return static_cast<double>(AsInt64());
}

namespace {
bool IsNumeric(const Value& v) {
  return v.is_int32() || v.is_int64() || v.is_double() || v.is_bool();
}
}  // namespace

bool Value::operator==(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (is_string() != other.is_string()) return false;
  if (is_string()) return string_value() == other.string_value();
  if (is_double() || other.is_double()) return AsDouble() == other.AsDouble();
  return AsInt64() == other.AsInt64();
}

bool Value::operator<(const Value& other) const {
  if (is_null()) return !other.is_null();
  if (other.is_null()) return false;
  if (is_string() && other.is_string()) return string_value() < other.string_value();
  if (is_string() != other.is_string()) return !is_string();  // numbers < strings
  if (is_double() || other.is_double()) return AsDouble() < other.AsDouble();
  return AsInt64() < other.AsInt64();
}

uint64_t Value::Hash() const {
  if (is_null()) return 0x6e756c6cULL;  // "null"
  if (is_string()) return Hash64(string_value());
  if (is_double()) {
    double d = double_value();
    // Hash integral doubles like the equivalent integer so that 3.0 and 3
    // partition identically.
    int64_t i = static_cast<int64_t>(d);
    if (static_cast<double>(i) == d) return Mix64(static_cast<uint64_t>(i));
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(d));
    return Mix64(bits);
  }
  return Mix64(static_cast<uint64_t>(AsInt64()));
}

std::string Value::ToString() const {
  if (is_null()) return "null";
  if (is_bool()) return bool_value() ? "true" : "false";
  if (is_int32()) return std::to_string(int32_value());
  if (is_int64()) return std::to_string(int64_value());
  if (is_double()) return std::to_string(double_value());
  return "\"" + string_value() + "\"";
}

Status Value::CheckType(TypeId type) const {
  if (is_null()) return Status::OK();
  switch (type) {
    case TypeId::kBool:
      if (is_bool()) return Status::OK();
      break;
    case TypeId::kInt32:
      if (is_int32()) return Status::OK();
      break;
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      if (is_int64() || is_int32()) return Status::OK();
      break;
    case TypeId::kFloat64:
      if (is_double() || is_int64() || is_int32()) return Status::OK();
      break;
    case TypeId::kString:
      if (is_string()) return Status::OK();
      break;
  }
  return Status::TypeError("value " + ToString() + " is not storable as " +
                           TypeIdToString(type));
}

Result<Value> Value::CastTo(TypeId type) const {
  if (is_null()) return Value::Null();
  switch (type) {
    case TypeId::kBool:
      if (is_bool()) return *this;
      if (IsNumeric(*this)) return Value(AsInt64() != 0);
      break;
    case TypeId::kInt32: {
      if (is_int32()) return *this;
      if (is_int64() || is_bool()) {
        int64_t v = AsInt64();
        if (v < INT32_MIN || v > INT32_MAX) {
          return Status::InvalidArgument("int32 overflow casting " + ToString());
        }
        return Value(static_cast<int32_t>(v));
      }
      break;
    }
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      if (is_int64()) return *this;
      if (is_int32() || is_bool()) return Value(AsInt64());
      break;
    case TypeId::kFloat64:
      if (is_double()) return *this;
      if (IsNumeric(*this)) return Value(AsDouble());
      break;
    case TypeId::kString:
      if (is_string()) return *this;
      return Value(ToString());
  }
  return Status::TypeError("cannot cast " + ToString() + " to " +
                           TypeIdToString(type));
}

}  // namespace idf
