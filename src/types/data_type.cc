#include "types/data_type.h"

namespace idf {

std::string TypeIdToString(TypeId id) {
  switch (id) {
    case TypeId::kBool:
      return "bool";
    case TypeId::kInt32:
      return "int32";
    case TypeId::kInt64:
      return "int64";
    case TypeId::kFloat64:
      return "float64";
    case TypeId::kString:
      return "string";
    case TypeId::kTimestamp:
      return "timestamp";
  }
  return "unknown";
}

bool IsFixedWidth(TypeId id) { return id != TypeId::kString; }

size_t FixedWidthBytes(TypeId id) {
  switch (id) {
    case TypeId::kBool:
      return 1;
    case TypeId::kInt32:
      return 4;
    case TypeId::kInt64:
    case TypeId::kFloat64:
    case TypeId::kTimestamp:
      return 8;
    case TypeId::kString:
      return 0;
  }
  return 0;
}

bool IsIntegerBacked(TypeId id) {
  return id == TypeId::kBool || id == TypeId::kInt32 || id == TypeId::kInt64 ||
         id == TypeId::kTimestamp;
}

}  // namespace idf
