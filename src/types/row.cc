#include "types/row.h"

#include <algorithm>

namespace idf {

Status ValidateRow(const Schema& schema, const Row& row) {
  if (static_cast<int>(row.size()) != schema.num_fields()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        schema.ToString());
  }
  for (int i = 0; i < schema.num_fields(); ++i) {
    const Field& f = schema.field(i);
    const Value& v = row[static_cast<size_t>(i)];
    if (v.is_null()) {
      if (!f.nullable) {
        return Status::InvalidArgument("null in non-nullable column '" + f.name +
                                       "'");
      }
      continue;
    }
    IDF_RETURN_NOT_OK(v.CheckType(f.type));
  }
  return Status::OK();
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

Row ConcatRows(const Row& left, const Row& right) {
  Row out;
  out.reserve(left.size() + right.size());
  out.insert(out.end(), left.begin(), left.end());
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

bool RowLess::operator()(const Row& a, const Row& b) const {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] < b[i]) return true;
    if (b[i] < a[i]) return false;
  }
  return a.size() < b.size();
}

uint64_t HashRow(const Row& row) {
  uint64_t h = 0x524f57ULL;  // "ROW"
  for (const Value& v : row) h = HashCombine(h, v.Hash());
  return h;
}

void SortRows(RowVec* rows) { std::sort(rows->begin(), rows->end(), RowLess()); }

}  // namespace idf
