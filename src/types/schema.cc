#include "types/schema.h"

namespace idf {

int Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Result<int> Schema::ResolveFieldIndex(const std::string& name) const {
  int idx = FieldIndex(name);
  if (idx < 0) {
    return Status::KeyError("column not found: '" + name + "' in schema " +
                            ToString());
  }
  return idx;
}

std::string Schema::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name + ":" + TypeIdToString(fields_[i].type);
    if (fields_[i].nullable) out += "?";
  }
  out += "]";
  return out;
}

std::shared_ptr<Schema> Schema::Project(const std::vector<int>& indices) const {
  std::vector<Field> out;
  out.reserve(indices.size());
  for (int i : indices) out.push_back(fields_[static_cast<size_t>(i)]);
  return Schema::Make(std::move(out));
}

std::shared_ptr<Schema> Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Field> out = left.fields();
  for (const Field& f : right.fields()) out.push_back(f);
  return Schema::Make(std::move(out));
}

}  // namespace idf
