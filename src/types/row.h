// Row: a materialized tuple of Values, plus helpers for schema-checked
// construction and pretty printing.
#pragma once

#include <initializer_list>
#include <vector>

#include "types/schema.h"
#include "types/value.h"

namespace idf {

using Row = std::vector<Value>;
using RowVec = std::vector<Row>;

/// Validates that every cell of `row` is storable under `schema`
/// (arity, types, nullability).
Status ValidateRow(const Schema& schema, const Row& row);

/// "(v1, v2, ...)" rendering.
std::string RowToString(const Row& row);

/// Concatenates two rows (join output).
Row ConcatRows(const Row& left, const Row& right);

/// Lexicographic Row comparison via Value::operator< (used by Sort and by
/// tests that canonicalize result sets).
struct RowLess {
  bool operator()(const Row& a, const Row& b) const;
};

/// Combined hash of all cells.
uint64_t HashRow(const Row& row);

/// Sorts a row vector into a canonical order (testing helper).
void SortRows(RowVec* rows);

}  // namespace idf
