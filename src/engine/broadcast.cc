#include "engine/broadcast.h"

// Broadcast helpers are header-only; this translation unit anchors the target.
