#include "engine/shuffle.h"

#include <cstring>
#include <mutex>

namespace idf {

uint32_t BinaryRows::payload_size(size_t i) const {
  uint32_t len;
  std::memcpy(&len, bytes_.data() + offsets_[i] - 4, 4);
  return len;
}

void BinaryRows::Reserve(size_t rows, size_t bytes) {
  offsets_.reserve(offsets_.size() + rows);
  bytes_.reserve(bytes_.size() + bytes);
}

void BinaryRows::Append(const uint8_t* payload, uint32_t len) {
  const size_t start = bytes_.size();
  bytes_.resize(start + 4 + len);
  std::memcpy(bytes_.data() + start, &len, 4);
  std::memcpy(bytes_.data() + start + 4, payload, len);
  offsets_.push_back(start + 4);
}

void BinaryRows::Append(const BinaryRows& other) {
  const size_t base = bytes_.size();
  bytes_.insert(bytes_.end(), other.bytes_.begin(), other.bytes_.end());
  offsets_.reserve(offsets_.size() + other.offsets_.size());
  for (size_t off : other.offsets_) offsets_.push_back(base + off);
}

Status BinaryRows::AppendRow(const Schema& schema, const Row& row,
                             std::vector<uint8_t>* scratch) {
  // Rows reaching the exchange conform to their operator's output schema by
  // construction (ingestion already validated them), so skip the per-row
  // ValidateRow pass the general EncodeRow performs — it shows up in join
  // profiles at ~4% on encode-heavy shapes.
  EncodeRowUnchecked(schema, row, scratch);
  Append(scratch->data(), static_cast<uint32_t>(scratch->size()));
  return Status::OK();
}

Result<BinaryPartitions> ShuffleByKeyBinary(ExecutorContext& ctx,
                                            const PartitionedRows& input,
                                            const Schema& schema, int key_col,
                                            const HashPartitioner& partitioner) {
  const int num_out = partitioner.num_partitions();
  // Map side: each input partition encodes its rows once into
  // per-destination byte buffers.
  std::vector<BinaryPartitions> buckets(input.size());
  uint64_t total_rows = 0;
  uint64_t total_bytes = 0;
  Status first_error;
  std::mutex mu;
  ctx.pool().ParallelFor(input.size(), [&](size_t p) {
    ctx.metrics().AddTask();
    BinaryPartitions local(static_cast<size_t>(num_out));
    std::vector<uint8_t> scratch;
    uint64_t rows = 0;
    uint64_t bytes = 0;
    for (const Row& row : input[p]) {
      const Value& key = row[static_cast<size_t>(key_col)];
      int target = key.is_null() ? 0 : partitioner.PartitionOf(key);
      Status st = local[static_cast<size_t>(target)].AppendRow(schema, row, &scratch);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        if (first_error.ok()) first_error = st;
        return;
      }
      bytes += scratch.size();
      ++rows;
    }
    buckets[p] = std::move(local);
    std::lock_guard<std::mutex> lock(mu);
    total_rows += rows;
    total_bytes += bytes;
  });
  IDF_RETURN_NOT_OK(first_error);
  ctx.metrics().AddShuffledRows(total_rows);
  ctx.metrics().AddShuffledBytes(total_bytes);
  ctx.metrics().AddShuffleEncodedBytes(total_bytes);

  // Reduce side: concatenate the buffers destined for each output
  // partition (whole-buffer memcpy, no per-row work).
  BinaryPartitions output(static_cast<size_t>(num_out));
  ctx.pool().ParallelFor(static_cast<size_t>(num_out), [&](size_t out) {
    ctx.metrics().AddTask();
    size_t rows = 0;
    size_t bytes = 0;
    for (const BinaryPartitions& b : buckets) {
      rows += b[out].num_rows();
      bytes += b[out].byte_size();
    }
    output[out].Reserve(rows, bytes);
    for (const BinaryPartitions& b : buckets) output[out].Append(b[out]);
  });
  return output;
}

size_t EstimateRowBytes(const Row& row) {
  size_t bytes = sizeof(Row);
  for (const Value& v : row) {
    bytes += 16;  // variant header
    if (v.is_string()) bytes += v.string_value().size();
  }
  return bytes;
}

size_t EstimatePartitionedBytes(const PartitionedRows& parts) {
  size_t bytes = 0;
  for (const RowVec& p : parts) {
    for (const Row& r : p) bytes += EstimateRowBytes(r);
  }
  return bytes;
}

PartitionedRows ShuffleByKey(ExecutorContext& ctx, const PartitionedRows& input,
                             int key_col, const HashPartitioner& partitioner) {
  const int num_out = partitioner.num_partitions();
  // Map side: each input partition hashes its rows into `num_out` buckets.
  std::vector<std::vector<RowVec>> buckets(input.size());
  uint64_t total_rows = 0;
  uint64_t total_bytes = 0;
  std::mutex stats_mu;
  ctx.pool().ParallelFor(input.size(), [&](size_t p) {
    ctx.metrics().AddTask();
    std::vector<RowVec> local(static_cast<size_t>(num_out));
    uint64_t rows = 0;
    uint64_t bytes = 0;
    for (const Row& row : input[p]) {
      const Value& key = row[static_cast<size_t>(key_col)];
      int target = key.is_null() ? 0 : partitioner.PartitionOf(key);
      bytes += EstimateRowBytes(row);
      ++rows;
      local[static_cast<size_t>(target)].push_back(row);
    }
    buckets[p] = std::move(local);
    std::lock_guard<std::mutex> lock(stats_mu);
    total_rows += rows;
    total_bytes += bytes;
  });
  ctx.metrics().AddShuffledRows(total_rows);
  ctx.metrics().AddShuffledBytes(total_bytes);

  // Reduce side: concatenate the buckets destined for each output partition.
  PartitionedRows output(static_cast<size_t>(num_out));
  ctx.pool().ParallelFor(static_cast<size_t>(num_out), [&](size_t out) {
    ctx.metrics().AddTask();
    size_t total = 0;
    for (const auto& b : buckets) total += b[out].size();
    output[out].reserve(total);
    for (auto& b : buckets) {
      for (Row& row : b[out]) output[out].push_back(std::move(row));
    }
  });
  return output;
}

PartitionedRows SplitRoundRobin(const RowVec& rows, int num_partitions) {
  PartitionedRows out(static_cast<size_t>(num_partitions));
  const size_t parts = static_cast<size_t>(num_partitions);
  // Partition i receives exactly one extra row when i < rows % parts.
  for (size_t i = 0; i < parts; ++i) {
    out[i].reserve(rows.size() / parts + (i < rows.size() % parts ? 1 : 0));
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    out[i % static_cast<size_t>(num_partitions)].push_back(rows[i]);
  }
  return out;
}

RowVec FlattenPartitions(const PartitionedRows& parts) {
  RowVec out;
  out.reserve(CountRows(parts));
  for (const RowVec& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

size_t CountRows(const PartitionedRows& parts) {
  size_t n = 0;
  for (const RowVec& p : parts) n += p.size();
  return n;
}

}  // namespace idf
