#include "engine/shuffle.h"

#include <mutex>

namespace idf {

size_t EstimateRowBytes(const Row& row) {
  size_t bytes = sizeof(Row);
  for (const Value& v : row) {
    bytes += 16;  // variant header
    if (v.is_string()) bytes += v.string_value().size();
  }
  return bytes;
}

size_t EstimatePartitionedBytes(const PartitionedRows& parts) {
  size_t bytes = 0;
  for (const RowVec& p : parts) {
    for (const Row& r : p) bytes += EstimateRowBytes(r);
  }
  return bytes;
}

PartitionedRows ShuffleByKey(ExecutorContext& ctx, const PartitionedRows& input,
                             int key_col, const HashPartitioner& partitioner) {
  const int num_out = partitioner.num_partitions();
  // Map side: each input partition hashes its rows into `num_out` buckets.
  std::vector<std::vector<RowVec>> buckets(input.size());
  uint64_t total_rows = 0;
  uint64_t total_bytes = 0;
  std::mutex stats_mu;
  ctx.pool().ParallelFor(input.size(), [&](size_t p) {
    ctx.metrics().AddTask();
    std::vector<RowVec> local(static_cast<size_t>(num_out));
    uint64_t rows = 0;
    uint64_t bytes = 0;
    for (const Row& row : input[p]) {
      const Value& key = row[static_cast<size_t>(key_col)];
      int target = key.is_null() ? 0 : partitioner.PartitionOf(key);
      bytes += EstimateRowBytes(row);
      ++rows;
      local[static_cast<size_t>(target)].push_back(row);
    }
    buckets[p] = std::move(local);
    std::lock_guard<std::mutex> lock(stats_mu);
    total_rows += rows;
    total_bytes += bytes;
  });
  ctx.metrics().AddShuffledRows(total_rows);
  ctx.metrics().AddShuffledBytes(total_bytes);

  // Reduce side: concatenate the buckets destined for each output partition.
  PartitionedRows output(static_cast<size_t>(num_out));
  ctx.pool().ParallelFor(static_cast<size_t>(num_out), [&](size_t out) {
    ctx.metrics().AddTask();
    size_t total = 0;
    for (const auto& b : buckets) total += b[out].size();
    output[out].reserve(total);
    for (auto& b : buckets) {
      RowVec& src = const_cast<RowVec&>(b[out]);
      for (Row& row : src) output[out].push_back(std::move(row));
    }
  });
  return output;
}

PartitionedRows SplitRoundRobin(const RowVec& rows, int num_partitions) {
  PartitionedRows out(static_cast<size_t>(num_partitions));
  size_t per = rows.size() / static_cast<size_t>(num_partitions) + 1;
  for (auto& p : out) p.reserve(per);
  for (size_t i = 0; i < rows.size(); ++i) {
    out[i % static_cast<size_t>(num_partitions)].push_back(rows[i]);
  }
  return out;
}

RowVec FlattenPartitions(const PartitionedRows& parts) {
  RowVec out;
  out.reserve(CountRows(parts));
  for (const RowVec& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

size_t CountRows(const PartitionedRows& parts) {
  size_t n = 0;
  for (const RowVec& p : parts) n += p.size();
  return n;
}

}  // namespace idf
