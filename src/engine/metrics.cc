#include "engine/metrics.h"

namespace idf {

void QueryMetrics::Reset() {
  shuffled_rows_ = 0;
  shuffled_bytes_ = 0;
  broadcast_bytes_ = 0;
  tasks_run_ = 0;
  index_probes_ = 0;
  index_hits_ = 0;
  rows_scanned_ = 0;
  rows_produced_ = 0;
  morsels_dispatched_ = 0;
  shuffle_encoded_bytes_ = 0;
  decodes_avoided_ = 0;
  predicates_compiled_ = 0;
  rows_filtered_encoded_ = 0;
  rows_filtered_vectorized_ = 0;
  vector_batches_evaluated_ = 0;
  agg_morsels_ = 0;
  agg_partials_merged_ = 0;
  rows_aggregated_encoded_ = 0;
  append_batches_ = 0;
  append_partition_locks_ = 0;
  rows_appended_parallel_ = 0;
  compactions_run_ = 0;
  chain_links_rewritten_ = 0;
  bytes_reclaimed_ = 0;
  bitmap_probes_ = 0;
  range_probes_ = 0;
  index_scans_avoided_ = 0;
  bitmap_maintenance_us_ = 0;
  range_maintenance_us_ = 0;
}

std::string QueryMetrics::ToString() const {
  return "metrics{shuffled_rows=" + std::to_string(shuffled_rows()) +
         ", shuffled_bytes=" + std::to_string(shuffled_bytes()) +
         ", broadcast_bytes=" + std::to_string(broadcast_bytes()) +
         ", tasks=" + std::to_string(tasks_run()) +
         ", index_probes=" + std::to_string(index_probes()) +
         ", index_hits=" + std::to_string(index_hits()) +
         ", rows_scanned=" + std::to_string(rows_scanned()) +
         ", rows_produced=" + std::to_string(rows_produced()) +
         ", morsels=" + std::to_string(morsels_dispatched()) +
         ", shuffle_encoded_bytes=" + std::to_string(shuffle_encoded_bytes()) +
         ", decodes_avoided=" + std::to_string(decodes_avoided()) +
         ", predicates_compiled=" + std::to_string(predicates_compiled()) +
         ", rows_filtered_encoded=" + std::to_string(rows_filtered_encoded()) +
         ", rows_filtered_vectorized=" +
         std::to_string(rows_filtered_vectorized()) +
         ", vector_batches_evaluated=" +
         std::to_string(vector_batches_evaluated()) +
         ", agg_morsels=" + std::to_string(agg_morsels()) +
         ", agg_partials_merged=" + std::to_string(agg_partials_merged()) +
         ", rows_aggregated_encoded=" + std::to_string(rows_aggregated_encoded()) +
         ", append_batches=" + std::to_string(append_batches()) +
         ", append_partition_locks=" + std::to_string(append_partition_locks()) +
         ", rows_appended_parallel=" + std::to_string(rows_appended_parallel()) +
         ", compactions_run=" + std::to_string(compactions_run()) +
         ", chain_links_rewritten=" + std::to_string(chain_links_rewritten()) +
         ", bytes_reclaimed=" + std::to_string(bytes_reclaimed()) +
         ", bitmap_probes=" + std::to_string(bitmap_probes()) +
         ", range_probes=" + std::to_string(range_probes()) +
         ", index_scans_avoided=" + std::to_string(index_scans_avoided()) +
         ", bitmap_maintenance_us=" + std::to_string(bitmap_maintenance_us()) +
         ", range_maintenance_us=" + std::to_string(range_maintenance_us()) +
         "}";
}

}  // namespace idf
