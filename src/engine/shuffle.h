// Shuffle: redistributes partitioned rows by the hash of a key column,
// modelling Spark's exchange. The data movement (hash, route, copy) is real
// work and is what the indexed join avoids on its build side.
//
// Two exchanges exist: the legacy row exchange (materialized `Row` cells,
// two deep copies) and the binary exchange, where map tasks encode each row
// once into per-destination byte buffers, reduce tasks concatenate whole
// buffers, and operators decode lazily (per column) on the far side.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "engine/executor_context.h"
#include "engine/partitioner.h"
#include "storage/row_batch.h"
#include "types/row.h"
#include "types/schema.h"

namespace idf {

/// Rows of one dataset, split across partitions.
using PartitionedRows = std::vector<RowVec>;

/// Approximate in-memory size of a row (metrics and broadcast decisions).
size_t EstimateRowBytes(const Row& row);

size_t EstimatePartitionedBytes(const PartitionedRows& parts);

/// Redistributes `input` so that every row lands in partition
/// `partitioner.PartitionOf(row[key_col])`. Null keys go to partition 0.
PartitionedRows ShuffleByKey(ExecutorContext& ctx, const PartitionedRows& input,
                             int key_col, const HashPartitioner& partitioner);

/// \brief Encoded rows of one shuffle destination: UnsafeRow payloads
/// packed back-to-back into a single buffer, each preceded by a 4-byte
/// length prefix. Rows are addressable by index, so probe-side operators
/// can split a buffer into morsels and decode columns lazily.
class BinaryRows {
 public:
  size_t num_rows() const { return offsets_.size(); }
  size_t byte_size() const { return bytes_.size(); }
  bool empty() const { return offsets_.empty(); }

  /// Pointer to the encoded payload of row `i` (valid until mutation).
  const uint8_t* payload(size_t i) const { return bytes_.data() + offsets_[i]; }
  uint32_t payload_size(size_t i) const;

  void Reserve(size_t rows, size_t bytes);
  void Append(const uint8_t* payload, uint32_t len);
  /// Concatenates all of `other` (one buffer memcpy — the reduce side).
  void Append(const BinaryRows& other);

  /// Encodes `row` once (via `scratch`, reused across calls) and appends it.
  Status AppendRow(const Schema& schema, const Row& row,
                   std::vector<uint8_t>* scratch);

  /// Materializes row `i` (the non-lazy fallback).
  Row Decode(size_t i, const Schema& schema) const {
    return DecodeRow(payload(i), schema);
  }

 private:
  std::vector<uint8_t> bytes_;   // [u32 length][payload] ...
  std::vector<size_t> offsets_;  // payload start of row i (prefix excluded)
};

/// One BinaryRows buffer per shuffle destination.
using BinaryPartitions = std::vector<BinaryRows>;

/// Binary exchange with ShuffleByKey's routing (hash of `key_col`, null
/// keys to partition 0): map tasks encode rows into per-task,
/// per-destination buffers; reduce tasks concatenate. Produces row-for-row
/// the same partition contents and order as ShuffleByKey, without the two
/// deep Row copies and per-cell Value allocations.
Result<BinaryPartitions> ShuffleByKeyBinary(ExecutorContext& ctx,
                                            const PartitionedRows& input,
                                            const Schema& schema, int key_col,
                                            const HashPartitioner& partitioner);

/// Splits a flat row vector into `num_partitions` round-robin chunks
/// (initial placement of un-partitioned data).
PartitionedRows SplitRoundRobin(const RowVec& rows, int num_partitions);

/// Flattens partitions into one vector (action boundary, e.g. Collect()).
RowVec FlattenPartitions(const PartitionedRows& parts);

size_t CountRows(const PartitionedRows& parts);

}  // namespace idf
