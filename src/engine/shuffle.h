// Shuffle: redistributes partitioned rows by the hash of a key column,
// modelling Spark's exchange. The data movement (hash, route, copy) is real
// work and is what the indexed join avoids on its build side.
#pragma once

#include <vector>

#include "common/result.h"
#include "engine/executor_context.h"
#include "engine/partitioner.h"
#include "types/row.h"

namespace idf {

/// Rows of one dataset, split across partitions.
using PartitionedRows = std::vector<RowVec>;

/// Approximate in-memory size of a row (metrics and broadcast decisions).
size_t EstimateRowBytes(const Row& row);

size_t EstimatePartitionedBytes(const PartitionedRows& parts);

/// Redistributes `input` so that every row lands in partition
/// `partitioner.PartitionOf(row[key_col])`. Null keys go to partition 0.
PartitionedRows ShuffleByKey(ExecutorContext& ctx, const PartitionedRows& input,
                             int key_col, const HashPartitioner& partitioner);

/// Splits a flat row vector into `num_partitions` round-robin chunks
/// (initial placement of un-partitioned data).
PartitionedRows SplitRoundRobin(const RowVec& rows, int num_partitions);

/// Flattens partitions into one vector (action boundary, e.g. Collect()).
RowVec FlattenPartitions(const PartitionedRows& parts);

size_t CountRows(const PartitionedRows& parts);

}  // namespace idf
