// Execution metrics: rows/bytes shuffled, tasks run, index probes. Used by
// benchmarks and tests to assert which physical path actually executed
// (e.g. "this query probed the index and shuffled nothing").
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace idf {

class QueryMetrics {
 public:
  void Reset();

  void AddShuffledRows(uint64_t n) { shuffled_rows_ += n; }
  void AddShuffledBytes(uint64_t n) { shuffled_bytes_ += n; }
  void AddBroadcastBytes(uint64_t n) { broadcast_bytes_ += n; }
  void AddTask() { tasks_run_ += 1; }
  void AddIndexProbes(uint64_t n) { index_probes_ += n; }
  void AddIndexHits(uint64_t n) { index_hits_ += n; }
  void AddRowsScanned(uint64_t n) { rows_scanned_ += n; }
  void AddRowsProduced(uint64_t n) { rows_produced_ += n; }
  void AddMorsels(uint64_t n) { morsels_dispatched_ += n; }
  void AddShuffleEncodedBytes(uint64_t n) { shuffle_encoded_bytes_ += n; }
  void AddDecodesAvoided(uint64_t n) { decodes_avoided_ += n; }
  void AddPredicatesCompiled(uint64_t n) { predicates_compiled_ += n; }
  void AddRowsFilteredEncoded(uint64_t n) { rows_filtered_encoded_ += n; }
  void AddRowsFilteredVectorized(uint64_t n) { rows_filtered_vectorized_ += n; }
  void AddVectorBatches(uint64_t n) { vector_batches_evaluated_ += n; }
  void AddAggMorsels(uint64_t n) { agg_morsels_ += n; }
  void AddAggPartialsMerged(uint64_t n) { agg_partials_merged_ += n; }
  void AddRowsAggregatedEncoded(uint64_t n) { rows_aggregated_encoded_ += n; }
  void AddAppendBatches(uint64_t n) { append_batches_ += n; }
  void AddAppendPartitionLocks(uint64_t n) { append_partition_locks_ += n; }
  void AddRowsAppendedParallel(uint64_t n) { rows_appended_parallel_ += n; }
  void AddCompactionsRun(uint64_t n) { compactions_run_ += n; }
  void AddChainLinksRewritten(uint64_t n) { chain_links_rewritten_ += n; }
  void AddBytesReclaimed(uint64_t n) { bytes_reclaimed_ += n; }
  void AddBitmapProbes(uint64_t n) { bitmap_probes_ += n; }
  void AddRangeProbes(uint64_t n) { range_probes_ += n; }
  void AddIndexScansAvoided(uint64_t n) { index_scans_avoided_ += n; }
  void AddBitmapMaintenanceUs(uint64_t n) { bitmap_maintenance_us_ += n; }
  void AddRangeMaintenanceUs(uint64_t n) { range_maintenance_us_ += n; }

  uint64_t shuffled_rows() const { return shuffled_rows_; }
  uint64_t shuffled_bytes() const { return shuffled_bytes_; }
  uint64_t broadcast_bytes() const { return broadcast_bytes_; }
  uint64_t tasks_run() const { return tasks_run_; }
  uint64_t index_probes() const { return index_probes_; }
  uint64_t index_hits() const { return index_hits_; }
  uint64_t rows_scanned() const { return rows_scanned_; }
  uint64_t rows_produced() const { return rows_produced_; }
  uint64_t morsels_dispatched() const { return morsels_dispatched_; }
  uint64_t shuffle_encoded_bytes() const { return shuffle_encoded_bytes_; }
  uint64_t decodes_avoided() const { return decodes_avoided_; }
  uint64_t predicates_compiled() const { return predicates_compiled_; }
  uint64_t rows_filtered_encoded() const { return rows_filtered_encoded_; }
  uint64_t rows_filtered_vectorized() const { return rows_filtered_vectorized_; }
  uint64_t vector_batches_evaluated() const { return vector_batches_evaluated_; }
  uint64_t agg_morsels() const { return agg_morsels_; }
  uint64_t agg_partials_merged() const { return agg_partials_merged_; }
  uint64_t rows_aggregated_encoded() const { return rows_aggregated_encoded_; }
  uint64_t append_batches() const { return append_batches_; }
  uint64_t append_partition_locks() const { return append_partition_locks_; }
  uint64_t rows_appended_parallel() const { return rows_appended_parallel_; }
  uint64_t compactions_run() const { return compactions_run_; }
  uint64_t chain_links_rewritten() const { return chain_links_rewritten_; }
  uint64_t bytes_reclaimed() const { return bytes_reclaimed_; }
  uint64_t bitmap_probes() const { return bitmap_probes_; }
  uint64_t range_probes() const { return range_probes_; }
  uint64_t index_scans_avoided() const { return index_scans_avoided_; }
  uint64_t bitmap_maintenance_us() const { return bitmap_maintenance_us_; }
  uint64_t range_maintenance_us() const { return range_maintenance_us_; }

  std::string ToString() const;

 private:
  std::atomic<uint64_t> shuffled_rows_{0};
  std::atomic<uint64_t> shuffled_bytes_{0};
  std::atomic<uint64_t> broadcast_bytes_{0};
  std::atomic<uint64_t> tasks_run_{0};
  std::atomic<uint64_t> index_probes_{0};
  std::atomic<uint64_t> index_hits_{0};
  std::atomic<uint64_t> rows_scanned_{0};
  std::atomic<uint64_t> rows_produced_{0};
  std::atomic<uint64_t> morsels_dispatched_{0};
  std::atomic<uint64_t> shuffle_encoded_bytes_{0};
  std::atomic<uint64_t> decodes_avoided_{0};
  std::atomic<uint64_t> predicates_compiled_{0};
  std::atomic<uint64_t> rows_filtered_encoded_{0};
  std::atomic<uint64_t> rows_filtered_vectorized_{0};
  std::atomic<uint64_t> vector_batches_evaluated_{0};
  std::atomic<uint64_t> agg_morsels_{0};
  std::atomic<uint64_t> agg_partials_merged_{0};
  std::atomic<uint64_t> rows_aggregated_encoded_{0};
  std::atomic<uint64_t> append_batches_{0};
  std::atomic<uint64_t> append_partition_locks_{0};
  std::atomic<uint64_t> rows_appended_parallel_{0};
  std::atomic<uint64_t> compactions_run_{0};
  std::atomic<uint64_t> chain_links_rewritten_{0};
  std::atomic<uint64_t> bytes_reclaimed_{0};
  // Secondary indexes: probe counts per kind, rows an index probe skipped
  // scanning, and per-kind maintenance time inside append batches.
  std::atomic<uint64_t> bitmap_probes_{0};
  std::atomic<uint64_t> range_probes_{0};
  std::atomic<uint64_t> index_scans_avoided_{0};
  std::atomic<uint64_t> bitmap_maintenance_us_{0};
  std::atomic<uint64_t> range_maintenance_us_{0};
};

}  // namespace idf
