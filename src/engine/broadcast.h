// Broadcast: ships a small dataset to every executor, modelling Spark's
// broadcast variables. In-process this is a shared immutable pointer; the
// metrics account the bytes a cluster would transmit (size x executors) so
// join-strategy decisions and benchmark reporting stay faithful.
#pragma once

#include <memory>

#include "engine/executor_context.h"
#include "engine/shuffle.h"

namespace idf {

struct BroadcastRows {
  std::shared_ptr<const RowVec> rows;
};

/// Creates a broadcast of `rows`, charging metrics for the simulated
/// cluster-wide transmission.
inline BroadcastRows MakeBroadcast(ExecutorContext& ctx, RowVec rows) {
  size_t bytes = 0;
  for (const Row& r : rows) bytes += EstimateRowBytes(r);
  ctx.metrics().AddBroadcastBytes(bytes *
                                  static_cast<uint64_t>(ctx.config().num_threads));
  return BroadcastRows{std::make_shared<const RowVec>(std::move(rows))};
}

}  // namespace idf
