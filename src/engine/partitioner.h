// HashPartitioner: routes rows to partitions by the hash of a key value.
// This is the partitioning scheme of the Indexed DataFrame ("hash
// partitioning scheme on the indexed key", paper §2) and of shuffles.
#pragma once

#include <cstdint>

#include "types/value.h"

namespace idf {

class HashPartitioner {
 public:
  explicit HashPartitioner(int num_partitions) : num_partitions_(num_partitions) {}

  int num_partitions() const { return num_partitions_; }

  int PartitionOf(const Value& key) const {
    return static_cast<int>(key.Hash() % static_cast<uint64_t>(num_partitions_));
  }

  int PartitionOfHash(uint64_t hash) const {
    return static_cast<int>(hash % static_cast<uint64_t>(num_partitions_));
  }

  bool operator==(const HashPartitioner& o) const {
    return num_partitions_ == o.num_partitions_;
  }

 private:
  int num_partitions_;
};

}  // namespace idf
