#include "engine/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"

namespace idf {

thread_local bool ThreadPool::is_worker_ = false;

ThreadPool::ThreadPool(int num_threads) {
  IDF_CHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  is_worker_ = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                             const CancellationToken* cancel) {
  if (n == 0) return;
  if (n == 1 || is_worker_) {
    // Nested parallelism runs inline: a worker blocking on sub-tasks could
    // exhaust the pool and deadlock.
    for (size_t i = 0; i < n; ++i) {
      if (cancel != nullptr && cancel->stop_requested()) break;
      fn(i);
    }
    return;
  }
  // Shared state outlives this call: trailing shard tasks may still touch
  // it after the last iteration completes and the caller resumes.
  struct SharedState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
    std::function<void(size_t)> body;
  };
  auto state = std::make_shared<SharedState>();
  state->body = fn;
  size_t shards = std::min(n, static_cast<size_t>(num_threads()));
  for (size_t s = 0; s < shards; ++s) {
    Submit([state, n, cancel] {
      for (;;) {
        size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        // A stopped job drains its remaining iterations without running
        // the body, so the completion count still reaches n.
        if (cancel == nullptr || !cancel->stop_requested()) state->body(i);
        if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
          std::lock_guard<std::mutex> lock(state->mu);
          state->cv.notify_all();
        }
      }
    });
  }
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock,
                 [&] { return state->done.load(std::memory_order_acquire) == n; });
}

size_t ThreadPool::ParallelForRange(size_t n, size_t grain,
                                    const std::function<void(size_t, size_t)>& fn,
                                    const CancellationToken* cancel) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  const size_t num_chunks = (n + grain - 1) / grain;
  if (num_chunks == 1 || is_worker_) {
    // Single chunk (no dispatch overhead for small jobs) or nested call
    // from a worker, which must run inline to avoid pool exhaustion.
    for (size_t begin = 0; begin < n; begin += grain) {
      if (cancel != nullptr && cancel->stop_requested()) break;
      fn(begin, std::min(n, begin + grain));
    }
    return num_chunks;
  }
  struct SharedState {
    std::atomic<size_t> cursor{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
    std::function<void(size_t, size_t)> body;
  };
  auto state = std::make_shared<SharedState>();
  state->body = fn;
  size_t shards = std::min(num_chunks, static_cast<size_t>(num_threads()));
  for (size_t s = 0; s < shards; ++s) {
    Submit([state, n, grain, num_chunks, cancel] {
      for (;;) {
        size_t begin = state->cursor.fetch_add(grain, std::memory_order_relaxed);
        if (begin >= n) break;
        // Cancellation check at the morsel boundary: a stopped job drains
        // its remaining chunks (counting them done) without running the
        // body, freeing the workers within one morsel.
        if (cancel == nullptr || !cancel->stop_requested()) {
          state->body(begin, std::min(n, begin + grain));
        }
        if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == num_chunks) {
          std::lock_guard<std::mutex> lock(state->mu);
          state->cv.notify_all();
        }
      }
    });
  }
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == num_chunks;
  });
  return num_chunks;
}

}  // namespace idf
