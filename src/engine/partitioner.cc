#include "engine/partitioner.h"

// HashPartitioner is header-only; this translation unit anchors the target.
