#include "engine/executor_context.h"

namespace idf {

ExecutorContext::ExecutorContext(EngineConfig config)
    : config_(config), pool_(std::make_unique<ThreadPool>(config.num_threads)) {}

Result<std::shared_ptr<ExecutorContext>> ExecutorContext::Make(
    const EngineConfig& config) {
  EngineConfig resolved = config.Resolved();
  IDF_RETURN_NOT_OK(resolved.Validate());
  return std::shared_ptr<ExecutorContext>(new ExecutorContext(resolved));
}

}  // namespace idf
