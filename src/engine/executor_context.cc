#include "engine/executor_context.h"

#include <algorithm>

namespace idf {

namespace {
// Below this many rows a morsel is not worth a pool dispatch.
constexpr size_t kMinMorselRows = 256;
}  // namespace

ExecutorContext::ExecutorContext(EngineConfig config,
                                 std::shared_ptr<ThreadPool> pool)
    : config_(config), pool_(std::move(pool)) {}

Result<std::shared_ptr<ExecutorContext>> ExecutorContext::Make(
    const EngineConfig& config) {
  EngineConfig resolved = config.Resolved();
  IDF_RETURN_NOT_OK(resolved.Validate());
  auto pool = std::make_shared<ThreadPool>(resolved.num_threads);
  return std::shared_ptr<ExecutorContext>(
      new ExecutorContext(resolved, std::move(pool)));
}

Result<std::shared_ptr<ExecutorContext>> ExecutorContext::MakeWithPool(
    const EngineConfig& config, std::shared_ptr<ThreadPool> pool) {
  if (pool == nullptr) {
    return Status::InvalidArgument("MakeWithPool: null thread pool");
  }
  EngineConfig resolved = config.Resolved();
  resolved.num_threads = pool->num_threads();
  IDF_RETURN_NOT_OK(resolved.Validate());
  return std::shared_ptr<ExecutorContext>(
      new ExecutorContext(resolved, std::move(pool)));
}

size_t ExecutorContext::MorselGrain(size_t n) const {
  const size_t threads = static_cast<size_t>(config_.num_threads);
  // ~4 chunks per worker keeps the atomic cursor balancing skewed work.
  const size_t balanced = (n + threads * 4 - 1) / (threads * 4);
  return std::max<size_t>(
      1, std::min(config_.morsel_rows, std::max(balanced, kMinMorselRows)));
}

}  // namespace idf
