// ExecutorContext: the per-session runtime — resolved configuration, the
// executor thread pool, and query metrics. One context is shared by all
// DataFrames of a Session.
//
// The thread pool is shareable: the query service derives one lightweight
// context per admitted query (own metrics, own cancellation token) over
// the base session's pool, so concurrent queries interleave morsels on the
// same workers without sharing mutable per-query state.
#pragma once

#include <memory>
#include <vector>

#include "common/cancellation.h"
#include "common/config.h"
#include "common/result.h"
#include "engine/metrics.h"
#include "engine/thread_pool.h"
#include "types/value.h"

namespace idf {

class ExecutorContext {
 public:
  /// `config` is resolved (auto fields filled) and validated here.
  static Result<std::shared_ptr<ExecutorContext>> Make(const EngineConfig& config);

  /// Derived context sharing an existing pool: fresh metrics and
  /// cancellation slot, same workers. `config` is resolved and validated;
  /// its num_threads is overridden by the pool's actual size (morsel
  /// sizing must reflect the real worker count).
  static Result<std::shared_ptr<ExecutorContext>> MakeWithPool(
      const EngineConfig& config, std::shared_ptr<ThreadPool> pool);

  const EngineConfig& config() const { return config_; }
  ThreadPool& pool() { return *pool_; }
  const std::shared_ptr<ThreadPool>& shared_pool() const { return pool_; }
  QueryMetrics& metrics() { return metrics_; }

  /// Per-query cancellation. Null token (the default) never cancels.
  /// Install before execution starts; not thread-safe against a running
  /// query on this context.
  void SetCancellation(CancellationTokenPtr token) { cancel_ = std::move(token); }
  const CancellationToken* cancellation() const { return cancel_.get(); }

  /// OK unless this context's token requests stop (operators call this at
  /// entry and after each parallel region, turning a drained job into
  /// Status::Cancelled / DeadlineExceeded).
  Status CheckCancelled() const {
    return cancel_ == nullptr ? Status::OK() : cancel_->CheckStatus();
  }

  /// Prepared-statement parameter bindings for this execution (values
  /// already coerced to their declared types). Operators holding
  /// ParameterRef expressions or parameter slots bind against these at
  /// Execute entry. Install before execution starts, like SetCancellation;
  /// null (the default) means "no parameters".
  void SetParameters(std::shared_ptr<const std::vector<Value>> params) {
    params_ = std::move(params);
  }
  const std::vector<Value>* parameters() const { return params_.get(); }

  int num_partitions() const { return config_.num_partitions; }

  /// Rows per morsel for a job of `n` rows: the configured ceiling
  /// (`morsel_rows`), shrunk so every worker gets several chunks to pull
  /// from the shared cursor, floored so tiny jobs stay in one inline chunk
  /// instead of paying dispatch overhead per handful of rows.
  size_t MorselGrain(size_t n) const;

 private:
  ExecutorContext(EngineConfig config, std::shared_ptr<ThreadPool> pool);

  EngineConfig config_;
  std::shared_ptr<ThreadPool> pool_;
  QueryMetrics metrics_;
  CancellationTokenPtr cancel_;
  std::shared_ptr<const std::vector<Value>> params_;
};

using ExecutorContextPtr = std::shared_ptr<ExecutorContext>;

}  // namespace idf
