// ExecutorContext: the per-session runtime — resolved configuration, the
// executor thread pool, and query metrics. One context is shared by all
// DataFrames of a Session.
#pragma once

#include <memory>

#include "common/config.h"
#include "common/result.h"
#include "engine/metrics.h"
#include "engine/thread_pool.h"

namespace idf {

class ExecutorContext {
 public:
  /// `config` is resolved (auto fields filled) and validated here.
  static Result<std::shared_ptr<ExecutorContext>> Make(const EngineConfig& config);

  const EngineConfig& config() const { return config_; }
  ThreadPool& pool() { return *pool_; }
  QueryMetrics& metrics() { return metrics_; }

  int num_partitions() const { return config_.num_partitions; }

  /// Rows per morsel for a job of `n` rows: the configured ceiling
  /// (`morsel_rows`), shrunk so every worker gets several chunks to pull
  /// from the shared cursor, floored so tiny jobs stay in one inline chunk
  /// instead of paying dispatch overhead per handful of rows.
  size_t MorselGrain(size_t n) const;

 private:
  explicit ExecutorContext(EngineConfig config);

  EngineConfig config_;
  std::unique_ptr<ThreadPool> pool_;
  QueryMetrics metrics_;
};

using ExecutorContextPtr = std::shared_ptr<ExecutorContext>;

}  // namespace idf
