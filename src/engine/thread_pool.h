// ThreadPool: the "executor" pool. Spark runs one task per core at a time
// per executor; we model the cluster as one pool with a fixed number of
// worker threads executing per-partition tasks.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/macros.h"

namespace idf {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  IDF_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n), distributing across the pool, and blocks
  /// until all iterations finish. Reentrant calls from worker threads run
  /// inline to avoid deadlock. When `cancel` requests stop, remaining
  /// iterations are drained without running `fn` (already-started
  /// iterations finish); the caller is responsible for turning the token
  /// state into a Status.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   const CancellationToken* cancel = nullptr);

  /// Morsel-driven variant: runs fn(begin, end) over chunks of `grain`
  /// indices carved out of [0, n) by an atomic cursor, so workers that
  /// finish early keep pulling chunks (one skewed chunk cannot serialize
  /// the rest). Chunk k is exactly [k*grain, min(n, (k+1)*grain)), so
  /// callers may index per-chunk state by `begin / grain`. Returns the
  /// number of chunks dispatched (the morsel count). Blocks until all
  /// chunks finish; reentrant calls from worker threads run inline.
  ///
  /// `cancel` makes the job cooperative: the token is polled before every
  /// chunk, and once stop is requested the remaining chunks are drained
  /// without running `fn` — a cancelled or timed-out query stops consuming
  /// workers within one morsel, instead of scanning to completion.
  size_t ParallelForRange(size_t n, size_t grain,
                          const std::function<void(size_t, size_t)>& fn,
                          const CancellationToken* cancel = nullptr);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool shutdown_ = false;
  static thread_local bool is_worker_;
};

}  // namespace idf
