// Indexed physical operators: the execution layer the paper's Catalyst
// rules dispatch to — IndexedScan (full scan of the row batches),
// IndexLookup (cTrie point lookup), and IndexedEquiJoin (probe-side-only
// shuffle or broadcast against the pre-built index).
#pragma once

#include <optional>

#include "indexed/indexed_relation.h"
#include "sql/physical_operators.h"
#include "sql/physical_plan.h"
#include "sql/predicate_compiler.h"

namespace idf {

/// A filter pushed into a physical read path: an optional compiled program
/// evaluated against the encoded payload (rejected rows are never decoded)
/// plus an optional interpreter residual evaluated on the decoded row. A
/// row survives iff the compiled part Matches() and the residual is TRUE.
struct PushedFilter {
  std::optional<CompiledPredicate> compiled;
  ExprPtr residual;

  bool has_any() const { return compiled.has_value() || residual != nullptr; }

  /// True when either part still references prepared-statement parameters
  /// and must be Bind()-ed before rows are evaluated.
  bool has_params() const {
    return (compiled.has_value() && compiled->has_params()) ||
           (residual != nullptr && ExprHasParameters(residual));
  }

  /// Returns a copy with the compiled program's immediate slots patched
  /// (CompiledPredicate::BindParams — no recompilation) and the residual's
  /// ParameterRefs substituted with literals.
  Result<PushedFilter> Bind(const std::vector<Value>& params) const;

  static PushedFilter FromSplit(PredicateSplit split) {
    return PushedFilter{std::move(split.compiled), std::move(split.residual)};
  }
};

/// Full scan of an indexed relation's row batches (decodes binary rows:
/// the row-major representation the paper notes is slower to project than
/// Spark's columnar cache).
class IndexedScanOp : public PhysicalOp {
 public:
  explicit IndexedScanOp(IndexedRelationPtr rel)
      : PhysicalOp(rel->schema()), rel_(std::move(rel)) {}
  std::string name() const override { return "IndexedScan[" + rel_->name() + "]"; }
  Result<PartitionVec> Execute(ExecutorContext& ctx) override;

 private:
  IndexedRelationPtr rel_;
};

/// Scan of a pinned snapshot: always reads the frozen version, regardless
/// of how much the live relation has grown since Pin().
class SnapshotScanOp : public PhysicalOp {
 public:
  explicit SnapshotScanOp(PinnedSnapshotPtr snapshot)
      : PhysicalOp(snapshot->schema()), snapshot_(std::move(snapshot)) {}
  std::string name() const override {
    return "SnapshotScan[" + snapshot_->name() + "]";
  }
  Result<PartitionVec> Execute(ExecutorContext& ctx) override;

 private:
  PinnedSnapshotPtr snapshot_;
};

/// The data a fused scan operator reads: a live indexed relation (fresh
/// snapshot per execution) or a pinned one (always the frozen version).
/// Exactly one of the two is set.
struct ScanSource {
  IndexedRelationPtr rel;
  PinnedSnapshotPtr pin;

  ScanSource(IndexedRelationPtr r) : rel(std::move(r)) {}  // NOLINT(runtime/explicit)
  ScanSource(PinnedSnapshotPtr p) : pin(std::move(p)) {}   // NOLINT(runtime/explicit)

  bool valid() const { return rel != nullptr || pin != nullptr; }

  const std::string& name() const { return rel ? rel->name() : pin->name(); }
  const SchemaPtr& schema() const { return rel ? rel->schema() : pin->schema(); }

  /// The snapshot to read: freshly captured for a live relation (parked in
  /// `scratch`, which must outlive the returned reference), the frozen one
  /// for a pin. Snapshots are move-only (the per-partition views hold trie
  /// roots), hence the out-parameter instead of a by-value return.
  const IndexedRelationSnapshot& Snapshot(
      std::optional<IndexedRelationSnapshot>* scratch) const {
    if (pin) return pin->snapshot();
    scratch->emplace(rel->Snapshot());
    return **scratch;
  }
};

/// Fused scan + compiled filter over the row batches: the compiled program
/// runs against the encoded payload (rows it rejects are never decoded),
/// the interpreter residual — if any — runs on the decoded survivors, and
/// only matches materialize (optionally just the projected columns). This
/// is the lazy-decoding advantage of the binary row layout; the planner
/// fuses `[Project over] Filter(pred)` over an IndexedScan (or a pinned
/// SnapshotScan) into this operator whenever at least one conjunct of the
/// predicate compiles.
class IndexedScanFilterOp : public PhysicalOp {
 public:
  /// `project_cols` empty means "all columns" (then `schema` must be the
  /// relation's schema).
  IndexedScanFilterOp(ScanSource source, ExprPtr predicate, PushedFilter filter,
                      std::vector<int> project_cols = {},
                      SchemaPtr schema = nullptr)
      : PhysicalOp(schema ? std::move(schema) : source.schema()),
        source_(std::move(source)),
        predicate_(std::move(predicate)),
        filter_(std::move(filter)),
        project_cols_(std::move(project_cols)) {}
  std::string name() const override {
    return "IndexedScanFilter[" + source_.name() + "] " + predicate_->ToString() +
           (filter_.compiled ? " (compiled)" : "") +
           (project_cols_.empty() ? "" : " (pruned)");
  }
  Result<PartitionVec> Execute(ExecutorContext& ctx) override;

 private:
  ScanSource source_;
  ExprPtr predicate_;
  PushedFilter filter_;
  std::vector<int> project_cols_;
};

/// Secondary-index probe: per partition, the view's bitmap or range index
/// yields the matching row positions (several ANDed probes intersect their
/// sorted position lists — the bitmap-AND path), the payload directory
/// resolves positions to encoded payloads, and a linear suffix scan covers
/// rows appended after the index cut. The survivors feed the same pushed
/// filter + projection machinery as the fused scan. Views lacking the
/// index fall back to a full scan of that partition, so results never
/// depend on index registration racing a query.
class SecondaryIndexProbeOp : public PhysicalOp {
 public:
  /// `probes` ordered driver-first (lowest selectivity); `predicate` is the
  /// original full filter predicate (for display), `filter` the residual
  /// not implied by the probes. `project_cols` empty means "all columns".
  SecondaryIndexProbeOp(ScanSource source, std::vector<SecondaryProbe> probes,
                        ExprPtr predicate, PushedFilter filter,
                        std::vector<int> project_cols = {},
                        SchemaPtr schema = nullptr)
      : PhysicalOp(schema ? std::move(schema) : source.schema()),
        source_(std::move(source)),
        probes_(std::move(probes)),
        predicate_(std::move(predicate)),
        filter_(std::move(filter)),
        project_cols_(std::move(project_cols)) {}
  std::string name() const override;
  Result<PartitionVec> Execute(ExecutorContext& ctx) override;

 private:
  ScanSource source_;
  std::vector<SecondaryProbe> probes_;
  ExprPtr predicate_;
  PushedFilter filter_;
  std::vector<int> project_cols_;
};

/// Fused scan + column projection over the row batches: decodes only the
/// projected columns per row (column pruning for the row store).
class IndexedScanProjectOp : public PhysicalOp {
 public:
  IndexedScanProjectOp(ScanSource source, std::vector<int> cols,
                       SchemaPtr schema)
      : PhysicalOp(std::move(schema)),
        source_(std::move(source)),
        cols_(std::move(cols)) {}
  std::string name() const override {
    return "IndexedScanProject[" + source_.name() + "]";
  }
  Result<PartitionVec> Execute(ExecutorContext& ctx) override;

 private:
  ScanSource source_;
  std::vector<int> cols_;
};

/// Fused scan + compiled filter + morsel-parallel partial aggregation over
/// encoded rows: the compiled predicate rejects rows on the payload bytes,
/// then group keys and aggregate inputs are read straight from the
/// surviving payloads via CompiledAccessor — a row whose groups and inputs
/// are all fixed-slot column refs is aggregated without ever materializing
/// a decoded Row (counted in rows_aggregated_encoded). Non-column-ref
/// aggregate args and interpreter residuals decode lazily, once per row.
/// Thread-local partial hash tables per morsel feed the hash-partitioned
/// parallel merge of MergePartialGroups. The planner fuses
/// `Aggregate([Filter] over IndexedScan/SnapshotScan)` into this operator.
class IndexedScanAggregateOp : public PhysicalOp {
 public:
  /// `predicate` is the original filter predicate (may be null when the
  /// aggregate sits directly on the scan); `schema` is the aggregate's
  /// output schema (group columns then aggregate columns).
  IndexedScanAggregateOp(ScanSource source, ExprPtr predicate,
                         PushedFilter filter, std::vector<ExprPtr> group_exprs,
                         std::vector<AggSpec> aggs, SchemaPtr schema)
      : PhysicalOp(std::move(schema)),
        source_(std::move(source)),
        predicate_(std::move(predicate)),
        filter_(std::move(filter)),
        group_exprs_(std::move(group_exprs)),
        aggs_(std::move(aggs)) {}
  std::string name() const override {
    return "IndexedScanAggregate[" + source_.name() + "]" +
           (predicate_ ? " " + predicate_->ToString() : "") +
           (filter_.compiled ? " (compiled)" : "");
  }
  Result<PartitionVec> Execute(ExecutorContext& ctx) override;

 private:
  ScanSource source_;
  ExprPtr predicate_;
  PushedFilter filter_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggSpec> aggs_;
};

/// Point lookup of one or more keys: each key routes to its home partition
/// and the backward-pointer chain is walked. A consistent snapshot covers
/// all keys of a multi-key (IN-list) lookup. A pushed residual filter is
/// applied during the chain walk while the node is cache-hot (the compiled
/// part before decoding, the interpreted part on the decoded row).
class IndexLookupOp : public PhysicalOp {
 public:
  /// `key_params` parallels `keys`: entry i >= 0 marks keys[i] as a
  /// placeholder filled from that prepared-statement parameter ordinal at
  /// execution time (empty = all literal keys).
  IndexLookupOp(IndexedRelationPtr rel, std::vector<Value> keys,
                PushedFilter filter = {}, std::vector<int> key_params = {})
      : PhysicalOp(rel->schema()),
        rel_(std::move(rel)),
        keys_(std::move(keys)),
        filter_(std::move(filter)),
        key_params_(std::move(key_params)) {}
  std::string name() const override {
    std::string out = "IndexLookup[" + rel_->name() + "] key=";
    if (filter_.has_any()) out = "Filtered" + out;
    auto render = [this](size_t i) {
      return (i < key_params_.size() && key_params_[i] >= 0)
                 ? "$" + std::to_string(key_params_[i] + 1)
                 : keys_[i].ToString();
    };
    if (keys_.size() == 1) return out + render(0);
    return out + "{" + std::to_string(keys_.size()) + " keys}";
  }
  Result<PartitionVec> Execute(ExecutorContext& ctx) override;

 private:
  IndexedRelationPtr rel_;
  std::vector<Value> keys_;
  PushedFilter filter_;
  std::vector<int> key_params_;
};

/// Point lookup against a pinned snapshot: identical chain walk, but over
/// the frozen per-partition views, so a service query reads its epoch's
/// version at index speed while appends keep landing in the live relation.
class SnapshotLookupOp : public PhysicalOp {
 public:
  /// `key_params` as in IndexLookupOp.
  SnapshotLookupOp(PinnedSnapshotPtr snapshot, std::vector<Value> keys,
                   PushedFilter filter = {}, std::vector<int> key_params = {})
      : PhysicalOp(snapshot->schema()),
        snapshot_(std::move(snapshot)),
        keys_(std::move(keys)),
        filter_(std::move(filter)),
        key_params_(std::move(key_params)) {}
  std::string name() const override {
    std::string out = "SnapshotLookup[" + snapshot_->name() + "] key=";
    if (filter_.has_any()) out = "Filtered" + out;
    auto render = [this](size_t i) {
      return (i < key_params_.size() && key_params_[i] >= 0)
                 ? "$" + std::to_string(key_params_[i] + 1)
                 : keys_[i].ToString();
    };
    if (keys_.size() == 1) return out + render(0);
    return out + "{" + std::to_string(keys_.size()) + " keys}";
  }
  Result<PartitionVec> Execute(ExecutorContext& ctx) override;

 private:
  PinnedSnapshotPtr snapshot_;
  std::vector<Value> keys_;
  PushedFilter filter_;
  std::vector<int> key_params_;
};

/// Indexed equi-join. The indexed relation is always the build side ("as it
/// is actually pre-built due to the index"); the probe side is shuffled to
/// the index's hash partitioning, or — when small enough to broadcast
/// efficiently — broadcast to all partitions (paper §2, Indexed Join).
/// An optional build-side filter (from a pushed-down predicate on the
/// indexed relation) runs against the encoded build row during the chain
/// walk, before the row is decoded or concatenated.
class IndexedJoinOp : public PhysicalOp {
 public:
  IndexedJoinOp(IndexedRelationPtr rel, PhysicalOpPtr probe, ExprPtr probe_key,
                bool indexed_on_left, bool broadcast_probe, SchemaPtr schema,
                PushedFilter build_filter = {})
      : PhysicalOp(std::move(schema), {probe}),
        rel_(std::move(rel)),
        probe_key_(std::move(probe_key)),
        indexed_on_left_(indexed_on_left),
        broadcast_probe_(broadcast_probe),
        build_filter_(std::move(build_filter)) {}
  std::string name() const override {
    return std::string("IndexedEquiJoin[") + rel_->name() + "] (" +
           (broadcast_probe_ ? "broadcast" : "shuffled") + " probe)" +
           (build_filter_.has_any() ? " (build filtered)" : "");
  }
  Result<PartitionVec> Execute(ExecutorContext& ctx) override;

 private:
  IndexedRelationPtr rel_;
  ExprPtr probe_key_;
  bool indexed_on_left_;
  bool broadcast_probe_;
  PushedFilter build_filter_;
};

}  // namespace idf
