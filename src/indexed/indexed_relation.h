// IndexedRelation: a hash-partitioned collection of IndexedPartitions — the
// distributed Indexed DataFrame storage. Rows are routed to partitions by
// the hash of the indexed column ("hash partitioning scheme on the indexed
// key", paper §2), so a point lookup touches exactly one partition and an
// indexed join only shuffles the probe side.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/executor_context.h"
#include "engine/partitioner.h"
#include "indexed/indexed_partition.h"
#include "sql/logical_plan.h"

namespace idf {

class IndexedRelation;
using IndexedRelationPtr = std::shared_ptr<IndexedRelation>;

/// A consistent multi-partition read view (one View per partition).
class IndexedRelationSnapshot {
 public:
  const SchemaPtr& schema() const { return schema_; }
  int indexed_column() const { return indexed_col_; }
  const HashPartitioner& partitioner() const { return partitioner_; }
  int num_partitions() const { return static_cast<int>(views_.size()); }
  const IndexedPartition::View& view(int p) const {
    return views_[static_cast<size_t>(p)];
  }

  /// Point lookup: routes to the key's home partition.
  RowVec GetRows(const Value& key) const;

  size_t num_rows() const;

 private:
  friend class IndexedRelation;
  IndexedRelationSnapshot(SchemaPtr schema, int indexed_col,
                          HashPartitioner partitioner,
                          std::vector<IndexedPartition::View> views)
      : schema_(std::move(schema)),
        indexed_col_(indexed_col),
        partitioner_(partitioner),
        views_(std::move(views)) {}

  SchemaPtr schema_;
  int indexed_col_;
  HashPartitioner partitioner_;
  std::vector<IndexedPartition::View> views_;
};

/// \brief A pinned, named version of an indexed relation (implements the
/// SQL layer's SnapshotRelationBase). Reads against it are frozen at the
/// capture point while the live relation keeps growing.
class PinnedSnapshot : public SnapshotRelationBase {
 public:
  PinnedSnapshot(std::string name, uint64_t version,
                 IndexedRelationSnapshot snapshot)
      : name_(std::move(name)),
        version_(version),
        snapshot_(std::move(snapshot)) {}

  const std::string& name() const override { return name_; }
  const SchemaPtr& schema() const override { return snapshot_.schema(); }
  int indexed_column() const override { return snapshot_.indexed_column(); }
  uint64_t version() const override { return version_; }
  size_t num_rows() const override { return snapshot_.num_rows(); }

  const IndexedRelationSnapshot& snapshot() const { return snapshot_; }

  /// Point lookup against the frozen version.
  RowVec GetRows(const Value& key) const { return snapshot_.GetRows(key); }

 private:
  std::string name_;
  uint64_t version_;
  IndexedRelationSnapshot snapshot_;
};
using PinnedSnapshotPtr = std::shared_ptr<PinnedSnapshot>;

class IndexedRelation : public IndexedRelationBase {
 public:
  /// Creates an empty indexed relation.
  static Result<IndexedRelationPtr> Make(std::string name, SchemaPtr schema,
                                         int indexed_col,
                                         const EngineConfig& config);

  /// Builds from rows: shuffles by indexed-key hash and bulk-appends into
  /// each partition in parallel (the paper's Index Creation operator).
  static Result<IndexedRelationPtr> Build(ExecutorContext& ctx, std::string name,
                                          SchemaPtr schema, int indexed_col,
                                          const RowVec& rows);

  // --- IndexedRelationBase ---
  const std::string& name() const override { return name_; }
  const SchemaPtr& schema() const override { return schema_; }
  int indexed_column() const override { return indexed_col_; }
  int num_partitions() const override {
    return static_cast<int>(partitions_.size());
  }
  size_t num_rows() const override;
  uint64_t version() const override {
    return version_.load(std::memory_order_acquire);
  }

  const HashPartitioner& partitioner() const { return partitioner_; }

  /// Appends rows (fine-grained or batch — the paper supports both modes by
  /// batching rows in a DataFrame). Routes by key hash, appends each
  /// partition's slice under that partition's writer lock, in parallel.
  /// Thread-safe; concurrent readers keep their snapshots.
  Status AppendRows(ExecutorContext& ctx, const RowVec& rows);

  /// Appends a single row (lowest-latency fine-grained path).
  Status AppendRow(const Row& row);

  /// Point lookup against a fresh snapshot.
  RowVec GetRows(const Value& key) const;

  /// Captures a consistent O(num_partitions) read view.
  IndexedRelationSnapshot Snapshot() const;

  /// Captures a named, pinned version for time-travel reads.
  PinnedSnapshotPtr Pin() const {
    uint64_t v = version();
    return std::make_shared<PinnedSnapshot>(name_ + "@v" + std::to_string(v), v,
                                            Snapshot());
  }

  /// Memory accounting (paper: "relatively low memory overhead").
  /// `index_bytes` counts live index structure; `arena_bytes` includes
  /// nodes retired by path-copying updates (held until destruction).
  size_t data_bytes() const;
  size_t index_bytes() const;
  size_t arena_bytes() const;

  const IndexedPartition& partition(int p) const {
    return *partitions_[static_cast<size_t>(p)];
  }

 private:
  IndexedRelation(std::string name, SchemaPtr schema, int indexed_col,
                  const EngineConfig& config);

  std::string name_;
  SchemaPtr schema_;
  int indexed_col_;
  HashPartitioner partitioner_;
  std::vector<std::unique_ptr<IndexedPartition>> partitions_;
  std::unique_ptr<std::mutex[]> write_locks_;
  std::atomic<uint64_t> version_{0};
};

}  // namespace idf
