// IndexedRelation: a hash-partitioned collection of IndexedPartitions — the
// distributed Indexed DataFrame storage. Rows are routed to partitions by
// the hash of the indexed column ("hash partitioning scheme on the indexed
// key", paper §2), so a point lookup touches exactly one partition and an
// indexed join only shuffles the probe side.
//
// The write path is batch-oriented: AppendRows validates and encodes the
// whole batch off the partition locks (in parallel on multi-core hosts),
// groups rows by target partition, and applies each group under ONE write
// lock acquisition via IndexedPartition::AppendBatch — one version bump
// and one snapshot-visible commit per batch. A pre-encoded batch can be
// fanned out to several indexes without re-encoding (MultiIndexedTable).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/executor_context.h"
#include "engine/partitioner.h"
#include "indexed/indexed_partition.h"
#include "sql/logical_plan.h"

namespace idf {

class IndexedRelation;
using IndexedRelationPtr = std::shared_ptr<IndexedRelation>;
class Compactor;

/// One batch of rows encoded once (UnsafeRow layout, headers excluded),
/// reusable across every index of a table. `spans[i]` addresses row i's
/// bytes inside one of the chunk `buffers` (chunks are encoded in parallel
/// by EncodeRowBatch).
struct EncodedRowBatch {
  struct Span {
    uint32_t buffer;
    uint32_t offset;
    uint32_t size;
  };
  std::vector<std::vector<uint8_t>> buffers;
  std::vector<Span> spans;

  size_t num_rows() const { return spans.size(); }
  const uint8_t* payload(size_t i) const {
    const Span& s = spans[i];
    return buffers[s.buffer].data() + s.offset;
  }
  uint32_t size(size_t i) const { return spans[i].size; }
  size_t total_bytes() const;
};

/// Validates and encodes `rows` against `schema`. Batches past
/// `EngineConfig` thresholds encode in parallel morsels on the context's
/// pool (counted in metrics as rows_appended_parallel); small batches and
/// single-thread pools encode inline.
Result<EncodedRowBatch> EncodeRowBatch(ExecutorContext& ctx, const Schema& schema,
                                       const RowVec& rows);

/// A consistent multi-partition read view (one View per partition).
class IndexedRelationSnapshot {
 public:
  const SchemaPtr& schema() const { return schema_; }
  int indexed_column() const { return indexed_col_; }
  const HashPartitioner& partitioner() const { return partitioner_; }
  int num_partitions() const { return static_cast<int>(views_.size()); }
  const IndexedPartition::View& view(int p) const {
    return views_[static_cast<size_t>(p)];
  }

  /// Point lookup: routes to the key's home partition.
  RowVec GetRows(const Value& key) const;

  size_t num_rows() const;

  /// Kind of the secondary index every per-partition view carries on
  /// `column` (kNone when any view lacks it — e.g. the snapshot raced an
  /// in-flight registration — so costing never overpromises).
  SecondaryIndexKind SecondaryKindOf(int column) const;

  /// Estimated probe matches summed across the per-partition views.
  uint64_t EstimateProbeMatches(const SecondaryProbe& probe) const;

 private:
  friend class IndexedRelation;
  IndexedRelationSnapshot(SchemaPtr schema, int indexed_col,
                          HashPartitioner partitioner,
                          std::vector<IndexedPartition::View> views)
      : schema_(std::move(schema)),
        indexed_col_(indexed_col),
        partitioner_(partitioner),
        views_(std::move(views)) {}

  SchemaPtr schema_;
  int indexed_col_;
  HashPartitioner partitioner_;
  std::vector<IndexedPartition::View> views_;
};

/// \brief A pinned, named version of an indexed relation (implements the
/// SQL layer's SnapshotRelationBase). Reads against it are frozen at the
/// capture point while the live relation keeps growing.
class PinnedSnapshot : public SnapshotRelationBase {
 public:
  PinnedSnapshot(std::string name, uint64_t version,
                 IndexedRelationSnapshot snapshot)
      : name_(std::move(name)),
        version_(version),
        snapshot_(std::move(snapshot)) {}

  const std::string& name() const override { return name_; }
  const SchemaPtr& schema() const override { return snapshot_.schema(); }
  int indexed_column() const override { return snapshot_.indexed_column(); }
  uint64_t version() const override { return version_; }
  size_t num_rows() const override { return snapshot_.num_rows(); }
  SecondaryIndexKind secondary_index_kind(int column) const override {
    return snapshot_.SecondaryKindOf(column);
  }
  uint64_t EstimateSecondaryMatches(const SecondaryProbe& probe) const override {
    return snapshot_.EstimateProbeMatches(probe);
  }

  const IndexedRelationSnapshot& snapshot() const { return snapshot_; }

  /// Point lookup against the frozen version.
  RowVec GetRows(const Value& key) const { return snapshot_.GetRows(key); }

 private:
  std::string name_;
  uint64_t version_;
  IndexedRelationSnapshot snapshot_;
};
using PinnedSnapshotPtr = std::shared_ptr<PinnedSnapshot>;

class IndexedRelation : public IndexedRelationBase {
 public:
  /// Creates an empty indexed relation.
  static Result<IndexedRelationPtr> Make(std::string name, SchemaPtr schema,
                                         int indexed_col,
                                         const EngineConfig& config);

  /// Builds from rows: shuffles by indexed-key hash and bulk-appends into
  /// each partition in parallel (the paper's Index Creation operator).
  static Result<IndexedRelationPtr> Build(ExecutorContext& ctx, std::string name,
                                          SchemaPtr schema, int indexed_col,
                                          const RowVec& rows);

  // --- IndexedRelationBase ---
  const std::string& name() const override { return name_; }
  const SchemaPtr& schema() const override { return schema_; }
  int indexed_column() const override { return indexed_col_; }
  int num_partitions() const override {
    return static_cast<int>(partitions_.size());
  }
  size_t num_rows() const override;
  uint64_t version() const override {
    return version_.load(std::memory_order_acquire);
  }
  SecondaryIndexKind secondary_index_kind(int column) const override;
  uint64_t EstimateSecondaryMatches(const SecondaryProbe& probe) const override;

  const HashPartitioner& partitioner() const { return partitioner_; }

  /// Registers a secondary index (bitmap or range) on `column`, backfilled
  /// from existing rows; from then on every append batch maintains it
  /// inside the same per-partition lock acquisition. Thread-safe.
  Status AddSecondaryIndex(const std::string& column, SecondaryIndexKind kind);

  /// The secondary-index specs (partition 0 is authoritative; all
  /// partitions carry the same set).
  std::vector<SecondaryIndexSpec> secondary_specs() const {
    return partitions_.front()->secondary_specs();
  }

  /// Appends rows (fine-grained or batch — the paper supports both modes by
  /// batching rows in a DataFrame). Encodes the batch off the partition
  /// locks (parallel past EngineConfig::append_parallel_min_rows), then
  /// applies each partition's group under one write-lock acquisition.
  /// Thread-safe; concurrent readers keep their snapshots.
  Status AppendRows(ExecutorContext& ctx, const RowVec& rows);

  /// Appends a batch that was already encoded (e.g. once per table, fanned
  /// out to every index). `rows` supplies the key values for routing and
  /// must be the batch `enc` was encoded from. Exactly rows.size() rows
  /// land or an error is returned.
  Status AppendEncoded(ExecutorContext& ctx, const RowVec& rows,
                       const EncodedRowBatch& enc);

  /// Appends a single row (lowest-latency fine-grained path).
  Status AppendRow(const Row& row);

  /// Point lookup against a fresh snapshot.
  RowVec GetRows(const Value& key) const;

  /// Captures a consistent O(num_partitions) read view.
  IndexedRelationSnapshot Snapshot() const;

  /// Captures a named, pinned version for time-travel reads.
  PinnedSnapshotPtr Pin() const {
    uint64_t v = version();
    return std::make_shared<PinnedSnapshot>(name_ + "@v" + std::to_string(v), v,
                                            Snapshot());
  }

  /// Aggregated chain statistics across partitions (chain-length
  /// histogram, mean batch span — the compaction trigger signal). Takes
  /// each partition's write lock briefly.
  ChainStatsSnapshot ChainStats() const;

  /// Memory accounting (paper: "relatively low memory overhead").
  /// `index_bytes` counts live index structure; `arena_bytes` includes
  /// nodes retired by path-copying updates (held until destruction).
  size_t data_bytes() const;
  size_t index_bytes() const;
  size_t arena_bytes() const;

  const IndexedPartition& partition(int p) const {
    return *partitions_[static_cast<size_t>(p)];
  }

 private:
  friend class Compactor;  // takes partition write locks for compaction

  IndexedRelation(std::string name, SchemaPtr schema, int indexed_col,
                  const EngineConfig& config);

  std::mutex& partition_write_lock(int p) {
    return write_locks_[static_cast<size_t>(p)];
  }
  IndexedPartition& mutable_partition(int p) {
    return *partitions_[static_cast<size_t>(p)];
  }

  std::string name_;
  SchemaPtr schema_;
  int indexed_col_;
  HashPartitioner partitioner_;
  std::vector<std::unique_ptr<IndexedPartition>> partitions_;
  std::unique_ptr<std::mutex[]> write_locks_;
  std::atomic<uint64_t> version_{0};
};

}  // namespace idf
