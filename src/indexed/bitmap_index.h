// Updatable bitmap index for low-cardinality columns (DESIGN.md §14,
// CUBIT-style): one compressed bitmap of row positions per distinct value,
// maintained copy-on-write per append batch so MVCC readers probe an
// immutable cut while the appender keeps updating.
//
// Positions are per-partition append ordinals. Each value's bitmap is a
// sequence of epoch-tagged segments covering fixed 4096-position windows:
// sealed segments are immutable and shared by every subsequent cut; only
// the open tail segment of a value the batch touched is copied into a new
// cut. A segment starts sparse (sorted 16-bit offsets) and converts to a
// dense 4096-bit set when it fills past the break-even point, so the
// index stays compact on both rare and frequent values.
//
// Concurrency: the builder is appender-owned (callers hold the partition
// write lock); cuts are immutable after construction and published by the
// owner (indexed_partition.h) via an atomic shared_ptr, whose
// release/acquire edge also covers the plain segment memory.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "types/value.h"

namespace idf {

/// Positions covered by one segment: [base, base + kBitmapSegmentSpan).
constexpr uint32_t kBitmapSegmentSpan = 4096;

/// Sparse offsets convert to the dense bitset beyond this population (the
/// dense form is 512 bytes; 256 sparse entries are the same size).
constexpr uint32_t kBitmapDenseThreshold = 256;

/// One immutable-once-sealed window of a value's bitmap.
struct BitmapSegment {
  uint32_t base = 0;   ///< first position covered (multiple of the span)
  uint32_t count = 0;  ///< set bits
  uint64_t epoch = 0;  ///< publish sequence that sealed or copied it
  std::vector<uint16_t> sparse;  ///< sorted offsets (empty when dense)
  std::vector<uint64_t> dense;   ///< 64 words when dense, else empty

  bool is_dense() const { return !dense.empty(); }
  void Set(uint32_t offset);  // appender-only; offsets arrive ascending
  /// Appends the absolute positions of every set bit, ascending.
  void AppendPositions(std::vector<uint32_t>* out) const;
};
using BitmapSegmentPtr = std::shared_ptr<const BitmapSegment>;

/// One value's published bitmap: sealed segments (shared across cuts) plus
/// at most one copied tail, ascending by base.
struct BitmapPosting {
  std::vector<BitmapSegmentPtr> segments;
  uint64_t count = 0;  ///< total set bits (selectivity statistic)
};

/// Immutable snapshot of a whole bitmap index, one per published cut.
class BitmapIndexCut {
 public:
  /// Total positions for `key` (0 when absent) — the costing statistic.
  uint64_t CountFor(const Value& key) const;

  /// Appends the ascending positions of every key in `keys` to `out`
  /// (distinct values have disjoint bitmaps, so the caller gets the union
  /// by sorting once). Returns the number appended.
  size_t Probe(const std::vector<Value>& keys, std::vector<uint32_t>* out) const;

  size_t distinct_values() const { return postings_.size(); }
  uint64_t total_count() const { return total_count_; }

  /// Heap bytes of this cut's own structure (shared segments counted once
  /// per cut; memory-accounting diagnostic, not an allocator truth).
  size_t MemoryBytesEstimate() const;

 private:
  friend class BitmapIndexBuilder;
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  std::unordered_map<Value, BitmapPosting, ValueHash> postings_;
  uint64_t total_count_ = 0;
};
using BitmapIndexCutPtr = std::shared_ptr<const BitmapIndexCut>;

/// Appender-side state of one bitmap index (exactly one writer, guarded by
/// the partition write lock). Add() records positions; BuildCut() freezes
/// the current contents into an immutable cut, copying only the open tails
/// of values touched since the previous cut.
class BitmapIndexBuilder {
 public:
  /// Records `key` at `pos`. Positions must arrive strictly ascending
  /// across calls; null keys are the caller's concern (never indexed).
  void Add(const Value& key, uint32_t pos);

  /// Builds the cut reflecting every Add() so far; `epoch` tags segments
  /// sealed or copied by this publish.
  BitmapIndexCutPtr BuildCut(uint64_t epoch);

 private:
  struct Posting {
    std::vector<BitmapSegmentPtr> sealed;
    BitmapSegment tail;
    bool has_tail = false;
    /// Copy-on-write bookkeeping: `tail_copy` is the immutable copy the
    /// last cut published; it is reused until the next Add() dirties the
    /// tail, so a batch only pays for the values it actually touched.
    bool tail_dirty = false;
    BitmapSegmentPtr tail_copy;
    uint64_t count = 0;
  };
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  std::unordered_map<Value, Posting, ValueHash> postings_;
  uint64_t total_count_ = 0;
};

}  // namespace idf
