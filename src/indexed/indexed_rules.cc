#include "indexed/indexed_rules.h"

#include <algorithm>

#include "indexed/indexed_operators.h"
#include "sql/compiled_accessor.h"
#include "sql/index_costing.h"

namespace idf {

namespace {

/// Flattens an AND tree into conjuncts.
void CollectConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr->kind() == ExprKind::kLogical &&
      static_cast<const LogicalExpr*>(expr.get())->op() == LogicalOp::kAnd) {
    CollectConjuncts(expr->children()[0], out);
    CollectConjuncts(expr->children()[1], out);
    return;
  }
  out->push_back(expr);
}

ExprPtr ConjoinAll(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr acc = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) acc = And(acc, conjuncts[i]);
  return acc;
}

/// True if `key` is a plain reference to the indexed column of `rel`.
bool KeyIsIndexedColumn(const ExprPtr& key, const IndexedRelationBasePtr& rel) {
  if (key->kind() != ExprKind::kColumnRef) return false;
  const auto* ref = static_cast<const ColumnRefExpr*>(key.get());
  return ref->bound() && ref->index() == rel->indexed_column();
}

/// Matches an OR-tree of `col = literal` / `col = $n` comparisons all on
/// column `want_col` (the desugared form of `col IN (...)`), collecting
/// the literals. A parameter equality contributes a placeholder key plus
/// its ordinal in `key_params` (literal keys record -1), to be resolved
/// from the bound parameters at execution time.
bool MatchInList(const ExprPtr& expr, int want_col, std::vector<Value>* keys,
                 std::vector<int>* key_params, bool* any_param) {
  if (expr->kind() == ExprKind::kLogical &&
      static_cast<const LogicalExpr*>(expr.get())->op() == LogicalOp::kOr) {
    return MatchInList(expr->children()[0], want_col, keys, key_params,
                       any_param) &&
           MatchInList(expr->children()[1], want_col, keys, key_params,
                       any_param);
  }
  int col = -1;
  Value literal;
  if (MatchEqualityFilter(expr, &col, &literal)) {
    if (col != want_col) return false;
    keys->push_back(std::move(literal));
    key_params->push_back(-1);
    return true;
  }
  // `col = $n` (either order): the lookup key arrives with the bindings.
  if (expr->kind() != ExprKind::kComparison) return false;
  const auto* cmp = static_cast<const ComparisonExpr*>(expr.get());
  if (cmp->op() != CompareOp::kEq) return false;
  const ExprPtr& l = cmp->left();
  const ExprPtr& r = cmp->right();
  const ExprPtr& col_side = l->kind() == ExprKind::kColumnRef ? l : r;
  const ExprPtr& param_side = l->kind() == ExprKind::kColumnRef ? r : l;
  if (col_side->kind() != ExprKind::kColumnRef ||
      param_side->kind() != ExprKind::kParameterRef) {
    return false;
  }
  const auto* ref = static_cast<const ColumnRefExpr*>(col_side.get());
  if (!ref->bound() || ref->index() != want_col) return false;
  keys->push_back(Value());  // placeholder, filled at bind time
  key_params->push_back(
      static_cast<const ParameterRefExpr*>(param_side.get())->ordinal());
  *any_param = true;
  return true;
}

}  // namespace

Result<LogicalPlanPtr> IndexedFilterRule::Apply(const LogicalPlanPtr& node) const {
  if (node->kind() != PlanKind::kFilter) return LogicalPlanPtr(nullptr);
  const auto* filter = static_cast<const FilterNode*>(node.get());
  const LogicalPlanPtr& child = filter->children()[0];
  // The rewrite applies to live indexed scans and to pinned snapshot scans
  // alike: a pinned snapshot keeps the per-partition tries, so an equality
  // on the indexed column stays a point lookup (this is what keeps service
  // queries at index speed while they read a frozen epoch).
  int indexed_col = -1;
  if (child->kind() == PlanKind::kIndexedScan) {
    indexed_col = static_cast<const IndexedScanNode*>(child.get())
                      ->relation()
                      ->indexed_column();
  } else if (child->kind() == PlanKind::kSnapshotScan) {
    indexed_col = static_cast<const SnapshotScanNode*>(child.get())
                      ->snapshot()
                      ->indexed_column();
  } else {
    return LogicalPlanPtr(nullptr);
  }

  std::vector<ExprPtr> conjuncts;
  CollectConjuncts(filter->predicate(), &conjuncts);
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    // Single equality, or an OR-of-equalities on the indexed column (the
    // desugared `col IN (...)`) — both become (multi-key) index lookups.
    // Prepared-statement parameter equalities become placeholder key slots.
    std::vector<Value> keys;
    std::vector<int> key_params;
    bool any_param = false;
    if (!MatchInList(conjuncts[i], indexed_col, &keys, &key_params,
                     &any_param)) {
      continue;
    }
    if (!any_param) key_params.clear();
    LogicalPlanPtr lookup;
    if (child->kind() == PlanKind::kIndexedScan) {
      lookup = std::make_shared<IndexedLookupNode>(
          static_cast<const IndexedScanNode*>(child.get())->relation(),
          std::move(keys), std::move(key_params));
    } else {
      lookup = std::make_shared<SnapshotLookupNode>(
          static_cast<const SnapshotScanNode*>(child.get())->snapshot(),
          std::move(keys), std::move(key_params));
    }
    std::vector<ExprPtr> rest;
    for (size_t j = 0; j < conjuncts.size(); ++j) {
      if (j != i) rest.push_back(conjuncts[j]);
    }
    if (rest.empty()) return lookup;
    return LogicalPlanPtr(std::make_shared<FilterNode>(
        std::move(lookup), ConjoinAll(rest), node->output_schema()));
  }
  return LogicalPlanPtr(nullptr);
}

Result<LogicalPlanPtr> SecondaryIndexFilterRule::Apply(
    const LogicalPlanPtr& node) const {
  if (max_selectivity_ <= 0.0) return LogicalPlanPtr(nullptr);
  if (node->kind() != PlanKind::kFilter) return LogicalPlanPtr(nullptr);
  const auto* filter = static_cast<const FilterNode*>(node.get());
  const LogicalPlanPtr& child = filter->children()[0];
  IndexedRelationBasePtr rel;
  SnapshotRelationBasePtr snap;
  if (child->kind() == PlanKind::kIndexedScan) {
    rel = static_cast<const IndexedScanNode*>(child.get())->relation();
  } else if (child->kind() == PlanKind::kSnapshotScan) {
    snap = static_cast<const SnapshotScanNode*>(child.get())->snapshot();
  } else {
    return LogicalPlanPtr(nullptr);
  }
  const SchemaPtr& schema = rel ? rel->schema() : snap->schema();
  const size_t total_rows = rel ? rel->num_rows() : snap->num_rows();

  std::vector<ExprPtr> conjuncts;
  CollectConjuncts(filter->predicate(), &conjuncts);
  auto kind_of = [&](int col) {
    return rel ? rel->secondary_index_kind(col) : snap->secondary_index_kind(col);
  };
  std::vector<SecondaryProbeCandidate> candidates =
      CollectSecondaryProbeCandidates(conjuncts, *schema, kind_of);
  if (candidates.empty()) return LogicalPlanPtr(nullptr);

  // Index-kind costing: estimated matches from the index statistics become
  // a selectivity per candidate; the probe only beats the vectorized
  // scan's sequential bandwidth when selective enough.
  for (SecondaryProbeCandidate& c : candidates) {
    const uint64_t est = rel ? rel->EstimateSecondaryMatches(c.probe)
                             : snap->EstimateSecondaryMatches(c.probe);
    c.probe.selectivity =
        total_rows == 0
            ? 0.0
            : std::min(1.0, static_cast<double>(est) /
                                static_cast<double>(total_rows));
  }
  const int driver = ChooseSecondaryProbe(candidates, max_selectivity_);
  if (driver < 0) return LogicalPlanPtr(nullptr);

  // Absorb the driver plus every other candidate under the threshold as
  // ANDed probes (sorted-position intersection — the bitmap-AND path).
  std::vector<SecondaryProbe> probes;
  std::vector<bool> consumed(conjuncts.size(), false);
  auto absorb = [&](SecondaryProbeCandidate& c) {
    for (size_t ord : c.consumed) {
      if (consumed[ord]) return;  // conjunct already served by another probe
    }
    for (size_t ord : c.consumed) consumed[ord] = true;
    probes.push_back(std::move(c.probe));
  };
  absorb(candidates[static_cast<size_t>(driver)]);
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (static_cast<int>(i) == driver) continue;
    if (candidates[i].probe.selectivity <= max_selectivity_) {
      absorb(candidates[i]);
    }
  }
  if (probes.empty()) return LogicalPlanPtr(nullptr);

  LogicalPlanPtr probe_node =
      rel ? std::make_shared<SecondaryProbeNode>(rel, std::move(probes))
          : std::make_shared<SecondaryProbeNode>(snap, std::move(probes));
  std::vector<ExprPtr> rest;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (!consumed[i]) rest.push_back(conjuncts[i]);
  }
  if (rest.empty()) return probe_node;
  return LogicalPlanPtr(std::make_shared<FilterNode>(
      std::move(probe_node), ConjoinAll(rest), node->output_schema()));
}

namespace {

/// Matches a join side that is an IndexedScan, possibly under a Filter
/// (whose predicate is then bound to the relation's own schema, since the
/// FilterNode's child is the scan). A matched filter becomes the join's
/// build-side predicate, evaluated against the encoded build rows during
/// the chain walk instead of as a separate pass over a materialized scan.
bool MatchBuildSide(const LogicalPlanPtr& side, IndexedRelationBasePtr* rel,
                    ExprPtr* build_pred) {
  if (side->kind() == PlanKind::kIndexedScan) {
    *rel = static_cast<const IndexedScanNode*>(side.get())->relation();
    *build_pred = nullptr;
    return true;
  }
  if (side->kind() == PlanKind::kFilter &&
      side->children()[0]->kind() == PlanKind::kIndexedScan) {
    *rel = static_cast<const IndexedScanNode*>(side->children()[0].get())
               ->relation();
    *build_pred = static_cast<const FilterNode*>(side.get())->predicate();
    return true;
  }
  return false;
}

}  // namespace

Result<LogicalPlanPtr> IndexedJoinRule::Apply(const LogicalPlanPtr& node) const {
  if (node->kind() != PlanKind::kJoin) return LogicalPlanPtr(nullptr);
  const auto* join = static_cast<const JoinNode*>(node.get());
  // Indexed execution serves inner equi-joins; outer joins fall back.
  if (join->join_type() != JoinType::kInner) return LogicalPlanPtr(nullptr);

  // "In case of the indexed join, the indexed relation is always the build
  //  side" — prefer the left side when both are indexed. A Filter over the
  //  build-side scan is absorbed as the join's build predicate (children
  //  are optimized before parents, so an indexed-column equality filter has
  //  already become a lookup and no longer matches here).
  IndexedRelationBasePtr rel;
  ExprPtr build_pred;
  if (MatchBuildSide(join->left(), &rel, &build_pred) &&
      KeyIsIndexedColumn(join->left_key(), rel)) {
    return LogicalPlanPtr(std::make_shared<IndexedJoinNode>(
        rel, join->right(), join->right_key(), /*indexed_on_left=*/true,
        node->output_schema(), std::move(build_pred)));
  }
  if (MatchBuildSide(join->right(), &rel, &build_pred) &&
      KeyIsIndexedColumn(join->right_key(), rel)) {
    return LogicalPlanPtr(std::make_shared<IndexedJoinNode>(
        rel, join->left(), join->left_key(), /*indexed_on_left=*/false,
        node->output_schema(), std::move(build_pred)));
  }
  return LogicalPlanPtr(nullptr);
}

namespace {

/// If every projection expression is a bound column reference, fills
/// `cols` with their ordinals.
bool AllColumnRefs(const std::vector<ExprPtr>& exprs, std::vector<int>* cols) {
  cols->clear();
  for (const ExprPtr& e : exprs) {
    if (e->kind() != ExprKind::kColumnRef) return false;
    const auto* ref = static_cast<const ColumnRefExpr*>(e.get());
    if (!ref->bound()) return false;
    cols->push_back(ref->index());
  }
  return true;
}

/// True for the two leaf kinds a scan-filter / scan-project can fuse over.
bool IsFusableScan(const LogicalPlanPtr& node) {
  return node->kind() == PlanKind::kIndexedScan ||
         node->kind() == PlanKind::kSnapshotScan;
}

/// ScanSource of an IndexedScan or SnapshotScan node. Invalid (both null)
/// when the node holds a foreign relation/snapshot implementation.
ScanSource SourceOfScan(const LogicalPlanPtr& scan) {
  if (scan->kind() == PlanKind::kIndexedScan) {
    return ScanSource(std::dynamic_pointer_cast<IndexedRelation>(
        static_cast<const IndexedScanNode*>(scan.get())->relation()));
  }
  return ScanSource(std::dynamic_pointer_cast<PinnedSnapshot>(
      static_cast<const SnapshotScanNode*>(scan.get())->snapshot()));
}

/// ScanSource of a SecondaryProbeNode's relation or snapshot. Invalid
/// (both null) for foreign implementations.
ScanSource SourceOfProbe(const SecondaryProbeNode* probe) {
  if (probe->relation()) {
    return ScanSource(
        std::dynamic_pointer_cast<IndexedRelation>(probe->relation()));
  }
  return ScanSource(std::dynamic_pointer_cast<PinnedSnapshot>(probe->snapshot()));
}

/// True when the aggregate can run on encoded payloads: every group
/// expression is a bound column ref (read via CompiledAccessor), and no
/// SUM/AVG takes a string column ref (those would fold raw slot bytes as
/// numbers — they fall back to the generic operator, which surfaces the
/// interpreter's behavior). Non-column-ref aggregate arguments are fine:
/// the fused operator lazily decodes the row for those.
bool AggregateIsFusable(const AggregateNode* agg, const Schema& schema) {
  for (const ExprPtr& g : agg->group_exprs()) {
    if (!CompiledAccessor::FromExpr(g, schema)) return false;
  }
  for (const AggSpec& spec : agg->aggs()) {
    if (spec.fn == AggFn::kCountStar) continue;
    auto acc = CompiledAccessor::FromExpr(spec.arg, schema);
    if (acc && (spec.fn == AggFn::kSum || spec.fn == AggFn::kAvg) &&
        acc->type() == TypeId::kString) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<PhysicalOpPtr> IndexedExecutionStrategy::Plan(
    const LogicalPlanPtr& node, std::vector<PhysicalOpPtr> children,
    const EngineConfig& config) const {
  // Fuse Aggregate over an IndexedScan / pinned SnapshotScan — or over a
  // Filter over one — into a morsel-parallel scan-aggregate that reads
  // group keys and aggregate inputs straight from the encoded payloads.
  // With a filter in between, the same compiled-predicate gate as the
  // scan-filter fusion applies: at least one conjunct must compile, so
  // survivor rows are selected on the payload bytes and flow into the
  // partial tables without a decoded intermediate.
  if (node->kind() == PlanKind::kAggregate) {
    const auto* agg = static_cast<const AggregateNode*>(node.get());
    const LogicalPlanPtr& child = node->children()[0];
    if (IsFusableScan(child)) {
      ScanSource source = SourceOfScan(child);
      if (source.valid() && AggregateIsFusable(agg, *source.schema())) {
        return PhysicalOpPtr(std::make_shared<IndexedScanAggregateOp>(
            std::move(source), nullptr, PushedFilter{}, agg->group_exprs(),
            agg->aggs(), node->output_schema()));
      }
      return PhysicalOpPtr(nullptr);
    }
    if (child->kind() == PlanKind::kFilter &&
        IsFusableScan(child->children()[0])) {
      const auto* filter = static_cast<const FilterNode*>(child.get());
      ScanSource source = SourceOfScan(child->children()[0]);
      if (source.valid() && AggregateIsFusable(agg, *source.schema())) {
        PredicateSplit split =
            SplitForCompilation(filter->predicate(), *source.schema());
        if (split.compiled.has_value()) {
          return PhysicalOpPtr(std::make_shared<IndexedScanAggregateOp>(
              std::move(source), filter->predicate(),
              PushedFilter::FromSplit(std::move(split)), agg->group_exprs(),
              agg->aggs(), node->output_schema()));
        }
      }
      return PhysicalOpPtr(nullptr);
    }
    return PhysicalOpPtr(nullptr);
  }
  // Fuse a Filter directly over an IndexedScan or a pinned SnapshotScan
  // into a lazy-decoding scan-filter whenever at least one conjunct of the
  // predicate compiles to an encoded-row program (the index itself only
  // serves equality on the indexed column; that case was already rewritten
  // to IndexedLookup/SnapshotLookup by the optimizer rule and never
  // reaches this branch). A filter over a lookup pushes into the chain
  // walk instead. Predicates where nothing compiles (LIKE, arithmetic,
  // col-vs-col) fall back to the generic FilterOp over the scan.
  if (node->kind() == PlanKind::kFilter) {
    const auto* filter = static_cast<const FilterNode*>(node.get());
    const LogicalPlanPtr& child = node->children()[0];
    if (IsFusableScan(child)) {
      ScanSource source = SourceOfScan(child);
      if (source.valid()) {
        PredicateSplit split =
            SplitForCompilation(filter->predicate(), *source.schema());
        if (split.compiled.has_value()) {
          return PhysicalOpPtr(std::make_shared<IndexedScanFilterOp>(
              std::move(source), filter->predicate(),
              PushedFilter::FromSplit(std::move(split))));
        }
      }
      return PhysicalOpPtr(nullptr);  // fall back to Filter over the scan
    }
    if (child->kind() == PlanKind::kSecondaryProbe) {
      // Push the residual filter into the probe operator: the compiled
      // part gates survivors on the encoded payload, the interpreter rest
      // runs on the decoded row. No compilation gate — the probe already
      // restricted the row set, so even a fully interpreted residual over
      // few survivors beats a separate filter pass.
      const auto* probe = static_cast<const SecondaryProbeNode*>(child.get());
      ScanSource source = SourceOfProbe(probe);
      if (source.valid()) {
        PredicateSplit split =
            SplitForCompilation(filter->predicate(), *source.schema());
        return PhysicalOpPtr(std::make_shared<SecondaryIndexProbeOp>(
            std::move(source), probe->probes(), filter->predicate(),
            PushedFilter::FromSplit(std::move(split))));
      }
      return PhysicalOpPtr(nullptr);
    }
    if (child->kind() == PlanKind::kIndexedLookup) {
      const auto* lookup = static_cast<const IndexedLookupNode*>(child.get());
      auto rel = std::dynamic_pointer_cast<IndexedRelation>(lookup->relation());
      if (rel) {
        PredicateSplit split =
            SplitForCompilation(filter->predicate(), *rel->schema());
        return PhysicalOpPtr(std::make_shared<IndexLookupOp>(
            std::move(rel), lookup->keys(),
            PushedFilter::FromSplit(std::move(split)), lookup->key_params()));
      }
      return PhysicalOpPtr(nullptr);
    }
    if (child->kind() == PlanKind::kSnapshotLookup) {
      const auto* lookup = static_cast<const SnapshotLookupNode*>(child.get());
      auto snap = std::dynamic_pointer_cast<PinnedSnapshot>(lookup->snapshot());
      if (snap) {
        PredicateSplit split =
            SplitForCompilation(filter->predicate(), *snap->schema());
        return PhysicalOpPtr(std::make_shared<SnapshotLookupOp>(
            std::move(snap), lookup->keys(),
            PushedFilter::FromSplit(std::move(split)), lookup->key_params()));
      }
      return PhysicalOpPtr(nullptr);
    }
    return PhysicalOpPtr(nullptr);
  }
  // Column pruning: Project(colrefs) over a scan decodes only the
  // projected columns; Project(colrefs) over Filter(cmp) over a scan
  // fuses all three.
  if (node->kind() == PlanKind::kProject) {
    const auto* project = static_cast<const ProjectNode*>(node.get());
    std::vector<int> cols;
    if (AllColumnRefs(project->exprs(), &cols)) {
      const LogicalPlanPtr& child = node->children()[0];
      if (IsFusableScan(child)) {
        ScanSource source = SourceOfScan(child);
        if (source.valid()) {
          return PhysicalOpPtr(std::make_shared<IndexedScanProjectOp>(
              std::move(source), std::move(cols), node->output_schema()));
        }
      }
      if (child->kind() == PlanKind::kFilter &&
          IsFusableScan(child->children()[0])) {
        const auto* filter = static_cast<const FilterNode*>(child.get());
        ScanSource source = SourceOfScan(child->children()[0]);
        if (source.valid()) {
          PredicateSplit split =
              SplitForCompilation(filter->predicate(), *source.schema());
          if (split.compiled.has_value()) {
            return PhysicalOpPtr(std::make_shared<IndexedScanFilterOp>(
                std::move(source), filter->predicate(),
                PushedFilter::FromSplit(std::move(split)), std::move(cols),
                node->output_schema()));
          }
        }
      }
      if (child->kind() == PlanKind::kSecondaryProbe) {
        const auto* probe = static_cast<const SecondaryProbeNode*>(child.get());
        ScanSource source = SourceOfProbe(probe);
        if (source.valid()) {
          return PhysicalOpPtr(std::make_shared<SecondaryIndexProbeOp>(
              std::move(source), probe->probes(), nullptr, PushedFilter{},
              std::move(cols), node->output_schema()));
        }
      }
      if (child->kind() == PlanKind::kFilter &&
          child->children()[0]->kind() == PlanKind::kSecondaryProbe) {
        const auto* filter = static_cast<const FilterNode*>(child.get());
        const auto* probe =
            static_cast<const SecondaryProbeNode*>(child->children()[0].get());
        ScanSource source = SourceOfProbe(probe);
        if (source.valid()) {
          PredicateSplit split =
              SplitForCompilation(filter->predicate(), *source.schema());
          return PhysicalOpPtr(std::make_shared<SecondaryIndexProbeOp>(
              std::move(source), probe->probes(), filter->predicate(),
              PushedFilter::FromSplit(std::move(split)), std::move(cols),
              node->output_schema()));
        }
      }
    }
    return PhysicalOpPtr(nullptr);
  }
  switch (node->kind()) {
    case PlanKind::kIndexedScan: {
      auto rel = std::dynamic_pointer_cast<IndexedRelation>(
          static_cast<const IndexedScanNode*>(node.get())->relation());
      if (!rel) {
        return Status::Internal("IndexedScan over a foreign relation type");
      }
      return PhysicalOpPtr(std::make_shared<IndexedScanOp>(std::move(rel)));
    }
    case PlanKind::kIndexedLookup: {
      const auto* lookup = static_cast<const IndexedLookupNode*>(node.get());
      auto rel = std::dynamic_pointer_cast<IndexedRelation>(lookup->relation());
      if (!rel) {
        return Status::Internal("IndexedLookup over a foreign relation type");
      }
      return PhysicalOpPtr(std::make_shared<IndexLookupOp>(
          std::move(rel), lookup->keys(), PushedFilter{},
          lookup->key_params()));
    }
    case PlanKind::kSnapshotScan: {
      auto snap = std::dynamic_pointer_cast<PinnedSnapshot>(
          static_cast<const SnapshotScanNode*>(node.get())->snapshot());
      if (!snap) {
        return Status::Internal("SnapshotScan over a foreign snapshot type");
      }
      return PhysicalOpPtr(std::make_shared<SnapshotScanOp>(std::move(snap)));
    }
    case PlanKind::kSnapshotLookup: {
      const auto* lookup = static_cast<const SnapshotLookupNode*>(node.get());
      auto snap = std::dynamic_pointer_cast<PinnedSnapshot>(lookup->snapshot());
      if (!snap) {
        return Status::Internal("SnapshotLookup over a foreign snapshot type");
      }
      return PhysicalOpPtr(std::make_shared<SnapshotLookupOp>(
          std::move(snap), lookup->keys(), PushedFilter{},
          lookup->key_params()));
    }
    case PlanKind::kSecondaryProbe: {
      const auto* probe = static_cast<const SecondaryProbeNode*>(node.get());
      ScanSource source = SourceOfProbe(probe);
      if (!source.valid()) {
        return Status::Internal("SecondaryProbe over a foreign relation type");
      }
      return PhysicalOpPtr(std::make_shared<SecondaryIndexProbeOp>(
          std::move(source), probe->probes(), nullptr, PushedFilter{}));
    }
    case PlanKind::kIndexedJoin: {
      const auto* join = static_cast<const IndexedJoinNode*>(node.get());
      auto rel = std::dynamic_pointer_cast<IndexedRelation>(join->relation());
      if (!rel) {
        return Status::Internal("IndexedJoin over a foreign relation type");
      }
      bool broadcast_probe =
          EstimateBytes(join->probe()) <=
          static_cast<double>(config.broadcast_threshold_bytes);
      PushedFilter build_filter;
      if (join->build_predicate()) {
        build_filter = PushedFilter::FromSplit(
            SplitForCompilation(join->build_predicate(), *rel->schema()));
      }
      return PhysicalOpPtr(std::make_shared<IndexedJoinOp>(
          std::move(rel), children[0], join->probe_key(), join->indexed_on_left(),
          broadcast_probe, node->output_schema(), std::move(build_filter)));
    }
    default:
      return PhysicalOpPtr(nullptr);
  }
}

void InstallIndexedExtensions(Session& session) {
  static const char kTag[] = "indexed-dataframe";
  if (session.HasExtension(kTag)) return;
  session.AddOptimizerRule(std::make_shared<IndexedFilterRule>());
  // After the primary-index rule: an equality on the indexed column becomes
  // a point lookup before secondary-index costing ever sees the filter.
  session.AddOptimizerRule(std::make_shared<SecondaryIndexFilterRule>(
      session.config().secondary_probe_max_selectivity));
  session.AddOptimizerRule(std::make_shared<IndexedJoinRule>());
  session.AddPhysicalStrategy(std::make_shared<IndexedExecutionStrategy>());
  session.MarkExtension(kTag);
}

}  // namespace idf
