#include "indexed/multi_indexed_table.h"

namespace idf {

Result<MultiIndexedTable> MultiIndexedTable::Create(
    const DataFrame& df, const std::vector<std::string>& index_columns,
    const std::string& name) {
  if (index_columns.empty()) {
    return Status::InvalidArgument("MultiIndexedTable needs >= 1 index column");
  }
  if (!df.valid()) return Status::InvalidArgument("empty DataFrame handle");
  IDF_ASSIGN_OR_RETURN(SchemaPtr schema, df.schema());
  MultiIndexedTable table(name, schema, df.session());
  for (const std::string& column : index_columns) {
    if (table.indexes_.count(column) > 0) {
      return Status::InvalidArgument("duplicate index column '" + column + "'");
    }
    IDF_ASSIGN_OR_RETURN(
        IndexedDataFrame index,
        IndexedDataFrame::CreateIndex(df, column, name + "_by_" + column));
    table.order_.push_back(column);
    table.indexes_.emplace(
        column, std::make_shared<IndexedDataFrame>(index.Cache()));
  }
  return table;
}

std::vector<std::string> MultiIndexedTable::IndexedColumns() const {
  return order_;
}

Result<IndexedDataFrame> MultiIndexedTable::Index(const std::string& column) const {
  auto it = indexes_.find(column);
  if (it == indexes_.end()) {
    return Status::KeyError("no index on column '" + column + "' of table '" +
                            name_ + "'");
  }
  return *it->second;
}

Result<DataFrame> MultiIndexedTable::GetRows(const std::string& column,
                                             const Value& key) const {
  IDF_ASSIGN_OR_RETURN(IndexedDataFrame index, Index(column));
  return index.GetRows(key);
}

Result<DataFrame> MultiIndexedTable::Join(const DataFrame& probe,
                                          const std::string& table_col,
                                          const std::string& probe_col,
                                          JoinType join_type) const {
  auto it = indexes_.find(table_col);
  if (it != indexes_.end() && join_type == JoinType::kInner) {
    return it->second->Join(probe, table_col, probe_col);
  }
  // No index on the key (or outer join): regular join over a scan view.
  IDF_ASSIGN_OR_RETURN(DataFrame scan, ToDataFrame());
  return scan.Join(probe, table_col, probe_col, join_type);
}

Status MultiIndexedTable::AddBitmapIndex(const std::string& column) const {
  return AddSecondaryIndex(column, SecondaryIndexKind::kBitmap);
}

Status MultiIndexedTable::AddRangeIndex(const std::string& column) const {
  return AddSecondaryIndex(column, SecondaryIndexKind::kRange);
}

Status MultiIndexedTable::AddSecondaryIndex(const std::string& column,
                                            SecondaryIndexKind kind) const {
  for (const std::string& primary : order_) {
    IDF_RETURN_NOT_OK(
        indexes_.at(primary)->relation()->AddSecondaryIndex(column, kind));
  }
  return Status::OK();
}

Status MultiIndexedTable::AppendRows(const DataFrame& df) const {
  IDF_ASSIGN_OR_RETURN(SchemaPtr append_schema, df.schema());
  if (!append_schema->Equals(*schema_)) {
    return Status::InvalidArgument("appendRows schema mismatch: " +
                                   append_schema->ToString() + " vs " +
                                   schema_->ToString());
  }
  IDF_ASSIGN_OR_RETURN(RowVec rows, df.Collect());
  return AppendRowsDirect(rows);
}

Status MultiIndexedTable::AppendRowsDirect(const RowVec& rows) const {
  // Encode the batch ONCE: the UnsafeRow bytes are index-independent, so
  // every index routes and links the same payloads by its own key column
  // instead of re-encoding per index.
  ExecutorContext& ctx = session_->exec();
  IDF_ASSIGN_OR_RETURN(EncodedRowBatch enc, EncodeRowBatch(ctx, *schema_, rows));
  for (const std::string& column : order_) {
    const IndexedRelationPtr& rel = indexes_.at(column)->relation();
    // AppendEncoded lands exactly rows.size() rows or errors, so a success
    // on every index means all of them saw the same row count.
    IDF_RETURN_NOT_OK(rel->AppendEncoded(ctx, rows, enc));
  }
  return Status::OK();
}

Result<DataFrame> MultiIndexedTable::ToDataFrame() const {
  return indexes_.at(order_.front())->ToDataFrame();
}

size_t MultiIndexedTable::NumRows() const {
  return indexes_.at(order_.front())->NumRows();
}

size_t MultiIndexedTable::TotalDataBytes() const {
  size_t n = 0;
  for (const auto& [col, index] : indexes_) n += index->relation()->data_bytes();
  return n;
}

size_t MultiIndexedTable::TotalIndexBytes() const {
  size_t n = 0;
  for (const auto& [col, index] : indexes_) n += index->relation()->index_bytes();
  return n;
}

}  // namespace idf
