// Updatable sorted range index (DESIGN.md §14): per generation, a set of
// immutable sorted runs of (key, position) plus a small append buffer.
// `<`, `<=`, `>`, `>=`, and BETWEEN probes binary-search every run and
// emit the positions inside the bounds; the append buffer is sorted into
// a (small) tail run at publish time, so cuts are fully immutable and a
// pinned reader's probe never observes a half-applied update. Compaction
// rebuilds the index and merges all runs into one.
//
// Concurrency matches bitmap_index.h: one appender under the partition
// write lock; immutable cuts published by the owner via atomic shared_ptr.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "types/value.h"

namespace idf {

/// Append-buffer entries are sorted and sealed into an immutable run once
/// this many accumulate; smaller leftovers become the cut's tail run.
constexpr size_t kRangeRunSealThreshold = 4096;

/// One immutable sorted run: parallel (keys, positions) arrays ordered by
/// key, position-ascending among equal keys (deterministic rebuilds).
struct SortedRun {
  std::vector<Value> keys;
  std::vector<uint32_t> pos;
  uint64_t epoch = 0;  ///< publish sequence that sealed this run

  size_t size() const { return keys.size(); }

  /// Sorts the parallel arrays (used at seal time).
  void Sort();

  /// [first, last) index window of entries inside the bounds (either bound
  /// may be absent = unbounded).
  void Bounds(const std::optional<Value>& lo, bool lo_inclusive,
              const std::optional<Value>& hi, bool hi_inclusive,
              size_t* first, size_t* last) const;
};
using SortedRunPtr = std::shared_ptr<const SortedRun>;

/// Immutable snapshot of one range index.
class RangeIndexCut {
 public:
  /// Appends every position whose key lies inside the bounds to `out`
  /// (unsorted across runs; the caller sorts the union once). Returns the
  /// number appended.
  size_t Probe(const std::optional<Value>& lo, bool lo_inclusive,
               const std::optional<Value>& hi, bool hi_inclusive,
               std::vector<uint32_t>* out) const;

  /// Matching-entry count without materializing positions — the costing
  /// statistic (a pair of binary searches per run).
  uint64_t CountInRange(const std::optional<Value>& lo, bool lo_inclusive,
                        const std::optional<Value>& hi,
                        bool hi_inclusive) const;

  uint64_t keys_indexed() const { return keys_indexed_; }
  const std::vector<SortedRunPtr>& runs() const { return runs_; }

  size_t MemoryBytesEstimate() const;

 private:
  friend class RangeIndexBuilder;
  std::vector<SortedRunPtr> runs_;
  uint64_t keys_indexed_ = 0;
};
using RangeIndexCutPtr = std::shared_ptr<const RangeIndexCut>;

/// Appender-side state of one range index (one writer, partition write
/// lock held). Add() fills the append buffer; BuildCut() seals or copies
/// it so the published cut is immutable.
class RangeIndexBuilder {
 public:
  /// Records `key` at `pos`; null keys are the caller's concern.
  void Add(const Value& key, uint32_t pos);

  /// Builds the cut reflecting every Add() so far. The append buffer is
  /// sealed into a run when it crossed the threshold; otherwise a sorted
  /// copy rides along as the cut's tail run (shared with later cuts until
  /// the buffer changes again).
  RangeIndexCutPtr BuildCut(uint64_t epoch);

  /// Merges every run and the append buffer into one sorted run
  /// (compaction's rebuild step — probes then binary-search once).
  void MergeAll(uint64_t epoch);

 private:
  std::vector<SortedRunPtr> sealed_;
  SortedRun buffer_;          // unsorted append buffer
  bool buffer_dirty_ = false;
  SortedRunPtr buffer_copy_;  // last published sorted copy of the buffer
  uint64_t count_ = 0;
};

}  // namespace idf
