#include "indexed/range_index.h"

#include <algorithm>
#include <numeric>

namespace idf {

namespace {

/// Sort order inside a run: by key, position-ascending among equal keys.
bool EntryLess(const Value& ka, uint32_t pa, const Value& kb, uint32_t pb) {
  if (ka < kb) return true;
  if (kb < ka) return false;
  return pa < pb;
}

}  // namespace

void SortedRun::Sort() {
  std::vector<uint32_t> order(keys.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
    return EntryLess(keys[a], pos[a], keys[b], pos[b]);
  });
  std::vector<Value> sorted_keys;
  std::vector<uint32_t> sorted_pos;
  sorted_keys.reserve(keys.size());
  sorted_pos.reserve(pos.size());
  for (uint32_t i : order) {
    sorted_keys.push_back(std::move(keys[i]));
    sorted_pos.push_back(pos[i]);
  }
  keys = std::move(sorted_keys);
  pos = std::move(sorted_pos);
}

void SortedRun::Bounds(const std::optional<Value>& lo, bool lo_inclusive,
                       const std::optional<Value>& hi, bool hi_inclusive,
                       size_t* first, size_t* last) const {
  auto begin = keys.begin();
  auto end = keys.end();
  auto lo_it = begin;
  if (lo.has_value()) {
    lo_it = lo_inclusive ? std::lower_bound(begin, end, *lo)
                         : std::upper_bound(begin, end, *lo);
  }
  auto hi_it = end;
  if (hi.has_value()) {
    hi_it = hi_inclusive ? std::upper_bound(begin, end, *hi)
                         : std::lower_bound(begin, end, *hi);
  }
  *first = static_cast<size_t>(lo_it - begin);
  *last = static_cast<size_t>(std::max(lo_it, hi_it) - begin);
}

size_t RangeIndexCut::Probe(const std::optional<Value>& lo, bool lo_inclusive,
                            const std::optional<Value>& hi, bool hi_inclusive,
                            std::vector<uint32_t>* out) const {
  size_t appended = 0;
  for (const SortedRunPtr& run : runs_) {
    size_t first = 0;
    size_t last = 0;
    run->Bounds(lo, lo_inclusive, hi, hi_inclusive, &first, &last);
    for (size_t i = first; i < last; ++i) out->push_back(run->pos[i]);
    appended += last - first;
  }
  return appended;
}

uint64_t RangeIndexCut::CountInRange(const std::optional<Value>& lo,
                                     bool lo_inclusive,
                                     const std::optional<Value>& hi,
                                     bool hi_inclusive) const {
  uint64_t total = 0;
  for (const SortedRunPtr& run : runs_) {
    size_t first = 0;
    size_t last = 0;
    run->Bounds(lo, lo_inclusive, hi, hi_inclusive, &first, &last);
    total += last - first;
  }
  return total;
}

size_t RangeIndexCut::MemoryBytesEstimate() const {
  size_t bytes = sizeof(*this);
  for (const SortedRunPtr& run : runs_) {
    bytes += sizeof(SortedRun) + run->keys.size() * sizeof(Value) +
             run->pos.size() * sizeof(uint32_t);
  }
  return bytes;
}

void RangeIndexBuilder::Add(const Value& key, uint32_t pos) {
  buffer_.keys.push_back(key);
  buffer_.pos.push_back(pos);
  buffer_dirty_ = true;
  ++count_;
  if (buffer_.size() >= kRangeRunSealThreshold) {
    // Seal eagerly: the run becomes immutable and every later cut shares
    // it, so steady-state publish cost is the (small) buffer sort only.
    buffer_.Sort();
    sealed_.push_back(std::make_shared<SortedRun>(std::move(buffer_)));
    buffer_ = SortedRun{};
    buffer_dirty_ = false;
    buffer_copy_.reset();
  }
}

RangeIndexCutPtr RangeIndexBuilder::BuildCut(uint64_t epoch) {
  auto cut = std::make_shared<RangeIndexCut>();
  cut->runs_.reserve(sealed_.size() + 1);
  cut->runs_.assign(sealed_.begin(), sealed_.end());
  if (buffer_.size() > 0) {
    if (buffer_dirty_ || buffer_copy_ == nullptr) {
      auto copy = std::make_shared<SortedRun>(buffer_);
      copy->Sort();
      copy->epoch = epoch;
      buffer_copy_ = std::move(copy);
      buffer_dirty_ = false;
    }
    cut->runs_.push_back(buffer_copy_);
  }
  cut->keys_indexed_ = count_;
  return cut;
}

void RangeIndexBuilder::MergeAll(uint64_t epoch) {
  SortedRun merged;
  merged.epoch = epoch;
  merged.keys.reserve(count_);
  merged.pos.reserve(count_);
  for (const SortedRunPtr& run : sealed_) {
    merged.keys.insert(merged.keys.end(), run->keys.begin(), run->keys.end());
    merged.pos.insert(merged.pos.end(), run->pos.begin(), run->pos.end());
  }
  merged.keys.insert(merged.keys.end(),
                     std::make_move_iterator(buffer_.keys.begin()),
                     std::make_move_iterator(buffer_.keys.end()));
  merged.pos.insert(merged.pos.end(), buffer_.pos.begin(), buffer_.pos.end());
  merged.Sort();
  sealed_.clear();
  if (merged.size() > 0) {
    sealed_.push_back(std::make_shared<SortedRun>(std::move(merged)));
  }
  buffer_ = SortedRun{};
  buffer_dirty_ = false;
  buffer_copy_.reset();
}

}  // namespace idf
