// IndexedDataFrame: the public API of the paper (Listing 1).
//
//   // creating an index
//   auto indexed = IndexedDataFrame::CreateIndex(regular_df, col_no);
//   // caching the indexed data frame
//   indexed = indexed->Cache();
//   // looking up keys returns a data frame containing all rows
//   DataFrame result = indexed->GetRows(Value(int64_t{1234}));
//   // appending all the rows of a regular dataframe
//   auto new_indexed = indexed->AppendRows(a_regular_df);
//   // index-powered, efficient join
//   DataFrame joined = indexed->Join(regular_df, "c1", "c2");
//
// An IndexedDataFrame is a DataFrame whose plan reads from an
// IndexedRelation; creating one also installs the indexed Catalyst rules
// into the session, so subsequent regular Filter/Join DataFrame operations
// over it are rewritten to indexed execution transparently.
#pragma once

#include <memory>
#include <string>

#include "indexed/indexed_relation.h"
#include "sql/dataframe.h"
#include "sql/session.h"

namespace idf {

class IndexedDataFrame {
 public:
  /// Builds an index over column ordinal `col_no` of `df` (executes `df`,
  /// hash-partitions the rows by the key, builds the per-partition cTries
  /// and row batches). Installs the indexed optimizer rules and physical
  /// strategy into the session.
  static Result<IndexedDataFrame> CreateIndex(const DataFrame& df, int col_no,
                                              const std::string& name = "indexed");

  /// Same, by column name.
  static Result<IndexedDataFrame> CreateIndex(const DataFrame& df,
                                              const std::string& column,
                                              const std::string& name = "indexed");

  /// The Indexed DataFrame lives in executor memory from creation; Cache()
  /// exists for API parity with Listing 1 and marks the handle cached.
  IndexedDataFrame Cache() const;
  bool cached() const { return cached_; }

  /// Point lookup: returns a (small) DataFrame of all rows with this key.
  DataFrame GetRows(const Value& key) const;

  /// Multi-key lookup (one consistent snapshot across all keys): the plan
  /// form of `col IN (...)` over the index.
  DataFrame GetRowsMulti(std::vector<Value> keys) const;

  /// Appends all rows of `df` (fine-grained or batch mode depending on how
  /// many rows the caller put in `df`); returns a new handle sharing the
  /// underlying multi-versioned storage.
  Result<IndexedDataFrame> AppendRows(const DataFrame& df) const;

  /// Appends raw rows directly (streaming hot path; skips plan execution).
  Status AppendRowsDirect(const RowVec& rows) const;

  /// Index-powered join: this (indexed) relation is the build side, `probe`
  /// is shuffled or broadcast. The result is a regular DataFrame.
  Result<DataFrame> Join(const DataFrame& probe, ExprPtr indexed_key,
                         ExprPtr probe_key) const;
  Result<DataFrame> Join(const DataFrame& probe, const std::string& indexed_col,
                         const std::string& probe_col) const;

  /// View of this indexed relation as a regular DataFrame (scans decode
  /// the binary row batches). Filters/joins on it still get indexed
  /// execution via the optimizer rules.
  DataFrame ToDataFrame() const;

  /// \brief A pinned version: reads are frozen at Pin() time while the
  /// live Indexed DataFrame keeps absorbing appends — the user-facing form
  /// of the cTrie's multi-version concurrency.
  class PinnedView {
   public:
    /// Frozen scan as a DataFrame (composable with Filter/Join/...).
    DataFrame ToDataFrame() const;
    /// Frozen point lookup.
    RowVec GetRows(const Value& key) const { return snapshot_->GetRows(key); }
    uint64_t version() const { return snapshot_->version(); }
    size_t NumRows() const { return snapshot_->num_rows(); }

   private:
    friend class IndexedDataFrame;
    PinnedView(SessionPtr session, PinnedSnapshotPtr snapshot)
        : session_(std::move(session)), snapshot_(std::move(snapshot)) {}
    SessionPtr session_;
    PinnedSnapshotPtr snapshot_;
  };

  /// Captures a pinned version (O(partitions); no data copied).
  PinnedView Pin() const;

  const IndexedRelationPtr& relation() const { return rel_; }
  const SessionPtr& session() const { return session_; }
  Result<SchemaPtr> schema() const { return rel_->schema(); }

  /// Number of rows currently visible.
  size_t NumRows() const { return rel_->num_rows(); }

  /// Memory overhead of the index relative to the stored data.
  double IndexOverheadRatio() const;

 private:
  IndexedDataFrame(SessionPtr session, IndexedRelationPtr rel, bool cached)
      : session_(std::move(session)), rel_(std::move(rel)), cached_(cached) {}

  SessionPtr session_;
  IndexedRelationPtr rel_;
  bool cached_ = false;
};

}  // namespace idf
