// IndexedPartition: one partition of an Indexed DataFrame, composed of the
// paper's three data structures (Section 2, "The Indexed Row-Batch RDD"):
//
//   (1) a cTrie, which represents the index,
//   (2) a set of row batches, which stores the tabular data, and
//   (3) backward pointers, which crawl the partition for rows indexed on
//       the same key.
//
// The cTrie maps the 64-bit canonical hash of the indexed column value to
// the packed pointer of the *latest* appended row for that key; each row's
// 8-byte header holds the backward pointer to the previous row with the
// same key, forming one linked list per unique key.
//
// The (cTrie, row batches) pair lives inside a PartitionGeneration so that
// background compaction can rewrite chains key-clustered into a fresh
// generation and swap it in atomically. Views hold a shared_ptr to their
// generation: a retired generation's batches are reclaimed only after the
// last view referencing it dies (epoch-deferred reclamation, owned by
// indexed/compactor.h), so a pinned snapshot never reads freed memory.
//
// Concurrency: appends and compaction are serialized per partition (the
// owner, IndexedRelation, holds the partition write lock); reads are
// lock-free and proceed concurrently with appends. A View captures a CTrie
// snapshot plus a store watermark, giving queries a consistent version
// while the update stream keeps appending — the paper's "updates with
// multi-version concurrency".
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/config.h"
#include "common/macros.h"
#include "ctrie/ctrie.h"
#include "indexed/bitmap_index.h"
#include "indexed/range_index.h"
#include "storage/row_batch_store.h"
#include "types/row.h"
#include "types/schema.h"

namespace idf {

// Defined in sql/logical_plan.h (the SQL layer owns the planner-facing
// types; indexed/ depends on sql/, never the reverse).
enum class SecondaryIndexKind : uint8_t;
struct SecondaryProbe;

/// Declaration of one secondary index on a partition: which column it
/// covers and which structure backs it (bitmap or sorted range).
struct SecondaryIndexSpec {
  int column = -1;
  SecondaryIndexKind kind{};
};

/// Append-ordinal -> encoded-payload directory: translates the row
/// positions a secondary index stores back into payload pointers without
/// re-walking the row batches. Chunked, with the chunk-slot array
/// preallocated (RowBatchStore's trick) so the appender never reallocates
/// memory a concurrent reader may be traversing: readers only dereference
/// positions below a published cut's `covered`, and the cut's
/// release/acquire publish edge orders those plain writes.
class PayloadDirectory {
 public:
  static constexpr uint32_t kChunkSize = 4096;   ///< entries per chunk
  static constexpr uint32_t kMaxChunks = 65536;  ///< 268M rows per partition

  PayloadDirectory() : chunks_(new std::unique_ptr<Chunk>[kMaxChunks]) {}
  IDF_DISALLOW_COPY_AND_ASSIGN(PayloadDirectory);

  /// Appender-only (partition write lock).
  void Append(const uint8_t* payload) {
    const uint64_t c = size_ / kChunkSize;
    if (chunks_[c] == nullptr) chunks_[c] = std::make_unique<Chunk>();
    chunks_[c]->entries[size_ % kChunkSize] = payload;
    ++size_;
  }

  /// Valid for positions below the covered count of an acquired cut.
  const uint8_t* At(uint64_t pos) const {
    return chunks_[pos / kChunkSize]->entries[pos % kChunkSize];
  }

  /// Appender-side size (readers use the cut's `covered` instead).
  uint64_t size() const { return size_; }

 private:
  struct Chunk {
    const uint8_t* entries[kChunkSize];
  };
  std::unique_ptr<std::unique_ptr<Chunk>[]> chunks_;
  uint64_t size_ = 0;
};
using PayloadDirectoryPtr = std::shared_ptr<const PayloadDirectory>;

/// Immutable snapshot of every secondary index of one partition, published
/// after each append batch. A probe against a view = the cut's positions
/// (all < `covered`) plus a linear scan of the store suffix between
/// `boundary` and the view's watermark — so probe results are always
/// exactly the rows a full scan of the same view would match, even when
/// the view's watermark ran ahead of the last published cut.
struct SecondaryIndexCut {
  struct Entry {
    SecondaryIndexSpec spec;
    BitmapIndexCutPtr bitmap;  ///< set iff spec.kind == kBitmap
    RangeIndexCutPtr range;    ///< set iff spec.kind == kRange
  };
  std::vector<Entry> entries;
  uint64_t covered = 0;    ///< append ordinals [0, covered) are indexed
  StoreWatermark boundary; ///< store watermark of the covered prefix
  uint64_t epoch = 0;      ///< publish sequence within the generation
  PayloadDirectoryPtr directory;

  const Entry* Find(int column) const {
    for (const Entry& e : entries) {
      if (e.spec.column == column) return &e;
    }
    return nullptr;
  }
};
using SecondaryIndexCutPtr = std::shared_ptr<const SecondaryIndexCut>;

/// Per-publish maintenance cost, split by index kind (exported as the
/// index_maintenance_us metrics).
struct SecondaryMaintenanceStats {
  uint64_t bitmap_us = 0;
  uint64_t range_us = 0;
  size_t rows = 0;

  void Merge(const SecondaryMaintenanceStats& o) {
    bitmap_us += o.bitmap_us;
    range_us += o.range_us;
    rows += o.rows;
  }
};

/// The secondary indexes of one partition generation: appender-owned
/// builders plus the last published immutable cut. Builders are mutated
/// only under the partition write lock; `cut()` is lock-free.
class SecondaryIndexSet {
 public:
  SecondaryIndexSet(SchemaPtr schema, std::vector<SecondaryIndexSpec> specs);

  /// Appender-only: registers one committed row payload (every store row,
  /// in append order, whether or not any indexed column is null).
  void StageRow(const uint8_t* payload) { directory_->Append(payload); }

  /// Appender-only: feeds every staged-but-unindexed row to the builders
  /// and publishes a fresh cut whose covered prefix corresponds to
  /// `boundary` (the store watermark right after the batch committed).
  SecondaryMaintenanceStats PublishCut(StoreWatermark boundary);

  /// Appender-only: collapses each range index's sorted runs into one
  /// (compaction's rebuild finisher; call before the final PublishCut).
  void MergeRuns();

  /// The last published cut (acquire; null before the first publish).
  SecondaryIndexCutPtr cut() const {
    return std::atomic_load_explicit(&cut_, std::memory_order_acquire);
  }

  const std::vector<SecondaryIndexSpec>& specs() const { return specs_; }

 private:
  SchemaPtr schema_;
  std::vector<SecondaryIndexSpec> specs_;
  // Parallel to specs_: exactly one of the two builders is live per spec.
  std::vector<BitmapIndexBuilder> bitmaps_;
  std::vector<RangeIndexBuilder> ranges_;
  std::shared_ptr<PayloadDirectory> directory_;
  uint64_t indexed_ = 0;  ///< rows already fed to the builders
  uint64_t epoch_ = 0;
  std::shared_ptr<const SecondaryIndexCut> cut_;  // atomic_load/store
};
using SecondaryIndexSetPtr = std::shared_ptr<SecondaryIndexSet>;

/// Counters of one View::ProbeSecondary call (feed QueryMetrics).
struct SecondaryProbeStats {
  size_t matches = 0;         ///< payloads emitted
  size_t from_index = 0;      ///< emitted straight from index positions
  size_t suffix_scanned = 0;  ///< unindexed suffix rows examined
  size_t rows_avoided = 0;    ///< indexed rows never examined (covered - hits)
  bool used_index = false;    ///< false = fell back to a full scan
};

/// One immutable-once-retired version of a partition's storage: the row
/// batches plus the cTrie indexing them. The live generation is appended
/// to under the partition write lock; compaction builds a replacement and
/// swaps it in, after which the old generation is frozen and lives only as
/// long as views referencing it.
struct PartitionGeneration {
  PartitionGeneration(size_t batch_bytes, size_t max_row_bytes)
      : store(batch_bytes, max_row_bytes) {}
  IDF_DISALLOW_COPY_AND_ASSIGN(PartitionGeneration);

  RowBatchStore store;
  // ReadOnlySnapshot() CASes the trie root (RDCSS) without changing the
  // logical contents; snapshots from const contexts are fine.
  mutable CTrie index;

  /// Secondary indexes of this generation (null when the table has none).
  /// Swapped only by AddSecondaryIndexLocked (under the partition write
  /// lock); read lock-free by Snapshot() via atomic_load.
  SecondaryIndexSetPtr secondary;

  /// Per-key chain bookkeeping maintained at append time and rebuilt by
  /// compaction. Guarded by the partition write lock (appender/compactor
  /// only); readers never touch it.
  struct KeyStat {
    uint32_t chain_len = 0;
    uint32_t first_batch = 0;  // batch of the oldest row on the chain
    uint32_t last_batch = 0;   // batch of the newest row on the chain
  };
  std::unordered_map<uint64_t, KeyStat> key_stats;
};
using PartitionGenerationPtr = std::shared_ptr<PartitionGeneration>;

/// Aggregated chain statistics of one partition (or, summed, a relation):
/// the compaction trigger signal and the exported chain-length histogram.
struct ChainStatsSnapshot {
  uint64_t num_keys = 0;
  uint64_t total_links = 0;     ///< sum of chain lengths (== indexed rows)
  uint64_t max_chain_len = 0;
  uint64_t sum_batch_span = 0;  ///< sum over keys of (last - first + 1)
  uint64_t max_batch_span = 0;
  /// histogram[i] counts keys with chain length in [2^i, 2^(i+1)).
  static constexpr int kHistBuckets = 16;
  uint64_t chain_len_histogram[kHistBuckets] = {0};

  double MeanChainLen() const {
    return num_keys == 0 ? 0.0
                         : static_cast<double>(total_links) /
                               static_cast<double>(num_keys);
  }
  double MeanBatchSpan() const {
    return num_keys == 0 ? 0.0
                         : static_cast<double>(sum_batch_span) /
                               static_cast<double>(num_keys);
  }
  void Merge(const ChainStatsSnapshot& o);
  std::string ToString() const;
};

class IndexedPartition {
 public:
  IndexedPartition(SchemaPtr schema, int indexed_col, const EngineConfig& config);

  const SchemaPtr& schema() const { return schema_; }
  int indexed_column() const { return indexed_col_; }

  /// One pre-encoded row of an append batch. `payload`/`size` are the
  /// encoded bytes (back-pointer header excluded); `hash` is the canonical
  /// hash of the indexed key, meaningful iff `indexed` (null keys are
  /// stored but unindexed).
  struct EncodedRowRef {
    const uint8_t* payload;
    uint32_t size;
    uint64_t hash;
    bool indexed;
  };

  /// Per-call counters of one AppendBatch (feed QueryMetrics at the
  /// relation layer).
  struct AppendBatchResult {
    size_t rows_appended = 0;
    size_t keys_published = 0;   ///< cTrie head updates (one per key)
    size_t links_coalesced = 0;  ///< indexed rows - keys_published
    /// Secondary-index maintenance cost of this batch (zero without any).
    SecondaryMaintenanceStats maintenance;
  };

  /// Appends one row: inserts into the row batches, links the backward
  /// pointer to the previous row with the same key, and publishes the new
  /// head pointer in the cTrie. Appender-only (callers serialize).
  /// Rows whose key is null are stored but not indexed.
  Status Append(const Row& row);

  /// Batched append: applies a whole partition group under one caller-held
  /// write lock. Same-key runs are coalesced — chain links between rows of
  /// the batch are built directly (the trie is consulted once per distinct
  /// key for the previous head) and each key publishes exactly one cTrie
  /// head update, after all row bytes are committed. Appender-only.
  ///
  /// On error the rows already committed are published (their keys' heads
  /// are updated) so the store and the index stay consistent, matching the
  /// per-row path's partial-failure behavior.
  Status AppendBatch(const std::vector<EncodedRowRef>& rows,
                     AppendBatchResult* result = nullptr);

  /// Registers a secondary index on `spec.column`, backfilling it from the
  /// rows already in the live generation and publishing a first cut.
  /// Caller must hold the partition write lock. Readers holding older
  /// views simply see no cut for the column and fall back to scanning.
  Status AddSecondaryIndexLocked(const SecondaryIndexSpec& spec);

  /// The secondary-index specs of the live generation (lock-free; the spec
  /// list of a set is immutable once installed).
  std::vector<SecondaryIndexSpec> secondary_specs() const;

  /// \brief A consistent read view: generation + cTrie snapshot + store
  /// watermark. Holds its generation alive, so a view outlives compaction
  /// of the partition it came from.
  class View {
   public:
    /// All rows whose indexed column equals `key`, newest first (reverse
    /// chain order). `probes`/`hits` metrics counters may be null.
    RowVec GetRows(const Value& key) const;

    /// Encoded payload pointers of all rows whose indexed column equals
    /// `key`, newest first, appended to `out`. Callers decode lazily —
    /// e.g. a join materializes the build row only when concatenating a
    /// match. Returns the number of appended pointers.
    size_t GetRawRows(const Value& key,
                      std::vector<const uint8_t*>* out) const;

    /// Single-pass variant of GetRawRows: invokes `fn(payload)` for every
    /// row whose indexed column equals `key`, newest first, while the
    /// chain node is still cache-hot (revisiting scattered row-batch
    /// memory in a second pass costs a miss per row). Returns the match
    /// count.
    template <typename Fn>
    size_t ForEachRawRow(const Value& key, Fn&& fn) const {
      if (key.is_null()) return 0;
      std::optional<uint64_t> head = trie_.Lookup(key.Hash());
      if (!head.has_value()) return 0;
      const Schema& schema = *schema_;
      const int col = indexed_col_;
      const RowBatchStore& store = gen_->store;
      // Fast path: for integer-backed indexed columns the key's 8-byte slot
      // image is compared against the raw encoded slot per chain node — no
      // Value materialization. Float and string columns stay on the decode
      // path (0.0 and -0.0 compare equal but differ in bits; strings are
      // out-of-line).
      uint64_t want_slot = 0;
      const bool raw_eq =
          EncodeFixedKeySlot(schema.field(col).type, key, &want_slot);
      const size_t bitmap_bytes = EncodedBitmapBytes(schema.num_fields());
      size_t matched = 0;
      PackedPointer ptr(*head);
      while (!ptr.is_null()) {
        const uint8_t* payload = store.PayloadAt(ptr);
        // Chain nodes are scattered across row batches, so the backward
        // walk is a dependent pointer chase; issuing the next node's
        // payload load before this node's match check overlaps the miss
        // with useful work (effect measured in bench_graph_traversal).
        const PackedPointer next = store.BackPointerAt(ptr);
        if (!next.is_null()) IDF_PREFETCH(store.PayloadAt(next));
        // Verify the actual value: chains link rows with equal key *hash*.
        const bool match =
            raw_eq ? !RawColumnIsNull(payload, col) &&
                         RawColumnSlot(payload, bitmap_bytes, col) == want_slot
                   : DecodeColumn(payload, schema, col) == key;
        if (match) {
          fn(payload);
          ++matched;
        }
        ptr = next;
      }
      return matched;
    }

    /// Visits every row in this view, in append order. Includes rows with
    /// null keys (which are stored but unindexed).
    void Scan(const std::function<void(const Row&)>& fn) const;

    /// Visits the raw encoded payload of every row in this view, in append
    /// order; callers decode lazily (e.g. one filter column per row).
    void ScanRaw(const std::function<void(const uint8_t*)>& fn) const;

    /// Visits the packed pointers of the chain for `key`, newest first
    /// (diagnostics and tests).
    void ScanChain(const Value& key,
                   const std::function<void(PackedPointer)>& fn) const;

    /// Probes one or more ANDed secondary-index predicates: emits — in
    /// append order, exactly as a full ScanRaw + predicate would — the
    /// payloads of every row in this view matching ALL of `probes`. Rows
    /// covered by the captured cut come from the indexes' position lists
    /// (several probes intersect sorted positions — the bitmap-AND path);
    /// rows appended between the cut's boundary and this view's watermark
    /// are found by a linear suffix scan. Falls back to a full scan
    /// (used_index=false) when the view lacks an index for any probe's
    /// column. Returns the match count.
    size_t ProbeSecondary(const std::vector<SecondaryProbe>& probes,
                          std::vector<const uint8_t*>* out,
                          SecondaryProbeStats* stats = nullptr) const;

    /// Estimated matches of `probe` against this view: index statistics
    /// for the covered prefix, plus every suffix row (conservative).
    /// `has_index=false` (and a full num_rows() estimate) when the view
    /// has no index on the probe's column.
    uint64_t EstimateProbeMatches(const SecondaryProbe& probe,
                                  bool* has_index) const;

    /// Kind of the secondary index this view carries on `column`.
    SecondaryIndexKind SecondaryKindOf(int column) const;

    size_t num_rows() const { return watermark_.num_rows; }

    /// The store watermark this view reads up to (diagnostics and tests).
    const StoreWatermark& watermark() const { return watermark_; }

    /// The generation this view reads (compaction/reclamation tests).
    const PartitionGenerationPtr& generation() const { return gen_; }

    /// The secondary-index cut this view probes (null when none existed at
    /// capture; diagnostics and tests).
    const SecondaryIndexCutPtr& secondary_cut() const { return secondary_; }

   private:
    friend class IndexedPartition;
    View(SchemaPtr schema, int indexed_col, PartitionGenerationPtr gen,
         CTrie trie, StoreWatermark wm, SecondaryIndexCutPtr secondary)
        : schema_(std::move(schema)),
          indexed_col_(indexed_col),
          gen_(std::move(gen)),
          trie_(std::move(trie)),
          watermark_(wm),
          secondary_(std::move(secondary)) {}

    bool InView(PackedPointer ptr) const;

    /// ScanRaw starting at the row `from` points past (the suffix between
    /// a cut's boundary and this view's watermark).
    void ScanRawFrom(const StoreWatermark& from,
                     const std::function<void(const uint8_t*)>& fn) const;

    SchemaPtr schema_;
    int indexed_col_;
    PartitionGenerationPtr gen_;
    CTrie trie_;
    StoreWatermark watermark_;
    SecondaryIndexCutPtr secondary_;
  };

  /// Captures a consistent read view (O(1): generation pointer copy, cTrie
  /// read-only snapshot, two atomic loads). Thread-safe, lock-free.
  View Snapshot() const;

  /// Convenience: lookup against a fresh snapshot.
  RowVec GetRows(const Value& key) const { return Snapshot().GetRows(key); }

  /// Aggregated chain statistics of the live generation. Caller must hold
  /// the partition write lock (the stats map is appender-owned).
  ChainStatsSnapshot ChainStats() const;

  /// The outcome of one compaction pass (see CompactLocked).
  struct CompactionResult {
    PartitionGenerationPtr retired;  ///< the superseded generation
    size_t chains_rewritten = 0;     ///< keys rewritten
    size_t links_rewritten = 0;      ///< chain rows re-linked
    size_t retired_bytes = 0;        ///< store + index bytes to reclaim
  };

  /// Rewrites every chain key-clustered (hottest chains first) into a
  /// fresh generation and swaps it in. Null-key rows are carried over in
  /// append order. Logical contents are unchanged: GetRows returns
  /// byte-identical results in the same newest-first order, Scan sees the
  /// same row set. Caller must hold the partition write lock; concurrent
  /// readers keep their (old-generation) views. The caller owns retiring
  /// `result->retired` — batches of the old generation must stay alive
  /// until every view holding it drains (see indexed/compactor.h).
  Status CompactLocked(CompactionResult* result);

  size_t num_rows() const { return gen()->store.num_rows(); }
  size_t distinct_keys() const { return gen()->index.size_hint(); }

  /// Memory accounting for the paper's "low memory overhead" claim:
  /// `index_bytes` is the live cTrie structure; `arena_bytes` additionally
  /// includes retired nodes the arena holds until the snapshot family dies
  /// (the cost of the leak-until-destruction reclamation strategy).
  size_t data_bytes() const { return gen()->store.used_bytes(); }
  size_t index_bytes() const { return gen()->index.LiveMemoryBytes(); }
  size_t arena_bytes() const { return gen()->index.MemoryBytesEstimate(); }

  /// The live generation's store. The reference is only stable while no
  /// compaction runs (single-threaded tests and benchmarks).
  const RowBatchStore& store() const { return gen()->store; }

  /// The live generation (thread-safe pointer copy).
  PartitionGenerationPtr gen() const {
    return std::atomic_load_explicit(&gen_, std::memory_order_acquire);
  }

 private:
  Status AppendToGen(PartitionGeneration& g, const Row& row);

  SchemaPtr schema_;
  int indexed_col_;
  size_t batch_bytes_;
  size_t max_row_bytes_;
  // Swapped only by CompactLocked (under the partition write lock); read
  // lock-free by Snapshot(). atomic_load/atomic_store free functions keep
  // the handle safe against concurrent snapshot-vs-swap.
  PartitionGenerationPtr gen_;
};

}  // namespace idf
