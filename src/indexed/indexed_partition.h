// IndexedPartition: one partition of an Indexed DataFrame, composed of the
// paper's three data structures (Section 2, "The Indexed Row-Batch RDD"):
//
//   (1) a cTrie, which represents the index,
//   (2) a set of row batches, which stores the tabular data, and
//   (3) backward pointers, which crawl the partition for rows indexed on
//       the same key.
//
// The cTrie maps the 64-bit canonical hash of the indexed column value to
// the packed pointer of the *latest* appended row for that key; each row's
// 8-byte header holds the backward pointer to the previous row with the
// same key, forming one linked list per unique key.
//
// Concurrency: appends are serialized per partition (the owner,
// IndexedRelation, holds the partition write lock); reads are lock-free and
// proceed concurrently with appends. A View captures a CTrie snapshot plus
// a store watermark, giving queries a consistent version while the update
// stream keeps appending — the paper's "updates with multi-version
// concurrency".
#pragma once

#include <functional>
#include <memory>

#include "common/config.h"
#include "common/macros.h"
#include "ctrie/ctrie.h"
#include "storage/row_batch_store.h"
#include "types/row.h"
#include "types/schema.h"

namespace idf {

class IndexedPartition {
 public:
  IndexedPartition(SchemaPtr schema, int indexed_col, const EngineConfig& config);

  const SchemaPtr& schema() const { return schema_; }
  int indexed_column() const { return indexed_col_; }

  /// Appends one row: inserts into the row batches, links the backward
  /// pointer to the previous row with the same key, and publishes the new
  /// head pointer in the cTrie. Appender-only (callers serialize).
  /// Rows whose key is null are stored but not indexed.
  Status Append(const Row& row);

  /// \brief A consistent read view: cTrie snapshot + store watermark.
  class View {
   public:
    /// All rows whose indexed column equals `key`, newest first (reverse
    /// chain order). `probes`/`hits` metrics counters may be null.
    RowVec GetRows(const Value& key) const;

    /// Encoded payload pointers of all rows whose indexed column equals
    /// `key`, newest first, appended to `out`. Callers decode lazily —
    /// e.g. a join materializes the build row only when concatenating a
    /// match. Returns the number of appended pointers.
    size_t GetRawRows(const Value& key,
                      std::vector<const uint8_t*>* out) const;

    /// Single-pass variant of GetRawRows: invokes `fn(payload)` for every
    /// row whose indexed column equals `key`, newest first, while the
    /// chain node is still cache-hot (revisiting scattered row-batch
    /// memory in a second pass costs a miss per row). Returns the match
    /// count.
    template <typename Fn>
    size_t ForEachRawRow(const Value& key, Fn&& fn) const {
      if (key.is_null()) return 0;
      std::optional<uint64_t> head = trie_.Lookup(key.Hash());
      if (!head.has_value()) return 0;
      const Schema& schema = *part_->schema_;
      const int col = part_->indexed_col_;
      // Fast path: for integer-backed indexed columns the key's 8-byte slot
      // image is compared against the raw encoded slot per chain node — no
      // Value materialization. Float and string columns stay on the decode
      // path (0.0 and -0.0 compare equal but differ in bits; strings are
      // out-of-line).
      uint64_t want_slot = 0;
      const bool raw_eq =
          EncodeFixedKeySlot(schema.field(col).type, key, &want_slot);
      const size_t bitmap_bytes = EncodedBitmapBytes(schema.num_fields());
      size_t matched = 0;
      PackedPointer ptr(*head);
      while (!ptr.is_null()) {
        const uint8_t* payload = part_->store_.PayloadAt(ptr);
        // Chain nodes are scattered across row batches, so the backward
        // walk is a dependent pointer chase; issuing the next node's
        // payload load before this node's match check overlaps the miss
        // with useful work (effect measured in bench_graph_traversal).
        const PackedPointer next = part_->store_.BackPointerAt(ptr);
        if (!next.is_null()) IDF_PREFETCH(part_->store_.PayloadAt(next));
        // Verify the actual value: chains link rows with equal key *hash*.
        const bool match =
            raw_eq ? !RawColumnIsNull(payload, col) &&
                         RawColumnSlot(payload, bitmap_bytes, col) == want_slot
                   : DecodeColumn(payload, schema, col) == key;
        if (match) {
          fn(payload);
          ++matched;
        }
        ptr = next;
      }
      return matched;
    }

    /// Visits every row in this view, in append order. Includes rows with
    /// null keys (which are stored but unindexed).
    void Scan(const std::function<void(const Row&)>& fn) const;

    /// Visits the raw encoded payload of every row in this view, in append
    /// order; callers decode lazily (e.g. one filter column per row).
    void ScanRaw(const std::function<void(const uint8_t*)>& fn) const;

    /// Visits the packed pointers of the chain for `key`, newest first
    /// (diagnostics and tests).
    void ScanChain(const Value& key,
                   const std::function<void(PackedPointer)>& fn) const;

    size_t num_rows() const { return watermark_.num_rows; }

   private:
    friend class IndexedPartition;
    View(const IndexedPartition* part, CTrie trie, StoreWatermark wm)
        : part_(part), trie_(std::move(trie)), watermark_(wm) {}

    bool InView(PackedPointer ptr) const;

    const IndexedPartition* part_;
    CTrie trie_;
    StoreWatermark watermark_;
  };

  /// Captures a consistent read view (O(1): cTrie read-only snapshot plus
  /// two atomic loads).
  View Snapshot() const;

  /// Convenience: lookup against a fresh snapshot.
  RowVec GetRows(const Value& key) const { return Snapshot().GetRows(key); }

  size_t num_rows() const { return store_.num_rows(); }
  size_t distinct_keys() const { return index_.size_hint(); }

  /// Memory accounting for the paper's "low memory overhead" claim:
  /// `index_bytes` is the live cTrie structure; `arena_bytes` additionally
  /// includes retired nodes the arena holds until the snapshot family dies
  /// (the cost of the leak-until-destruction reclamation strategy).
  size_t data_bytes() const { return store_.used_bytes(); }
  size_t index_bytes() const { return index_.LiveMemoryBytes(); }
  size_t arena_bytes() const { return index_.MemoryBytesEstimate(); }

  const RowBatchStore& store() const { return store_; }

 private:
  SchemaPtr schema_;
  int indexed_col_;
  RowBatchStore store_;
  // ReadOnlySnapshot() CASes the trie root (RDCSS) without changing the
  // logical contents; snapshots from const contexts are fine.
  mutable CTrie index_;
};

}  // namespace idf
