// The Catalyst integration of the Indexed DataFrame (paper §2, "Integration
// with Catalyst"): index-aware optimization rules that translate regular
// logical operators over indexed relations into indexed logical operators,
// plus the physical strategy that lowers those to indexed execution.
// Queries that cannot use the index are untouched and fall back to regular
// Spark-style execution.
#pragma once

#include "sql/optimizer.h"
#include "sql/planner.h"
#include "sql/session.h"

namespace idf {

/// Filter(col = literal) over IndexedScan, where col is the indexed
/// column, becomes IndexedLookup (plus a residual Filter for any remaining
/// conjuncts).
class IndexedFilterRule : public OptimizerRule {
 public:
  std::string name() const override { return "IndexedEqualityFilter"; }
  Result<LogicalPlanPtr> Apply(const LogicalPlanPtr& node) const override;
};

/// Filter over IndexedScan/SnapshotScan whose conjuncts include bitmap or
/// range predicates on secondary-indexed columns becomes a SecondaryProbe
/// when index-kind costing says the cheapest probe's estimated selectivity
/// beats the vectorized scan (at most `max_selectivity`). Every candidate
/// under the threshold is absorbed as an ANDed probe (bitmap-AND at
/// execution); unconsumed conjuncts remain a residual Filter. Runs after
/// IndexedFilterRule, so a point lookup on the primary indexed column
/// always wins first.
class SecondaryIndexFilterRule : public OptimizerRule {
 public:
  explicit SecondaryIndexFilterRule(double max_selectivity)
      : max_selectivity_(max_selectivity) {}
  std::string name() const override { return "SecondaryIndexFilter"; }
  Result<LogicalPlanPtr> Apply(const LogicalPlanPtr& node) const override;

 private:
  double max_selectivity_;
};

/// Join with an IndexedScan on one side, keyed on the indexed column,
/// becomes IndexedJoin: the index is the build side, the other relation is
/// the probe side.
class IndexedJoinRule : public OptimizerRule {
 public:
  std::string name() const override { return "IndexedEquiJoin"; }
  Result<LogicalPlanPtr> Apply(const LogicalPlanPtr& node) const override;
};

/// Lowers IndexedScan/IndexedLookup/IndexedJoin logical nodes to the
/// physical operators in indexed/indexed_operators.h. The probe side of an
/// indexed join is broadcast instead of shuffled when its estimated size
/// is under the session's broadcast threshold.
class IndexedExecutionStrategy : public PhysicalStrategy {
 public:
  std::string name() const override { return "IndexedExecution"; }
  Result<PhysicalOpPtr> Plan(const LogicalPlanPtr& node,
                             std::vector<PhysicalOpPtr> children,
                             const EngineConfig& config) const override;
};

/// Registers the rules and the strategy with `session` (idempotent). This
/// is what "importing the lightweight library" does to a Spark session.
void InstallIndexedExtensions(Session& session);

}  // namespace idf
