#include "indexed/indexed_partition.h"

#include <algorithm>

#include "common/logging.h"

namespace idf {

namespace {

int HistBucket(uint64_t chain_len) {
  int b = 0;
  while (chain_len > 1 && b < ChainStatsSnapshot::kHistBuckets - 1) {
    chain_len >>= 1;
    ++b;
  }
  return b;
}

void RecordAppend(PartitionGeneration& g, uint64_t hash, PackedPointer ptr) {
  PartitionGeneration::KeyStat& st = g.key_stats[hash];
  if (st.chain_len == 0) st.first_batch = ptr.batch();
  st.last_batch = ptr.batch();
  st.chain_len += 1;
}

}  // namespace

void ChainStatsSnapshot::Merge(const ChainStatsSnapshot& o) {
  num_keys += o.num_keys;
  total_links += o.total_links;
  max_chain_len = std::max(max_chain_len, o.max_chain_len);
  sum_batch_span += o.sum_batch_span;
  max_batch_span = std::max(max_batch_span, o.max_batch_span);
  for (int i = 0; i < kHistBuckets; ++i) {
    chain_len_histogram[i] += o.chain_len_histogram[i];
  }
}

std::string ChainStatsSnapshot::ToString() const {
  std::string s = "chains{keys=" + std::to_string(num_keys) +
                  ", links=" + std::to_string(total_links) +
                  ", max_len=" + std::to_string(max_chain_len) +
                  ", mean_span=" + std::to_string(MeanBatchSpan()) +
                  ", max_span=" + std::to_string(max_batch_span) + ", hist=[";
  for (int i = 0; i < kHistBuckets; ++i) {
    if (i > 0) s += ",";
    s += std::to_string(chain_len_histogram[i]);
  }
  return s + "]}";
}

IndexedPartition::IndexedPartition(SchemaPtr schema, int indexed_col,
                                   const EngineConfig& config)
    : schema_(std::move(schema)),
      indexed_col_(indexed_col),
      batch_bytes_(config.row_batch_bytes),
      max_row_bytes_(config.max_row_bytes),
      gen_(std::make_shared<PartitionGeneration>(config.row_batch_bytes,
                                                 config.max_row_bytes)) {}

Status IndexedPartition::Append(const Row& row) {
  // The appender holds the partition write lock, which also excludes
  // compaction swaps: a plain generation read is safe here.
  return AppendToGen(*gen_, row);
}

Status IndexedPartition::AppendToGen(PartitionGeneration& g, const Row& row) {
  const Value& key = row[static_cast<size_t>(indexed_col_)];
  if (key.is_null()) {
    // Stored but unindexed; lookups of a null key return nothing.
    return g.store.AppendRow(*schema_, row, PackedPointer::Null(), /*prev_size=*/0)
        .status();
  }
  uint64_t h = key.Hash();
  std::optional<uint64_t> head = g.index.Lookup(h);
  PackedPointer back_pointer = PackedPointer::Null();
  uint32_t prev_size = 0;
  if (head.has_value()) {
    back_pointer = PackedPointer(*head);
    prev_size = EncodedRowSize(g.store.PayloadAt(back_pointer), *schema_);
  }
  IDF_ASSIGN_OR_RETURN(PackedPointer ptr,
                       g.store.AppendRow(*schema_, row, back_pointer, prev_size));
  // Publish after the row bytes are committed: concurrent readers that see
  // this trie entry can safely dereference the pointer.
  g.index.Insert(h, ptr.bits());
  RecordAppend(g, h, ptr);
  return Status::OK();
}

Status IndexedPartition::AppendBatch(const std::vector<EncodedRowRef>& rows,
                                     AppendBatchResult* result) {
  PartitionGeneration& g = *gen_;  // caller holds the partition write lock
  // The head of each key touched by this batch: seeded from the trie on
  // first occurrence, then advanced locally so intra-batch chain links are
  // built without republishing intermediate heads.
  struct LocalHead {
    PackedPointer head;
    uint32_t head_size = 0;
  };
  std::unordered_map<uint64_t, LocalHead> heads;
  heads.reserve(rows.size());
  AppendBatchResult local;
  Status error;

  for (const EncodedRowRef& row : rows) {
    if (row.size > max_row_bytes_) {
      error = Status::CapacityError(
          "encoded row of " + std::to_string(row.size) +
          " bytes exceeds max_row_bytes=" + std::to_string(max_row_bytes_));
      break;
    }
    PackedPointer back = PackedPointer::Null();
    uint32_t prev_size = 0;
    LocalHead* slot = nullptr;
    if (row.indexed) {
      auto [it, inserted] = heads.try_emplace(row.hash);
      slot = &it->second;
      if (inserted) {
        std::optional<uint64_t> head = g.index.Lookup(row.hash);
        if (head.has_value()) {
          slot->head = PackedPointer(*head);
          slot->head_size = EncodedRowSize(g.store.PayloadAt(slot->head), *schema_);
        } else {
          slot->head = PackedPointer::Null();
          slot->head_size = 0;
        }
      } else {
        local.links_coalesced += 1;
      }
      back = slot->head;
      prev_size = slot->head_size;
    }
    auto ptr_res = g.store.AppendEncoded(row.payload, row.size, back, prev_size);
    if (!ptr_res.ok()) {
      error = ptr_res.status();
      break;
    }
    const PackedPointer ptr = ptr_res.ValueUnsafe();
    local.rows_appended += 1;
    if (row.indexed) {
      slot->head = ptr;
      slot->head_size = row.size;
      RecordAppend(g, row.hash, ptr);
    }
  }

  // Publish one head per key, after every row of the batch (or of the
  // prefix that made it in) has its bytes committed. Readers snapshotting
  // between publishes see a consistent prefix of the batch per key.
  for (const auto& [hash, slot] : heads) {
    if (slot.head.is_null()) continue;  // key never landed a row
    g.index.Insert(hash, slot.head.bits());
    local.keys_published += 1;
  }
  if (result != nullptr) *result = local;
  return error;
}

IndexedPartition::View IndexedPartition::Snapshot() const {
  // Lock-free vs both appends and compaction swaps: grab the generation
  // first, then snapshot inside it. If a swap lands in between we read the
  // old (frozen, still complete) generation. Order matters inside the
  // generation: trie snapshot first, watermark second, so every pointer
  // reachable from the snapshot is covered by the watermark.
  PartitionGenerationPtr g = gen();
  CTrie trie = g->index.ReadOnlySnapshot();
  StoreWatermark wm = g->store.Watermark();
  return View(schema_, indexed_col_, std::move(g), std::move(trie), wm);
}

ChainStatsSnapshot IndexedPartition::ChainStats() const {
  const PartitionGeneration& g = *gen_;
  ChainStatsSnapshot out;
  for (const auto& [hash, st] : g.key_stats) {
    (void)hash;
    out.num_keys += 1;
    out.total_links += st.chain_len;
    out.max_chain_len = std::max<uint64_t>(out.max_chain_len, st.chain_len);
    const uint64_t span = st.last_batch - st.first_batch + 1;
    out.sum_batch_span += span;
    out.max_batch_span = std::max(out.max_batch_span, span);
    out.chain_len_histogram[HistBucket(st.chain_len)] += 1;
  }
  return out;
}

Status IndexedPartition::CompactLocked(CompactionResult* result) {
  PartitionGenerationPtr old_gen = gen_;
  auto fresh = std::make_shared<PartitionGeneration>(batch_bytes_, max_row_bytes_);
  const Schema& schema = *schema_;

  // Collect every chain of the old generation: (hash, pointers newest
  // first). The trie is frozen for writes while we hold the partition
  // lock, so a read-only snapshot covers everything.
  struct Chain {
    uint64_t hash;
    std::vector<PackedPointer> ptrs;  // newest first (walk order)
  };
  std::vector<Chain> chains;
  CTrie old_trie = old_gen->index.ReadOnlySnapshot();
  old_trie.ForEach([&](uint64_t hash, uint64_t head) {
    Chain c;
    c.hash = hash;
    for (PackedPointer p(head); !p.is_null(); p = old_gen->store.BackPointerAt(p)) {
      c.ptrs.push_back(p);
    }
    chains.push_back(std::move(c));
  });
  // Hottest chains first, so the longest chains land maximally clustered
  // at the front of the new store; hash as tie-break for determinism.
  std::sort(chains.begin(), chains.end(), [](const Chain& a, const Chain& b) {
    if (a.ptrs.size() != b.ptrs.size()) return a.ptrs.size() > b.ptrs.size();
    return a.hash < b.hash;
  });

  CompactionResult local;
  for (const Chain& c : chains) {
    PackedPointer back = PackedPointer::Null();
    uint32_t prev_size = 0;
    // Rewrite oldest -> newest so back pointers again yield newest-first.
    for (auto it = c.ptrs.rbegin(); it != c.ptrs.rend(); ++it) {
      const uint8_t* payload = old_gen->store.PayloadAt(*it);
      const uint32_t size = EncodedRowSize(payload, schema);
      IDF_ASSIGN_OR_RETURN(PackedPointer ptr, fresh->store.AppendEncoded(
                                                  payload, size, back, prev_size));
      back = ptr;
      prev_size = size;
      RecordAppend(*fresh, c.hash, ptr);
    }
    fresh->index.Insert(c.hash, back.bits());
    local.chains_rewritten += 1;
    local.links_rewritten += c.ptrs.size();
  }

  // Null-key rows are unindexed and unreachable from any chain: carry them
  // over in append order by a forward scan of the old store.
  const StoreWatermark wm = old_gen->store.Watermark();
  const int col = indexed_col_;
  for (uint32_t b = 0; b < wm.num_batches; ++b) {
    const RowBatch* batch = old_gen->store.BatchAt(b);
    const size_t limit =
        (b + 1 == wm.num_batches) ? wm.last_batch_bytes : batch->committed_size();
    uint32_t offset = 0;
    while (offset + 8 < limit) {
      const uint8_t* payload = batch->payload_at(offset);
      if (RawColumnIsNull(payload, col)) {
        const uint32_t size = EncodedRowSize(payload, schema);
        IDF_RETURN_NOT_OK(fresh->store
                              .AppendEncoded(payload, size, PackedPointer::Null(),
                                             /*prev_size=*/0)
                              .status());
      }
      offset = batch->NextRowOffset(offset, schema);
    }
  }

  if (fresh->store.num_rows() != old_gen->store.num_rows()) {
    // Leave the live generation untouched; the partially built one dies.
    return Status::Internal(
        "compaction row-count mismatch: rewrote " +
        std::to_string(fresh->store.num_rows()) + " of " +
        std::to_string(old_gen->store.num_rows()) + " rows");
  }

  local.retired = old_gen;
  local.retired_bytes =
      old_gen->store.allocated_bytes() + old_gen->index.MemoryBytesEstimate();
  // Publish the new generation. Readers that already grabbed the old one
  // keep a consistent (frozen) view; new snapshots see the rewrite.
  std::atomic_store_explicit(&gen_, std::move(fresh), std::memory_order_release);
  if (result != nullptr) *result = std::move(local);
  return Status::OK();
}

bool IndexedPartition::View::InView(PackedPointer ptr) const {
  if (ptr.is_null()) return false;
  if (ptr.batch() + 1 < watermark_.num_batches) return true;
  if (ptr.batch() + 1 > watermark_.num_batches) return false;
  return ptr.offset() < watermark_.last_batch_bytes;
}

RowVec IndexedPartition::View::GetRows(const Value& key) const {
  RowVec out;
  const Schema& schema = *schema_;
  ForEachRawRow(key, [&out, &schema](const uint8_t* payload) {
    out.push_back(DecodeRow(payload, schema));
  });
  return out;
}

size_t IndexedPartition::View::GetRawRows(
    const Value& key, std::vector<const uint8_t*>* out) const {
  return ForEachRawRow(key,
                       [out](const uint8_t* payload) { out->push_back(payload); });
}

void IndexedPartition::View::ScanChain(
    const Value& key, const std::function<void(PackedPointer)>& fn) const {
  if (key.is_null()) return;
  std::optional<uint64_t> head = trie_.Lookup(key.Hash());
  if (!head.has_value()) return;
  for (PackedPointer ptr(*head); !ptr.is_null();
       ptr = gen_->store.BackPointerAt(ptr)) {
    fn(ptr);
  }
}

void IndexedPartition::View::Scan(const std::function<void(const Row&)>& fn) const {
  const Schema& schema = *schema_;
  ScanRaw([&fn, &schema](const uint8_t* payload) {
    fn(DecodeRow(payload, schema));
  });
}

void IndexedPartition::View::ScanRaw(
    const std::function<void(const uint8_t*)>& fn) const {
  const Schema& schema = *schema_;
  for (uint32_t b = 0; b < watermark_.num_batches; ++b) {
    const RowBatch* batch = gen_->store.BatchAt(b);
    size_t limit = (b + 1 == watermark_.num_batches) ? watermark_.last_batch_bytes
                                                     : batch->committed_size();
    uint32_t offset = 0;
    while (offset + 8 < limit) {
      fn(batch->payload_at(offset));
      offset = batch->NextRowOffset(offset, schema);
    }
  }
}

}  // namespace idf
