#include "indexed/indexed_partition.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "sql/index_costing.h"
#include "sql/logical_plan.h"

namespace idf {

namespace {

uint64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - since)
                                   .count());
}

}  // namespace

SecondaryIndexSet::SecondaryIndexSet(SchemaPtr schema,
                                     std::vector<SecondaryIndexSpec> specs)
    : schema_(std::move(schema)),
      specs_(std::move(specs)),
      bitmaps_(specs_.size()),
      ranges_(specs_.size()),
      directory_(std::make_shared<PayloadDirectory>()) {}

SecondaryMaintenanceStats SecondaryIndexSet::PublishCut(StoreWatermark boundary) {
  SecondaryMaintenanceStats stats;
  const uint64_t limit = directory_->size();
  const Schema& schema = *schema_;
  for (size_t s = 0; s < specs_.size(); ++s) {
    const SecondaryIndexSpec& spec = specs_[s];
    const auto t0 = std::chrono::steady_clock::now();
    for (uint64_t pos = indexed_; pos < limit; ++pos) {
      const uint8_t* payload = directory_->At(pos);
      // Null keys are stored but unindexed (same contract as the cTrie);
      // ProbeMatches never matches a null, so probe == scan still holds.
      if (RawColumnIsNull(payload, spec.column)) continue;
      Value v = DecodeColumn(payload, schema, spec.column);
      if (spec.kind == SecondaryIndexKind::kBitmap) {
        bitmaps_[s].Add(v, static_cast<uint32_t>(pos));
      } else {
        ranges_[s].Add(v, static_cast<uint32_t>(pos));
      }
    }
    const uint64_t us = ElapsedUs(t0);
    if (spec.kind == SecondaryIndexKind::kBitmap) {
      stats.bitmap_us += us;
    } else {
      stats.range_us += us;
    }
  }
  stats.rows = static_cast<size_t>(limit - indexed_);
  indexed_ = limit;
  ++epoch_;

  auto cut = std::make_shared<SecondaryIndexCut>();
  cut->entries.reserve(specs_.size());
  for (size_t s = 0; s < specs_.size(); ++s) {
    SecondaryIndexCut::Entry entry;
    entry.spec = specs_[s];
    if (specs_[s].kind == SecondaryIndexKind::kBitmap) {
      entry.bitmap = bitmaps_[s].BuildCut(epoch_);
    } else {
      entry.range = ranges_[s].BuildCut(epoch_);
    }
    cut->entries.push_back(std::move(entry));
  }
  cut->covered = limit;
  cut->boundary = boundary;
  cut->epoch = epoch_;
  cut->directory = directory_;
  // The release edge of this store is what makes the plain directory and
  // segment writes above visible to lock-free readers.
  std::atomic_store_explicit(&cut_, SecondaryIndexCutPtr(std::move(cut)),
                             std::memory_order_release);
  return stats;
}

void SecondaryIndexSet::MergeRuns() {
  for (size_t s = 0; s < specs_.size(); ++s) {
    if (specs_[s].kind == SecondaryIndexKind::kRange) {
      ranges_[s].MergeAll(epoch_ + 1);
    }
  }
}

namespace {

int HistBucket(uint64_t chain_len) {
  int b = 0;
  while (chain_len > 1 && b < ChainStatsSnapshot::kHistBuckets - 1) {
    chain_len >>= 1;
    ++b;
  }
  return b;
}

void RecordAppend(PartitionGeneration& g, uint64_t hash, PackedPointer ptr) {
  PartitionGeneration::KeyStat& st = g.key_stats[hash];
  if (st.chain_len == 0) st.first_batch = ptr.batch();
  st.last_batch = ptr.batch();
  st.chain_len += 1;
}

}  // namespace

void ChainStatsSnapshot::Merge(const ChainStatsSnapshot& o) {
  num_keys += o.num_keys;
  total_links += o.total_links;
  max_chain_len = std::max(max_chain_len, o.max_chain_len);
  sum_batch_span += o.sum_batch_span;
  max_batch_span = std::max(max_batch_span, o.max_batch_span);
  for (int i = 0; i < kHistBuckets; ++i) {
    chain_len_histogram[i] += o.chain_len_histogram[i];
  }
}

std::string ChainStatsSnapshot::ToString() const {
  std::string s = "chains{keys=" + std::to_string(num_keys) +
                  ", links=" + std::to_string(total_links) +
                  ", max_len=" + std::to_string(max_chain_len) +
                  ", mean_span=" + std::to_string(MeanBatchSpan()) +
                  ", max_span=" + std::to_string(max_batch_span) + ", hist=[";
  for (int i = 0; i < kHistBuckets; ++i) {
    if (i > 0) s += ",";
    s += std::to_string(chain_len_histogram[i]);
  }
  return s + "]}";
}

IndexedPartition::IndexedPartition(SchemaPtr schema, int indexed_col,
                                   const EngineConfig& config)
    : schema_(std::move(schema)),
      indexed_col_(indexed_col),
      batch_bytes_(config.row_batch_bytes),
      max_row_bytes_(config.max_row_bytes),
      gen_(std::make_shared<PartitionGeneration>(config.row_batch_bytes,
                                                 config.max_row_bytes)) {}

Status IndexedPartition::Append(const Row& row) {
  // The appender holds the partition write lock, which also excludes
  // compaction swaps: a plain generation read is safe here.
  return AppendToGen(*gen_, row);
}

Status IndexedPartition::AppendToGen(PartitionGeneration& g, const Row& row) {
  const Value& key = row[static_cast<size_t>(indexed_col_)];
  // Null keys are stored but unindexed; lookups of a null key return nothing.
  uint64_t h = 0;
  PackedPointer back_pointer = PackedPointer::Null();
  uint32_t prev_size = 0;
  if (!key.is_null()) {
    h = key.Hash();
    std::optional<uint64_t> head = g.index.Lookup(h);
    if (head.has_value()) {
      back_pointer = PackedPointer(*head);
      prev_size = EncodedRowSize(g.store.PayloadAt(back_pointer), *schema_);
    }
  }
  IDF_ASSIGN_OR_RETURN(PackedPointer ptr,
                       g.store.AppendRow(*schema_, row, back_pointer, prev_size));
  if (!key.is_null()) {
    // Publish after the row bytes are committed: concurrent readers that see
    // this trie entry can safely dereference the pointer.
    g.index.Insert(h, ptr.bits());
    RecordAppend(g, h, ptr);
  }
  SecondaryIndexSetPtr sec =
      std::atomic_load_explicit(&g.secondary, std::memory_order_acquire);
  if (sec != nullptr) {
    sec->StageRow(g.store.PayloadAt(ptr));
    sec->PublishCut(g.store.Watermark());
  }
  return Status::OK();
}

Status IndexedPartition::AppendBatch(const std::vector<EncodedRowRef>& rows,
                                     AppendBatchResult* result) {
  PartitionGeneration& g = *gen_;  // caller holds the partition write lock
  SecondaryIndexSetPtr sec =
      std::atomic_load_explicit(&g.secondary, std::memory_order_acquire);
  // The head of each key touched by this batch: seeded from the trie on
  // first occurrence, then advanced locally so intra-batch chain links are
  // built without republishing intermediate heads.
  struct LocalHead {
    PackedPointer head;
    uint32_t head_size = 0;
  };
  std::unordered_map<uint64_t, LocalHead> heads;
  heads.reserve(rows.size());
  AppendBatchResult local;
  Status error;

  for (const EncodedRowRef& row : rows) {
    if (row.size > max_row_bytes_) {
      error = Status::CapacityError(
          "encoded row of " + std::to_string(row.size) +
          " bytes exceeds max_row_bytes=" + std::to_string(max_row_bytes_));
      break;
    }
    PackedPointer back = PackedPointer::Null();
    uint32_t prev_size = 0;
    LocalHead* slot = nullptr;
    if (row.indexed) {
      auto [it, inserted] = heads.try_emplace(row.hash);
      slot = &it->second;
      if (inserted) {
        std::optional<uint64_t> head = g.index.Lookup(row.hash);
        if (head.has_value()) {
          slot->head = PackedPointer(*head);
          slot->head_size = EncodedRowSize(g.store.PayloadAt(slot->head), *schema_);
        } else {
          slot->head = PackedPointer::Null();
          slot->head_size = 0;
        }
      } else {
        local.links_coalesced += 1;
      }
      back = slot->head;
      prev_size = slot->head_size;
    }
    auto ptr_res = g.store.AppendEncoded(row.payload, row.size, back, prev_size);
    if (!ptr_res.ok()) {
      error = ptr_res.status();
      break;
    }
    const PackedPointer ptr = ptr_res.ValueUnsafe();
    local.rows_appended += 1;
    if (sec != nullptr) sec->StageRow(g.store.PayloadAt(ptr));
    if (row.indexed) {
      slot->head = ptr;
      slot->head_size = row.size;
      RecordAppend(g, row.hash, ptr);
    }
  }

  // Publish one head per key, after every row of the batch (or of the
  // prefix that made it in) has its bytes committed. Readers snapshotting
  // between publishes see a consistent prefix of the batch per key.
  for (const auto& [hash, slot] : heads) {
    if (slot.head.is_null()) continue;  // key never landed a row
    g.index.Insert(hash, slot.head.bits());
    local.keys_published += 1;
  }
  // Secondary-index maintenance rides inside the same lock acquisition:
  // one cut publish per batch. On error the committed prefix is indexed,
  // matching the store and the cTrie heads above.
  if (sec != nullptr) {
    local.maintenance = sec->PublishCut(g.store.Watermark());
  }
  if (result != nullptr) *result = local;
  return error;
}

Status IndexedPartition::AddSecondaryIndexLocked(const SecondaryIndexSpec& spec) {
  if (spec.column < 0 || spec.column >= schema_->num_fields()) {
    return Status::IndexError("secondary index column ordinal " +
                              std::to_string(spec.column) +
                              " out of range for schema " + schema_->ToString());
  }
  if (spec.kind != SecondaryIndexKind::kBitmap &&
      spec.kind != SecondaryIndexKind::kRange) {
    return Status::InvalidArgument("secondary index kind must be bitmap or range");
  }
  PartitionGeneration& g = *gen_;  // caller holds the partition write lock
  SecondaryIndexSetPtr old =
      std::atomic_load_explicit(&g.secondary, std::memory_order_acquire);
  std::vector<SecondaryIndexSpec> specs;
  if (old != nullptr) {
    specs = old->specs();
    for (const SecondaryIndexSpec& s : specs) {
      if (s.column == spec.column) {
        return Status::InvalidArgument(
            "column '" + schema_->field(spec.column).name +
            "' already has a secondary index");
      }
    }
  }
  specs.push_back(spec);
  // Backfill a replacement set from the rows already in the store (the
  // position space is unchanged, so rebuilding every index from scratch
  // keeps registration one code path; readers holding the old set's cuts
  // stay valid — the old directory lives inside them). The write lock
  // excludes appends, so the watermark is the exact backfill boundary.
  auto fresh = std::make_shared<SecondaryIndexSet>(schema_, std::move(specs));
  const StoreWatermark wm = g.store.Watermark();
  const Schema& schema = *schema_;
  for (uint32_t b = 0; b < wm.num_batches; ++b) {
    const RowBatch* batch = g.store.BatchAt(b);
    const size_t limit =
        (b + 1 == wm.num_batches) ? wm.last_batch_bytes : batch->committed_size();
    uint32_t offset = 0;
    while (offset + 8 < limit) {
      fresh->StageRow(batch->payload_at(offset));
      offset = batch->NextRowOffset(offset, schema);
    }
  }
  fresh->PublishCut(wm);
  std::atomic_store_explicit(&g.secondary, std::move(fresh),
                             std::memory_order_release);
  return Status::OK();
}

std::vector<SecondaryIndexSpec> IndexedPartition::secondary_specs() const {
  PartitionGenerationPtr g = gen();
  SecondaryIndexSetPtr set =
      std::atomic_load_explicit(&g->secondary, std::memory_order_acquire);
  return set != nullptr ? set->specs() : std::vector<SecondaryIndexSpec>{};
}

IndexedPartition::View IndexedPartition::Snapshot() const {
  // Lock-free vs both appends and compaction swaps: grab the generation
  // first, then snapshot inside it. If a swap lands in between we read the
  // old (frozen, still complete) generation. Order matters inside the
  // generation: the secondary cut and the trie snapshot are captured
  // BEFORE the watermark, so everything reachable from either (cut
  // positions, trie pointers) is covered by the watermark — in particular
  // cut.covered <= wm.num_rows, which ProbeSecondary relies on.
  PartitionGenerationPtr g = gen();
  SecondaryIndexSetPtr set =
      std::atomic_load_explicit(&g->secondary, std::memory_order_acquire);
  SecondaryIndexCutPtr cut = set != nullptr ? set->cut() : nullptr;
  CTrie trie = g->index.ReadOnlySnapshot();
  StoreWatermark wm = g->store.Watermark();
  return View(schema_, indexed_col_, std::move(g), std::move(trie), wm,
              std::move(cut));
}

ChainStatsSnapshot IndexedPartition::ChainStats() const {
  const PartitionGeneration& g = *gen_;
  ChainStatsSnapshot out;
  for (const auto& [hash, st] : g.key_stats) {
    (void)hash;
    out.num_keys += 1;
    out.total_links += st.chain_len;
    out.max_chain_len = std::max<uint64_t>(out.max_chain_len, st.chain_len);
    const uint64_t span = st.last_batch - st.first_batch + 1;
    out.sum_batch_span += span;
    out.max_batch_span = std::max(out.max_batch_span, span);
    out.chain_len_histogram[HistBucket(st.chain_len)] += 1;
  }
  return out;
}

Status IndexedPartition::CompactLocked(CompactionResult* result) {
  PartitionGenerationPtr old_gen = gen_;
  auto fresh = std::make_shared<PartitionGeneration>(batch_bytes_, max_row_bytes_);
  const Schema& schema = *schema_;

  // Collect every chain of the old generation: (hash, pointers newest
  // first). The trie is frozen for writes while we hold the partition
  // lock, so a read-only snapshot covers everything.
  struct Chain {
    uint64_t hash;
    std::vector<PackedPointer> ptrs;  // newest first (walk order)
  };
  std::vector<Chain> chains;
  CTrie old_trie = old_gen->index.ReadOnlySnapshot();
  old_trie.ForEach([&](uint64_t hash, uint64_t head) {
    Chain c;
    c.hash = hash;
    for (PackedPointer p(head); !p.is_null(); p = old_gen->store.BackPointerAt(p)) {
      c.ptrs.push_back(p);
    }
    chains.push_back(std::move(c));
  });
  // Hottest chains first, so the longest chains land maximally clustered
  // at the front of the new store; hash as tie-break for determinism.
  std::sort(chains.begin(), chains.end(), [](const Chain& a, const Chain& b) {
    if (a.ptrs.size() != b.ptrs.size()) return a.ptrs.size() > b.ptrs.size();
    return a.hash < b.hash;
  });

  CompactionResult local;
  for (const Chain& c : chains) {
    PackedPointer back = PackedPointer::Null();
    uint32_t prev_size = 0;
    // Rewrite oldest -> newest so back pointers again yield newest-first.
    for (auto it = c.ptrs.rbegin(); it != c.ptrs.rend(); ++it) {
      const uint8_t* payload = old_gen->store.PayloadAt(*it);
      const uint32_t size = EncodedRowSize(payload, schema);
      IDF_ASSIGN_OR_RETURN(PackedPointer ptr, fresh->store.AppendEncoded(
                                                  payload, size, back, prev_size));
      back = ptr;
      prev_size = size;
      RecordAppend(*fresh, c.hash, ptr);
    }
    fresh->index.Insert(c.hash, back.bits());
    local.chains_rewritten += 1;
    local.links_rewritten += c.ptrs.size();
  }

  // Null-key rows are unindexed and unreachable from any chain: carry them
  // over in append order by a forward scan of the old store.
  const StoreWatermark wm = old_gen->store.Watermark();
  const int col = indexed_col_;
  for (uint32_t b = 0; b < wm.num_batches; ++b) {
    const RowBatch* batch = old_gen->store.BatchAt(b);
    const size_t limit =
        (b + 1 == wm.num_batches) ? wm.last_batch_bytes : batch->committed_size();
    uint32_t offset = 0;
    while (offset + 8 < limit) {
      const uint8_t* payload = batch->payload_at(offset);
      if (RawColumnIsNull(payload, col)) {
        const uint32_t size = EncodedRowSize(payload, schema);
        IDF_RETURN_NOT_OK(fresh->store
                              .AppendEncoded(payload, size, PackedPointer::Null(),
                                             /*prev_size=*/0)
                              .status());
      }
      offset = batch->NextRowOffset(offset, schema);
    }
  }

  if (fresh->store.num_rows() != old_gen->store.num_rows()) {
    // Leave the live generation untouched; the partially built one dies.
    return Status::Internal(
        "compaction row-count mismatch: rewrote " +
        std::to_string(fresh->store.num_rows()) + " of " +
        std::to_string(old_gen->store.num_rows()) + " rows");
  }

  // Rebuild the secondary indexes over the rewritten (chain-clustered)
  // position space; range runs are merged into one so post-compaction
  // probes binary-search a single run. Readers holding old-generation
  // views keep the old cuts and directory.
  SecondaryIndexSetPtr old_sec =
      std::atomic_load_explicit(&old_gen->secondary, std::memory_order_acquire);
  if (old_sec != nullptr) {
    auto fresh_sec = std::make_shared<SecondaryIndexSet>(schema_, old_sec->specs());
    const StoreWatermark fwm = fresh->store.Watermark();
    for (uint32_t b = 0; b < fwm.num_batches; ++b) {
      const RowBatch* batch = fresh->store.BatchAt(b);
      const size_t limit = (b + 1 == fwm.num_batches) ? fwm.last_batch_bytes
                                                      : batch->committed_size();
      uint32_t offset = 0;
      while (offset + 8 < limit) {
        fresh_sec->StageRow(batch->payload_at(offset));
        offset = batch->NextRowOffset(offset, schema);
      }
    }
    fresh_sec->PublishCut(fwm);  // feeds the builders (sealed runs/segments)
    fresh_sec->MergeRuns();
    fresh_sec->PublishCut(fwm);  // republish with each range index merged
    std::atomic_store_explicit(&fresh->secondary, std::move(fresh_sec),
                               std::memory_order_release);
  }

  local.retired = old_gen;
  local.retired_bytes =
      old_gen->store.allocated_bytes() + old_gen->index.MemoryBytesEstimate();
  // Publish the new generation. Readers that already grabbed the old one
  // keep a consistent (frozen) view; new snapshots see the rewrite.
  std::atomic_store_explicit(&gen_, std::move(fresh), std::memory_order_release);
  if (result != nullptr) *result = std::move(local);
  return Status::OK();
}

bool IndexedPartition::View::InView(PackedPointer ptr) const {
  if (ptr.is_null()) return false;
  if (ptr.batch() + 1 < watermark_.num_batches) return true;
  if (ptr.batch() + 1 > watermark_.num_batches) return false;
  return ptr.offset() < watermark_.last_batch_bytes;
}

RowVec IndexedPartition::View::GetRows(const Value& key) const {
  RowVec out;
  const Schema& schema = *schema_;
  ForEachRawRow(key, [&out, &schema](const uint8_t* payload) {
    out.push_back(DecodeRow(payload, schema));
  });
  return out;
}

size_t IndexedPartition::View::GetRawRows(
    const Value& key, std::vector<const uint8_t*>* out) const {
  return ForEachRawRow(key,
                       [out](const uint8_t* payload) { out->push_back(payload); });
}

void IndexedPartition::View::ScanChain(
    const Value& key, const std::function<void(PackedPointer)>& fn) const {
  if (key.is_null()) return;
  std::optional<uint64_t> head = trie_.Lookup(key.Hash());
  if (!head.has_value()) return;
  for (PackedPointer ptr(*head); !ptr.is_null();
       ptr = gen_->store.BackPointerAt(ptr)) {
    fn(ptr);
  }
}

void IndexedPartition::View::Scan(const std::function<void(const Row&)>& fn) const {
  const Schema& schema = *schema_;
  ScanRaw([&fn, &schema](const uint8_t* payload) {
    fn(DecodeRow(payload, schema));
  });
}

void IndexedPartition::View::ScanRaw(
    const std::function<void(const uint8_t*)>& fn) const {
  const Schema& schema = *schema_;
  for (uint32_t b = 0; b < watermark_.num_batches; ++b) {
    const RowBatch* batch = gen_->store.BatchAt(b);
    size_t limit = (b + 1 == watermark_.num_batches) ? watermark_.last_batch_bytes
                                                     : batch->committed_size();
    uint32_t offset = 0;
    while (offset + 8 < limit) {
      fn(batch->payload_at(offset));
      offset = batch->NextRowOffset(offset, schema);
    }
  }
}

void IndexedPartition::View::ScanRawFrom(
    const StoreWatermark& from,
    const std::function<void(const uint8_t*)>& fn) const {
  const Schema& schema = *schema_;
  const uint32_t first = from.num_batches == 0 ? 0 : from.num_batches - 1;
  for (uint32_t b = first; b < watermark_.num_batches; ++b) {
    const RowBatch* batch = gen_->store.BatchAt(b);
    size_t limit = (b + 1 == watermark_.num_batches) ? watermark_.last_batch_bytes
                                                     : batch->committed_size();
    // A watermark's last_batch_bytes is the committed END of a row, which
    // is not 8-byte aligned when the payload has a variable-width tail;
    // row HEADERS are aligned (RowBatch::AppendEncoded), so the first
    // suffix row starts at the next 8-byte boundary.
    uint32_t offset =
        (from.num_batches != 0 && b == from.num_batches - 1)
            ? static_cast<uint32_t>((from.last_batch_bytes + 7) & ~size_t{7})
            : 0;
    while (offset + 8 < limit) {
      fn(batch->payload_at(offset));
      offset = batch->NextRowOffset(offset, schema);
    }
  }
}

namespace {

/// True when the cut entry can actually serve the probe (matching column,
/// matching kind, structure present).
bool EntryServes(const SecondaryIndexCut::Entry* entry,
                 const SecondaryProbe& probe) {
  if (entry == nullptr) return false;
  if (probe.kind == SecondaryIndexKind::kBitmap) return entry->bitmap != nullptr;
  if (probe.kind == SecondaryIndexKind::kRange) return entry->range != nullptr;
  return false;
}

/// Intersects two ascending position lists (two-pointer merge); the result
/// is the bitmap-AND of two probes' row sets.
std::vector<uint32_t> IntersectSorted(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  out.reserve(std::min(a.size(), b.size()));
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  return out;
}

}  // namespace

size_t IndexedPartition::View::ProbeSecondary(
    const std::vector<SecondaryProbe>& probes,
    std::vector<const uint8_t*>* out, SecondaryProbeStats* stats) const {
  SecondaryProbeStats local;
  const Schema& schema = *schema_;
  auto all_match = [&](const uint8_t* payload) {
    for (const SecondaryProbe& probe : probes) {
      if (RawColumnIsNull(payload, probe.column)) return false;
      if (!ProbeMatches(probe, DecodeColumn(payload, schema, probe.column))) {
        return false;
      }
    }
    return true;
  };
  auto scan_match = [&](const uint8_t* payload) {
    ++local.suffix_scanned;
    if (all_match(payload)) {
      out->push_back(payload);
      ++local.matches;
    }
  };
  bool servable = !probes.empty() && secondary_ != nullptr;
  if (servable) {
    for (const SecondaryProbe& probe : probes) {
      if (!EntryServes(secondary_->Find(probe.column), probe)) {
        servable = false;
        break;
      }
    }
  }
  if (!servable) {
    // The view predates some index (or carries none): a full scan returns
    // the identical row set, so correctness never depends on index state.
    ScanRaw(scan_match);
    if (stats != nullptr) *stats = local;
    return local.matches;
  }
  local.used_index = true;

  // Indexed prefix: each probe yields ascending positions from the cut;
  // ANDed probes intersect them (the bitmap-AND path). Emission stays in
  // append order — the same order a scan yields — resolved through the
  // payload directory.
  std::vector<uint32_t> positions;
  for (size_t i = 0; i < probes.size(); ++i) {
    const SecondaryProbe& probe = probes[i];
    const SecondaryIndexCut::Entry* entry = secondary_->Find(probe.column);
    std::vector<uint32_t> hits;
    if (probe.kind == SecondaryIndexKind::kBitmap) {
      entry->bitmap->Probe(probe.keys, &hits);
    } else {
      entry->range->Probe(probe.lo, probe.lo_inclusive, probe.hi,
                          probe.hi_inclusive, &hits);
    }
    std::sort(hits.begin(), hits.end());
    if (i == 0) {
      positions = std::move(hits);
    } else {
      positions = IntersectSorted(positions, hits);
    }
    if (positions.empty()) break;
  }
  const PayloadDirectory& dir = *secondary_->directory;
  for (uint32_t pos : positions) out->push_back(dir.At(pos));
  local.from_index = positions.size();
  local.matches = positions.size();
  local.rows_avoided =
      static_cast<size_t>(secondary_->covered) - positions.size();

  // Unindexed suffix: rows appended between the cut's publish boundary and
  // this view's watermark (possibly none). Snapshot() captured the cut
  // before the watermark, so the suffix starts at or before the watermark.
  ScanRawFrom(secondary_->boundary, scan_match);
  if (stats != nullptr) *stats = local;
  return local.matches;
}

uint64_t IndexedPartition::View::EstimateProbeMatches(const SecondaryProbe& probe,
                                                      bool* has_index) const {
  const SecondaryIndexCut::Entry* entry =
      secondary_ != nullptr ? secondary_->Find(probe.column) : nullptr;
  if (!EntryServes(entry, probe)) {
    *has_index = false;
    return watermark_.num_rows;
  }
  *has_index = true;
  uint64_t est = 0;
  if (probe.kind == SecondaryIndexKind::kBitmap) {
    for (const Value& k : probe.keys) est += entry->bitmap->CountFor(k);
  } else {
    est = entry->range->CountInRange(probe.lo, probe.lo_inclusive, probe.hi,
                                     probe.hi_inclusive);
  }
  // Suffix rows are unindexed; count them all as matches so the estimate
  // errs toward the scan when the index lags far behind.
  est += watermark_.num_rows - secondary_->covered;
  return est;
}

SecondaryIndexKind IndexedPartition::View::SecondaryKindOf(int column) const {
  const SecondaryIndexCut::Entry* entry =
      secondary_ != nullptr ? secondary_->Find(column) : nullptr;
  if (entry == nullptr) return SecondaryIndexKind::kNone;
  return entry->spec.kind;
}

}  // namespace idf
