#include "indexed/indexed_partition.h"

#include "common/logging.h"

namespace idf {

IndexedPartition::IndexedPartition(SchemaPtr schema, int indexed_col,
                                   const EngineConfig& config)
    : schema_(std::move(schema)),
      indexed_col_(indexed_col),
      store_(config.row_batch_bytes, config.max_row_bytes) {}

Status IndexedPartition::Append(const Row& row) {
  const Value& key = row[static_cast<size_t>(indexed_col_)];
  if (key.is_null()) {
    // Stored but unindexed; lookups of a null key return nothing.
    return store_
        .AppendRow(*schema_, row, PackedPointer::Null(), /*prev_size=*/0)
        .status();
  }
  uint64_t h = key.Hash();
  std::optional<uint64_t> head = index_.Lookup(h);
  PackedPointer back_pointer = PackedPointer::Null();
  uint32_t prev_size = 0;
  if (head.has_value()) {
    back_pointer = PackedPointer(*head);
    prev_size = EncodedRowSize(store_.PayloadAt(back_pointer), *schema_);
  }
  IDF_ASSIGN_OR_RETURN(PackedPointer ptr,
                       store_.AppendRow(*schema_, row, back_pointer, prev_size));
  // Publish after the row bytes are committed: concurrent readers that see
  // this trie entry can safely dereference the pointer.
  index_.Insert(h, ptr.bits());
  return Status::OK();
}

IndexedPartition::View IndexedPartition::Snapshot() const {
  // Order matters: trie snapshot first, watermark second, so every pointer
  // reachable from the snapshot is covered by the watermark.
  CTrie trie = index_.ReadOnlySnapshot();
  StoreWatermark wm = store_.Watermark();
  return View(this, std::move(trie), wm);
}

bool IndexedPartition::View::InView(PackedPointer ptr) const {
  if (ptr.is_null()) return false;
  if (ptr.batch() + 1 < watermark_.num_batches) return true;
  if (ptr.batch() + 1 > watermark_.num_batches) return false;
  return ptr.offset() < watermark_.last_batch_bytes;
}

RowVec IndexedPartition::View::GetRows(const Value& key) const {
  RowVec out;
  const Schema& schema = *part_->schema_;
  ForEachRawRow(key, [&out, &schema](const uint8_t* payload) {
    out.push_back(DecodeRow(payload, schema));
  });
  return out;
}

size_t IndexedPartition::View::GetRawRows(
    const Value& key, std::vector<const uint8_t*>* out) const {
  return ForEachRawRow(key,
                       [out](const uint8_t* payload) { out->push_back(payload); });
}

void IndexedPartition::View::ScanChain(
    const Value& key, const std::function<void(PackedPointer)>& fn) const {
  if (key.is_null()) return;
  std::optional<uint64_t> head = trie_.Lookup(key.Hash());
  if (!head.has_value()) return;
  for (PackedPointer ptr(*head); !ptr.is_null();
       ptr = part_->store_.BackPointerAt(ptr)) {
    fn(ptr);
  }
}

void IndexedPartition::View::Scan(const std::function<void(const Row&)>& fn) const {
  const Schema& schema = *part_->schema_;
  ScanRaw([&fn, &schema](const uint8_t* payload) {
    fn(DecodeRow(payload, schema));
  });
}

void IndexedPartition::View::ScanRaw(
    const std::function<void(const uint8_t*)>& fn) const {
  const Schema& schema = *part_->schema_;
  for (uint32_t b = 0; b < watermark_.num_batches; ++b) {
    const RowBatch* batch = part_->store_.BatchAt(b);
    size_t limit = (b + 1 == watermark_.num_batches) ? watermark_.last_batch_bytes
                                                     : batch->committed_size();
    uint32_t offset = 0;
    while (offset + 8 < limit) {
      fn(batch->payload_at(offset));
      offset = batch->NextRowOffset(offset, schema);
    }
  }
}

}  // namespace idf
