#include "indexed/bitmap_index.h"

#include <algorithm>

namespace idf {

void BitmapSegment::Set(uint32_t offset) {
  if (!is_dense()) {
    if (sparse.size() < kBitmapDenseThreshold) {
      sparse.push_back(static_cast<uint16_t>(offset));
      ++count;
      return;
    }
    // Past break-even: convert to the dense 4096-bit form.
    dense.assign(kBitmapSegmentSpan / 64, 0);
    for (uint16_t o : sparse) dense[o >> 6] |= uint64_t{1} << (o & 63);
    sparse.clear();
    sparse.shrink_to_fit();
  }
  dense[offset >> 6] |= uint64_t{1} << (offset & 63);
  ++count;
}

void BitmapSegment::AppendPositions(std::vector<uint32_t>* out) const {
  if (!is_dense()) {
    for (uint16_t o : sparse) out->push_back(base + o);
    return;
  }
  for (size_t w = 0; w < dense.size(); ++w) {
    uint64_t bits = dense[w];
    while (bits != 0) {
      const int b = __builtin_ctzll(bits);
      out->push_back(base + static_cast<uint32_t>(w * 64 + b));
      bits &= bits - 1;
    }
  }
}

uint64_t BitmapIndexCut::CountFor(const Value& key) const {
  auto it = postings_.find(key);
  return it == postings_.end() ? 0 : it->second.count;
}

size_t BitmapIndexCut::Probe(const std::vector<Value>& keys,
                             std::vector<uint32_t>* out) const {
  size_t appended = 0;
  for (const Value& key : keys) {
    auto it = postings_.find(key);
    if (it == postings_.end()) continue;
    for (const BitmapSegmentPtr& seg : it->second.segments) {
      seg->AppendPositions(out);
      appended += seg->count;
    }
  }
  return appended;
}

size_t BitmapIndexCut::MemoryBytesEstimate() const {
  size_t bytes = sizeof(*this);
  for (const auto& [value, posting] : postings_) {
    (void)value;
    bytes += sizeof(posting) +
             posting.segments.size() * sizeof(BitmapSegmentPtr);
    for (const BitmapSegmentPtr& seg : posting.segments) {
      bytes += sizeof(BitmapSegment) + seg->sparse.size() * sizeof(uint16_t) +
               seg->dense.size() * sizeof(uint64_t);
    }
  }
  return bytes;
}

void BitmapIndexBuilder::Add(const Value& key, uint32_t pos) {
  Posting& p = postings_[key];
  const uint32_t base = pos - (pos % kBitmapSegmentSpan);
  if (p.has_tail && p.tail.base != base) {
    // Positions are ascending, so a new window seals the old tail for
    // good: every future cut shares the same immutable segment.
    auto sealed = std::make_shared<BitmapSegment>(std::move(p.tail));
    p.sealed.push_back(std::move(sealed));
    p.has_tail = false;
  }
  if (!p.has_tail) {
    p.tail = BitmapSegment{};
    p.tail.base = base;
    p.has_tail = true;
  }
  p.tail.Set(pos - base);
  p.tail_dirty = true;
  p.tail_copy.reset();
  p.count += 1;
  total_count_ += 1;
}

BitmapIndexCutPtr BitmapIndexBuilder::BuildCut(uint64_t epoch) {
  auto cut = std::make_shared<BitmapIndexCut>();
  cut->postings_.reserve(postings_.size());
  cut->total_count_ = total_count_;
  for (auto& [value, p] : postings_) {
    BitmapPosting out;
    out.segments.reserve(p.sealed.size() + (p.has_tail ? 1 : 0));
    out.segments.assign(p.sealed.begin(), p.sealed.end());
    if (p.has_tail) {
      if (p.tail_dirty || p.tail_copy == nullptr) {
        auto copy = std::make_shared<BitmapSegment>(p.tail);
        copy->epoch = epoch;
        p.tail_copy = std::move(copy);
        p.tail_dirty = false;
      }
      out.segments.push_back(p.tail_copy);
    }
    out.count = p.count;
    cut->postings_.emplace(value, std::move(out));
  }
  return cut;
}

}  // namespace idf
