// MultiIndexedTable: one logical updatable table carrying several indexes
// (an extension beyond the paper's one-index-per-DataFrame Listing 1 — the
// pattern its own evaluation needs, e.g. `post` indexed both by `id` for
// SQ4 and by `creatorId` for SQ2).
//
// Each index is a full IndexedRelation (hash partitioned on its own key);
// appends fan out to every index so all of them stay consistent. Lookup
// and join entry points pick the index matching the requested column, and
// queries through any index's DataFrame view get the usual Catalyst
// rewrites.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "indexed/indexed_dataframe.h"

namespace idf {

class MultiIndexedTable {
 public:
  /// Builds one index per entry of `index_columns` (names must be distinct
  /// columns of df's schema).
  static Result<MultiIndexedTable> Create(
      const DataFrame& df, const std::vector<std::string>& index_columns,
      const std::string& name = "multi_indexed");

  const SchemaPtr& schema() const { return schema_; }
  const std::string& name() const { return name_; }

  /// Columns that carry an index, in creation order.
  std::vector<std::string> IndexedColumns() const;

  bool HasIndexOn(const std::string& column) const {
    return indexes_.count(column) > 0;
  }

  /// The IndexedDataFrame for one index (KeyError if absent).
  Result<IndexedDataFrame> Index(const std::string& column) const;

  /// Point lookup via the index on `column`.
  Result<DataFrame> GetRows(const std::string& column, const Value& key) const;

  /// Index-powered join: the index on `table_col` is the build side.
  Result<DataFrame> Join(const DataFrame& probe, const std::string& table_col,
                         const std::string& probe_col,
                         JoinType join_type = JoinType::kInner) const;

  /// Registers a secondary index on `column` (see DESIGN.md §14 for
  /// choosing a kind: bitmap for low-cardinality equality/IN, range for
  /// inequality/BETWEEN). Applied to every underlying primary index's
  /// relation, so queries through any access path can use it; from then on
  /// appends maintain it inside the existing per-partition batch locks.
  Status AddBitmapIndex(const std::string& column) const;
  Status AddRangeIndex(const std::string& column) const;
  Status AddSecondaryIndex(const std::string& column,
                           SecondaryIndexKind kind) const;

  /// Appends rows to every index (each index's writer locks serialize
  /// per-partition; all indexes see the batch before this returns).
  Status AppendRows(const DataFrame& df) const;
  Status AppendRowsDirect(const RowVec& rows) const;

  /// Scan view through the first index (any index holds all rows).
  Result<DataFrame> ToDataFrame() const;

  size_t NumRows() const;

  /// Total bytes across all indexes: the storage cost of multi-indexing
  /// (each index keeps its own partitioned row batches).
  size_t TotalDataBytes() const;
  size_t TotalIndexBytes() const;

 private:
  MultiIndexedTable(std::string name, SchemaPtr schema, SessionPtr session)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        session_(std::move(session)) {}

  std::string name_;
  SchemaPtr schema_;
  SessionPtr session_;
  std::vector<std::string> order_;
  std::map<std::string, std::shared_ptr<IndexedDataFrame>> indexes_;
};

}  // namespace idf
