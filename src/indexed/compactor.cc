#include "indexed/compactor.h"

#include "common/logging.h"

namespace idf {

Compactor::Compactor(IndexedRelationPtr rel, CompactionConfig config,
                     QueryMetrics* metrics, std::function<uint64_t()> epoch_fn)
    : rel_(std::move(rel)),
      config_(config),
      metrics_(metrics),
      epoch_fn_(std::move(epoch_fn)) {
  IDF_CHECK(rel_ != nullptr) << "Compactor needs a relation";
}

Compactor::~Compactor() { Stop(); }

Result<size_t> Compactor::RunOnce() {
  size_t compacted = 0;
  const int parts = rel_->num_partitions();
  for (int p = 0; p < parts; ++p) {
    if (config_.max_partitions_per_pass > 0 &&
        compacted >= config_.max_partitions_per_pass) {
      break;  // remaining partitions wait for the next pass
    }
    bool should = false;
    {
      std::lock_guard<std::mutex> lock(rel_->partition_write_lock(p));
      const IndexedPartition& part = rel_->partition(p);
      if (part.num_rows() >= config_.min_partition_rows) {
        should = part.ChainStats().MeanBatchSpan() > config_.max_mean_batch_span;
      }
    }
    // Re-acquires inside CompactPartition: the trigger check is advisory
    // (a racing append can only increase fragmentation, never make a
    // compaction wrong).
    if (should) {
      if (compacted > 0 && config_.partition_pacing.count() > 0) {
        // Pace between rewrites so one pass over a fragmented relation
        // does not monopolize a core; a stop request cuts the wait short.
        std::unique_lock<std::mutex> lock(worker_mu_);
        worker_cv_.wait_for(lock, config_.partition_pacing,
                            [this] { return stop_requested_; });
        if (stop_requested_) break;
      }
      IDF_RETURN_NOT_OK(CompactPartition(p));
      ++compacted;
    }
  }
  DrainRetired();
  return compacted;
}

Status Compactor::CompactPartition(int p) {
  IndexedPartition::CompactionResult result;
  {
    std::lock_guard<std::mutex> lock(rel_->partition_write_lock(p));
    IDF_RETURN_NOT_OK(rel_->mutable_partition(p).CompactLocked(&result));
  }
  Retire(std::move(result.retired), result.retired_bytes);
  {
    std::lock_guard<std::mutex> lock(mu_);
    counters_.compactions_run += 1;
    counters_.chains_rewritten += result.chains_rewritten;
    counters_.links_rewritten += result.links_rewritten;
  }
  if (metrics_ != nullptr) {
    metrics_->AddCompactionsRun(1);
    metrics_->AddChainLinksRewritten(result.links_rewritten);
  }
  return Status::OK();
}

void Compactor::Retire(PartitionGenerationPtr gen, size_t bytes) {
  const uint64_t epoch = epoch_fn_ ? epoch_fn_() : 0;
  std::lock_guard<std::mutex> lock(mu_);
  counters_.generations_retired += 1;
  retired_.push_back(RetiredGen{std::move(gen), epoch, bytes});
}

size_t Compactor::DrainRetired() {
  size_t freed = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = retired_.begin(); it != retired_.end();) {
    // use_count()==1 means the list is the only holder left: the live
    // generation pointer was swapped out at retirement and every view
    // (epoch pin) captured before then has been destroyed. No new
    // reference can appear afterwards, so the check is stable.
    if (it->gen.use_count() == 1) {
      const size_t bytes = it->bytes;
      it = retired_.erase(it);
      counters_.bytes_reclaimed += bytes;
      if (metrics_ != nullptr) metrics_->AddBytesReclaimed(bytes);
      ++freed;
    } else {
      ++it;
    }
  }
  counters_.retired_pending = retired_.size();
  return freed;
}

Compactor::Stats Compactor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = counters_;
  s.retired_pending = retired_.size();
  return s;
}

void Compactor::Start() {
  std::lock_guard<std::mutex> lock(worker_mu_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  worker_ = std::thread([this] { BackgroundLoop(); });
}

void Compactor::Stop() {
  {
    std::lock_guard<std::mutex> lock(worker_mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  worker_cv_.notify_all();
  worker_.join();
  {
    std::lock_guard<std::mutex> lock(worker_mu_);
    running_ = false;
  }
}

void Compactor::BackgroundLoop() {
  std::unique_lock<std::mutex> lock(worker_mu_);
  while (!stop_requested_) {
    if (worker_cv_.wait_for(lock, config_.interval,
                            [this] { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    Result<size_t> res = RunOnce();
    if (!res.ok()) {
      IDF_LOG(Warning) << "background compaction pass failed: "
                       << res.status().ToString();
    }
    lock.lock();
  }
}

}  // namespace idf
