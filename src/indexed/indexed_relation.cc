#include "indexed/indexed_relation.h"

#include "common/logging.h"
#include "engine/shuffle.h"

namespace idf {

RowVec IndexedRelationSnapshot::GetRows(const Value& key) const {
  if (key.is_null() || views_.empty()) return {};
  int p = partitioner_.PartitionOf(key);
  return views_[static_cast<size_t>(p)].GetRows(key);
}

size_t IndexedRelationSnapshot::num_rows() const {
  size_t n = 0;
  for (const auto& v : views_) n += v.num_rows();
  return n;
}

IndexedRelation::IndexedRelation(std::string name, SchemaPtr schema,
                                 int indexed_col, const EngineConfig& config)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      indexed_col_(indexed_col),
      partitioner_(config.num_partitions),
      write_locks_(new std::mutex[static_cast<size_t>(config.num_partitions)]) {
  partitions_.reserve(static_cast<size_t>(config.num_partitions));
  for (int p = 0; p < config.num_partitions; ++p) {
    partitions_.push_back(
        std::make_unique<IndexedPartition>(schema_, indexed_col_, config));
  }
}

Result<IndexedRelationPtr> IndexedRelation::Make(std::string name, SchemaPtr schema,
                                                 int indexed_col,
                                                 const EngineConfig& config) {
  EngineConfig resolved = config.Resolved();
  IDF_RETURN_NOT_OK(resolved.Validate());
  if (indexed_col < 0 || indexed_col >= schema->num_fields()) {
    return Status::IndexError("indexed column ordinal " +
                              std::to_string(indexed_col) +
                              " out of range for schema " + schema->ToString());
  }
  return IndexedRelationPtr(new IndexedRelation(std::move(name), std::move(schema),
                                                indexed_col, resolved));
}

Result<IndexedRelationPtr> IndexedRelation::Build(ExecutorContext& ctx,
                                                  std::string name,
                                                  SchemaPtr schema, int indexed_col,
                                                  const RowVec& rows) {
  IDF_ASSIGN_OR_RETURN(IndexedRelationPtr rel,
                       Make(std::move(name), std::move(schema), indexed_col,
                            ctx.config()));
  IDF_RETURN_NOT_OK(rel->AppendRows(ctx, rows));
  return rel;
}

Status IndexedRelation::AppendRows(ExecutorContext& ctx, const RowVec& rows) {
  const int num_parts = num_partitions();
  // Map side of the index-creation shuffle: route rows by key hash.
  std::vector<std::vector<const Row*>> routed(static_cast<size_t>(num_parts));
  uint64_t bytes = 0;
  for (const Row& row : rows) {
    IDF_RETURN_NOT_OK(ValidateRow(*schema_, row));
    const Value& key = row[static_cast<size_t>(indexed_col_)];
    int target = key.is_null() ? 0 : partitioner_.PartitionOf(key);
    bytes += EstimateRowBytes(row);
    routed[static_cast<size_t>(target)].push_back(&row);
  }
  ctx.metrics().AddShuffledRows(rows.size());
  ctx.metrics().AddShuffledBytes(bytes);

  // Reduce side: append each partition's slice under its writer lock.
  std::vector<Status> statuses(static_cast<size_t>(num_parts));
  ctx.pool().ParallelFor(static_cast<size_t>(num_parts), [&](size_t p) {
    ctx.metrics().AddTask();
    if (routed[p].empty()) return;
    std::lock_guard<std::mutex> lock(write_locks_[p]);
    for (const Row* row : routed[p]) {
      Status st = partitions_[p]->Append(*row);
      if (!st.ok()) {
        statuses[p] = st;
        return;
      }
    }
  });
  for (const Status& st : statuses) {
    IDF_RETURN_NOT_OK(st);
  }
  version_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status IndexedRelation::AppendRow(const Row& row) {
  IDF_RETURN_NOT_OK(ValidateRow(*schema_, row));
  const Value& key = row[static_cast<size_t>(indexed_col_)];
  int target = key.is_null() ? 0 : partitioner_.PartitionOf(key);
  {
    std::lock_guard<std::mutex> lock(write_locks_[static_cast<size_t>(target)]);
    IDF_RETURN_NOT_OK(partitions_[static_cast<size_t>(target)]->Append(row));
  }
  version_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

RowVec IndexedRelation::GetRows(const Value& key) const {
  if (key.is_null()) return {};
  int p = partitioner_.PartitionOf(key);
  return partitions_[static_cast<size_t>(p)]->GetRows(key);
}

IndexedRelationSnapshot IndexedRelation::Snapshot() const {
  std::vector<IndexedPartition::View> views;
  views.reserve(partitions_.size());
  for (const auto& p : partitions_) views.push_back(p->Snapshot());
  return IndexedRelationSnapshot(schema_, indexed_col_, partitioner_,
                                 std::move(views));
}

size_t IndexedRelation::num_rows() const {
  size_t n = 0;
  for (const auto& p : partitions_) n += p->num_rows();
  return n;
}

size_t IndexedRelation::data_bytes() const {
  size_t n = 0;
  for (const auto& p : partitions_) n += p->data_bytes();
  return n;
}

size_t IndexedRelation::index_bytes() const {
  size_t n = 0;
  for (const auto& p : partitions_) n += p->index_bytes();
  return n;
}

size_t IndexedRelation::arena_bytes() const {
  size_t n = 0;
  for (const auto& p : partitions_) n += p->arena_bytes();
  return n;
}

}  // namespace idf
