#include "indexed/indexed_relation.h"

#include "common/logging.h"
#include "engine/shuffle.h"

namespace idf {

size_t EncodedRowBatch::total_bytes() const {
  size_t n = 0;
  for (const auto& b : buffers) n += b.size();
  return n;
}

Result<EncodedRowBatch> EncodeRowBatch(ExecutorContext& ctx, const Schema& schema,
                                       const RowVec& rows) {
  EncodedRowBatch out;
  out.spans.resize(rows.size());
  if (rows.empty()) return out;

  const bool parallel =
      ctx.pool().num_threads() > 1 &&
      rows.size() >= ctx.config().append_parallel_min_rows;
  const size_t grain = parallel ? ctx.MorselGrain(rows.size()) : rows.size();
  const size_t num_chunks = (rows.size() + grain - 1) / grain;
  out.buffers.resize(num_chunks);
  std::vector<Status> statuses(num_chunks);

  auto encode_chunk = [&](size_t begin, size_t end) {
    const size_t chunk = begin / grain;
    std::vector<uint8_t>& buf = out.buffers[chunk];
    buf.reserve((end - begin) * 64);
    std::vector<uint8_t> scratch;
    for (size_t i = begin; i < end; ++i) {
      Status st = ValidateRow(schema, rows[i]);
      if (!st.ok()) {
        statuses[chunk] = std::move(st);
        return;
      }
      EncodeRowUnchecked(schema, rows[i], &scratch);
      out.spans[i] = {static_cast<uint32_t>(chunk),
                      static_cast<uint32_t>(buf.size()),
                      static_cast<uint32_t>(scratch.size())};
      buf.insert(buf.end(), scratch.begin(), scratch.end());
    }
  };

  if (parallel) {
    ctx.pool().ParallelForRange(rows.size(), grain, encode_chunk,
                                ctx.cancellation());
    IDF_RETURN_NOT_OK(ctx.CheckCancelled());
    ctx.metrics().AddRowsAppendedParallel(rows.size());
  } else {
    encode_chunk(0, rows.size());
  }
  for (Status& st : statuses) {
    IDF_RETURN_NOT_OK(st);
  }
  return out;
}

RowVec IndexedRelationSnapshot::GetRows(const Value& key) const {
  if (key.is_null() || views_.empty()) return {};
  int p = partitioner_.PartitionOf(key);
  return views_[static_cast<size_t>(p)].GetRows(key);
}

size_t IndexedRelationSnapshot::num_rows() const {
  size_t n = 0;
  for (const auto& v : views_) n += v.num_rows();
  return n;
}

SecondaryIndexKind IndexedRelationSnapshot::SecondaryKindOf(int column) const {
  SecondaryIndexKind kind = SecondaryIndexKind::kNone;
  for (const auto& v : views_) {
    const SecondaryIndexKind k = v.SecondaryKindOf(column);
    if (k == SecondaryIndexKind::kNone) return SecondaryIndexKind::kNone;
    if (kind == SecondaryIndexKind::kNone) kind = k;
    if (k != kind) return SecondaryIndexKind::kNone;
  }
  return views_.empty() ? SecondaryIndexKind::kNone : kind;
}

uint64_t IndexedRelationSnapshot::EstimateProbeMatches(
    const SecondaryProbe& probe) const {
  uint64_t est = 0;
  bool has_index = false;
  for (const auto& v : views_) est += v.EstimateProbeMatches(probe, &has_index);
  return est;
}

IndexedRelation::IndexedRelation(std::string name, SchemaPtr schema,
                                 int indexed_col, const EngineConfig& config)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      indexed_col_(indexed_col),
      partitioner_(config.num_partitions),
      write_locks_(new std::mutex[static_cast<size_t>(config.num_partitions)]) {
  partitions_.reserve(static_cast<size_t>(config.num_partitions));
  for (int p = 0; p < config.num_partitions; ++p) {
    partitions_.push_back(
        std::make_unique<IndexedPartition>(schema_, indexed_col_, config));
  }
}

Result<IndexedRelationPtr> IndexedRelation::Make(std::string name, SchemaPtr schema,
                                                 int indexed_col,
                                                 const EngineConfig& config) {
  EngineConfig resolved = config.Resolved();
  IDF_RETURN_NOT_OK(resolved.Validate());
  if (indexed_col < 0 || indexed_col >= schema->num_fields()) {
    return Status::IndexError("indexed column ordinal " +
                              std::to_string(indexed_col) +
                              " out of range for schema " + schema->ToString());
  }
  return IndexedRelationPtr(new IndexedRelation(std::move(name), std::move(schema),
                                                indexed_col, resolved));
}

Result<IndexedRelationPtr> IndexedRelation::Build(ExecutorContext& ctx,
                                                  std::string name,
                                                  SchemaPtr schema, int indexed_col,
                                                  const RowVec& rows) {
  IDF_ASSIGN_OR_RETURN(IndexedRelationPtr rel,
                       Make(std::move(name), std::move(schema), indexed_col,
                            ctx.config()));
  IDF_RETURN_NOT_OK(rel->AppendRows(ctx, rows));
  return rel;
}

Status IndexedRelation::AppendRows(ExecutorContext& ctx, const RowVec& rows) {
  // Encode (and validate) the whole batch before touching any partition
  // lock; on multi-core hosts this runs in parallel morsels.
  IDF_ASSIGN_OR_RETURN(EncodedRowBatch enc, EncodeRowBatch(ctx, *schema_, rows));
  return AppendEncoded(ctx, rows, enc);
}

Status IndexedRelation::AppendEncoded(ExecutorContext& ctx, const RowVec& rows,
                                      const EncodedRowBatch& enc) {
  if (enc.num_rows() != rows.size()) {
    return Status::InvalidArgument(
        "AppendEncoded: encoded batch of " + std::to_string(enc.num_rows()) +
        " rows does not match " + std::to_string(rows.size()) + " source rows");
  }
  const int num_parts = num_partitions();
  // Map side of the index-creation shuffle: route rows by key hash. The
  // key is read from the source row (each index of a multi-indexed table
  // routes the same encoded bytes by its own column).
  std::vector<std::vector<IndexedPartition::EncodedRowRef>> routed(
      static_cast<size_t>(num_parts));
  for (size_t i = 0; i < rows.size(); ++i) {
    const Value& key = rows[i][static_cast<size_t>(indexed_col_)];
    IndexedPartition::EncodedRowRef ref{enc.payload(i), enc.size(i), 0, false};
    int target = 0;
    if (!key.is_null()) {
      ref.hash = key.Hash();
      ref.indexed = true;
      target = partitioner_.PartitionOfHash(ref.hash);
    }
    routed[static_cast<size_t>(target)].push_back(ref);
  }
  ctx.metrics().AddShuffledRows(rows.size());
  ctx.metrics().AddShuffledBytes(enc.total_bytes());

  // Reduce side: apply each partition's group under ONE write-lock
  // acquisition (lock acquisitions per batch == partitions touched).
  std::vector<Status> statuses(static_cast<size_t>(num_parts));
  std::atomic<size_t> appended{0};
  std::atomic<uint64_t> bitmap_us{0};
  std::atomic<uint64_t> range_us{0};
  ctx.pool().ParallelFor(static_cast<size_t>(num_parts), [&](size_t p) {
    ctx.metrics().AddTask();
    if (routed[p].empty()) return;
    IndexedPartition::AppendBatchResult result;
    {
      std::lock_guard<std::mutex> lock(write_locks_[p]);
      ctx.metrics().AddAppendPartitionLocks(1);
      statuses[p] = partitions_[p]->AppendBatch(routed[p], &result);
    }
    appended.fetch_add(result.rows_appended, std::memory_order_relaxed);
    bitmap_us.fetch_add(result.maintenance.bitmap_us, std::memory_order_relaxed);
    range_us.fetch_add(result.maintenance.range_us, std::memory_order_relaxed);
  });
  ctx.metrics().AddBitmapMaintenanceUs(bitmap_us.load(std::memory_order_relaxed));
  ctx.metrics().AddRangeMaintenanceUs(range_us.load(std::memory_order_relaxed));
  for (const Status& st : statuses) {
    IDF_RETURN_NOT_OK(st);
  }
  if (appended.load(std::memory_order_relaxed) != rows.size()) {
    return Status::Internal(
        "append batch landed " + std::to_string(appended.load()) + " of " +
        std::to_string(rows.size()) + " rows");
  }
  ctx.metrics().AddAppendBatches(1);
  // One version bump per batch: the whole batch becomes snapshot-visible
  // as a single logical commit.
  version_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status IndexedRelation::AppendRow(const Row& row) {
  IDF_RETURN_NOT_OK(ValidateRow(*schema_, row));
  const Value& key = row[static_cast<size_t>(indexed_col_)];
  int target = key.is_null() ? 0 : partitioner_.PartitionOf(key);
  {
    std::lock_guard<std::mutex> lock(write_locks_[static_cast<size_t>(target)]);
    IDF_RETURN_NOT_OK(partitions_[static_cast<size_t>(target)]->Append(row));
  }
  version_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status IndexedRelation::AddSecondaryIndex(const std::string& column,
                                          SecondaryIndexKind kind) {
  IDF_ASSIGN_OR_RETURN(int col, schema_->ResolveFieldIndex(column));
  const SecondaryIndexSpec spec{col, kind};
  for (size_t p = 0; p < partitions_.size(); ++p) {
    std::lock_guard<std::mutex> lock(write_locks_[p]);
    IDF_RETURN_NOT_OK(partitions_[p]->AddSecondaryIndexLocked(spec));
  }
  version_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

SecondaryIndexKind IndexedRelation::secondary_index_kind(int column) const {
  for (const SecondaryIndexSpec& s : secondary_specs()) {
    if (s.column == column) return s.kind;
  }
  return SecondaryIndexKind::kNone;
}

uint64_t IndexedRelation::EstimateSecondaryMatches(
    const SecondaryProbe& probe) const {
  // Costing-only read: per-partition cut statistics via fresh views (O(1)
  // each, no locks).
  uint64_t est = 0;
  bool has_index = false;
  for (const auto& p : partitions_) {
    est += p->Snapshot().EstimateProbeMatches(probe, &has_index);
  }
  return est;
}

RowVec IndexedRelation::GetRows(const Value& key) const {
  if (key.is_null()) return {};
  int p = partitioner_.PartitionOf(key);
  return partitions_[static_cast<size_t>(p)]->GetRows(key);
}

IndexedRelationSnapshot IndexedRelation::Snapshot() const {
  std::vector<IndexedPartition::View> views;
  views.reserve(partitions_.size());
  for (const auto& p : partitions_) views.push_back(p->Snapshot());
  return IndexedRelationSnapshot(schema_, indexed_col_, partitioner_,
                                 std::move(views));
}

ChainStatsSnapshot IndexedRelation::ChainStats() const {
  ChainStatsSnapshot total;
  for (size_t p = 0; p < partitions_.size(); ++p) {
    // The per-key stats map is appender-owned; serialize with writers.
    std::lock_guard<std::mutex> lock(write_locks_[p]);
    total.Merge(partitions_[p]->ChainStats());
  }
  return total;
}

size_t IndexedRelation::num_rows() const {
  size_t n = 0;
  for (const auto& p : partitions_) n += p->num_rows();
  return n;
}

size_t IndexedRelation::data_bytes() const {
  size_t n = 0;
  for (const auto& p : partitions_) n += p->data_bytes();
  return n;
}

size_t IndexedRelation::index_bytes() const {
  size_t n = 0;
  for (const auto& p : partitions_) n += p->index_bytes();
  return n;
}

size_t IndexedRelation::arena_bytes() const {
  size_t n = 0;
  for (const auto& p : partitions_) n += p->arena_bytes();
  return n;
}

}  // namespace idf
