// Compactor: background chain maintenance for an IndexedRelation.
//
// Sustained update streams fragment per-key chains across row batches: a
// key touched by many append batches ends up with its chain scattered over
// as many batches, and the newest-first chain walk degrades into one cache
// miss per link (CUBIT and Shared Arrangements both observe that
// concurrent updatable indexes need exactly this kind of background
// reorganization behind multiversioned snapshots). The Compactor watches
// the per-key chain stats IndexedPartition maintains at append time and,
// when a partition's mean chain batch-span crosses the configured
// threshold, rewrites every chain key-clustered (hottest first) into a
// fresh PartitionGeneration and swaps it in through the partition's
// snapshot mechanism. Logical contents never change: GetRows stays
// byte-identical, newest-first.
//
// Reclamation: a superseded generation's row batches cannot be freed while
// any View (e.g. a SnapshotManager epoch pin) still references them. The
// Compactor parks retired generations on an epoch-tagged reclamation list
// and frees each one only once its reference count shows no outside
// holders — i.e. after every pin taken before the compaction has drained.
// A pinned snapshot therefore never observes a torn or reclaimed row.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/metrics.h"
#include "indexed/indexed_relation.h"

namespace idf {

struct CompactionConfig {
  /// Compact a partition once the mean chain batch-span (mean over keys of
  /// the number of row batches a chain touches) exceeds this.
  double max_mean_batch_span = 4.0;

  /// Partitions with fewer rows than this are never compacted (a rewrite
  /// of a small partition costs more than the fragmentation it removes).
  size_t min_partition_rows = 4096;

  /// Background pass interval for Start().
  std::chrono::milliseconds interval{200};

  /// Upper bound on partitions compacted in one pass; the rest wait for a
  /// later pass. Bounds how much CPU one background pass can take from
  /// query workers on a heavily fragmented relation. 0 means unlimited.
  size_t max_partitions_per_pass = 0;

  /// Minimum wait between two partition rewrites within one pass, yielding
  /// the core to query morsels in between; Stop() cuts the wait short.
  /// 0 disables pacing. Defaults on: on hosts with fewer cores than the
  /// append+query+compaction threads contending for them, back-to-back
  /// partition rewrites otherwise monopolize a core for a whole pass and
  /// invert the lookup p99 the compactor exists to improve (DESIGN.md
  /// §11). 500us between rewrites costs a large fragmented pass a few
  /// milliseconds of extra wall time and keeps reader tails flat even on
  /// 1-core runners.
  std::chrono::microseconds partition_pacing{500};
};

class Compactor {
 public:
  /// `metrics` (optional) receives compactions_run / chain_links_rewritten
  /// / bytes_reclaimed. `epoch_fn` (optional) tags retired generations
  /// with the service epoch at retirement (e.g. SnapshotManager::epoch),
  /// purely observational — reclamation is driven by reference draining.
  explicit Compactor(IndexedRelationPtr rel, CompactionConfig config = {},
                     QueryMetrics* metrics = nullptr,
                     std::function<uint64_t()> epoch_fn = nullptr);
  ~Compactor();
  IDF_DISALLOW_COPY_AND_ASSIGN(Compactor);

  /// One pass: compacts every partition whose stats exceed the thresholds,
  /// then drains the reclamation list. Returns partitions compacted.
  /// Thread-safe against appenders and readers; one pass at a time.
  Result<size_t> RunOnce();

  /// Compacts one partition unconditionally (tests, benchmarks).
  Status CompactPartition(int p);

  /// Frees retired generations that no view references anymore. Returns
  /// the number of generations reclaimed. Called by RunOnce; exposed for
  /// deterministic tests.
  size_t DrainRetired();

  /// Starts the background thread (idempotent); Stop() joins it.
  void Start();
  void Stop();

  struct Stats {
    uint64_t compactions_run = 0;
    uint64_t chains_rewritten = 0;
    uint64_t links_rewritten = 0;
    uint64_t bytes_reclaimed = 0;
    uint64_t generations_retired = 0;
    uint64_t retired_pending = 0;  ///< retired but still pinned by views
  };
  Stats stats() const;

  const IndexedRelationPtr& relation() const { return rel_; }

 private:
  void Retire(PartitionGenerationPtr gen, size_t bytes);
  void BackgroundLoop();

  IndexedRelationPtr rel_;
  CompactionConfig config_;
  QueryMetrics* metrics_;
  std::function<uint64_t()> epoch_fn_;

  struct RetiredGen {
    PartitionGenerationPtr gen;
    uint64_t epoch;
    size_t bytes;
  };
  mutable std::mutex mu_;  // guards retired_ and counters_
  std::vector<RetiredGen> retired_;
  Stats counters_;

  std::thread worker_;
  std::mutex worker_mu_;
  std::condition_variable worker_cv_;
  bool stop_requested_ = false;
  bool running_ = false;
};

}  // namespace idf
