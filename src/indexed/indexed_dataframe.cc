#include "indexed/indexed_dataframe.h"

#include "indexed/indexed_rules.h"

namespace idf {

Result<IndexedDataFrame> IndexedDataFrame::CreateIndex(const DataFrame& df,
                                                       int col_no,
                                                       const std::string& name) {
  if (!df.valid()) return Status::InvalidArgument("empty DataFrame handle");
  SessionPtr session = df.session();
  InstallIndexedExtensions(*session);
  IDF_ASSIGN_OR_RETURN(SchemaPtr schema, df.schema());
  if (col_no < 0 || col_no >= schema->num_fields()) {
    return Status::IndexError("index column ordinal " + std::to_string(col_no) +
                              " out of range for schema " + schema->ToString());
  }
  IDF_ASSIGN_OR_RETURN(RowVec rows, df.Collect());
  IDF_ASSIGN_OR_RETURN(IndexedRelationPtr rel,
                       IndexedRelation::Build(session->exec(), name, schema,
                                              col_no, rows));
  return IndexedDataFrame(std::move(session), std::move(rel), /*cached=*/false);
}

Result<IndexedDataFrame> IndexedDataFrame::CreateIndex(const DataFrame& df,
                                                       const std::string& column,
                                                       const std::string& name) {
  IDF_ASSIGN_OR_RETURN(SchemaPtr schema, df.schema());
  IDF_ASSIGN_OR_RETURN(int col, schema->ResolveFieldIndex(column));
  return CreateIndex(df, col, name);
}

IndexedDataFrame IndexedDataFrame::Cache() const {
  return IndexedDataFrame(session_, rel_, /*cached=*/true);
}

DataFrame IndexedDataFrame::GetRows(const Value& key) const {
  return DataFrame(session_, std::make_shared<IndexedLookupNode>(rel_, key));
}

DataFrame IndexedDataFrame::GetRowsMulti(std::vector<Value> keys) const {
  return DataFrame(session_,
                   std::make_shared<IndexedLookupNode>(rel_, std::move(keys)));
}

Result<IndexedDataFrame> IndexedDataFrame::AppendRows(const DataFrame& df) const {
  IDF_ASSIGN_OR_RETURN(SchemaPtr append_schema, df.schema());
  if (!append_schema->Equals(*rel_->schema())) {
    return Status::InvalidArgument(
        "appendRows schema mismatch: " + append_schema->ToString() + " vs " +
        rel_->schema()->ToString());
  }
  IDF_ASSIGN_OR_RETURN(RowVec rows, df.Collect());
  IDF_RETURN_NOT_OK(rel_->AppendRows(session_->exec(), rows));
  return IndexedDataFrame(session_, rel_, cached_);
}

Status IndexedDataFrame::AppendRowsDirect(const RowVec& rows) const {
  return rel_->AppendRows(session_->exec(), rows);
}

DataFrame IndexedDataFrame::ToDataFrame() const {
  return DataFrame(session_, std::make_shared<IndexedScanNode>(rel_));
}

DataFrame IndexedDataFrame::PinnedView::ToDataFrame() const {
  return DataFrame(session_, std::make_shared<SnapshotScanNode>(snapshot_));
}

IndexedDataFrame::PinnedView IndexedDataFrame::Pin() const {
  return PinnedView(session_, rel_->Pin());
}

Result<DataFrame> IndexedDataFrame::Join(const DataFrame& probe, ExprPtr indexed_key,
                                         ExprPtr probe_key) const {
  // Build the regular Join plan; the IndexedJoinRule rewrites it because
  // the left child is an IndexedScan keyed on the indexed column. If the
  // key turns out not to be the indexed column, the plan transparently
  // falls back to a regular join — the paper's fallback behaviour.
  return ToDataFrame().Join(probe, std::move(indexed_key), std::move(probe_key));
}

Result<DataFrame> IndexedDataFrame::Join(const DataFrame& probe,
                                         const std::string& indexed_col,
                                         const std::string& probe_col) const {
  return Join(probe, Col(indexed_col), Col(probe_col));
}

double IndexedDataFrame::IndexOverheadRatio() const {
  size_t data = rel_->data_bytes();
  if (data == 0) return 0.0;
  return static_cast<double>(rel_->index_bytes()) / static_cast<double>(data);
}

}  // namespace idf
