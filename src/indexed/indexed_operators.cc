#include "indexed/indexed_operators.h"

#include <mutex>

namespace idf {

Result<PartitionVec> IndexedScanOp::Execute(ExecutorContext& ctx) {
  IndexedRelationSnapshot snap = rel_->Snapshot();
  PartitionVec out(static_cast<size_t>(snap.num_partitions()));
  ctx.pool().ParallelFor(out.size(), [&](size_t p) {
    ctx.metrics().AddTask();
    RowVec rows;
    rows.reserve(snap.view(static_cast<int>(p)).num_rows());
    snap.view(static_cast<int>(p)).Scan([&rows](const Row& row) {
      rows.push_back(row);
    });
    ctx.metrics().AddRowsScanned(rows.size());
    out[p] = PartitionData(std::move(rows));
  });
  return out;
}

Result<PartitionVec> SnapshotScanOp::Execute(ExecutorContext& ctx) {
  const IndexedRelationSnapshot& snap = snapshot_->snapshot();
  PartitionVec out(static_cast<size_t>(snap.num_partitions()));
  ctx.pool().ParallelFor(out.size(), [&](size_t p) {
    ctx.metrics().AddTask();
    RowVec rows;
    rows.reserve(snap.view(static_cast<int>(p)).num_rows());
    snap.view(static_cast<int>(p)).Scan([&rows](const Row& row) {
      rows.push_back(row);
    });
    ctx.metrics().AddRowsScanned(rows.size());
    out[p] = PartitionData(std::move(rows));
  });
  return out;
}

Result<PartitionVec> IndexedScanFilterOp::Execute(ExecutorContext& ctx) {
  IndexedRelationSnapshot snap = rel_->Snapshot();
  const Schema& schema = *rel_->schema();
  PartitionVec out(static_cast<size_t>(snap.num_partitions()));
  ctx.pool().ParallelFor(out.size(), [&](size_t p) {
    ctx.metrics().AddTask();
    RowVec rows;
    uint64_t scanned = 0;
    snap.view(static_cast<int>(p)).ScanRaw([&](const uint8_t* payload) {
      ++scanned;
      // Lazy decode: only the filter column, then — on a match — the full
      // row or just the projected columns.
      Value v = DecodeColumn(payload, schema, filter_col_);
      if (v.is_null()) return;
      if (!CompareWithOp(compare_op_, v, literal_)) return;
      if (project_cols_.empty()) {
        rows.push_back(DecodeRow(payload, schema));
      } else {
        Row row;
        row.reserve(project_cols_.size());
        for (int c : project_cols_) {
          row.push_back(DecodeColumn(payload, schema, c));
        }
        rows.push_back(std::move(row));
      }
    });
    ctx.metrics().AddRowsScanned(scanned);
    ctx.metrics().AddRowsProduced(rows.size());
    out[p] = PartitionData(std::move(rows));
  });
  return out;
}

Result<PartitionVec> IndexedScanProjectOp::Execute(ExecutorContext& ctx) {
  IndexedRelationSnapshot snap = rel_->Snapshot();
  const Schema& schema = *rel_->schema();
  PartitionVec out(static_cast<size_t>(snap.num_partitions()));
  ctx.pool().ParallelFor(out.size(), [&](size_t p) {
    ctx.metrics().AddTask();
    RowVec rows;
    rows.reserve(snap.view(static_cast<int>(p)).num_rows());
    snap.view(static_cast<int>(p)).ScanRaw([&](const uint8_t* payload) {
      Row row;
      row.reserve(cols_.size());
      for (int c : cols_) row.push_back(DecodeColumn(payload, schema, c));
      rows.push_back(std::move(row));
    });
    ctx.metrics().AddRowsScanned(rows.size());
    out[p] = PartitionData(std::move(rows));
  });
  return out;
}

Result<PartitionVec> IndexLookupOp::Execute(ExecutorContext& ctx) {
  ctx.metrics().AddTask();
  IndexedRelationSnapshot snap = rel_->Snapshot();
  RowVec rows;
  uint64_t hits = 0;
  for (const Value& key : keys_) {
    RowVec matches = snap.GetRows(key);
    if (!matches.empty()) ++hits;
    for (Row& row : matches) rows.push_back(std::move(row));
  }
  ctx.metrics().AddIndexProbes(keys_.size());
  ctx.metrics().AddIndexHits(hits);
  ctx.metrics().AddRowsProduced(rows.size());
  PartitionVec out;
  out.push_back(PartitionData(std::move(rows)));
  return out;
}

Result<PartitionVec> IndexedJoinOp::Execute(ExecutorContext& ctx) {
  IDF_ASSIGN_OR_RETURN(PartitionVec probe_parts, children()[0]->Execute(ctx));
  IndexedRelationSnapshot snap = rel_->Snapshot();

  // Produce one output partition per index partition. For each probe row,
  // evaluate the key and probe that key's home partition's cTrie; matched
  // build rows are concatenated with the probe row in the original
  // left/right order.
  Status first_error;
  std::mutex error_mu;
  auto probe_into = [&](const RowVec& probes, int index_partition,
                        bool check_ownership, RowVec* out) -> Status {
    const IndexedPartition::View& view = snap.view(index_partition);
    uint64_t probes_done = 0;
    uint64_t hits = 0;
    for (const Row& row : probes) {
      IDF_ASSIGN_OR_RETURN(Value key, probe_key_->Eval(row));
      if (key.is_null()) continue;
      if (check_ownership &&
          snap.partitioner().PartitionOf(key) != index_partition) {
        continue;
      }
      ++probes_done;
      RowVec matches = view.GetRows(key);
      if (!matches.empty()) ++hits;
      for (Row& build_row : matches) {
        out->push_back(indexed_on_left_ ? ConcatRows(build_row, row)
                                        : ConcatRows(row, build_row));
      }
    }
    ctx.metrics().AddIndexProbes(probes_done);
    ctx.metrics().AddIndexHits(hits);
    return Status::OK();
  };

  PartitionVec out(static_cast<size_t>(snap.num_partitions()));
  if (broadcast_probe_) {
    // Broadcast the probe rows; every partition probes only the keys it
    // owns (hash partitioning makes ownership exact).
    BroadcastRows bc = MakeBroadcast(ctx, CollectRows(probe_parts));
    ctx.pool().ParallelFor(out.size(), [&](size_t p) {
      ctx.metrics().AddTask();
      RowVec joined;
      Status st = probe_into(*bc.rows, static_cast<int>(p),
                             /*check_ownership=*/true, &joined);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) first_error = st;
        return;
      }
      ctx.metrics().AddRowsProduced(joined.size());
      out[p] = PartitionData(std::move(joined));
    });
  } else {
    // Shuffle the probe side to the index's partitioning; the build side
    // moves nothing (it is the index).
    IDF_ASSIGN_OR_RETURN(
        std::vector<RowVec> shuffled,
        ShuffleRowsByKeyExpr(ctx, probe_parts, probe_key_, snap.partitioner()));
    ctx.pool().ParallelFor(out.size(), [&](size_t p) {
      ctx.metrics().AddTask();
      RowVec joined;
      Status st = probe_into(shuffled[p], static_cast<int>(p),
                             /*check_ownership=*/false, &joined);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) first_error = st;
        return;
      }
      ctx.metrics().AddRowsProduced(joined.size());
      out[p] = PartitionData(std::move(joined));
    });
  }
  IDF_RETURN_NOT_OK(first_error);
  return out;
}

}  // namespace idf
