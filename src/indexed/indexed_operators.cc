#include "indexed/indexed_operators.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "sql/aggregate_common.h"
#include "sql/compiled_accessor.h"
#include "sql/vectorized_eval.h"

namespace idf {

Result<PushedFilter> PushedFilter::Bind(const std::vector<Value>& params) const {
  PushedFilter out;
  if (compiled.has_value()) {
    IDF_ASSIGN_OR_RETURN(CompiledPredicate bound, compiled->BindParams(params));
    out.compiled = std::move(bound);
  }
  if (residual != nullptr) {
    IDF_ASSIGN_OR_RETURN(out.residual, SubstituteParameters(residual, params));
  }
  return out;
}

namespace {

/// Resolves an operator's pushed filter against the execution context's
/// bound parameters. Parameter-free filters pass through as a copy.
Result<PushedFilter> BindPushedFilter(const PushedFilter& filter,
                                      ExecutorContext& ctx) {
  if (!filter.has_params()) return filter;
  const std::vector<Value>* params = ctx.parameters();
  if (params == nullptr) {
    return Status::Internal(
        "parameterized pushed filter executed without bound parameters");
  }
  return filter.Bind(*params);
}

/// Resolves lookup key placeholders against the context's bound parameters.
/// A null binding is dropped — `key = NULL` matches no row, exactly like
/// the equivalent ad-hoc comparison.
Result<std::vector<Value>> ResolveLookupKeys(const std::vector<Value>& keys,
                                             const std::vector<int>& key_params,
                                             ExecutorContext& ctx) {
  bool any = false;
  for (int p : key_params) any = any || p >= 0;
  if (!any) return keys;
  const std::vector<Value>* params = ctx.parameters();
  if (params == nullptr) {
    return Status::Internal(
        "parameterized lookup executed without bound parameters");
  }
  std::vector<Value> out;
  out.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    const int p = i < key_params.size() ? key_params[i] : -1;
    if (p < 0) {
      out.push_back(keys[i]);
      continue;
    }
    if (static_cast<size_t>(p) >= params->size()) {
      return Status::Internal("lookup key parameter ordinal out of range");
    }
    if ((*params)[static_cast<size_t>(p)].is_null()) continue;
    out.push_back((*params)[static_cast<size_t>(p)]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Morsel-driven execution helpers
//
// Operators flatten the rows of all partitions into one global index space
// and let ThreadPool::ParallelForRange hand out ~MorselGrain-row chunks via
// an atomic cursor. A skewed partition is then processed by many workers
// instead of serializing the query on one partition-granular task. Chunk
// outputs are tagged with their partition and reassembled in chunk order,
// which preserves append order within every partition.
//
// Every parallel region is given the context's cancellation token: a
// cancelled or timed-out query drains its remaining morsels without running
// them, and the driver converts the token state into Cancelled /
// DeadlineExceeded instead of returning partial output.
// ---------------------------------------------------------------------------

/// Payload pointers of every row, per partition, plus cumulative row counts
/// (`part_end[p]` = rows of partitions 0..p) defining the flat index space.
struct FlatRaw {
  std::vector<std::vector<const uint8_t*>> per_part;
  std::vector<size_t> part_end;
  size_t total = 0;
};

FlatRaw CollectRaw(ExecutorContext& ctx, const IndexedRelationSnapshot& snap) {
  FlatRaw flat;
  const size_t num_parts = static_cast<size_t>(snap.num_partitions());
  flat.per_part.resize(num_parts);
  ctx.pool().ParallelFor(
      num_parts,
      [&](size_t p) {
        std::vector<const uint8_t*>& refs = flat.per_part[p];
        refs.reserve(snap.view(static_cast<int>(p)).num_rows());
        snap.view(static_cast<int>(p)).ScanRaw([&refs](const uint8_t* payload) {
          refs.push_back(payload);
        });
      },
      ctx.cancellation());
  flat.part_end.resize(num_parts);
  for (size_t p = 0; p < num_parts; ++p) {
    flat.total += flat.per_part[p].size();
    flat.part_end[p] = flat.total;
  }
  return flat;
}

/// Output of one morsel restricted to one partition.
struct MorselPiece {
  size_t partition;
  RowVec rows;
};

/// Chunk-local filter bookkeeping: rows the compiled predicate rejected on
/// the encoded payload (never decoded), vector-path counters, and the
/// first interpreter-residual error. Flushed to the shared metrics/error
/// state once per chunk so the hot loop touches no atomics.
struct ChunkStats {
  uint64_t filtered_encoded = 0;
  uint64_t filtered_vectorized = 0;  // subset of filtered_encoded
  uint64_t vector_batches = 0;
  Status error;
};

/// Flushes a chunk's filter counters to the shared metrics. Encoded
/// rejects also count as avoided decodes (the row never materialized).
void FlushChunkStats(ExecutorContext& ctx, const ChunkStats& stats) {
  if (stats.filtered_encoded > 0) {
    ctx.metrics().AddRowsFilteredEncoded(stats.filtered_encoded);
    ctx.metrics().AddDecodesAvoided(stats.filtered_encoded);
  }
  if (stats.filtered_vectorized > 0) {
    ctx.metrics().AddRowsFilteredVectorized(stats.filtered_vectorized);
  }
  if (stats.vector_batches > 0) {
    ctx.metrics().AddVectorBatches(stats.vector_batches);
  }
}

/// Residual check on a decoded row: TRUE passes, NULL/false rejects, the
/// first Eval error lands in `*error` and rejects.
bool ResidualPasses(const Expr* residual, const Row& row, Status* error) {
  auto v = residual->Eval(row);
  if (!v.ok()) {
    if (error->ok()) *error = v.status();
    return false;
  }
  return !v->is_null() && v->bool_value();
}

/// First partition whose flat range contains index `i`.
size_t PartitionOfIndex(const std::vector<size_t>& part_end, size_t i) {
  return static_cast<size_t>(
      std::upper_bound(part_end.begin(), part_end.end(), i) - part_end.begin());
}

/// Reassembles per-chunk pieces into per-partition row vectors; chunk order
/// preserves the original row order within each partition.
PartitionVec AssemblePieces(ExecutorContext& ctx, size_t num_parts,
                            std::vector<std::vector<MorselPiece>>& chunks) {
  // Size pass first: reserving each partition's exact total makes the
  // reassembly a single move per row instead of a realloc chain.
  std::vector<size_t> totals(num_parts, 0);
  uint64_t produced = 0;
  for (const auto& pieces : chunks) {
    for (const MorselPiece& piece : pieces) {
      totals[piece.partition] += piece.rows.size();
      produced += piece.rows.size();
    }
  }
  std::vector<RowVec> rows(num_parts);
  for (auto& pieces : chunks) {
    for (MorselPiece& piece : pieces) {
      RowVec& dst = rows[piece.partition];
      if (dst.empty() && piece.rows.size() == totals[piece.partition]) {
        dst = std::move(piece.rows);  // sole piece: adopt the buffer
        continue;
      }
      if (dst.capacity() < totals[piece.partition]) {
        dst.reserve(totals[piece.partition]);
      }
      dst.insert(dst.end(), std::make_move_iterator(piece.rows.begin()),
                 std::make_move_iterator(piece.rows.end()));
    }
  }
  ctx.metrics().AddRowsProduced(produced);
  PartitionVec out;
  out.reserve(num_parts);
  for (RowVec& r : rows) out.push_back(PartitionData(std::move(r)));
  return out;
}

/// Morsel-driven scan driver for 1:1 row transforms (`per_row(payload)`
/// returns the output row): every output position is known up front, so
/// morsels write directly into the preallocated result — no per-chunk
/// buffers, no reassembly.
template <typename PerRow>
Result<PartitionVec> MorselScanDense(ExecutorContext& ctx,
                                     const IndexedRelationSnapshot& snap,
                                     const PerRow& per_row) {
  IDF_RETURN_NOT_OK(ctx.CheckCancelled());
  FlatRaw flat = CollectRaw(ctx, snap);
  const size_t num_parts = static_cast<size_t>(snap.num_partitions());
  const size_t n = flat.total;
  ctx.metrics().AddRowsScanned(n);
  std::vector<RowVec> rows(num_parts);
  for (size_t p = 0; p < num_parts; ++p) rows[p].resize(flat.per_part[p].size());
  size_t dispatched = ctx.pool().ParallelForRange(
      n, ctx.MorselGrain(n),
      [&](size_t begin, size_t end) {
        ctx.metrics().AddTask();
        size_t i = begin;
        size_t p = PartitionOfIndex(flat.part_end, begin);
        while (i < end) {
          const size_t pstart = p == 0 ? 0 : flat.part_end[p - 1];
          const size_t pend = std::min(end, flat.part_end[p]);
          RowVec& dst = rows[p];
          for (; i < pend; ++i) dst[i - pstart] = per_row(flat.per_part[p][i - pstart]);
          ++p;
        }
      },
      ctx.cancellation());
  IDF_RETURN_NOT_OK(ctx.CheckCancelled());
  ctx.metrics().AddMorsels(dispatched);
  ctx.metrics().AddRowsProduced(n);
  PartitionVec out;
  out.reserve(num_parts);
  for (RowVec& r : rows) out.push_back(PartitionData(std::move(r)));
  return out;
}

/// Morsel-driven scan driver for filtering transforms: runs
/// `per_row(payload, &out_rows, &chunk_stats)` over every row, collecting
/// per-chunk (partition, rows) pieces that are reassembled in chunk order.
/// Chunk stats flush to the metrics once per chunk; the first residual
/// error aborts the scan.
template <typename PerRow>
Result<PartitionVec> MorselScan(ExecutorContext& ctx,
                                const IndexedRelationSnapshot& snap,
                                const PerRow& per_row) {
  IDF_RETURN_NOT_OK(ctx.CheckCancelled());
  FlatRaw flat = CollectRaw(ctx, snap);
  const size_t num_parts = static_cast<size_t>(snap.num_partitions());
  const size_t n = flat.total;
  ctx.metrics().AddRowsScanned(n);
  const size_t grain = ctx.MorselGrain(n);
  std::vector<std::vector<MorselPiece>> chunks(n == 0 ? 0 : (n + grain - 1) / grain);
  Status first_error;
  std::mutex error_mu;
  size_t dispatched = ctx.pool().ParallelForRange(
      n, grain,
      [&](size_t begin, size_t end) {
        ctx.metrics().AddTask();
        std::vector<MorselPiece> pieces;
        ChunkStats stats;
        size_t i = begin;
        size_t p = PartitionOfIndex(flat.part_end, begin);
        while (i < end) {
          const size_t pstart = p == 0 ? 0 : flat.part_end[p - 1];
          const size_t pend = std::min(end, flat.part_end[p]);
          MorselPiece piece{p, {}};
          piece.rows.reserve(pend - i);  // exact for scans, upper bound for filters
          for (; i < pend; ++i) {
            per_row(flat.per_part[p][i - pstart], &piece.rows, &stats);
          }
          if (!piece.rows.empty()) pieces.push_back(std::move(piece));
          ++p;
        }
        FlushChunkStats(ctx, stats);
        if (!stats.error.ok()) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.ok()) first_error = stats.error;
        }
        chunks[begin / grain] = std::move(pieces);
      },
      ctx.cancellation());
  IDF_RETURN_NOT_OK(first_error);
  IDF_RETURN_NOT_OK(ctx.CheckCancelled());
  ctx.metrics().AddMorsels(dispatched);
  return AssemblePieces(ctx, num_parts, chunks);
}

/// One aggregate's input in the fused scan-aggregate: a compiled accessor
/// reading the argument column straight from the payload, or an expression
/// needing the decoded row. Both empty for COUNT(*).
struct FusedAggInput {
  std::optional<CompiledAccessor> acc;
  const Expr* expr = nullptr;
};

/// UpdateState specialized for a payload-resident input column: SUM/AVG/
/// COUNT fold the raw slot value without boxing; MIN/MAX box once (they
/// keep a Value anyway). Matches UpdateState(.., DecodeColumn(..)) exactly.
void UpdateStateFromPayload(AggState* s, AggFn fn, const CompiledAccessor& acc,
                            const uint8_t* payload) {
  switch (fn) {
    case AggFn::kCountStar:
      ++s->count;
      return;
    case AggFn::kCount:
      if (!acc.IsNull(payload)) ++s->count;
      return;
    case AggFn::kSum:
      if (!acc.IsNull(payload)) {
        s->any = true;
        if (acc.type() == TypeId::kFloat64) {
          s->dsum += acc.GetDouble(payload);
        } else {
          const int64_t v = acc.GetInt64(payload);
          s->isum += v;
          s->dsum += static_cast<double>(v);
        }
      }
      return;
    case AggFn::kAvg:
      if (!acc.IsNull(payload)) {
        s->any = true;
        s->dsum += acc.GetDouble(payload);
        ++s->count;
      }
      return;
    case AggFn::kMin:
    case AggFn::kMax:
      if (!acc.IsNull(payload)) UpdateState(s, fn, acc.GetValue(payload));
      return;
  }
}

/// Materializes one payload that passed the compiled filter: residual check
/// on the decoded row, then the full row or just the projected columns.
/// Shared by the row-at-a-time and vectorized scan-filter paths.
void EmitFilteredRow(const uint8_t* payload, const Schema& schema,
                     const Expr* residual, const std::vector<int>& project_cols,
                     RowVec* out, ChunkStats* stats) {
  if (residual) {
    Row row = DecodeRow(payload, schema);
    if (!ResidualPasses(residual, row, &stats->error)) return;
    if (project_cols.empty()) {
      out->push_back(std::move(row));
    } else {
      Row pruned;
      pruned.reserve(project_cols.size());
      for (int c : project_cols) pruned.push_back(row[static_cast<size_t>(c)]);
      out->push_back(std::move(pruned));
    }
    return;
  }
  if (project_cols.empty()) {
    out->push_back(DecodeRow(payload, schema));
  } else {
    Row row;
    row.reserve(project_cols.size());
    for (int c : project_cols) row.push_back(DecodeColumn(payload, schema, c));
    out->push_back(std::move(row));
  }
}

/// Batch-at-a-time scan-filter driver: per partition segment of a morsel
/// the compiled program evaluates the whole payload span at once
/// (sql/vectorized_eval.h) and only the selection-vector survivors
/// materialize. Output and metrics are identical to MorselScan running
/// Matches row-at-a-time.
Result<PartitionVec> VectorizedScanFilter(ExecutorContext& ctx,
                                          const IndexedRelationSnapshot& snap,
                                          const Schema& schema,
                                          const CompiledPredicate& compiled,
                                          const Expr* residual,
                                          const std::vector<int>& project_cols) {
  IDF_RETURN_NOT_OK(ctx.CheckCancelled());
  FlatRaw flat = CollectRaw(ctx, snap);
  const size_t num_parts = static_cast<size_t>(snap.num_partitions());
  const size_t n = flat.total;
  ctx.metrics().AddRowsScanned(n);
  const size_t grain = ctx.MorselGrain(n);
  std::vector<std::vector<MorselPiece>> chunks(n == 0 ? 0
                                                      : (n + grain - 1) / grain);
  Status first_error;
  std::mutex error_mu;
  const VectorizedPredicate vec(compiled);
  size_t dispatched = ctx.pool().ParallelForRange(
      n, grain,
      [&](size_t begin, size_t end) {
        ctx.metrics().AddTask();
        std::vector<MorselPiece> pieces;
        ChunkStats stats;
        VectorScratch vs;
        std::vector<uint32_t> sel(end - begin);
        size_t i = begin;
        size_t p = PartitionOfIndex(flat.part_end, begin);
        while (i < end) {
          const size_t pstart = p == 0 ? 0 : flat.part_end[p - 1];
          const size_t pend = std::min(end, flat.part_end[p]);
          const uint8_t* const* payloads =
              flat.per_part[p].data() + (i - pstart);
          const size_t cnt = pend - i;
          const size_t kept = vec.FilterBatch(payloads, cnt, sel.data(), &vs);
          stats.vector_batches += VectorizedPredicate::NumBatches(cnt);
          stats.filtered_vectorized += cnt - kept;
          stats.filtered_encoded += cnt - kept;
          MorselPiece piece{p, {}};
          piece.rows.reserve(kept);
          for (size_t j = 0; j < kept; ++j) {
            EmitFilteredRow(payloads[sel[j]], schema, residual, project_cols,
                            &piece.rows, &stats);
          }
          if (!piece.rows.empty()) pieces.push_back(std::move(piece));
          i = pend;
          ++p;
        }
        FlushChunkStats(ctx, stats);
        if (!stats.error.ok()) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.ok()) first_error = stats.error;
        }
        chunks[begin / grain] = std::move(pieces);
      },
      ctx.cancellation());
  IDF_RETURN_NOT_OK(first_error);
  IDF_RETURN_NOT_OK(ctx.CheckCancelled());
  ctx.metrics().AddMorsels(dispatched);
  return AssemblePieces(ctx, num_parts, chunks);
}

/// Folds the selected lanes of one fused-aggregate input straight off the
/// encoded payloads. Integer SUM and the COUNTs fold branch-free over the
/// selection vector (a null lane contributes a masked zero, which is exact
/// for integers — and for the shadow double sum, whose partial results are
/// never -0.0); float SUM/AVG keep the null guard so the running double
/// accumulation stays bit-identical to UpdateStateFromPayload (adding +0.0
/// could flip a -0.0 accumulator); MIN/MAX box once per selected lane, as
/// the scalar path does.
void AccumulateSelectedLanes(AggState* s, AggFn fn,
                             const std::optional<CompiledAccessor>& acc_opt,
                             const uint8_t* const* payloads,
                             const uint32_t* sel, size_t kept) {
  if (fn == AggFn::kCountStar) {
    s->count += kept;
    return;
  }
  const CompiledAccessor& acc = *acc_opt;
  switch (fn) {
    case AggFn::kCountStar:
      return;  // handled above; no accessor to read
    case AggFn::kCount: {
      uint64_t c = 0;
      for (size_t j = 0; j < kept; ++j) {
        c += acc.IsNull(payloads[sel[j]]) ? 0u : 1u;
      }
      s->count += c;
      return;
    }
    case AggFn::kSum:
      if (acc.type() == TypeId::kFloat64) {
        for (size_t j = 0; j < kept; ++j) {
          const uint8_t* payload = payloads[sel[j]];
          if (!acc.IsNull(payload)) {
            s->any = true;
            s->dsum += acc.GetDouble(payload);
          }
        }
      } else {
        uint64_t nonnull = 0;
        for (size_t j = 0; j < kept; ++j) {
          const uint8_t* payload = payloads[sel[j]];
          // A null lane reads its (defined but meaningless) slot bytes and
          // folds a masked zero — no branch in the loop body.
          const int64_t m = acc.IsNull(payload) ? 0 : 1;
          const int64_t v = m * acc.GetInt64(payload);
          s->isum += v;
          s->dsum += static_cast<double>(v);
          nonnull += static_cast<uint64_t>(m);
        }
        if (nonnull > 0) s->any = true;
      }
      return;
    case AggFn::kAvg:
      for (size_t j = 0; j < kept; ++j) {
        const uint8_t* payload = payloads[sel[j]];
        if (!acc.IsNull(payload)) {
          s->any = true;
          s->dsum += acc.GetDouble(payload);
          ++s->count;
        }
      }
      return;
    case AggFn::kMin:
    case AggFn::kMax:
      for (size_t j = 0; j < kept; ++j) {
        const uint8_t* payload = payloads[sel[j]];
        if (!acc.IsNull(payload)) UpdateState(s, fn, acc.GetValue(payload));
      }
      return;
  }
}

/// Build-side candidates of one join probe segment: chain walks append
/// (encoded build row, probe id) pairs and the compiled build filter then
/// evaluates the whole span batch-at-a-time. A probe's candidates are
/// contiguous (appended during its chain walk), which the binary path's
/// memoized probe decode relies on.
struct BuildCandidates {
  std::vector<const uint8_t*> payloads;
  std::vector<size_t> probe;
  void Add(const uint8_t* payload, size_t probe_id) {
    payloads.push_back(payload);
    probe.push_back(probe_id);
  }
  void Clear() {
    payloads.clear();
    probe.clear();
  }
};

/// Filters a segment's candidates through the vectorized build predicate
/// and emits the surviving concatenated rows in the original probe-major
/// chain order. `probe_row_of(probe_id)` supplies the probe row (possibly
/// decoding it lazily); it runs before the build residual so probe
/// materialization matches the row-at-a-time path.
template <typename ProbeRowFn>
void FlushBuildCandidates(const VectorizedPredicate& vec, BuildCandidates* cand,
                          std::vector<uint32_t>* sel, VectorScratch* vs,
                          const Schema& build_schema, const Expr* build_residual,
                          bool indexed_on_left, RowVec* out, ChunkStats* stats,
                          ProbeRowFn&& probe_row_of) {
  const size_t n = cand->payloads.size();
  if (n == 0) return;
  if (sel->size() < n) sel->resize(n);
  const size_t kept = vec.FilterBatch(cand->payloads.data(), n, sel->data(), vs);
  stats->vector_batches += VectorizedPredicate::NumBatches(n);
  stats->filtered_vectorized += n - kept;
  stats->filtered_encoded += n - kept;
  for (size_t j = 0; j < kept; ++j) {
    const size_t c = (*sel)[j];
    const Row& probe_row = probe_row_of(cand->probe[c]);
    Row build_row = DecodeRow(cand->payloads[c], build_schema);
    if (build_residual &&
        !ResidualPasses(build_residual, build_row, &stats->error)) {
      continue;
    }
    out->push_back(indexed_on_left ? ConcatRows(build_row, probe_row)
                                   : ConcatRows(probe_row, build_row));
  }
  cand->Clear();
}

/// Shared driver for point lookups (live and pinned): each key routes to
/// its home partition and the backward-pointer chain is walked, applying a
/// pushed filter while each node is cache-hot — the compiled part against
/// the encoded payload (rejects never decode), the residual on the decoded
/// row. Lookups are heavier per item than scan rows (trie descent + chain
/// walk), so an IN-list splits into small per-task key ranges instead of
/// counting as one task.
Result<PartitionVec> LookupKeys(ExecutorContext& ctx,
                                const IndexedRelationSnapshot& snap,
                                const std::vector<Value>& keys,
                                const PushedFilter& filter) {
  IDF_RETURN_NOT_OK(ctx.CheckCancelled());
  if (filter.compiled) ctx.metrics().AddPredicatesCompiled(1);
  const Schema& schema = *snap.schema();
  const CompiledPredicate* compiled =
      filter.compiled ? &*filter.compiled : nullptr;
  const Expr* residual = filter.residual.get();
  const size_t n = keys.size();
  const size_t threads = static_cast<size_t>(ctx.config().num_threads);
  const size_t grain = std::max<size_t>(
      1, std::min(ctx.config().morsel_rows, (n + threads * 4 - 1) / (threads * 4)));
  std::vector<RowVec> chunks(n == 0 ? 0 : (n + grain - 1) / grain);
  Status first_error;
  std::mutex error_mu;
  size_t dispatched = ctx.pool().ParallelForRange(
      n, grain,
      [&](size_t begin, size_t end) {
        ctx.metrics().AddTask();
        RowVec rows;
        uint64_t hits = 0;
        ChunkStats stats;
        for (size_t k = begin; k < end; ++k) {
          const Value& key = keys[k];
          const IndexedPartition::View& view =
              snap.view(snap.partitioner().PartitionOf(key));
          size_t matched = view.ForEachRawRow(key, [&](const uint8_t* payload) {
            if (compiled && !compiled->Matches(payload)) {
              ++stats.filtered_encoded;
              return;
            }
            Row row = DecodeRow(payload, schema);
            if (residual && !ResidualPasses(residual, row, &stats.error)) return;
            rows.push_back(std::move(row));
          });
          if (matched > 0) ++hits;
        }
        ctx.metrics().AddIndexProbes(end - begin);
        ctx.metrics().AddIndexHits(hits);
        FlushChunkStats(ctx, stats);
        if (!stats.error.ok()) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.ok()) first_error = stats.error;
        }
        chunks[begin / grain] = std::move(rows);
      },
      ctx.cancellation());
  IDF_RETURN_NOT_OK(first_error);
  IDF_RETURN_NOT_OK(ctx.CheckCancelled());
  ctx.metrics().AddMorsels(dispatched);
  RowVec rows;
  for (RowVec& c : chunks) {
    rows.insert(rows.end(), std::make_move_iterator(c.begin()),
                std::make_move_iterator(c.end()));
  }
  ctx.metrics().AddRowsProduced(rows.size());
  PartitionVec out;
  out.push_back(PartitionData(std::move(rows)));
  return out;
}

}  // namespace

Result<PartitionVec> IndexedScanOp::Execute(ExecutorContext& ctx) {
  IndexedRelationSnapshot snap = rel_->Snapshot();
  const Schema& schema = *rel_->schema();
  return MorselScanDense(ctx, snap, [&schema](const uint8_t* payload) {
    return DecodeRow(payload, schema);
  });
}

Result<PartitionVec> SnapshotScanOp::Execute(ExecutorContext& ctx) {
  const IndexedRelationSnapshot& snap = snapshot_->snapshot();
  const Schema& schema = *snapshot_->schema();
  return MorselScanDense(ctx, snap, [&schema](const uint8_t* payload) {
    return DecodeRow(payload, schema);
  });
}

Result<PartitionVec> IndexedScanFilterOp::Execute(ExecutorContext& ctx) {
  std::optional<IndexedRelationSnapshot> scratch;
  const IndexedRelationSnapshot& snap = source_.Snapshot(&scratch);
  const Schema& schema = *source_.schema();
  IDF_ASSIGN_OR_RETURN(PushedFilter filter, BindPushedFilter(filter_, ctx));
  if (filter.compiled) ctx.metrics().AddPredicatesCompiled(1);
  const CompiledPredicate* compiled =
      filter.compiled ? &*filter.compiled : nullptr;
  const Expr* residual = filter.residual.get();
  // Encoded-first either way: the compiled program reads the payload
  // directly, so rows it rejects are never decoded. The vectorized driver
  // evaluates it batch-at-a-time per partition segment; the fallback runs
  // Matches row-at-a-time. Survivors materialize identically in both.
  if (compiled != nullptr && ctx.config().vectorized_execution) {
    return VectorizedScanFilter(ctx, snap, schema, *compiled, residual,
                                project_cols_);
  }
  return MorselScan(ctx, snap,
                    [this, &schema, compiled, residual](
                        const uint8_t* payload, RowVec* out, ChunkStats* stats) {
    if (compiled && !compiled->Matches(payload)) {
      ++stats->filtered_encoded;
      return;
    }
    EmitFilteredRow(payload, schema, residual, project_cols_, out, stats);
  });
}

std::string SecondaryIndexProbeOp::name() const {
  std::string out = "SecondaryIndexProbe[" + source_.name() + "] ";
  for (size_t i = 0; i < probes_.size(); ++i) {
    if (i > 0) out += " AND ";
    out += probes_[i].ToString();
  }
  if (filter_.has_any()) out += " (+residual)";
  if (!project_cols_.empty()) out += " (pruned)";
  return out;
}

Result<PartitionVec> SecondaryIndexProbeOp::Execute(ExecutorContext& ctx) {
  IDF_RETURN_NOT_OK(ctx.CheckCancelled());
  std::optional<IndexedRelationSnapshot> scratch;
  const IndexedRelationSnapshot& snap = source_.Snapshot(&scratch);
  const Schema& schema = *source_.schema();
  IDF_ASSIGN_OR_RETURN(PushedFilter filter, BindPushedFilter(filter_, ctx));
  if (filter.compiled) ctx.metrics().AddPredicatesCompiled(1);
  const CompiledPredicate* compiled =
      filter.compiled ? &*filter.compiled : nullptr;
  const Expr* residual = filter.residual.get();

  // Partition-granular parallelism: a selective probe emits few rows per
  // partition, so the morsel machinery's flattening would cost more than
  // it balances. Each task probes its view's index (or falls back to a
  // full partition scan) and filters/projects the survivors in place.
  const size_t num_parts = static_cast<size_t>(snap.num_partitions());
  std::vector<RowVec> rows(num_parts);
  std::vector<ChunkStats> part_stats(num_parts);
  std::atomic<uint64_t> bitmap_probes{0};
  std::atomic<uint64_t> range_probes{0};
  std::atomic<uint64_t> scans_avoided{0};
  std::atomic<uint64_t> rows_scanned{0};
  ctx.pool().ParallelFor(
      num_parts,
      [&](size_t p) {
        ctx.metrics().AddTask();
        std::vector<const uint8_t*> payloads;
        SecondaryProbeStats pstats;
        snap.view(static_cast<int>(p))
            .ProbeSecondary(probes_, &payloads, &pstats);
        if (pstats.used_index) {
          for (const SecondaryProbe& probe : probes_) {
            if (probe.kind == SecondaryIndexKind::kBitmap) {
              bitmap_probes.fetch_add(1, std::memory_order_relaxed);
            } else {
              range_probes.fetch_add(1, std::memory_order_relaxed);
            }
          }
          scans_avoided.fetch_add(pstats.rows_avoided,
                                  std::memory_order_relaxed);
        }
        rows_scanned.fetch_add(pstats.from_index + pstats.suffix_scanned,
                               std::memory_order_relaxed);
        ChunkStats& stats = part_stats[p];
        RowVec& dst = rows[p];
        dst.reserve(payloads.size());
        for (const uint8_t* payload : payloads) {
          if (compiled != nullptr && !compiled->Matches(payload)) {
            ++stats.filtered_encoded;
            continue;
          }
          EmitFilteredRow(payload, schema, residual, project_cols_, &dst,
                          &stats);
        }
      },
      ctx.cancellation());
  IDF_RETURN_NOT_OK(ctx.CheckCancelled());
  ctx.metrics().AddBitmapProbes(bitmap_probes.load(std::memory_order_relaxed));
  ctx.metrics().AddRangeProbes(range_probes.load(std::memory_order_relaxed));
  ctx.metrics().AddIndexScansAvoided(
      scans_avoided.load(std::memory_order_relaxed));
  ctx.metrics().AddRowsScanned(rows_scanned.load(std::memory_order_relaxed));
  size_t produced = 0;
  for (size_t p = 0; p < num_parts; ++p) {
    FlushChunkStats(ctx, part_stats[p]);
    IDF_RETURN_NOT_OK(part_stats[p].error);
    produced += rows[p].size();
  }
  ctx.metrics().AddRowsProduced(produced);
  PartitionVec out;
  out.reserve(num_parts);
  for (RowVec& r : rows) out.push_back(PartitionData(std::move(r)));
  return out;
}

Result<PartitionVec> IndexedScanProjectOp::Execute(ExecutorContext& ctx) {
  std::optional<IndexedRelationSnapshot> scratch;
  const IndexedRelationSnapshot& snap = source_.Snapshot(&scratch);
  const Schema& schema = *source_.schema();
  return MorselScanDense(ctx, snap, [this, &schema](const uint8_t* payload) {
    Row row;
    row.reserve(cols_.size());
    for (int c : cols_) row.push_back(DecodeColumn(payload, schema, c));
    return row;
  });
}

Result<PartitionVec> IndexedScanAggregateOp::Execute(ExecutorContext& ctx) {
  std::optional<IndexedRelationSnapshot> scratch;
  const IndexedRelationSnapshot& snap = source_.Snapshot(&scratch);
  const Schema& schema = *source_.schema();
  IDF_ASSIGN_OR_RETURN(PushedFilter filter, BindPushedFilter(filter_, ctx));
  if (filter.compiled) ctx.metrics().AddPredicatesCompiled(1);
  const CompiledPredicate* compiled =
      filter.compiled ? &*filter.compiled : nullptr;
  const Expr* residual = filter.residual.get();

  const size_t num_groups = group_exprs_.size();
  const size_t num_aggs = aggs_.size();
  std::vector<TypeId> out_types;
  out_types.reserve(num_aggs);
  for (size_t a = 0; a < num_aggs; ++a) {
    out_types.push_back(
        this->schema()->field(static_cast<int>(num_groups + a)).type);
  }

  // The fusion rule only builds this operator when every group expression
  // is a bound column reference, so the key reads straight off the payload.
  std::vector<CompiledAccessor> key_acc;
  key_acc.reserve(num_groups);
  for (const ExprPtr& g : group_exprs_) {
    auto acc = CompiledAccessor::FromExpr(g, schema);
    if (!acc) {
      return Status::Internal(
          "IndexedScanAggregate group expression is not a bound column ref");
    }
    key_acc.push_back(*acc);
  }
  std::vector<FusedAggInput> inputs(num_aggs);
  for (size_t a = 0; a < num_aggs; ++a) {
    if (aggs_[a].fn == AggFn::kCountStar) continue;
    auto acc = CompiledAccessor::FromExpr(aggs_[a].arg, schema);
    if (acc) {
      inputs[a].acc = *acc;
    } else {
      inputs[a].expr = aggs_[a].arg.get();
    }
  }

  const bool use_vec = compiled != nullptr && ctx.config().vectorized_execution;
  std::optional<VectorizedPredicate> vec;
  if (use_vec) vec.emplace(*compiled);
  // Ungrouped aggregates whose every input reads straight off the payload
  // (or is COUNT(*)), with no residual, accumulate over the selection
  // vector without building a key or touching a Row at all.
  bool ungrouped_fast = use_vec && num_groups == 0 && residual == nullptr;
  for (size_t a = 0; a < num_aggs && ungrouped_fast; ++a) {
    if (aggs_[a].fn != AggFn::kCountStar && !inputs[a].acc) {
      ungrouped_fast = false;
    }
  }

  IDF_RETURN_NOT_OK(ctx.CheckCancelled());
  FlatRaw flat = CollectRaw(ctx, snap);
  const size_t n = flat.total;
  ctx.metrics().AddRowsScanned(n);
  const size_t grain = ctx.MorselGrain(n);
  const size_t num_chunks = n == 0 ? 0 : (n + grain - 1) / grain;
  std::vector<GroupStateMap> chunk_maps(num_chunks);
  Status first_error;
  std::mutex error_mu;
  const size_t dispatched = ctx.pool().ParallelForRange(
      n, grain,
      [&](size_t begin, size_t end) {
        ctx.metrics().AddTask();
        GroupStateMap& groups = chunk_maps[begin / grain];
        ChunkStats stats;
        uint64_t encoded_rows = 0;
        VectorScratch vs;
        std::vector<uint32_t> sel;
        if (use_vec) sel.resize(end - begin);
        // Accumulates one row that passed the compiled filter. Shared by
        // the scalar path and the vector path's grouped tail.
        auto accumulate_row = [&](const uint8_t* payload) {
          Row decoded;
          bool has_decoded = false;
          if (residual) {
            decoded = DecodeRow(payload, schema);
            has_decoded = true;
            if (!ResidualPasses(residual, decoded, &stats.error)) return;
          }
          Row key;
          key.reserve(num_groups);
          for (const CompiledAccessor& acc : key_acc) {
            key.push_back(acc.GetValue(payload));
          }
          auto [it, inserted] = groups.try_emplace(std::move(key));
          if (inserted) it->second.resize(num_aggs);
          for (size_t a = 0; a < num_aggs; ++a) {
            if (inputs[a].acc) {
              UpdateStateFromPayload(&it->second[a], aggs_[a].fn,
                                     *inputs[a].acc, payload);
            } else if (inputs[a].expr != nullptr) {
              if (!has_decoded) {
                decoded = DecodeRow(payload, schema);
                has_decoded = true;
              }
              auto v = inputs[a].expr->Eval(decoded);
              if (!v.ok()) {
                if (stats.error.ok()) stats.error = v.status();
                continue;
              }
              UpdateState(&it->second[a], aggs_[a].fn,
                          std::move(v).ValueUnsafe());
            } else {
              ++it->second[a].count;  // COUNT(*)
            }
          }
          if (!has_decoded) ++encoded_rows;
        };
        size_t i = begin;
        size_t p = PartitionOfIndex(flat.part_end, begin);
        while (i < end) {
          const size_t pstart = p == 0 ? 0 : flat.part_end[p - 1];
          const size_t pend = std::min(end, flat.part_end[p]);
          if (use_vec) {
            const uint8_t* const* payloads =
                flat.per_part[p].data() + (i - pstart);
            const size_t cnt = pend - i;
            const size_t kept =
                vec->FilterBatch(payloads, cnt, sel.data(), &vs);
            stats.vector_batches += VectorizedPredicate::NumBatches(cnt);
            stats.filtered_vectorized += cnt - kept;
            stats.filtered_encoded += cnt - kept;
            if (ungrouped_fast) {
              if (kept > 0) {
                auto [it, inserted] = groups.try_emplace(Row{});
                if (inserted) it->second.resize(num_aggs);
                for (size_t a = 0; a < num_aggs; ++a) {
                  AccumulateSelectedLanes(&it->second[a], aggs_[a].fn,
                                          inputs[a].acc, payloads, sel.data(),
                                          kept);
                }
                encoded_rows += kept;
              }
            } else {
              for (size_t j = 0; j < kept; ++j) {
                accumulate_row(payloads[sel[j]]);
              }
            }
            i = pend;
          } else {
            for (; i < pend; ++i) {
              const uint8_t* payload = flat.per_part[p][i - pstart];
              if (compiled && !compiled->Matches(payload)) {
                ++stats.filtered_encoded;
                continue;
              }
              accumulate_row(payload);
            }
          }
          ++p;
        }
        FlushChunkStats(ctx, stats);
        if (encoded_rows > 0) {
          ctx.metrics().AddRowsAggregatedEncoded(encoded_rows);
          ctx.metrics().AddDecodesAvoided(encoded_rows);
        }
        if (!stats.error.ok()) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.ok()) first_error = stats.error;
        }
      },
      ctx.cancellation());
  ctx.metrics().AddMorsels(dispatched);
  ctx.metrics().AddAggMorsels(dispatched);
  IDF_RETURN_NOT_OK(first_error);
  IDF_RETURN_NOT_OK(ctx.CheckCancelled());
  return MergePartialGroups(ctx, std::move(chunk_maps), num_groups, aggs_,
                            out_types);
}

Result<PartitionVec> IndexLookupOp::Execute(ExecutorContext& ctx) {
  IndexedRelationSnapshot snap = rel_->Snapshot();
  IDF_ASSIGN_OR_RETURN(std::vector<Value> keys,
                       ResolveLookupKeys(keys_, key_params_, ctx));
  IDF_ASSIGN_OR_RETURN(PushedFilter filter, BindPushedFilter(filter_, ctx));
  return LookupKeys(ctx, snap, keys, filter);
}

Result<PartitionVec> SnapshotLookupOp::Execute(ExecutorContext& ctx) {
  IDF_ASSIGN_OR_RETURN(std::vector<Value> keys,
                       ResolveLookupKeys(keys_, key_params_, ctx));
  IDF_ASSIGN_OR_RETURN(PushedFilter filter, BindPushedFilter(filter_, ctx));
  return LookupKeys(ctx, snapshot_->snapshot(), keys, filter);
}

Result<PartitionVec> IndexedJoinOp::Execute(ExecutorContext& ctx) {
  IDF_RETURN_NOT_OK(ctx.CheckCancelled());
  IDF_ASSIGN_OR_RETURN(PartitionVec probe_parts, children()[0]->Execute(ctx));
  IndexedRelationSnapshot snap = rel_->Snapshot();
  const Schema& build_schema = *rel_->schema();
  const Schema& probe_schema = *children()[0]->schema();
  const size_t num_parts = static_cast<size_t>(snap.num_partitions());

  // Build-side filter from a pushed-down predicate on the indexed
  // relation: the compiled part runs on the encoded build row during the
  // chain walk (rejects are never decoded or concatenated), the residual
  // on the decoded build row.
  IDF_ASSIGN_OR_RETURN(PushedFilter build_filter,
                       BindPushedFilter(build_filter_, ctx));
  if (build_filter.compiled) ctx.metrics().AddPredicatesCompiled(1);
  const CompiledPredicate* build_compiled =
      build_filter.compiled ? &*build_filter.compiled : nullptr;
  const Expr* build_residual = build_filter.residual.get();
  // With a compiled build filter and vectorized execution, the chain walks
  // only collect (build payload, probe id) candidates; each probe segment
  // then runs the filter batch-at-a-time and decodes the survivors.
  const bool vec_build =
      build_compiled != nullptr && ctx.config().vectorized_execution;
  std::optional<VectorizedPredicate> build_vec;
  if (vec_build) build_vec.emplace(*build_compiled);

  // Bound column-ref probe keys decode only the key column from the binary
  // exchange; other key expressions fall back to full-row decode + Eval.
  int probe_key_col = -1;
  if (probe_key_->kind() == ExprKind::kColumnRef) {
    const auto* ref = static_cast<const ColumnRefExpr*>(probe_key_.get());
    if (ref->bound()) probe_key_col = ref->index();
  }

  if (broadcast_probe_) {
    // Broadcast the probe rows; each key is evaluated once and routed to
    // the partition that owns it (hash partitioning makes ownership
    // exact), then probing is split into morsels across partitions.
    BroadcastRows bc = MakeBroadcast(ctx, CollectRows(probe_parts));
    const RowVec& rows = *bc.rows;
    std::vector<Value> keys(rows.size());
    std::vector<std::vector<size_t>> owned(num_parts);
    for (size_t r = 0; r < rows.size(); ++r) {
      IDF_ASSIGN_OR_RETURN(Value key, probe_key_->Eval(rows[r]));
      if (key.is_null()) continue;
      owned[static_cast<size_t>(snap.partitioner().PartitionOf(key))].push_back(r);
      keys[r] = std::move(key);
    }
    std::vector<size_t> part_end(num_parts);
    size_t total = 0;
    for (size_t p = 0; p < num_parts; ++p) {
      total += owned[p].size();
      part_end[p] = total;
    }
    const size_t grain = ctx.MorselGrain(total);
    std::vector<std::vector<MorselPiece>> chunks(
        total == 0 ? 0 : (total + grain - 1) / grain);
    Status first_error;
    std::mutex error_mu;
    size_t dispatched = ctx.pool().ParallelForRange(
        total, grain,
        [&](size_t begin, size_t end) {
          ctx.metrics().AddTask();
          std::vector<MorselPiece> pieces;
          uint64_t probes = 0;
          uint64_t hits = 0;
          ChunkStats stats;
          VectorScratch vs;
          std::vector<uint32_t> sel;
          BuildCandidates cand;
          size_t i = begin;
          size_t p = PartitionOfIndex(part_end, begin);
          while (i < end) {
            const size_t pstart = p == 0 ? 0 : part_end[p - 1];
            const size_t pend = std::min(end, part_end[p]);
            const IndexedPartition::View& view = snap.view(static_cast<int>(p));
            MorselPiece piece{p, {}};
            if (vec_build) {
              for (; i < pend; ++i) {
                const size_t r = owned[p][i - pstart];
                ++probes;
                size_t matched =
                    view.ForEachRawRow(keys[r], [&](const uint8_t* payload) {
                      cand.Add(payload, r);
                    });
                if (matched > 0) ++hits;
              }
              FlushBuildCandidates(
                  *build_vec, &cand, &sel, &vs, build_schema, build_residual,
                  indexed_on_left_, &piece.rows, &stats,
                  [&](size_t r) -> const Row& { return rows[r]; });
            } else {
              for (; i < pend; ++i) {
                const size_t r = owned[p][i - pstart];
                ++probes;
                size_t matched =
                    view.ForEachRawRow(keys[r], [&](const uint8_t* payload) {
                      if (build_compiled && !build_compiled->Matches(payload)) {
                        ++stats.filtered_encoded;
                        return;
                      }
                      Row build_row = DecodeRow(payload, build_schema);
                      if (build_residual &&
                          !ResidualPasses(build_residual, build_row,
                                          &stats.error)) {
                        return;
                      }
                      piece.rows.push_back(indexed_on_left_
                                               ? ConcatRows(build_row, rows[r])
                                               : ConcatRows(rows[r], build_row));
                    });
                if (matched > 0) ++hits;
              }
            }
            if (!piece.rows.empty()) pieces.push_back(std::move(piece));
            ++p;
          }
          ctx.metrics().AddIndexProbes(probes);
          ctx.metrics().AddIndexHits(hits);
          FlushChunkStats(ctx, stats);
          if (!stats.error.ok()) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (first_error.ok()) first_error = stats.error;
          }
          chunks[begin / grain] = std::move(pieces);
        },
        ctx.cancellation());
    IDF_RETURN_NOT_OK(first_error);
    IDF_RETURN_NOT_OK(ctx.CheckCancelled());
    ctx.metrics().AddMorsels(dispatched);
    return AssemblePieces(ctx, num_parts, chunks);
  }

  // Small shuffled probes take the legacy row exchange: when every probe
  // row is decoded anyway (the all-hit case, e.g. the 2k-row fig2 join)
  // the encode pass of the binary exchange is pure overhead, and at this
  // scale it dominates. Large probes amortize encoding via lazy decode.
  if (TotalRows(probe_parts) < ctx.config().binary_shuffle_min_rows) {
    IDF_ASSIGN_OR_RETURN(
        std::vector<RowVec> shuffled,
        ShuffleRowsByKeyExpr(ctx, probe_parts, probe_key_, snap.partitioner()));
    std::vector<size_t> part_end(num_parts);
    size_t total = 0;
    for (size_t p = 0; p < num_parts; ++p) {
      total += shuffled[p].size();
      part_end[p] = total;
    }
    const size_t grain = ctx.MorselGrain(total);
    std::vector<std::vector<MorselPiece>> chunks(
        total == 0 ? 0 : (total + grain - 1) / grain);
    Status first_error;
    std::mutex error_mu;
    size_t dispatched = ctx.pool().ParallelForRange(
        total, grain,
        [&](size_t begin, size_t end) {
          ctx.metrics().AddTask();
          std::vector<MorselPiece> pieces;
          uint64_t probes = 0;
          uint64_t hits = 0;
          ChunkStats stats;
          VectorScratch vs;
          std::vector<uint32_t> sel;
          BuildCandidates cand;
          size_t i = begin;
          size_t p = PartitionOfIndex(part_end, begin);
          while (i < end) {
            const size_t pstart = p == 0 ? 0 : part_end[p - 1];
            const size_t pend = std::min(end, part_end[p]);
            const RowVec& rows = shuffled[p];
            const IndexedPartition::View& view = snap.view(static_cast<int>(p));
            MorselPiece piece{p, {}};
            for (; i < pend; ++i) {
              const Row& probe_row = rows[i - pstart];
              Value key;
              if (probe_key_col >= 0) {
                key = probe_row[static_cast<size_t>(probe_key_col)];
              } else {
                auto v = probe_key_->Eval(probe_row);
                if (!v.ok()) {
                  std::lock_guard<std::mutex> lock(error_mu);
                  if (first_error.ok()) first_error = v.status();
                  return;
                }
                key = std::move(v).ValueUnsafe();
              }
              ++probes;
              size_t matched =
                  view.ForEachRawRow(key, [&](const uint8_t* build_payload) {
                    if (vec_build) {
                      cand.Add(build_payload, i - pstart);
                      return;
                    }
                    if (build_compiled && !build_compiled->Matches(build_payload)) {
                      ++stats.filtered_encoded;
                      return;
                    }
                    Row build_row = DecodeRow(build_payload, build_schema);
                    if (build_residual &&
                        !ResidualPasses(build_residual, build_row, &stats.error)) {
                      return;
                    }
                    piece.rows.push_back(indexed_on_left_
                                             ? ConcatRows(build_row, probe_row)
                                             : ConcatRows(probe_row, build_row));
                  });
              if (matched > 0) ++hits;
            }
            if (vec_build) {
              FlushBuildCandidates(
                  *build_vec, &cand, &sel, &vs, build_schema, build_residual,
                  indexed_on_left_, &piece.rows, &stats,
                  [&](size_t idx) -> const Row& { return rows[idx]; });
            }
            if (!piece.rows.empty()) pieces.push_back(std::move(piece));
            ++p;
          }
          ctx.metrics().AddIndexProbes(probes);
          ctx.metrics().AddIndexHits(hits);
          FlushChunkStats(ctx, stats);
          if (!stats.error.ok()) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (first_error.ok()) first_error = stats.error;
          }
          chunks[begin / grain] = std::move(pieces);
        },
        ctx.cancellation());
    IDF_RETURN_NOT_OK(first_error);
    IDF_RETURN_NOT_OK(ctx.CheckCancelled());
    ctx.metrics().AddMorsels(dispatched);
    return AssemblePieces(ctx, num_parts, chunks);
  }

  // Shuffled probe: the probe side crosses the exchange as encoded binary
  // buffers (no materialized Rows); the build side moves nothing (it is
  // the index). Probe rows decode lazily — only the key column until a
  // match requires the full row.
  IDF_ASSIGN_OR_RETURN(BinaryPartitions shuffled,
                       ShuffleEncodedByKeyExpr(ctx, probe_parts, probe_schema,
                                               probe_key_, snap.partitioner()));
  std::vector<size_t> part_end(num_parts);
  size_t total = 0;
  for (size_t p = 0; p < num_parts; ++p) {
    total += shuffled[p].num_rows();
    part_end[p] = total;
  }
  const size_t grain = ctx.MorselGrain(total);
  std::vector<std::vector<MorselPiece>> chunks(
      total == 0 ? 0 : (total + grain - 1) / grain);
  Status first_error;
  std::mutex error_mu;
  size_t dispatched = ctx.pool().ParallelForRange(
      total, grain,
      [&](size_t begin, size_t end) {
        ctx.metrics().AddTask();
        std::vector<MorselPiece> pieces;
        uint64_t probes = 0;
        uint64_t hits = 0;
        uint64_t avoided = 0;
        ChunkStats stats;
        VectorScratch vs;
        std::vector<uint32_t> sel;
        BuildCandidates cand;
        size_t i = begin;
        size_t p = PartitionOfIndex(part_end, begin);
        while (i < end) {
          const size_t pstart = p == 0 ? 0 : part_end[p - 1];
          const size_t pend = std::min(end, part_end[p]);
          const BinaryRows& buf = shuffled[p];
          const IndexedPartition::View& view = snap.view(static_cast<int>(p));
          MorselPiece piece{p, {}};
          if (vec_build) {
            const size_t seg_begin = i;
            for (; i < pend; ++i) {
              const size_t local = i - pstart;
              const uint8_t* payload = buf.payload(local);
              Value key;
              if (probe_key_col >= 0) {
                key = DecodeColumn(payload, probe_schema, probe_key_col);
              } else {
                Row full = DecodeRow(payload, probe_schema);
                auto v = probe_key_->Eval(full);
                if (!v.ok()) {
                  std::lock_guard<std::mutex> lock(error_mu);
                  if (first_error.ok()) first_error = v.status();
                  return;
                }
                key = std::move(v).ValueUnsafe();
              }
              // Null keys were dropped on the map side of the exchange.
              ++probes;
              size_t matched =
                  view.ForEachRawRow(key, [&](const uint8_t* build_payload) {
                    cand.Add(build_payload, local);
                  });
              if (matched > 0) ++hits;
            }
            // Lazy memoized probe decode at flush: a probe's candidates
            // are contiguous, so one decoded row serves all of them.
            // Probes whose candidates were all rejected (or that missed
            // the index) never materialize past the key column, matching
            // the row-at-a-time accounting.
            size_t last = static_cast<size_t>(-1);
            Row probe_row;
            uint64_t materialized = 0;
            FlushBuildCandidates(
                *build_vec, &cand, &sel, &vs, build_schema, build_residual,
                indexed_on_left_, &piece.rows, &stats,
                [&](size_t idx) -> const Row& {
                  if (idx != last) {
                    probe_row = DecodeRow(buf.payload(idx), probe_schema);
                    last = idx;
                    ++materialized;
                  }
                  return probe_row;
                });
            if (probe_key_col >= 0) {
              avoided += (pend - seg_begin) - materialized;
            }
          } else {
            for (; i < pend; ++i) {
              const uint8_t* payload = buf.payload(i - pstart);
              Row probe_row;
              bool decoded = false;
              Value key;
              if (probe_key_col >= 0) {
                key = DecodeColumn(payload, probe_schema, probe_key_col);
              } else {
                probe_row = DecodeRow(payload, probe_schema);
                decoded = true;
                auto v = probe_key_->Eval(probe_row);
                if (!v.ok()) {
                  std::lock_guard<std::mutex> lock(error_mu);
                  if (first_error.ok()) first_error = v.status();
                  return;
                }
                key = std::move(v).ValueUnsafe();
              }
              // Null keys were dropped on the map side of the exchange.
              ++probes;
              size_t matched =
                  view.ForEachRawRow(key, [&](const uint8_t* build_payload) {
                    // The build filter runs on the encoded build row first:
                    // a reject decodes neither side.
                    if (build_compiled && !build_compiled->Matches(build_payload)) {
                      ++stats.filtered_encoded;
                      return;
                    }
                    // The probe row materializes on the first surviving match.
                    if (!decoded) {
                      probe_row = DecodeRow(payload, probe_schema);
                      decoded = true;
                    }
                    Row build_row = DecodeRow(build_payload, build_schema);
                    if (build_residual &&
                        !ResidualPasses(build_residual, build_row, &stats.error)) {
                      return;
                    }
                    piece.rows.push_back(indexed_on_left_
                                             ? ConcatRows(build_row, probe_row)
                                             : ConcatRows(probe_row, build_row));
                  });
              if (matched > 0) {
                ++hits;
              }
              if (!decoded) {
                ++avoided;  // never materialized past the key column
              }
            }
          }
          if (!piece.rows.empty()) pieces.push_back(std::move(piece));
          ++p;
        }
        ctx.metrics().AddIndexProbes(probes);
        ctx.metrics().AddIndexHits(hits);
        ctx.metrics().AddDecodesAvoided(avoided);
        FlushChunkStats(ctx, stats);
        if (!stats.error.ok()) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.ok()) first_error = stats.error;
        }
        chunks[begin / grain] = std::move(pieces);
      },
      ctx.cancellation());
  IDF_RETURN_NOT_OK(first_error);
  IDF_RETURN_NOT_OK(ctx.CheckCancelled());
  ctx.metrics().AddMorsels(dispatched);
  return AssemblePieces(ctx, num_parts, chunks);
}

}  // namespace idf
