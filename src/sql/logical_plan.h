// Logical query plans, mirroring Catalyst's abstract representation: the
// analyzer binds names, optimization rules rewrite the tree, and the
// planner lowers it to physical operators.
#pragma once

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/expression.h"
#include "storage/column_cache.h"
#include "types/row.h"
#include "types/schema.h"

namespace idf {

// ---------------------------------------------------------------------------
// Table handles
// ---------------------------------------------------------------------------

/// An un-cached, row-oriented table (models data freshly read from storage).
struct RawTable {
  std::string name;
  SchemaPtr schema;
  std::vector<RowVec> partitions;
  /// Actual in-memory size, filled at creation; 0 means "unknown" and the
  /// planner falls back to a schema-width heuristic.
  size_t approx_bytes = 0;
};
using RawTablePtr = std::shared_ptr<const RawTable>;

/// A cached, column-oriented table (models Spark's columnar RDD cache).
struct CachedTable {
  std::string name;
  SchemaPtr schema;
  std::vector<ColumnCachePtr> partitions;
  size_t approx_bytes = 0;

  size_t num_rows() const {
    size_t n = 0;
    for (const auto& p : partitions) n += p->num_rows();
    return n;
  }
};
using CachedTablePtr = std::shared_ptr<const CachedTable>;

/// Kind of a secondary index on a non-primary column of an indexed
/// relation. The primary cTrie hash index serves equality; bitmap indexes
/// serve equality/IN over low-cardinality columns; sorted range indexes
/// serve inequality and BETWEEN predicates.
enum class SecondaryIndexKind : uint8_t { kNone, kBitmap, kRange };

std::string SecondaryIndexKindToString(SecondaryIndexKind kind);

/// One secondary-index access path chosen by the index-kind costing rule:
/// either a key set (bitmap equality / IN) or a one- or two-sided range.
/// `selectivity` is the estimated fraction of rows the probe emits, filled
/// by the costing rule from index statistics.
struct SecondaryProbe {
  int column = -1;
  SecondaryIndexKind kind = SecondaryIndexKind::kNone;
  std::vector<Value> keys;     // bitmap probe: equality / IN key set
  std::optional<Value> lo;     // range probe bounds (either may be absent)
  std::optional<Value> hi;
  bool lo_inclusive = true;
  bool hi_inclusive = true;
  double selectivity = 1.0;

  std::string ToString() const;
};

/// \brief Interface to an indexed relation, implemented by
/// indexed::IndexedRelation. The SQL layer sees only this surface so the
/// dependency points from indexed/ to sql/ (the library "plugs in", like
/// the paper's lightweight Spark library).
class IndexedRelationBase {
 public:
  virtual ~IndexedRelationBase() = default;

  virtual const std::string& name() const = 0;
  virtual const SchemaPtr& schema() const = 0;
  /// Ordinal of the indexed column.
  virtual int indexed_column() const = 0;
  /// Number of partitions (hash partitioning on the indexed column).
  virtual int num_partitions() const = 0;
  /// Total rows visible in the current version.
  virtual size_t num_rows() const = 0;
  /// Version counter; bumped by every append batch (MVCC snapshots).
  virtual uint64_t version() const = 0;
  /// Kind of the secondary index on `column` (kNone when it has none).
  virtual SecondaryIndexKind secondary_index_kind(int column) const {
    (void)column;
    return SecondaryIndexKind::kNone;
  }
  /// Estimated rows a secondary probe would emit, from index statistics
  /// (rows appended after the last published cut count as matches, keeping
  /// the estimate conservative). Default: everything matches.
  virtual uint64_t EstimateSecondaryMatches(const SecondaryProbe& probe) const {
    (void)probe;
    return num_rows();
  }
};
using IndexedRelationBasePtr = std::shared_ptr<IndexedRelationBase>;

// ---------------------------------------------------------------------------
// Plan nodes
// ---------------------------------------------------------------------------

enum class PlanKind : uint8_t {
  kScan,
  kCacheScan,
  kIndexedScan,
  kFilter,
  kProject,
  kJoin,
  kAggregate,
  kSort,
  kLimit,
  kTopK,
  kIndexedLookup,
  kIndexedJoin,
  kSnapshotScan,
  kSnapshotLookup,
  kUnionAll,
  kSecondaryProbe,
};

std::string PlanKindToString(PlanKind kind);

class LogicalPlan;
using LogicalPlanPtr = std::shared_ptr<const LogicalPlan>;

/// \brief Immutable logical plan node.
///
/// `output_schema()` is null until the node has passed analysis; the
/// analyzer (sql/analyzer.h) produces fully annotated copies.
class LogicalPlan {
 public:
  virtual ~LogicalPlan() = default;

  PlanKind kind() const { return kind_; }
  const std::vector<LogicalPlanPtr>& children() const { return children_; }
  const SchemaPtr& output_schema() const { return output_schema_; }
  bool analyzed() const { return output_schema_ != nullptr; }

  /// Single-line description of this node (without children).
  virtual std::string ToString() const = 0;

  /// Multi-line indented rendering of the whole subtree.
  std::string TreeString() const;

  /// Returns a copy of this node with the given children (schema and other
  /// annotations preserved). Children must match in count.
  virtual LogicalPlanPtr WithChildren(std::vector<LogicalPlanPtr> children) const = 0;

 protected:
  LogicalPlan(PlanKind kind, std::vector<LogicalPlanPtr> children,
              SchemaPtr output_schema)
      : kind_(kind),
        children_(std::move(children)),
        output_schema_(std::move(output_schema)) {}

 private:
  void AppendTree(std::string* out, int indent) const;

  PlanKind kind_;
  std::vector<LogicalPlanPtr> children_;
  SchemaPtr output_schema_;
};

class ScanNode : public LogicalPlan {
 public:
  explicit ScanNode(RawTablePtr table)
      : LogicalPlan(PlanKind::kScan, {}, table->schema), table_(std::move(table)) {}

  const RawTablePtr& table() const { return table_; }
  std::string ToString() const override;
  LogicalPlanPtr WithChildren(std::vector<LogicalPlanPtr> children) const override;

 private:
  RawTablePtr table_;
};

class CacheScanNode : public LogicalPlan {
 public:
  explicit CacheScanNode(CachedTablePtr table)
      : LogicalPlan(PlanKind::kCacheScan, {}, table->schema),
        table_(std::move(table)) {}

  const CachedTablePtr& table() const { return table_; }
  std::string ToString() const override;
  LogicalPlanPtr WithChildren(std::vector<LogicalPlanPtr> children) const override;

 private:
  CachedTablePtr table_;
};

class IndexedScanNode : public LogicalPlan {
 public:
  explicit IndexedScanNode(IndexedRelationBasePtr rel)
      : LogicalPlan(PlanKind::kIndexedScan, {}, rel->schema()),
        rel_(std::move(rel)) {}

  const IndexedRelationBasePtr& relation() const { return rel_; }
  std::string ToString() const override;
  LogicalPlanPtr WithChildren(std::vector<LogicalPlanPtr> children) const override;

 private:
  IndexedRelationBasePtr rel_;
};

class FilterNode : public LogicalPlan {
 public:
  FilterNode(LogicalPlanPtr child, ExprPtr predicate, SchemaPtr schema = nullptr)
      : LogicalPlan(PlanKind::kFilter, {std::move(child)},
                    schema ? std::move(schema) : nullptr),
        predicate_(std::move(predicate)) {}

  const ExprPtr& predicate() const { return predicate_; }
  std::string ToString() const override;
  LogicalPlanPtr WithChildren(std::vector<LogicalPlanPtr> children) const override;

 private:
  ExprPtr predicate_;
};

class ProjectNode : public LogicalPlan {
 public:
  ProjectNode(LogicalPlanPtr child, std::vector<ExprPtr> exprs,
              std::vector<std::string> names, SchemaPtr schema = nullptr)
      : LogicalPlan(PlanKind::kProject, {std::move(child)}, std::move(schema)),
        exprs_(std::move(exprs)),
        names_(std::move(names)) {}

  const std::vector<ExprPtr>& exprs() const { return exprs_; }
  const std::vector<std::string>& names() const { return names_; }
  std::string ToString() const override;
  LogicalPlanPtr WithChildren(std::vector<LogicalPlanPtr> children) const override;

 private:
  std::vector<ExprPtr> exprs_;
  std::vector<std::string> names_;
};

enum class JoinType : uint8_t { kInner, kLeftOuter };

std::string JoinTypeToString(JoinType type);

/// Equi-join on one key per side (inner or left-outer).
class JoinNode : public LogicalPlan {
 public:
  JoinNode(LogicalPlanPtr left, LogicalPlanPtr right, ExprPtr left_key,
           ExprPtr right_key, JoinType join_type = JoinType::kInner,
           SchemaPtr schema = nullptr)
      : LogicalPlan(PlanKind::kJoin, {std::move(left), std::move(right)},
                    std::move(schema)),
        left_key_(std::move(left_key)),
        right_key_(std::move(right_key)),
        join_type_(join_type) {}

  const LogicalPlanPtr& left() const { return children()[0]; }
  const LogicalPlanPtr& right() const { return children()[1]; }
  const ExprPtr& left_key() const { return left_key_; }
  const ExprPtr& right_key() const { return right_key_; }
  JoinType join_type() const { return join_type_; }
  std::string ToString() const override;
  LogicalPlanPtr WithChildren(std::vector<LogicalPlanPtr> children) const override;

 private:
  ExprPtr left_key_;
  ExprPtr right_key_;
  JoinType join_type_;
};

enum class AggFn : uint8_t { kCountStar, kCount, kSum, kMin, kMax, kAvg };

std::string AggFnToString(AggFn fn);

struct AggSpec {
  AggFn fn;
  ExprPtr arg;  // null for kCountStar
  std::string out_name;
};

class AggregateNode : public LogicalPlan {
 public:
  AggregateNode(LogicalPlanPtr child, std::vector<ExprPtr> group_exprs,
                std::vector<std::string> group_names, std::vector<AggSpec> aggs,
                SchemaPtr schema = nullptr)
      : LogicalPlan(PlanKind::kAggregate, {std::move(child)}, std::move(schema)),
        group_exprs_(std::move(group_exprs)),
        group_names_(std::move(group_names)),
        aggs_(std::move(aggs)) {}

  const std::vector<ExprPtr>& group_exprs() const { return group_exprs_; }
  const std::vector<std::string>& group_names() const { return group_names_; }
  const std::vector<AggSpec>& aggs() const { return aggs_; }
  std::string ToString() const override;
  LogicalPlanPtr WithChildren(std::vector<LogicalPlanPtr> children) const override;

 private:
  std::vector<ExprPtr> group_exprs_;
  std::vector<std::string> group_names_;
  std::vector<AggSpec> aggs_;
};

struct SortKey {
  ExprPtr expr;
  bool ascending = true;
};

class SortNode : public LogicalPlan {
 public:
  SortNode(LogicalPlanPtr child, std::vector<SortKey> keys,
           SchemaPtr schema = nullptr)
      : LogicalPlan(PlanKind::kSort, {std::move(child)}, std::move(schema)),
        keys_(std::move(keys)) {}

  const std::vector<SortKey>& keys() const { return keys_; }
  std::string ToString() const override;
  LogicalPlanPtr WithChildren(std::vector<LogicalPlanPtr> children) const override;

 private:
  std::vector<SortKey> keys_;
};

class LimitNode : public LogicalPlan {
 public:
  LimitNode(LogicalPlanPtr child, size_t n, SchemaPtr schema = nullptr)
      : LogicalPlan(PlanKind::kLimit, {std::move(child)}, std::move(schema)), n_(n) {}

  size_t n() const { return n_; }
  std::string ToString() const override;
  LogicalPlanPtr WithChildren(std::vector<LogicalPlanPtr> children) const override;

 private:
  size_t n_;
};

/// Fused Limit(Sort(x)): the n smallest rows under the sort order, computed
/// with per-partition heaps instead of a global sort (Spark's
/// TakeOrderedAndProject). Produced by the CombineLimitSort rule.
class TopKNode : public LogicalPlan {
 public:
  TopKNode(LogicalPlanPtr child, std::vector<SortKey> keys, size_t n,
           SchemaPtr schema = nullptr)
      : LogicalPlan(PlanKind::kTopK, {std::move(child)}, std::move(schema)),
        keys_(std::move(keys)),
        n_(n) {}

  const std::vector<SortKey>& keys() const { return keys_; }
  size_t n() const { return n_; }
  std::string ToString() const override;
  LogicalPlanPtr WithChildren(std::vector<LogicalPlanPtr> children) const override;

 private:
  std::vector<SortKey> keys_;
  size_t n_;
};

/// Bag union of two or more inputs with compatible schemas (no
/// deduplication, like SQL's UNION ALL).
class UnionAllNode : public LogicalPlan {
 public:
  explicit UnionAllNode(std::vector<LogicalPlanPtr> inputs,
                        SchemaPtr schema = nullptr)
      : LogicalPlan(PlanKind::kUnionAll, std::move(inputs), std::move(schema)) {}

  std::string ToString() const override;
  LogicalPlanPtr WithChildren(std::vector<LogicalPlanPtr> children) const override;
};

/// \brief Abstract pinned snapshot of an indexed relation: a frozen version
/// captured at a point in time. Implemented by indexed::PinnedSnapshot.
/// Queries over it read that version forever, no matter how much the live
/// relation grows — the API surface of the paper's multi-version
/// concurrency.
class SnapshotRelationBase {
 public:
  virtual ~SnapshotRelationBase() = default;
  virtual const std::string& name() const = 0;
  virtual const SchemaPtr& schema() const = 0;
  /// Ordinal of the indexed column (the frozen index still serves point
  /// lookups on it).
  virtual int indexed_column() const = 0;
  virtual uint64_t version() const = 0;
  virtual size_t num_rows() const = 0;
  /// Kind of the secondary index on `column` in the frozen version (kNone
  /// when the snapshot predates the index or it has none).
  virtual SecondaryIndexKind secondary_index_kind(int column) const {
    (void)column;
    return SecondaryIndexKind::kNone;
  }
  /// Estimated rows a secondary probe would emit (see IndexedRelationBase).
  virtual uint64_t EstimateSecondaryMatches(const SecondaryProbe& probe) const {
    (void)probe;
    return num_rows();
  }
};
using SnapshotRelationBasePtr = std::shared_ptr<SnapshotRelationBase>;

/// Scan of a pinned snapshot (leaf).
class SnapshotScanNode : public LogicalPlan {
 public:
  explicit SnapshotScanNode(SnapshotRelationBasePtr snapshot)
      : LogicalPlan(PlanKind::kSnapshotScan, {}, snapshot->schema()),
        snapshot_(std::move(snapshot)) {}

  const SnapshotRelationBasePtr& snapshot() const { return snapshot_; }
  std::string ToString() const override;
  LogicalPlanPtr WithChildren(std::vector<LogicalPlanPtr> children) const override;

 private:
  SnapshotRelationBasePtr snapshot_;
};

/// Point lookup of one or more keys against a pinned snapshot — the same
/// rewrite as IndexedLookupNode, but reading the frozen version: produced
/// by the indexed filter rule for `Filter(col = lit)` / `col IN (...)`
/// over a SnapshotScan, so service queries against an MVCC snapshot keep
/// index-speed point reads instead of degrading to full scans.
class SnapshotLookupNode : public LogicalPlan {
 public:
  SnapshotLookupNode(SnapshotRelationBasePtr snapshot, std::vector<Value> keys,
                     std::vector<int> key_params = {})
      : LogicalPlan(PlanKind::kSnapshotLookup, {}, snapshot->schema()),
        snapshot_(std::move(snapshot)),
        keys_(std::move(keys)),
        key_params_(std::move(key_params)) {}

  const SnapshotRelationBasePtr& snapshot() const { return snapshot_; }
  const std::vector<Value>& keys() const { return keys_; }
  /// Parallel to keys(): key_params()[i] >= 0 marks keys()[i] as a
  /// prepared-statement placeholder filled from that parameter ordinal at
  /// execution time. Empty means "all keys are literals".
  const std::vector<int>& key_params() const { return key_params_; }
  std::string ToString() const override;
  LogicalPlanPtr WithChildren(std::vector<LogicalPlanPtr> children) const override;

 private:
  SnapshotRelationBasePtr snapshot_;
  std::vector<Value> keys_;
  std::vector<int> key_params_;
};

/// Point lookup of one or more keys on an indexed relation: produced by
/// the indexed filter rule (rewriting `Filter(col = lit)` and
/// `Filter(col IN (...))` over an IndexedScan) or directly by the GetRows
/// API.
class IndexedLookupNode : public LogicalPlan {
 public:
  IndexedLookupNode(IndexedRelationBasePtr rel, Value key)
      : IndexedLookupNode(std::move(rel), std::vector<Value>{std::move(key)}) {}

  IndexedLookupNode(IndexedRelationBasePtr rel, std::vector<Value> keys,
                    std::vector<int> key_params = {})
      : LogicalPlan(PlanKind::kIndexedLookup, {}, rel->schema()),
        rel_(std::move(rel)),
        keys_(std::move(keys)),
        key_params_(std::move(key_params)) {}

  const IndexedRelationBasePtr& relation() const { return rel_; }
  const std::vector<Value>& keys() const { return keys_; }
  /// Parallel to keys(); see SnapshotLookupNode::key_params.
  const std::vector<int>& key_params() const { return key_params_; }
  /// Convenience for the single-key case.
  const Value& key() const { return keys_[0]; }
  std::string ToString() const override;
  LogicalPlanPtr WithChildren(std::vector<LogicalPlanPtr> children) const override;

 private:
  IndexedRelationBasePtr rel_;
  std::vector<Value> keys_;
  std::vector<int> key_params_;
};

/// Secondary-index probe (leaf): the rows of an indexed relation — live or
/// pinned (exactly one of the two handles is set) — matching a bitmap or
/// range predicate on a secondary-indexed column. Produced by the indexed
/// filter rule's index-kind costing when the probe's estimated selectivity
/// beats the vectorized scan; the physical operator emits the index's row
/// positions as a selection vector feeding the usual decode-survivors path.
class SecondaryProbeNode : public LogicalPlan {
 public:
  SecondaryProbeNode(IndexedRelationBasePtr rel,
                     std::vector<SecondaryProbe> probes)
      : LogicalPlan(PlanKind::kSecondaryProbe, {}, rel->schema()),
        rel_(std::move(rel)),
        probes_(std::move(probes)) {}
  SecondaryProbeNode(SnapshotRelationBasePtr snap,
                     std::vector<SecondaryProbe> probes)
      : LogicalPlan(PlanKind::kSecondaryProbe, {}, snap->schema()),
        snap_(std::move(snap)),
        probes_(std::move(probes)) {}

  const IndexedRelationBasePtr& relation() const { return rel_; }
  const SnapshotRelationBasePtr& snapshot() const { return snap_; }
  /// ANDed probes; the first is the costing-chosen driver (lowest
  /// selectivity), the rest intersect into it (bitmap-AND).
  const std::vector<SecondaryProbe>& probes() const { return probes_; }
  /// Smallest selectivity across the ANDed probes (the driver's).
  double selectivity() const {
    double s = 1.0;
    for (const SecondaryProbe& p : probes_) s = std::min(s, p.selectivity);
    return s;
  }
  size_t source_rows() const {
    return rel_ ? rel_->num_rows() : snap_->num_rows();
  }
  std::string ToString() const override;
  LogicalPlanPtr WithChildren(std::vector<LogicalPlanPtr> children) const override;

 private:
  IndexedRelationBasePtr rel_;
  SnapshotRelationBasePtr snap_;
  std::vector<SecondaryProbe> probes_;
};

/// Indexed equi-join: the indexed relation is the (pre-built) build side;
/// the probe child is shuffled to the index's partitioning or broadcast.
class IndexedJoinNode : public LogicalPlan {
 public:
  /// `indexed_on_left` records which side of the original join the indexed
  /// relation was on, which fixes the output column order. `build_predicate`
  /// (may be null) is a filter on the indexed relation — bound to its
  /// schema — absorbed from a pushed-down Filter over the build-side scan;
  /// the physical join evaluates it against the encoded build rows during
  /// the chain walk.
  IndexedJoinNode(IndexedRelationBasePtr rel, LogicalPlanPtr probe,
                  ExprPtr probe_key, bool indexed_on_left,
                  SchemaPtr schema = nullptr, ExprPtr build_predicate = nullptr)
      : LogicalPlan(PlanKind::kIndexedJoin, {std::move(probe)}, std::move(schema)),
        rel_(std::move(rel)),
        probe_key_(std::move(probe_key)),
        indexed_on_left_(indexed_on_left),
        build_predicate_(std::move(build_predicate)) {}

  const IndexedRelationBasePtr& relation() const { return rel_; }
  const LogicalPlanPtr& probe() const { return children()[0]; }
  const ExprPtr& probe_key() const { return probe_key_; }
  bool indexed_on_left() const { return indexed_on_left_; }
  const ExprPtr& build_predicate() const { return build_predicate_; }
  std::string ToString() const override;
  LogicalPlanPtr WithChildren(std::vector<LogicalPlanPtr> children) const override;

 private:
  IndexedRelationBasePtr rel_;
  ExprPtr probe_key_;
  bool indexed_on_left_;
  ExprPtr build_predicate_;
};

}  // namespace idf
