// Physical plan: executable operators over partitioned data, mirroring
// Spark's physical execution layer. An operator produces a vector of
// partitions; a partition is either materialized rows or a columnar view
// into a cached table (so that the vanilla cached path keeps Spark's
// columnar advantages, e.g. cheap projections — see Figure 2).
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "engine/executor_context.h"
#include "storage/column_cache.h"
#include "types/row.h"
#include "types/schema.h"

namespace idf {

/// A columnar view: a cached table partition, a projection of its columns,
/// and an optional selection vector (surviving row indices).
struct ColumnarChunk {
  ColumnCachePtr cache;
  std::vector<int> columns;                           // projected ordinals
  std::shared_ptr<const std::vector<uint32_t>> selection;  // null = all rows

  size_t num_rows() const {
    return selection ? selection->size() : cache->num_rows();
  }
  /// Physical row index of logical row `i` under the selection.
  uint32_t PhysicalRow(size_t i) const {
    return selection ? (*selection)[i] : static_cast<uint32_t>(i);
  }
};

/// \brief One partition of operator output: rows or a columnar view.
class PartitionData {
 public:
  PartitionData() : repr_(RowVec{}) {}
  explicit PartitionData(RowVec rows) : repr_(std::move(rows)) {}
  explicit PartitionData(ColumnarChunk chunk) : repr_(std::move(chunk)) {}

  bool is_columnar() const { return std::holds_alternative<ColumnarChunk>(repr_); }
  const RowVec& rows() const { return std::get<RowVec>(repr_); }
  RowVec& mutable_rows() { return std::get<RowVec>(repr_); }
  const ColumnarChunk& columnar() const { return std::get<ColumnarChunk>(repr_); }

  size_t num_rows() const {
    return is_columnar() ? columnar().num_rows() : rows().size();
  }

  /// Materializes this partition as rows (copies for columnar views).
  RowVec ToRows() const;

  /// Moves out rows, materializing first when columnar.
  RowVec TakeRows() &&;

 private:
  std::variant<RowVec, ColumnarChunk> repr_;
};

using PartitionVec = std::vector<PartitionData>;

/// Flattens all partitions into a single row vector.
RowVec CollectRows(const PartitionVec& parts);

size_t TotalRows(const PartitionVec& parts);

/// \brief Executable physical operator.
class PhysicalOp {
 public:
  virtual ~PhysicalOp() = default;

  explicit PhysicalOp(SchemaPtr schema, std::vector<std::shared_ptr<PhysicalOp>> children = {})
      : schema_(std::move(schema)), children_(std::move(children)) {}

  const SchemaPtr& schema() const { return schema_; }
  const std::vector<std::shared_ptr<PhysicalOp>>& children() const {
    return children_;
  }

  virtual std::string name() const = 0;

  /// Executes the whole subtree and returns this operator's partitions.
  virtual Result<PartitionVec> Execute(ExecutorContext& ctx) = 0;

  /// Indented tree rendering (physical EXPLAIN).
  std::string TreeString() const;

 private:
  void AppendTree(std::string* out, int indent) const;

  SchemaPtr schema_;
  std::vector<std::shared_ptr<PhysicalOp>> children_;
};

using PhysicalOpPtr = std::shared_ptr<PhysicalOp>;

}  // namespace idf
