#include "sql/predicate_compiler.h"

#include <string_view>

#include "sql/compiled_accessor.h"
#include "storage/row_batch.h"

namespace idf {

namespace {

constexpr uint8_t kF = static_cast<uint8_t>(TriBool::kFalse);
constexpr uint8_t kN = static_cast<uint8_t>(TriBool::kNull);
constexpr uint8_t kT = static_cast<uint8_t>(TriBool::kTrue);

/// Mirrors a comparison so it reads `column <op> literal` when the literal
/// was on the left.
CompareOp MirrorOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    case CompareOp::kEq:
    case CompareOp::kNe:
      return op;
  }
  return op;
}

/// Comparison kernels written in terms of == and < exactly like
/// Value::CompareValues (kLe = !(b < a), kNe = !(a == b), ...) so NaN
/// operands produce bit-identical results to the interpreter.
template <typename T>
bool CmpWith(CompareOp op, const T& a, const T& b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return !(a == b);
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return !(b < a);
    case CompareOp::kGt:
      return b < a;
    case CompareOp::kGe:
      return !(a < b);
  }
  return false;
}

void CollectAndConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr->kind() == ExprKind::kLogical &&
      static_cast<const LogicalExpr*>(expr.get())->op() == LogicalOp::kAnd) {
    CollectAndConjuncts(expr->children()[0], out);
    CollectAndConjuncts(expr->children()[1], out);
    return;
  }
  out->push_back(expr);
}

ExprPtr ConjoinConjuncts(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr acc = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) acc = And(acc, conjuncts[i]);
  return acc;
}

}  // namespace

/// Builds the postfix program; a friend of CompiledPredicate so the
/// instruction encoding stays private to this translation unit's API.
class PredicateCompiler {
 public:
  explicit PredicateCompiler(const Schema& schema) : schema_(schema) {}

  bool Emit(const ExprPtr& e, CompiledPredicate* out) {
    switch (e->kind()) {
      case ExprKind::kLiteral: {
        const Value& v = static_cast<const LiteralExpr*>(e.get())->value();
        if (v.is_null()) return Push(out, Const(kN));
        if (v.is_bool()) return Push(out, Const(v.bool_value() ? kT : kF));
        return false;  // a non-boolean literal is not a predicate
      }
      case ExprKind::kColumnRef: {
        const auto* ref = static_cast<const ColumnRefExpr*>(e.get());
        if (!ref->bound()) return false;
        if (schema_.field(ref->index()).type != TypeId::kBool) return false;
        CompiledPredicate::Inst inst = ColumnInst(ref->index());
        inst.op = CompiledPredicate::OpCode::kBoolCol;
        return Push(out, inst);
      }
      case ExprKind::kIsNull: {
        const ExprPtr& child = e->children()[0];
        if (child->kind() != ExprKind::kColumnRef) return false;
        const auto* ref = static_cast<const ColumnRefExpr*>(child.get());
        if (!ref->bound()) return false;
        CompiledPredicate::Inst inst = ColumnInst(ref->index());
        inst.op = CompiledPredicate::OpCode::kIsNull;
        inst.imm_tri = static_cast<const IsNullExpr*>(e.get())->negated() ? 1 : 0;
        return Push(out, inst);
      }
      case ExprKind::kNot: {
        if (!Emit(e->children()[0], out)) return false;
        CompiledPredicate::Inst inst{};
        inst.op = CompiledPredicate::OpCode::kNot;
        out->insts_.push_back(inst);  // stack effect 0
        return true;
      }
      case ExprKind::kLogical: {
        if (!Emit(e->children()[0], out)) return false;
        if (!Emit(e->children()[1], out)) return false;
        CompiledPredicate::Inst inst{};
        inst.op = static_cast<const LogicalExpr*>(e.get())->op() == LogicalOp::kAnd
                      ? CompiledPredicate::OpCode::kAnd
                      : CompiledPredicate::OpCode::kOr;
        out->insts_.push_back(inst);
        --depth_;  // pops two, pushes one
        return true;
      }
      case ExprKind::kComparison:
        return EmitComparison(static_cast<const ComparisonExpr*>(e.get()), out);
      case ExprKind::kArithmetic:
      case ExprKind::kLike:
      case ExprKind::kParameterRef:  // a bare parameter as a predicate
        return false;  // interpreter-only
    }
    return false;
  }

 private:
  CompiledPredicate::Inst ColumnInst(int col) const {
    const CompiledAccessor acc = CompiledAccessor::ForColumn(schema_, col);
    CompiledPredicate::Inst inst{};
    inst.slot_off = acc.slot_offset();
    inst.null_byte = acc.null_byte();
    inst.null_mask = acc.null_mask();
    return inst;
  }

  bool EmitComparison(const ComparisonExpr* cmp, CompiledPredicate* out) {
    const ExprPtr& lhs = cmp->left();
    const ExprPtr& rhs = cmp->right();
    CompareOp op = cmp->op();
    const ColumnRefExpr* ref = nullptr;
    const Value* lit = nullptr;
    const ParameterRefExpr* param = nullptr;
    // Accepts `column <op> immediate` where the immediate is a literal or
    // a typed prepared-statement parameter (a patchable slot).
    auto classify = [&](const ExprPtr& col_side, const ExprPtr& imm_side) {
      if (col_side->kind() != ExprKind::kColumnRef) return false;
      if (imm_side->kind() == ExprKind::kLiteral) {
        ref = static_cast<const ColumnRefExpr*>(col_side.get());
        lit = &static_cast<const LiteralExpr*>(imm_side.get())->value();
        return true;
      }
      if (imm_side->kind() == ExprKind::kParameterRef) {
        const auto* p = static_cast<const ParameterRefExpr*>(imm_side.get());
        // Untyped or absurdly-numbered parameters stay on the interpreter
        // (Inst.param is 16-bit).
        if (!p->type().has_value() || p->ordinal() < 0 ||
            p->ordinal() > INT16_MAX) {
          return false;
        }
        ref = static_cast<const ColumnRefExpr*>(col_side.get());
        param = p;
        return true;
      }
      return false;
    };
    if (classify(lhs, rhs)) {
    } else if (classify(rhs, lhs)) {
      op = MirrorOp(op);
    } else {
      return false;  // column-vs-column etc.: interpreter
    }
    if (!ref->bound()) return false;
    // Comparing anything with a null literal is NULL without reading the
    // column at all. (A null *parameter* takes the same shape at bind
    // time: BindParams rewrites its slot to a constant NULL.)
    if (lit != nullptr && lit->is_null()) return Push(out, Const(kN));

    CompiledPredicate::Inst inst = ColumnInst(ref->index());
    inst.cmp = op;
    const TypeId col_type = schema_.field(ref->index()).type;
    // The immediate's static type: parameters compare under their declared
    // type (bindings are coerced to it before patching).
    const bool imm_is_string =
        lit != nullptr ? lit->is_string() : *param->type() == TypeId::kString;
    const bool imm_is_double =
        lit != nullptr ? lit->is_double() : *param->type() == TypeId::kFloat64;
    switch (col_type) {
      case TypeId::kString:
        if (!imm_is_string) return false;  // mixed-type: interpreter
        inst.op = CompiledPredicate::OpCode::kCmpString;
        inst.imm_str = static_cast<uint32_t>(out->strings_.size());
        out->strings_.push_back(lit != nullptr ? lit->string_value()
                                               : std::string());
        return PushImm(out, inst, param);
      case TypeId::kFloat64:
        if (imm_is_string) return false;
        inst.op = CompiledPredicate::OpCode::kCmpDouble;
        if (lit != nullptr) inst.imm_f64 = lit->AsDouble();
        return PushImm(out, inst, param);
      case TypeId::kBool:
      case TypeId::kInt32:
      case TypeId::kInt64:
      case TypeId::kTimestamp:
        if (imm_is_string) return false;
        if (imm_is_double) {
          // The interpreter widens either-double comparisons to double.
          inst.op = CompiledPredicate::OpCode::kCmpIntAsDouble;
          inst.imm_tri = col_type == TypeId::kInt32 ? 1 : 0;
          if (lit != nullptr) inst.imm_f64 = lit->double_value();
        } else {
          inst.op = col_type == TypeId::kInt32
                        ? CompiledPredicate::OpCode::kCmpInt32
                        : CompiledPredicate::OpCode::kCmpInt64;
          if (lit != nullptr) inst.imm_i64 = lit->AsInt64();
        }
        return PushImm(out, inst, param);
    }
    return false;
  }

  static CompiledPredicate::Inst Const(uint8_t tri) {
    CompiledPredicate::Inst inst{};
    inst.op = CompiledPredicate::OpCode::kConst;
    inst.imm_tri = tri;
    return inst;
  }

  /// Appends a value-producing instruction, tracking stack depth.
  bool Push(CompiledPredicate* out, CompiledPredicate::Inst inst) {
    if (++depth_ > CompiledPredicate::kMaxStack) return false;
    out->insts_.push_back(inst);
    return true;
  }

  /// Push for comparison instructions whose immediate may come from a
  /// parameter slot; marks the slot when `param` is set.
  bool PushImm(CompiledPredicate* out, CompiledPredicate::Inst inst,
               const ParameterRefExpr* param) {
    if (param != nullptr) {
      inst.param = static_cast<int16_t>(param->ordinal());
      out->has_params_ = true;
    }
    return Push(out, inst);
  }

  const Schema& schema_;
  size_t depth_ = 0;
};

std::optional<CompiledPredicate> CompiledPredicate::Compile(
    const ExprPtr& expr, const Schema& schema) {
  CompiledPredicate program;
  PredicateCompiler compiler(schema);
  if (!compiler.Emit(expr, &program)) return std::nullopt;
  return program;
}

TriBool CompiledPredicate::EvalEncoded(const uint8_t* payload) const {
  uint8_t stack[kMaxStack];
  size_t sp = 0;
  for (const Inst& inst : insts_) {
    switch (inst.op) {
      case OpCode::kConst:
        stack[sp++] = inst.imm_tri;
        break;
      case OpCode::kBoolCol: {
        if (payload[inst.null_byte] & inst.null_mask) {
          stack[sp++] = kN;
          break;
        }
        uint64_t slot;
        std::memcpy(&slot, payload + inst.slot_off, 8);
        stack[sp++] = slot != 0 ? kT : kF;
        break;
      }
      case OpCode::kIsNull: {
        const bool is_null = payload[inst.null_byte] & inst.null_mask;
        stack[sp++] = (is_null != (inst.imm_tri != 0)) ? kT : kF;
        break;
      }
      case OpCode::kCmpInt64: {
        if (payload[inst.null_byte] & inst.null_mask) {
          stack[sp++] = kN;
          break;
        }
        int64_t v;
        std::memcpy(&v, payload + inst.slot_off, 8);
        stack[sp++] = CmpWith(inst.cmp, v, inst.imm_i64) ? kT : kF;
        break;
      }
      case OpCode::kCmpInt32: {
        if (payload[inst.null_byte] & inst.null_mask) {
          stack[sp++] = kN;
          break;
        }
        int32_t v;
        std::memcpy(&v, payload + inst.slot_off, 4);
        stack[sp++] =
            CmpWith(inst.cmp, static_cast<int64_t>(v), inst.imm_i64) ? kT : kF;
        break;
      }
      case OpCode::kCmpIntAsDouble: {
        if (payload[inst.null_byte] & inst.null_mask) {
          stack[sp++] = kN;
          break;
        }
        int64_t v;
        if (inst.imm_tri) {  // int32 column: sign-extend the low word
          int32_t x;
          std::memcpy(&x, payload + inst.slot_off, 4);
          v = x;
        } else {
          std::memcpy(&v, payload + inst.slot_off, 8);
        }
        stack[sp++] =
            CmpWith(inst.cmp, static_cast<double>(v), inst.imm_f64) ? kT : kF;
        break;
      }
      case OpCode::kCmpDouble: {
        if (payload[inst.null_byte] & inst.null_mask) {
          stack[sp++] = kN;
          break;
        }
        double v;
        std::memcpy(&v, payload + inst.slot_off, 8);
        stack[sp++] = CmpWith(inst.cmp, v, inst.imm_f64) ? kT : kF;
        break;
      }
      case OpCode::kCmpString: {
        if (payload[inst.null_byte] & inst.null_mask) {
          stack[sp++] = kN;
          break;
        }
        uint64_t slot;
        std::memcpy(&slot, payload + inst.slot_off, 8);
        const std::string_view v = RawColumnString(payload, slot);
        const std::string_view want = strings_[inst.imm_str];
        stack[sp++] = CmpWith(inst.cmp, v, want) ? kT : kF;
        break;
      }
      case OpCode::kAnd: {  // Kleene AND = min
        const uint8_t b = stack[--sp];
        if (b < stack[sp - 1]) stack[sp - 1] = b;
        break;
      }
      case OpCode::kOr: {  // Kleene OR = max
        const uint8_t b = stack[--sp];
        if (b > stack[sp - 1]) stack[sp - 1] = b;
        break;
      }
      case OpCode::kNot:
        stack[sp - 1] = static_cast<uint8_t>(kT - stack[sp - 1]);
        break;
    }
  }
  return static_cast<TriBool>(stack[0]);
}

Result<CompiledPredicate> CompiledPredicate::BindParams(
    const std::vector<Value>& params) const {
  CompiledPredicate bound = *this;
  bound.has_params_ = false;
  for (Inst& inst : bound.insts_) {
    if (inst.param < 0) continue;
    if (static_cast<size_t>(inst.param) >= params.size()) {
      return Status::Internal(
          "compiled predicate references parameter $" +
          std::to_string(inst.param + 1) + " but only " +
          std::to_string(params.size()) + " bindings were supplied");
    }
    const Value& v = params[static_cast<size_t>(inst.param)];
    if (v.is_null()) {
      // `col <op> NULL` is NULL without reading the column, exactly like
      // a null literal at compile time. The rewrite keeps the program's
      // stack effect (both push one value).
      Inst null_const{};
      null_const.op = OpCode::kConst;
      null_const.imm_tri = static_cast<uint8_t>(TriBool::kNull);
      inst = null_const;
      continue;
    }
    switch (inst.op) {
      case OpCode::kCmpInt64:
      case OpCode::kCmpInt32:
        inst.imm_i64 = v.AsInt64();
        break;
      case OpCode::kCmpIntAsDouble:
      case OpCode::kCmpDouble:
        inst.imm_f64 = v.AsDouble();
        break;
      case OpCode::kCmpString:
        if (!v.is_string()) {
          return Status::Internal("string parameter slot bound to " +
                                  v.ToString());
        }
        bound.strings_[inst.imm_str] = v.string_value();
        break;
      default:
        return Status::Internal(
            "parameter slot on a non-comparison instruction");
    }
    inst.param = -1;
  }
  return bound;
}

PredicateSplit SplitForCompilation(const ExprPtr& predicate,
                                   const Schema& schema) {
  PredicateSplit out;
  std::vector<ExprPtr> conjuncts;
  CollectAndConjuncts(predicate, &conjuncts);
  std::vector<ExprPtr> compilable;
  std::vector<ExprPtr> residual;
  for (const ExprPtr& c : conjuncts) {
    if (CompiledPredicate::Compile(c, schema).has_value()) {
      compilable.push_back(c);
    } else {
      residual.push_back(c);
    }
  }
  if (!compilable.empty()) {
    ExprPtr conj = ConjoinConjuncts(compilable);
    out.compiled = CompiledPredicate::Compile(conj, schema);
    if (out.compiled.has_value()) {
      out.compiled_expr = std::move(conj);
    } else {
      // The conjunction overflowed the evaluation stack: fall back whole.
      residual = conjuncts;
    }
  }
  if (!residual.empty()) out.residual = ConjoinConjuncts(residual);
  return out;
}

}  // namespace idf
