// The regular (vanilla Spark) physical operators: scans, filter, project,
// hash aggregate, sort, limit, shuffled hash join, broadcast hash join.
// Indexed physical operators live in indexed/indexed_operators.h and plug
// into the same PhysicalOp interface.
#pragma once

#include <unordered_map>

#include "engine/broadcast.h"
#include "engine/partitioner.h"
#include "engine/shuffle.h"
#include "sql/logical_plan.h"
#include "sql/physical_plan.h"

namespace idf {

/// Scans an un-cached row table. Each execution copies the rows, modelling
/// a fresh read from storage.
class RowSourceOp : public PhysicalOp {
 public:
  explicit RowSourceOp(RawTablePtr table)
      : PhysicalOp(table->schema), table_(std::move(table)) {}
  std::string name() const override { return "RowSource[" + table_->name + "]"; }
  Result<PartitionVec> Execute(ExecutorContext& ctx) override;

 private:
  RawTablePtr table_;
};

/// Scans a cached columnar table: zero-copy columnar views.
class CacheScanOp : public PhysicalOp {
 public:
  explicit CacheScanOp(CachedTablePtr table)
      : PhysicalOp(table->schema), table_(std::move(table)) {}
  std::string name() const override { return "CacheScan[" + table_->name + "]"; }
  Result<PartitionVec> Execute(ExecutorContext& ctx) override;

 private:
  CachedTablePtr table_;
};

/// Filters rows by a boolean predicate. Columnar inputs with a
/// column-vs-literal comparison use a tight typed scan producing a
/// selection vector; everything else falls back to row-at-a-time
/// evaluation.
class FilterOp : public PhysicalOp {
 public:
  FilterOp(PhysicalOpPtr child, ExprPtr predicate)
      : PhysicalOp(child->schema(), {child}), predicate_(std::move(predicate)) {}
  std::string name() const override {
    return "Filter " + predicate_->ToString();
  }
  Result<PartitionVec> Execute(ExecutorContext& ctx) override;

 private:
  ExprPtr predicate_;
};

/// Projects expressions. Pure column references over columnar input only
/// remap column indices (O(1) per partition — the columnar cache advantage
/// Figure 2 shows for vanilla Spark).
class ProjectOp : public PhysicalOp {
 public:
  ProjectOp(PhysicalOpPtr child, std::vector<ExprPtr> exprs, SchemaPtr schema)
      : PhysicalOp(std::move(schema), {child}), exprs_(std::move(exprs)) {}
  std::string name() const override { return "Project"; }
  Result<PartitionVec> Execute(ExecutorContext& ctx) override;

 private:
  std::vector<ExprPtr> exprs_;
};

/// Partial-per-partition + shuffled-final hash aggregation.
class HashAggregateOp : public PhysicalOp {
 public:
  HashAggregateOp(PhysicalOpPtr child, std::vector<ExprPtr> group_exprs,
                  std::vector<AggSpec> aggs, SchemaPtr schema)
      : PhysicalOp(std::move(schema), {child}),
        group_exprs_(std::move(group_exprs)),
        aggs_(std::move(aggs)) {}
  std::string name() const override { return "HashAggregate"; }
  Result<PartitionVec> Execute(ExecutorContext& ctx) override;

 private:
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggSpec> aggs_;
};

/// Global sort: gathers to one partition and sorts.
class SortOp : public PhysicalOp {
 public:
  SortOp(PhysicalOpPtr child, std::vector<SortKey> keys)
      : PhysicalOp(child->schema(), {child}), keys_(std::move(keys)) {}
  std::string name() const override { return "Sort"; }
  Result<PartitionVec> Execute(ExecutorContext& ctx) override;

 private:
  std::vector<SortKey> keys_;
};

/// The n smallest rows under the sort order, computed with a partial sort
/// per partition followed by a final merge — Spark's TakeOrderedAndProject
/// (produced by fusing Limit over Sort).
class TopKOp : public PhysicalOp {
 public:
  TopKOp(PhysicalOpPtr child, std::vector<SortKey> keys, size_t n)
      : PhysicalOp(child->schema(), {child}), keys_(std::move(keys)), n_(n) {}
  std::string name() const override { return "TopK " + std::to_string(n_); }
  Result<PartitionVec> Execute(ExecutorContext& ctx) override;

 private:
  std::vector<SortKey> keys_;
  size_t n_;
};

/// Bag union: concatenates the partitions of all inputs (UNION ALL).
class UnionAllOp : public PhysicalOp {
 public:
  UnionAllOp(std::vector<PhysicalOpPtr> inputs, SchemaPtr schema)
      : PhysicalOp(std::move(schema), std::move(inputs)) {}
  std::string name() const override {
    return "UnionAll (" + std::to_string(children().size()) + " inputs)";
  }
  Result<PartitionVec> Execute(ExecutorContext& ctx) override;
};

/// Takes the first n rows in partition order.
class LimitOp : public PhysicalOp {
 public:
  LimitOp(PhysicalOpPtr child, size_t n)
      : PhysicalOp(child->schema(), {child}), n_(n) {}
  std::string name() const override { return "Limit " + std::to_string(n_); }
  Result<PartitionVec> Execute(ExecutorContext& ctx) override;

 private:
  size_t n_;
};

/// Shuffles both sides by key hash, builds a hash table per partition from
/// the left side, probes with the right: vanilla Spark's shuffled hash
/// equi-join over cached data (the baseline the indexed join beats by
/// skipping the build-side shuffle and hash-table construction).
class ShuffledHashJoinOp : public PhysicalOp {
 public:
  ShuffledHashJoinOp(PhysicalOpPtr left, PhysicalOpPtr right, ExprPtr left_key,
                     ExprPtr right_key, SchemaPtr schema,
                     JoinType join_type = JoinType::kInner)
      : PhysicalOp(std::move(schema), {left, right}),
        left_key_(std::move(left_key)),
        right_key_(std::move(right_key)),
        join_type_(join_type) {}
  std::string name() const override {
    return "ShuffledHashJoin " + JoinTypeToString(join_type_);
  }
  Result<PartitionVec> Execute(ExecutorContext& ctx) override;

 private:
  ExprPtr left_key_;
  ExprPtr right_key_;
  JoinType join_type_;
};

/// Shuffles both sides by key hash, sorts each partition by key, and
/// merges: Spark's default join for two large relations (SortMergeJoin).
/// This is the baseline the paper's indexed join beats — it moves and
/// sorts both relations where the indexed join moves only the probe side
/// and sorts nothing.
class SortMergeJoinOp : public PhysicalOp {
 public:
  SortMergeJoinOp(PhysicalOpPtr left, PhysicalOpPtr right, ExprPtr left_key,
                  ExprPtr right_key, SchemaPtr schema,
                  JoinType join_type = JoinType::kInner)
      : PhysicalOp(std::move(schema), {left, right}),
        left_key_(std::move(left_key)),
        right_key_(std::move(right_key)),
        join_type_(join_type) {}
  std::string name() const override {
    return "SortMergeJoin " + JoinTypeToString(join_type_);
  }
  Result<PartitionVec> Execute(ExecutorContext& ctx) override;

 private:
  ExprPtr left_key_;
  ExprPtr right_key_;
  JoinType join_type_;
};

/// Broadcasts the smaller side, builds one hash table, probes the larger
/// side in place (no shuffle).
class BroadcastHashJoinOp : public PhysicalOp {
 public:
  /// `broadcast_left` selects which child is broadcast (and built).
  /// Left-outer joins require broadcast_left = false (the probe side must
  /// be the outer side so unmatched rows can be emitted locally).
  BroadcastHashJoinOp(PhysicalOpPtr left, PhysicalOpPtr right, ExprPtr left_key,
                      ExprPtr right_key, bool broadcast_left, SchemaPtr schema,
                      JoinType join_type = JoinType::kInner)
      : PhysicalOp(std::move(schema), {left, right}),
        left_key_(std::move(left_key)),
        right_key_(std::move(right_key)),
        broadcast_left_(broadcast_left),
        join_type_(join_type) {}
  std::string name() const override {
    return std::string("BroadcastHashJoin (broadcast ") +
           (broadcast_left_ ? "left)" : "right)");
  }
  Result<PartitionVec> Execute(ExecutorContext& ctx) override;

 private:
  ExprPtr left_key_;
  ExprPtr right_key_;
  bool broadcast_left_;
  JoinType join_type_;
};

// ---------------------------------------------------------------------------
// Shared helpers (also used by indexed operators)
// ---------------------------------------------------------------------------

/// Evaluates `key` for every row and redistributes rows into
/// `partitioner.num_partitions()` partitions by key hash. Null keys are
/// dropped (inner-join semantics) unless `keep_null_keys` routes them to
/// partition 0 (outer-join sides must retain them for null padding).
/// Metrics account the shuffle volume.
Result<std::vector<RowVec>> ShuffleRowsByKeyExpr(ExecutorContext& ctx,
                                                 const PartitionVec& input,
                                                 const ExprPtr& key,
                                                 const HashPartitioner& partitioner,
                                                 bool keep_null_keys = false);

/// Binary exchange variant of ShuffleRowsByKeyExpr: map tasks evaluate the
/// key, encode each surviving row once (`EncodeRow` against `schema`) into
/// per-task, per-destination byte buffers; reduce tasks concatenate whole
/// buffers. The far side decodes lazily (per column) — no materialized Row
/// ever crosses the exchange. Null keys are dropped (inner-join
/// semantics) unless `keep_null_keys` routes them to partition 0.
Result<BinaryPartitions> ShuffleEncodedByKeyExpr(
    ExecutorContext& ctx, const PartitionVec& input, const Schema& schema,
    const ExprPtr& key, const HashPartitioner& partitioner,
    bool keep_null_keys = false);

/// Hash table from key value to row indices (equi-join build side).
struct JoinHashTable {
  std::vector<Row> rows;
  // hash(key) -> indices into rows; collisions verified via key equality.
  std::unordered_multimap<uint64_t, size_t> map;
  std::vector<Value> keys;  // parallel to rows

  void Reserve(size_t n);
  Status Add(const Row& row, const Value& key);
};

}  // namespace idf
