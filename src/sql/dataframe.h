// DataFrame: the user-facing relational API (the analogue of Spark's
// Dataset/DataFrame). A DataFrame is an immutable handle on a logical plan
// plus the session that can execute it; transformations build new plans
// lazily and actions (Collect/Count) run the full Catalyst-style pipeline.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/logical_plan.h"

namespace idf {

class Session;
using SessionPtr = std::shared_ptr<Session>;

class DataFrame {
 public:
  DataFrame() = default;
  DataFrame(SessionPtr session, LogicalPlanPtr plan)
      : session_(std::move(session)), plan_(std::move(plan)) {}

  bool valid() const { return session_ != nullptr && plan_ != nullptr; }
  const LogicalPlanPtr& plan() const { return plan_; }
  const SessionPtr& session() const { return session_; }

  /// Output schema (analyzes the plan if needed).
  Result<SchemaPtr> schema() const;

  /// Column reference scoped to this DataFrame (sugar over Col()).
  ExprPtr col(const std::string& name) const;

  // --- transformations (lazy) ---

  Result<DataFrame> Filter(ExprPtr predicate) const;
  /// Projection by column names.
  Result<DataFrame> Select(const std::vector<std::string>& names) const;
  /// Projection by expressions with optional output names.
  Result<DataFrame> SelectExprs(std::vector<ExprPtr> exprs,
                                std::vector<std::string> names = {}) const;
  /// Equi-join on `left_key` (from this) = `right_key` (from other).
  Result<DataFrame> Join(const DataFrame& other, ExprPtr left_key,
                         ExprPtr right_key,
                         JoinType join_type = JoinType::kInner) const;
  /// Convenience by column names.
  Result<DataFrame> Join(const DataFrame& other, const std::string& left_col,
                         const std::string& right_col,
                         JoinType join_type = JoinType::kInner) const;
  Result<DataFrame> Aggregate(std::vector<ExprPtr> group_exprs,
                              std::vector<AggSpec> aggs) const;
  Result<DataFrame> GroupByAgg(const std::vector<std::string>& group_cols,
                               std::vector<AggSpec> aggs) const;
  /// Bag union with another DataFrame of a compatible schema (UNION ALL).
  Result<DataFrame> UnionAll(const DataFrame& other) const;
  Result<DataFrame> Sort(std::vector<SortKey> keys) const;
  Result<DataFrame> OrderBy(const std::string& col_name, bool ascending = true) const;
  Result<DataFrame> Limit(size_t n) const;

  // --- actions (eager) ---

  /// Materializes all rows.
  Result<RowVec> Collect() const;
  /// Row count without materializing values where possible.
  Result<size_t> Count() const;
  /// Materializes this DataFrame into the columnar in-memory cache and
  /// returns a DataFrame reading from it (Spark's .cache()).
  Result<DataFrame> Cache(const std::string& name = "cached") const;

  /// Logical (analyzed + optimized) and physical plan rendering.
  Result<std::string> Explain() const;

  /// Runs the query and reports the plans plus wall time, result
  /// cardinality, and the engine metrics the execution produced (shuffle
  /// volume, index probes, ...). Resets the session's metrics for the
  /// duration — not safe against concurrent queries on the same session.
  Result<std::string> ExplainAnalyze() const;

 private:
  SessionPtr session_;
  LogicalPlanPtr plan_;
};

// Aggregate spec helpers.
AggSpec CountStar(std::string out_name = "");
AggSpec CountOf(ExprPtr arg, std::string out_name = "");
AggSpec SumOf(ExprPtr arg, std::string out_name = "");
AggSpec MinOf(ExprPtr arg, std::string out_name = "");
AggSpec MaxOf(ExprPtr arg, std::string out_name = "");
AggSpec AvgOf(ExprPtr arg, std::string out_name = "");

}  // namespace idf
