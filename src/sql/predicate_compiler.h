// Compiled predicates over encoded rows: a bound filter Expr is compiled
// at plan time into a flat, branch-light postfix program of typed
// comparisons that read column values straight from an encoded payload
// pointer (the fixed-prefix layout of storage/row_batch.h) using
// precomputed slot offsets — no Value boxing and no virtual Eval per row.
// The offset machinery lives in sql/compiled_accessor.h (CompiledAccessor),
// shared with the fused aggregation operator's group-key and
// aggregate-input reads.
//
// Compilable subset: bound column-vs-literal comparisons (int/double/bool/
// timestamp compare on raw bytes, strings via length-prefixed views),
// IS [NOT] NULL of a bound column, boolean columns and literals used as
// predicates, and AND/OR/NOT with SQL three-valued (Kleene) semantics.
// LIKE, arithmetic, column-vs-column and mixed string/numeric comparisons
// stay on the interpreter. SplitForCompilation() splits a conjunction into
// a compiled part and an interpreted residual, so one non-compilable
// conjunct falls back alone instead of forcing the whole filter off the
// encoded fast path. Compiled evaluation matches Expr::Eval bit-for-bit
// (the differential fuzzer in tests/test_property_fuzz.cc enforces this).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sql/expression.h"
#include "types/schema.h"

namespace idf {

/// SQL three-valued truth value. The numeric ordering makes Kleene logic
/// branch-light: AND = min, OR = max, NOT = kTrue - x.
enum class TriBool : uint8_t { kFalse = 0, kNull = 1, kTrue = 2 };

/// A flat program evaluating one predicate against an encoded payload.
class CompiledPredicate {
 public:
  /// Compiles a bound predicate over `schema`; nullopt when any part of it
  /// is outside the compilable subset (callers fall back to Expr::Eval).
  static std::optional<CompiledPredicate> Compile(const ExprPtr& expr,
                                                  const Schema& schema);

  /// Three-valued evaluation directly against an encoded payload.
  /// Programs with unbound parameter slots must be BindParams()ed first.
  TriBool EvalEncoded(const uint8_t* payload) const;

  /// True when the program contains parameter slots (comparisons against
  /// prepared-statement placeholders) that must be patched before
  /// evaluation.
  bool has_params() const { return has_params_; }

  /// Returns a copy of the program with every parameter slot patched to
  /// the corresponding value (already coerced to the parameter's declared
  /// type). A null binding turns its comparison into a constant NULL,
  /// matching the interpreter's `col <op> NULL` semantics. This is the
  /// re-bind path of the prepared-statement cache: patching immediates is
  /// O(#insts) and never recompiles the expression.
  Result<CompiledPredicate> BindParams(const std::vector<Value>& params) const;

  /// Filter semantics: keep the row iff the predicate is TRUE (not NULL).
  bool Matches(const uint8_t* payload) const {
    return EvalEncoded(payload) == TriBool::kTrue;
  }

  size_t num_instructions() const { return insts_.size(); }

 private:
  friend class PredicateCompiler;
  // The batch evaluator (sql/vectorized_eval.h) re-runs the same program
  // column-at-a-time and must read the instruction stream directly.
  friend class VectorizedPredicate;

  enum class OpCode : uint8_t {
    kConst,           // push imm_tri
    kBoolCol,         // push a bool column as a truth value
    kIsNull,          // push IS [NOT] NULL of a column (imm_tri = negated)
    kCmpInt64,        // int64/timestamp/bool column vs int64 immediate
    kCmpInt32,        // int32 column vs int64 immediate
    kCmpIntAsDouble,  // integer-backed column widened vs double immediate
    kCmpDouble,       // float64 column vs double immediate
    kCmpString,       // string column vs pooled string immediate
    kAnd,
    kOr,
    kNot,
  };

  struct Inst {
    OpCode op;
    CompareOp cmp = CompareOp::kEq;  // comparison opcodes only
    uint32_t slot_off = 0;           // precomputed bitmap_bytes + col * 8
    uint32_t null_byte = 0;          // byte offset of the column's null bit
    uint8_t null_mask = 0;
    uint8_t imm_tri = 0;   // kConst value / kIsNull negation / int32 flag
    int16_t param = -1;    // parameter ordinal feeding the immediate, or -1
    int64_t imm_i64 = 0;
    double imm_f64 = 0;
    uint32_t imm_str = 0;  // index into strings_
  };

  static constexpr size_t kMaxStack = 64;

  std::vector<Inst> insts_;
  std::vector<std::string> strings_;
  bool has_params_ = false;
};

/// A filter predicate split into a compiled conjunction and an interpreter
/// residual. A row passes the original predicate iff the compiled part
/// Matches() AND the residual evaluates to TRUE (each may be absent).
struct PredicateSplit {
  std::optional<CompiledPredicate> compiled;
  ExprPtr compiled_expr;  // the conjunction that was compiled (diagnostics)
  ExprPtr residual;       // nullptr when every conjunct compiled
};

/// Splits the AND tree of `predicate` into compilable and interpreter-only
/// conjuncts and compiles the former. Always safe: when nothing compiles,
/// `compiled` is empty and `residual` is the whole predicate (transparent
/// fallback); when everything compiles, `residual` is null.
PredicateSplit SplitForCompilation(const ExprPtr& predicate,
                                   const Schema& schema);

}  // namespace idf
