// Expression trees evaluated over rows, with SQL three-valued null
// semantics. Column references are resolved to ordinals by the analyzer
// (sql/analyzer.h) before evaluation.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/row.h"
#include "types/schema.h"

namespace idf {

enum class ExprKind : uint8_t {
  kColumnRef,
  kLiteral,
  kComparison,
  kLogical,
  kNot,
  kIsNull,
  kArithmetic,
  kLike,
  kParameterRef,
};

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicalOp : uint8_t { kAnd, kOr };
enum class ArithmeticOp : uint8_t { kAdd, kSub, kMul, kDiv };

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// \brief Immutable expression node.
class Expr {
 public:
  virtual ~Expr() = default;

  ExprKind kind() const { return kind_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  /// Evaluates against a row whose layout matches the bound schema.
  /// Unbound column references fail with Internal.
  virtual Result<Value> Eval(const Row& row) const = 0;

  /// Output type under `schema`; also validates operand types.
  virtual Result<TypeId> ResultType(const Schema& schema) const = 0;

  virtual std::string ToString() const = 0;

 protected:
  Expr(ExprKind kind, std::vector<ExprPtr> children)
      : kind_(kind), children_(std::move(children)) {}

 private:
  ExprKind kind_;
  std::vector<ExprPtr> children_;
};

/// Reference to a column by name; `index` is -1 until bound.
class ColumnRefExpr : public Expr {
 public:
  explicit ColumnRefExpr(std::string name, int index = -1)
      : Expr(ExprKind::kColumnRef, {}), name_(std::move(name)), index_(index) {}

  const std::string& name() const { return name_; }
  int index() const { return index_; }
  bool bound() const { return index_ >= 0; }

  Result<Value> Eval(const Row& row) const override;
  Result<TypeId> ResultType(const Schema& schema) const override;
  std::string ToString() const override;

 private:
  std::string name_;
  int index_;
};

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value value)
      : Expr(ExprKind::kLiteral, {}), value_(std::move(value)) {}

  const Value& value() const { return value_; }

  Result<Value> Eval(const Row& row) const override { return value_; }
  Result<TypeId> ResultType(const Schema& schema) const override;
  std::string ToString() const override { return value_.ToString(); }

 private:
  Value value_;
};

/// Placeholder for a prepared-statement parameter (`?` or `$n` in SQL).
/// `ordinal` is zero-based; `type` is empty until the analyzer infers it
/// from the parameter's context (sql/parameters.h). Parameters are never
/// evaluated directly: execution either substitutes literals
/// (SubstituteParameters) or patches compiled-predicate slots
/// (CompiledPredicate::BindParams) before any row is touched.
class ParameterRefExpr : public Expr {
 public:
  explicit ParameterRefExpr(int ordinal,
                            std::optional<TypeId> type = std::nullopt)
      : Expr(ExprKind::kParameterRef, {}), ordinal_(ordinal), type_(type) {}

  int ordinal() const { return ordinal_; }
  const std::optional<TypeId>& type() const { return type_; }

  Result<Value> Eval(const Row& row) const override;
  Result<TypeId> ResultType(const Schema& schema) const override;
  std::string ToString() const override;

 private:
  int ordinal_;
  std::optional<TypeId> type_;
};

class ComparisonExpr : public Expr {
 public:
  ComparisonExpr(CompareOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kComparison, {std::move(left), std::move(right)}), op_(op) {}

  CompareOp op() const { return op_; }
  const ExprPtr& left() const { return children()[0]; }
  const ExprPtr& right() const { return children()[1]; }

  Result<Value> Eval(const Row& row) const override;
  Result<TypeId> ResultType(const Schema& schema) const override;
  std::string ToString() const override;

 private:
  CompareOp op_;
};

class LogicalExpr : public Expr {
 public:
  LogicalExpr(LogicalOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kLogical, {std::move(left), std::move(right)}), op_(op) {}

  LogicalOp op() const { return op_; }

  Result<Value> Eval(const Row& row) const override;
  Result<TypeId> ResultType(const Schema& schema) const override;
  std::string ToString() const override;

 private:
  LogicalOp op_;
};

class NotExpr : public Expr {
 public:
  explicit NotExpr(ExprPtr child) : Expr(ExprKind::kNot, {std::move(child)}) {}

  Result<Value> Eval(const Row& row) const override;
  Result<TypeId> ResultType(const Schema& schema) const override;
  std::string ToString() const override;
};

class IsNullExpr : public Expr {
 public:
  explicit IsNullExpr(ExprPtr child, bool negated = false)
      : Expr(ExprKind::kIsNull, {std::move(child)}), negated_(negated) {}

  bool negated() const { return negated_; }

  Result<Value> Eval(const Row& row) const override;
  Result<TypeId> ResultType(const Schema& schema) const override;
  std::string ToString() const override;

 private:
  bool negated_;
};

/// SQL LIKE: `%` matches any run (including empty), `_` any single
/// character; everything else matches literally. Null input or pattern
/// yields null.
class LikeExpr : public Expr {
 public:
  LikeExpr(ExprPtr input, std::string pattern, bool negated = false)
      : Expr(ExprKind::kLike, {std::move(input)}),
        pattern_(std::move(pattern)),
        negated_(negated) {}

  const std::string& pattern() const { return pattern_; }
  bool negated() const { return negated_; }

  Result<Value> Eval(const Row& row) const override;
  Result<TypeId> ResultType(const Schema& schema) const override;
  std::string ToString() const override;

 private:
  std::string pattern_;
  bool negated_;
};

/// Standalone LIKE matcher (exposed for tests).
bool LikeMatch(const std::string& text, const std::string& pattern);

class ArithmeticExpr : public Expr {
 public:
  ArithmeticExpr(ArithmeticOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kArithmetic, {std::move(left), std::move(right)}), op_(op) {}

  ArithmeticOp op() const { return op_; }

  Result<Value> Eval(const Row& row) const override;
  Result<TypeId> ResultType(const Schema& schema) const override;
  std::string ToString() const override;

 private:
  ArithmeticOp op_;
};

// ---------------------------------------------------------------------------
// Builders (the expression DSL used throughout the API and tests)
// ---------------------------------------------------------------------------

ExprPtr Col(std::string name);
ExprPtr Lit(Value v);
ExprPtr Eq(ExprPtr a, ExprPtr b);
ExprPtr Ne(ExprPtr a, ExprPtr b);
ExprPtr Lt(ExprPtr a, ExprPtr b);
ExprPtr Le(ExprPtr a, ExprPtr b);
ExprPtr Gt(ExprPtr a, ExprPtr b);
ExprPtr Ge(ExprPtr a, ExprPtr b);
ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Not(ExprPtr a);
ExprPtr IsNull(ExprPtr a);
ExprPtr IsNotNull(ExprPtr a);
ExprPtr Like(ExprPtr input, std::string pattern);
ExprPtr NotLike(ExprPtr input, std::string pattern);
ExprPtr Add(ExprPtr a, ExprPtr b);
ExprPtr Sub(ExprPtr a, ExprPtr b);
ExprPtr Mul(ExprPtr a, ExprPtr b);
ExprPtr Div(ExprPtr a, ExprPtr b);
ExprPtr Param(int ordinal, std::optional<TypeId> type = std::nullopt);

// ---------------------------------------------------------------------------
// Analysis helpers
// ---------------------------------------------------------------------------

/// Returns a copy of `expr` with every ColumnRef bound to its ordinal in
/// `schema`; fails with KeyError on unknown columns.
Result<ExprPtr> BindExpr(const ExprPtr& expr, const Schema& schema);

/// Compares expression trees structurally (used by optimizer tests).
bool ExprEquals(const ExprPtr& a, const ExprPtr& b);

/// If `expr` is `col == literal` (either order) over schema ordinal `col`,
/// returns true and fills the outputs; used by the indexed filter rule and
/// by the columnar fast path.
bool MatchEqualityFilter(const ExprPtr& expr, int* col_index, Value* literal);

/// Generalization of MatchEqualityFilter to any comparison operator. When
/// the literal is on the left, the operator is mirrored so the result
/// always reads `column <op> literal`.
bool MatchComparisonFilter(const ExprPtr& expr, CompareOp* op, int* col_index,
                           Value* literal);

/// Evaluates `lhs <op> rhs` under the engine's Value ordering (callers
/// handle null operands separately).
bool CompareWithOp(CompareOp op, const Value& lhs, const Value& rhs);

/// True if the expression contains any ColumnRef that is still unbound.
bool HasUnboundRefs(const ExprPtr& expr);

/// Appends the ordinals of all bound ColumnRefs in `expr` to `out`.
void CollectRefIndices(const ExprPtr& expr, std::vector<int>* out);

/// Returns `expr` with every bound ColumnRef ordinal shifted by `delta`
/// (used when pushing predicates through joins). Fails when a shift would
/// go negative.
Result<ExprPtr> ShiftColumnRefs(const ExprPtr& expr, int delta);

/// Returns `expr` with every bound ColumnRef ordinal `i` replaced by
/// `replacements[i]` (used when pushing predicates through projections).
Result<ExprPtr> SubstituteColumnRefs(const ExprPtr& expr,
                                     const std::vector<ExprPtr>& replacements);

/// True if the expression contains any ParameterRef.
bool ExprHasParameters(const ExprPtr& expr);

/// Rebuilds `expr` with every ParameterRef mapped through `map_param`
/// (the parameter analogue of SubstituteColumnRefs' machinery). Returns
/// `expr` unchanged when it contains no parameters.
Result<ExprPtr> MapParameters(
    const ExprPtr& expr,
    const std::function<Result<ExprPtr>(const ParameterRefExpr&)>& map_param);

/// Returns `expr` with every ParameterRef replaced by a literal of
/// `params[ordinal]`; fails when an ordinal is out of range. The values
/// must already be coerced to the parameters' declared types.
Result<ExprPtr> SubstituteParameters(const ExprPtr& expr,
                                     const std::vector<Value>& params);

}  // namespace idf
