// Shared aggregation machinery: the per-group accumulator (AggState), its
// update/merge/finalize kernels, and the morsel-parallel merge driver that
// turns per-chunk partial hash tables into finalized output partitions.
// Used by the generic HashAggregateOp (sql/physical_operators.cc) and the
// fused encoded-row aggregate (indexed/indexed_operators.cc) so both paths
// agree on SQL aggregate semantics (null handling, int-vs-float SUM,
// AVG = running double sum + count) to the bit.
#pragma once

#include <unordered_map>
#include <vector>

#include "engine/executor_context.h"
#include "sql/logical_plan.h"
#include "sql/physical_plan.h"
#include "types/row.h"

namespace idf {

struct AggRowHasher {
  size_t operator()(const Row& r) const { return static_cast<size_t>(HashRow(r)); }
};

struct AggRowEqual {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }
};

/// One aggregate's running state for one group.
struct AggState {
  int64_t count = 0;
  int64_t isum = 0;
  double dsum = 0;
  bool any = false;
  Value minv;
  Value maxv;
};

/// Group key -> one AggState per aggregate.
using GroupStateMap =
    std::unordered_map<Row, std::vector<AggState>, AggRowHasher, AggRowEqual>;

/// Folds one input value into a state (SQL null semantics: nulls are
/// ignored by everything except COUNT(*)).
void UpdateState(AggState* s, AggFn fn, const Value& v);

/// Folds a partial state into another (the merge phase of partial
/// aggregation; commutative and associative per aggregate).
void MergeStates(AggState* s, AggFn fn, const AggState& partial);

/// Appends the final value of one aggregate to an output row. `out_type`
/// selects int-vs-float SUM finalization.
void AppendFinal(Row* row, AggFn fn, const AggState& s, TypeId out_type);

/// Merges per-chunk partial group maps into finalized output partitions:
/// each chunk's entries are split by group-key hash into
/// ctx.num_partitions() buckets, then buckets merge and finalize in
/// parallel (groups never straddle buckets, so the merge needs no locks).
/// A global aggregate (num_groups == 0) merges serially into a single row
/// — an empty input still yields one row of default states (count = 0,
/// sum/avg/min/max = null). Accounts agg_partials_merged and
/// rows_produced; honors the context's cancellation token.
Result<PartitionVec> MergePartialGroups(ExecutorContext& ctx,
                                        std::vector<GroupStateMap> chunk_maps,
                                        size_t num_groups,
                                        const std::vector<AggSpec>& aggs,
                                        const std::vector<TypeId>& out_types);

}  // namespace idf
