#include "sql/vectorized_eval.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <string_view>

#include "storage/row_batch.h"

#if IDF_SIMD
#include <immintrin.h>
#endif

namespace idf {

namespace {

constexpr uint8_t kF = static_cast<uint8_t>(TriBool::kFalse);
constexpr uint8_t kN = static_cast<uint8_t>(TriBool::kNull);
constexpr uint8_t kT = static_cast<uint8_t>(TriBool::kTrue);

// ---------------------------------------------------------------------------
// Comparison kernels. Written in terms of == and < exactly like
// Value::CompareValues and the row-at-a-time EvalEncoded (kLe = !(b < a),
// kNe = !(a == b), ...) so NaN operands produce bit-identical results. The
// operator is a template parameter: DispatchCmp instantiates the lane loop
// once per CompareOp, keeping the loop body free of per-row dispatch.
// ---------------------------------------------------------------------------

template <CompareOp op, typename T>
inline bool CmpLane(const T& a, const T& b) {
  if constexpr (op == CompareOp::kEq) return a == b;
  if constexpr (op == CompareOp::kNe) return !(a == b);
  if constexpr (op == CompareOp::kLt) return a < b;
  if constexpr (op == CompareOp::kLe) return !(b < a);
  if constexpr (op == CompareOp::kGt) return b < a;
  if constexpr (op == CompareOp::kGe) return !(a < b);
}

template <typename Fn>
void DispatchCmp(CompareOp op, Fn&& fn) {
  switch (op) {
    case CompareOp::kEq:
      fn(std::integral_constant<CompareOp, CompareOp::kEq>{});
      return;
    case CompareOp::kNe:
      fn(std::integral_constant<CompareOp, CompareOp::kNe>{});
      return;
    case CompareOp::kLt:
      fn(std::integral_constant<CompareOp, CompareOp::kLt>{});
      return;
    case CompareOp::kLe:
      fn(std::integral_constant<CompareOp, CompareOp::kLe>{});
      return;
    case CompareOp::kGt:
      fn(std::integral_constant<CompareOp, CompareOp::kGt>{});
      return;
    case CompareOp::kGe:
      fn(std::integral_constant<CompareOp, CompareOp::kGe>{});
      return;
  }
}

// ---------------------------------------------------------------------------
// Gather pass: one strided walk over the batch's payload pointers per
// column-reading instruction. Null bits unpack into a byte-per-lane mask;
// slots load as raw 8-byte images (the fixed section always exists, so the
// load is defined even for null lanes — the lane result just ignores it).
// ---------------------------------------------------------------------------

// Each instruction makes exactly ONE pass over the batch's payload
// pointers, reading the null bit and the slot together while the row's
// cache line is hot — a split null-gather + slot-gather walks the batch
// twice and pays the pointer-chase misses twice. The slot load is defined
// even for null lanes (the fixed section always exists); the lane result
// just ignores it.

inline uint64_t LoadSlot64(const uint8_t* payload, uint32_t slot_off) {
  uint64_t x;
  std::memcpy(&x, payload + slot_off, 8);
  return x;
}

/// int32 slots load sign-extended to the int64 lane image (the widening
/// Value::AsInt64 applies, exactly as in the row-at-a-time kCmpInt32).
inline uint64_t LoadSlot32SignExtended(const uint8_t* payload,
                                       uint32_t slot_off) {
  int32_t x;
  std::memcpy(&x, payload + slot_off, 4);
  return std::bit_cast<uint64_t>(static_cast<int64_t>(x));
}

inline bool LoadNull(const uint8_t* payload, uint32_t null_byte,
                     uint8_t null_mask) {
  return (payload[null_byte] & null_mask) != 0;
}

// The lane loops write TriBool bytes; a plain uint8_t* store aliases
// everything under the language rules, which would force the compiler to
// reload the payload pointers and instruction fields on every iteration.
// The kernels therefore take hoisted scalar operands and a restrict-
// qualified output (the tri stack never overlaps payload memory).
#define IDF_RESTRICT __restrict__

template <CompareOp op>
void CmpInt64Lanes(const uint8_t* const* payloads, size_t n, uint32_t slot_off,
                   uint32_t null_byte, uint8_t null_mask, int64_t imm,
                   uint8_t* IDF_RESTRICT out) {
  for (size_t i = 0; i < n; ++i) {
    const uint8_t* p = payloads[i];
    const int64_t v = std::bit_cast<int64_t>(LoadSlot64(p, slot_off));
    const bool c = CmpLane<op>(v, imm);
    out[i] = LoadNull(p, null_byte, null_mask) ? kN : (c ? kT : kF);
  }
}

template <CompareOp op>
void CmpInt32Lanes(const uint8_t* const* payloads, size_t n, uint32_t slot_off,
                   uint32_t null_byte, uint8_t null_mask, int64_t imm,
                   uint8_t* IDF_RESTRICT out) {
  for (size_t i = 0; i < n; ++i) {
    const uint8_t* p = payloads[i];
    const int64_t v =
        std::bit_cast<int64_t>(LoadSlot32SignExtended(p, slot_off));
    const bool c = CmpLane<op>(v, imm);
    out[i] = LoadNull(p, null_byte, null_mask) ? kN : (c ? kT : kF);
  }
}

template <CompareOp op, bool narrow>
void CmpIntAsDoubleLanes(const uint8_t* const* payloads, size_t n,
                         uint32_t slot_off, uint32_t null_byte,
                         uint8_t null_mask, double imm,
                         uint8_t* IDF_RESTRICT out) {
  for (size_t i = 0; i < n; ++i) {
    const uint8_t* p = payloads[i];
    const uint64_t s = narrow ? LoadSlot32SignExtended(p, slot_off)
                              : LoadSlot64(p, slot_off);
    const double v = static_cast<double>(std::bit_cast<int64_t>(s));
    out[i] = LoadNull(p, null_byte, null_mask)
                 ? kN
                 : (CmpLane<op>(v, imm) ? kT : kF);
  }
}

template <CompareOp op>
void CmpDoubleLanes(const uint8_t* const* payloads, size_t n, uint32_t slot_off,
                    uint32_t null_byte, uint8_t null_mask, double imm,
                    uint8_t* IDF_RESTRICT out) {
  for (size_t i = 0; i < n; ++i) {
    const uint8_t* p = payloads[i];
    const double v = std::bit_cast<double>(LoadSlot64(p, slot_off));
    out[i] = LoadNull(p, null_byte, null_mask)
                 ? kN
                 : (CmpLane<op>(v, imm) ? kT : kF);
  }
}

template <CompareOp op>
void CmpStringLanes(const uint8_t* const* payloads, size_t n,
                    uint32_t slot_off, uint32_t null_byte, uint8_t null_mask,
                    std::string_view want, uint8_t* IDF_RESTRICT out) {
  for (size_t i = 0; i < n; ++i) {
    const uint8_t* p = payloads[i];
    // The slot of a null lane is garbage; the view must not be formed for
    // it (the ternary short-circuits the deref).
    out[i] = LoadNull(p, null_byte, null_mask)
                 ? kN
                 : (CmpLane<op>(RawColumnString(p, LoadSlot64(p, slot_off)),
                                want)
                        ? kT
                        : kF);
  }
}

void BoolColLanes(const uint8_t* const* payloads, size_t n, uint32_t slot_off,
                  uint32_t null_byte, uint8_t null_mask,
                  uint8_t* IDF_RESTRICT out) {
  for (size_t i = 0; i < n; ++i) {
    const uint8_t* p = payloads[i];
    const uint8_t t = LoadSlot64(p, slot_off) != 0 ? kT : kF;
    out[i] = LoadNull(p, null_byte, null_mask) ? kN : t;
  }
}

void IsNullLanes(const uint8_t* const* payloads, size_t n, uint32_t null_byte,
                 uint8_t null_mask, bool negated, uint8_t* IDF_RESTRICT out) {
  for (size_t i = 0; i < n; ++i) {
    const bool isnull = LoadNull(payloads[i], null_byte, null_mask);
    out[i] = (isnull != negated) ? kT : kF;
  }
}

// ---------------------------------------------------------------------------
// Branch-free Kleene combinators over TriBool byte lanes: AND = min,
// OR = max, NOT = 2 - x. The SIMD and scalar forms are bit-identical
// (unsigned byte min/max and subtraction are exact either way); the scalar
// loops are written to auto-vectorize when the intrinsics are disabled.
// ---------------------------------------------------------------------------

void LaneAnd(uint8_t* a, const uint8_t* b, size_t n) {
  size_t i = 0;
#if IDF_SIMD
#if defined(__AVX2__)
  for (; i + 32 <= n; i += 32) {
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i y = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_min_epu8(x, y));
  }
#endif
  for (; i + 16 <= n; i += 16) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i y = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(a + i), _mm_min_epu8(x, y));
  }
#endif
  for (; i < n; ++i) a[i] = std::min(a[i], b[i]);
}

void LaneOr(uint8_t* a, const uint8_t* b, size_t n) {
  size_t i = 0;
#if IDF_SIMD
#if defined(__AVX2__)
  for (; i + 32 <= n; i += 32) {
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i y = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_max_epu8(x, y));
  }
#endif
  for (; i + 16 <= n; i += 16) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i y = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(a + i), _mm_max_epu8(x, y));
  }
#endif
  for (; i < n; ++i) a[i] = std::max(a[i], b[i]);
}

void LaneNot(uint8_t* a, size_t n) {
  size_t i = 0;
#if IDF_SIMD
#if defined(__AVX2__)
  const __m256i two256 = _mm256_set1_epi8(2);
  for (; i + 32 <= n; i += 32) {
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_sub_epi8(two256, x));
  }
#endif
  const __m128i two = _mm_set1_epi8(2);
  for (; i + 16 <= n; i += 16) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(a + i), _mm_sub_epi8(two, x));
  }
#endif
  for (; i < n; ++i) a[i] = static_cast<uint8_t>(kT - a[i]);
}

}  // namespace

VectorizedPredicate::VectorizedPredicate(const CompiledPredicate& program)
    : program_(&program) {
  // Simulate the stack effects to size the lane stack: every value
  // producer pushes one, AND/OR pop two and push one, NOT is neutral.
  size_t sp = 0;
  for (const CompiledPredicate::Inst& inst : program.insts_) {
    switch (inst.op) {
      case CompiledPredicate::OpCode::kAnd:
      case CompiledPredicate::OpCode::kOr:
        --sp;
        break;
      case CompiledPredicate::OpCode::kNot:
        break;
      default:
        ++sp;
        break;
    }
    depth_ = std::max(depth_, sp);
  }
}

void VectorizedPredicate::EvalOneBatch(const uint8_t* const* payloads, size_t n,
                                       VectorScratch* scratch) const {
  if (scratch->tri.size() < depth_ * kBatchRows) {
    scratch->tri.resize(depth_ * kBatchRows);
  }
  uint8_t* stack = scratch->tri.data();
  size_t sp = 0;
  for (const CompiledPredicate::Inst& inst : program_->insts_) {
    uint8_t* top = stack + sp * kBatchRows;  // lane vector this inst writes
    switch (inst.op) {
      case CompiledPredicate::OpCode::kConst:
        std::memset(top, inst.imm_tri, n);
        ++sp;
        break;
      case CompiledPredicate::OpCode::kBoolCol:
        BoolColLanes(payloads, n, inst.slot_off, inst.null_byte,
                     inst.null_mask, top);
        ++sp;
        break;
      case CompiledPredicate::OpCode::kIsNull:
        IsNullLanes(payloads, n, inst.null_byte, inst.null_mask,
                    inst.imm_tri != 0, top);
        ++sp;
        break;
      case CompiledPredicate::OpCode::kCmpInt64:
        DispatchCmp(inst.cmp, [&](auto opc) {
          CmpInt64Lanes<opc.value>(payloads, n, inst.slot_off, inst.null_byte,
                                   inst.null_mask, inst.imm_i64, top);
        });
        ++sp;
        break;
      case CompiledPredicate::OpCode::kCmpInt32:
        DispatchCmp(inst.cmp, [&](auto opc) {
          CmpInt32Lanes<opc.value>(payloads, n, inst.slot_off, inst.null_byte,
                                   inst.null_mask, inst.imm_i64, top);
        });
        ++sp;
        break;
      case CompiledPredicate::OpCode::kCmpIntAsDouble:
        DispatchCmp(inst.cmp, [&](auto opc) {
          if (inst.imm_tri != 0) {  // int32 column: sign-extend the low word
            CmpIntAsDoubleLanes<opc.value, true>(payloads, n, inst.slot_off,
                                                 inst.null_byte,
                                                 inst.null_mask, inst.imm_f64,
                                                 top);
          } else {
            CmpIntAsDoubleLanes<opc.value, false>(payloads, n, inst.slot_off,
                                                  inst.null_byte,
                                                  inst.null_mask, inst.imm_f64,
                                                  top);
          }
        });
        ++sp;
        break;
      case CompiledPredicate::OpCode::kCmpDouble:
        DispatchCmp(inst.cmp, [&](auto opc) {
          CmpDoubleLanes<opc.value>(payloads, n, inst.slot_off, inst.null_byte,
                                    inst.null_mask, inst.imm_f64, top);
        });
        ++sp;
        break;
      case CompiledPredicate::OpCode::kCmpString:
        DispatchCmp(inst.cmp, [&](auto opc) {
          CmpStringLanes<opc.value>(payloads, n, inst.slot_off, inst.null_byte,
                                    inst.null_mask,
                                    program_->strings_[inst.imm_str], top);
        });
        ++sp;
        break;
      case CompiledPredicate::OpCode::kAnd:
        LaneAnd(stack + (sp - 2) * kBatchRows, stack + (sp - 1) * kBatchRows, n);
        --sp;
        break;
      case CompiledPredicate::OpCode::kOr:
        LaneOr(stack + (sp - 2) * kBatchRows, stack + (sp - 1) * kBatchRows, n);
        --sp;
        break;
      case CompiledPredicate::OpCode::kNot:
        LaneNot(stack + (sp - 1) * kBatchRows, n);
        break;
    }
  }
  // Result lanes are at the bottom of the stack (stack[0..n)).
}

void VectorizedPredicate::EvalBatch(const uint8_t* const* payloads, size_t n,
                                    uint8_t* out_tri,
                                    VectorScratch* scratch) const {
  for (size_t base = 0; base < n; base += kBatchRows) {
    const size_t bn = std::min(kBatchRows, n - base);
    EvalOneBatch(payloads + base, bn, scratch);
    std::memcpy(out_tri + base, scratch->tri.data(), bn);
  }
}

size_t VectorizedPredicate::FilterBatch(const uint8_t* const* payloads,
                                        size_t n, uint32_t* sel,
                                        VectorScratch* scratch) const {
  size_t count = 0;
  for (size_t base = 0; base < n; base += kBatchRows) {
    const size_t bn = std::min(kBatchRows, n - base);
    EvalOneBatch(payloads + base, bn, scratch);
    const uint8_t* tri = scratch->tri.data();
    for (size_t i = 0; i < bn; ++i) {
      // Branch-free append: the write always happens, the cursor only
      // advances for TRUE lanes.
      sel[count] = static_cast<uint32_t>(base + i);
      count += tri[i] == kT ? 1 : 0;
    }
  }
  return count;
}

}  // namespace idf
