#include "sql/sql_parser.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <vector>

#include "sql/analyzer.h"
#include "sql/parameters.h"
#include "sql/session.h"

namespace idf {

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokKind : uint8_t {
  kIdent,
  kInt,
  kFloat,
  kString,
  kParam,  // `?` or `$n` placeholder; text = zero-based ordinal
  kComma,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kDot,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;  // ident (original case), string contents, number text
  size_t pos;        // byte offset, for error messages
};

Status LexError(size_t pos, const std::string& msg) {
  return Status::InvalidArgument("SQL at offset " + std::to_string(pos) + ": " +
                                 msg);
}

/// Lexes `sql`. Placeholder ordinals are assigned here, in textual order:
/// each `?` takes the next ordinal, `$n` is explicit (1-based in SQL,
/// stored 0-based). `num_params` (optional) receives the binding count —
/// the `?` count, or the highest `$n`. Mixing the two styles is an error.
Result<std::vector<Token>> Lex(const std::string& sql,
                               int* num_params = nullptr) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  int qmark_count = 0;
  int max_dollar = 0;
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_')) {
        ++j;
      }
      out.push_back(Token{TokKind::kIdent, sql.substr(i, j - i), start});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      if (j < n && sql[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(sql[j + 1]))) {
        is_float = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      }
      out.push_back(Token{is_float ? TokKind::kFloat : TokKind::kInt,
                          sql.substr(i, j - i), start});
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string text;
      size_t j = i + 1;
      for (;;) {
        if (j >= n) return LexError(start, "unterminated string literal");
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {  // escaped quote
            text.push_back('\'');
            j += 2;
            continue;
          }
          break;
        }
        text.push_back(sql[j]);
        ++j;
      }
      out.push_back(Token{TokKind::kString, std::move(text), start});
      i = j + 1;
      continue;
    }
    if (c == '?') {
      out.push_back(Token{TokKind::kParam, std::to_string(qmark_count), start});
      ++qmark_count;
      ++i;
      continue;
    }
    if (c == '$') {
      size_t j = i + 1;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      if (j == i + 1) return LexError(start, "expected digits after '$'");
      if (j - i - 1 > 6) return LexError(start, "parameter number too large");
      int one_based = std::stoi(sql.substr(i + 1, j - i - 1));
      if (one_based < 1) return LexError(start, "parameters are numbered from $1");
      max_dollar = std::max(max_dollar, one_based);
      out.push_back(Token{TokKind::kParam, std::to_string(one_based - 1), start});
      i = j;
      continue;
    }
    auto push = [&](TokKind k, size_t len) {
      out.push_back(Token{k, sql.substr(i, len), start});
      i += len;
    };
    switch (c) {
      case ',':
        push(TokKind::kComma, 1);
        break;
      case '(':
        push(TokKind::kLParen, 1);
        break;
      case ')':
        push(TokKind::kRParen, 1);
        break;
      case '*':
        push(TokKind::kStar, 1);
        break;
      case '+':
        push(TokKind::kPlus, 1);
        break;
      case '-':
        push(TokKind::kMinus, 1);
        break;
      case '/':
        push(TokKind::kSlash, 1);
        break;
      case '.':
        push(TokKind::kDot, 1);
        break;
      case '=':
        push(TokKind::kEq, 1);
        break;
      case '!':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokKind::kNe, 2);
        } else {
          return LexError(start, "unexpected '!'");
        }
        break;
      case '<':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokKind::kLe, 2);
        } else if (i + 1 < n && sql[i + 1] == '>') {
          push(TokKind::kNe, 2);
        } else {
          push(TokKind::kLt, 1);
        }
        break;
      case '>':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokKind::kGe, 2);
        } else {
          push(TokKind::kGt, 1);
        }
        break;
      default:
        return LexError(start, std::string("unexpected character '") + c + "'");
    }
  }
  if (qmark_count > 0 && max_dollar > 0) {
    return LexError(0, "cannot mix '?' and '$n' parameter styles");
  }
  if (num_params != nullptr) {
    *num_params = qmark_count > 0 ? qmark_count : max_dollar;
  }
  out.push_back(Token{TokKind::kEnd, "", n});
  return out;
}

std::string Upper(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// One FROM/JOIN relation with its position in the concatenated schema.
struct FromEntry {
  std::string alias;
  SchemaPtr schema;
  int offset;  // first ordinal in the concatenated row
};

struct SelectItem {
  ExprPtr expr;            // non-aggregate item
  std::optional<AggSpec> agg;  // aggregate item
  std::string name;        // output name ("" = derived)
};

class Parser {
 public:
  Parser(SessionPtr session, std::vector<Token> tokens,
         bool allow_params = false)
      : session_(std::move(session)),
        tokens_(std::move(tokens)),
        allow_params_(allow_params) {}

  Result<DataFrame> ParseSelect();

 private:
  /// Parses one SELECT ... [GROUP BY/HAVING] unit including its projection.
  /// In branch mode (union members) ORDER BY / LIMIT are left unconsumed
  /// for the union level.
  Result<LogicalPlanPtr> ParseSelectBranch(bool branch_mode);

  /// True when a top-level (paren-depth-0) UNION keyword exists anywhere
  /// after `pos_`.
  bool HasTopLevelUnion() const;

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekKeyword(const char* kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokKind::kIdent && Upper(t.text) == kw;
  }
  bool AcceptKeyword(const char* kw) {
    if (!PeekKeyword(kw)) return false;
    ++pos_;
    return true;
  }
  Status ExpectKeyword(const char* kw) {
    if (AcceptKeyword(kw)) return Status::OK();
    return Error(std::string("expected ") + kw);
  }
  bool Accept(TokKind k) {
    if (Peek().kind != k) return false;
    ++pos_;
    return true;
  }
  Status Expect(TokKind k, const char* what) {
    if (Accept(k)) return Status::OK();
    return Error(std::string("expected ") + what);
  }
  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("SQL at offset " +
                                   std::to_string(Peek().pos) + ": " + msg +
                                   " (near '" + Peek().text + "')");
  }

  bool IsClauseBoundary() const {
    static const char* kBoundaries[] = {"FROM",  "WHERE", "GROUP", "HAVING",
                                        "ORDER", "LIMIT", "JOIN",  "ON",
                                        "AS",    "ASC",   "DESC",  "AND",
                                        "OR",    "BY",    "LEFT",  "INNER",
                                        "OUTER", "UNION", "ALL"};
    if (Peek().kind != TokKind::kIdent) return false;
    std::string up = Upper(Peek().text);
    for (const char* b : kBoundaries) {
      if (up == b) return true;
    }
    return false;
  }

  // FROM handling --------------------------------------------------------

  Result<FromEntry*> ResolveAlias(const std::string& alias) {
    for (FromEntry& e : from_) {
      if (e.alias == alias) return &e;
    }
    return Status::KeyError("unknown table alias '" + alias + "' in SQL query");
  }

  /// Resolves alias.column to a bound reference in the concatenated schema.
  Result<ExprPtr> QualifiedRef(const std::string& alias, const std::string& col) {
    IDF_ASSIGN_OR_RETURN(FromEntry * entry, ResolveAlias(alias));
    IDF_ASSIGN_OR_RETURN(int idx, entry->schema->ResolveFieldIndex(col));
    return ExprPtr(
        std::make_shared<ColumnRefExpr>(col, entry->offset + idx));
  }

  Status ParseFromClause();
  Status ParseJoinClause(JoinType join_type);

  /// Parses `name [AS alias]` and registers a FromEntry; returns its
  /// DataFrame.
  Result<DataFrame> ParseTableRef();

  // Expressions ----------------------------------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParsePrimary();
  Result<Value> ParseLiteralValue();

  // Select items ---------------------------------------------------------

  Result<SelectItem> ParseSelectItem();
  Result<AggSpec> ParseAggregateCall();
  std::optional<AggFn> PeekAggregate() const;

  /// Consumes a kParam token into a (still untyped) ParameterRefExpr.
  Result<ExprPtr> ParseParam() {
    if (!allow_params_) {
      return Error("parameters are only allowed in prepared statements");
    }
    return Param(std::stoi(Advance().text));
  }

  SessionPtr session_;
  std::vector<Token> tokens_;
  bool allow_params_ = false;
  size_t pos_ = 0;
  std::vector<FromEntry> from_;
  LogicalPlanPtr plan_;  // running FROM/JOIN plan
  /// Non-null while parsing HAVING: aggregates encountered in expressions
  /// are appended here and replaced by references to their hidden output.
  std::vector<AggSpec>* having_aggs_ = nullptr;
};

Result<DataFrame> Parser::ParseTableRef() {
  if (Peek().kind != TokKind::kIdent || IsClauseBoundary()) {
    return Error("expected table name");
  }
  std::string name = Advance().text;
  std::string alias = name;
  if (AcceptKeyword("AS")) {
    if (Peek().kind != TokKind::kIdent) return Error("expected alias after AS");
    alias = Advance().text;
  } else if (Peek().kind == TokKind::kIdent && !IsClauseBoundary()) {
    alias = Advance().text;
  }
  IDF_ASSIGN_OR_RETURN(DataFrame df, session_->Table(name));
  IDF_ASSIGN_OR_RETURN(SchemaPtr schema, df.schema());
  int offset = 0;
  for (const FromEntry& e : from_) offset += e.schema->num_fields();
  for (const FromEntry& e : from_) {
    if (e.alias == alias) {
      return Status::InvalidArgument("duplicate table alias '" + alias + "'");
    }
  }
  from_.push_back(FromEntry{alias, schema, offset});
  return df;
}

Status Parser::ParseFromClause() {
  IDF_ASSIGN_OR_RETURN(DataFrame first, ParseTableRef());
  plan_ = first.plan();
  for (;;) {
    JoinType join_type = JoinType::kInner;
    if (AcceptKeyword("LEFT")) {
      (void)AcceptKeyword("OUTER");
      IDF_RETURN_NOT_OK(ExpectKeyword("JOIN"));
      join_type = JoinType::kLeftOuter;
    } else if (AcceptKeyword("INNER")) {
      IDF_RETURN_NOT_OK(ExpectKeyword("JOIN"));
    } else if (!AcceptKeyword("JOIN")) {
      break;
    }
    IDF_RETURN_NOT_OK(ParseJoinClause(join_type));
  }
  return Status::OK();
}

Status Parser::ParseJoinClause(JoinType join_type) {
  // <table> [alias] ON qual = qual — one qualifier must name an earlier
  // table (left side of the running join tree), the other the new table.
  size_t right_index = from_.size();
  IDF_ASSIGN_OR_RETURN(DataFrame right_df, ParseTableRef());
  const FromEntry& right = from_[right_index];
  IDF_RETURN_NOT_OK(ExpectKeyword("ON"));

  auto parse_qual = [this]() -> Result<std::pair<std::string, std::string>> {
    if (Peek().kind != TokKind::kIdent) return Error("expected alias.column");
    std::string alias = Advance().text;
    IDF_RETURN_NOT_OK(Expect(TokKind::kDot, ". in join qualifier"));
    if (Peek().kind != TokKind::kIdent) return Error("expected column after '.'");
    std::string col = Advance().text;
    return std::make_pair(std::move(alias), std::move(col));
  };
  IDF_ASSIGN_OR_RETURN(auto qa, parse_qual());
  IDF_RETURN_NOT_OK(Expect(TokKind::kEq, "= in join condition"));
  IDF_ASSIGN_OR_RETURN(auto qb, parse_qual());

  auto side_of = [&](const std::string& alias) -> Result<bool> {
    // true = belongs to the new right table.
    for (size_t i = 0; i < from_.size(); ++i) {
      if (from_[i].alias == alias) return i == right_index;
    }
    return Status::KeyError("unknown alias '" + alias + "' in join condition");
  };
  IDF_ASSIGN_OR_RETURN(bool a_is_right, side_of(qa.first));
  IDF_ASSIGN_OR_RETURN(bool b_is_right, side_of(qb.first));
  if (a_is_right == b_is_right) {
    return Error("join condition must reference both sides");
  }
  const auto& left_qual = a_is_right ? qb : qa;
  const auto& right_qual = a_is_right ? qa : qb;

  // Left key: ordinal in the concatenation of all earlier tables.
  IDF_ASSIGN_OR_RETURN(ExprPtr left_key,
                       QualifiedRef(left_qual.first, left_qual.second));
  // Right key: ordinal local to the new table's schema.
  IDF_ASSIGN_OR_RETURN(int right_idx,
                       right.schema->ResolveFieldIndex(right_qual.second));
  ExprPtr right_key =
      std::make_shared<ColumnRefExpr>(right_qual.second, right_idx);

  plan_ = std::make_shared<JoinNode>(plan_, right_df.plan(), std::move(left_key),
                                     std::move(right_key), join_type);
  return Status::OK();
}

std::optional<AggFn> Parser::PeekAggregate() const {
  if (Peek().kind != TokKind::kIdent || Peek(1).kind != TokKind::kLParen) {
    return std::nullopt;
  }
  std::string up = Upper(Peek().text);
  if (up == "COUNT") return AggFn::kCount;
  if (up == "SUM") return AggFn::kSum;
  if (up == "MIN") return AggFn::kMin;
  if (up == "MAX") return AggFn::kMax;
  if (up == "AVG") return AggFn::kAvg;
  return std::nullopt;
}

Result<Value> Parser::ParseLiteralValue() {
  bool negative = Accept(TokKind::kMinus);
  const Token& t = Peek();
  switch (t.kind) {
    case TokKind::kInt: {
      Advance();
      int64_t v = std::stoll(t.text);
      return Value(negative ? -v : v);
    }
    case TokKind::kFloat: {
      Advance();
      double v = std::stod(t.text);
      return Value(negative ? -v : v);
    }
    case TokKind::kString:
      if (negative) return Error("cannot negate a string literal");
      Advance();
      return Value(t.text);
    case TokKind::kIdent: {
      std::string up = Upper(t.text);
      if (negative) return Error("cannot negate " + t.text);
      if (up == "TRUE") {
        Advance();
        return Value(true);
      }
      if (up == "FALSE") {
        Advance();
        return Value(false);
      }
      if (up == "NULL") {
        Advance();
        return Value::Null();
      }
      return Error("expected literal");
    }
    default:
      return Error("expected literal");
  }
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.kind) {
    case TokKind::kLParen: {
      Advance();
      IDF_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      IDF_RETURN_NOT_OK(Expect(TokKind::kRParen, ")"));
      return e;
    }
    case TokKind::kMinus: {
      // Unary minus: -literal folds, -expr becomes (0 - expr).
      if (Peek(1).kind == TokKind::kInt || Peek(1).kind == TokKind::kFloat) {
        IDF_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        return Lit(std::move(v));
      }
      Advance();
      IDF_ASSIGN_OR_RETURN(ExprPtr e, ParsePrimary());
      return Sub(Lit(Value(int64_t{0})), std::move(e));
    }
    case TokKind::kInt:
    case TokKind::kFloat:
    case TokKind::kString: {
      IDF_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      return Lit(std::move(v));
    }
    case TokKind::kParam:
      return ParseParam();
    case TokKind::kIdent: {
      std::string up = Upper(t.text);
      if (up == "TRUE" || up == "FALSE" || up == "NULL") {
        IDF_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        return Lit(std::move(v));
      }
      if (PeekAggregate().has_value()) {
        if (having_aggs_ == nullptr) {
          return Error(
              "aggregate calls are only allowed in the select list and in "
              "HAVING");
        }
        // HAVING: materialize the aggregate as a hidden output column and
        // reference it (reusing an existing structurally equal spec).
        IDF_ASSIGN_OR_RETURN(AggSpec spec, ParseAggregateCall());
        for (const AggSpec& existing : *having_aggs_) {
          bool same_arg = (existing.arg == nullptr && spec.arg == nullptr) ||
                          (existing.arg != nullptr && spec.arg != nullptr &&
                           ExprEquals(existing.arg, spec.arg));
          if (existing.fn == spec.fn && same_arg) {
            return Col(existing.out_name);
          }
        }
        spec.out_name =
            "_having_agg_" + std::to_string(having_aggs_->size());
        having_aggs_->push_back(spec);
        return Col(spec.out_name);
      }
      std::string first = Advance().text;
      if (Accept(TokKind::kDot)) {
        if (Peek().kind != TokKind::kIdent) {
          return Error("expected column after '.'");
        }
        std::string col = Advance().text;
        return QualifiedRef(first, col);
      }
      return Col(first);
    }
    default:
      return Error("expected expression");
  }
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  IDF_ASSIGN_OR_RETURN(ExprPtr left, ParsePrimary());
  for (;;) {
    if (Accept(TokKind::kStar)) {
      IDF_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
      left = Mul(std::move(left), std::move(right));
    } else if (Accept(TokKind::kSlash)) {
      IDF_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
      left = Div(std::move(left), std::move(right));
    } else {
      return left;
    }
  }
}

Result<ExprPtr> Parser::ParseAdditive() {
  IDF_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  for (;;) {
    if (Accept(TokKind::kPlus)) {
      IDF_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = Add(std::move(left), std::move(right));
    } else if (Accept(TokKind::kMinus)) {
      IDF_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = Sub(std::move(left), std::move(right));
    } else {
      return left;
    }
  }
}

Result<ExprPtr> Parser::ParseComparison() {
  IDF_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());

  // IS [NOT] NULL
  if (PeekKeyword("IS")) {
    Advance();
    bool negated = AcceptKeyword("NOT");
    if (!AcceptKeyword("NULL")) return Error("expected NULL after IS");
    return negated ? IsNotNull(std::move(left)) : IsNull(std::move(left));
  }
  // BETWEEN a AND b  =>  left >= a AND left <= b
  if (PeekKeyword("BETWEEN")) {
    Advance();
    IDF_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
    IDF_RETURN_NOT_OK(ExpectKeyword("AND"));
    IDF_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
    return And(Ge(left, std::move(lo)), Le(left, std::move(hi)));
  }
  // [NOT] LIKE 'pattern'
  bool not_like = false;
  if (PeekKeyword("NOT") && PeekKeyword("LIKE", 1)) {
    Advance();
    not_like = true;
  }
  if (PeekKeyword("LIKE")) {
    Advance();
    if (Peek().kind != TokKind::kString) {
      return Error("expected string pattern after LIKE");
    }
    std::string pattern = Advance().text;
    return not_like ? NotLike(std::move(left), std::move(pattern))
                    : Like(std::move(left), std::move(pattern));
  }
  if (not_like) return Error("expected LIKE after NOT");

  // [NOT] IN (literal, ...)
  bool not_in = false;
  if (PeekKeyword("NOT") && PeekKeyword("IN", 1)) {
    Advance();
    not_in = true;
  }
  if (PeekKeyword("IN")) {
    Advance();
    IDF_RETURN_NOT_OK(Expect(TokKind::kLParen, "( after IN"));
    ExprPtr disjunction;
    for (;;) {
      ExprPtr element;
      if (Peek().kind == TokKind::kParam) {
        IDF_ASSIGN_OR_RETURN(element, ParseParam());
      } else {
        IDF_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        element = Lit(std::move(v));
      }
      ExprPtr eq = Eq(left, std::move(element));
      disjunction = disjunction ? Or(std::move(disjunction), std::move(eq))
                                : std::move(eq);
      if (!Accept(TokKind::kComma)) break;
    }
    IDF_RETURN_NOT_OK(Expect(TokKind::kRParen, ") after IN list"));
    return not_in ? Not(std::move(disjunction)) : disjunction;
  }

  switch (Peek().kind) {
    case TokKind::kEq:
      Advance();
      {
        IDF_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
        return Eq(std::move(left), std::move(right));
      }
    case TokKind::kNe:
      Advance();
      {
        IDF_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
        return Ne(std::move(left), std::move(right));
      }
    case TokKind::kLt:
      Advance();
      {
        IDF_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
        return Lt(std::move(left), std::move(right));
      }
    case TokKind::kLe:
      Advance();
      {
        IDF_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
        return Le(std::move(left), std::move(right));
      }
    case TokKind::kGt:
      Advance();
      {
        IDF_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
        return Gt(std::move(left), std::move(right));
      }
    case TokKind::kGe:
      Advance();
      {
        IDF_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
        return Ge(std::move(left), std::move(right));
      }
    default:
      return left;
  }
}

Result<ExprPtr> Parser::ParseNot() {
  if (PeekKeyword("NOT") && !PeekKeyword("IN", 1)) {
    Advance();
    IDF_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
    return Not(std::move(e));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseAnd() {
  IDF_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (AcceptKeyword("AND")) {
    IDF_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = And(std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseOr() {
  IDF_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (AcceptKeyword("OR")) {
    IDF_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = Or(std::move(left), std::move(right));
  }
  return left;
}

Result<AggSpec> Parser::ParseAggregateCall() {
  std::optional<AggFn> agg = PeekAggregate();
  if (!agg.has_value()) return Error("expected aggregate call");
  Advance();  // function name
  Advance();  // (
  AggSpec spec;
  if (*agg == AggFn::kCount && Accept(TokKind::kStar)) {
    spec = AggSpec{AggFn::kCountStar, nullptr, ""};
  } else {
    IDF_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
    spec = AggSpec{*agg, std::move(arg), ""};
  }
  IDF_RETURN_NOT_OK(Expect(TokKind::kRParen, ") after aggregate"));
  return spec;
}

Result<SelectItem> Parser::ParseSelectItem() {
  SelectItem item;
  if (PeekAggregate().has_value()) {
    IDF_ASSIGN_OR_RETURN(AggSpec spec, ParseAggregateCall());
    item.agg = std::move(spec);
  } else {
    IDF_ASSIGN_OR_RETURN(item.expr, ParseExpr());
  }
  if (AcceptKeyword("AS")) {
    if (Peek().kind != TokKind::kIdent) return Error("expected name after AS");
    item.name = Advance().text;
  } else if (Peek().kind == TokKind::kIdent && !IsClauseBoundary()) {
    item.name = Advance().text;
  }
  return item;
}

namespace {
std::string DisplayNameOf(const SelectItem& item) {
  if (!item.name.empty()) return item.name;
  if (item.agg.has_value()) {
    std::string out = AggFnToString(item.agg->fn);
    if (item.agg->arg) out += "(" + DeriveColumnName(item.agg->arg) + ")";
    return out;
  }
  return DeriveColumnName(item.expr);
}
}  // namespace

bool Parser::HasTopLevelUnion() const {
  int depth = 0;
  for (size_t i = pos_; i < tokens_.size(); ++i) {
    const Token& t = tokens_[i];
    if (t.kind == TokKind::kLParen) ++depth;
    if (t.kind == TokKind::kRParen) --depth;
    if (depth == 0 && t.kind == TokKind::kIdent && Upper(t.text) == "UNION") {
      return true;
    }
  }
  return false;
}

Result<DataFrame> Parser::ParseSelect() {
  const bool is_union = HasTopLevelUnion();
  IDF_ASSIGN_OR_RETURN(LogicalPlanPtr plan, ParseSelectBranch(is_union));
  if (is_union) {
    std::vector<LogicalPlanPtr> branches = {plan};
    while (AcceptKeyword("UNION")) {
      IDF_RETURN_NOT_OK(ExpectKeyword("ALL"));
      // Each branch gets a fresh FROM scope.
      from_.clear();
      plan_ = nullptr;
      IDF_ASSIGN_OR_RETURN(LogicalPlanPtr branch,
                           ParseSelectBranch(/*branch_mode=*/true));
      branches.push_back(std::move(branch));
    }
    if (branches.size() < 2) return Error("expected UNION ALL");
    plan = std::make_shared<UnionAllNode>(std::move(branches));
  }

  // ORDER BY / LIMIT: for plain selects they were handled inside the
  // branch; for unions they apply to the union's output columns here.
  if (is_union && AcceptKeyword("ORDER")) {
    IDF_RETURN_NOT_OK(ExpectKeyword("BY"));
    std::vector<SortKey> keys;
    for (;;) {
      IDF_ASSIGN_OR_RETURN(ExprPtr key, ParseExpr());
      bool ascending = true;
      if (AcceptKeyword("DESC")) {
        ascending = false;
      } else {
        (void)AcceptKeyword("ASC");
      }
      keys.push_back(SortKey{std::move(key), ascending});
      if (!Accept(TokKind::kComma)) break;
    }
    plan = std::make_shared<SortNode>(std::move(plan), std::move(keys));
  }
  if (is_union && AcceptKeyword("LIMIT")) {
    if (Peek().kind != TokKind::kInt) return Error("expected integer after LIMIT");
    size_t n = static_cast<size_t>(std::stoll(Advance().text));
    plan = std::make_shared<LimitNode>(std::move(plan), n);
  }

  if (Peek().kind != TokKind::kEnd) return Error("unexpected trailing input");

  // Analyze eagerly so syntax-valid but semantically broken queries fail
  // at Sql() time, not at the first action.
  IDF_ASSIGN_OR_RETURN(LogicalPlanPtr analyzed, Analyze(plan));
  return DataFrame(session_, std::move(analyzed));
}

Result<LogicalPlanPtr> Parser::ParseSelectBranch(bool branch_mode) {
  IDF_RETURN_NOT_OK(ExpectKeyword("SELECT"));
  bool distinct = AcceptKeyword("DISTINCT");

  // The select list references FROM aliases, so parse FROM first: remember
  // the select-list token range, skip to FROM, then come back.
  size_t select_start = pos_;
  int depth = 0;
  while (Peek().kind != TokKind::kEnd && !(depth == 0 && PeekKeyword("FROM"))) {
    if (Peek().kind == TokKind::kLParen) ++depth;
    if (Peek().kind == TokKind::kRParen) --depth;
    ++pos_;
  }
  if (Peek().kind == TokKind::kEnd) return Error("expected FROM");
  size_t from_pos = pos_;
  ++pos_;  // consume FROM
  IDF_RETURN_NOT_OK(ParseFromClause());
  size_t after_from = pos_;

  // --- select list ---
  pos_ = select_start;
  bool select_star = false;
  std::vector<SelectItem> items;
  if (Peek().kind == TokKind::kStar) {
    Advance();
    select_star = true;
  } else {
    for (;;) {
      IDF_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      items.push_back(std::move(item));
      if (!Accept(TokKind::kComma)) break;
    }
  }
  if (pos_ != from_pos) return Error("unexpected input before FROM");
  pos_ = after_from;

  // --- WHERE ---
  LogicalPlanPtr plan = plan_;
  if (AcceptKeyword("WHERE")) {
    IDF_ASSIGN_OR_RETURN(ExprPtr pred, ParseExpr());
    plan = std::make_shared<FilterNode>(std::move(plan), std::move(pred));
  }

  // --- GROUP BY / aggregates / DISTINCT ---
  std::vector<ExprPtr> group_exprs;
  bool has_group_by = false;
  if (AcceptKeyword("GROUP")) {
    IDF_RETURN_NOT_OK(ExpectKeyword("BY"));
    has_group_by = true;
    for (;;) {
      IDF_ASSIGN_OR_RETURN(ExprPtr g, ParseExpr());
      group_exprs.push_back(std::move(g));
      if (!Accept(TokKind::kComma)) break;
    }
  }
  bool has_aggs = false;
  for (const SelectItem& item : items) has_aggs |= item.agg.has_value();

  bool aggregated = has_group_by || has_aggs || distinct;
  if (distinct && (has_group_by || has_aggs)) {
    return Error("DISTINCT cannot be combined with GROUP BY or aggregates");
  }
  if (select_star && aggregated) {
    return Error("SELECT * cannot be combined with aggregation or DISTINCT");
  }

  std::vector<ExprPtr> project_exprs;
  std::vector<std::string> project_names;

  if (aggregated) {
    if (distinct) {
      for (const SelectItem& item : items) group_exprs.push_back(item.expr);
    }
    // Validate non-aggregate select items against the group list and
    // collect the aggregate specs.
    std::vector<std::string> group_names;
    for (const ExprPtr& g : group_exprs) group_names.push_back(DeriveColumnName(g));
    std::vector<AggSpec> aggs;
    for (SelectItem& item : items) {
      if (item.agg.has_value()) {
        AggSpec spec = *item.agg;
        spec.out_name = DisplayNameOf(item);
        aggs.push_back(std::move(spec));
        continue;
      }
      bool in_groups = false;
      for (const ExprPtr& g : group_exprs) in_groups |= ExprEquals(item.expr, g);
      if (!in_groups) {
        return Status::InvalidArgument(
            "SQL: select item '" + DisplayNameOf(item) +
            "' is neither aggregated nor in GROUP BY");
      }
    }
    // --- HAVING (may introduce hidden aggregate outputs) ---
    ExprPtr having_pred;
    if (AcceptKeyword("HAVING")) {
      having_aggs_ = &aggs;
      auto pred = ParseExpr();
      having_aggs_ = nullptr;
      IDF_RETURN_NOT_OK(pred.status());
      having_pred = std::move(pred).ValueUnsafe();
    }
    plan = std::make_shared<AggregateNode>(std::move(plan), group_exprs,
                                           group_names, std::move(aggs));
    if (having_pred != nullptr) {
      plan = std::make_shared<FilterNode>(std::move(plan), std::move(having_pred));
    }
    // Project the aggregate output into select-list order and names
    // (dropping hidden HAVING aggregates).
    for (const SelectItem& item : items) {
      std::string display = DisplayNameOf(item);
      project_exprs.push_back(Col(item.agg.has_value()
                                      ? display
                                      : DeriveColumnName(item.expr)));
      project_names.push_back(display);
    }
  } else {
    if (AcceptKeyword("HAVING")) {
      return Error("HAVING requires GROUP BY or aggregates");
    }
    if (!select_star) {
      for (const SelectItem& item : items) {
        project_exprs.push_back(item.expr);
        project_names.push_back(DisplayNameOf(item));
      }
    }
  }

  // --- ORDER BY (plain selects only; union branches leave it to the
  // union level) ---
  std::vector<SortKey> sort_keys;
  if (!branch_mode && AcceptKeyword("ORDER")) {
    IDF_RETURN_NOT_OK(ExpectKeyword("BY"));
    for (;;) {
      IDF_ASSIGN_OR_RETURN(ExprPtr key, ParseExpr());
      bool ascending = true;
      if (AcceptKeyword("DESC")) {
        ascending = false;
      } else {
        (void)AcceptKeyword("ASC");
      }
      sort_keys.push_back(SortKey{std::move(key), ascending});
      if (!Accept(TokKind::kComma)) break;
    }
  }

  if (aggregated) {
    // Project first (select names exist), then sort by output columns.
    plan = std::make_shared<ProjectNode>(std::move(plan),
                                         std::move(project_exprs),
                                         std::move(project_names));
    if (!sort_keys.empty()) {
      plan = std::make_shared<SortNode>(std::move(plan), std::move(sort_keys));
    }
  } else {
    // Sort over the full input schema (ORDER BY may reference columns the
    // projection drops), then project.
    if (!sort_keys.empty()) {
      plan = std::make_shared<SortNode>(std::move(plan), std::move(sort_keys));
    }
    if (!select_star) {
      plan = std::make_shared<ProjectNode>(std::move(plan),
                                           std::move(project_exprs),
                                           std::move(project_names));
    }
  }

  // --- LIMIT ---
  if (!branch_mode && AcceptKeyword("LIMIT")) {
    if (Peek().kind != TokKind::kInt) return Error("expected integer after LIMIT");
    size_t n = static_cast<size_t>(std::stoll(Advance().text));
    plan = std::make_shared<LimitNode>(std::move(plan), n);
  }

  return plan;
}

}  // namespace

Result<DataFrame> ParseSql(const SessionPtr& session, const std::string& sql) {
  IDF_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser parser(session, std::move(tokens));
  return parser.ParseSelect();
}

Result<PreparedParse> ParseSqlPrepared(const SessionPtr& session,
                                       const std::string& sql) {
  int num_params = 0;
  IDF_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql, &num_params));
  Parser parser(session, std::move(tokens), /*allow_params=*/true);
  IDF_ASSIGN_OR_RETURN(DataFrame df, parser.ParseSelect());
  // The parse analyzed the plan with untyped placeholders; pin every
  // parameter's type from its context, then rewrite the tree with typed
  // ParameterRefs (schemas are preserved, so no re-analysis happens).
  IDF_ASSIGN_OR_RETURN(std::vector<TypeId> types,
                       InferParameterTypes(df.plan(), num_params));
  IDF_ASSIGN_OR_RETURN(LogicalPlanPtr typed,
                       ApplyParameterTypes(df.plan(), types));
  PreparedParse out;
  out.plan = std::move(typed);
  out.param_types = std::move(types);
  return out;
}

}  // namespace idf
