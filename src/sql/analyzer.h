// Analyzer: the analysis layer of the Catalyst-style pipeline. Resolves
// column references to ordinals, type-checks expressions, and computes the
// output schema of every plan node bottom-up.
#pragma once

#include "sql/logical_plan.h"

namespace idf {

/// Returns a fully analyzed copy of `plan` (every node carries an output
/// schema and every expression is bound), or the error that makes the plan
/// invalid.
Result<LogicalPlanPtr> Analyze(const LogicalPlanPtr& plan);

/// Display name for an output column produced by `expr` (column name for
/// plain references, textual form otherwise).
std::string DeriveColumnName(const ExprPtr& expr);

}  // namespace idf
