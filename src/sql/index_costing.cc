#include "sql/index_costing.h"

#include <algorithm>

namespace idf {

namespace {

/// Matches an OR-tree of `col = literal` comparisons all on one
/// bitmap-indexed column (the desugared `col IN (...)`), collecting the
/// literals. Mirrors the primary-index matcher in indexed_rules.cc but
/// resolves the column from the tree instead of requiring it up front.
bool MatchInTree(const ExprPtr& expr, int* col, std::vector<Value>* keys) {
  if (expr->kind() == ExprKind::kLogical &&
      static_cast<const LogicalExpr*>(expr.get())->op() == LogicalOp::kOr) {
    return MatchInTree(expr->children()[0], col, keys) &&
           MatchInTree(expr->children()[1], col, keys);
  }
  int c = -1;
  Value literal;
  if (!MatchEqualityFilter(expr, &c, &literal)) return false;
  if (*col == -1) *col = c;
  if (c != *col) return false;
  keys->push_back(std::move(literal));
  return true;
}

/// Casts `v` to the column's declared type; false when the literal cannot
/// represent the column's domain (the scan path then handles the conjunct).
bool CastKey(const Schema& schema, int col, Value* v) {
  auto cast = v->CastTo(schema.field(col).type);
  if (!cast.ok()) return false;
  *v = std::move(cast).ValueUnsafe();
  return true;
}

/// A range probe under construction for one column.
struct RangeAccum {
  SecondaryProbe probe;
  std::vector<size_t> consumed;
};

/// Tightens the accumulated lower bound with (v, inclusive). At an equal
/// bound value the exclusive form is the tighter one.
void TightenLo(SecondaryProbe* p, Value v, bool inclusive) {
  if (!p->lo.has_value() || *p->lo < v) {
    p->lo = std::move(v);
    p->lo_inclusive = inclusive;
  } else if (*p->lo == v && !inclusive) {
    p->lo_inclusive = false;
  }
}

void TightenHi(SecondaryProbe* p, Value v, bool inclusive) {
  if (!p->hi.has_value() || v < *p->hi) {
    p->hi = std::move(v);
    p->hi_inclusive = inclusive;
  } else if (*p->hi == v && !inclusive) {
    p->hi_inclusive = false;
  }
}

}  // namespace

std::vector<SecondaryProbeCandidate> CollectSecondaryProbeCandidates(
    const std::vector<ExprPtr>& conjuncts, const Schema& schema,
    const std::function<SecondaryIndexKind(int)>& kind_of) {
  std::vector<SecondaryProbeCandidate> out;
  // Range bounds accumulate across conjuncts (BETWEEN desugars to
  // `col >= lo AND col <= hi`), so range candidates build per column.
  std::vector<RangeAccum> ranges;
  auto range_for = [&ranges, &schema](int col) -> RangeAccum* {
    for (RangeAccum& r : ranges) {
      if (r.probe.column == col) return &r;
    }
    ranges.push_back(RangeAccum{});
    ranges.back().probe.column = col;
    ranges.back().probe.kind = SecondaryIndexKind::kRange;
    (void)schema;
    return &ranges.back();
  };

  for (size_t i = 0; i < conjuncts.size(); ++i) {
    const ExprPtr& c = conjuncts[i];
    // Equality / IN over a bitmap column.
    {
      int col = -1;
      std::vector<Value> keys;
      if (MatchInTree(c, &col, &keys) &&
          kind_of(col) == SecondaryIndexKind::kBitmap) {
        bool ok = true;
        for (Value& k : keys) ok = ok && CastKey(schema, col, &k);
        if (ok) {
          SecondaryProbeCandidate cand;
          cand.probe.column = col;
          cand.probe.kind = SecondaryIndexKind::kBitmap;
          cand.probe.keys = std::move(keys);
          cand.consumed.push_back(i);
          out.push_back(std::move(cand));
          continue;
        }
      }
    }
    // Comparison over a range column (equality becomes lo == hi).
    CompareOp op;
    int col = -1;
    Value literal;
    if (!MatchComparisonFilter(c, &op, &col, &literal)) continue;
    if (kind_of(col) != SecondaryIndexKind::kRange) continue;
    if (op == CompareOp::kNe) continue;  // not index-servable
    if (!CastKey(schema, col, &literal)) continue;
    RangeAccum* acc = range_for(col);
    switch (op) {
      case CompareOp::kEq:
        TightenLo(&acc->probe, literal, /*inclusive=*/true);
        TightenHi(&acc->probe, std::move(literal), /*inclusive=*/true);
        break;
      case CompareOp::kLt:
        TightenHi(&acc->probe, std::move(literal), /*inclusive=*/false);
        break;
      case CompareOp::kLe:
        TightenHi(&acc->probe, std::move(literal), /*inclusive=*/true);
        break;
      case CompareOp::kGt:
        TightenLo(&acc->probe, std::move(literal), /*inclusive=*/false);
        break;
      case CompareOp::kGe:
        TightenLo(&acc->probe, std::move(literal), /*inclusive=*/true);
        break;
      case CompareOp::kNe:
        break;
    }
    acc->consumed.push_back(i);
  }

  for (RangeAccum& r : ranges) {
    SecondaryProbeCandidate cand;
    cand.probe = std::move(r.probe);
    cand.consumed = std::move(r.consumed);
    out.push_back(std::move(cand));
  }
  return out;
}

int ChooseSecondaryProbe(const std::vector<SecondaryProbeCandidate>& candidates,
                         double max_selectivity) {
  int best = -1;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const double s = candidates[i].probe.selectivity;
    if (s > max_selectivity) continue;
    if (best == -1 || s < candidates[static_cast<size_t>(best)].probe.selectivity) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

bool ProbeMatches(const SecondaryProbe& probe, const Value& v) {
  if (v.is_null()) return false;
  if (probe.kind == SecondaryIndexKind::kBitmap) {
    for (const Value& k : probe.keys) {
      if (v == k) return true;
    }
    return false;
  }
  if (probe.lo.has_value() &&
      !CompareWithOp(probe.lo_inclusive ? CompareOp::kGe : CompareOp::kGt, v,
                     *probe.lo)) {
    return false;
  }
  if (probe.hi.has_value() &&
      !CompareWithOp(probe.hi_inclusive ? CompareOp::kLe : CompareOp::kLt, v,
                     *probe.hi)) {
    return false;
  }
  return true;
}

}  // namespace idf
