#include "sql/compiled_accessor.h"

#include <string>

#include "storage/row_batch.h"

namespace idf {

CompiledAccessor CompiledAccessor::ForColumn(const Schema& schema, int col) {
  const size_t bitmap_bytes = EncodedBitmapBytes(schema.num_fields());
  return CompiledAccessor(
      schema.field(col).type, col,
      static_cast<uint32_t>(bitmap_bytes + static_cast<size_t>(col) * 8),
      static_cast<uint32_t>((col / 64) * 8 + ((col % 64) / 8)),
      static_cast<uint8_t>(1u << (col % 8)));
}

std::optional<CompiledAccessor> CompiledAccessor::FromExpr(const ExprPtr& expr,
                                                           const Schema& schema) {
  if (expr == nullptr || expr->kind() != ExprKind::kColumnRef) return std::nullopt;
  const auto* ref = static_cast<const ColumnRefExpr*>(expr.get());
  if (!ref->bound()) return std::nullopt;
  return ForColumn(schema, ref->index());
}

Value CompiledAccessor::GetValue(const uint8_t* payload) const {
  if (IsNull(payload)) return Value::Null();
  switch (type_) {
    case TypeId::kBool:
      return Value(Slot(payload) != 0);
    case TypeId::kInt32: {
      int32_t x;
      std::memcpy(&x, payload + slot_off_, 4);
      return Value(x);
    }
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      int64_t x;
      std::memcpy(&x, payload + slot_off_, 8);
      return Value(x);
    }
    case TypeId::kFloat64: {
      double x;
      std::memcpy(&x, payload + slot_off_, 8);
      return Value(x);
    }
    case TypeId::kString: {
      const uint64_t slot = Slot(payload);
      const std::string_view v = RawColumnString(payload, slot);
      return Value(std::string(v));
    }
  }
  return Value::Null();
}

}  // namespace idf
