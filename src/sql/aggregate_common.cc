#include "sql/aggregate_common.h"

#include "engine/partitioner.h"

namespace idf {

void UpdateState(AggState* s, AggFn fn, const Value& v) {
  switch (fn) {
    case AggFn::kCountStar:
      ++s->count;
      return;
    case AggFn::kCount:
      if (!v.is_null()) ++s->count;
      return;
    case AggFn::kSum:
      if (!v.is_null()) {
        s->any = true;
        s->isum += v.is_double() ? 0 : v.AsInt64();
        s->dsum += v.AsDouble();
      }
      return;
    case AggFn::kAvg:
      if (!v.is_null()) {
        s->any = true;
        s->dsum += v.AsDouble();
        ++s->count;
      }
      return;
    case AggFn::kMin:
      if (!v.is_null() && (s->minv.is_null() || v < s->minv)) s->minv = v;
      return;
    case AggFn::kMax:
      if (!v.is_null() && (s->maxv.is_null() || s->maxv < v)) s->maxv = v;
      return;
  }
}

void MergeStates(AggState* s, AggFn fn, const AggState& partial) {
  switch (fn) {
    case AggFn::kCountStar:
    case AggFn::kCount:
      s->count += partial.count;
      return;
    case AggFn::kSum:
      if (partial.any) {
        s->any = true;
        s->isum += partial.isum;
        s->dsum += partial.dsum;
      }
      return;
    case AggFn::kAvg:
      if (partial.any) s->any = true;
      s->dsum += partial.dsum;
      s->count += partial.count;
      return;
    case AggFn::kMin:
      if (!partial.minv.is_null() &&
          (s->minv.is_null() || partial.minv < s->minv)) {
        s->minv = partial.minv;
      }
      return;
    case AggFn::kMax:
      if (!partial.maxv.is_null() &&
          (s->maxv.is_null() || s->maxv < partial.maxv)) {
        s->maxv = partial.maxv;
      }
      return;
  }
}

void AppendFinal(Row* row, AggFn fn, const AggState& s, TypeId out_type) {
  switch (fn) {
    case AggFn::kCountStar:
    case AggFn::kCount:
      row->push_back(Value(s.count));
      return;
    case AggFn::kSum:
      if (!s.any) {
        row->push_back(Value::Null());
      } else if (out_type == TypeId::kFloat64) {
        row->push_back(Value(s.dsum));
      } else {
        row->push_back(Value(s.isum));
      }
      return;
    case AggFn::kAvg:
      row->push_back(s.any && s.count > 0
                         ? Value(s.dsum / static_cast<double>(s.count))
                         : Value::Null());
      return;
    case AggFn::kMin:
      row->push_back(s.minv);
      return;
    case AggFn::kMax:
      row->push_back(s.maxv);
      return;
  }
}

namespace {

/// One group's key and states, detached from its chunk map for the
/// bucket-partitioned merge.
struct GroupEntry {
  Row key;
  std::vector<AggState> states;
};

}  // namespace

Result<PartitionVec> MergePartialGroups(ExecutorContext& ctx,
                                        std::vector<GroupStateMap> chunk_maps,
                                        size_t num_groups,
                                        const std::vector<AggSpec>& aggs,
                                        const std::vector<TypeId>& out_types) {
  const size_t num_aggs = aggs.size();

  if (num_groups == 0) {
    // Global aggregate: every chunk holds at most one entry (the empty
    // key); folding the handful of chunk states serially is cheaper than a
    // parallel dispatch.
    std::vector<AggState> states(num_aggs);
    uint64_t merged = 0;
    for (GroupStateMap& m : chunk_maps) {
      for (auto& [key, partial] : m) {
        for (size_t a = 0; a < num_aggs; ++a) {
          MergeStates(&states[a], aggs[a].fn, partial[a]);
        }
        ++merged;
      }
    }
    ctx.metrics().AddAggPartialsMerged(merged);
    Row row;
    for (size_t a = 0; a < num_aggs; ++a) {
      AppendFinal(&row, aggs[a].fn, states[a], out_types[a]);
    }
    ctx.metrics().AddRowsProduced(1);
    PartitionVec out;
    out.push_back(PartitionData(RowVec{std::move(row)}));
    return out;
  }

  // Split each chunk's entries by group-key hash into one bucket per
  // output partition. Identical keys land in the same bucket no matter
  // which chunk produced them, so the merge below is embarrassingly
  // parallel across buckets.
  const size_t num_buckets = static_cast<size_t>(ctx.num_partitions());
  HashPartitioner partitioner(static_cast<int>(num_buckets));
  std::vector<std::vector<std::vector<GroupEntry>>> split(chunk_maps.size());
  ctx.pool().ParallelFor(
      chunk_maps.size(),
      [&](size_t c) {
        std::vector<std::vector<GroupEntry>> local(num_buckets);
        for (auto& [key, states] : chunk_maps[c]) {
          const size_t b = static_cast<size_t>(
              partitioner.PartitionOfHash(HashRow(key)));
          local[b].push_back(GroupEntry{key, std::move(states)});
        }
        chunk_maps[c].clear();
        split[c] = std::move(local);
      },
      ctx.cancellation());
  IDF_RETURN_NOT_OK(ctx.CheckCancelled());

  PartitionVec out(num_buckets);
  ctx.pool().ParallelFor(
      num_buckets,
      [&](size_t b) {
        ctx.metrics().AddTask();
        GroupStateMap groups;
        uint64_t merged = 0;
        for (auto& chunk : split) {
          for (GroupEntry& e : chunk[b]) {
            auto [it, inserted] = groups.try_emplace(std::move(e.key));
            if (inserted) {
              it->second = std::move(e.states);
            } else {
              for (size_t a = 0; a < num_aggs; ++a) {
                MergeStates(&it->second[a], aggs[a].fn, e.states[a]);
              }
            }
            ++merged;
          }
        }
        RowVec rows;
        rows.reserve(groups.size());
        for (auto& [key, states] : groups) {
          Row row = key;
          for (size_t a = 0; a < num_aggs; ++a) {
            AppendFinal(&row, aggs[a].fn, states[a], out_types[a]);
          }
          rows.push_back(std::move(row));
        }
        ctx.metrics().AddAggPartialsMerged(merged);
        ctx.metrics().AddRowsProduced(rows.size());
        out[b] = PartitionData(std::move(rows));
      },
      ctx.cancellation());
  IDF_RETURN_NOT_OK(ctx.CheckCancelled());
  return out;
}

}  // namespace idf
