// Batch-at-a-time vectorized evaluation of compiled predicates
// (DESIGN.md §12). Where CompiledPredicate::EvalEncoded walks the postfix
// program once per payload pointer, VectorizedPredicate evaluates one
// instruction over a whole batch of rows at a time:
//
//  1. Gather + compare: each column-reading instruction makes one strided
//     pass over the batch's payload pointers via the precomputed
//     CompiledAccessor offsets, reading the null bit and the slot together
//     while the row is cache-hot and writing a TriBool byte lane. The
//     comparison operator is dispatched ONCE per batch (template
//     instantiation), so the loop body is free of per-row dispatch.
//  2. Combine: AND/OR/NOT run as branch-free Kleene byte-lane kernels
//     (AND = min, OR = max, NOT = 2 - x on the TriBool encoding), with
//     explicit SSE2/AVX2 intrinsics behind the IDF_SIMD feature macro and
//     a scalar fallback that stays bit-identical (min/max/subtract are
//     exact in either form).
//
// The result of FilterBatch is a selection vector (ascending row indexes
// whose tri-state is TRUE) that flows into decode, fused aggregation, and
// the join build-side filter without any per-row predicate dispatch.
//
// Contract: for every lane, the batch result is bit-identical to
// EvalEncoded on that lane's payload (the differential fuzzer in
// tests/test_property_fuzz.cc enforces this, under ASan/UBSan/TSan and
// with the SIMD macro forced off).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sql/predicate_compiler.h"

// IDF_SIMD: explicit x86 byte-lane intrinsics for the Kleene combinators.
// Build with -DIDF_DISABLE_SIMD (CMake: -DIDF_ENABLE_SIMD=OFF) to force
// the scalar fallback everywhere; CI keeps that leg compiled and tested.
#if !defined(IDF_DISABLE_SIMD) && defined(__SSE2__)
#define IDF_SIMD 1
#else
#define IDF_SIMD 0
#endif

namespace idf {

/// Reusable lane-stack scratch for batch evaluation. One per worker
/// chunk; the buffer grows to the program's needs on first use and is
/// reused across batches (no allocation in the steady state).
class VectorScratch {
 private:
  friend class VectorizedPredicate;
  std::vector<uint8_t> tri;  // value stack: depth * kBatchRows lanes
};

/// Column-at-a-time evaluator over a CompiledPredicate's program. Holds a
/// pointer to the program, which must outlive the evaluator.
class VectorizedPredicate {
 public:
  /// Rows evaluated per internal batch: large enough to amortize the
  /// per-instruction dispatch, small enough that the rows a batch touches
  /// (~256 cache lines) plus the tri-state stack stay L1-resident, so the
  /// second and later instruction passes re-hit the lines the first pass
  /// pulled in.
  static constexpr size_t kBatchRows = 256;

  /// True when the Kleene combinators run on explicit SIMD intrinsics;
  /// false in the scalar-fallback build (-DIDF_ENABLE_SIMD=OFF).
  static constexpr bool kSimdEnabled = IDF_SIMD != 0;

  explicit VectorizedPredicate(const CompiledPredicate& program);

  /// Internal batches needed for `n` rows (metrics bookkeeping).
  static size_t NumBatches(size_t n) {
    return (n + kBatchRows - 1) / kBatchRows;
  }

  /// Evaluates the program over payloads[0..n); out_tri[i] receives the
  /// TriBool of row i (as its uint8_t encoding). Batches internally, so
  /// any n is accepted.
  void EvalBatch(const uint8_t* const* payloads, size_t n, uint8_t* out_tri,
                 VectorScratch* scratch) const;

  /// Filter form: writes the ascending indexes of rows whose tri-state is
  /// TRUE into sel (capacity >= n) and returns how many there are.
  size_t FilterBatch(const uint8_t* const* payloads, size_t n, uint32_t* sel,
                     VectorScratch* scratch) const;

  size_t stack_depth() const { return depth_; }

 private:
  /// One batch of at most kBatchRows rows; the result lanes are left at
  /// the bottom of the scratch tri stack.
  void EvalOneBatch(const uint8_t* const* payloads, size_t n,
                    VectorScratch* scratch) const;

  const CompiledPredicate* program_;
  size_t depth_ = 0;  // maximum value-stack depth of the program
};

}  // namespace idf
