#include "sql/analyzer.h"

namespace idf {

std::string DeriveColumnName(const ExprPtr& expr) {
  if (expr->kind() == ExprKind::kColumnRef) {
    return static_cast<const ColumnRefExpr*>(expr.get())->name();
  }
  return expr->ToString();
}

namespace {

Result<LogicalPlanPtr> AnalyzeNode(const LogicalPlanPtr& plan) {
  switch (plan->kind()) {
    case PlanKind::kScan:
    case PlanKind::kCacheScan:
    case PlanKind::kIndexedScan:
    case PlanKind::kIndexedLookup:
    case PlanKind::kSnapshotScan:
    case PlanKind::kSnapshotLookup:
    case PlanKind::kSecondaryProbe:
      // Leaf nodes are born analyzed: their schema comes from the table.
      return plan;

    case PlanKind::kFilter: {
      const auto* node = static_cast<const FilterNode*>(plan.get());
      IDF_ASSIGN_OR_RETURN(LogicalPlanPtr child, Analyze(node->children()[0]));
      const Schema& in = *child->output_schema();
      IDF_ASSIGN_OR_RETURN(ExprPtr pred, BindExpr(node->predicate(), in));
      IDF_ASSIGN_OR_RETURN(TypeId t, pred->ResultType(in));
      if (t != TypeId::kBool) {
        return Status::TypeError("filter predicate must be boolean: " +
                                 pred->ToString());
      }
      SchemaPtr schema = child->output_schema();
      return LogicalPlanPtr(std::make_shared<FilterNode>(
          std::move(child), std::move(pred), std::move(schema)));
    }

    case PlanKind::kProject: {
      const auto* node = static_cast<const ProjectNode*>(plan.get());
      IDF_ASSIGN_OR_RETURN(LogicalPlanPtr child, Analyze(node->children()[0]));
      const Schema& in = *child->output_schema();
      std::vector<ExprPtr> bound;
      std::vector<Field> fields;
      std::vector<std::string> names = node->names();
      if (names.empty()) {
        names.reserve(node->exprs().size());
        for (const ExprPtr& e : node->exprs()) names.push_back(DeriveColumnName(e));
      }
      if (names.size() != node->exprs().size()) {
        return Status::InvalidArgument("project: names/exprs arity mismatch");
      }
      for (size_t i = 0; i < node->exprs().size(); ++i) {
        IDF_ASSIGN_OR_RETURN(ExprPtr e, BindExpr(node->exprs()[i], in));
        IDF_ASSIGN_OR_RETURN(TypeId t, e->ResultType(in));
        fields.push_back(Field{names[i], t, /*nullable=*/true});
        bound.push_back(std::move(e));
      }
      return LogicalPlanPtr(std::make_shared<ProjectNode>(
          std::move(child), std::move(bound), std::move(names),
          Schema::Make(std::move(fields))));
    }

    case PlanKind::kJoin: {
      const auto* node = static_cast<const JoinNode*>(plan.get());
      IDF_ASSIGN_OR_RETURN(LogicalPlanPtr left, Analyze(node->left()));
      IDF_ASSIGN_OR_RETURN(LogicalPlanPtr right, Analyze(node->right()));
      const Schema& ls = *left->output_schema();
      const Schema& rs = *right->output_schema();
      IDF_ASSIGN_OR_RETURN(ExprPtr lk, BindExpr(node->left_key(), ls));
      IDF_ASSIGN_OR_RETURN(ExprPtr rk, BindExpr(node->right_key(), rs));
      IDF_ASSIGN_OR_RETURN(TypeId lt, lk->ResultType(ls));
      IDF_ASSIGN_OR_RETURN(TypeId rt, rk->ResultType(rs));
      bool l_str = lt == TypeId::kString;
      bool r_str = rt == TypeId::kString;
      if (l_str != r_str) {
        return Status::TypeError("join keys are not comparable: " +
                                 TypeIdToString(lt) + " vs " + TypeIdToString(rt));
      }
      SchemaPtr out = Schema::Concat(ls, rs);
      if (node->join_type() == JoinType::kLeftOuter) {
        // Right-side columns become nullable (unmatched rows pad nulls).
        std::vector<Field> fields = out->fields();
        for (size_t i = static_cast<size_t>(ls.num_fields()); i < fields.size();
             ++i) {
          fields[i].nullable = true;
        }
        out = Schema::Make(std::move(fields));
      }
      return LogicalPlanPtr(std::make_shared<JoinNode>(
          std::move(left), std::move(right), std::move(lk), std::move(rk),
          node->join_type(), std::move(out)));
    }

    case PlanKind::kIndexedJoin: {
      const auto* node = static_cast<const IndexedJoinNode*>(plan.get());
      IDF_ASSIGN_OR_RETURN(LogicalPlanPtr probe, Analyze(node->probe()));
      const Schema& ps = *probe->output_schema();
      IDF_ASSIGN_OR_RETURN(ExprPtr pk, BindExpr(node->probe_key(), ps));
      IDF_RETURN_NOT_OK(pk->ResultType(ps).status());
      const Schema& is = *node->relation()->schema();
      SchemaPtr out = node->indexed_on_left() ? Schema::Concat(is, ps)
                                              : Schema::Concat(ps, is);
      return LogicalPlanPtr(std::make_shared<IndexedJoinNode>(
          node->relation(), std::move(probe), std::move(pk),
          node->indexed_on_left(), std::move(out)));
    }

    case PlanKind::kAggregate: {
      const auto* node = static_cast<const AggregateNode*>(plan.get());
      IDF_ASSIGN_OR_RETURN(LogicalPlanPtr child, Analyze(node->children()[0]));
      const Schema& in = *child->output_schema();
      std::vector<ExprPtr> groups;
      std::vector<Field> fields;
      std::vector<std::string> names = node->group_names();
      if (names.empty()) {
        for (const ExprPtr& e : node->group_exprs()) {
          names.push_back(DeriveColumnName(e));
        }
      }
      if (names.size() != node->group_exprs().size()) {
        return Status::InvalidArgument("aggregate: group names/exprs mismatch");
      }
      for (size_t i = 0; i < node->group_exprs().size(); ++i) {
        IDF_ASSIGN_OR_RETURN(ExprPtr e, BindExpr(node->group_exprs()[i], in));
        IDF_ASSIGN_OR_RETURN(TypeId t, e->ResultType(in));
        fields.push_back(Field{names[i], t, true});
        groups.push_back(std::move(e));
      }
      std::vector<AggSpec> aggs;
      for (const AggSpec& spec : node->aggs()) {
        AggSpec bound = spec;
        TypeId out_type = TypeId::kInt64;
        if (spec.fn != AggFn::kCountStar) {
          if (!spec.arg) {
            return Status::InvalidArgument("aggregate " + AggFnToString(spec.fn) +
                                           " requires an argument");
          }
          IDF_ASSIGN_OR_RETURN(bound.arg, BindExpr(spec.arg, in));
          IDF_ASSIGN_OR_RETURN(TypeId arg_type, bound.arg->ResultType(in));
          switch (spec.fn) {
            case AggFn::kCount:
              out_type = TypeId::kInt64;
              break;
            case AggFn::kSum:
              if (arg_type == TypeId::kString) {
                return Status::TypeError("sum over string column");
              }
              out_type =
                  arg_type == TypeId::kFloat64 ? TypeId::kFloat64 : TypeId::kInt64;
              break;
            case AggFn::kMin:
            case AggFn::kMax:
              out_type = arg_type;
              break;
            case AggFn::kAvg:
              if (arg_type == TypeId::kString) {
                return Status::TypeError("avg over string column");
              }
              out_type = TypeId::kFloat64;
              break;
            default:
              break;
          }
        }
        if (bound.out_name.empty()) {
          bound.out_name = AggFnToString(spec.fn) +
                           (spec.arg ? "(" + DeriveColumnName(spec.arg) + ")" : "");
        }
        fields.push_back(Field{bound.out_name, out_type, true});
        aggs.push_back(std::move(bound));
      }
      return LogicalPlanPtr(std::make_shared<AggregateNode>(
          std::move(child), std::move(groups), std::move(names), std::move(aggs),
          Schema::Make(std::move(fields))));
    }

    case PlanKind::kSort: {
      const auto* node = static_cast<const SortNode*>(plan.get());
      IDF_ASSIGN_OR_RETURN(LogicalPlanPtr child, Analyze(node->children()[0]));
      const Schema& in = *child->output_schema();
      std::vector<SortKey> keys;
      for (const SortKey& k : node->keys()) {
        IDF_ASSIGN_OR_RETURN(ExprPtr e, BindExpr(k.expr, in));
        IDF_RETURN_NOT_OK(e->ResultType(in).status());
        keys.push_back(SortKey{std::move(e), k.ascending});
      }
      SchemaPtr schema = child->output_schema();
      return LogicalPlanPtr(
          std::make_shared<SortNode>(std::move(child), std::move(keys), schema));
    }

    case PlanKind::kLimit: {
      const auto* node = static_cast<const LimitNode*>(plan.get());
      IDF_ASSIGN_OR_RETURN(LogicalPlanPtr child, Analyze(node->children()[0]));
      SchemaPtr schema = child->output_schema();
      return LogicalPlanPtr(
          std::make_shared<LimitNode>(std::move(child), node->n(), schema));
    }

    case PlanKind::kUnionAll: {
      if (plan->children().size() < 2) {
        return Status::InvalidArgument("UNION ALL needs at least two inputs");
      }
      std::vector<LogicalPlanPtr> inputs;
      SchemaPtr out;
      for (const LogicalPlanPtr& raw : plan->children()) {
        IDF_ASSIGN_OR_RETURN(LogicalPlanPtr child, Analyze(raw));
        const Schema& s = *child->output_schema();
        if (out == nullptr) {
          out = child->output_schema();
        } else {
          if (s.num_fields() != out->num_fields()) {
            return Status::TypeError(
                "UNION ALL inputs have different arities: " + out->ToString() +
                " vs " + s.ToString());
          }
          std::vector<Field> fields = out->fields();
          for (int i = 0; i < s.num_fields(); ++i) {
            if (s.field(i).type != fields[static_cast<size_t>(i)].type) {
              return Status::TypeError(
                  "UNION ALL column " + std::to_string(i) +
                  " type mismatch: " + TypeIdToString(fields[i].type) + " vs " +
                  TypeIdToString(s.field(i).type));
            }
            fields[static_cast<size_t>(i)].nullable =
                fields[static_cast<size_t>(i)].nullable || s.field(i).nullable;
          }
          out = Schema::Make(std::move(fields));
        }
        inputs.push_back(std::move(child));
      }
      return LogicalPlanPtr(
          std::make_shared<UnionAllNode>(std::move(inputs), std::move(out)));
    }

    case PlanKind::kTopK: {
      const auto* node = static_cast<const TopKNode*>(plan.get());
      IDF_ASSIGN_OR_RETURN(LogicalPlanPtr child, Analyze(node->children()[0]));
      const Schema& in = *child->output_schema();
      std::vector<SortKey> keys;
      for (const SortKey& k : node->keys()) {
        IDF_ASSIGN_OR_RETURN(ExprPtr e, BindExpr(k.expr, in));
        IDF_RETURN_NOT_OK(e->ResultType(in).status());
        keys.push_back(SortKey{std::move(e), k.ascending});
      }
      SchemaPtr schema = child->output_schema();
      return LogicalPlanPtr(std::make_shared<TopKNode>(
          std::move(child), std::move(keys), node->n(), schema));
    }
  }
  return Status::Internal("unhandled plan kind in Analyze");
}

}  // namespace

Result<LogicalPlanPtr> Analyze(const LogicalPlanPtr& plan) {
  if (plan->analyzed()) {
    // Children of an analyzed node may still be re-analyzed cheaply; but an
    // analyzed root is idempotent by construction.
    bool children_ok = true;
    for (const auto& c : plan->children()) children_ok &= c->analyzed();
    if (children_ok) return plan;
  }
  return AnalyzeNode(plan);
}

}  // namespace idf
