#include "sql/logical_plan.h"

#include "common/logging.h"

namespace idf {

std::string PlanKindToString(PlanKind kind) {
  switch (kind) {
    case PlanKind::kScan:
      return "Scan";
    case PlanKind::kCacheScan:
      return "CacheScan";
    case PlanKind::kIndexedScan:
      return "IndexedScan";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kJoin:
      return "Join";
    case PlanKind::kAggregate:
      return "Aggregate";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kLimit:
      return "Limit";
    case PlanKind::kTopK:
      return "TopK";
    case PlanKind::kIndexedLookup:
      return "IndexedLookup";
    case PlanKind::kIndexedJoin:
      return "IndexedJoin";
    case PlanKind::kSnapshotScan:
      return "SnapshotScan";
    case PlanKind::kSnapshotLookup:
      return "SnapshotLookup";
    case PlanKind::kUnionAll:
      return "UnionAll";
    case PlanKind::kSecondaryProbe:
      return "SecondaryProbe";
  }
  return "Unknown";
}

std::string SecondaryIndexKindToString(SecondaryIndexKind kind) {
  switch (kind) {
    case SecondaryIndexKind::kNone:
      return "none";
    case SecondaryIndexKind::kBitmap:
      return "bitmap";
    case SecondaryIndexKind::kRange:
      return "range";
  }
  return "?";
}

std::string SecondaryProbe::ToString() const {
  std::string out = SecondaryIndexKindToString(kind) + "(col#" +
                    std::to_string(column) + " ";
  if (kind == SecondaryIndexKind::kBitmap) {
    out += "in {";
    for (size_t i = 0; i < keys.size(); ++i) {
      if (i > 0) out += ", ";
      out += keys[i].ToString();
    }
    out += "}";
  } else {
    if (lo.has_value()) out += (lo_inclusive ? ">= " : "> ") + lo->ToString();
    if (lo.has_value() && hi.has_value()) out += " AND ";
    if (hi.has_value()) out += (hi_inclusive ? "<= " : "< ") + hi->ToString();
  }
  return out + ")";
}

std::string AggFnToString(AggFn fn) {
  switch (fn) {
    case AggFn::kCountStar:
      return "count(*)";
    case AggFn::kCount:
      return "count";
    case AggFn::kSum:
      return "sum";
    case AggFn::kMin:
      return "min";
    case AggFn::kMax:
      return "max";
    case AggFn::kAvg:
      return "avg";
  }
  return "?";
}

void LogicalPlan::AppendTree(std::string* out, int indent) const {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(ToString());
  out->append("\n");
  for (const LogicalPlanPtr& child : children_) {
    child->AppendTree(out, indent + 1);
  }
}

std::string LogicalPlan::TreeString() const {
  std::string out;
  AppendTree(&out, 0);
  return out;
}

std::string ScanNode::ToString() const {
  return "Scan [" + table_->name + "] " + output_schema()->ToString();
}

LogicalPlanPtr ScanNode::WithChildren(std::vector<LogicalPlanPtr> children) const {
  IDF_CHECK(children.empty());
  return std::make_shared<ScanNode>(table_);
}

std::string CacheScanNode::ToString() const {
  return "CacheScan [" + table_->name + "] " + output_schema()->ToString();
}

LogicalPlanPtr CacheScanNode::WithChildren(
    std::vector<LogicalPlanPtr> children) const {
  IDF_CHECK(children.empty());
  return std::make_shared<CacheScanNode>(table_);
}

std::string IndexedScanNode::ToString() const {
  return "IndexedScan [" + rel_->name() + "] indexed_col=" +
         output_schema()->field(rel_->indexed_column()).name;
}

LogicalPlanPtr IndexedScanNode::WithChildren(
    std::vector<LogicalPlanPtr> children) const {
  IDF_CHECK(children.empty());
  return std::make_shared<IndexedScanNode>(rel_);
}

std::string FilterNode::ToString() const {
  return "Filter " + predicate_->ToString();
}

LogicalPlanPtr FilterNode::WithChildren(std::vector<LogicalPlanPtr> children) const {
  IDF_CHECK_EQ(children.size(), 1u);
  return std::make_shared<FilterNode>(std::move(children[0]), predicate_,
                                      output_schema());
}

std::string ProjectNode::ToString() const {
  std::string out = "Project [";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += exprs_[i]->ToString() + " AS " + names_[i];
  }
  return out + "]";
}

LogicalPlanPtr ProjectNode::WithChildren(std::vector<LogicalPlanPtr> children) const {
  IDF_CHECK_EQ(children.size(), 1u);
  return std::make_shared<ProjectNode>(std::move(children[0]), exprs_, names_,
                                       output_schema());
}

std::string JoinTypeToString(JoinType type) {
  switch (type) {
    case JoinType::kInner:
      return "Inner";
    case JoinType::kLeftOuter:
      return "LeftOuter";
  }
  return "?";
}

std::string JoinNode::ToString() const {
  return "Join " + JoinTypeToString(join_type_) + " (" + left_key_->ToString() +
         " = " + right_key_->ToString() + ")";
}

LogicalPlanPtr JoinNode::WithChildren(std::vector<LogicalPlanPtr> children) const {
  IDF_CHECK_EQ(children.size(), 2u);
  return std::make_shared<JoinNode>(std::move(children[0]), std::move(children[1]),
                                    left_key_, right_key_, join_type_,
                                    output_schema());
}

std::string AggregateNode::ToString() const {
  std::string out = "Aggregate group=[";
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += group_exprs_[i]->ToString();
  }
  out += "] aggs=[";
  for (size_t i = 0; i < aggs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += AggFnToString(aggs_[i].fn);
    if (aggs_[i].arg) out += "(" + aggs_[i].arg->ToString() + ")";
    out += " AS " + aggs_[i].out_name;
  }
  return out + "]";
}

LogicalPlanPtr AggregateNode::WithChildren(
    std::vector<LogicalPlanPtr> children) const {
  IDF_CHECK_EQ(children.size(), 1u);
  return std::make_shared<AggregateNode>(std::move(children[0]), group_exprs_,
                                         group_names_, aggs_, output_schema());
}

std::string SortNode::ToString() const {
  std::string out = "Sort [";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys_[i].expr->ToString();
    out += keys_[i].ascending ? " ASC" : " DESC";
  }
  return out + "]";
}

LogicalPlanPtr SortNode::WithChildren(std::vector<LogicalPlanPtr> children) const {
  IDF_CHECK_EQ(children.size(), 1u);
  return std::make_shared<SortNode>(std::move(children[0]), keys_, output_schema());
}

std::string LimitNode::ToString() const {
  return "Limit " + std::to_string(n_);
}

LogicalPlanPtr LimitNode::WithChildren(std::vector<LogicalPlanPtr> children) const {
  IDF_CHECK_EQ(children.size(), 1u);
  return std::make_shared<LimitNode>(std::move(children[0]), n_, output_schema());
}

std::string TopKNode::ToString() const {
  std::string out = "TopK n=" + std::to_string(n_) + " [";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys_[i].expr->ToString();
    out += keys_[i].ascending ? " ASC" : " DESC";
  }
  return out + "]";
}

LogicalPlanPtr TopKNode::WithChildren(std::vector<LogicalPlanPtr> children) const {
  IDF_CHECK_EQ(children.size(), 1u);
  return std::make_shared<TopKNode>(std::move(children[0]), keys_, n_,
                                    output_schema());
}

std::string UnionAllNode::ToString() const {
  return "UnionAll (" + std::to_string(children().size()) + " inputs)";
}

LogicalPlanPtr UnionAllNode::WithChildren(
    std::vector<LogicalPlanPtr> children) const {
  IDF_CHECK_GE(children.size(), 2u);
  return std::make_shared<UnionAllNode>(std::move(children), output_schema());
}

std::string SnapshotScanNode::ToString() const {
  return "SnapshotScan [" + snapshot_->name() + "@v" +
         std::to_string(snapshot_->version()) + "]";
}

LogicalPlanPtr SnapshotScanNode::WithChildren(
    std::vector<LogicalPlanPtr> children) const {
  IDF_CHECK(children.empty());
  return std::make_shared<SnapshotScanNode>(snapshot_);
}

std::string SnapshotLookupNode::ToString() const {
  std::string out = "SnapshotLookup [" + snapshot_->name() + "] key=";
  auto render = [&](size_t i) {
    return (i < key_params_.size() && key_params_[i] >= 0)
               ? "$" + std::to_string(key_params_[i] + 1)
               : keys_[i].ToString();
  };
  if (keys_.size() == 1) return out + render(0);
  return out + "{" + std::to_string(keys_.size()) + " keys}";
}

LogicalPlanPtr SnapshotLookupNode::WithChildren(
    std::vector<LogicalPlanPtr> children) const {
  IDF_CHECK(children.empty());
  return std::make_shared<SnapshotLookupNode>(snapshot_, keys_, key_params_);
}

std::string SecondaryProbeNode::ToString() const {
  std::string out = "SecondaryProbe [" + (rel_ ? rel_->name() : snap_->name()) +
                    "] ";
  for (size_t i = 0; i < probes_.size(); ++i) {
    if (i > 0) out += " AND ";
    out += probes_[i].ToString();
  }
  return out;
}

LogicalPlanPtr SecondaryProbeNode::WithChildren(
    std::vector<LogicalPlanPtr> children) const {
  IDF_CHECK(children.empty());
  if (rel_) return std::make_shared<SecondaryProbeNode>(rel_, probes_);
  return std::make_shared<SecondaryProbeNode>(snap_, probes_);
}

std::string IndexedLookupNode::ToString() const {
  std::string out = "IndexedLookup [" + rel_->name() + "] key=";
  auto render = [&](size_t i) {
    return (i < key_params_.size() && key_params_[i] >= 0)
               ? "$" + std::to_string(key_params_[i] + 1)
               : keys_[i].ToString();
  };
  if (keys_.size() == 1) return out + render(0);
  out += "{";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += render(i);
  }
  return out + "}";
}

LogicalPlanPtr IndexedLookupNode::WithChildren(
    std::vector<LogicalPlanPtr> children) const {
  IDF_CHECK(children.empty());
  return std::make_shared<IndexedLookupNode>(rel_, keys_, key_params_);
}

std::string IndexedJoinNode::ToString() const {
  return "IndexedJoin [" + rel_->name() + "] probe_key=" + probe_key_->ToString() +
         (indexed_on_left_ ? " (indexed side: left)" : " (indexed side: right)") +
         (build_predicate_ ? " build_filter=" + build_predicate_->ToString() : "");
}

LogicalPlanPtr IndexedJoinNode::WithChildren(
    std::vector<LogicalPlanPtr> children) const {
  IDF_CHECK_EQ(children.size(), 1u);
  return std::make_shared<IndexedJoinNode>(rel_, std::move(children[0]), probe_key_,
                                           indexed_on_left_, output_schema(),
                                           build_predicate_);
}

}  // namespace idf
