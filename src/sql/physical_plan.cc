#include "sql/physical_plan.h"

namespace idf {

RowVec PartitionData::ToRows() const {
  if (!is_columnar()) return rows();
  const ColumnarChunk& chunk = columnar();
  RowVec out;
  out.reserve(chunk.num_rows());
  for (size_t i = 0; i < chunk.num_rows(); ++i) {
    out.push_back(chunk.cache->GetRowProjected(chunk.PhysicalRow(i), chunk.columns));
  }
  return out;
}

RowVec PartitionData::TakeRows() && {
  if (!is_columnar()) return std::move(std::get<RowVec>(repr_));
  return ToRows();
}

RowVec CollectRows(const PartitionVec& parts) {
  RowVec out;
  out.reserve(TotalRows(parts));
  for (const PartitionData& p : parts) {
    RowVec rows = p.ToRows();
    for (Row& r : rows) out.push_back(std::move(r));
  }
  return out;
}

size_t TotalRows(const PartitionVec& parts) {
  size_t n = 0;
  for (const PartitionData& p : parts) n += p.num_rows();
  return n;
}

void PhysicalOp::AppendTree(std::string* out, int indent) const {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(name());
  out->append("\n");
  for (const PhysicalOpPtr& child : children_) child->AppendTree(out, indent + 1);
}

std::string PhysicalOp::TreeString() const {
  std::string out;
  AppendTree(&out, 0);
  return out;
}

}  // namespace idf
