// Index-kind costing for secondary-index access paths (DESIGN.md §14).
// The indexed filter rule flattens a predicate into conjuncts and asks this
// layer two questions: which conjuncts a bitmap or range index could serve
// (CollectSecondaryProbeCandidates), and whether the cheapest such probe
// beats the vectorized scan (ChooseSecondaryProbe). Selectivity estimates
// come from the caller — the concrete index statistics live behind the
// IndexedRelationBase surface in indexed/ — so this file stays a pure
// planning helper the SQL layer can own.
#pragma once

#include <functional>
#include <vector>

#include "sql/expression.h"
#include "sql/logical_plan.h"
#include "types/schema.h"

namespace idf {

/// One candidate access path: the probe spec plus the ordinals (into the
/// caller's conjunct list) of the conjuncts the probe fully absorbs —
/// those conjuncts must NOT be re-applied as residual filters.
struct SecondaryProbeCandidate {
  SecondaryProbe probe;
  std::vector<size_t> consumed;
};

/// Extracts every candidate secondary-index access path from `conjuncts`.
/// `kind_of(col)` reports the secondary index kind available on a column
/// (kNone when unindexed). Equality and OR-of-equality (IN) conjuncts on a
/// bitmap column become key-set probes; comparison conjuncts on a range
/// column combine into at most one range probe per column (a BETWEEN's two
/// bounds merge, and redundant bounds tighten). Keys and bounds are cast
/// to the column's schema type; a conjunct whose literal does not cast
/// yields no candidate. `probe.selectivity` is left at 1.0 — the caller
/// fills it from index statistics before costing.
std::vector<SecondaryProbeCandidate> CollectSecondaryProbeCandidates(
    const std::vector<ExprPtr>& conjuncts, const Schema& schema,
    const std::function<SecondaryIndexKind(int)>& kind_of);

/// The costing rule: returns the index of the candidate with the lowest
/// estimated selectivity when that beats `max_selectivity`, or -1 when the
/// vectorized scan wins (every candidate too unselective, or none at all).
int ChooseSecondaryProbe(const std::vector<SecondaryProbeCandidate>& candidates,
                         double max_selectivity);

/// True when `v` (non-null) satisfies the probe's predicate: member of the
/// key set for a bitmap probe, inside the bounds for a range probe. Used
/// by the execution layer to filter index-uncovered suffix rows and by
/// differential tests as the reference semantics.
bool ProbeMatches(const SecondaryProbe& probe, const Value& v);

}  // namespace idf
