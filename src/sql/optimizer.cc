#include "sql/optimizer.h"

#include "common/logging.h"

namespace idf {

Optimizer Optimizer::WithDefaultRules() {
  Optimizer opt;
  const char* kBatch = "OperatorOptimization";
  opt.AddRuleToBatch(kBatch, std::make_shared<ConstantFoldingRule>());
  opt.AddRuleToBatch(kBatch, std::make_shared<MergeFiltersRule>());
  opt.AddRuleToBatch(kBatch, std::make_shared<RemoveTrivialFilterRule>());
  opt.AddRuleToBatch(kBatch, std::make_shared<PushFilterThroughProjectRule>());
  opt.AddRuleToBatch(kBatch, std::make_shared<PushFilterThroughJoinRule>());
  opt.AddRuleToBatch(kBatch, std::make_shared<PushFilterThroughAggregateRule>());
  opt.AddRuleToBatch(kBatch, std::make_shared<CombineLimitSortRule>());
  return opt;
}

void Optimizer::AddRule(OptimizerRulePtr rule) {
  AddRuleToBatch("Extensions", std::move(rule));
}

void Optimizer::AddRuleToBatch(const std::string& batch, OptimizerRulePtr rule) {
  for (Batch& b : batches_) {
    if (b.name == batch) {
      b.rules.push_back(std::move(rule));
      return;
    }
  }
  batches_.push_back(Batch{batch, {std::move(rule)}});
}

Result<LogicalPlanPtr> Optimizer::Optimize(const LogicalPlanPtr& plan) const {
  if (!plan->analyzed()) {
    return Status::InvalidArgument("Optimize requires an analyzed plan");
  }
  LogicalPlanPtr current = plan;
  for (const Batch& batch : batches_) {
    IDF_ASSIGN_OR_RETURN(current, OptimizeNode(current, batch, 0));
  }
  return current;
}

Result<LogicalPlanPtr> Optimizer::OptimizeNode(const LogicalPlanPtr& plan,
                                               const Batch& batch,
                                               int depth) const {
  if (depth > 256) {
    return Status::Internal("optimizer recursion depth exceeded");
  }
  // Optimize children first.
  std::vector<LogicalPlanPtr> children;
  children.reserve(plan->children().size());
  bool changed = false;
  for (const LogicalPlanPtr& child : plan->children()) {
    IDF_ASSIGN_OR_RETURN(LogicalPlanPtr c, OptimizeNode(child, batch, depth + 1));
    changed = changed || (c != child);
    children.push_back(std::move(c));
  }
  LogicalPlanPtr node = changed ? plan->WithChildren(std::move(children)) : plan;

  // Apply the batch's rules to this node until fixpoint.
  for (int iter = 0; iter < kMaxIterations; ++iter) {
    bool any = false;
    for (const OptimizerRulePtr& rule : batch.rules) {
      IDF_ASSIGN_OR_RETURN(LogicalPlanPtr rewritten, rule->Apply(node));
      if (rewritten != nullptr && rewritten != node) {
        // A rewrite may expose new opportunities below; re-optimize the
        // rewritten subtree's children.
        std::vector<LogicalPlanPtr> subs;
        subs.reserve(rewritten->children().size());
        bool sub_changed = false;
        for (const LogicalPlanPtr& child : rewritten->children()) {
          IDF_ASSIGN_OR_RETURN(LogicalPlanPtr c,
                               OptimizeNode(child, batch, depth + 1));
          sub_changed = sub_changed || (c != child);
          subs.push_back(std::move(c));
        }
        node = sub_changed ? rewritten->WithChildren(std::move(subs)) : rewritten;
        any = true;
      }
    }
    if (!any) break;
  }
  return node;
}

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

namespace {

bool IsLiteral(const ExprPtr& e) { return e->kind() == ExprKind::kLiteral; }

bool AllLiteral(const ExprPtr& e) {
  if (e->kind() == ExprKind::kColumnRef) return false;
  // A parameter is a hole, not a constant: it folds only after binding.
  if (e->kind() == ExprKind::kParameterRef) return false;
  if (IsLiteral(e)) return true;
  for (const ExprPtr& c : e->children()) {
    if (!AllLiteral(c)) return false;
  }
  return true;
}

}  // namespace

Result<ExprPtr> FoldConstants(const ExprPtr& expr) {
  if (IsLiteral(expr) || expr->kind() == ExprKind::kColumnRef) return expr;
  if (AllLiteral(expr)) {
    static const Row kEmptyRow;
    IDF_ASSIGN_OR_RETURN(Value v, expr->Eval(kEmptyRow));
    return ExprPtr(std::make_shared<LiteralExpr>(std::move(v)));
  }
  std::vector<ExprPtr> folded;
  folded.reserve(expr->children().size());
  bool changed = false;
  for (const ExprPtr& c : expr->children()) {
    IDF_ASSIGN_OR_RETURN(ExprPtr f, FoldConstants(c));
    changed = changed || (f != c);
    folded.push_back(std::move(f));
  }
  if (!changed) return expr;
  switch (expr->kind()) {
    case ExprKind::kComparison:
      return ExprPtr(std::make_shared<ComparisonExpr>(
          static_cast<const ComparisonExpr*>(expr.get())->op(), folded[0],
          folded[1]));
    case ExprKind::kLogical:
      return ExprPtr(std::make_shared<LogicalExpr>(
          static_cast<const LogicalExpr*>(expr.get())->op(), folded[0], folded[1]));
    case ExprKind::kNot:
      return ExprPtr(std::make_shared<NotExpr>(folded[0]));
    case ExprKind::kIsNull:
      return ExprPtr(std::make_shared<IsNullExpr>(
          folded[0], static_cast<const IsNullExpr*>(expr.get())->negated()));
    case ExprKind::kArithmetic:
      return ExprPtr(std::make_shared<ArithmeticExpr>(
          static_cast<const ArithmeticExpr*>(expr.get())->op(), folded[0],
          folded[1]));
    default:
      return Status::Internal("unexpected expr kind in FoldConstants");
  }
}

Result<LogicalPlanPtr> ConstantFoldingRule::Apply(const LogicalPlanPtr& node) const {
  if (node->kind() != PlanKind::kFilter) return LogicalPlanPtr(nullptr);
  const auto* filter = static_cast<const FilterNode*>(node.get());
  IDF_ASSIGN_OR_RETURN(ExprPtr folded, FoldConstants(filter->predicate()));
  if (folded == filter->predicate()) return LogicalPlanPtr(nullptr);
  return LogicalPlanPtr(std::make_shared<FilterNode>(
      filter->children()[0], std::move(folded), node->output_schema()));
}

Result<LogicalPlanPtr> MergeFiltersRule::Apply(const LogicalPlanPtr& node) const {
  if (node->kind() != PlanKind::kFilter) return LogicalPlanPtr(nullptr);
  const auto* outer = static_cast<const FilterNode*>(node.get());
  const LogicalPlanPtr& child = outer->children()[0];
  if (child->kind() != PlanKind::kFilter) return LogicalPlanPtr(nullptr);
  const auto* inner = static_cast<const FilterNode*>(child.get());
  ExprPtr merged = And(outer->predicate(), inner->predicate());
  return LogicalPlanPtr(std::make_shared<FilterNode>(
      inner->children()[0], std::move(merged), node->output_schema()));
}

Result<LogicalPlanPtr> RemoveTrivialFilterRule::Apply(
    const LogicalPlanPtr& node) const {
  if (node->kind() != PlanKind::kFilter) return LogicalPlanPtr(nullptr);
  const auto* filter = static_cast<const FilterNode*>(node.get());
  const ExprPtr& pred = filter->predicate();
  if (pred->kind() != ExprKind::kLiteral) return LogicalPlanPtr(nullptr);
  const Value& v = static_cast<const LiteralExpr*>(pred.get())->value();
  if (v.is_bool() && v.bool_value()) return filter->children()[0];
  return LogicalPlanPtr(nullptr);
}

Result<LogicalPlanPtr> PushFilterThroughAggregateRule::Apply(
    const LogicalPlanPtr& node) const {
  if (node->kind() != PlanKind::kFilter) return LogicalPlanPtr(nullptr);
  const auto* filter = static_cast<const FilterNode*>(node.get());
  const LogicalPlanPtr& child = filter->children()[0];
  if (child->kind() != PlanKind::kAggregate) return LogicalPlanPtr(nullptr);
  const auto* agg = static_cast<const AggregateNode*>(child.get());
  if (!filter->analyzed() || !agg->analyzed()) return LogicalPlanPtr(nullptr);

  const int num_groups = static_cast<int>(agg->group_exprs().size());
  // A conjunct is pushable when every referenced output ordinal is a group
  // key whose defining expression is a plain (bound) column reference in
  // the aggregate's input.
  auto pushable = [&](const std::vector<int>& refs) {
    for (int r : refs) {
      if (r >= num_groups) return false;
      const ExprPtr& g = agg->group_exprs()[static_cast<size_t>(r)];
      if (g->kind() != ExprKind::kColumnRef ||
          !static_cast<const ColumnRefExpr*>(g.get())->bound()) {
        return false;
      }
    }
    return true;
  };

  std::vector<ExprPtr> conjuncts;
  {
    std::vector<ExprPtr> stack = {filter->predicate()};
    while (!stack.empty()) {
      ExprPtr e = stack.back();
      stack.pop_back();
      if (e->kind() == ExprKind::kLogical &&
          static_cast<const LogicalExpr*>(e.get())->op() == LogicalOp::kAnd) {
        stack.push_back(e->children()[0]);
        stack.push_back(e->children()[1]);
      } else {
        conjuncts.push_back(std::move(e));
      }
    }
  }

  // Map aggregate-output group ordinals to input expressions.
  std::vector<ExprPtr> substitution;
  const Schema& out = *agg->output_schema();
  for (int i = 0; i < out.num_fields(); ++i) {
    if (i < num_groups) {
      substitution.push_back(agg->group_exprs()[static_cast<size_t>(i)]);
    } else {
      substitution.push_back(nullptr);  // aggregate outputs: not pushable
    }
  }

  std::vector<ExprPtr> pushed;
  std::vector<ExprPtr> kept;
  for (const ExprPtr& c : conjuncts) {
    std::vector<int> refs;
    CollectRefIndices(c, &refs);
    if (!refs.empty() && pushable(refs)) {
      std::vector<ExprPtr> replacement = substitution;
      // SubstituteColumnRefs requires non-null entries only for referenced
      // ordinals; fill the rest with placeholders.
      for (ExprPtr& e : replacement) {
        if (e == nullptr) e = Lit(Value::Null());
      }
      IDF_ASSIGN_OR_RETURN(ExprPtr rewritten,
                           SubstituteColumnRefs(c, replacement));
      pushed.push_back(std::move(rewritten));
    } else {
      kept.push_back(c);
    }
  }
  if (pushed.empty()) return LogicalPlanPtr(nullptr);

  auto conjoin = [](std::vector<ExprPtr> preds) {
    ExprPtr acc = preds[0];
    for (size_t i = 1; i < preds.size(); ++i) acc = And(acc, preds[i]);
    return acc;
  };
  LogicalPlanPtr input = std::make_shared<FilterNode>(
      agg->children()[0], conjoin(std::move(pushed)),
      agg->children()[0]->output_schema());
  LogicalPlanPtr new_agg = std::make_shared<AggregateNode>(
      std::move(input), agg->group_exprs(), agg->group_names(), agg->aggs(),
      agg->output_schema());
  if (kept.empty()) return new_agg;
  return LogicalPlanPtr(std::make_shared<FilterNode>(
      std::move(new_agg), conjoin(std::move(kept)), node->output_schema()));
}

Result<LogicalPlanPtr> CombineLimitSortRule::Apply(
    const LogicalPlanPtr& node) const {
  if (node->kind() != PlanKind::kLimit) return LogicalPlanPtr(nullptr);
  const auto* limit = static_cast<const LimitNode*>(node.get());
  const LogicalPlanPtr& child = limit->children()[0];
  if (child->kind() != PlanKind::kSort) return LogicalPlanPtr(nullptr);
  const auto* sort = static_cast<const SortNode*>(child.get());
  return LogicalPlanPtr(std::make_shared<TopKNode>(
      sort->children()[0], sort->keys(), limit->n(), node->output_schema()));
}

Result<LogicalPlanPtr> PushFilterThroughProjectRule::Apply(
    const LogicalPlanPtr& node) const {
  if (node->kind() != PlanKind::kFilter) return LogicalPlanPtr(nullptr);
  const auto* filter = static_cast<const FilterNode*>(node.get());
  const LogicalPlanPtr& child = filter->children()[0];
  if (child->kind() != PlanKind::kProject) return LogicalPlanPtr(nullptr);
  const auto* project = static_cast<const ProjectNode*>(child.get());
  if (!filter->analyzed() || !project->analyzed()) return LogicalPlanPtr(nullptr);
  // Re-express the predicate over the projection's input. This always
  // succeeds (every output column is defined by a projection expression),
  // but we avoid duplicating non-trivial computed expressions referenced
  // more than once.
  std::vector<int> refs;
  CollectRefIndices(filter->predicate(), &refs);
  for (int r : refs) {
    const ExprPtr& source = project->exprs()[static_cast<size_t>(r)];
    if (source->kind() != ExprKind::kColumnRef &&
        source->kind() != ExprKind::kLiteral) {
      return LogicalPlanPtr(nullptr);  // don't duplicate computed work
    }
  }
  IDF_ASSIGN_OR_RETURN(
      ExprPtr pushed,
      SubstituteColumnRefs(filter->predicate(), project->exprs()));
  LogicalPlanPtr inner_filter = std::make_shared<FilterNode>(
      project->children()[0], std::move(pushed),
      project->children()[0]->output_schema());
  return LogicalPlanPtr(std::make_shared<ProjectNode>(
      std::move(inner_filter), project->exprs(), project->names(),
      project->output_schema()));
}

Result<LogicalPlanPtr> PushFilterThroughJoinRule::Apply(
    const LogicalPlanPtr& node) const {
  if (node->kind() != PlanKind::kFilter) return LogicalPlanPtr(nullptr);
  const auto* filter = static_cast<const FilterNode*>(node.get());
  const LogicalPlanPtr& child = filter->children()[0];
  if (child->kind() != PlanKind::kJoin) return LogicalPlanPtr(nullptr);
  const auto* join = static_cast<const JoinNode*>(child.get());
  if (!filter->analyzed() || !join->analyzed()) return LogicalPlanPtr(nullptr);

  const int left_width = join->left()->output_schema()->num_fields();

  // Split the predicate into conjuncts and classify each by the side(s) it
  // references.
  std::vector<ExprPtr> conjuncts;
  {
    std::vector<ExprPtr> stack = {filter->predicate()};
    while (!stack.empty()) {
      ExprPtr e = stack.back();
      stack.pop_back();
      if (e->kind() == ExprKind::kLogical &&
          static_cast<const LogicalExpr*>(e.get())->op() == LogicalOp::kAnd) {
        stack.push_back(e->children()[0]);
        stack.push_back(e->children()[1]);
      } else {
        conjuncts.push_back(std::move(e));
      }
    }
  }
  // For a left-outer join, right-side predicates must stay above the join:
  // pushing them below would turn matching-but-filtered rows into
  // null-padded output rows instead of dropping them.
  const bool can_push_right = join->join_type() == JoinType::kInner;

  std::vector<ExprPtr> left_preds;
  std::vector<ExprPtr> right_preds;
  std::vector<ExprPtr> kept;
  for (const ExprPtr& c : conjuncts) {
    std::vector<int> refs;
    CollectRefIndices(c, &refs);
    bool touches_left = false;
    bool touches_right = false;
    for (int r : refs) {
      (r < left_width ? touches_left : touches_right) = true;
    }
    if (touches_left && !touches_right) {
      left_preds.push_back(c);
    } else if (touches_right && !touches_left && can_push_right) {
      IDF_ASSIGN_OR_RETURN(ExprPtr shifted, ShiftColumnRefs(c, -left_width));
      right_preds.push_back(std::move(shifted));
    } else {
      kept.push_back(c);  // mixed, constant, or blocked by outer semantics
    }
  }
  if (left_preds.empty() && right_preds.empty()) return LogicalPlanPtr(nullptr);

  auto conjoin = [](std::vector<ExprPtr> preds) {
    ExprPtr acc = preds[0];
    for (size_t i = 1; i < preds.size(); ++i) acc = And(acc, preds[i]);
    return acc;
  };
  LogicalPlanPtr left = join->left();
  LogicalPlanPtr right = join->right();
  if (!left_preds.empty()) {
    left = std::make_shared<FilterNode>(left, conjoin(std::move(left_preds)),
                                        left->output_schema());
  }
  if (!right_preds.empty()) {
    right = std::make_shared<FilterNode>(right, conjoin(std::move(right_preds)),
                                         right->output_schema());
  }
  LogicalPlanPtr new_join = std::make_shared<JoinNode>(
      std::move(left), std::move(right), join->left_key(), join->right_key(),
      join->join_type(), join->output_schema());
  if (kept.empty()) return new_join;
  return LogicalPlanPtr(std::make_shared<FilterNode>(
      std::move(new_join), conjoin(std::move(kept)), node->output_schema()));
}

}  // namespace idf
