#include "sql/dataframe.h"

#include <chrono>

#include "sql/analyzer.h"
#include "sql/session.h"

namespace idf {

Result<SchemaPtr> DataFrame::schema() const {
  if (!valid()) return Status::InvalidArgument("empty DataFrame handle");
  if (plan_->analyzed()) return plan_->output_schema();
  IDF_ASSIGN_OR_RETURN(LogicalPlanPtr analyzed, Analyze(plan_));
  return analyzed->output_schema();
}

ExprPtr DataFrame::col(const std::string& name) const { return Col(name); }

Result<DataFrame> DataFrame::Filter(ExprPtr predicate) const {
  if (!valid()) return Status::InvalidArgument("empty DataFrame handle");
  return DataFrame(session_,
                   std::make_shared<FilterNode>(plan_, std::move(predicate)));
}

Result<DataFrame> DataFrame::Select(const std::vector<std::string>& names) const {
  std::vector<ExprPtr> exprs;
  exprs.reserve(names.size());
  for (const std::string& n : names) exprs.push_back(Col(n));
  return SelectExprs(std::move(exprs),
                     std::vector<std::string>(names.begin(), names.end()));
}

Result<DataFrame> DataFrame::SelectExprs(std::vector<ExprPtr> exprs,
                                         std::vector<std::string> names) const {
  if (!valid()) return Status::InvalidArgument("empty DataFrame handle");
  return DataFrame(session_, std::make_shared<ProjectNode>(plan_, std::move(exprs),
                                                           std::move(names)));
}

Result<DataFrame> DataFrame::Join(const DataFrame& other, ExprPtr left_key,
                                  ExprPtr right_key, JoinType join_type) const {
  if (!valid() || !other.valid()) {
    return Status::InvalidArgument("empty DataFrame handle");
  }
  if (session_ != other.session_) {
    return Status::InvalidArgument("cannot join DataFrames from different sessions");
  }
  return DataFrame(session_, std::make_shared<JoinNode>(
                                 plan_, other.plan_, std::move(left_key),
                                 std::move(right_key), join_type));
}

Result<DataFrame> DataFrame::Join(const DataFrame& other, const std::string& left_col,
                                  const std::string& right_col,
                                  JoinType join_type) const {
  return Join(other, Col(left_col), Col(right_col), join_type);
}

Result<DataFrame> DataFrame::Aggregate(std::vector<ExprPtr> group_exprs,
                                       std::vector<AggSpec> aggs) const {
  if (!valid()) return Status::InvalidArgument("empty DataFrame handle");
  return DataFrame(session_, std::make_shared<AggregateNode>(
                                 plan_, std::move(group_exprs),
                                 std::vector<std::string>{}, std::move(aggs)));
}

Result<DataFrame> DataFrame::GroupByAgg(const std::vector<std::string>& group_cols,
                                        std::vector<AggSpec> aggs) const {
  std::vector<ExprPtr> groups;
  groups.reserve(group_cols.size());
  for (const std::string& c : group_cols) groups.push_back(Col(c));
  return Aggregate(std::move(groups), std::move(aggs));
}

Result<DataFrame> DataFrame::UnionAll(const DataFrame& other) const {
  if (!valid() || !other.valid()) {
    return Status::InvalidArgument("empty DataFrame handle");
  }
  if (session_ != other.session_) {
    return Status::InvalidArgument(
        "cannot union DataFrames from different sessions");
  }
  return DataFrame(session_, std::make_shared<UnionAllNode>(
                                 std::vector<LogicalPlanPtr>{plan_, other.plan_}));
}

Result<DataFrame> DataFrame::Sort(std::vector<SortKey> keys) const {
  if (!valid()) return Status::InvalidArgument("empty DataFrame handle");
  return DataFrame(session_, std::make_shared<SortNode>(plan_, std::move(keys)));
}

Result<DataFrame> DataFrame::OrderBy(const std::string& col_name,
                                     bool ascending) const {
  return Sort({SortKey{Col(col_name), ascending}});
}

Result<DataFrame> DataFrame::Limit(size_t n) const {
  if (!valid()) return Status::InvalidArgument("empty DataFrame handle");
  return DataFrame(session_, std::make_shared<LimitNode>(plan_, n));
}

Result<RowVec> DataFrame::Collect() const {
  if (!valid()) return Status::InvalidArgument("empty DataFrame handle");
  return session_->ExecuteCollect(plan_);
}

Result<size_t> DataFrame::Count() const {
  if (!valid()) return Status::InvalidArgument("empty DataFrame handle");
  IDF_ASSIGN_OR_RETURN(PartitionVec parts, session_->ExecutePartitions(plan_));
  return TotalRows(parts);
}

Result<DataFrame> DataFrame::Cache(const std::string& name) const {
  if (!valid()) return Status::InvalidArgument("empty DataFrame handle");
  IDF_ASSIGN_OR_RETURN(SchemaPtr out_schema, schema());
  IDF_ASSIGN_OR_RETURN(PartitionVec parts, session_->ExecutePartitions(plan_));
  auto table = std::make_shared<CachedTable>();
  table->name = name;
  table->schema = out_schema;
  table->partitions.resize(parts.size());
  for (size_t p = 0; p < parts.size(); ++p) {
    RowVec rows = std::move(parts[p]).TakeRows();
    IDF_ASSIGN_OR_RETURN(table->partitions[p],
                         ColumnCache::FromRows(out_schema, rows));
    table->approx_bytes += table->partitions[p]->MemoryBytes();
  }
  return DataFrame(session_, std::make_shared<CacheScanNode>(std::move(table)));
}

Result<std::string> DataFrame::Explain() const {
  if (!valid()) return Status::InvalidArgument("empty DataFrame handle");
  IDF_ASSIGN_OR_RETURN(LogicalPlanPtr optimized, session_->OptimizeOnly(plan_));
  IDF_ASSIGN_OR_RETURN(PhysicalOpPtr physical, session_->PlanQuery(plan_));
  return "== Optimized Logical Plan ==\n" + optimized->TreeString() +
         "== Physical Plan ==\n" + physical->TreeString();
}

Result<std::string> DataFrame::ExplainAnalyze() const {
  if (!valid()) return Status::InvalidArgument("empty DataFrame handle");
  IDF_ASSIGN_OR_RETURN(std::string plans, Explain());
  session_->metrics().Reset();
  auto t0 = std::chrono::steady_clock::now();
  IDF_ASSIGN_OR_RETURN(PartitionVec parts, session_->ExecutePartitions(plan_));
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  char line[160];
  std::snprintf(line, sizeof(line),
                "== Execution ==\nwall_time: %.3f ms\nresult_rows: %zu\n", ms,
                TotalRows(parts));
  return plans + line + session_->metrics().ToString() + "\n";
}

AggSpec CountStar(std::string out_name) {
  return AggSpec{AggFn::kCountStar, nullptr, std::move(out_name)};
}
AggSpec CountOf(ExprPtr arg, std::string out_name) {
  return AggSpec{AggFn::kCount, std::move(arg), std::move(out_name)};
}
AggSpec SumOf(ExprPtr arg, std::string out_name) {
  return AggSpec{AggFn::kSum, std::move(arg), std::move(out_name)};
}
AggSpec MinOf(ExprPtr arg, std::string out_name) {
  return AggSpec{AggFn::kMin, std::move(arg), std::move(out_name)};
}
AggSpec MaxOf(ExprPtr arg, std::string out_name) {
  return AggSpec{AggFn::kMax, std::move(arg), std::move(out_name)};
}
AggSpec AvgOf(ExprPtr arg, std::string out_name) {
  return AggSpec{AggFn::kAvg, std::move(arg), std::move(out_name)};
}

}  // namespace idf
