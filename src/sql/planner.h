// Physical planner: lowers optimized logical plans to physical operators
// via an ordered list of strategies, mirroring Catalyst's physical planning
// layer. The Indexed DataFrame library registers an extra strategy that
// handles the indexed logical operators (indexed/indexed_rules.h).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "sql/logical_plan.h"
#include "sql/physical_plan.h"

namespace idf {

/// \brief One planning strategy. Plan() returns nullptr when the strategy
/// does not handle `node`; the planner then tries the next strategy.
class PhysicalStrategy {
 public:
  virtual ~PhysicalStrategy() = default;
  virtual std::string name() const = 0;
  virtual Result<PhysicalOpPtr> Plan(const LogicalPlanPtr& node,
                                     std::vector<PhysicalOpPtr> children,
                                     const EngineConfig& config) const = 0;
};
using PhysicalStrategyPtr = std::shared_ptr<const PhysicalStrategy>;

/// Handles all regular plan nodes (scan/filter/project/join/aggregate/
/// sort/limit); rejects indexed nodes so their strategy must be installed.
class RegularExecutionStrategy : public PhysicalStrategy {
 public:
  std::string name() const override { return "RegularExecution"; }
  Result<PhysicalOpPtr> Plan(const LogicalPlanPtr& node,
                             std::vector<PhysicalOpPtr> children,
                             const EngineConfig& config) const override;
};

class Planner {
 public:
  explicit Planner(EngineConfig config);

  /// Prepends a strategy (custom strategies take precedence, as in Spark's
  /// experimental extraStrategies).
  void AddStrategy(PhysicalStrategyPtr strategy);

  Result<PhysicalOpPtr> Plan(const LogicalPlanPtr& plan) const;

 private:
  EngineConfig config_;
  std::vector<PhysicalStrategyPtr> strategies_;
};

/// Cardinality estimate used by join-strategy selection (rows).
double EstimateRows(const LogicalPlanPtr& plan);

/// Size estimate in bytes (rows x schema width heuristic).
double EstimateBytes(const LogicalPlanPtr& plan);

}  // namespace idf
