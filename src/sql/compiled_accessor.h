// CompiledAccessor: precomputed slot/null-bit offsets for one column of an
// encoded row (the fixed-prefix layout of storage/row_batch.h), shared by
// every consumer that reads column values straight from payload bytes —
// the predicate compiler's comparison instructions and the fused
// aggregation operator's group-key / aggregate-input reads. Resolving
// `bitmap_bytes + col * 8` and the null-bit byte/mask once at plan time
// keeps the per-row hot path at two address computations and no Value
// boxing (GetValue boxes on demand and matches DecodeColumn bit-for-bit).
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>

#include "sql/expression.h"
#include "types/schema.h"
#include "types/value.h"

namespace idf {

class CompiledAccessor {
 public:
  /// Offsets for column `col` of rows encoded against `schema`.
  static CompiledAccessor ForColumn(const Schema& schema, int col);

  /// Accessor for a bound column reference; nullopt for anything else
  /// (unbound refs and non-column expressions need a decoded row).
  static std::optional<CompiledAccessor> FromExpr(const ExprPtr& expr,
                                                  const Schema& schema);

  TypeId type() const { return type_; }
  int column() const { return col_; }
  uint32_t slot_offset() const { return slot_off_; }
  uint32_t null_byte() const { return null_byte_; }
  uint8_t null_mask() const { return null_mask_; }

  bool IsNull(const uint8_t* payload) const {
    return (payload[null_byte_] & null_mask_) != 0;
  }

  /// Raw 8-byte slot image (callers check IsNull first).
  uint64_t Slot(const uint8_t* payload) const {
    uint64_t slot;
    std::memcpy(&slot, payload + slot_off_, 8);
    return slot;
  }

  /// Integer-backed column (bool/int32/int64/timestamp) as int64, with
  /// int32 slots sign-extended — the widening Value::AsInt64 applies.
  int64_t GetInt64(const uint8_t* payload) const {
    if (type_ == TypeId::kInt32) {
      int32_t x;
      std::memcpy(&x, payload + slot_off_, 4);
      return x;
    }
    int64_t x;
    std::memcpy(&x, payload + slot_off_, 8);
    return x;
  }

  /// Numeric column widened to double (the widening Value::AsDouble
  /// applies: integer-backed types convert, float64 reads the slot bits).
  double GetDouble(const uint8_t* payload) const {
    if (type_ == TypeId::kFloat64) {
      double x;
      std::memcpy(&x, payload + slot_off_, 8);
      return x;
    }
    return static_cast<double>(GetInt64(payload));
  }

  /// Boxes the column as a Value, matching DecodeColumn(payload, schema,
  /// column()) exactly (including null handling and string views).
  Value GetValue(const uint8_t* payload) const;

 private:
  CompiledAccessor(TypeId type, int col, uint32_t slot_off, uint32_t null_byte,
                   uint8_t null_mask)
      : type_(type),
        col_(col),
        slot_off_(slot_off),
        null_byte_(null_byte),
        null_mask_(null_mask) {}

  TypeId type_;
  int col_;
  uint32_t slot_off_;   // bitmap_bytes + col * 8
  uint32_t null_byte_;  // byte offset of the column's null bit
  uint8_t null_mask_;
};

}  // namespace idf
