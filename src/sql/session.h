// Session: owns the execution context, optimizer, and planner; the entry
// point for creating DataFrames (the analogue of SparkSession).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "engine/executor_context.h"
#include "sql/dataframe.h"
#include "sql/optimizer.h"
#include "sql/physical_plan.h"
#include "sql/planner.h"

namespace idf {

class Session : public std::enable_shared_from_this<Session> {
 public:
  static Result<SessionPtr> Make(const EngineConfig& config = EngineConfig());

  /// Builds a session over an existing executor context. The query
  /// service uses this for per-query planning sessions: the context shares
  /// the base session's thread pool (via ExecutorContext::MakeWithPool)
  /// but carries its own metrics and cancellation token, so many such
  /// sessions can plan and execute concurrently without creating a thread
  /// pool per query or racing on shared state.
  static Result<SessionPtr> MakeWithContext(ExecutorContextPtr exec);

  ExecutorContext& exec() { return *exec_; }
  const EngineConfig& config() const { return exec_->config(); }
  QueryMetrics& metrics() { return exec_->metrics(); }

  /// Registers an optimizer rule (the hook the Indexed DataFrame library
  /// uses to inject its index-aware rewrites).
  void AddOptimizerRule(OptimizerRulePtr rule);

  /// Registers a physical strategy (tried before the built-in one).
  void AddPhysicalStrategy(PhysicalStrategyPtr strategy);

  /// True once a rule/strategy bundle with this tag was installed
  /// (idempotence for extension installers).
  bool HasExtension(const std::string& tag) const;
  void MarkExtension(const std::string& tag);

  /// Creates a DataFrame over in-memory rows (validates against schema).
  /// The data is round-robin partitioned into config().num_partitions.
  Result<DataFrame> CreateDataFrame(SchemaPtr schema, RowVec rows,
                                    const std::string& name = "table");

  /// Wraps an arbitrary logical plan.
  DataFrame FromPlan(LogicalPlanPtr plan);

  /// Registers `df` under `name` for SQL queries (re-registering replaces,
  /// which is how streaming pipelines expose fresh views).
  Status RegisterTable(const std::string& name, DataFrame df);

  /// The DataFrame registered under `name`.
  Result<DataFrame> Table(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  /// Parses and plans a SQL SELECT over the registered tables (lazy; run
  /// with .Collect()/.Count() like any DataFrame).
  Result<DataFrame> Sql(const std::string& query);

  /// Full pipeline: analyze -> optimize -> plan.
  Result<PhysicalOpPtr> PlanQuery(const LogicalPlanPtr& plan);

  /// Lowers an already-optimized plan without re-analyzing or
  /// re-optimizing (the plan-cache rebind path: prepared statements lower
  /// a cached optimized tree against fresh snapshot pins).
  Result<PhysicalOpPtr> PlanOptimized(const LogicalPlanPtr& optimized);

  /// Analyze + optimize only (inspection and tests).
  Result<LogicalPlanPtr> OptimizeOnly(const LogicalPlanPtr& plan);

  /// Executes to partitions.
  Result<PartitionVec> ExecutePartitions(const LogicalPlanPtr& plan);

  /// Executes and collects all rows.
  Result<RowVec> ExecuteCollect(const LogicalPlanPtr& plan);

 private:
  explicit Session(ExecutorContextPtr exec);

  ExecutorContextPtr exec_;
  Optimizer optimizer_;
  Planner planner_;
  std::vector<std::string> extensions_;
  // Plans, not DataFrames: a stored DataFrame would hold a SessionPtr back
  // to this session, and the resulting shared_ptr cycle would leak every
  // session with a registered table. Table() re-wraps the plan on demand.
  std::map<std::string, LogicalPlanPtr> tables_;
};

}  // namespace idf
