// Prepared-statement parameter machinery over analyzed logical plans
// (DESIGN.md §15). A prepared SQL text parses to a plan holding untyped
// ParameterRef placeholders; this module
//
//  1. infers each parameter's type from its context (the sibling operand
//     of a comparison or arithmetic op, kBool in boolean position, kString
//     under LIKE), rejecting statements where a parameter's type is
//     ambiguous or undeterminable,
//  2. rewrites the analyzed tree with typed placeholders (schemas are
//     preserved, so the tree needs no re-analysis), and
//  3. provides the execution-side binding paths: full literal substitution
//     (the generic fallback that re-optimizes per execution) and the
//     patchability test that decides whether a cached physical plan can
//     instead re-bind parameters in place (compiled-predicate immediate
//     slots, interpreted filter/project expressions, lookup key slots).
#pragma once

#include <vector>

#include "common/result.h"
#include "sql/logical_plan.h"

namespace idf {

/// True if any expression (or lookup key slot) in the plan references a
/// parameter.
bool PlanHasParameters(const LogicalPlanPtr& plan);

/// Infers the type of each of `num_params` parameters from its context in
/// the analyzed plan. Fails when a parameter is never referenced, is
/// referenced in a context that fixes no type (e.g. `$1 = $2`), or is
/// used with conflicting non-numeric types. Conflicting numeric uses
/// widen (kFloat64 if any use is, else kInt64).
Result<std::vector<TypeId>> InferParameterTypes(const LogicalPlanPtr& plan,
                                                int num_params);

/// Rewrites the analyzed plan with every untyped ParameterRef replaced by
/// one typed per `types` (index = ordinal). Node schemas are preserved.
Result<LogicalPlanPtr> ApplyParameterTypes(const LogicalPlanPtr& plan,
                                           const std::vector<TypeId>& types);

/// Replaces every ParameterRef in the plan with a literal of the
/// corresponding value (already coerced to the declared types). This is
/// the generic execution path: the result is an ordinary plan that can be
/// re-optimized and run as if the user had written the literals inline.
Result<LogicalPlanPtr> BindPlanParameters(const LogicalPlanPtr& plan,
                                          const std::vector<Value>& params);

/// True when the *optimized* plan confines parameters to positions the
/// physical operators can re-bind per execution without re-planning:
/// Filter predicates, Project expressions, indexed-join build predicates,
/// and lookup key slots. A parameter anywhere else (aggregate or sort
/// expressions, join keys, ...) forces the substitute-and-replan fallback.
bool PlanIsParameterPatchable(const LogicalPlanPtr& optimized);

}  // namespace idf
