#include "sql/expression.h"

#include <functional>

#include "common/logging.h"

namespace idf {

// ---------------------------------------------------------------------------
// ColumnRefExpr
// ---------------------------------------------------------------------------

Result<Value> ColumnRefExpr::Eval(const Row& row) const {
  if (!bound()) {
    return Status::Internal("unbound column reference '" + name_ + "'");
  }
  if (static_cast<size_t>(index_) >= row.size()) {
    return Status::IndexError("column ordinal " + std::to_string(index_) +
                              " out of range for row of arity " +
                              std::to_string(row.size()));
  }
  return row[static_cast<size_t>(index_)];
}

Result<TypeId> ColumnRefExpr::ResultType(const Schema& schema) const {
  if (bound()) {
    if (index_ >= schema.num_fields()) {
      return Status::IndexError("bound ordinal out of schema range");
    }
    return schema.field(index_).type;
  }
  IDF_ASSIGN_OR_RETURN(int idx, schema.ResolveFieldIndex(name_));
  return schema.field(idx).type;
}

std::string ColumnRefExpr::ToString() const {
  if (bound()) return name_ + "#" + std::to_string(index_);
  return name_;
}

// ---------------------------------------------------------------------------
// LiteralExpr
// ---------------------------------------------------------------------------

Result<TypeId> LiteralExpr::ResultType(const Schema& schema) const {
  if (value_.is_null()) return TypeId::kInt64;  // null literal: arbitrary
  if (value_.is_bool()) return TypeId::kBool;
  if (value_.is_int32()) return TypeId::kInt32;
  if (value_.is_int64()) return TypeId::kInt64;
  if (value_.is_double()) return TypeId::kFloat64;
  return TypeId::kString;
}

// ---------------------------------------------------------------------------
// ParameterRefExpr
// ---------------------------------------------------------------------------

Result<Value> ParameterRefExpr::Eval(const Row& row) const {
  return Status::Internal("unbound parameter " + ToString() +
                          "; parameters must be bound before execution");
}

Result<TypeId> ParameterRefExpr::ResultType(const Schema& schema) const {
  if (type_.has_value()) return *type_;
  return Status::TypeError("cannot infer the type of parameter " + ToString() +
                           " from its context");
}

std::string ParameterRefExpr::ToString() const {
  return "$" + std::to_string(ordinal_ + 1);
}

// ---------------------------------------------------------------------------
// ComparisonExpr
// ---------------------------------------------------------------------------

namespace {

/// A parameter whose type inference has not run yet. Type checks treat
/// such operands leniently (they adopt the sibling operand's type);
/// ParameterTypeInference later either pins the type or fails the prepare.
bool IsUntypedParam(const ExprPtr& e) {
  return e->kind() == ExprKind::kParameterRef &&
         !static_cast<const ParameterRefExpr*>(e.get())->type().has_value();
}

bool CompareValues(CompareOp op, const Value& a, const Value& b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return !(a == b);
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return !(b < a);
    case CompareOp::kGt:
      return b < a;
    case CompareOp::kGe:
      return !(a < b);
  }
  return false;
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool TypesComparable(TypeId a, TypeId b) {
  bool a_str = a == TypeId::kString;
  bool b_str = b == TypeId::kString;
  return a_str == b_str;
}

bool TypeNumeric(TypeId t) {
  return t == TypeId::kInt32 || t == TypeId::kInt64 || t == TypeId::kFloat64 ||
         t == TypeId::kBool || t == TypeId::kTimestamp;
}

}  // namespace

Result<Value> ComparisonExpr::Eval(const Row& row) const {
  IDF_ASSIGN_OR_RETURN(Value a, left()->Eval(row));
  IDF_ASSIGN_OR_RETURN(Value b, right()->Eval(row));
  if (a.is_null() || b.is_null()) return Value::Null();
  return Value(CompareValues(op_, a, b));
}

Result<TypeId> ComparisonExpr::ResultType(const Schema& schema) const {
  if (IsUntypedParam(left()) || IsUntypedParam(right())) {
    // The untyped side adopts the sibling's type during inference; just
    // validate the sibling here.
    const ExprPtr& other = IsUntypedParam(left()) ? right() : left();
    if (!IsUntypedParam(other)) {
      IDF_RETURN_NOT_OK(other->ResultType(schema).status());
    }
    return TypeId::kBool;
  }
  IDF_ASSIGN_OR_RETURN(TypeId lt, left()->ResultType(schema));
  IDF_ASSIGN_OR_RETURN(TypeId rt, right()->ResultType(schema));
  if (!TypesComparable(lt, rt)) {
    return Status::TypeError("cannot compare " + TypeIdToString(lt) + " with " +
                             TypeIdToString(rt) + " in " + ToString());
  }
  return TypeId::kBool;
}

std::string ComparisonExpr::ToString() const {
  return "(" + left()->ToString() + " " + CompareOpName(op_) + " " +
         right()->ToString() + ")";
}

// ---------------------------------------------------------------------------
// LogicalExpr / NotExpr / IsNullExpr
// ---------------------------------------------------------------------------

Result<Value> LogicalExpr::Eval(const Row& row) const {
  IDF_ASSIGN_OR_RETURN(Value a, children()[0]->Eval(row));
  // SQL short-circuit with three-valued logic.
  if (op_ == LogicalOp::kAnd) {
    if (!a.is_null() && !a.bool_value()) return Value(false);
    IDF_ASSIGN_OR_RETURN(Value b, children()[1]->Eval(row));
    if (!b.is_null() && !b.bool_value()) return Value(false);
    if (a.is_null() || b.is_null()) return Value::Null();
    return Value(true);
  }
  if (!a.is_null() && a.bool_value()) return Value(true);
  IDF_ASSIGN_OR_RETURN(Value b, children()[1]->Eval(row));
  if (!b.is_null() && b.bool_value()) return Value(true);
  if (a.is_null() || b.is_null()) return Value::Null();
  return Value(false);
}

Result<TypeId> LogicalExpr::ResultType(const Schema& schema) const {
  // Untyped parameters in boolean position are inferred as kBool later.
  TypeId lt = TypeId::kBool;
  TypeId rt = TypeId::kBool;
  if (!IsUntypedParam(children()[0])) {
    IDF_ASSIGN_OR_RETURN(lt, children()[0]->ResultType(schema));
  }
  if (!IsUntypedParam(children()[1])) {
    IDF_ASSIGN_OR_RETURN(rt, children()[1]->ResultType(schema));
  }
  if (lt != TypeId::kBool || rt != TypeId::kBool) {
    return Status::TypeError("logical operator requires boolean operands in " +
                             ToString());
  }
  return TypeId::kBool;
}

std::string LogicalExpr::ToString() const {
  return "(" + children()[0]->ToString() +
         (op_ == LogicalOp::kAnd ? " AND " : " OR ") + children()[1]->ToString() +
         ")";
}

Result<Value> NotExpr::Eval(const Row& row) const {
  IDF_ASSIGN_OR_RETURN(Value v, children()[0]->Eval(row));
  if (v.is_null()) return Value::Null();
  return Value(!v.bool_value());
}

Result<TypeId> NotExpr::ResultType(const Schema& schema) const {
  if (IsUntypedParam(children()[0])) return TypeId::kBool;
  IDF_ASSIGN_OR_RETURN(TypeId t, children()[0]->ResultType(schema));
  if (t != TypeId::kBool) {
    return Status::TypeError("NOT requires a boolean operand in " + ToString());
  }
  return TypeId::kBool;
}

std::string NotExpr::ToString() const {
  return "NOT " + children()[0]->ToString();
}

Result<Value> IsNullExpr::Eval(const Row& row) const {
  IDF_ASSIGN_OR_RETURN(Value v, children()[0]->Eval(row));
  return Value(negated_ ? !v.is_null() : v.is_null());
}

Result<TypeId> IsNullExpr::ResultType(const Schema& schema) const {
  if (!IsUntypedParam(children()[0])) {
    IDF_RETURN_NOT_OK(children()[0]->ResultType(schema).status());
  }
  return TypeId::kBool;
}

std::string IsNullExpr::ToString() const {
  return children()[0]->ToString() + (negated_ ? " IS NOT NULL" : " IS NULL");
}

// ---------------------------------------------------------------------------
// LikeExpr
// ---------------------------------------------------------------------------

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative two-pointer wildcard matching with backtracking on '%'.
  size_t t = 0;
  size_t p = 0;
  size_t star = std::string::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star = p++;
      star_t = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Value> LikeExpr::Eval(const Row& row) const {
  IDF_ASSIGN_OR_RETURN(Value v, children()[0]->Eval(row));
  if (v.is_null()) return Value::Null();
  if (!v.is_string()) {
    return Status::TypeError("LIKE requires a string input, got " + v.ToString());
  }
  bool matched = LikeMatch(v.string_value(), pattern_);
  return Value(negated_ ? !matched : matched);
}

Result<TypeId> LikeExpr::ResultType(const Schema& schema) const {
  if (IsUntypedParam(children()[0])) return TypeId::kBool;
  IDF_ASSIGN_OR_RETURN(TypeId t, children()[0]->ResultType(schema));
  if (t != TypeId::kString) {
    return Status::TypeError("LIKE requires a string operand in " + ToString());
  }
  return TypeId::kBool;
}

std::string LikeExpr::ToString() const {
  return children()[0]->ToString() + (negated_ ? " NOT LIKE '" : " LIKE '") +
         pattern_ + "'";
}

// ---------------------------------------------------------------------------
// ArithmeticExpr
// ---------------------------------------------------------------------------

Result<Value> ArithmeticExpr::Eval(const Row& row) const {
  IDF_ASSIGN_OR_RETURN(Value a, children()[0]->Eval(row));
  IDF_ASSIGN_OR_RETURN(Value b, children()[1]->Eval(row));
  if (a.is_null() || b.is_null()) return Value::Null();
  bool use_double = a.is_double() || b.is_double() || op_ == ArithmeticOp::kDiv;
  if (use_double) {
    double x = a.AsDouble();
    double y = b.AsDouble();
    switch (op_) {
      case ArithmeticOp::kAdd:
        return Value(x + y);
      case ArithmeticOp::kSub:
        return Value(x - y);
      case ArithmeticOp::kMul:
        return Value(x * y);
      case ArithmeticOp::kDiv:
        if (y == 0.0) return Value::Null();
        return Value(x / y);
    }
  }
  int64_t x = a.AsInt64();
  int64_t y = b.AsInt64();
  switch (op_) {
    case ArithmeticOp::kAdd:
      return Value(x + y);
    case ArithmeticOp::kSub:
      return Value(x - y);
    case ArithmeticOp::kMul:
      return Value(x * y);
    case ArithmeticOp::kDiv:
      break;  // handled above
  }
  return Status::Internal("unreachable arithmetic case");
}

Result<TypeId> ArithmeticExpr::ResultType(const Schema& schema) const {
  // An untyped parameter adopts the sibling operand's numeric type during
  // inference, so treat it as that type here (or kInt64 when both sides
  // are parameters — inference rejects that shape before execution).
  TypeId lt = TypeId::kInt64;
  TypeId rt = TypeId::kInt64;
  if (!IsUntypedParam(children()[0])) {
    IDF_ASSIGN_OR_RETURN(lt, children()[0]->ResultType(schema));
  }
  if (!IsUntypedParam(children()[1])) {
    IDF_ASSIGN_OR_RETURN(rt, children()[1]->ResultType(schema));
  }
  if (IsUntypedParam(children()[0]) && !IsUntypedParam(children()[1])) lt = rt;
  if (IsUntypedParam(children()[1]) && !IsUntypedParam(children()[0])) rt = lt;
  if (!TypeNumeric(lt) || !TypeNumeric(rt)) {
    return Status::TypeError("arithmetic requires numeric operands in " +
                             ToString());
  }
  if (op_ == ArithmeticOp::kDiv || lt == TypeId::kFloat64 || rt == TypeId::kFloat64) {
    return TypeId::kFloat64;
  }
  return TypeId::kInt64;
}

std::string ArithmeticExpr::ToString() const {
  const char* op = op_ == ArithmeticOp::kAdd   ? "+"
                   : op_ == ArithmeticOp::kSub ? "-"
                   : op_ == ArithmeticOp::kMul ? "*"
                                               : "/";
  return "(" + children()[0]->ToString() + " " + op + " " +
         children()[1]->ToString() + ")";
}

// ---------------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------------

ExprPtr Col(std::string name) {
  return std::make_shared<ColumnRefExpr>(std::move(name));
}
ExprPtr Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return std::make_shared<ComparisonExpr>(CompareOp::kEq, std::move(a), std::move(b));
}
ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return std::make_shared<ComparisonExpr>(CompareOp::kNe, std::move(a), std::move(b));
}
ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return std::make_shared<ComparisonExpr>(CompareOp::kLt, std::move(a), std::move(b));
}
ExprPtr Le(ExprPtr a, ExprPtr b) {
  return std::make_shared<ComparisonExpr>(CompareOp::kLe, std::move(a), std::move(b));
}
ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return std::make_shared<ComparisonExpr>(CompareOp::kGt, std::move(a), std::move(b));
}
ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return std::make_shared<ComparisonExpr>(CompareOp::kGe, std::move(a), std::move(b));
}
ExprPtr And(ExprPtr a, ExprPtr b) {
  return std::make_shared<LogicalExpr>(LogicalOp::kAnd, std::move(a), std::move(b));
}
ExprPtr Or(ExprPtr a, ExprPtr b) {
  return std::make_shared<LogicalExpr>(LogicalOp::kOr, std::move(a), std::move(b));
}
ExprPtr Not(ExprPtr a) { return std::make_shared<NotExpr>(std::move(a)); }
ExprPtr IsNull(ExprPtr a) { return std::make_shared<IsNullExpr>(std::move(a)); }
ExprPtr IsNotNull(ExprPtr a) {
  return std::make_shared<IsNullExpr>(std::move(a), /*negated=*/true);
}
ExprPtr Like(ExprPtr input, std::string pattern) {
  return std::make_shared<LikeExpr>(std::move(input), std::move(pattern));
}
ExprPtr NotLike(ExprPtr input, std::string pattern) {
  return std::make_shared<LikeExpr>(std::move(input), std::move(pattern),
                                    /*negated=*/true);
}
ExprPtr Add(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithmeticExpr>(ArithmeticOp::kAdd, std::move(a),
                                          std::move(b));
}
ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithmeticExpr>(ArithmeticOp::kSub, std::move(a),
                                          std::move(b));
}
ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithmeticExpr>(ArithmeticOp::kMul, std::move(a),
                                          std::move(b));
}
ExprPtr Div(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithmeticExpr>(ArithmeticOp::kDiv, std::move(a),
                                          std::move(b));
}
ExprPtr Param(int ordinal, std::optional<TypeId> type) {
  return std::make_shared<ParameterRefExpr>(ordinal, type);
}

// ---------------------------------------------------------------------------
// Analysis helpers
// ---------------------------------------------------------------------------

Result<ExprPtr> BindExpr(const ExprPtr& expr, const Schema& schema) {
  switch (expr->kind()) {
    case ExprKind::kColumnRef: {
      const auto* ref = static_cast<const ColumnRefExpr*>(expr.get());
      if (ref->bound()) return expr;
      IDF_ASSIGN_OR_RETURN(int idx, schema.ResolveFieldIndex(ref->name()));
      return ExprPtr(std::make_shared<ColumnRefExpr>(ref->name(), idx));
    }
    case ExprKind::kLiteral:
    case ExprKind::kParameterRef:
      return expr;
    default: {
      std::vector<ExprPtr> bound;
      bound.reserve(expr->children().size());
      bool changed = false;
      for (const ExprPtr& child : expr->children()) {
        IDF_ASSIGN_OR_RETURN(ExprPtr b, BindExpr(child, schema));
        changed = changed || (b != child);
        bound.push_back(std::move(b));
      }
      if (!changed) return expr;
      switch (expr->kind()) {
        case ExprKind::kComparison:
          return ExprPtr(std::make_shared<ComparisonExpr>(
              static_cast<const ComparisonExpr*>(expr.get())->op(), bound[0],
              bound[1]));
        case ExprKind::kLogical:
          return ExprPtr(std::make_shared<LogicalExpr>(
              static_cast<const LogicalExpr*>(expr.get())->op(), bound[0],
              bound[1]));
        case ExprKind::kNot:
          return ExprPtr(std::make_shared<NotExpr>(bound[0]));
        case ExprKind::kIsNull:
          return ExprPtr(std::make_shared<IsNullExpr>(
              bound[0], static_cast<const IsNullExpr*>(expr.get())->negated()));
        case ExprKind::kArithmetic:
          return ExprPtr(std::make_shared<ArithmeticExpr>(
              static_cast<const ArithmeticExpr*>(expr.get())->op(), bound[0],
              bound[1]));
        case ExprKind::kLike: {
          const auto* like = static_cast<const LikeExpr*>(expr.get());
          return ExprPtr(std::make_shared<LikeExpr>(bound[0], like->pattern(),
                                                    like->negated()));
        }
        default:
          return Status::Internal("unexpected expression kind in BindExpr");
      }
    }
  }
}

bool ExprEquals(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (!a || !b || a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case ExprKind::kColumnRef: {
      const auto* ra = static_cast<const ColumnRefExpr*>(a.get());
      const auto* rb = static_cast<const ColumnRefExpr*>(b.get());
      return ra->name() == rb->name() && ra->index() == rb->index();
    }
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr*>(a.get())->value() ==
             static_cast<const LiteralExpr*>(b.get())->value();
    case ExprKind::kParameterRef: {
      const auto* pa = static_cast<const ParameterRefExpr*>(a.get());
      const auto* pb = static_cast<const ParameterRefExpr*>(b.get());
      return pa->ordinal() == pb->ordinal() && pa->type() == pb->type();
    }
    case ExprKind::kComparison:
      if (static_cast<const ComparisonExpr*>(a.get())->op() !=
          static_cast<const ComparisonExpr*>(b.get())->op()) {
        return false;
      }
      break;
    case ExprKind::kLogical:
      if (static_cast<const LogicalExpr*>(a.get())->op() !=
          static_cast<const LogicalExpr*>(b.get())->op()) {
        return false;
      }
      break;
    case ExprKind::kIsNull:
      if (static_cast<const IsNullExpr*>(a.get())->negated() !=
          static_cast<const IsNullExpr*>(b.get())->negated()) {
        return false;
      }
      break;
    case ExprKind::kArithmetic:
      if (static_cast<const ArithmeticExpr*>(a.get())->op() !=
          static_cast<const ArithmeticExpr*>(b.get())->op()) {
        return false;
      }
      break;
    case ExprKind::kLike: {
      const auto* la = static_cast<const LikeExpr*>(a.get());
      const auto* lb = static_cast<const LikeExpr*>(b.get());
      if (la->pattern() != lb->pattern() || la->negated() != lb->negated()) {
        return false;
      }
      break;
    }
    default:
      break;
  }
  if (a->children().size() != b->children().size()) return false;
  for (size_t i = 0; i < a->children().size(); ++i) {
    if (!ExprEquals(a->children()[i], b->children()[i])) return false;
  }
  return true;
}

bool MatchEqualityFilter(const ExprPtr& expr, int* col_index, Value* literal) {
  CompareOp op;
  if (!MatchComparisonFilter(expr, &op, col_index, literal)) return false;
  return op == CompareOp::kEq;
}

bool MatchComparisonFilter(const ExprPtr& expr, CompareOp* op, int* col_index,
                           Value* literal) {
  if (expr->kind() != ExprKind::kComparison) return false;
  const auto* cmp = static_cast<const ComparisonExpr*>(expr.get());
  const Expr* l = cmp->left().get();
  const Expr* r = cmp->right().get();
  const ColumnRefExpr* ref = nullptr;
  const LiteralExpr* lit = nullptr;
  bool mirrored = false;
  if (l->kind() == ExprKind::kColumnRef && r->kind() == ExprKind::kLiteral) {
    ref = static_cast<const ColumnRefExpr*>(l);
    lit = static_cast<const LiteralExpr*>(r);
  } else if (r->kind() == ExprKind::kColumnRef && l->kind() == ExprKind::kLiteral) {
    ref = static_cast<const ColumnRefExpr*>(r);
    lit = static_cast<const LiteralExpr*>(l);
    mirrored = true;
  } else {
    return false;
  }
  if (!ref->bound() || lit->value().is_null()) return false;
  CompareOp o = cmp->op();
  if (mirrored) {
    switch (o) {
      case CompareOp::kLt:
        o = CompareOp::kGt;
        break;
      case CompareOp::kLe:
        o = CompareOp::kGe;
        break;
      case CompareOp::kGt:
        o = CompareOp::kLt;
        break;
      case CompareOp::kGe:
        o = CompareOp::kLe;
        break;
      default:
        break;
    }
  }
  *op = o;
  *col_index = ref->index();
  *literal = lit->value();
  return true;
}

bool CompareWithOp(CompareOp op, const Value& lhs, const Value& rhs) {
  return CompareValues(op, lhs, rhs);
}

bool HasUnboundRefs(const ExprPtr& expr) {
  if (expr->kind() == ExprKind::kColumnRef) {
    return !static_cast<const ColumnRefExpr*>(expr.get())->bound();
  }
  for (const ExprPtr& child : expr->children()) {
    if (HasUnboundRefs(child)) return true;
  }
  return false;
}

void CollectRefIndices(const ExprPtr& expr, std::vector<int>* out) {
  if (expr->kind() == ExprKind::kColumnRef) {
    const auto* ref = static_cast<const ColumnRefExpr*>(expr.get());
    if (ref->bound()) out->push_back(ref->index());
    return;
  }
  for (const ExprPtr& child : expr->children()) CollectRefIndices(child, out);
}

namespace {

/// Rebuilds `expr` with each bound ColumnRef mapped through `map_ref`.
Result<ExprPtr> MapColumnRefs(
    const ExprPtr& expr,
    const std::function<Result<ExprPtr>(const ColumnRefExpr&)>& map_ref) {
  switch (expr->kind()) {
    case ExprKind::kColumnRef: {
      const auto* ref = static_cast<const ColumnRefExpr*>(expr.get());
      if (!ref->bound()) return expr;
      return map_ref(*ref);
    }
    case ExprKind::kLiteral:
    case ExprKind::kParameterRef:
      return expr;
    default: {
      std::vector<ExprPtr> mapped;
      mapped.reserve(expr->children().size());
      bool changed = false;
      for (const ExprPtr& child : expr->children()) {
        IDF_ASSIGN_OR_RETURN(ExprPtr m, MapColumnRefs(child, map_ref));
        changed = changed || (m != child);
        mapped.push_back(std::move(m));
      }
      if (!changed) return expr;
      switch (expr->kind()) {
        case ExprKind::kComparison:
          return ExprPtr(std::make_shared<ComparisonExpr>(
              static_cast<const ComparisonExpr*>(expr.get())->op(), mapped[0],
              mapped[1]));
        case ExprKind::kLogical:
          return ExprPtr(std::make_shared<LogicalExpr>(
              static_cast<const LogicalExpr*>(expr.get())->op(), mapped[0],
              mapped[1]));
        case ExprKind::kNot:
          return ExprPtr(std::make_shared<NotExpr>(mapped[0]));
        case ExprKind::kIsNull:
          return ExprPtr(std::make_shared<IsNullExpr>(
              mapped[0], static_cast<const IsNullExpr*>(expr.get())->negated()));
        case ExprKind::kArithmetic:
          return ExprPtr(std::make_shared<ArithmeticExpr>(
              static_cast<const ArithmeticExpr*>(expr.get())->op(), mapped[0],
              mapped[1]));
        case ExprKind::kLike: {
          const auto* like = static_cast<const LikeExpr*>(expr.get());
          return ExprPtr(std::make_shared<LikeExpr>(mapped[0], like->pattern(),
                                                    like->negated()));
        }
        default:
          return Status::Internal("unexpected expr kind in MapColumnRefs");
      }
    }
  }
}

}  // namespace

Result<ExprPtr> ShiftColumnRefs(const ExprPtr& expr, int delta) {
  return MapColumnRefs(expr, [delta](const ColumnRefExpr& ref) -> Result<ExprPtr> {
    int shifted = ref.index() + delta;
    if (shifted < 0) {
      return Status::Internal("column ref shift went negative for " +
                              ref.ToString());
    }
    return ExprPtr(std::make_shared<ColumnRefExpr>(ref.name(), shifted));
  });
}

Result<ExprPtr> SubstituteColumnRefs(const ExprPtr& expr,
                                     const std::vector<ExprPtr>& replacements) {
  return MapColumnRefs(
      expr, [&replacements](const ColumnRefExpr& ref) -> Result<ExprPtr> {
        if (static_cast<size_t>(ref.index()) >= replacements.size()) {
          return Status::Internal("column ref out of substitution range: " +
                                  ref.ToString());
        }
        return replacements[static_cast<size_t>(ref.index())];
      });
}

bool ExprHasParameters(const ExprPtr& expr) {
  if (expr->kind() == ExprKind::kParameterRef) return true;
  for (const ExprPtr& child : expr->children()) {
    if (ExprHasParameters(child)) return true;
  }
  return false;
}

/// Rebuilds `expr` with each ParameterRef mapped through `map_param`
/// (structural twin of MapColumnRefs).
Result<ExprPtr> MapParameters(
    const ExprPtr& expr,
    const std::function<Result<ExprPtr>(const ParameterRefExpr&)>& map_param) {
  switch (expr->kind()) {
    case ExprKind::kParameterRef:
      return map_param(*static_cast<const ParameterRefExpr*>(expr.get()));
    case ExprKind::kColumnRef:
    case ExprKind::kLiteral:
      return expr;
    default: {
      std::vector<ExprPtr> mapped;
      mapped.reserve(expr->children().size());
      bool changed = false;
      for (const ExprPtr& child : expr->children()) {
        IDF_ASSIGN_OR_RETURN(ExprPtr m, MapParameters(child, map_param));
        changed = changed || (m != child);
        mapped.push_back(std::move(m));
      }
      if (!changed) return expr;
      switch (expr->kind()) {
        case ExprKind::kComparison:
          return ExprPtr(std::make_shared<ComparisonExpr>(
              static_cast<const ComparisonExpr*>(expr.get())->op(), mapped[0],
              mapped[1]));
        case ExprKind::kLogical:
          return ExprPtr(std::make_shared<LogicalExpr>(
              static_cast<const LogicalExpr*>(expr.get())->op(), mapped[0],
              mapped[1]));
        case ExprKind::kNot:
          return ExprPtr(std::make_shared<NotExpr>(mapped[0]));
        case ExprKind::kIsNull:
          return ExprPtr(std::make_shared<IsNullExpr>(
              mapped[0], static_cast<const IsNullExpr*>(expr.get())->negated()));
        case ExprKind::kArithmetic:
          return ExprPtr(std::make_shared<ArithmeticExpr>(
              static_cast<const ArithmeticExpr*>(expr.get())->op(), mapped[0],
              mapped[1]));
        case ExprKind::kLike: {
          const auto* like = static_cast<const LikeExpr*>(expr.get());
          return ExprPtr(std::make_shared<LikeExpr>(mapped[0], like->pattern(),
                                                    like->negated()));
        }
        default:
          return Status::Internal("unexpected expr kind in MapParameters");
      }
    }
  }
}

Result<ExprPtr> SubstituteParameters(const ExprPtr& expr,
                                     const std::vector<Value>& params) {
  return MapParameters(
      expr, [&params](const ParameterRefExpr& ref) -> Result<ExprPtr> {
        if (ref.ordinal() < 0 ||
            static_cast<size_t>(ref.ordinal()) >= params.size()) {
          return Status::Internal("parameter ordinal out of range: " +
                                  ref.ToString() + " with " +
                                  std::to_string(params.size()) + " bindings");
        }
        return Lit(params[static_cast<size_t>(ref.ordinal())]);
      });
}

}  // namespace idf
