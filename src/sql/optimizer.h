// Rule-based logical optimizer, mirroring Catalyst's logical optimization
// layer. Rules are applied bottom-up to a fixpoint. The Indexed DataFrame
// library registers its index-aware rules here (indexed/indexed_rules.h)
// without the engine knowing about them — the integration mechanism the
// paper describes ("our library includes optimization rules that make
// regular Spark SQL queries aware of our custom indexed operations").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sql/logical_plan.h"

namespace idf {

/// \brief One rewrite rule. Apply() sees a node whose children are already
/// optimized and returns the rewritten node, or nullptr when the rule does
/// not apply.
class OptimizerRule {
 public:
  virtual ~OptimizerRule() = default;
  virtual std::string name() const = 0;
  virtual Result<LogicalPlanPtr> Apply(const LogicalPlanPtr& node) const = 0;
};
using OptimizerRulePtr = std::shared_ptr<const OptimizerRule>;

/// \brief Rule-batch optimizer (Catalyst's "batches"): each batch runs to
/// fixpoint over the whole tree before the next batch starts. The built-in
/// operator optimizations (folding, merging, pushdown) form the first
/// batch; library extensions (the indexed rules) run in a later batch so
/// they see plans that generic optimization has already normalized — e.g.
/// filters pushed below joins land on IndexedScans *before* the indexed
/// rewrites fire.
class Optimizer {
 public:
  /// Creates an optimizer with the built-in rule set (constant folding,
  /// filter merging, predicate pushdown, limit/sort fusion).
  static Optimizer WithDefaultRules();

  /// Appends `rule` to the extensions batch (created after the built-in
  /// batch on first use).
  void AddRule(OptimizerRulePtr rule);

  /// Appends `rule` to the named batch, creating the batch (at the end of
  /// the pipeline) if it does not exist.
  void AddRuleToBatch(const std::string& batch, OptimizerRulePtr rule);

  /// Optimizes an analyzed plan: every batch to fixpoint, in order.
  Result<LogicalPlanPtr> Optimize(const LogicalPlanPtr& plan) const;

 private:
  struct Batch {
    std::string name;
    std::vector<OptimizerRulePtr> rules;
  };

  Result<LogicalPlanPtr> OptimizeNode(const LogicalPlanPtr& plan,
                                      const Batch& batch, int depth) const;

  static constexpr int kMaxIterations = 16;
  std::vector<Batch> batches_;
};

// ---------------------------------------------------------------------------
// Built-in rules
// ---------------------------------------------------------------------------

/// Evaluates literal-only subexpressions at plan time.
class ConstantFoldingRule : public OptimizerRule {
 public:
  std::string name() const override { return "ConstantFolding"; }
  Result<LogicalPlanPtr> Apply(const LogicalPlanPtr& node) const override;
};

/// Filter(Filter(x, p1), p2) => Filter(x, p2 AND p1).
class MergeFiltersRule : public OptimizerRule {
 public:
  std::string name() const override { return "MergeFilters"; }
  Result<LogicalPlanPtr> Apply(const LogicalPlanPtr& node) const override;
};

/// Removes filters whose predicate folded to literal TRUE.
class RemoveTrivialFilterRule : public OptimizerRule {
 public:
  std::string name() const override { return "RemoveTrivialFilter"; }
  Result<LogicalPlanPtr> Apply(const LogicalPlanPtr& node) const override;
};

/// Filter(Project(x), p) => Project(Filter(x, p')) where p' re-expresses
/// the predicate in terms of the projection's input (Catalyst's
/// PushDownPredicate through Project).
class PushFilterThroughProjectRule : public OptimizerRule {
 public:
  std::string name() const override { return "PushFilterThroughProject"; }
  Result<LogicalPlanPtr> Apply(const LogicalPlanPtr& node) const override;
};

/// Filter(Aggregate(x), p) => Aggregate(Filter(x, p')) for conjuncts of p
/// that reference only group-key outputs which are plain column
/// references (Catalyst's PushDownPredicate through Aggregate). Conjuncts
/// over aggregate outputs stay above (HAVING semantics).
class PushFilterThroughAggregateRule : public OptimizerRule {
 public:
  std::string name() const override { return "PushFilterThroughAggregate"; }
  Result<LogicalPlanPtr> Apply(const LogicalPlanPtr& node) const override;
};

/// Limit(Sort(x)) => TopK(x): per-partition heaps instead of a global sort
/// (Spark's TakeOrderedAndProject).
class CombineLimitSortRule : public OptimizerRule {
 public:
  std::string name() const override { return "CombineLimitSort"; }
  Result<LogicalPlanPtr> Apply(const LogicalPlanPtr& node) const override;
};

/// Filter(Join(l, r), p): conjuncts of p that reference only one join side
/// are pushed below the join (Catalyst's PushPredicateThroughJoin). This
/// is what lets `WHERE a.key = 5` over a join land directly on an
/// IndexedScan and become an index lookup.
class PushFilterThroughJoinRule : public OptimizerRule {
 public:
  std::string name() const override { return "PushFilterThroughJoin"; }
  Result<LogicalPlanPtr> Apply(const LogicalPlanPtr& node) const override;
};

/// Folds every literal-only subexpression of `expr`; returns `expr` itself
/// when nothing folds (exposed for tests).
Result<ExprPtr> FoldConstants(const ExprPtr& expr);

}  // namespace idf
