#include "sql/session.h"

#include <algorithm>

#include "engine/shuffle.h"
#include "sql/analyzer.h"
#include "sql/sql_parser.h"

namespace idf {

Session::Session(ExecutorContextPtr exec)
    : exec_(std::move(exec)),
      optimizer_(Optimizer::WithDefaultRules()),
      planner_(exec_->config()) {}

Result<SessionPtr> Session::Make(const EngineConfig& config) {
  IDF_ASSIGN_OR_RETURN(ExecutorContextPtr exec, ExecutorContext::Make(config));
  return SessionPtr(new Session(std::move(exec)));
}

Result<SessionPtr> Session::MakeWithContext(ExecutorContextPtr exec) {
  if (exec == nullptr) {
    return Status::InvalidArgument("MakeWithContext: null executor context");
  }
  return SessionPtr(new Session(std::move(exec)));
}

void Session::AddOptimizerRule(OptimizerRulePtr rule) {
  optimizer_.AddRule(std::move(rule));
}

void Session::AddPhysicalStrategy(PhysicalStrategyPtr strategy) {
  planner_.AddStrategy(std::move(strategy));
}

bool Session::HasExtension(const std::string& tag) const {
  return std::find(extensions_.begin(), extensions_.end(), tag) != extensions_.end();
}

void Session::MarkExtension(const std::string& tag) { extensions_.push_back(tag); }

Result<DataFrame> Session::CreateDataFrame(SchemaPtr schema, RowVec rows,
                                           const std::string& name) {
  for (const Row& row : rows) {
    IDF_RETURN_NOT_OK(ValidateRow(*schema, row));
  }
  auto table = std::make_shared<RawTable>();
  table->name = name;
  table->schema = std::move(schema);
  for (const Row& row : rows) table->approx_bytes += EstimateRowBytes(row);
  table->partitions = SplitRoundRobin(rows, exec_->num_partitions());
  return DataFrame(shared_from_this(), std::make_shared<ScanNode>(std::move(table)));
}

DataFrame Session::FromPlan(LogicalPlanPtr plan) {
  return DataFrame(shared_from_this(), std::move(plan));
}

Status Session::RegisterTable(const std::string& name, DataFrame df) {
  if (name.empty()) return Status::InvalidArgument("empty table name");
  if (!df.valid()) return Status::InvalidArgument("empty DataFrame handle");
  tables_[name] = df.plan();
  return Status::OK();
}

Result<DataFrame> Session::Table(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::KeyError("table not registered: '" + name + "'");
  }
  return DataFrame(std::const_pointer_cast<Session>(shared_from_this()),
                   it->second);
}

std::vector<std::string> Session::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, df] : tables_) out.push_back(name);
  return out;
}

Result<DataFrame> Session::Sql(const std::string& query) {
  return ParseSql(shared_from_this(), query);
}

Result<LogicalPlanPtr> Session::OptimizeOnly(const LogicalPlanPtr& plan) {
  IDF_ASSIGN_OR_RETURN(LogicalPlanPtr analyzed, Analyze(plan));
  return optimizer_.Optimize(analyzed);
}

Result<PhysicalOpPtr> Session::PlanQuery(const LogicalPlanPtr& plan) {
  IDF_ASSIGN_OR_RETURN(LogicalPlanPtr optimized, OptimizeOnly(plan));
  return planner_.Plan(optimized);
}

Result<PhysicalOpPtr> Session::PlanOptimized(const LogicalPlanPtr& optimized) {
  return planner_.Plan(optimized);
}

Result<PartitionVec> Session::ExecutePartitions(const LogicalPlanPtr& plan) {
  IDF_ASSIGN_OR_RETURN(PhysicalOpPtr op, PlanQuery(plan));
  return op->Execute(*exec_);
}

Result<RowVec> Session::ExecuteCollect(const LogicalPlanPtr& plan) {
  IDF_ASSIGN_OR_RETURN(PartitionVec parts, ExecutePartitions(plan));
  return CollectRows(parts);
}

}  // namespace idf
