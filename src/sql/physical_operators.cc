#include "sql/physical_operators.h"

#include <algorithm>
#include <mutex>

#include "common/logging.h"
#include "sql/aggregate_common.h"

namespace idf {

// ---------------------------------------------------------------------------
// Scans
// ---------------------------------------------------------------------------

Result<PartitionVec> RowSourceOp::Execute(ExecutorContext& ctx) {
  PartitionVec out(table_->partitions.size());
  ctx.pool().ParallelFor(table_->partitions.size(), [&](size_t p) {
    ctx.metrics().AddTask();
    ctx.metrics().AddRowsScanned(table_->partitions[p].size());
    out[p] = PartitionData(table_->partitions[p]);  // copy: fresh storage read
  });
  return out;
}

Result<PartitionVec> CacheScanOp::Execute(ExecutorContext& ctx) {
  PartitionVec out;
  out.reserve(table_->partitions.size());
  std::vector<int> all_columns(static_cast<size_t>(table_->schema->num_fields()));
  for (size_t i = 0; i < all_columns.size(); ++i) all_columns[i] = static_cast<int>(i);
  for (const ColumnCachePtr& cache : table_->partitions) {
    ctx.metrics().AddTask();
    out.push_back(PartitionData(ColumnarChunk{cache, all_columns, nullptr}));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Filter
// ---------------------------------------------------------------------------

namespace {

template <typename T, typename GetFn>
void ScanColumn(const std::vector<uint8_t>& validity, size_t n, CompareOp op,
                T pivot, const GetFn& get, std::vector<uint32_t>* out,
                const std::vector<uint32_t>* selection) {
  auto test = [op, &pivot](const T& v) {
    switch (op) {
      case CompareOp::kEq:
        return v == pivot;
      case CompareOp::kNe:
        return v != pivot;
      case CompareOp::kLt:
        return v < pivot;
      case CompareOp::kLe:
        return v <= pivot;
      case CompareOp::kGt:
        return v > pivot;
      case CompareOp::kGe:
        return v >= pivot;
    }
    return false;
  };
  if (selection == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      if (validity[i] && test(get(i))) out->push_back(static_cast<uint32_t>(i));
    }
  } else {
    for (uint32_t i : *selection) {
      if (validity[i] && test(get(i))) out->push_back(i);
    }
  }
}

}  // namespace

Result<PartitionVec> FilterOp::Execute(ExecutorContext& ctx) {
  IDF_ASSIGN_OR_RETURN(PartitionVec input, children()[0]->Execute(ctx));

  // Prepared-statement parameters resolve to literals per execution; the
  // operator (and thus the cached plan) stays parameterized.
  ExprPtr predicate = predicate_;
  if (ExprHasParameters(predicate)) {
    const std::vector<Value>* params = ctx.parameters();
    if (params == nullptr) {
      return Status::Internal(
          "parameterized filter executed without bound parameters");
    }
    IDF_ASSIGN_OR_RETURN(predicate, SubstituteParameters(predicate, *params));
  }

  CompareOp op;
  int col = -1;
  Value literal;
  const bool fast = MatchComparisonFilter(predicate, &op, &col, &literal);

  PartitionVec out(input.size());
  Status first_error;
  std::mutex error_mu;
  ctx.pool().ParallelFor(input.size(), [&](size_t p) {
    ctx.metrics().AddTask();
    PartitionData& part = input[p];
    if (part.is_columnar() && fast) {
      const ColumnarChunk& chunk = part.columnar();
      // `col` indexes the chunk's projected schema; translate to cache.
      int cache_col = chunk.columns[static_cast<size_t>(col)];
      const CachedColumn& column = chunk.cache->column(cache_col);
      ctx.metrics().AddRowsScanned(chunk.num_rows());
      auto selection = std::make_shared<std::vector<uint32_t>>();
      const std::vector<uint32_t>* presel =
          chunk.selection ? chunk.selection.get() : nullptr;
      bool ok = true;
      switch (column.type()) {
        case TypeId::kBool:
        case TypeId::kInt32:
        case TypeId::kInt64:
        case TypeId::kTimestamp: {
          if (literal.is_string()) {
            ok = false;
            break;
          }
          int64_t pivot = literal.is_double()
                              ? static_cast<int64_t>(literal.double_value())
                              : literal.AsInt64();
          if (literal.is_double() &&
              static_cast<double>(pivot) != literal.double_value()) {
            ok = false;  // fractional pivot vs integer column: fall back
            break;
          }
          const auto& data = column.ints();
          ScanColumn<int64_t>(
              column.validity(), column.size(), op, pivot,
              [&data](size_t i) { return data[i]; }, selection.get(), presel);
          break;
        }
        case TypeId::kFloat64: {
          if (literal.is_string()) {
            ok = false;
            break;
          }
          const auto& data = column.doubles();
          ScanColumn<double>(
              column.validity(), column.size(), op, literal.AsDouble(),
              [&data](size_t i) { return data[i]; }, selection.get(), presel);
          break;
        }
        case TypeId::kString: {
          if (!literal.is_string()) {
            ok = false;
            break;
          }
          const auto& data = column.strings();
          ScanColumn<std::string>(
              column.validity(), column.size(), op, literal.string_value(),
              [&data](size_t i) { return data[i]; }, selection.get(), presel);
          break;
        }
      }
      if (ok) {
        ColumnarChunk filtered = chunk;
        filtered.selection = std::move(selection);
        ctx.metrics().AddRowsProduced(filtered.num_rows());
        out[p] = PartitionData(std::move(filtered));
        return;
      }
      // Type mismatch between literal and column: row fallback below.
    }
    RowVec rows = std::move(part).TakeRows();
    ctx.metrics().AddRowsScanned(rows.size());
    RowVec kept;
    for (Row& row : rows) {
      auto v = predicate->Eval(row);
      if (!v.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) first_error = v.status();
        return;
      }
      const Value& val = v.ValueUnsafe();
      if (!val.is_null() && val.bool_value()) kept.push_back(std::move(row));
    }
    ctx.metrics().AddRowsProduced(kept.size());
    out[p] = PartitionData(std::move(kept));
  });
  IDF_RETURN_NOT_OK(first_error);
  return out;
}

// ---------------------------------------------------------------------------
// Project
// ---------------------------------------------------------------------------

Result<PartitionVec> ProjectOp::Execute(ExecutorContext& ctx) {
  IDF_ASSIGN_OR_RETURN(PartitionVec input, children()[0]->Execute(ctx));

  // Resolve prepared-statement parameters to literals per execution.
  std::vector<ExprPtr> exprs = exprs_;
  for (ExprPtr& e : exprs) {
    if (!ExprHasParameters(e)) continue;
    const std::vector<Value>* params = ctx.parameters();
    if (params == nullptr) {
      return Status::Internal(
          "parameterized projection executed without bound parameters");
    }
    IDF_ASSIGN_OR_RETURN(e, SubstituteParameters(e, *params));
  }

  // All-column-refs projections over columnar data just remap indices.
  bool all_refs = true;
  std::vector<int> ref_indices;
  for (const ExprPtr& e : exprs) {
    if (e->kind() == ExprKind::kColumnRef &&
        static_cast<const ColumnRefExpr*>(e.get())->bound()) {
      ref_indices.push_back(static_cast<const ColumnRefExpr*>(e.get())->index());
    } else {
      all_refs = false;
      break;
    }
  }

  PartitionVec out(input.size());
  Status first_error;
  std::mutex error_mu;
  ctx.pool().ParallelFor(input.size(), [&](size_t p) {
    ctx.metrics().AddTask();
    PartitionData& part = input[p];
    if (part.is_columnar() && all_refs) {
      const ColumnarChunk& chunk = part.columnar();
      ColumnarChunk projected = chunk;
      projected.columns.clear();
      for (int idx : ref_indices) {
        projected.columns.push_back(chunk.columns[static_cast<size_t>(idx)]);
      }
      out[p] = PartitionData(std::move(projected));
      return;
    }
    RowVec rows = std::move(part).TakeRows();
    RowVec produced;
    produced.reserve(rows.size());
    for (const Row& row : rows) {
      Row next;
      next.reserve(exprs.size());
      for (const ExprPtr& e : exprs) {
        auto v = e->Eval(row);
        if (!v.ok()) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.ok()) first_error = v.status();
          return;
        }
        next.push_back(std::move(v).ValueUnsafe());
      }
      produced.push_back(std::move(next));
    }
    ctx.metrics().AddRowsProduced(produced.size());
    out[p] = PartitionData(std::move(produced));
  });
  IDF_RETURN_NOT_OK(first_error);
  return out;
}

// ---------------------------------------------------------------------------
// HashAggregate
// ---------------------------------------------------------------------------

Result<PartitionVec> HashAggregateOp::Execute(ExecutorContext& ctx) {
  IDF_ASSIGN_OR_RETURN(PartitionVec input, children()[0]->Execute(ctx));
  const size_t num_groups = group_exprs_.size();
  const size_t num_aggs = aggs_.size();
  // Output types of aggregates (for sum int-vs-float finalization).
  std::vector<TypeId> out_types;
  for (size_t a = 0; a < num_aggs; ++a) {
    out_types.push_back(schema()->field(static_cast<int>(num_groups + a)).type);
  }

  // Flatten partitions into one logical row range so morsels can cut
  // across partition boundaries — one skewed input partition no longer
  // serializes the build phase.
  std::vector<RowVec> parts;
  parts.reserve(input.size());
  std::vector<size_t> part_end;
  part_end.reserve(input.size());
  size_t total = 0;
  for (PartitionData& p : input) {
    RowVec rows = std::move(p).TakeRows();
    total += rows.size();
    part_end.push_back(total);
    parts.push_back(std::move(rows));
  }
  ctx.metrics().AddRowsScanned(total);

  // Phase 1: thread-local partial hash tables, one per morsel.
  const size_t grain = ctx.MorselGrain(total);
  const size_t num_chunks = total == 0 ? 0 : (total + grain - 1) / grain;
  std::vector<GroupStateMap> chunk_maps(num_chunks);
  Status first_error;
  std::mutex error_mu;
  const size_t dispatched = ctx.pool().ParallelForRange(
      total, grain,
      [&](size_t begin, size_t end) {
        ctx.metrics().AddTask();
        GroupStateMap& groups = chunk_maps[begin / grain];
        size_t p = static_cast<size_t>(
            std::upper_bound(part_end.begin(), part_end.end(), begin) -
            part_end.begin());
        size_t local = begin - (p == 0 ? 0 : part_end[p - 1]);
        for (size_t i = begin; i < end; ++i) {
          while (local >= parts[p].size()) {
            ++p;
            local = 0;
          }
          const Row& row = parts[p][local++];
          Row key;
          key.reserve(num_groups);
          for (const ExprPtr& g : group_exprs_) {
            auto v = g->Eval(row);
            if (!v.ok()) {
              std::lock_guard<std::mutex> lock(error_mu);
              if (first_error.ok()) first_error = v.status();
              return;
            }
            key.push_back(std::move(v).ValueUnsafe());
          }
          auto [it, inserted] = groups.try_emplace(std::move(key));
          if (inserted) it->second.resize(num_aggs);
          for (size_t a = 0; a < num_aggs; ++a) {
            Value arg;
            if (aggs_[a].fn != AggFn::kCountStar) {
              auto v = aggs_[a].arg->Eval(row);
              if (!v.ok()) {
                std::lock_guard<std::mutex> lock(error_mu);
                if (first_error.ok()) first_error = v.status();
                return;
              }
              arg = std::move(v).ValueUnsafe();
            }
            UpdateState(&it->second[a], aggs_[a].fn, arg);
          }
        }
      },
      ctx.cancellation());
  ctx.metrics().AddMorsels(dispatched);
  ctx.metrics().AddAggMorsels(dispatched);
  IDF_RETURN_NOT_OK(ctx.CheckCancelled());
  IDF_RETURN_NOT_OK(first_error);

  // Phase 2: hash-partitioned parallel merge + finalize (no row shuffle —
  // partial states move in memory).
  return MergePartialGroups(ctx, std::move(chunk_maps), num_groups, aggs_,
                            out_types);
}

// ---------------------------------------------------------------------------
// Sort / Limit
// ---------------------------------------------------------------------------

Result<PartitionVec> SortOp::Execute(ExecutorContext& ctx) {
  IDF_ASSIGN_OR_RETURN(PartitionVec input, children()[0]->Execute(ctx));
  RowVec all = CollectRows(input);
  ctx.metrics().AddRowsScanned(all.size());
  const size_t n = all.size();

  // Precompute sort keys to avoid re-evaluating expressions in
  // comparisons. Ties break on input position, which makes each morsel's
  // std::sort plus the k-way merge reproduce std::stable_sort exactly.
  struct Keyed {
    Row keys;
    size_t index;
  };
  auto less = [this](const Keyed& a, const Keyed& b) {
    for (size_t k = 0; k < keys_.size(); ++k) {
      const Value& va = a.keys[k];
      const Value& vb = b.keys[k];
      if (va < vb) return keys_[k].ascending;
      if (vb < va) return !keys_[k].ascending;
    }
    return a.index < b.index;
  };

  // Phase 1: per-morsel key evaluation + local sort.
  std::vector<Keyed> keyed(n);
  const size_t grain = ctx.MorselGrain(n);
  Status first_error;
  std::mutex error_mu;
  const size_t dispatched = ctx.pool().ParallelForRange(
      n, grain,
      [&](size_t begin, size_t end) {
        ctx.metrics().AddTask();
        for (size_t i = begin; i < end; ++i) {
          Row keys;
          keys.reserve(keys_.size());
          for (const SortKey& k : keys_) {
            auto v = k.expr->Eval(all[i]);
            if (!v.ok()) {
              std::lock_guard<std::mutex> lock(error_mu);
              if (first_error.ok()) first_error = v.status();
              return;
            }
            keys.push_back(std::move(v).ValueUnsafe());
          }
          keyed[i] = Keyed{std::move(keys), i};
        }
        std::sort(keyed.begin() + static_cast<long>(begin),
                  keyed.begin() + static_cast<long>(end), less);
      },
      ctx.cancellation());
  ctx.metrics().AddMorsels(dispatched);
  IDF_RETURN_NOT_OK(ctx.CheckCancelled());
  IDF_RETURN_NOT_OK(first_error);

  // Phase 2: k-way merge of the sorted morsel runs.
  struct Run {
    size_t pos;
    size_t end;
  };
  std::vector<Run> heap;
  heap.reserve(dispatched);
  for (size_t begin = 0; begin < n; begin += grain) {
    heap.push_back(Run{begin, std::min(n, begin + grain)});
  }
  auto run_greater = [&](const Run& a, const Run& b) {
    return less(keyed[b.pos], keyed[a.pos]);
  };
  std::make_heap(heap.begin(), heap.end(), run_greater);
  RowVec sorted;
  sorted.reserve(n);
  size_t emitted = 0;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), run_greater);
    Run& r = heap.back();
    sorted.push_back(std::move(all[keyed[r.pos].index]));
    if (++r.pos < r.end) {
      std::push_heap(heap.begin(), heap.end(), run_greater);
    } else {
      heap.pop_back();
    }
    if ((++emitted & 0xFFFF) == 0) IDF_RETURN_NOT_OK(ctx.CheckCancelled());
  }
  PartitionVec out;
  out.push_back(PartitionData(std::move(sorted)));
  return out;
}

Result<PartitionVec> TopKOp::Execute(ExecutorContext& ctx) {
  IDF_ASSIGN_OR_RETURN(PartitionVec input, children()[0]->Execute(ctx));
  RowVec all = CollectRows(input);
  ctx.metrics().AddRowsScanned(all.size());
  const size_t n = all.size();
  if (n_ == 0 || n == 0) {
    ctx.metrics().AddRowsProduced(0);
    PartitionVec out;
    out.push_back(PartitionData(RowVec{}));
    return out;
  }

  // Candidates carry the input position as a final tie-break, giving a
  // total order: the top-k set (and its order) is identical no matter how
  // rows were chunked across morsels.
  struct Candidate {
    Row keys;
    size_t index;
  };
  auto less = [this](const Candidate& a, const Candidate& b) {
    for (size_t k = 0; k < keys_.size(); ++k) {
      const Value& va = a.keys[k];
      const Value& vb = b.keys[k];
      if (va < vb) return keys_[k].ascending;
      if (vb < va) return !keys_[k].ascending;
    }
    return a.index < b.index;
  };

  // Phase 1: per-morsel bounded max-heaps (heap front = worst kept
  // candidate; a row only enters if it beats the front).
  const size_t grain = ctx.MorselGrain(n);
  const size_t num_chunks = (n + grain - 1) / grain;
  std::vector<std::vector<Candidate>> heaps(num_chunks);
  Status first_error;
  std::mutex error_mu;
  const size_t dispatched = ctx.pool().ParallelForRange(
      n, grain,
      [&](size_t begin, size_t end) {
        ctx.metrics().AddTask();
        std::vector<Candidate>& heap = heaps[begin / grain];
        heap.reserve(std::min(n_, end - begin));
        for (size_t i = begin; i < end; ++i) {
          Row keys;
          keys.reserve(keys_.size());
          for (const SortKey& k : keys_) {
            auto v = k.expr->Eval(all[i]);
            if (!v.ok()) {
              std::lock_guard<std::mutex> lock(error_mu);
              if (first_error.ok()) first_error = v.status();
              return;
            }
            keys.push_back(std::move(v).ValueUnsafe());
          }
          Candidate cand{std::move(keys), i};
          if (heap.size() < n_) {
            heap.push_back(std::move(cand));
            std::push_heap(heap.begin(), heap.end(), less);
          } else if (less(cand, heap.front())) {
            std::pop_heap(heap.begin(), heap.end(), less);
            heap.back() = std::move(cand);
            std::push_heap(heap.begin(), heap.end(), less);
          }
        }
      },
      ctx.cancellation());
  ctx.metrics().AddMorsels(dispatched);
  IDF_RETURN_NOT_OK(ctx.CheckCancelled());
  IDF_RETURN_NOT_OK(first_error);

  // Phase 2: merge at most num_chunks * n_ candidates.
  std::vector<Candidate> merged;
  merged.reserve(std::min(n, num_chunks * n_));
  for (auto& h : heaps) {
    for (Candidate& c : h) merged.push_back(std::move(c));
  }
  std::sort(merged.begin(), merged.end(), less);
  if (merged.size() > n_) merged.resize(n_);
  RowVec out_rows;
  out_rows.reserve(merged.size());
  for (Candidate& c : merged) out_rows.push_back(std::move(all[c.index]));
  ctx.metrics().AddRowsProduced(out_rows.size());
  PartitionVec out;
  out.push_back(PartitionData(std::move(out_rows)));
  return out;
}

Result<PartitionVec> UnionAllOp::Execute(ExecutorContext& ctx) {
  PartitionVec out;
  for (const PhysicalOpPtr& child : children()) {
    IDF_ASSIGN_OR_RETURN(PartitionVec parts, child->Execute(ctx));
    for (PartitionData& p : parts) out.push_back(std::move(p));
  }
  return out;
}

Result<PartitionVec> LimitOp::Execute(ExecutorContext& ctx) {
  IDF_ASSIGN_OR_RETURN(PartitionVec input, children()[0]->Execute(ctx));
  RowVec taken;
  taken.reserve(n_);
  for (const PartitionData& part : input) {
    if (taken.size() >= n_) break;
    RowVec rows = part.ToRows();
    for (Row& row : rows) {
      if (taken.size() >= n_) break;
      taken.push_back(std::move(row));
    }
  }
  PartitionVec out;
  out.push_back(PartitionData(std::move(taken)));
  return out;
}

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

void JoinHashTable::Reserve(size_t n) {
  rows.reserve(n);
  keys.reserve(n);
  map.reserve(n);
}

Status JoinHashTable::Add(const Row& row, const Value& key) {
  map.emplace(key.Hash(), rows.size());
  rows.push_back(row);
  keys.push_back(key);
  return Status::OK();
}

Result<std::vector<RowVec>> ShuffleRowsByKeyExpr(ExecutorContext& ctx,
                                                 const PartitionVec& input,
                                                 const ExprPtr& key,
                                                 const HashPartitioner& partitioner,
                                                 bool keep_null_keys) {
  const int num_out = partitioner.num_partitions();
  std::vector<std::vector<RowVec>> buckets(input.size());
  Status first_error;
  std::mutex error_mu;
  ctx.pool().ParallelFor(input.size(), [&](size_t p) {
    ctx.metrics().AddTask();
    std::vector<RowVec> local(static_cast<size_t>(num_out));
    RowVec rows = input[p].ToRows();
    uint64_t bytes = 0;
    for (Row& row : rows) {
      auto v = key->Eval(row);
      if (!v.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) first_error = v.status();
        return;
      }
      const Value& kv = v.ValueUnsafe();
      if (kv.is_null() && !keep_null_keys) continue;  // inner: never match
      int target = kv.is_null() ? 0 : partitioner.PartitionOf(kv);
      bytes += EstimateRowBytes(row);
      local[static_cast<size_t>(target)].push_back(std::move(row));
    }
    ctx.metrics().AddShuffledBytes(bytes);
    buckets[p] = std::move(local);
  }, ctx.cancellation());
  IDF_RETURN_NOT_OK(first_error);
  IDF_RETURN_NOT_OK(ctx.CheckCancelled());

  std::vector<RowVec> output(static_cast<size_t>(num_out));
  uint64_t total_rows = 0;
  for (auto& b : buckets) {
    for (size_t t = 0; t < b.size(); ++t) {
      total_rows += b[t].size();
      for (Row& row : b[t]) output[t].push_back(std::move(row));
    }
  }
  ctx.metrics().AddShuffledRows(total_rows);
  return output;
}

Result<BinaryPartitions> ShuffleEncodedByKeyExpr(
    ExecutorContext& ctx, const PartitionVec& input, const Schema& schema,
    const ExprPtr& key, const HashPartitioner& partitioner,
    bool keep_null_keys) {
  const int num_out = partitioner.num_partitions();
  std::vector<BinaryPartitions> buckets(input.size());
  uint64_t total_rows = 0;
  uint64_t total_bytes = 0;
  Status first_error;
  std::mutex mu;
  ctx.pool().ParallelFor(input.size(), [&](size_t p) {
    ctx.metrics().AddTask();
    BinaryPartitions local(static_cast<size_t>(num_out));
    std::vector<uint8_t> scratch;
    uint64_t rows = 0;
    uint64_t bytes = 0;
    // Row-represented partitions are routed by reference; only columnar
    // chunks materialize an intermediate RowVec.
    RowVec materialized;
    if (input[p].is_columnar()) materialized = input[p].ToRows();
    const RowVec& src = input[p].is_columnar() ? materialized : input[p].rows();
    auto route = [&]() -> Status {
      for (const Row& row : src) {
        IDF_ASSIGN_OR_RETURN(Value kv, key->Eval(row));
        if (kv.is_null() && !keep_null_keys) continue;  // inner: never match
        int target = kv.is_null() ? 0 : partitioner.PartitionOf(kv);
        IDF_RETURN_NOT_OK(
            local[static_cast<size_t>(target)].AppendRow(schema, row, &scratch));
        bytes += scratch.size();
        ++rows;
      }
      return Status::OK();
    };
    Status st = route();
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(mu);
      if (first_error.ok()) first_error = st;
      return;
    }
    buckets[p] = std::move(local);
    std::lock_guard<std::mutex> lock(mu);
    total_rows += rows;
    total_bytes += bytes;
  }, ctx.cancellation());
  IDF_RETURN_NOT_OK(first_error);
  IDF_RETURN_NOT_OK(ctx.CheckCancelled());
  ctx.metrics().AddShuffledRows(total_rows);
  ctx.metrics().AddShuffledBytes(total_bytes);
  ctx.metrics().AddShuffleEncodedBytes(total_bytes);

  BinaryPartitions output(static_cast<size_t>(num_out));
  ctx.pool().ParallelFor(static_cast<size_t>(num_out), [&](size_t out) {
    ctx.metrics().AddTask();
    size_t rows = 0;
    size_t bytes = 0;
    for (const BinaryPartitions& b : buckets) {
      rows += b[out].num_rows();
      bytes += b[out].byte_size();
    }
    output[out].Reserve(rows, bytes);
    for (const BinaryPartitions& b : buckets) output[out].Append(b[out]);
  }, ctx.cancellation());
  IDF_RETURN_NOT_OK(ctx.CheckCancelled());
  return output;
}

namespace {

Row NullPad(size_t width) { return Row(width, Value::Null()); }

/// Probes `table` with `probe_rows`. `matched` (when non-null) records
/// which build rows found a partner (for emitting unmatched build rows of
/// an outer join). When `emit_unmatched_probe_width` is non-zero, probe
/// rows without a partner are emitted padded with that many nulls on the
/// build side (probe-side outer join).
Result<RowVec> ProbeHashTable(const JoinHashTable& table, const RowVec& probe_rows,
                              const ExprPtr& probe_key, bool build_is_left,
                              std::vector<uint8_t>* matched = nullptr,
                              size_t emit_unmatched_probe_width = 0) {
  RowVec out;
  for (const Row& row : probe_rows) {
    IDF_ASSIGN_OR_RETURN(Value kv, probe_key->Eval(row));
    bool any = false;
    if (!kv.is_null()) {
      auto range = table.map.equal_range(kv.Hash());
      for (auto it = range.first; it != range.second; ++it) {
        size_t idx = it->second;
        if (!(table.keys[idx] == kv)) continue;
        any = true;
        if (matched != nullptr) (*matched)[idx] = 1;
        out.push_back(build_is_left ? ConcatRows(table.rows[idx], row)
                                    : ConcatRows(row, table.rows[idx]));
      }
    }
    if (!any && emit_unmatched_probe_width > 0) {
      Row pad = NullPad(emit_unmatched_probe_width);
      out.push_back(build_is_left ? ConcatRows(pad, row) : ConcatRows(row, pad));
    }
  }
  return out;
}

}  // namespace

Result<PartitionVec> ShuffledHashJoinOp::Execute(ExecutorContext& ctx) {
  IDF_ASSIGN_OR_RETURN(PartitionVec left, children()[0]->Execute(ctx));
  IDF_ASSIGN_OR_RETURN(PartitionVec right, children()[1]->Execute(ctx));

  const bool left_outer = join_type_ == JoinType::kLeftOuter;
  const size_t right_width =
      static_cast<size_t>(children()[1]->schema()->num_fields());

  HashPartitioner partitioner(ctx.num_partitions());
  IDF_ASSIGN_OR_RETURN(std::vector<RowVec> lparts,
                       ShuffleRowsByKeyExpr(ctx, left, left_key_, partitioner,
                                            /*keep_null_keys=*/left_outer));
  IDF_ASSIGN_OR_RETURN(std::vector<RowVec> rparts,
                       ShuffleRowsByKeyExpr(ctx, right, right_key_, partitioner));

  PartitionVec out(lparts.size());
  Status first_error;
  std::mutex error_mu;
  ctx.pool().ParallelFor(lparts.size(), [&](size_t p) {
    ctx.metrics().AddTask();
    JoinHashTable table;
    table.Reserve(lparts[p].size());
    for (const Row& row : lparts[p]) {
      auto v = left_key_->Eval(row);
      if (!v.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) first_error = v.status();
        return;
      }
      const Value& kv = v.ValueUnsafe();
      if (kv.is_null()) {
        if (left_outer) {
          // Kept out of the hash map (never matches), but tracked so the
          // unmatched pass below null-pads it.
          table.rows.push_back(row);
          table.keys.push_back(kv);
        }
        continue;
      }
      (void)table.Add(row, kv);
    }
    std::vector<uint8_t> matched(table.rows.size(), 0);
    auto joined = ProbeHashTable(table, rparts[p], right_key_,
                                 /*build_is_left=*/true,
                                 left_outer ? &matched : nullptr);
    if (!joined.ok()) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error.ok()) first_error = joined.status();
      return;
    }
    RowVec result = std::move(joined).ValueUnsafe();
    if (left_outer) {
      for (size_t i = 0; i < table.rows.size(); ++i) {
        if (!matched[i]) {
          result.push_back(
              ConcatRows(table.rows[i], Row(right_width, Value::Null())));
        }
      }
    }
    ctx.metrics().AddRowsProduced(result.size());
    out[p] = PartitionData(std::move(result));
  });
  IDF_RETURN_NOT_OK(first_error);
  return out;
}

Result<PartitionVec> SortMergeJoinOp::Execute(ExecutorContext& ctx) {
  IDF_ASSIGN_OR_RETURN(PartitionVec left, children()[0]->Execute(ctx));
  IDF_ASSIGN_OR_RETURN(PartitionVec right, children()[1]->Execute(ctx));

  const bool left_outer = join_type_ == JoinType::kLeftOuter;
  const size_t right_width =
      static_cast<size_t>(children()[1]->schema()->num_fields());

  HashPartitioner partitioner(ctx.num_partitions());
  IDF_ASSIGN_OR_RETURN(std::vector<RowVec> lparts,
                       ShuffleRowsByKeyExpr(ctx, left, left_key_, partitioner,
                                            /*keep_null_keys=*/left_outer));
  IDF_ASSIGN_OR_RETURN(std::vector<RowVec> rparts,
                       ShuffleRowsByKeyExpr(ctx, right, right_key_, partitioner));

  PartitionVec out(lparts.size());
  Status first_error;
  std::mutex error_mu;
  ctx.pool().ParallelFor(lparts.size(), [&](size_t p) {
    ctx.metrics().AddTask();
    // Pre-evaluate keys, then sort both sides by key (the cost the paper's
    // indexed join eliminates).
    struct Keyed {
      Value key;
      const Row* row;
    };
    auto keyed_sorted = [&](const RowVec& rows, const ExprPtr& key_expr,
                            bool keep_nulls) -> Result<std::vector<Keyed>> {
      std::vector<Keyed> keyed;
      keyed.reserve(rows.size());
      for (const Row& row : rows) {
        IDF_ASSIGN_OR_RETURN(Value k, key_expr->Eval(row));
        if (k.is_null() && !keep_nulls) continue;
        keyed.push_back(Keyed{std::move(k), &row});
      }
      std::sort(keyed.begin(), keyed.end(),
                [](const Keyed& a, const Keyed& b) { return a.key < b.key; });
      return keyed;
    };
    auto lk = keyed_sorted(lparts[p], left_key_, /*keep_nulls=*/left_outer);
    auto rk = keyed_sorted(rparts[p], right_key_, /*keep_nulls=*/false);
    if (!lk.ok() || !rk.ok()) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error.ok()) first_error = lk.ok() ? rk.status() : lk.status();
      return;
    }
    const std::vector<Keyed>& ls = *lk;
    const std::vector<Keyed>& rs = *rk;
    std::vector<uint8_t> l_matched(ls.size(), 0);
    RowVec joined;
    size_t i = 0;
    size_t j = 0;
    while (i < ls.size() && j < rs.size()) {
      // Null left keys sort first and never equal a (non-null) right key.
      if (ls[i].key.is_null() || ls[i].key < rs[j].key) {
        ++i;
      } else if (rs[j].key < ls[i].key) {
        ++j;
      } else {
        // Equal-key run: emit the cross product of both runs.
        size_t i_end = i;
        while (i_end < ls.size() && !(ls[i].key < ls[i_end].key) &&
               !(ls[i_end].key < ls[i].key)) {
          ++i_end;
        }
        size_t j_end = j;
        while (j_end < rs.size() && !(rs[j].key < rs[j_end].key) &&
               !(rs[j_end].key < rs[j].key)) {
          ++j_end;
        }
        for (size_t a = i; a < i_end; ++a) {
          l_matched[a] = 1;
          for (size_t b = j; b < j_end; ++b) {
            joined.push_back(ConcatRows(*ls[a].row, *rs[b].row));
          }
        }
        i = i_end;
        j = j_end;
      }
    }
    if (left_outer) {
      for (size_t a = 0; a < ls.size(); ++a) {
        if (!l_matched[a]) {
          joined.push_back(
              ConcatRows(*ls[a].row, Row(right_width, Value::Null())));
        }
      }
    }
    ctx.metrics().AddRowsProduced(joined.size());
    out[p] = PartitionData(std::move(joined));
  });
  IDF_RETURN_NOT_OK(first_error);
  return out;
}

Result<PartitionVec> BroadcastHashJoinOp::Execute(ExecutorContext& ctx) {
  IDF_ASSIGN_OR_RETURN(PartitionVec left, children()[0]->Execute(ctx));
  IDF_ASSIGN_OR_RETURN(PartitionVec right, children()[1]->Execute(ctx));

  const bool left_outer = join_type_ == JoinType::kLeftOuter;
  if (left_outer && broadcast_left_) {
    // The outer side must be the probe side so unmatched rows are emitted
    // exactly once (the planner never produces this combination).
    return Status::Internal(
        "left-outer broadcast join must broadcast the right side");
  }
  const size_t build_width = static_cast<size_t>(
      children()[broadcast_left_ ? 0 : 1]->schema()->num_fields());

  PartitionVec& build_parts = broadcast_left_ ? left : right;
  PartitionVec& probe_parts = broadcast_left_ ? right : left;
  const ExprPtr& build_key = broadcast_left_ ? left_key_ : right_key_;
  const ExprPtr& probe_key = broadcast_left_ ? right_key_ : left_key_;

  BroadcastRows bc = MakeBroadcast(ctx, CollectRows(build_parts));
  JoinHashTable table;
  table.Reserve(bc.rows->size());
  for (const Row& row : *bc.rows) {
    IDF_ASSIGN_OR_RETURN(Value kv, build_key->Eval(row));
    if (kv.is_null()) continue;
    IDF_RETURN_NOT_OK(table.Add(row, kv));
  }

  PartitionVec out(probe_parts.size());
  Status first_error;
  std::mutex error_mu;
  ctx.pool().ParallelFor(probe_parts.size(), [&](size_t p) {
    ctx.metrics().AddTask();
    RowVec probe_rows = probe_parts[p].ToRows();
    auto joined = ProbeHashTable(table, probe_rows, probe_key,
                                 /*build_is_left=*/broadcast_left_,
                                 /*matched=*/nullptr,
                                 left_outer ? build_width : 0);
    if (!joined.ok()) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error.ok()) first_error = joined.status();
      return;
    }
    ctx.metrics().AddRowsProduced(joined->size());
    out[p] = PartitionData(std::move(joined).ValueUnsafe());
  });
  IDF_RETURN_NOT_OK(first_error);
  return out;
}

}  // namespace idf
