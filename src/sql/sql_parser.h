// SQL front-end: the paper's Figure 1 shows two entry points into the
// engine — "Users write SQL queries or use the Dataframe API". This parser
// provides the SQL one: SELECT statements are translated into the same
// logical plans the DataFrame API builds, so queries over registered
// Indexed DataFrames get index-aware optimization transparently.
//
// Supported grammar (case-insensitive keywords):
//
//   SELECT select_list
//   FROM table [alias] (JOIN table [alias] ON qual = qual)*
//   [WHERE predicate]
//   [GROUP BY expr_list] [HAVING predicate]
//   [ORDER BY expr [ASC|DESC] (, ...)*]
//   [LIMIT n]
//
//   select_list := * | item (, item)*       item := expr [AS name]
//   expr        := OR / AND / NOT / comparisons (= != <> < <= > >=) /
//                  IS [NOT] NULL / BETWEEN .. AND .. / IN (literals) /
//                  + - * / / literals / [alias.]column /
//                  COUNT(*) COUNT SUM MIN MAX AVG(expr)
//
// Qualified references (alias.column) are resolved against the FROM/JOIN
// schemas at parse time; unqualified names are left to the analyzer
// (first match wins, as in the DataFrame API).
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/dataframe.h"
#include "types/schema.h"

namespace idf {

class Session;

/// Parses `sql` against the session's registered tables and returns the
/// (lazy) DataFrame for it. Errors carry a position-annotated message.
/// Placeholders (`?` / `$n`) are rejected here — use ParseSqlPrepared.
Result<DataFrame> ParseSql(const SessionPtr& session, const std::string& sql);

/// A parsed prepared statement: the analyzed plan with typed ParameterRef
/// placeholders, plus each parameter's inferred type (index = ordinal).
struct PreparedParse {
  LogicalPlanPtr plan;
  std::vector<TypeId> param_types;
};

/// Prepared-statement variant of ParseSql: `?` (auto-numbered in textual
/// order) and `$n` (explicit, 1-based) placeholders are accepted anywhere
/// a literal may appear in an expression, and their types are inferred
/// from context (sql/parameters.h). Fails when a parameter's type cannot
/// be inferred or a `$n` below the maximum is never referenced.
Result<PreparedParse> ParseSqlPrepared(const SessionPtr& session,
                                       const std::string& sql);

}  // namespace idf
