#include "sql/parameters.h"

#include <functional>
#include <optional>

namespace idf {

namespace {

const ParameterRefExpr* AsParam(const ExprPtr& e) {
  return e->kind() == ExprKind::kParameterRef
             ? static_cast<const ParameterRefExpr*>(e.get())
             : nullptr;
}

bool NumericType(TypeId t) {
  return t == TypeId::kInt32 || t == TypeId::kInt64 || t == TypeId::kFloat64 ||
         t == TypeId::kBool || t == TypeId::kTimestamp;
}

/// Applies `fn` to every expression the node owns (not its children's).
void ForEachNodeExpr(const LogicalPlan& node,
                     const std::function<void(const ExprPtr&)>& fn) {
  switch (node.kind()) {
    case PlanKind::kFilter:
      fn(static_cast<const FilterNode&>(node).predicate());
      break;
    case PlanKind::kProject:
      for (const ExprPtr& e : static_cast<const ProjectNode&>(node).exprs()) {
        fn(e);
      }
      break;
    case PlanKind::kJoin: {
      const auto& join = static_cast<const JoinNode&>(node);
      fn(join.left_key());
      fn(join.right_key());
      break;
    }
    case PlanKind::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(node);
      for (const ExprPtr& e : agg.group_exprs()) fn(e);
      for (const AggSpec& spec : agg.aggs()) {
        if (spec.arg != nullptr) fn(spec.arg);
      }
      break;
    }
    case PlanKind::kSort:
      for (const SortKey& k : static_cast<const SortNode&>(node).keys()) {
        fn(k.expr);
      }
      break;
    case PlanKind::kTopK:
      for (const SortKey& k : static_cast<const TopKNode&>(node).keys()) {
        fn(k.expr);
      }
      break;
    case PlanKind::kIndexedJoin: {
      const auto& join = static_cast<const IndexedJoinNode&>(node);
      fn(join.probe_key());
      if (join.build_predicate() != nullptr) fn(join.build_predicate());
      break;
    }
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// Type inference
// ---------------------------------------------------------------------------

class ParameterTypeInference {
 public:
  explicit ParameterTypeInference(int num_params)
      : types_(static_cast<size_t>(num_params)) {}

  Status InferNode(const LogicalPlanPtr& node) {
    for (const LogicalPlanPtr& child : node->children()) {
      IDF_RETURN_NOT_OK(InferNode(child));
    }
    switch (node->kind()) {
      case PlanKind::kFilter:
        return InferExpr(static_cast<const FilterNode*>(node.get())->predicate(),
                         ChildSchema(node));
      case PlanKind::kProject: {
        const auto* project = static_cast<const ProjectNode*>(node.get());
        for (const ExprPtr& e : project->exprs()) {
          IDF_RETURN_NOT_OK(InferExpr(e, ChildSchema(node)));
        }
        return Status::OK();
      }
      case PlanKind::kJoin: {
        const auto* join = static_cast<const JoinNode*>(node.get());
        IDF_RETURN_NOT_OK(
            InferExpr(join->left_key(), *join->left()->output_schema()));
        return InferExpr(join->right_key(), *join->right()->output_schema());
      }
      case PlanKind::kAggregate: {
        const auto* agg = static_cast<const AggregateNode*>(node.get());
        for (const ExprPtr& e : agg->group_exprs()) {
          IDF_RETURN_NOT_OK(InferExpr(e, ChildSchema(node)));
        }
        for (const AggSpec& spec : agg->aggs()) {
          if (spec.arg != nullptr) {
            IDF_RETURN_NOT_OK(InferExpr(spec.arg, ChildSchema(node)));
          }
        }
        return Status::OK();
      }
      case PlanKind::kSort: {
        for (const SortKey& k :
             static_cast<const SortNode*>(node.get())->keys()) {
          IDF_RETURN_NOT_OK(InferExpr(k.expr, ChildSchema(node)));
        }
        return Status::OK();
      }
      case PlanKind::kTopK: {
        for (const SortKey& k :
             static_cast<const TopKNode*>(node.get())->keys()) {
          IDF_RETURN_NOT_OK(InferExpr(k.expr, ChildSchema(node)));
        }
        return Status::OK();
      }
      case PlanKind::kIndexedJoin: {
        const auto* join = static_cast<const IndexedJoinNode*>(node.get());
        IDF_RETURN_NOT_OK(
            InferExpr(join->probe_key(), *join->probe()->output_schema()));
        if (join->build_predicate() != nullptr) {
          return InferExpr(join->build_predicate(),
                           *join->relation()->schema());
        }
        return Status::OK();
      }
      default:
        return Status::OK();
    }
  }

  Result<std::vector<TypeId>> Finish() && {
    std::vector<TypeId> out;
    out.reserve(types_.size());
    for (size_t i = 0; i < types_.size(); ++i) {
      if (!types_[i].has_value()) {
        return Status::TypeError(
            "cannot infer the type of parameter $" + std::to_string(i + 1) +
            ": it is never referenced or its context fixes no type");
      }
      out.push_back(*types_[i]);
    }
    return out;
  }

 private:
  static const Schema& ChildSchema(const LogicalPlanPtr& node) {
    return *node->children()[0]->output_schema();
  }

  Status Record(const ParameterRefExpr& param, TypeId t) {
    if (param.ordinal() < 0 ||
        static_cast<size_t>(param.ordinal()) >= types_.size()) {
      return Status::InvalidArgument(
          "parameter " + param.ToString() + " exceeds the binding count of " +
          std::to_string(types_.size()));
    }
    std::optional<TypeId>& slot = types_[static_cast<size_t>(param.ordinal())];
    if (!slot.has_value() || *slot == t) {
      slot = t;
      return Status::OK();
    }
    // Conflicting uses: numeric contexts widen, anything else is an error.
    if (NumericType(*slot) && NumericType(t)) {
      slot = (*slot == TypeId::kFloat64 || t == TypeId::kFloat64)
                 ? TypeId::kFloat64
                 : TypeId::kInt64;
      return Status::OK();
    }
    return Status::TypeError("parameter " + param.ToString() +
                             " is used with conflicting types " +
                             TypeIdToString(*slot) + " and " +
                             TypeIdToString(t));
  }

  Status InferExpr(const ExprPtr& e, const Schema& schema) {
    switch (e->kind()) {
      case ExprKind::kComparison:
      case ExprKind::kArithmetic: {
        // A parameter operand adopts the sibling operand's type.
        const ExprPtr& l = e->children()[0];
        const ExprPtr& r = e->children()[1];
        const ParameterRefExpr* lp = AsParam(l);
        const ParameterRefExpr* rp = AsParam(r);
        if (lp != nullptr && rp != nullptr) {
          return Status::TypeError(
              "cannot infer parameter types in " + e->ToString() +
              ": both operands are parameters");
        }
        if (lp != nullptr || rp != nullptr) {
          const ParameterRefExpr* p = lp != nullptr ? lp : rp;
          const ExprPtr& other = lp != nullptr ? r : l;
          IDF_ASSIGN_OR_RETURN(TypeId t, other->ResultType(schema));
          IDF_RETURN_NOT_OK(Record(*p, t));
          return InferExpr(other, schema);
        }
        IDF_RETURN_NOT_OK(InferExpr(l, schema));
        return InferExpr(r, schema);
      }
      case ExprKind::kLogical: {
        for (const ExprPtr& child : e->children()) {
          const ParameterRefExpr* p = AsParam(child);
          if (p != nullptr) {
            IDF_RETURN_NOT_OK(Record(*p, TypeId::kBool));
          } else {
            IDF_RETURN_NOT_OK(InferExpr(child, schema));
          }
        }
        return Status::OK();
      }
      case ExprKind::kNot: {
        const ParameterRefExpr* p = AsParam(e->children()[0]);
        if (p != nullptr) return Record(*p, TypeId::kBool);
        return InferExpr(e->children()[0], schema);
      }
      case ExprKind::kLike: {
        const ParameterRefExpr* p = AsParam(e->children()[0]);
        if (p != nullptr) return Record(*p, TypeId::kString);
        return InferExpr(e->children()[0], schema);
      }
      case ExprKind::kIsNull: {
        const ParameterRefExpr* p = AsParam(e->children()[0]);
        if (p != nullptr) {
          return Status::TypeError("cannot infer the type of parameter " +
                                   p->ToString() + " under IS NULL");
        }
        return InferExpr(e->children()[0], schema);
      }
      case ExprKind::kParameterRef:
        // A parameter with no surrounding context (bare select item, group
        // key, ...). Already-typed parameters just re-record their type.
        if (AsParam(e)->type().has_value()) {
          return Record(*AsParam(e), *AsParam(e)->type());
        }
        return Status::TypeError("cannot infer the type of parameter " +
                                 e->ToString() + " in this context");
      default: {
        for (const ExprPtr& child : e->children()) {
          IDF_RETURN_NOT_OK(InferExpr(child, schema));
        }
        return Status::OK();
      }
    }
  }

  std::vector<std::optional<TypeId>> types_;
};

// ---------------------------------------------------------------------------
// Plan rewriting
// ---------------------------------------------------------------------------

using ExprRewriter = std::function<Result<ExprPtr>(const ExprPtr&)>;

/// Rebuilds the plan with every owned expression passed through `rewrite`,
/// preserving each node's schema annotation (so an analyzed tree stays
/// analyzed). When `key_bindings` is non-null, lookup-node parameter key
/// slots are also resolved to literal keys (null bindings are dropped —
/// `pk = NULL` matches nothing, exactly like the ad-hoc comparison).
Result<LogicalPlanPtr> RewritePlan(const LogicalPlanPtr& node,
                                   const ExprRewriter& rewrite,
                                   const std::vector<Value>* key_bindings) {
  std::vector<LogicalPlanPtr> kids;
  kids.reserve(node->children().size());
  bool changed = false;
  for (const LogicalPlanPtr& child : node->children()) {
    IDF_ASSIGN_OR_RETURN(LogicalPlanPtr k,
                         RewritePlan(child, rewrite, key_bindings));
    changed = changed || (k != child);
    kids.push_back(std::move(k));
  }
  auto child_or_self = [&]() -> Result<LogicalPlanPtr> {
    if (!changed) return node;
    return node->WithChildren(std::move(kids));
  };
  switch (node->kind()) {
    case PlanKind::kFilter: {
      const auto* f = static_cast<const FilterNode*>(node.get());
      IDF_ASSIGN_OR_RETURN(ExprPtr pred, rewrite(f->predicate()));
      if (!changed && pred == f->predicate()) return node;
      return std::static_pointer_cast<const LogicalPlan>(
          std::make_shared<FilterNode>(kids[0], std::move(pred),
                                       node->output_schema()));
    }
    case PlanKind::kProject: {
      const auto* p = static_cast<const ProjectNode*>(node.get());
      std::vector<ExprPtr> exprs;
      exprs.reserve(p->exprs().size());
      bool expr_changed = false;
      for (const ExprPtr& e : p->exprs()) {
        IDF_ASSIGN_OR_RETURN(ExprPtr r, rewrite(e));
        expr_changed = expr_changed || (r != e);
        exprs.push_back(std::move(r));
      }
      if (!changed && !expr_changed) return node;
      return std::static_pointer_cast<const LogicalPlan>(
          std::make_shared<ProjectNode>(kids[0], std::move(exprs), p->names(),
                                        node->output_schema()));
    }
    case PlanKind::kJoin: {
      const auto* j = static_cast<const JoinNode*>(node.get());
      IDF_ASSIGN_OR_RETURN(ExprPtr lk, rewrite(j->left_key()));
      IDF_ASSIGN_OR_RETURN(ExprPtr rk, rewrite(j->right_key()));
      if (!changed && lk == j->left_key() && rk == j->right_key()) return node;
      return std::static_pointer_cast<const LogicalPlan>(
          std::make_shared<JoinNode>(kids[0], kids[1], std::move(lk),
                                     std::move(rk), j->join_type(),
                                     node->output_schema()));
    }
    case PlanKind::kAggregate: {
      const auto* a = static_cast<const AggregateNode*>(node.get());
      std::vector<ExprPtr> groups;
      groups.reserve(a->group_exprs().size());
      bool expr_changed = false;
      for (const ExprPtr& e : a->group_exprs()) {
        IDF_ASSIGN_OR_RETURN(ExprPtr r, rewrite(e));
        expr_changed = expr_changed || (r != e);
        groups.push_back(std::move(r));
      }
      std::vector<AggSpec> aggs = a->aggs();
      for (AggSpec& spec : aggs) {
        if (spec.arg == nullptr) continue;
        IDF_ASSIGN_OR_RETURN(ExprPtr r, rewrite(spec.arg));
        expr_changed = expr_changed || (r != spec.arg);
        spec.arg = std::move(r);
      }
      if (!changed && !expr_changed) return node;
      return std::static_pointer_cast<const LogicalPlan>(
          std::make_shared<AggregateNode>(kids[0], std::move(groups),
                                          a->group_names(), std::move(aggs),
                                          node->output_schema()));
    }
    case PlanKind::kSort: {
      const auto* s = static_cast<const SortNode*>(node.get());
      std::vector<SortKey> keys = s->keys();
      bool expr_changed = false;
      for (SortKey& k : keys) {
        IDF_ASSIGN_OR_RETURN(ExprPtr r, rewrite(k.expr));
        expr_changed = expr_changed || (r != k.expr);
        k.expr = std::move(r);
      }
      if (!changed && !expr_changed) return node;
      return std::static_pointer_cast<const LogicalPlan>(
          std::make_shared<SortNode>(kids[0], std::move(keys),
                                     node->output_schema()));
    }
    case PlanKind::kTopK: {
      const auto* t = static_cast<const TopKNode*>(node.get());
      std::vector<SortKey> keys = t->keys();
      bool expr_changed = false;
      for (SortKey& k : keys) {
        IDF_ASSIGN_OR_RETURN(ExprPtr r, rewrite(k.expr));
        expr_changed = expr_changed || (r != k.expr);
        k.expr = std::move(r);
      }
      if (!changed && !expr_changed) return node;
      return std::static_pointer_cast<const LogicalPlan>(
          std::make_shared<TopKNode>(kids[0], std::move(keys), t->n(),
                                     node->output_schema()));
    }
    case PlanKind::kIndexedJoin: {
      const auto* j = static_cast<const IndexedJoinNode*>(node.get());
      IDF_ASSIGN_OR_RETURN(ExprPtr pk, rewrite(j->probe_key()));
      ExprPtr bp = j->build_predicate();
      if (bp != nullptr) {
        IDF_ASSIGN_OR_RETURN(bp, rewrite(bp));
      }
      if (!changed && pk == j->probe_key() && bp == j->build_predicate()) {
        return node;
      }
      return std::static_pointer_cast<const LogicalPlan>(
          std::make_shared<IndexedJoinNode>(j->relation(), kids[0],
                                            std::move(pk), j->indexed_on_left(),
                                            node->output_schema(),
                                            std::move(bp)));
    }
    case PlanKind::kSnapshotLookup: {
      const auto* l = static_cast<const SnapshotLookupNode*>(node.get());
      if (key_bindings == nullptr || l->key_params().empty()) {
        return child_or_self();
      }
      std::vector<Value> keys;
      keys.reserve(l->keys().size());
      for (size_t i = 0; i < l->keys().size(); ++i) {
        const int p = i < l->key_params().size() ? l->key_params()[i] : -1;
        if (p < 0) {
          keys.push_back(l->keys()[i]);
          continue;
        }
        if (static_cast<size_t>(p) >= key_bindings->size()) {
          return Status::Internal("lookup key parameter out of range");
        }
        if ((*key_bindings)[static_cast<size_t>(p)].is_null()) continue;
        keys.push_back((*key_bindings)[static_cast<size_t>(p)]);
      }
      return std::static_pointer_cast<const LogicalPlan>(
          std::make_shared<SnapshotLookupNode>(l->snapshot(),
                                               std::move(keys)));
    }
    case PlanKind::kIndexedLookup: {
      const auto* l = static_cast<const IndexedLookupNode*>(node.get());
      if (key_bindings == nullptr || l->key_params().empty()) {
        return child_or_self();
      }
      std::vector<Value> keys;
      keys.reserve(l->keys().size());
      for (size_t i = 0; i < l->keys().size(); ++i) {
        const int p = i < l->key_params().size() ? l->key_params()[i] : -1;
        if (p < 0) {
          keys.push_back(l->keys()[i]);
          continue;
        }
        if (static_cast<size_t>(p) >= key_bindings->size()) {
          return Status::Internal("lookup key parameter out of range");
        }
        if ((*key_bindings)[static_cast<size_t>(p)].is_null()) continue;
        keys.push_back((*key_bindings)[static_cast<size_t>(p)]);
      }
      return std::static_pointer_cast<const LogicalPlan>(
          std::make_shared<IndexedLookupNode>(l->relation(), std::move(keys)));
    }
    default:
      return child_or_self();
  }
}

bool LookupHasParamKeys(const LogicalPlan& node) {
  const std::vector<int>* key_params = nullptr;
  if (node.kind() == PlanKind::kSnapshotLookup) {
    key_params = &static_cast<const SnapshotLookupNode&>(node).key_params();
  } else if (node.kind() == PlanKind::kIndexedLookup) {
    key_params = &static_cast<const IndexedLookupNode&>(node).key_params();
  } else {
    return false;
  }
  for (int p : *key_params) {
    if (p >= 0) return true;
  }
  return false;
}

}  // namespace

bool PlanHasParameters(const LogicalPlanPtr& plan) {
  bool found = LookupHasParamKeys(*plan);
  ForEachNodeExpr(*plan, [&found](const ExprPtr& e) {
    found = found || ExprHasParameters(e);
  });
  if (found) return true;
  for (const LogicalPlanPtr& child : plan->children()) {
    if (PlanHasParameters(child)) return true;
  }
  return false;
}

Result<std::vector<TypeId>> InferParameterTypes(const LogicalPlanPtr& plan,
                                                int num_params) {
  ParameterTypeInference inference(num_params);
  IDF_RETURN_NOT_OK(inference.InferNode(plan));
  return std::move(inference).Finish();
}

Result<LogicalPlanPtr> ApplyParameterTypes(const LogicalPlanPtr& plan,
                                           const std::vector<TypeId>& types) {
  ExprRewriter rewrite = [&types](const ExprPtr& e) -> Result<ExprPtr> {
    return MapParameters(
        e, [&types](const ParameterRefExpr& ref) -> Result<ExprPtr> {
          if (ref.ordinal() < 0 ||
              static_cast<size_t>(ref.ordinal()) >= types.size()) {
            return Status::Internal("parameter ordinal out of range: " +
                                    ref.ToString());
          }
          return Param(ref.ordinal(),
                       types[static_cast<size_t>(ref.ordinal())]);
        });
  };
  return RewritePlan(plan, rewrite, nullptr);
}

Result<LogicalPlanPtr> BindPlanParameters(const LogicalPlanPtr& plan,
                                          const std::vector<Value>& params) {
  ExprRewriter rewrite = [&params](const ExprPtr& e) -> Result<ExprPtr> {
    return SubstituteParameters(e, params);
  };
  return RewritePlan(plan, rewrite, &params);
}

bool PlanIsParameterPatchable(const LogicalPlanPtr& optimized) {
  for (const LogicalPlanPtr& child : optimized->children()) {
    if (!PlanIsParameterPatchable(child)) return false;
  }
  switch (optimized->kind()) {
    case PlanKind::kFilter:
    case PlanKind::kProject:
    case PlanKind::kSnapshotLookup:
    case PlanKind::kIndexedLookup:
      // FilterOp / ProjectOp / the lookup operators (and the pushed
      // filters fused into indexed scans) all re-bind from the execution
      // context's parameters.
      return true;
    case PlanKind::kIndexedJoin: {
      // The build predicate becomes a bindable PushedFilter; the probe key
      // drives partitioning and must be a literal expression.
      const auto* join = static_cast<const IndexedJoinNode*>(optimized.get());
      return !ExprHasParameters(join->probe_key());
    }
    case PlanKind::kJoin: {
      const auto* join = static_cast<const JoinNode*>(optimized.get());
      return !ExprHasParameters(join->left_key()) &&
             !ExprHasParameters(join->right_key());
    }
    default: {
      bool param_free = true;
      ForEachNodeExpr(*optimized, [&param_free](const ExprPtr& e) {
        param_free = param_free && !ExprHasParameters(e);
      });
      return param_free;
    }
  }
}

}  // namespace idf
