#include "sql/planner.h"

#include <algorithm>

#include "sql/physical_operators.h"

namespace idf {

Planner::Planner(EngineConfig config) : config_(config) {
  strategies_.push_back(std::make_shared<RegularExecutionStrategy>());
}

void Planner::AddStrategy(PhysicalStrategyPtr strategy) {
  strategies_.insert(strategies_.begin(), std::move(strategy));
}

Result<PhysicalOpPtr> Planner::Plan(const LogicalPlanPtr& plan) const {
  if (!plan->analyzed()) {
    return Status::InvalidArgument("physical planning requires an analyzed plan");
  }
  std::vector<PhysicalOpPtr> children;
  children.reserve(plan->children().size());
  for (const LogicalPlanPtr& child : plan->children()) {
    IDF_ASSIGN_OR_RETURN(PhysicalOpPtr c, Plan(child));
    children.push_back(std::move(c));
  }
  for (const PhysicalStrategyPtr& strategy : strategies_) {
    IDF_ASSIGN_OR_RETURN(PhysicalOpPtr op, strategy->Plan(plan, children, config_));
    if (op != nullptr) return op;
  }
  return Status::NotImplemented("no physical strategy handles plan node " +
                                plan->ToString());
}

// ---------------------------------------------------------------------------
// Cardinality estimation
// ---------------------------------------------------------------------------

namespace {
double SchemaWidthBytes(const Schema& schema) {
  double width = 8;  // row overhead
  for (const Field& f : schema.fields()) {
    width += f.type == TypeId::kString ? 24 : 8;
  }
  return width;
}
}  // namespace

double EstimateRows(const LogicalPlanPtr& plan) {
  switch (plan->kind()) {
    case PlanKind::kScan: {
      const auto* node = static_cast<const ScanNode*>(plan.get());
      size_t n = 0;
      for (const RowVec& p : node->table()->partitions) n += p.size();
      return static_cast<double>(n);
    }
    case PlanKind::kCacheScan:
      return static_cast<double>(
          static_cast<const CacheScanNode*>(plan.get())->table()->num_rows());
    case PlanKind::kIndexedScan:
      return static_cast<double>(
          static_cast<const IndexedScanNode*>(plan.get())->relation()->num_rows());
    case PlanKind::kIndexedLookup:
    case PlanKind::kSnapshotLookup:
      return 8;  // point lookup: a handful of rows per key
    case PlanKind::kSecondaryProbe: {
      const auto* probe = static_cast<const SecondaryProbeNode*>(plan.get());
      return probe->selectivity() * static_cast<double>(probe->source_rows());
    }
    case PlanKind::kSnapshotScan:
      return static_cast<double>(
          static_cast<const SnapshotScanNode*>(plan.get())->snapshot()->num_rows());
    case PlanKind::kFilter:
      return 0.3 * EstimateRows(plan->children()[0]);
    case PlanKind::kProject:
    case PlanKind::kSort:
      return EstimateRows(plan->children()[0]);
    case PlanKind::kLimit:
      return std::min(
          static_cast<double>(static_cast<const LimitNode*>(plan.get())->n()),
          EstimateRows(plan->children()[0]));
    case PlanKind::kTopK:
      return std::min(
          static_cast<double>(static_cast<const TopKNode*>(plan.get())->n()),
          EstimateRows(plan->children()[0]));
    case PlanKind::kAggregate:
      return std::max(1.0, 0.1 * EstimateRows(plan->children()[0]));
    case PlanKind::kJoin:
      return std::max(EstimateRows(plan->children()[0]),
                      EstimateRows(plan->children()[1]));
    case PlanKind::kIndexedJoin:
      return EstimateRows(plan->children()[0]);
    case PlanKind::kUnionAll: {
      double total = 0;
      for (const LogicalPlanPtr& c : plan->children()) total += EstimateRows(c);
      return total;
    }
  }
  return 1e9;
}

double EstimateBytes(const LogicalPlanPtr& plan) {
  // Leaf tables know their actual size; derived plans scale the child's
  // estimate by the row-count ratio, which keeps wide-string tables from
  // being misjudged by the schema-width heuristic.
  switch (plan->kind()) {
    case PlanKind::kScan: {
      size_t b = static_cast<const ScanNode*>(plan.get())->table()->approx_bytes;
      if (b > 0) return static_cast<double>(b);
      break;
    }
    case PlanKind::kCacheScan: {
      size_t b =
          static_cast<const CacheScanNode*>(plan.get())->table()->approx_bytes;
      if (b > 0) return static_cast<double>(b);
      break;
    }
    case PlanKind::kFilter:
    case PlanKind::kProject:
    case PlanKind::kSort:
    case PlanKind::kLimit:
    case PlanKind::kTopK:
    case PlanKind::kAggregate: {
      double child_rows = EstimateRows(plan->children()[0]);
      if (child_rows > 0) {
        return EstimateBytes(plan->children()[0]) * EstimateRows(plan) /
               child_rows;
      }
      break;
    }
    default:
      break;
  }
  const SchemaPtr& schema = plan->output_schema();
  double width = schema ? SchemaWidthBytes(*schema) : 64.0;
  return EstimateRows(plan) * width;
}

// ---------------------------------------------------------------------------
// Regular execution strategy
// ---------------------------------------------------------------------------

Result<PhysicalOpPtr> RegularExecutionStrategy::Plan(
    const LogicalPlanPtr& node, std::vector<PhysicalOpPtr> children,
    const EngineConfig& config) const {
  switch (node->kind()) {
    case PlanKind::kScan:
      return PhysicalOpPtr(std::make_shared<RowSourceOp>(
          static_cast<const ScanNode*>(node.get())->table()));

    case PlanKind::kCacheScan:
      return PhysicalOpPtr(std::make_shared<CacheScanOp>(
          static_cast<const CacheScanNode*>(node.get())->table()));

    case PlanKind::kFilter:
      return PhysicalOpPtr(std::make_shared<FilterOp>(
          children[0], static_cast<const FilterNode*>(node.get())->predicate()));

    case PlanKind::kProject:
      return PhysicalOpPtr(std::make_shared<ProjectOp>(
          children[0], static_cast<const ProjectNode*>(node.get())->exprs(),
          node->output_schema()));

    case PlanKind::kJoin: {
      const auto* join = static_cast<const JoinNode*>(node.get());
      double left_bytes = EstimateBytes(join->left());
      double right_bytes = EstimateBytes(join->right());
      double threshold = static_cast<double>(config.broadcast_threshold_bytes);
      const bool left_outer = join->join_type() == JoinType::kLeftOuter;
      // A left-outer join can only broadcast its right side (the outer
      // side must stay partitioned so unmatched rows emit exactly once).
      bool can_broadcast =
          left_outer ? right_bytes <= threshold
                     : std::min(left_bytes, right_bytes) <= threshold;
      if (can_broadcast) {
        bool broadcast_left = !left_outer && left_bytes <= right_bytes;
        return PhysicalOpPtr(std::make_shared<BroadcastHashJoinOp>(
            children[0], children[1], join->left_key(), join->right_key(),
            broadcast_left, node->output_schema(), join->join_type()));
      }
      if (config.prefer_sort_merge_join) {
        // Spark's default for two un-broadcastable relations.
        return PhysicalOpPtr(std::make_shared<SortMergeJoinOp>(
            children[0], children[1], join->left_key(), join->right_key(),
            node->output_schema(), join->join_type()));
      }
      return PhysicalOpPtr(std::make_shared<ShuffledHashJoinOp>(
          children[0], children[1], join->left_key(), join->right_key(),
          node->output_schema(), join->join_type()));
    }

    case PlanKind::kAggregate: {
      const auto* agg = static_cast<const AggregateNode*>(node.get());
      return PhysicalOpPtr(std::make_shared<HashAggregateOp>(
          children[0], agg->group_exprs(), agg->aggs(), node->output_schema()));
    }

    case PlanKind::kSort:
      return PhysicalOpPtr(std::make_shared<SortOp>(
          children[0], static_cast<const SortNode*>(node.get())->keys()));

    case PlanKind::kLimit:
      return PhysicalOpPtr(std::make_shared<LimitOp>(
          children[0], static_cast<const LimitNode*>(node.get())->n()));

    case PlanKind::kTopK: {
      const auto* topk = static_cast<const TopKNode*>(node.get());
      return PhysicalOpPtr(
          std::make_shared<TopKOp>(children[0], topk->keys(), topk->n()));
    }

    case PlanKind::kUnionAll:
      return PhysicalOpPtr(
          std::make_shared<UnionAllOp>(std::move(children), node->output_schema()));

    case PlanKind::kIndexedScan:
    case PlanKind::kIndexedLookup:
    case PlanKind::kIndexedJoin:
    case PlanKind::kSnapshotScan:
    case PlanKind::kSnapshotLookup:
      // Handled by the indexed execution strategy; not installed here.
      return PhysicalOpPtr(nullptr);
  }
  return PhysicalOpPtr(nullptr);
}

}  // namespace idf
