// Result<T>: value-or-Status, in the style of arrow::Result.
#pragma once

#include <utility>
#include <variant>

#include "common/status.h"

namespace idf {

/// \brief Holds either a value of type T or an error Status.
///
/// Construct from a T to signal success, or from a non-OK Status to signal
/// failure. Use IDF_ASSIGN_OR_RETURN to unwrap-and-propagate.
template <typename T>
class Result {
 public:
  /// Error result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(status)) {
    if (IDF_PREDICT_FALSE(this->status().ok())) {
      Status::Internal("Result constructed from OK status").Abort();
    }
  }
  /// Successful result.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(value)) {}

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; Status::OK() if this holds a value.
  Status status() const& {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    AbortIfError();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    AbortIfError();
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    AbortIfError();
    return std::move(std::get<T>(repr_));
  }

  /// Unchecked accessors for use after testing ok().
  const T& ValueUnsafe() const& { return std::get<T>(repr_); }
  T& ValueUnsafe() & { return std::get<T>(repr_); }
  T ValueUnsafe() && { return std::move(std::get<T>(repr_)); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  template <typename U>
  T ValueOr(U&& alternative) const& {
    return ok() ? std::get<T>(repr_) : static_cast<T>(std::forward<U>(alternative));
  }

 private:
  void AbortIfError() const {
    if (IDF_PREDICT_FALSE(!ok())) std::get<Status>(repr_).Abort();
  }
  std::variant<Status, T> repr_;
};

}  // namespace idf
