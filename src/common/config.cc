#include "common/config.h"

#include <thread>

#include "storage/packed_pointer.h"

namespace idf {

int HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

Status EngineConfig::Validate() const {
  if (row_batch_bytes == 0) {
    return Status::InvalidArgument("row_batch_bytes must be positive");
  }
  if (max_row_bytes == 0 || max_row_bytes > row_batch_bytes) {
    return Status::InvalidArgument(
        "max_row_bytes must be in (0, row_batch_bytes]");
  }
  if (row_batch_bytes > PackedPointer::kMaxOffset + 1) {
    return Status::InvalidArgument(
        "row_batch_bytes exceeds the addressable range of packed row "
        "pointers (" +
        std::to_string(PackedPointer::kMaxOffset + 1) + " bytes)");
  }
  if (max_row_bytes > PackedPointer::kMaxRowSize) {
    return Status::InvalidArgument(
        "max_row_bytes exceeds the packed pointer prev-row-size field (" +
        std::to_string(PackedPointer::kMaxRowSize) + " bytes)");
  }
  if (num_partitions < 0 || num_threads < 0) {
    return Status::InvalidArgument("partition/thread counts must be >= 0");
  }
  if (morsel_rows == 0) {
    return Status::InvalidArgument("morsel_rows must be positive");
  }
  return Status::OK();
}

EngineConfig EngineConfig::Resolved() const {
  EngineConfig out = *this;
  if (out.num_threads == 0) out.num_threads = HardwareThreads();
  if (out.num_partitions == 0) out.num_partitions = 2 * out.num_threads;
  return out;
}

}  // namespace idf
