#include "common/cancellation.h"

namespace idf {

CancellationTokenPtr CancellationToken::WithDeadline(Clock::time_point deadline) {
  auto token = std::make_shared<CancellationToken>();
  token->SetDeadline(deadline);
  return token;
}

CancellationTokenPtr CancellationToken::WithTimeout(
    std::chrono::nanoseconds timeout) {
  return WithDeadline(Clock::now() + timeout);
}

Status CancellationToken::CheckStatus() const {
  if (deadline_expired()) {
    return Status::DeadlineExceeded("query deadline expired");
  }
  if (cancelled()) return Status::Cancelled("query cancelled");
  return Status::OK();
}

}  // namespace idf
