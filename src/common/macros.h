// Common preprocessor macros used across the Indexed DataFrame codebase.
#pragma once

#define IDF_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;          \
  TypeName& operator=(const TypeName&) = delete

#define IDF_CONCAT_IMPL(x, y) x##y
#define IDF_CONCAT(x, y) IDF_CONCAT_IMPL(x, y)

/// Propagates a non-OK Status from an expression, Arrow-style.
#define IDF_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::idf::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (false)

/// Assigns the value of a Result<T> expression to `lhs`, or propagates its
/// error Status.
#define IDF_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  IDF_ASSIGN_OR_RETURN_IMPL(IDF_CONCAT(_res_, __LINE__), lhs, rexpr)

#define IDF_ASSIGN_OR_RETURN_IMPL(res, lhs, rexpr) \
  auto res = (rexpr);                              \
  if (!res.ok()) return res.status();              \
  lhs = std::move(res).ValueUnsafe();

#if defined(__GNUC__) || defined(__clang__)
#define IDF_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#define IDF_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))
/// Read-prefetch of the cache line at `addr` (no-op where unsupported).
#define IDF_PREFETCH(addr) __builtin_prefetch(addr)
#else
#define IDF_PREDICT_TRUE(x) (x)
#define IDF_PREDICT_FALSE(x) (x)
#define IDF_PREFETCH(addr) ((void)0)
#endif
