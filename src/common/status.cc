#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace idf {

namespace {
const std::string kEmpty;  // NOLINT
}

Status::Status(StatusCode code, std::string msg)
    : state_(new State{code, std::move(msg)}) {}

const std::string& Status::message() const {
  return state_ ? state_->msg : kEmpty;
}

std::string StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kKeyError:
      return "KeyError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kIndexError:
      return "IndexError";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCapacityError:
      return "CapacityError";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  return StatusCodeToString(code()) + ": " + message();
}

void Status::Abort() const {
  std::fprintf(stderr, "Fatal status: %s\n", ToString().c_str());
  std::abort();
}

}  // namespace idf
