// Minimal leveled logger plus CHECK macros (Arrow/glog style).
#pragma once

#include <sstream>
#include <string>

#include "common/macros.h"

namespace idf {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the global minimum severity emitted to stderr (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (and aborts for kFatal) on
/// destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

  IDF_DISALLOW_COPY_AND_ASSIGN(LogMessage);

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Discards everything streamed into it; used to elide disabled levels.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace idf

#define IDF_LOG_INTERNAL(level) \
  ::idf::internal::LogMessage(level, __FILE__, __LINE__).stream()

#define IDF_LOG(severity) IDF_LOG_INTERNAL(::idf::LogLevel::k##severity)

#define IDF_CHECK(cond)                                              \
  if (IDF_PREDICT_FALSE(!(cond)))                                    \
  IDF_LOG(Fatal) << "Check failed: " #cond " "

#define IDF_CHECK_OK(expr)                                           \
  do {                                                               \
    ::idf::Status _s = (expr);                                       \
    if (IDF_PREDICT_FALSE(!_s.ok()))                                 \
      IDF_LOG(Fatal) << "Check failed: " << _s.ToString();           \
  } while (false)

#define IDF_CHECK_EQ(a, b) IDF_CHECK((a) == (b))
#define IDF_CHECK_NE(a, b) IDF_CHECK((a) != (b))
#define IDF_CHECK_LT(a, b) IDF_CHECK((a) < (b))
#define IDF_CHECK_LE(a, b) IDF_CHECK((a) <= (b))
#define IDF_CHECK_GT(a, b) IDF_CHECK((a) > (b))
#define IDF_CHECK_GE(a, b) IDF_CHECK((a) >= (b))

#ifndef NDEBUG
#define IDF_DCHECK(cond) IDF_CHECK(cond)
#else
#define IDF_DCHECK(cond) \
  while (false) IDF_CHECK(cond)
#endif
