// CancellationToken: cooperative cancellation plus an optional deadline,
// shared between a query's client (who may Cancel()) and the workers
// executing it (who poll stop_requested() at morsel boundaries). A token
// never interrupts a running morsel; it stops the next one from starting,
// so a cancelled query stops consuming pool workers within one morsel
// grain of the request.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

#include "common/status.h"

namespace idf {

class CancellationToken;
using CancellationTokenPtr = std::shared_ptr<CancellationToken>;

class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancellationToken() = default;

  static CancellationTokenPtr Make() {
    return std::make_shared<CancellationToken>();
  }
  static CancellationTokenPtr WithDeadline(Clock::time_point deadline);
  static CancellationTokenPtr WithTimeout(std::chrono::nanoseconds timeout);

  /// Requests stop (client-side cancel). Idempotent; thread-safe.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  /// Sets/overrides the deadline. Thread-safe (the query service arms a
  /// default deadline on caller-supplied tokens that may be shared
  /// already). A deadline equal to the clock epoch is treated as "none".
  void SetDeadline(Clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_release);
  }
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_acquire) != 0;
  }
  Clock::time_point deadline() const {
    return Clock::time_point(
        Clock::duration(deadline_ns_.load(std::memory_order_acquire)));
  }
  bool deadline_expired() const {
    const int64_t ns = deadline_ns_.load(std::memory_order_acquire);
    return ns != 0 && Clock::now().time_since_epoch().count() >= ns;
  }

  /// True once work should stop: explicit cancel or expired deadline.
  bool stop_requested() const { return cancelled() || deadline_expired(); }

  /// OK while running; Cancelled / DeadlineExceeded once stopped. The
  /// deadline is reported in preference to a cancel that raced with it
  /// only when it actually expired (cancel wins otherwise).
  Status CheckStatus() const;

 private:
  std::atomic<bool> cancelled_{false};
  /// Deadline as steady-clock nanoseconds-since-epoch; 0 means no deadline
  /// (the steady clock's epoch is process start, so 0 is never a real
  /// deadline in practice).
  std::atomic<int64_t> deadline_ns_{0};
};

}  // namespace idf
