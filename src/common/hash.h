// 64-bit hashing used for index keys and hash partitioning.
//
// The primary hash is a self-contained xxHash64-style mix; we also expose a
// cheap avalanching finalizer (SplitMix64) for already-random integers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace idf {

/// xxHash64-style hash of an arbitrary byte buffer.
uint64_t Hash64(const void* data, size_t len, uint64_t seed = 0);

inline uint64_t Hash64(std::string_view s, uint64_t seed = 0) {
  return Hash64(s.data(), s.size(), seed);
}

/// SplitMix64 finalizer: cheap, full-avalanche mix of one 64-bit integer.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines two hashes (boost::hash_combine style, 64-bit).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

/// Deterministic pseudo-random generator (xorshift*), used by the SNB
/// datagen so datasets are reproducible across runs and platforms.
class Random64 {
 public:
  explicit Random64(uint64_t seed) : state_(seed ? seed : 0x853c49e6748fea9bULL) {}

  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dULL;
  }

  /// Uniform integer in [0, n).
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Zipf-like skewed integer in [0, n): smaller values are more likely.
  uint64_t Skewed(uint64_t n, double exponent = 1.2);

 private:
  uint64_t state_;
};

}  // namespace idf
