// Status: lightweight error propagation without exceptions, in the style of
// Apache Arrow / RocksDB. All fallible library entry points return Status or
// Result<T>.
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "common/macros.h"

namespace idf {

enum class StatusCode : char {
  kOk = 0,
  kInvalidArgument = 1,
  kKeyError = 2,
  kTypeError = 3,
  kIndexError = 4,
  kOutOfMemory = 5,
  kNotImplemented = 6,
  kInternal = 7,
  kCapacityError = 8,
  kCancelled = 9,
  kDeadlineExceeded = 10,
};

/// \brief Operation outcome: OK, or an error code plus message.
///
/// The OK state is represented by a null internal pointer so that
/// `Status::OK()` is free to construct, copy, and test.
class Status {
 public:
  Status() noexcept = default;
  Status(StatusCode code, std::string msg);

  Status(const Status& other)
      : state_(other.state_ ? new State(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    state_.reset(other.state_ ? new State(*other.state_) : nullptr);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status IndexError(std::string msg) {
    return Status(StatusCode::kIndexError, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status CapacityError(std::string msg) {
    return Status(StatusCode::kCapacityError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsKeyError() const { return code() == StatusCode::kKeyError; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsIndexError() const { return code() == StatusCode::kIndexError; }
  bool IsCapacityError() const { return code() == StatusCode::kCapacityError; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  /// Human-readable "<Code>: <message>" rendering.
  std::string ToString() const;

  /// Aborts the process when not OK; use in tests and examples only.
  void Abort() const;
  void AbortIfNotOK() const {
    if (IDF_PREDICT_FALSE(!ok())) Abort();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<State> state_;
};

std::string StatusCodeToString(StatusCode code);

}  // namespace idf
