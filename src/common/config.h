// Engine-wide tunables, mirroring the knobs the paper calls configurable:
// row-batch size, row size limit, partitions per core.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace idf {

/// \brief Configuration for one IndexedDataFrame session / engine instance.
///
/// Defaults follow the paper: 4 MB row batches, rows up to 1 KB, and 1-4
/// partitions per core (we default to 2x hardware threads).
struct EngineConfig {
  /// Bytes per row batch ("e.g., of 4 MB in size", paper §2).
  size_t row_batch_bytes = 4 * 1024 * 1024;

  /// Maximum encoded row size ("rows that may have up to 1 KB", paper §2).
  size_t max_row_bytes = 1024;

  /// Number of partitions for indexed (and shuffled) relations. 0 means
  /// auto: 2 partitions per hardware thread.
  int num_partitions = 0;

  /// Worker threads in the executor pool. 0 means hardware concurrency.
  int num_threads = 0;

  /// Upper bound on rows per morsel for intra-partition parallelism
  /// (scans, join probes, multi-key lookups). The effective grain shrinks
  /// on small inputs so every worker still gets several morsels; see
  /// ExecutorContext::MorselGrain.
  size_t morsel_rows = 64 * 1024;

  /// Indexed joins with fewer probe rows than this use the legacy row
  /// exchange instead of the binary one: on tiny all-hit probes (e.g. the
  /// fig2 2k-row join) every row is encoded and then decoded anyway, so
  /// the encode pass is pure overhead. Larger probes amortize it through
  /// lazy decoding. 0 disables the fallback (always binary).
  size_t binary_shuffle_min_rows = 4096;

  /// Append batches with at least this many rows encode their rows in
  /// parallel morsels on the executor pool before taking any partition
  /// write lock; smaller batches encode inline (the dispatch overhead
  /// outweighs the win). Irrelevant on single-thread pools.
  size_t append_parallel_min_rows = 256;

  /// Compiled filter and fused-aggregate evaluation runs batch-at-a-time
  /// over morsels (column gather + lane-parallel Kleene logic, selection
  /// vectors into decode; sql/vectorized_eval.h). False forces the PR-3
  /// row-at-a-time EvalEncoded path — the two are bit-identical; the flag
  /// exists for benchmarking and as an escape hatch.
  bool vectorized_execution = true;

  /// Probe relations at most this many bytes are broadcast instead of
  /// shuffled in indexed joins (paper §2 "Scheduling Physical Operators").
  /// The same threshold selects broadcast joins on the vanilla path
  /// (Spark's spark.sql.autoBroadcastJoinThreshold).
  size_t broadcast_threshold_bytes = 8 * 1024 * 1024;

  /// When neither join side fits the broadcast threshold, the vanilla
  /// planner picks sort-merge join (Spark's default since 2.0) unless this
  /// is false, in which case it picks shuffled hash join.
  bool prefer_sort_merge_join = true;

  /// Index-kind costing threshold: a bitmap/range secondary-index probe is
  /// chosen over the vectorized scan only when its estimated selectivity
  /// (matching fraction of the relation) is at or below this. Past it the
  /// probe emits so many positions that the scan's sequential bandwidth
  /// wins. 0 disables secondary-index probes entirely.
  double secondary_probe_max_selectivity = 0.25;

  /// Validates invariants (batch >= max row, sizes fit pointer packing).
  Status Validate() const;

  /// Resolves auto (zero) fields against the host.
  EngineConfig Resolved() const;
};

/// Returns the number of hardware threads, at least 1.
int HardwareThreads();

}  // namespace idf
