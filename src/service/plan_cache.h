// Parameterized plan cache for prepared statements (DESIGN.md §15).
//
// A prepared statement is parsed, analyzed, type-inferred, and optimized
// ONCE; the cached artifact is the optimized logical tree with its
// snapshot leaves replaced by pin-free stand-ins (DetachSnapshots), so a
// cached plan never keeps MVCC pins — and thus retired storage
// generations — alive between executions. Each execution re-attaches the
// current epoch's pins by table name (RebindSnapshots), lowers the tree
// to physical operators WITHOUT re-running the optimizer
// (Session::PlanOptimized), and re-binds the parameter values in place:
// compiled predicates patch immediate slots (CompiledPredicate::
// BindParams), interpreted filter/project expressions substitute
// literals, and lookup operators fill key slots — no recompilation on the
// hot path. The lowered plan is memoized per epoch under the statement's
// mutex, so same-epoch executions share one physical tree and only an
// append-driven epoch bump (or a DDL change) triggers re-lowering.
//
// The cache is an LRU keyed on a normalized SQL fingerprint (lowercased
// outside string literals, whitespace collapsed). Statements are
// immutable after construction except for the per-epoch bound plan;
// concurrent ExecutePrepared calls are safe.
#pragma once

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/snapshot_manager.h"
#include "sql/logical_plan.h"
#include "sql/physical_plan.h"

namespace idf {

/// Normalized cache key: lowercase outside single-quoted string literals,
/// runs of whitespace collapsed to one space, trimmed. `SELECT * FROM t`
/// and `select *   from t` share one cache entry; `WHERE s = 'ABC'` and
/// `WHERE s = 'abc'` do not.
std::string NormalizeSql(const std::string& sql);

/// Pin-free stand-in for a pinned snapshot inside a cached plan: it
/// carries the planning metadata (name, schema, index shape, stats as of
/// prepare time) but holds no trie views, so caching a plan never retains
/// storage. `table` is the service registration name used to re-attach
/// the current pins at execution.
class DetachedSnapshotRelation : public SnapshotRelationBase {
 public:
  DetachedSnapshotRelation(std::string table, const SnapshotRelationBase& src)
      : table_(std::move(table)),
        name_(src.name()),
        schema_(src.schema()),
        indexed_column_(src.indexed_column()),
        version_(src.version()),
        num_rows_(src.num_rows()) {
    const int cols = schema_->num_fields();
    secondary_kinds_.reserve(static_cast<size_t>(cols));
    for (int c = 0; c < cols; ++c) {
      secondary_kinds_.push_back(src.secondary_index_kind(c));
    }
  }

  const std::string& table() const { return table_; }

  const std::string& name() const override { return name_; }
  const SchemaPtr& schema() const override { return schema_; }
  int indexed_column() const override { return indexed_column_; }
  uint64_t version() const override { return version_; }
  size_t num_rows() const override { return num_rows_; }
  SecondaryIndexKind secondary_index_kind(int column) const override {
    return column >= 0 && static_cast<size_t>(column) < secondary_kinds_.size()
               ? secondary_kinds_[static_cast<size_t>(column)]
               : SecondaryIndexKind::kNone;
  }

 private:
  std::string table_;
  std::string name_;
  SchemaPtr schema_;
  int indexed_column_;
  uint64_t version_;
  size_t num_rows_;
  std::vector<SecondaryIndexKind> secondary_kinds_;
};

/// Replaces every pinned snapshot leaf (SnapshotScan / SnapshotLookup /
/// SecondaryProbe over a snapshot) with a DetachedSnapshotRelation
/// stand-in. `snap` maps each pin back to its service table name (by
/// pin identity); pins not found there fall back to the pin's own name.
Result<LogicalPlanPtr> DetachSnapshots(const LogicalPlanPtr& plan,
                                       const ServiceSnapshot& snap);

/// Re-attaches the current epoch's pins to a detached plan by table name.
/// Fails with KeyError when a table the plan references is no longer
/// registered (DDL raced the execution).
Result<LogicalPlanPtr> RebindSnapshots(const LogicalPlanPtr& plan,
                                       const ServiceSnapshot& snap);

/// One epoch's lowered physical plan. The rebound logical tree holds the
/// epoch's pins, keeping the frozen version alive for exactly as long as
/// this BoundPlan is the statement's current one (plus in-flight
/// executions that still share the pointer).
struct BoundPlan {
  uint64_t epoch = 0;
  LogicalPlanPtr rebound;   ///< pin-holding logical tree (keeps pins alive)
  PhysicalOpPtr physical;   ///< lowered operators (immutable, share-safe)
};

/// A prepared statement: the cached planning artifact plus its per-epoch
/// bound plan. Immutable after construction except `bound` (guarded by
/// `mu`).
struct PreparedStatement {
  std::string sql;
  std::string fingerprint;
  size_t num_params = 0;
  std::vector<TypeId> param_types;  ///< inferred, one per ordinal
  SchemaPtr result_schema;

  /// Analyzed, typed, detached tree (the substitute-and-replan fallback
  /// re-optimizes this per execution).
  LogicalPlanPtr analyzed;
  /// Optimized detached tree; set only when `patchable`.
  LogicalPlanPtr optimized;
  /// True when every parameter sits in a position the physical operators
  /// re-bind per execution (sql/parameters.h); false forces the fallback.
  bool patchable = false;

  /// Service DDL version at prepare time; a mismatch invalidates the
  /// statement (schema may have changed under the cached plan).
  uint64_t ddl_version = 0;

  std::mutex mu;  ///< guards `bound`
  std::shared_ptr<const BoundPlan> bound;
};

using PreparedStatementPtr = std::shared_ptr<PreparedStatement>;

/// LRU cache of prepared statements keyed on the SQL fingerprint.
/// Thread-safe. Eviction only drops the cache's reference: outstanding
/// handles keep their statement alive and executable.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the statement for `fingerprint` (bumping its recency) or
  /// null.
  PreparedStatementPtr Lookup(const std::string& fingerprint);

  /// Inserts (or replaces) the statement, evicting the least recently
  /// used entry beyond capacity.
  void Insert(const PreparedStatementPtr& stmt);

  /// Drops one entry (DDL invalidation of a single stale statement).
  void Erase(const std::string& fingerprint);

  /// Drops everything (DDL invalidation).
  void Clear();

  size_t size() const;
  uint64_t evictions() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  // MRU-first recency list; the map holds list iterators for O(1) bumps.
  std::list<PreparedStatementPtr> lru_;
  std::unordered_map<std::string, std::list<PreparedStatementPtr>::iterator>
      by_fingerprint_;
  uint64_t evictions_ = 0;
};

}  // namespace idf
