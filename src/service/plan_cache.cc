#include "service/plan_cache.h"

#include <cctype>

namespace idf {

std::string NormalizeSql(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool in_string = false;
  bool pending_space = false;
  for (char c : sql) {
    if (in_string) {
      out.push_back(c);
      if (c == '\'') in_string = false;
      continue;
    }
    if (c == '\'') {
      if (pending_space && !out.empty()) out.push_back(' ');
      pending_space = false;
      out.push_back(c);
      in_string = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = true;
      continue;
    }
    if (pending_space && !out.empty()) out.push_back(' ');
    pending_space = false;
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

namespace {

/// Service table name of a pinned snapshot: identity match against the
/// snapshot's pins first (exact), then the pin's own name.
std::string TableNameOfPin(const SnapshotRelationBasePtr& pin,
                           const ServiceSnapshot& snap) {
  for (const PinnedTable& t : snap.tables) {
    for (const auto& [col, p] : t.pins) {
      if (p.get() == pin.get()) return t.table;
    }
  }
  return pin->name();
}

Result<SnapshotRelationBasePtr> DetachPin(const SnapshotRelationBasePtr& pin,
                                          const ServiceSnapshot& snap) {
  if (std::dynamic_pointer_cast<DetachedSnapshotRelation>(pin) != nullptr) {
    return pin;  // already detached (idempotence)
  }
  return SnapshotRelationBasePtr(std::make_shared<DetachedSnapshotRelation>(
      TableNameOfPin(pin, snap), *pin));
}

Result<SnapshotRelationBasePtr> AttachPin(const SnapshotRelationBasePtr& rel,
                                          const ServiceSnapshot& snap) {
  const auto detached = std::dynamic_pointer_cast<DetachedSnapshotRelation>(rel);
  if (detached == nullptr) return rel;  // already a live pin
  const PinnedTable* table = snap.find(detached->table());
  if (table == nullptr) {
    return Status::KeyError("prepared statement references table '" +
                            detached->table() +
                            "' which is no longer registered");
  }
  return SnapshotRelationBasePtr(table->primary());
}

using PinMapper = Result<SnapshotRelationBasePtr> (*)(
    const SnapshotRelationBasePtr&, const ServiceSnapshot&);

Result<LogicalPlanPtr> MapPins(const LogicalPlanPtr& node, PinMapper map_pin,
                               const ServiceSnapshot& snap) {
  std::vector<LogicalPlanPtr> kids;
  kids.reserve(node->children().size());
  bool changed = false;
  for (const LogicalPlanPtr& child : node->children()) {
    IDF_ASSIGN_OR_RETURN(LogicalPlanPtr k, MapPins(child, map_pin, snap));
    changed = changed || (k != child);
    kids.push_back(std::move(k));
  }
  switch (node->kind()) {
    case PlanKind::kSnapshotScan: {
      const auto* scan = static_cast<const SnapshotScanNode*>(node.get());
      IDF_ASSIGN_OR_RETURN(SnapshotRelationBasePtr pin,
                           map_pin(scan->snapshot(), snap));
      if (pin == scan->snapshot()) return node;
      return LogicalPlanPtr(std::make_shared<SnapshotScanNode>(std::move(pin)));
    }
    case PlanKind::kSnapshotLookup: {
      const auto* lookup = static_cast<const SnapshotLookupNode*>(node.get());
      IDF_ASSIGN_OR_RETURN(SnapshotRelationBasePtr pin,
                           map_pin(lookup->snapshot(), snap));
      if (pin == lookup->snapshot()) return node;
      return LogicalPlanPtr(std::make_shared<SnapshotLookupNode>(
          std::move(pin), lookup->keys(), lookup->key_params()));
    }
    case PlanKind::kSecondaryProbe: {
      const auto* probe = static_cast<const SecondaryProbeNode*>(node.get());
      if (probe->snapshot() == nullptr) break;  // relation-backed: no pins
      IDF_ASSIGN_OR_RETURN(SnapshotRelationBasePtr pin,
                           map_pin(probe->snapshot(), snap));
      if (pin == probe->snapshot()) return node;
      return LogicalPlanPtr(
          std::make_shared<SecondaryProbeNode>(std::move(pin), probe->probes()));
    }
    default:
      break;
  }
  if (!changed) return node;
  return node->WithChildren(std::move(kids));
}

}  // namespace

Result<LogicalPlanPtr> DetachSnapshots(const LogicalPlanPtr& plan,
                                       const ServiceSnapshot& snap) {
  return MapPins(plan, &DetachPin, snap);
}

Result<LogicalPlanPtr> RebindSnapshots(const LogicalPlanPtr& plan,
                                       const ServiceSnapshot& snap) {
  return MapPins(plan, &AttachPin, snap);
}

PreparedStatementPtr PlanCache::Lookup(const std::string& fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_fingerprint_.find(fingerprint);
  if (it == by_fingerprint_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
  return *it->second;
}

void PlanCache::Insert(const PreparedStatementPtr& stmt) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_fingerprint_.find(stmt->fingerprint);
  if (it != by_fingerprint_.end()) {
    *it->second = stmt;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(stmt);
  by_fingerprint_[stmt->fingerprint] = lru_.begin();
  while (lru_.size() > capacity_) {
    by_fingerprint_.erase(lru_.back()->fingerprint);
    lru_.pop_back();
    ++evictions_;
  }
}

void PlanCache::Erase(const std::string& fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_fingerprint_.find(fingerprint);
  if (it == by_fingerprint_.end()) return;
  lru_.erase(it->second);
  by_fingerprint_.erase(it);
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  by_fingerprint_.clear();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

uint64_t PlanCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace idf
