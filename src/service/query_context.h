// Per-query request/response types of the query service: submission
// options (deadline, external cancellation) and the result envelope
// (status, rows, the epoch the query read, and its latency breakdown).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "common/cancellation.h"
#include "types/row.h"
#include "types/schema.h"

namespace idf {

/// Options for one query submission.
struct QueryOptions {
  /// Deadline for the whole query, queueing included. Zero means "use the
  /// service's default timeout" (which may itself be none).
  std::chrono::nanoseconds timeout{0};

  /// Caller-held cancellation handle. The service polls it while the query
  /// waits for admission and at every morsel boundary during execution;
  /// Cancel() frees the query's admission slot within milliseconds. When
  /// null the service creates an internal token (deadline-only control).
  CancellationTokenPtr cancel;
};

/// The outcome of one query.
struct QueryResult {
  Status status;

  SchemaPtr schema;
  RowVec rows;

  /// The epoch boundary the query's snapshot was pinned at: every row
  /// reflects exactly the append batches committed before this epoch,
  /// across all tables the query touched.
  uint64_t epoch = 0;

  uint64_t queue_micros = 0;  ///< admission wait
  uint64_t exec_micros = 0;   ///< plan + execute
  uint64_t total_micros = 0;  ///< submission to completion

  bool ok() const { return status.ok(); }
};

}  // namespace idf
