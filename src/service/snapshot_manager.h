// SnapshotManager: MVCC epoch boundaries for the query service. All
// updatable tables a service exposes register here; appends and snapshot
// pinning are then serialized against each other by a single
// reader/writer gate so a pinned snapshot always sits on an epoch
// boundary:
//
//  - An append batch holds the gate SHARED for the whole batch — across
//    every partition it touches and every index it fans out to (a
//    multi-indexed table keeps one IndexedRelation per index). Appenders
//    therefore run concurrently with each other, exactly as without the
//    manager.
//  - PinAll() holds the gate EXCLUSIVE while it captures the per-partition
//    trie views of every index of every registered table. No batch can be
//    mid-flight at that instant, so a reader never observes a torn batch:
//    half of a multi-partition append, or a row present in one index of a
//    table but missing from another.
//
// Pinning is O(total partitions) pointer captures (the CTrie's O(1)
// snapshot per partition), so the exclusive section is microseconds even
// with many tables; appends are delayed by at most that.
//
// Pins are additionally cached per epoch: while no batch commits, every
// PinAll() after the first returns the cached snapshot without touching
// the gate at all. Readers therefore never wait behind an in-flight
// append batch (its epoch bump only lands at commit) — only the first
// pin after a commit takes the exclusive section. This is what keeps
// reader tail latency flat under a continuous append stream.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "indexed/indexed_relation.h"
#include "indexed/multi_indexed_table.h"

namespace idf {

/// One registered table's pins, captured at one epoch. `pins[i]` pairs the
/// index column ordinal with that index's pinned snapshot; `primary()` is
/// the first (only) index for single-index tables.
struct PinnedTable {
  std::string table;
  std::vector<std::pair<int, PinnedSnapshotPtr>> pins;

  const PinnedSnapshotPtr& primary() const { return pins.front().second; }
};

/// A consistent cross-table snapshot: every pin was captured inside the
/// same exclusive section, with no append batch mid-flight.
struct ServiceSnapshot {
  uint64_t epoch = 0;
  std::vector<PinnedTable> tables;

  const PinnedTable* find(const std::string& table) const {
    for (const PinnedTable& t : tables) {
      if (t.table == table) return &t;
    }
    return nullptr;
  }
};

/// Registered schema/index shape of one table (planning metadata for the
/// view subsystem: no pins, no data).
struct TableInfo {
  std::string name;
  SchemaPtr schema;
  std::vector<int> indexed_columns;  // one ordinal per index
};

class SnapshotManager {
 public:
  /// \brief Observer of committed append batches (the delta feed of the
  /// materialized-view subsystem).
  ///
  /// When a sink is installed and `wants_deltas()`, every Append commit
  /// hands it the batch's rows tagged with the epoch that commit produced.
  /// OnCommit calls are serialized and arrive in strict epoch order (a
  /// small commit mutex covers the epoch bump and the callback), so the
  /// sink sees a gap-free, ordered delta stream. The callback runs inside
  /// the shared gate section on the appender's thread: it must be quick
  /// (enqueue, don't process) and must never call back into the manager.
  class CommitSink {
   public:
    virtual ~CommitSink() = default;
    /// Polled before capturing a delta; false skips the copy and the
    /// commit mutex entirely (zero overhead while no view is live).
    virtual bool wants_deltas() const = 0;
    virtual void OnCommit(const std::string& table,
                          std::shared_ptr<const RowVec> rows,
                          uint64_t epoch) = 0;
  };

  /// `exec` powers the parallel append path (partition fan-out).
  explicit SnapshotManager(ExecutorContextPtr exec) : exec_(std::move(exec)) {}

  /// Installs (or clears, with nullptr) the commit sink. Not owned; the
  /// sink must outlive all Append calls.
  void SetCommitSink(CommitSink* sink) {
    sink_.store(sink, std::memory_order_release);
  }

  /// Registers a single-index table. Names must be unique.
  Status RegisterTable(const std::string& name, IndexedRelationPtr relation);

  /// Registers a multi-index table: appends through the manager reach all
  /// of its indexes inside one epoch, and PinAll captures all of them.
  Status RegisterTable(const std::string& name,
                       std::shared_ptr<MultiIndexedTable> table);

  /// Appends one batch to `table` (all its indexes) as a single epoch
  /// step. Concurrent appends to any tables run in parallel; pinners wait.
  Status Append(const std::string& table, const RowVec& rows);

  /// Pins every index of every registered table at one epoch boundary.
  /// Served from the per-epoch cache when no batch has committed since
  /// the last pin (no gate acquisition on that path).
  ServiceSnapshot PinAll();

  /// Epochs committed so far (monotonic; one per Append batch).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  std::vector<std::string> TableNames() const;

  /// Name, schema, and indexed-column ordinals of every registered table
  /// (the planning metadata Subscribe() needs — no pinning involved).
  std::vector<TableInfo> TableInfos() const;

  /// Every registered IndexedRelation (one per index of every table), for
  /// maintenance machinery such as the Compactor.
  std::vector<IndexedRelationPtr> Relations() const;

 private:
  void InvalidateCache();

  struct Entry {
    // Every index of the table; one element for single-index tables. The
    // multi-table handle (when present) owns the fan-out append.
    std::vector<IndexedRelationPtr> indexes;
    std::shared_ptr<MultiIndexedTable> multi;
  };

  ExecutorContextPtr exec_;
  // The epoch gate (see file comment). Also guards `tables_` mutation.
  mutable std::shared_mutex gate_;
  std::atomic<uint64_t> epoch_{0};
  std::map<std::string, Entry> tables_;

  // Delta feed. `commit_mu_` makes {epoch bump, OnCommit} atomic so the
  // sink's delta stream is ordered exactly like the epochs; it is taken
  // only when a sink wants deltas, so the plain append path is unchanged.
  std::atomic<CommitSink*> sink_{nullptr};
  std::mutex commit_mu_;

  // Epoch-keyed pin cache (separate tiny lock: held only for a pointer
  // compare/copy, never while pinning or appending). Invalidated by
  // RegisterTable; superseded naturally by epoch bumps.
  mutable std::mutex cache_mu_;
  std::shared_ptr<const ServiceSnapshot> cached_;
};

}  // namespace idf
