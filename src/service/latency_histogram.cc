#include "service/latency_histogram.h"

#include <bit>
#include <sstream>
#include <vector>

namespace idf {

int LatencyHistogram::BucketOf(uint64_t micros) {
  if (micros < kSub) return static_cast<int>(micros);  // octaves 0..1 are exact
  const int octave = std::bit_width(micros) - 1;  // floor(log2)
  const uint64_t base = uint64_t{1} << octave;
  // Linear position of `micros` within [base, 2*base), scaled to kSub.
  const int sub = static_cast<int>(((micros - base) * kSub) >> octave);
  const int bucket = octave * kSub + sub;
  return bucket < kBuckets ? bucket : kBuckets - 1;
}

uint64_t LatencyHistogram::BucketLowerBound(int bucket) {
  const int octave = bucket / kSub;
  const int sub = bucket % kSub;
  if (octave == 0) return static_cast<uint64_t>(sub);
  const uint64_t base = uint64_t{1} << octave;
  return base + (base >> 2) * static_cast<uint64_t>(sub);
}

void LatencyHistogram::Record(uint64_t micros) {
  buckets_[BucketOf(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(micros, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (micros > prev &&
         !max_.compare_exchange_weak(prev, micros, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::Reset() {
  for (int b = 0; b < kBuckets; ++b) {
    buckets_[b].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

uint64_t LatencyHistogram::Percentile(double q) const {
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t counts[kBuckets];
  uint64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return 0;
  // Rank of the quantile sample (1-based), then walk the CDF to it.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1)) + 1;
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += counts[b];
    if (seen >= rank) {
      // Midpoint between this bucket's bounds: halves the worst-case error
      // versus reporting the lower bound. Successor buckets inside the
      // (unused) low octaves can have a smaller nominal lower bound, so
      // clamp the upper bound to at least lo + 1.
      const uint64_t lo = BucketLowerBound(b);
      uint64_t hi = b + 1 < kBuckets ? BucketLowerBound(b + 1) : lo + (lo >> 2);
      if (hi <= lo) hi = lo + 1;
      return lo + (hi - lo) / 2;
    }
  }
  return BucketLowerBound(kBuckets - 1);
}

LatencyHistogram::Summary LatencyHistogram::Summarize() const {
  Summary s;
  s.count = count_.load(std::memory_order_relaxed);
  if (s.count > 0) {
    s.mean_micros = static_cast<double>(sum_.load(std::memory_order_relaxed)) /
                    static_cast<double>(s.count);
  }
  s.p50_micros = Percentile(0.50);
  s.p95_micros = Percentile(0.95);
  s.p99_micros = Percentile(0.99);
  s.max_micros = max_.load(std::memory_order_relaxed);
  return s;
}

std::string LatencyHistogram::Summary::ToJson() const {
  std::ostringstream out;
  out << "{\"count\": " << count << ", \"mean_us\": " << mean_micros
      << ", \"p50_us\": " << p50_micros << ", \"p95_us\": " << p95_micros
      << ", \"p99_us\": " << p99_micros << ", \"max_us\": " << max_micros << "}";
  return out.str();
}

}  // namespace idf
