// QueryService: a concurrent SQL front-end over the indexed storage. Many
// client threads submit SQL; the service
//
//  1. admits up to `max_inflight` queries at once, parking up to
//     `max_queue` more behind a condition variable and rejecting the rest
//     with CapacityError (backpressure instead of collapse),
//  2. pins an MVCC snapshot of every registered table at one epoch
//     boundary (SnapshotManager), so the query reads a frozen, mutually
//     consistent version while the append stream keeps landing in the
//     live indexes,
//  3. plans the SQL in a per-query Session that shares the base executor's
//     thread pool but carries its own metrics and cancellation token —
//     queries interleave morsels on the same workers, and a cancel or an
//     expired deadline stops a query within one morsel,
//  4. records per-query latency into lock-free histograms, exported as
//     p50/p95/p99 via Stats().
//
// All methods are thread-safe.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "indexed/compactor.h"
#include "service/latency_histogram.h"
#include "service/plan_cache.h"
#include "service/query_context.h"
#include "service/snapshot_manager.h"
#include "sql/session.h"
#include "view/view_manager.h"

namespace idf {

struct ServiceConfig {
  EngineConfig engine;

  /// Queries executing at once. Beyond it, submissions queue.
  size_t max_inflight = 8;

  /// Submissions allowed to wait for a slot. Beyond it, submissions are
  /// rejected with CapacityError immediately (bounded queueing delay).
  size_t max_queue = 32;

  /// Deadline applied to queries that don't bring their own timeout.
  /// Zero: no default deadline.
  std::chrono::nanoseconds default_timeout{0};

  /// Prepared statements cached per normalized SQL fingerprint. Beyond
  /// it, the least recently used plan is evicted (open handles keep
  /// evicted statements alive and executable).
  size_t plan_cache_capacity = 128;

  Status Validate() const;
};

/// A point-in-time view of the service's counters and latency
/// distributions.
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t succeeded = 0;
  uint64_t rejected = 0;           ///< queue full (CapacityError)
  uint64_t cancelled = 0;          ///< stopped by client Cancel()
  uint64_t deadline_exceeded = 0;  ///< stopped by deadline
  uint64_t failed = 0;             ///< any other error

  LatencyHistogram::Summary queue;  ///< admission wait, completed queries
  LatencyHistogram::Summary exec;   ///< pin + plan + execute
  LatencyHistogram::Summary total;  ///< submission to completion

  // Batch-at-a-time execution, accumulated over every completed or failed
  // query (each query runs with private metrics; the service folds them in
  // when the query finishes).
  uint64_t rows_filtered_vectorized = 0;  ///< rows rejected by vector filter
  uint64_t vector_batches_evaluated = 0;  ///< internal predicate batches

  // Background compaction (zero unless EnableCompaction was called).
  uint64_t compactions_run = 0;
  uint64_t chain_links_rewritten = 0;
  uint64_t bytes_reclaimed = 0;
  uint64_t retired_pending = 0;  ///< generations waiting on pinned views

  // Secondary indexes: probe counts folded in per query, scan work the
  // probes skipped, and append-path maintenance time accumulated on the
  // service executor.
  uint64_t bitmap_probes = 0;          ///< bitmap-index probes executed
  uint64_t range_probes = 0;           ///< range-index probes executed
  uint64_t index_scans_avoided = 0;    ///< rows a probe skipped scanning
  uint64_t bitmap_maintenance_us = 0;  ///< bitmap upkeep inside appends
  uint64_t range_maintenance_us = 0;   ///< range upkeep inside appends

  // Prepared statements and the parameterized plan cache.
  uint64_t statements_prepared = 0;   ///< successful Prepare() calls
  uint64_t plan_cache_hits = 0;       ///< Prepare served from the cache
  uint64_t plan_cache_misses = 0;     ///< Prepare that built (or rebuilt) a plan
  uint64_t plan_cache_evictions = 0;  ///< LRU evictions beyond capacity
  uint64_t prepared_executions = 0;   ///< successful ExecutePrepared calls
  uint64_t prepared_replans = 0;  ///< re-lowerings (epoch change or fallback)

  // Network front end (zero unless a net::Server reports in).
  uint64_t net_connections = 0;      ///< connections accepted
  uint64_t net_requests = 0;         ///< protocol requests served
  uint64_t net_busy_rejections = 0;  ///< requests answered with BUSY

  // Incremental view maintenance (zero unless Subscribe was called).
  uint64_t views_registered = 0;  ///< live maintained arrangements
  uint64_t view_subscribers = 0;  ///< live standing-query subscriptions
  uint64_t arrangements_shared = 0;  ///< subscriptions that joined an existing arrangement
  uint64_t deltas_propagated = 0;  ///< delta batches applied to views
  uint64_t rows_maintained_incrementally = 0;  ///< delta rows folded into resident view state
  uint64_t views_recomputed = 0;  ///< full recompute passes (fallback shapes)

  std::string ToJson() const;
  std::string ToString() const;
};

/// What Prepare() hands back: an execution handle plus the statement's
/// inferred parameter signature (one type per `?`/`$n` ordinal).
struct PreparedInfo {
  uint64_t handle = 0;
  size_t num_params = 0;
  std::vector<TypeId> param_types;
  SchemaPtr result_schema;
};

class QueryService {
 public:
  static Result<std::shared_ptr<QueryService>> Make(
      const ServiceConfig& config = ServiceConfig());

  /// Registers an updatable table for SQL access and epoch-gated appends.
  Status RegisterTable(const std::string& name, IndexedRelationPtr relation);
  Status RegisterTable(const std::string& name,
                       std::shared_ptr<MultiIndexedTable> table);

  /// Appends one batch to `table` as a single epoch step (all indexes of a
  /// multi-indexed table land atomically w.r.t. snapshot pinning). Safe
  /// from any number of appender threads, concurrent with queries.
  Status Append(const std::string& table, const RowVec& rows);

  /// Executes `sql` against a snapshot pinned at the current epoch
  /// boundary. Blocks while waiting for admission (bounded by deadline /
  /// cancel / slot availability). The outcome — including rejection and
  /// cancellation — is reported in the returned QueryResult's status.
  QueryResult Execute(const std::string& sql,
                      const QueryOptions& options = QueryOptions());

  /// Parses, analyzes, infers parameter types, optimizes, and caches
  /// `sql` (which may contain `?` or `$n` placeholders) once, returning a
  /// handle for repeated execution. Statements with the same normalized
  /// SQL share one cached plan (plan_cache_hits counts reuse).
  Result<PreparedInfo> Prepare(const std::string& sql);

  /// Executes a prepared statement with `params` bound by ordinal. Values
  /// are coerced to the inferred parameter types (NULLs pass through).
  /// Reuses the cached physical plan at the pinned epoch — compiled
  /// predicates patch immediate slots, nothing is re-parsed or
  /// recompiled — re-lowering only when the epoch moved (appends landed)
  /// or the plan shape is not patchable. Admission, deadlines, and
  /// cancellation behave exactly as in Execute().
  QueryResult ExecutePrepared(uint64_t handle, const std::vector<Value>& params,
                              const QueryOptions& options = QueryOptions());

  /// Releases a handle. The cached plan stays in the LRU for future
  /// Prepare() calls; in-flight executions on the handle finish normally.
  Status ClosePrepared(uint64_t handle);

  /// Zeroes every counter and latency histogram. Gauges that mirror live
  /// subsystem state (views_registered, retired_pending, ...) are
  /// unaffected. Safe concurrent with queries (samples racing the reset
  /// land on either side).
  void ResetStats();

  /// Entry points for the network front end to report into Stats().
  void NoteNetConnection() { net_connections_.fetch_add(1); }
  void NoteNetRequest() { net_requests_.fetch_add(1); }
  void NoteNetBusyRejection() { net_busy_rejections_.fetch_add(1); }

  /// Starts one background Compactor per registered index (call after
  /// RegisterTable). Compactors share the service metrics and tag retired
  /// generations with the service epoch; they are stopped by the
  /// destructor or DisableCompaction(). Idempotent.
  Status EnableCompaction(const CompactionConfig& config = CompactionConfig());

  /// Stops and discards all background compactors (pending retired
  /// generations are released; pinned views keep their data alive).
  void DisableCompaction();

  /// Registers a standing query: the result is maintained incrementally
  /// from append deltas and readable lock-free via the subscription's
  /// Snapshot(). Subscriptions with the same plan share one maintained
  /// arrangement. The optional callback fires after every new publish.
  Result<ViewSubscriptionPtr> Subscribe(
      const std::string& sql, ViewSubscription::Callback callback = nullptr);

  /// Detaches a standing query (the shared arrangement is torn down with
  /// its last subscriber).
  Status Unsubscribe(const ViewSubscriptionPtr& sub);

  MaterializedViewManager& views() { return *views_; }

  ServiceStats Stats() const;

  SnapshotManager& snapshots() { return *snapshots_; }
  uint64_t epoch() const { return snapshots_->epoch(); }
  const ServiceConfig& config() const { return config_; }

  /// Instantaneous admission state (monitoring and tests).
  size_t inflight() const;
  size_t queued() const;

  ~QueryService();

 private:
  QueryService(ServiceConfig config, ExecutorContextPtr base_exec);

  /// Blocks until a slot is free (then holds it), the token requests stop,
  /// or the wait queue is full. The caller must Release() iff OK.
  Status Admit(const CancellationToken* token);
  void Release();

  /// The admitted path: pin, plan, execute. Factored out so Execute can
  /// uniformly time and classify the outcome.
  Status RunAdmitted(const std::string& sql, const CancellationTokenPtr& token,
                     QueryResult* result);

  /// Parse + analyze + infer + optimize + detach `sql` into a cacheable
  /// statement (the Prepare miss path).
  Result<PreparedStatementPtr> BuildStatement(const std::string& sql,
                                              const std::string& fingerprint);

  /// The admitted prepared path: pin, rebind (or reuse) the cached plan
  /// at the pinned epoch, bind `params`, execute. Updates handles_[handle]
  /// when DDL invalidation forces a transparent re-prepare.
  Status RunPreparedAdmitted(uint64_t handle, PreparedStatementPtr stmt,
                             const std::vector<Value>& params,
                             const CancellationTokenPtr& token,
                             QueryResult* result);

  /// Folds a finished query's executor metrics into the service counters.
  void FoldExecMetrics(ExecutorContext& exec);

  /// Per-query executor contexts are pooled: constructing one (config
  /// resolution, metrics block) costs about as much as executing a point
  /// lookup, so the hot prepared path recycles them instead. Acquire
  /// returns a context with clean metrics and no cancellation/parameters.
  Result<ExecutorContextPtr> AcquireExec();
  /// Scrubs the context and returns it to the pool — unless something
  /// (e.g. a memoized plan) still holds a reference, in which case it is
  /// simply dropped.
  void ReleaseExec(ExecutorContextPtr exec);

  ServiceConfig config_;
  ExecutorContextPtr base_exec_;
  std::unique_ptr<SnapshotManager> snapshots_;
  std::unique_ptr<MaterializedViewManager> views_;

  mutable std::mutex compaction_mu_;  // guards compactors_
  std::vector<std::unique_ptr<Compactor>> compactors_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t inflight_ = 0;
  size_t waiting_ = 0;

  mutable std::mutex exec_pool_mu_;  // guards exec_pool_
  std::vector<ExecutorContextPtr> exec_pool_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> succeeded_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> rows_filtered_vectorized_{0};
  std::atomic<uint64_t> vector_batches_evaluated_{0};
  std::atomic<uint64_t> bitmap_probes_{0};
  std::atomic<uint64_t> range_probes_{0};
  std::atomic<uint64_t> index_scans_avoided_{0};
  LatencyHistogram queue_hist_;
  LatencyHistogram exec_hist_;
  LatencyHistogram total_hist_;

  // Prepared statements. `ddl_version_` bumps on every RegisterTable;
  // statements prepared under an older version are invalidated (the
  // schema, index shape, or table set may have changed under the plan).
  PlanCache plan_cache_;
  std::atomic<uint64_t> ddl_version_{0};
  mutable std::mutex handles_mu_;  // guards handles_
  std::unordered_map<uint64_t, PreparedStatementPtr> handles_;
  std::atomic<uint64_t> next_handle_{1};
  std::atomic<uint64_t> statements_prepared_{0};
  std::atomic<uint64_t> plan_cache_hits_{0};
  std::atomic<uint64_t> plan_cache_misses_{0};
  std::atomic<uint64_t> eviction_baseline_{0};  // ResetStats() watermark
  std::atomic<uint64_t> prepared_executions_{0};
  std::atomic<uint64_t> prepared_replans_{0};
  std::atomic<uint64_t> net_connections_{0};
  std::atomic<uint64_t> net_requests_{0};
  std::atomic<uint64_t> net_busy_rejections_{0};
};

using QueryServicePtr = std::shared_ptr<QueryService>;

}  // namespace idf
