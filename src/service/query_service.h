// QueryService: a concurrent SQL front-end over the indexed storage. Many
// client threads submit SQL; the service
//
//  1. admits up to `max_inflight` queries at once, parking up to
//     `max_queue` more behind a condition variable and rejecting the rest
//     with CapacityError (backpressure instead of collapse),
//  2. pins an MVCC snapshot of every registered table at one epoch
//     boundary (SnapshotManager), so the query reads a frozen, mutually
//     consistent version while the append stream keeps landing in the
//     live indexes,
//  3. plans the SQL in a per-query Session that shares the base executor's
//     thread pool but carries its own metrics and cancellation token —
//     queries interleave morsels on the same workers, and a cancel or an
//     expired deadline stops a query within one morsel,
//  4. records per-query latency into lock-free histograms, exported as
//     p50/p95/p99 via Stats().
//
// All methods are thread-safe.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>

#include "indexed/compactor.h"
#include "service/latency_histogram.h"
#include "service/query_context.h"
#include "service/snapshot_manager.h"
#include "sql/session.h"
#include "view/view_manager.h"

namespace idf {

struct ServiceConfig {
  EngineConfig engine;

  /// Queries executing at once. Beyond it, submissions queue.
  size_t max_inflight = 8;

  /// Submissions allowed to wait for a slot. Beyond it, submissions are
  /// rejected with CapacityError immediately (bounded queueing delay).
  size_t max_queue = 32;

  /// Deadline applied to queries that don't bring their own timeout.
  /// Zero: no default deadline.
  std::chrono::nanoseconds default_timeout{0};

  Status Validate() const;
};

/// A point-in-time view of the service's counters and latency
/// distributions.
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t succeeded = 0;
  uint64_t rejected = 0;           ///< queue full (CapacityError)
  uint64_t cancelled = 0;          ///< stopped by client Cancel()
  uint64_t deadline_exceeded = 0;  ///< stopped by deadline
  uint64_t failed = 0;             ///< any other error

  LatencyHistogram::Summary queue;  ///< admission wait, completed queries
  LatencyHistogram::Summary exec;   ///< pin + plan + execute
  LatencyHistogram::Summary total;  ///< submission to completion

  // Batch-at-a-time execution, accumulated over every completed or failed
  // query (each query runs with private metrics; the service folds them in
  // when the query finishes).
  uint64_t rows_filtered_vectorized = 0;  ///< rows rejected by vector filter
  uint64_t vector_batches_evaluated = 0;  ///< internal predicate batches

  // Background compaction (zero unless EnableCompaction was called).
  uint64_t compactions_run = 0;
  uint64_t chain_links_rewritten = 0;
  uint64_t bytes_reclaimed = 0;
  uint64_t retired_pending = 0;  ///< generations waiting on pinned views

  // Secondary indexes: probe counts folded in per query, scan work the
  // probes skipped, and append-path maintenance time accumulated on the
  // service executor.
  uint64_t bitmap_probes = 0;          ///< bitmap-index probes executed
  uint64_t range_probes = 0;           ///< range-index probes executed
  uint64_t index_scans_avoided = 0;    ///< rows a probe skipped scanning
  uint64_t bitmap_maintenance_us = 0;  ///< bitmap upkeep inside appends
  uint64_t range_maintenance_us = 0;   ///< range upkeep inside appends

  // Incremental view maintenance (zero unless Subscribe was called).
  uint64_t views_registered = 0;  ///< live maintained arrangements
  uint64_t view_subscribers = 0;  ///< live standing-query subscriptions
  uint64_t arrangements_shared = 0;  ///< subscriptions that joined an existing arrangement
  uint64_t deltas_propagated = 0;  ///< delta batches applied to views
  uint64_t rows_maintained_incrementally = 0;  ///< delta rows folded into resident view state
  uint64_t views_recomputed = 0;  ///< full recompute passes (fallback shapes)

  std::string ToJson() const;
  std::string ToString() const;
};

class QueryService {
 public:
  static Result<std::shared_ptr<QueryService>> Make(
      const ServiceConfig& config = ServiceConfig());

  /// Registers an updatable table for SQL access and epoch-gated appends.
  Status RegisterTable(const std::string& name, IndexedRelationPtr relation);
  Status RegisterTable(const std::string& name,
                       std::shared_ptr<MultiIndexedTable> table);

  /// Appends one batch to `table` as a single epoch step (all indexes of a
  /// multi-indexed table land atomically w.r.t. snapshot pinning). Safe
  /// from any number of appender threads, concurrent with queries.
  Status Append(const std::string& table, const RowVec& rows);

  /// Executes `sql` against a snapshot pinned at the current epoch
  /// boundary. Blocks while waiting for admission (bounded by deadline /
  /// cancel / slot availability). The outcome — including rejection and
  /// cancellation — is reported in the returned QueryResult's status.
  QueryResult Execute(const std::string& sql,
                      const QueryOptions& options = QueryOptions());

  /// Starts one background Compactor per registered index (call after
  /// RegisterTable). Compactors share the service metrics and tag retired
  /// generations with the service epoch; they are stopped by the
  /// destructor or DisableCompaction(). Idempotent.
  Status EnableCompaction(const CompactionConfig& config = CompactionConfig());

  /// Stops and discards all background compactors (pending retired
  /// generations are released; pinned views keep their data alive).
  void DisableCompaction();

  /// Registers a standing query: the result is maintained incrementally
  /// from append deltas and readable lock-free via the subscription's
  /// Snapshot(). Subscriptions with the same plan share one maintained
  /// arrangement. The optional callback fires after every new publish.
  Result<ViewSubscriptionPtr> Subscribe(
      const std::string& sql, ViewSubscription::Callback callback = nullptr);

  /// Detaches a standing query (the shared arrangement is torn down with
  /// its last subscriber).
  Status Unsubscribe(const ViewSubscriptionPtr& sub);

  MaterializedViewManager& views() { return *views_; }

  ServiceStats Stats() const;

  SnapshotManager& snapshots() { return *snapshots_; }
  uint64_t epoch() const { return snapshots_->epoch(); }
  const ServiceConfig& config() const { return config_; }

  /// Instantaneous admission state (monitoring and tests).
  size_t inflight() const;
  size_t queued() const;

  ~QueryService();

 private:
  QueryService(ServiceConfig config, ExecutorContextPtr base_exec);

  /// Blocks until a slot is free (then holds it), the token requests stop,
  /// or the wait queue is full. The caller must Release() iff OK.
  Status Admit(const CancellationToken* token);
  void Release();

  /// The admitted path: pin, plan, execute. Factored out so Execute can
  /// uniformly time and classify the outcome.
  Status RunAdmitted(const std::string& sql, const CancellationTokenPtr& token,
                     QueryResult* result);

  ServiceConfig config_;
  ExecutorContextPtr base_exec_;
  std::unique_ptr<SnapshotManager> snapshots_;
  std::unique_ptr<MaterializedViewManager> views_;

  mutable std::mutex compaction_mu_;  // guards compactors_
  std::vector<std::unique_ptr<Compactor>> compactors_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t inflight_ = 0;
  size_t waiting_ = 0;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> succeeded_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> rows_filtered_vectorized_{0};
  std::atomic<uint64_t> vector_batches_evaluated_{0};
  std::atomic<uint64_t> bitmap_probes_{0};
  std::atomic<uint64_t> range_probes_{0};
  std::atomic<uint64_t> index_scans_avoided_{0};
  LatencyHistogram queue_hist_;
  LatencyHistogram exec_hist_;
  LatencyHistogram total_hist_;
};

using QueryServicePtr = std::shared_ptr<QueryService>;

}  // namespace idf
