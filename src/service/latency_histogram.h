// LatencyHistogram: a lock-free, fixed-size latency histogram for the
// query service's tail-latency reporting. Record() is a single relaxed
// fetch_add on one of ~256 bucket counters (plus count/sum and a CAS max),
// so concurrent queries never serialize on stats. Percentiles are computed
// on demand from a consistent-enough sweep of the counters — the histogram
// is monotone (no decrements), so a sweep concurrent with writers can only
// under-count the newest samples, never misorder the distribution.
//
// Bucketing: one octave per power of two of microseconds, each octave cut
// into 4 linear sub-buckets. Relative quantile error is therefore bounded
// by ~1/4 of the value — plenty for p50/p95/p99 of millisecond-scale
// queries — while the whole histogram stays a few KB of atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace idf {

class LatencyHistogram {
 public:
  /// A point-in-time summary of the recorded distribution.
  struct Summary {
    uint64_t count = 0;
    double mean_micros = 0;
    uint64_t p50_micros = 0;
    uint64_t p95_micros = 0;
    uint64_t p99_micros = 0;
    uint64_t max_micros = 0;

    std::string ToJson() const;
  };

  LatencyHistogram() = default;

  /// Records one sample. Lock-free; safe from any number of threads.
  void Record(uint64_t micros);

  /// Sweeps the counters into a summary. Safe to call concurrently with
  /// Record (late samples may be missed; nothing is double-counted).
  Summary Summarize() const;

  /// Quantile in [0,1] of the swept distribution (convenience for tests).
  uint64_t Percentile(double q) const;

  /// Zeroes all counters. Not atomic with respect to concurrent Record()
  /// calls — samples racing a reset may land on either side of it — but
  /// every counter individually resets safely (ServiceStats reset path).
  void Reset();

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  // 40 octaves cover [1us, 2^40us ≈ 12.7 days]; larger samples clamp into
  // the last bucket.
  static constexpr int kOctaves = 40;
  static constexpr int kSub = 4;
  static constexpr int kBuckets = kOctaves * kSub;

  static int BucketOf(uint64_t micros);
  /// Inclusive lower bound (in micros) of a bucket.
  static uint64_t BucketLowerBound(int bucket);

  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

}  // namespace idf
