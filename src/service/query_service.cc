#include "service/query_service.h"

#include <sstream>

#include "indexed/indexed_rules.h"
#include "sql/parameters.h"
#include "sql/sql_parser.h"

namespace idf {

namespace {

using Clock = CancellationToken::Clock;

uint64_t MicrosSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start)
          .count());
}

// Parked submissions re-check their token at this cadence: a client
// Cancel() cannot signal the service's condition variable, so the wait
// polls. 1ms keeps cancel-while-queued prompt without measurable load.
constexpr std::chrono::milliseconds kAdmissionPoll{1};

}  // namespace

Status ServiceConfig::Validate() const {
  if (max_inflight == 0) {
    return Status::InvalidArgument("max_inflight must be at least 1");
  }
  return Status::OK();
}

QueryService::QueryService(ServiceConfig config, ExecutorContextPtr base_exec)
    : config_(std::move(config)),
      base_exec_(std::move(base_exec)),
      snapshots_(std::make_unique<SnapshotManager>(base_exec_)),
      views_(std::make_unique<MaterializedViewManager>(snapshots_.get(),
                                                       base_exec_)),
      plan_cache_(config_.plan_cache_capacity) {
  snapshots_->SetCommitSink(views_.get());
}

QueryService::~QueryService() {
  DisableCompaction();
  // Detach the delta feed before the view manager dies.
  snapshots_->SetCommitSink(nullptr);
}

Result<QueryServicePtr> QueryService::Make(const ServiceConfig& config) {
  IDF_RETURN_NOT_OK(config.Validate());
  IDF_ASSIGN_OR_RETURN(ExecutorContextPtr exec,
                       ExecutorContext::Make(config.engine));
  return QueryServicePtr(new QueryService(config, std::move(exec)));
}

Status QueryService::RegisterTable(const std::string& name,
                                   IndexedRelationPtr relation) {
  IDF_RETURN_NOT_OK(snapshots_->RegisterTable(name, std::move(relation)));
  // DDL: every cached plan may now be stale (new table shadows a name,
  // schema or index shape changed). Open handles re-prepare lazily.
  ddl_version_.fetch_add(1, std::memory_order_acq_rel);
  plan_cache_.Clear();
  return Status::OK();
}

Status QueryService::RegisterTable(const std::string& name,
                                   std::shared_ptr<MultiIndexedTable> table) {
  IDF_RETURN_NOT_OK(snapshots_->RegisterTable(name, std::move(table)));
  ddl_version_.fetch_add(1, std::memory_order_acq_rel);
  plan_cache_.Clear();
  return Status::OK();
}

Status QueryService::Append(const std::string& table, const RowVec& rows) {
  IDF_RETURN_NOT_OK(snapshots_->Append(table, rows));
  // Standing queries advance as part of the append path: the commit has
  // already landed and its delta is queued, so even if a concurrent
  // appender's pass picks it up first, this call just finds an empty
  // queue.
  if (views_->HasWork()) views_->Propagate();
  return Status::OK();
}

Result<ViewSubscriptionPtr> QueryService::Subscribe(
    const std::string& sql, ViewSubscription::Callback callback) {
  return views_->Subscribe(sql, std::move(callback));
}

Status QueryService::Unsubscribe(const ViewSubscriptionPtr& sub) {
  return views_->Unsubscribe(sub);
}

Status QueryService::EnableCompaction(const CompactionConfig& config) {
  std::lock_guard<std::mutex> lock(compaction_mu_);
  if (!compactors_.empty()) return Status::OK();
  std::vector<IndexedRelationPtr> relations = snapshots_->Relations();
  if (relations.empty()) {
    return Status::InvalidArgument(
        "EnableCompaction: no tables registered yet");
  }
  // The epoch callback only tags retirements for observability; the
  // service must outlive its compactors (they are members), so capturing
  // the raw manager pointer is safe.
  SnapshotManager* snapshots = snapshots_.get();
  for (IndexedRelationPtr& rel : relations) {
    compactors_.push_back(std::make_unique<Compactor>(
        std::move(rel), config, &base_exec_->metrics(),
        [snapshots] { return snapshots->epoch(); }));
    compactors_.back()->Start();
  }
  return Status::OK();
}

void QueryService::DisableCompaction() {
  std::lock_guard<std::mutex> lock(compaction_mu_);
  for (auto& c : compactors_) c->Stop();
  compactors_.clear();
}

Status QueryService::Admit(const CancellationToken* token) {
  std::unique_lock<std::mutex> lock(mu_);
  if (inflight_ < config_.max_inflight) {
    ++inflight_;
    return Status::OK();
  }
  if (waiting_ >= config_.max_queue) {
    return Status::CapacityError(
        "query rejected: " + std::to_string(inflight_) + " in flight and " +
        std::to_string(waiting_) + " queued (max_queue=" +
        std::to_string(config_.max_queue) + ")");
  }
  ++waiting_;
  while (inflight_ >= config_.max_inflight) {
    cv_.wait_for(lock, kAdmissionPoll);
    if (token != nullptr && token->stop_requested()) {
      --waiting_;
      return token->CheckStatus();
    }
  }
  --waiting_;
  ++inflight_;
  return Status::OK();
}

void QueryService::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
  }
  cv_.notify_one();
}

size_t QueryService::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

size_t QueryService::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_;
}

Result<ExecutorContextPtr> QueryService::AcquireExec() {
  {
    std::lock_guard<std::mutex> lock(exec_pool_mu_);
    if (!exec_pool_.empty()) {
      ExecutorContextPtr exec = std::move(exec_pool_.back());
      exec_pool_.pop_back();
      return exec;
    }
  }
  return ExecutorContext::MakeWithPool(config_.engine,
                                       base_exec_->shared_pool());
}

void QueryService::ReleaseExec(ExecutorContextPtr exec) {
  // A planning session may have baked this context into a memoized plan;
  // pooling it then would let two queries share mutable per-query state.
  // use_count()==1 proves we hold the only reference.
  if (exec.use_count() != 1) return;
  exec->SetCancellation(nullptr);
  exec->SetParameters(nullptr);
  exec->metrics().Reset();
  std::lock_guard<std::mutex> lock(exec_pool_mu_);
  if (exec_pool_.size() < config_.max_inflight + config_.max_queue) {
    exec_pool_.push_back(std::move(exec));
  }
}

Status QueryService::RunAdmitted(const std::string& sql,
                                 const CancellationTokenPtr& token,
                                 QueryResult* result) {
  // Pin the epoch snapshot first: everything the query sees is decided
  // here, before planning, so planning time does not widen the window in
  // which concurrent appends could slip into some tables but not others.
  ServiceSnapshot snap = snapshots_->PinAll();
  result->epoch = snap.epoch;

  // A per-query planning session over the shared worker pool: private
  // metrics, private cancellation, shared threads.
  IDF_ASSIGN_OR_RETURN(ExecutorContextPtr exec, AcquireExec());
  exec->SetCancellation(token);
  Status status = [&]() -> Status {
    IDF_ASSIGN_OR_RETURN(SessionPtr session, Session::MakeWithContext(exec));
    InstallIndexedExtensions(*session);
    for (const PinnedTable& table : snap.tables) {
      IDF_RETURN_NOT_OK(session->RegisterTable(
          table.table, session->FromPlan(std::make_shared<SnapshotScanNode>(
                           table.primary()))));
    }

    IDF_ASSIGN_OR_RETURN(DataFrame df, session->Sql(sql));
    IDF_ASSIGN_OR_RETURN(result->rows, session->ExecuteCollect(df.plan()));
    IDF_ASSIGN_OR_RETURN(result->schema, df.schema());
    // The deadline may have expired after the last operator finished; a
    // final check keeps "completed" and "timed out" mutually exclusive.
    return exec->CheckCancelled();
  }();
  // The query's private metrics are scrubbed when the executor returns to
  // the pool; fold the batch-execution counters into the service totals on
  // every outcome so Stats() reflects cancelled and failed queries too.
  FoldExecMetrics(*exec);
  ReleaseExec(std::move(exec));
  return status;
}

void QueryService::FoldExecMetrics(ExecutorContext& exec) {
  rows_filtered_vectorized_.fetch_add(exec.metrics().rows_filtered_vectorized(),
                                      std::memory_order_relaxed);
  vector_batches_evaluated_.fetch_add(exec.metrics().vector_batches_evaluated(),
                                      std::memory_order_relaxed);
  bitmap_probes_.fetch_add(exec.metrics().bitmap_probes(),
                           std::memory_order_relaxed);
  range_probes_.fetch_add(exec.metrics().range_probes(),
                          std::memory_order_relaxed);
  index_scans_avoided_.fetch_add(exec.metrics().index_scans_avoided(),
                                 std::memory_order_relaxed);
}

QueryResult QueryService::Execute(const std::string& sql,
                                  const QueryOptions& options) {
  const Clock::time_point start = Clock::now();
  submitted_.fetch_add(1, std::memory_order_relaxed);

  CancellationTokenPtr token =
      options.cancel != nullptr ? options.cancel : CancellationToken::Make();
  const auto timeout =
      options.timeout.count() > 0 ? options.timeout : config_.default_timeout;
  // An explicit deadline on a caller token wins over the service default.
  if (timeout.count() > 0 && !token->has_deadline()) {
    token->SetDeadline(start + timeout);
  }

  QueryResult result;
  result.status = Admit(token.get());
  if (result.status.ok()) {
    result.queue_micros = MicrosSince(start);
    const Clock::time_point exec_start = Clock::now();
    result.status = RunAdmitted(sql, token, &result);
    result.exec_micros = MicrosSince(exec_start);
    Release();
  }
  result.total_micros = MicrosSince(start);

  if (result.status.ok()) {
    succeeded_.fetch_add(1, std::memory_order_relaxed);
    queue_hist_.Record(result.queue_micros);
    exec_hist_.Record(result.exec_micros);
    total_hist_.Record(result.total_micros);
  } else if (result.status.IsCapacityError()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
  } else if (result.status.IsCancelled()) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
  } else if (result.status.IsDeadlineExceeded()) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!result.status.ok()) result.rows.clear();
  return result;
}

Result<PreparedStatementPtr> QueryService::BuildStatement(
    const std::string& sql, const std::string& fingerprint) {
  // Pin a snapshot only for planning: the statement caches schemas and
  // stats, not pins (DetachSnapshots), so prepared plans never hold
  // storage generations alive between executions.
  ServiceSnapshot snap = snapshots_->PinAll();
  IDF_ASSIGN_OR_RETURN(
      ExecutorContextPtr exec,
      ExecutorContext::MakeWithPool(config_.engine, base_exec_->shared_pool()));
  IDF_ASSIGN_OR_RETURN(SessionPtr session, Session::MakeWithContext(exec));
  InstallIndexedExtensions(*session);
  for (const PinnedTable& table : snap.tables) {
    IDF_RETURN_NOT_OK(session->RegisterTable(
        table.table, session->FromPlan(std::make_shared<SnapshotScanNode>(
                         table.primary()))));
  }

  IDF_ASSIGN_OR_RETURN(PreparedParse parsed, ParseSqlPrepared(session, sql));
  IDF_ASSIGN_OR_RETURN(LogicalPlanPtr optimized,
                       session->OptimizeOnly(parsed.plan));

  auto stmt = std::make_shared<PreparedStatement>();
  stmt->sql = sql;
  stmt->fingerprint = fingerprint;
  stmt->num_params = parsed.param_types.size();
  stmt->param_types = parsed.param_types;
  stmt->result_schema = parsed.plan->output_schema();
  stmt->patchable = PlanIsParameterPatchable(optimized);
  stmt->ddl_version = ddl_version_.load(std::memory_order_acquire);
  IDF_ASSIGN_OR_RETURN(stmt->analyzed, DetachSnapshots(parsed.plan, snap));
  if (stmt->patchable) {
    IDF_ASSIGN_OR_RETURN(stmt->optimized, DetachSnapshots(optimized, snap));
  }
  return stmt;
}

Result<PreparedInfo> QueryService::Prepare(const std::string& sql) {
  const std::string fingerprint = NormalizeSql(sql);
  PreparedStatementPtr stmt = plan_cache_.Lookup(fingerprint);
  if (stmt != nullptr &&
      stmt->ddl_version == ddl_version_.load(std::memory_order_acquire)) {
    plan_cache_hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    if (stmt != nullptr) plan_cache_.Erase(fingerprint);  // stale: DDL raced
    plan_cache_misses_.fetch_add(1, std::memory_order_relaxed);
    IDF_ASSIGN_OR_RETURN(stmt, BuildStatement(sql, fingerprint));
    plan_cache_.Insert(stmt);
  }
  statements_prepared_.fetch_add(1, std::memory_order_relaxed);

  PreparedInfo info;
  info.handle = next_handle_.fetch_add(1, std::memory_order_relaxed);
  info.num_params = stmt->num_params;
  info.param_types = stmt->param_types;
  info.result_schema = stmt->result_schema;
  {
    std::lock_guard<std::mutex> lock(handles_mu_);
    handles_[info.handle] = std::move(stmt);
  }
  return info;
}

Status QueryService::ClosePrepared(uint64_t handle) {
  std::lock_guard<std::mutex> lock(handles_mu_);
  if (handles_.erase(handle) == 0) {
    return Status::InvalidArgument("unknown prepared statement handle " +
                                   std::to_string(handle));
  }
  return Status::OK();
}

Status QueryService::RunPreparedAdmitted(uint64_t handle,
                                         PreparedStatementPtr stmt,
                                         const std::vector<Value>& params,
                                         const CancellationTokenPtr& token,
                                         QueryResult* result) {
  // DDL after prepare: transparently re-prepare from the statement's SQL
  // so long-lived handles survive RegisterTable, at one replan's cost.
  if (stmt->ddl_version != ddl_version_.load(std::memory_order_acquire)) {
    plan_cache_misses_.fetch_add(1, std::memory_order_relaxed);
    IDF_ASSIGN_OR_RETURN(PreparedStatementPtr fresh,
                         BuildStatement(stmt->sql, stmt->fingerprint));
    plan_cache_.Insert(fresh);
    {
      std::lock_guard<std::mutex> lock(handles_mu_);
      auto it = handles_.find(handle);
      if (it != handles_.end()) it->second = fresh;
    }
    stmt = std::move(fresh);
  }

  IDF_ASSIGN_OR_RETURN(ExecutorContextPtr exec, AcquireExec());
  exec->SetCancellation(token);
  Status status = [&]() -> Status {
    if (stmt->patchable) {
      // Hot path: reuse the lowered physical plan. Parameters travel in
      // the executor context; the operators patch compiled-predicate
      // immediates and lookup key slots at Execute() entry, so nothing is
      // re-parsed, re-optimized, or re-compiled.
      exec->SetParameters(
          std::make_shared<const std::vector<Value>>(params));
      std::shared_ptr<const BoundPlan> bound;
      // If the memoized plan is bound at the current committed epoch, a
      // single atomic epoch read is the whole snapshot check: the bound
      // plan's scan nodes hold their own pins, so no PinAll (and no
      // snapshot copy) is needed per execution.
      const uint64_t committed = snapshots_->epoch();
      {
        std::lock_guard<std::mutex> lock(stmt->mu);
        if (stmt->bound != nullptr && stmt->bound->epoch == committed) {
          bound = stmt->bound;
        }
      }
      if (bound == nullptr) {
        // Epoch moved (or first execution): pin the current boundary,
        // re-attach its pins, and re-lower — still no parse, analyze, or
        // optimize.
        ServiceSnapshot snap = snapshots_->PinAll();
        {
          std::lock_guard<std::mutex> lock(stmt->mu);
          if (stmt->bound != nullptr && stmt->bound->epoch == snap.epoch) {
            bound = stmt->bound;  // another execution re-bound first
          }
        }
        if (bound == nullptr) {
          IDF_ASSIGN_OR_RETURN(SessionPtr session,
                               Session::MakeWithContext(exec));
          InstallIndexedExtensions(*session);
          auto fresh = std::make_shared<BoundPlan>();
          fresh->epoch = snap.epoch;
          IDF_ASSIGN_OR_RETURN(fresh->rebound,
                               RebindSnapshots(stmt->optimized, snap));
          IDF_ASSIGN_OR_RETURN(fresh->physical,
                               session->PlanOptimized(fresh->rebound));
          {
            std::lock_guard<std::mutex> lock(stmt->mu);
            stmt->bound = fresh;
          }
          bound = std::move(fresh);
          prepared_replans_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      result->epoch = bound->epoch;
      IDF_ASSIGN_OR_RETURN(PartitionVec parts, bound->physical->Execute(*exec));
      result->rows = CollectRows(parts);
      result->schema = stmt->result_schema;
      return exec->CheckCancelled();
    }
    // Fallback for non-patchable shapes (a parameter sits in a join key,
    // sort key, or aggregate): substitute the values as literals into the
    // analyzed tree and run the normal optimize-and-execute pipeline.
    prepared_replans_.fetch_add(1, std::memory_order_relaxed);
    ServiceSnapshot snap = snapshots_->PinAll();
    result->epoch = snap.epoch;
    IDF_ASSIGN_OR_RETURN(SessionPtr session, Session::MakeWithContext(exec));
    InstallIndexedExtensions(*session);
    IDF_ASSIGN_OR_RETURN(LogicalPlanPtr rebound,
                         RebindSnapshots(stmt->analyzed, snap));
    IDF_ASSIGN_OR_RETURN(LogicalPlanPtr literal,
                         BindPlanParameters(rebound, params));
    IDF_ASSIGN_OR_RETURN(result->rows, session->ExecuteCollect(literal));
    result->schema = stmt->result_schema;
    return exec->CheckCancelled();
  }();
  FoldExecMetrics(*exec);
  ReleaseExec(std::move(exec));
  return status;
}

QueryResult QueryService::ExecutePrepared(uint64_t handle,
                                          const std::vector<Value>& params,
                                          const QueryOptions& options) {
  const Clock::time_point start = Clock::now();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  QueryResult result;

  PreparedStatementPtr stmt;
  {
    std::lock_guard<std::mutex> lock(handles_mu_);
    auto it = handles_.find(handle);
    if (it != handles_.end()) stmt = it->second;
  }
  if (stmt == nullptr) {
    result.status = Status::InvalidArgument(
        "unknown prepared statement handle " + std::to_string(handle));
  } else if (params.size() != stmt->num_params) {
    result.status = Status::InvalidArgument(
        "prepared statement expects " + std::to_string(stmt->num_params) +
        " parameter(s), got " + std::to_string(params.size()));
  }
  if (!result.status.ok()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    result.total_micros = MicrosSince(start);
    return result;
  }

  // Coerce each value to its inferred type up front (NULLs pass through):
  // the compiled immediate slots are typed, and coercing once here keeps
  // prepared results byte-identical to the ad-hoc query with the coerced
  // literal spliced in.
  std::vector<Value> coerced;
  coerced.reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    if (params[i].is_null()) {
      coerced.push_back(Value::Null());
      continue;
    }
    Result<Value> cast = params[i].CastTo(stmt->param_types[i]);
    if (!cast.ok()) {
      result.status = Status::InvalidArgument(
          "parameter $" + std::to_string(i + 1) + ": " +
          cast.status().message());
      failed_.fetch_add(1, std::memory_order_relaxed);
      result.total_micros = MicrosSince(start);
      return result;
    }
    coerced.push_back(std::move(cast).ValueOrDie());
  }

  CancellationTokenPtr token =
      options.cancel != nullptr ? options.cancel : CancellationToken::Make();
  const auto timeout =
      options.timeout.count() > 0 ? options.timeout : config_.default_timeout;
  if (timeout.count() > 0 && !token->has_deadline()) {
    token->SetDeadline(start + timeout);
  }

  result.status = Admit(token.get());
  if (result.status.ok()) {
    result.queue_micros = MicrosSince(start);
    const Clock::time_point exec_start = Clock::now();
    result.status =
        RunPreparedAdmitted(handle, std::move(stmt), coerced, token, &result);
    result.exec_micros = MicrosSince(exec_start);
    Release();
  }
  result.total_micros = MicrosSince(start);

  if (result.status.ok()) {
    succeeded_.fetch_add(1, std::memory_order_relaxed);
    prepared_executions_.fetch_add(1, std::memory_order_relaxed);
    queue_hist_.Record(result.queue_micros);
    exec_hist_.Record(result.exec_micros);
    total_hist_.Record(result.total_micros);
  } else if (result.status.IsCapacityError()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
  } else if (result.status.IsCancelled()) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
  } else if (result.status.IsDeadlineExceeded()) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!result.status.ok()) result.rows.clear();
  return result;
}

void QueryService::ResetStats() {
  submitted_.store(0, std::memory_order_relaxed);
  succeeded_.store(0, std::memory_order_relaxed);
  rejected_.store(0, std::memory_order_relaxed);
  cancelled_.store(0, std::memory_order_relaxed);
  deadline_exceeded_.store(0, std::memory_order_relaxed);
  failed_.store(0, std::memory_order_relaxed);
  rows_filtered_vectorized_.store(0, std::memory_order_relaxed);
  vector_batches_evaluated_.store(0, std::memory_order_relaxed);
  bitmap_probes_.store(0, std::memory_order_relaxed);
  range_probes_.store(0, std::memory_order_relaxed);
  index_scans_avoided_.store(0, std::memory_order_relaxed);
  statements_prepared_.store(0, std::memory_order_relaxed);
  plan_cache_hits_.store(0, std::memory_order_relaxed);
  plan_cache_misses_.store(0, std::memory_order_relaxed);
  prepared_executions_.store(0, std::memory_order_relaxed);
  prepared_replans_.store(0, std::memory_order_relaxed);
  net_connections_.store(0, std::memory_order_relaxed);
  net_requests_.store(0, std::memory_order_relaxed);
  net_busy_rejections_.store(0, std::memory_order_relaxed);
  // The cache's lifetime eviction counter is monotone; remember the
  // watermark so Stats() reports evictions since the reset.
  eviction_baseline_.store(plan_cache_.evictions(), std::memory_order_relaxed);
  queue_hist_.Reset();
  exec_hist_.Reset();
  total_hist_.Reset();
}

ServiceStats QueryService::Stats() const {
  ServiceStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.succeeded = succeeded_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  stats.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.rows_filtered_vectorized =
      rows_filtered_vectorized_.load(std::memory_order_relaxed);
  stats.vector_batches_evaluated =
      vector_batches_evaluated_.load(std::memory_order_relaxed);
  stats.bitmap_probes = bitmap_probes_.load(std::memory_order_relaxed);
  stats.range_probes = range_probes_.load(std::memory_order_relaxed);
  stats.index_scans_avoided =
      index_scans_avoided_.load(std::memory_order_relaxed);
  // Maintenance runs on the append path, which executes on the service's
  // base context (shared by the snapshot manager), not a per-query one.
  stats.bitmap_maintenance_us = base_exec_->metrics().bitmap_maintenance_us();
  stats.range_maintenance_us = base_exec_->metrics().range_maintenance_us();
  stats.statements_prepared = statements_prepared_.load(std::memory_order_relaxed);
  stats.plan_cache_hits = plan_cache_hits_.load(std::memory_order_relaxed);
  stats.plan_cache_misses = plan_cache_misses_.load(std::memory_order_relaxed);
  stats.plan_cache_evictions =
      plan_cache_.evictions() -
      eviction_baseline_.load(std::memory_order_relaxed);
  stats.prepared_executions =
      prepared_executions_.load(std::memory_order_relaxed);
  stats.prepared_replans = prepared_replans_.load(std::memory_order_relaxed);
  stats.net_connections = net_connections_.load(std::memory_order_relaxed);
  stats.net_requests = net_requests_.load(std::memory_order_relaxed);
  stats.net_busy_rejections =
      net_busy_rejections_.load(std::memory_order_relaxed);
  stats.queue = queue_hist_.Summarize();
  stats.exec = exec_hist_.Summarize();
  stats.total = total_hist_.Summarize();
  {
    std::lock_guard<std::mutex> lock(compaction_mu_);
    for (const auto& c : compactors_) {
      Compactor::Stats cs = c->stats();
      stats.compactions_run += cs.compactions_run;
      stats.chain_links_rewritten += cs.links_rewritten;
      stats.bytes_reclaimed += cs.bytes_reclaimed;
      stats.retired_pending += cs.retired_pending;
    }
  }
  ViewManagerStats vs = views_->Stats();
  stats.views_registered = vs.views_registered;
  stats.view_subscribers = vs.view_subscribers;
  stats.arrangements_shared = vs.arrangements_shared;
  stats.deltas_propagated = vs.deltas_propagated;
  stats.rows_maintained_incrementally = vs.rows_maintained_incrementally;
  stats.views_recomputed = vs.views_recomputed;
  return stats;
}

std::string ServiceStats::ToJson() const {
  std::ostringstream out;
  out << "{\"submitted\": " << submitted << ", \"succeeded\": " << succeeded
      << ", \"rejected\": " << rejected << ", \"cancelled\": " << cancelled
      << ", \"deadline_exceeded\": " << deadline_exceeded
      << ", \"failed\": " << failed << ", \"queue\": " << queue.ToJson()
      << ", \"exec\": " << exec.ToJson() << ", \"total\": " << total.ToJson()
      << ", \"rows_filtered_vectorized\": " << rows_filtered_vectorized
      << ", \"vector_batches_evaluated\": " << vector_batches_evaluated
      << ", \"bitmap_probes\": " << bitmap_probes
      << ", \"range_probes\": " << range_probes
      << ", \"index_scans_avoided\": " << index_scans_avoided
      << ", \"bitmap_maintenance_us\": " << bitmap_maintenance_us
      << ", \"range_maintenance_us\": " << range_maintenance_us
      << ", \"statements_prepared\": " << statements_prepared
      << ", \"plan_cache_hits\": " << plan_cache_hits
      << ", \"plan_cache_misses\": " << plan_cache_misses
      << ", \"plan_cache_evictions\": " << plan_cache_evictions
      << ", \"prepared_executions\": " << prepared_executions
      << ", \"prepared_replans\": " << prepared_replans
      << ", \"net_connections\": " << net_connections
      << ", \"net_requests\": " << net_requests
      << ", \"net_busy_rejections\": " << net_busy_rejections
      << ", \"compactions_run\": " << compactions_run
      << ", \"chain_links_rewritten\": " << chain_links_rewritten
      << ", \"bytes_reclaimed\": " << bytes_reclaimed
      << ", \"retired_pending\": " << retired_pending
      << ", \"views_registered\": " << views_registered
      << ", \"view_subscribers\": " << view_subscribers
      << ", \"arrangements_shared\": " << arrangements_shared
      << ", \"deltas_propagated\": " << deltas_propagated
      << ", \"rows_maintained_incrementally\": "
      << rows_maintained_incrementally
      << ", \"views_recomputed\": " << views_recomputed << "}";
  return out.str();
}

std::string ServiceStats::ToString() const {
  std::ostringstream out;
  out << "queries: " << succeeded << "/" << submitted << " ok, " << rejected
      << " rejected, " << cancelled << " cancelled, " << deadline_exceeded
      << " past deadline, " << failed << " failed\n"
      << "total latency: p50=" << total.p50_micros
      << "us p95=" << total.p95_micros << "us p99=" << total.p99_micros
      << "us max=" << total.max_micros << "us (n=" << total.count << ")\n"
      << "vectorized: " << rows_filtered_vectorized << " rows filtered, "
      << vector_batches_evaluated << " batches\n"
      << "secondary indexes: " << bitmap_probes << " bitmap probes, "
      << range_probes << " range probes, " << index_scans_avoided
      << " scans avoided, " << bitmap_maintenance_us << "us bitmap + "
      << range_maintenance_us << "us range maintenance\n"
      << "prepared: " << statements_prepared << " prepares ("
      << plan_cache_hits << " cache hits, " << plan_cache_misses
      << " misses, " << plan_cache_evictions << " evictions), "
      << prepared_executions << " executions, " << prepared_replans
      << " replans\n"
      << "net: " << net_connections << " connections, " << net_requests
      << " requests, " << net_busy_rejections << " busy rejections\n"
      << "compaction: " << compactions_run << " runs, "
      << chain_links_rewritten << " links rewritten, " << bytes_reclaimed
      << " bytes reclaimed, " << retired_pending << " generations pending\n"
      << "views: " << views_registered << " arrangements ("
      << view_subscribers << " subscribers, " << arrangements_shared
      << " shared), " << deltas_propagated << " deltas propagated, "
      << rows_maintained_incrementally << " rows maintained, "
      << views_recomputed << " recomputes";
  return out.str();
}

}  // namespace idf
