#include "service/snapshot_manager.h"

namespace idf {

Status SnapshotManager::RegisterTable(const std::string& name,
                                      IndexedRelationPtr relation) {
  if (relation == nullptr) {
    return Status::InvalidArgument("RegisterTable: null relation");
  }
  std::unique_lock<std::shared_mutex> lock(gate_);
  if (tables_.count(name) > 0) {
    return Status::InvalidArgument("table already registered: " + name);
  }
  tables_[name] = Entry{{std::move(relation)}, nullptr};
  InvalidateCache();
  return Status::OK();
}

Status SnapshotManager::RegisterTable(const std::string& name,
                                      std::shared_ptr<MultiIndexedTable> table) {
  if (table == nullptr) {
    return Status::InvalidArgument("RegisterTable: null table");
  }
  Entry entry;
  for (const std::string& col : table->IndexedColumns()) {
    IDF_ASSIGN_OR_RETURN(IndexedDataFrame idx, table->Index(col));
    entry.indexes.push_back(idx.relation());
  }
  if (entry.indexes.empty()) {
    return Status::InvalidArgument("multi-indexed table has no indexes: " + name);
  }
  entry.multi = std::move(table);
  std::unique_lock<std::shared_mutex> lock(gate_);
  if (tables_.count(name) > 0) {
    return Status::InvalidArgument("table already registered: " + name);
  }
  tables_[name] = std::move(entry);
  InvalidateCache();
  return Status::OK();
}

void SnapshotManager::InvalidateCache() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  cached_ = nullptr;
}

Status SnapshotManager::Append(const std::string& table, const RowVec& rows) {
  // Shared gate for the WHOLE batch: all partitions, all indexes. Other
  // appenders proceed concurrently; a pinner waits for the batch to land
  // completely (and blocks new batches while it captures).
  std::shared_lock<std::shared_mutex> lock(gate_);
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::KeyError("unknown table: " + table);
  }
  const Entry& entry = it->second;
  if (entry.multi != nullptr) {
    IDF_RETURN_NOT_OK(entry.multi->AppendRowsDirect(rows));
  } else {
    IDF_RETURN_NOT_OK(entry.indexes.front()->AppendRows(*exec_, rows));
  }
  CommitSink* sink = sink_.load(std::memory_order_acquire);
  if (sink != nullptr && sink->wants_deltas()) {
    // Copy before the commit mutex: other appenders stay concurrent while
    // the batch is duplicated; only the bump+enqueue pair is serialized,
    // which is what keeps the sink's queue in epoch order without gaps.
    auto delta = std::make_shared<const RowVec>(rows);
    std::lock_guard<std::mutex> commit_lock(commit_mu_);
    const uint64_t epoch = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
    sink->OnCommit(table, std::move(delta), epoch);
  } else {
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  return Status::OK();
}

ServiceSnapshot SnapshotManager::PinAll() {
  // Fast path: a snapshot already pinned at the current committed epoch.
  // An in-flight batch hasn't bumped the epoch yet, so readers sail past
  // it here instead of blocking on the gate until it lands.
  const uint64_t committed = epoch_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    if (cached_ != nullptr && cached_->epoch == committed) return *cached_;
  }

  std::unique_lock<std::shared_mutex> lock(gate_);
  // Another pinner may have refreshed the cache while we waited. Inside
  // the exclusive section the epoch cannot move.
  const uint64_t epoch = epoch_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    if (cached_ != nullptr && cached_->epoch == epoch) return *cached_;
  }
  auto snap = std::make_shared<ServiceSnapshot>();
  snap->epoch = epoch;
  snap->tables.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) {
    PinnedTable pinned;
    pinned.table = name;
    pinned.pins.reserve(entry.indexes.size());
    for (const IndexedRelationPtr& rel : entry.indexes) {
      pinned.pins.emplace_back(rel->indexed_column(), rel->Pin());
    }
    snap->tables.push_back(std::move(pinned));
  }
  {
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    cached_ = snap;
  }
  return *snap;
}

std::vector<IndexedRelationPtr> SnapshotManager::Relations() const {
  std::shared_lock<std::shared_mutex> lock(gate_);
  std::vector<IndexedRelationPtr> out;
  for (const auto& [name, entry] : tables_) {
    out.insert(out.end(), entry.indexes.begin(), entry.indexes.end());
  }
  return out;
}

std::vector<TableInfo> SnapshotManager::TableInfos() const {
  std::shared_lock<std::shared_mutex> lock(gate_);
  std::vector<TableInfo> infos;
  infos.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) {
    TableInfo info;
    info.name = name;
    info.schema = entry.indexes.front()->schema();
    for (const IndexedRelationPtr& rel : entry.indexes) {
      // Primary (cTrie) index columns only: bitmap/range secondary indexes
      // are not epoch-pinnable arrangements, so the view subsystem must
      // not treat them as maintainable join paths (it would downgrade
      // correctness, not just performance). See the kJoin gate in
      // MaterializedViewManager::Subscribe.
      info.indexed_columns.push_back(rel->indexed_column());
    }
    infos.push_back(std::move(info));
  }
  return infos;
}

std::vector<std::string> SnapshotManager::TableNames() const {
  std::shared_lock<std::shared_mutex> lock(gate_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace idf
