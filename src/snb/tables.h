// Table schemas of the SNB-like social graph (modelled on the LDBC Social
// Network Benchmark's person / person_knows_person / post / comment /
// forum tables, which the paper's evaluation uses via the SNB Datagen).
#pragma once

#include "types/schema.h"

namespace idf {
namespace snb {

/// person(id, firstName, lastName, gender, birthday, creationDate,
///        locationIP, browserUsed, cityId)
SchemaPtr PersonSchema();

/// person_knows_person(person1Id, person2Id, creationDate) — stored in both
/// directions, as the LDBC datagen materializes the symmetric relation.
SchemaPtr KnowsSchema();

/// post(id, creatorId, forumId, creationDate, locationIP, browserUsed,
///      content, length)
SchemaPtr PostSchema();

/// comment(id, creatorId, creationDate, locationIP, browserUsed, content,
///         length, replyOfPostId)
SchemaPtr CommentSchema();

/// forum(id, title, moderatorId, creationDate)
SchemaPtr ForumSchema();

/// forum_hasMember(forumId, personId, joinDate)
SchemaPtr ForumMemberSchema();

// Column ordinals used by queries and the datagen (kept in one place so a
// schema change breaks loudly).
namespace person {
inline constexpr int kId = 0, kFirstName = 1, kLastName = 2, kGender = 3,
                     kBirthday = 4, kCreationDate = 5, kLocationIp = 6,
                     kBrowserUsed = 7, kCityId = 8;
}
namespace knows {
inline constexpr int kPerson1 = 0, kPerson2 = 1, kCreationDate = 2;
}
namespace post {
inline constexpr int kId = 0, kCreatorId = 1, kForumId = 2, kCreationDate = 3,
                     kLocationIp = 4, kBrowserUsed = 5, kContent = 6, kLength = 7;
}
namespace comment {
inline constexpr int kId = 0, kCreatorId = 1, kCreationDate = 2, kLocationIp = 3,
                     kBrowserUsed = 4, kContent = 5, kLength = 6,
                     kReplyOfPostId = 7;
}
namespace forum {
inline constexpr int kId = 0, kTitle = 1, kModeratorId = 2, kCreationDate = 3;
}
namespace forum_member {
inline constexpr int kForumId = 0, kPersonId = 1, kJoinDate = 2;
}

}  // namespace snb
}  // namespace idf
