// The seven SNB Interactive Short ("simple read") queries of Figure 3,
// each with a vanilla (cached columnar DataFrame) and an indexed
// (Indexed DataFrame) implementation.
//
// Index layout (matching the paper's reported speedup pattern):
//   person          indexed on id           -> SQ1, SQ3, SQ7
//   person_knows    indexed on person1Id    -> SQ3
//   post            indexed on creatorId    -> SQ2
//   post            indexed on id           -> SQ4 (a second Indexed
//                                              DataFrame over the same data)
//   comment         indexed on replyOfPostId-> SQ7
// comment.id and the forum tables carry no index, so SQ5 and SQ6 "cannot
// make use of the index" (paper §3) and fall back to scans on both
// engines.
#pragma once

#include "indexed/indexed_dataframe.h"
#include "snb/datagen.h"
#include "snb/tables.h"
#include "sql/session.h"

namespace idf {
namespace snb {

/// All tables loaded twice: cached vanilla DataFrames and Indexed
/// DataFrames sharing one session.
struct SnbContext {
  SessionPtr session;

  // Vanilla side: cached (columnar) DataFrames.
  DataFrame person;
  DataFrame knows;
  DataFrame post;
  DataFrame comment;
  DataFrame forum;
  DataFrame forum_member;

  // Indexed side.
  std::shared_ptr<IndexedDataFrame> person_by_id;
  std::shared_ptr<IndexedDataFrame> knows_by_person1;
  std::shared_ptr<IndexedDataFrame> post_by_creator;
  std::shared_ptr<IndexedDataFrame> post_by_id;
  std::shared_ptr<IndexedDataFrame> comment_by_reply;

  SnbDataset dataset;
};

/// Loads `dataset` into `session` on both sides.
Result<SnbContext> MakeSnbContext(SessionPtr session, SnbDataset dataset);

/// Runs short query `query_no` (1..7) with parameter `param` (a person id
/// for SQ1-SQ3, a post id for SQ4/SQ7, a comment id for SQ5/SQ6).
/// `indexed` selects the engine. Returns the result rows.
Result<RowVec> RunShortQuery(const SnbContext& ctx, int query_no, bool indexed,
                             int64_t param);

/// Picks a deterministic in-range parameter for `query_no` from the
/// dataset (used by benches and tests).
int64_t DefaultParam(const SnbContext& ctx, int query_no);

/// Human-readable description (benchmark labels, EXPERIMENTS.md).
const char* ShortQueryDescription(int query_no);

}  // namespace snb
}  // namespace idf
