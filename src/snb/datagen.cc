#include "snb/datagen.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "snb/tables.h"

namespace idf {
namespace snb {

namespace {

constexpr int64_t kEpoch2010Micros = 1262304000LL * 1000000;  // 2010-01-01
constexpr int64_t kMicrosPerDay = 86400LL * 1000000;
constexpr uint64_t kSimulatedDays = 3 * 365;

const char* kFirstNames[] = {"Jan",  "Wei",  "Amin", "Otto", "Mira", "Ana",
                             "Ivan", "Noor", "Luis", "Kofi", "Sana", "Emma",
                             "Raj",  "Yuki", "Olga", "Omar"};
const char* kLastNames[] = {"Smith",  "Zhang", "Garcia", "Muller", "Silva",
                            "Kumar",  "Sato",  "Novak",  "Haddad", "Okafor",
                            "Jansen", "Brown", "Costa",  "Popov",  "Khan",
                            "Berg"};
const char* kBrowsers[] = {"Firefox", "Chrome", "Safari", "InternetExplorer",
                           "Opera"};
const char* kWords[] = {"about", "graph",  "social", "query",  "index",
                        "spark", "stream", "friend", "photo",  "music",
                        "match", "coffee", "paper",  "update", "latency",
                        "cache"};

std::string RandomIp(Random64* rng) {
  return std::to_string(rng->Uniform(223) + 1) + "." +
         std::to_string(rng->Uniform(256)) + "." +
         std::to_string(rng->Uniform(256)) + "." +
         std::to_string(rng->Uniform(256));
}

std::string RandomContent(Random64* rng, int words) {
  std::string out;
  for (int i = 0; i < words; ++i) {
    if (i > 0) out += ' ';
    out += kWords[rng->Uniform(sizeof(kWords) / sizeof(kWords[0]))];
  }
  return out;
}

}  // namespace

int64_t SnbTimestamp(uint64_t day_offset, uint64_t micros_in_day) {
  return kEpoch2010Micros + static_cast<int64_t>(day_offset) * kMicrosPerDay +
         static_cast<int64_t>(micros_in_day);
}

SnbDataset GenerateSnb(const SnbConfig& config) {
  SnbDataset ds;
  ds.config = config;
  Random64 rng(config.seed);

  const int64_t num_persons =
      std::max<int64_t>(50, static_cast<int64_t>(1000 * config.scale_factor));
  const int64_t first_person = 10000;
  ds.first_person_id = first_person;
  ds.num_persons = num_persons;

  // --- persons ---
  ds.persons.reserve(static_cast<size_t>(num_persons));
  for (int64_t i = 0; i < num_persons; ++i) {
    int64_t id = first_person + i;
    int64_t birthday = SnbTimestamp(0) -
                       static_cast<int64_t>(rng.Uniform(45 * 365) + 18 * 365) *
                           kMicrosPerDay;
    ds.persons.push_back(Row{
        Value(id),
        Value(std::string(kFirstNames[rng.Uniform(16)])),
        Value(std::string(kLastNames[rng.Uniform(16)])),
        Value(std::string(rng.Uniform(2) == 0 ? "male" : "female")),
        Value(birthday),
        Value(SnbTimestamp(rng.Uniform(kSimulatedDays),
                           rng.Uniform(kMicrosPerDay))),
        Value(RandomIp(&rng)),
        Value(std::string(kBrowsers[rng.Uniform(5)])),
        Value(static_cast<int64_t>(rng.Uniform(500))),  // cityId
    });
  }

  // --- knows edges: power-law out-degree with community locality ---
  const uint64_t max_degree =
      std::max<uint64_t>(8, static_cast<uint64_t>(num_persons / 12));
  for (int64_t i = 0; i < num_persons; ++i) {
    int64_t p1 = first_person + i;
    uint64_t degree = rng.Skewed(max_degree, config.degree_exponent) + 1;
    // Average ~12 outgoing edges; clamp skew tail.
    degree = std::min<uint64_t>(degree, 12 + rng.Uniform(24));
    for (uint64_t d = 0; d < degree; ++d) {
      // Community locality: most friends are close in id space.
      int64_t span = static_cast<int64_t>(rng.Skewed(
          static_cast<uint64_t>(std::max<int64_t>(2, num_persons / 4)), 1.3)) + 1;
      int64_t p2 = p1 + (rng.Uniform(2) == 0 ? span : -span);
      if (p2 < first_person) p2 = first_person + (first_person - p2) % num_persons;
      if (p2 >= first_person + num_persons) {
        p2 = first_person + (p2 - first_person) % num_persons;
      }
      if (p2 == p1) continue;
      Value created(SnbTimestamp(rng.Uniform(kSimulatedDays),
                                 rng.Uniform(kMicrosPerDay)));
      // Both directions, like the LDBC materialization.
      ds.knows.push_back(Row{Value(p1), Value(p2), created});
      ds.knows.push_back(Row{Value(p2), Value(p1), created});
    }
  }

  // --- forums ---
  const int64_t num_forums = std::max<int64_t>(5, num_persons / 10);
  const int64_t first_forum = 500000;
  ds.first_forum_id = first_forum;
  ds.num_forums = num_forums;
  for (int64_t f = 0; f < num_forums; ++f) {
    ds.forums.push_back(Row{
        Value(first_forum + f),
        Value("Forum about " + RandomContent(&rng, 2)),
        Value(first_person + static_cast<int64_t>(rng.Uniform(
                                 static_cast<uint64_t>(num_persons)))),
        Value(SnbTimestamp(rng.Uniform(kSimulatedDays))),
    });
    // ~16 members per forum.
    uint64_t members = 8 + rng.Uniform(16);
    for (uint64_t m = 0; m < members; ++m) {
      ds.forum_members.push_back(Row{
          Value(first_forum + f),
          Value(first_person + static_cast<int64_t>(rng.Uniform(
                                   static_cast<uint64_t>(num_persons)))),
          Value(SnbTimestamp(rng.Uniform(kSimulatedDays))),
      });
    }
  }

  // --- posts: skewed authorship (a few prolific posters) ---
  const int64_t num_posts = num_persons * 12;
  const int64_t first_post = 1000000;
  ds.first_post_id = first_post;
  ds.num_posts = num_posts;
  ds.posts.reserve(static_cast<size_t>(num_posts));
  for (int64_t i = 0; i < num_posts; ++i) {
    int64_t creator =
        first_person +
        static_cast<int64_t>(rng.Skewed(static_cast<uint64_t>(num_persons), 1.25));
    int words = 4 + static_cast<int>(rng.Uniform(20));
    std::string content = RandomContent(&rng, words);
    int32_t length = static_cast<int32_t>(content.size());
    ds.posts.push_back(Row{
        Value(first_post + i),
        Value(creator),
        Value(first_forum + static_cast<int64_t>(
                                rng.Uniform(static_cast<uint64_t>(num_forums)))),
        Value(SnbTimestamp(rng.Uniform(kSimulatedDays),
                           rng.Uniform(kMicrosPerDay))),
        Value(RandomIp(&rng)),
        Value(std::string(kBrowsers[rng.Uniform(5)])),
        Value(std::move(content)),
        Value(length),
    });
  }

  // --- comments: replies skew toward popular posts ---
  const int64_t num_comments = num_persons * 18;
  const int64_t first_comment = 5000000;
  ds.first_comment_id = first_comment;
  ds.num_comments = num_comments;
  ds.comments.reserve(static_cast<size_t>(num_comments));
  for (int64_t i = 0; i < num_comments; ++i) {
    int64_t creator =
        first_person +
        static_cast<int64_t>(rng.Skewed(static_cast<uint64_t>(num_persons), 1.25));
    int64_t parent =
        first_post +
        static_cast<int64_t>(rng.Skewed(static_cast<uint64_t>(num_posts), 1.2));
    int words = 2 + static_cast<int>(rng.Uniform(12));
    std::string content = RandomContent(&rng, words);
    int32_t length = static_cast<int32_t>(content.size());
    ds.comments.push_back(Row{
        Value(first_comment + i),
        Value(creator),
        Value(SnbTimestamp(rng.Uniform(kSimulatedDays),
                           rng.Uniform(kMicrosPerDay))),
        Value(RandomIp(&rng)),
        Value(std::string(kBrowsers[rng.Uniform(5)])),
        Value(std::move(content)),
        Value(length),
        Value(parent),
    });
  }

  return ds;
}

}  // namespace snb
}  // namespace idf
