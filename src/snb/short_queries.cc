#include "snb/short_queries.h"

namespace idf {
namespace snb {

Result<SnbContext> MakeSnbContext(SessionPtr session, SnbDataset dataset) {
  SnbContext ctx;
  ctx.session = session;

  // Vanilla side: create + cache (columnar), as the paper's baseline does.
  IDF_ASSIGN_OR_RETURN(DataFrame person_raw,
                       session->CreateDataFrame(PersonSchema(), dataset.persons,
                                                "person"));
  IDF_ASSIGN_OR_RETURN(ctx.person, person_raw.Cache("person"));
  IDF_ASSIGN_OR_RETURN(DataFrame knows_raw,
                       session->CreateDataFrame(KnowsSchema(), dataset.knows,
                                                "person_knows_person"));
  IDF_ASSIGN_OR_RETURN(ctx.knows, knows_raw.Cache("person_knows_person"));
  IDF_ASSIGN_OR_RETURN(DataFrame post_raw,
                       session->CreateDataFrame(PostSchema(), dataset.posts,
                                                "post"));
  IDF_ASSIGN_OR_RETURN(ctx.post, post_raw.Cache("post"));
  IDF_ASSIGN_OR_RETURN(DataFrame comment_raw,
                       session->CreateDataFrame(CommentSchema(), dataset.comments,
                                                "comment"));
  IDF_ASSIGN_OR_RETURN(ctx.comment, comment_raw.Cache("comment"));
  IDF_ASSIGN_OR_RETURN(DataFrame forum_raw,
                       session->CreateDataFrame(ForumSchema(), dataset.forums,
                                                "forum"));
  IDF_ASSIGN_OR_RETURN(ctx.forum, forum_raw.Cache("forum"));
  IDF_ASSIGN_OR_RETURN(
      DataFrame member_raw,
      session->CreateDataFrame(ForumMemberSchema(), dataset.forum_members,
                               "forum_hasMember"));
  IDF_ASSIGN_OR_RETURN(ctx.forum_member, member_raw.Cache("forum_hasMember"));

  // Indexed side. createIndex(...).cache(), per Listing 1.
  auto mk = [](Result<IndexedDataFrame> r,
               std::shared_ptr<IndexedDataFrame>* out) -> Status {
    IDF_RETURN_NOT_OK(r.status());
    *out = std::make_shared<IndexedDataFrame>(std::move(r).ValueUnsafe().Cache());
    return Status::OK();
  };
  IDF_RETURN_NOT_OK(mk(IndexedDataFrame::CreateIndex(person_raw, person::kId,
                                                     "person_by_id"),
                       &ctx.person_by_id));
  IDF_RETURN_NOT_OK(mk(IndexedDataFrame::CreateIndex(knows_raw, knows::kPerson1,
                                                     "knows_by_person1"),
                       &ctx.knows_by_person1));
  IDF_RETURN_NOT_OK(mk(IndexedDataFrame::CreateIndex(post_raw, post::kCreatorId,
                                                     "post_by_creator"),
                       &ctx.post_by_creator));
  IDF_RETURN_NOT_OK(mk(IndexedDataFrame::CreateIndex(post_raw, post::kId,
                                                     "post_by_id"),
                       &ctx.post_by_id));
  IDF_RETURN_NOT_OK(mk(IndexedDataFrame::CreateIndex(
                           comment_raw, comment::kReplyOfPostId,
                           "comment_by_reply"),
                       &ctx.comment_by_reply));

  ctx.dataset = std::move(dataset);
  return ctx;
}

namespace {

Result<RowVec> CollectOf(Result<DataFrame> df) {
  IDF_RETURN_NOT_OK(df.status());
  return df->Collect();
}

// SQ1: profile of a person.
Result<RowVec> Sq1(const SnbContext& ctx, bool indexed, int64_t person_id) {
  DataFrame base = indexed ? ctx.person_by_id->ToDataFrame() : ctx.person;
  IDF_ASSIGN_OR_RETURN(DataFrame filtered,
                       base.Filter(Eq(Col("id"), Lit(Value(person_id)))));
  return CollectOf(filtered.Select({"firstName", "lastName", "gender", "birthday",
                                    "creationDate", "locationIP", "browserUsed",
                                    "cityId"}));
}

// SQ2: recent posts of a person (latest 10).
Result<RowVec> Sq2(const SnbContext& ctx, bool indexed, int64_t person_id) {
  DataFrame base = indexed ? ctx.post_by_creator->ToDataFrame() : ctx.post;
  IDF_ASSIGN_OR_RETURN(DataFrame filtered,
                       base.Filter(Eq(Col("creatorId"), Lit(Value(person_id)))));
  IDF_ASSIGN_OR_RETURN(DataFrame sorted,
                       filtered.OrderBy("creationDate", /*ascending=*/false));
  IDF_ASSIGN_OR_RETURN(DataFrame limited, sorted.Limit(10));
  return CollectOf(limited.Select({"id", "content", "creationDate"}));
}

// SQ3: friends of a person (friend profile + friendship date). The edge
// side is projected first so the friendship date survives the join under
// an unambiguous name.
Result<RowVec> Sq3(const SnbContext& ctx, bool indexed, int64_t person_id) {
  DataFrame edges_raw;
  if (indexed) {
    // knows lookup feeds an indexed join against person_by_id (the index
    // is the build side; the lookup result is the tiny probe side).
    edges_raw = ctx.knows_by_person1->GetRows(Value(person_id));
  } else {
    IDF_ASSIGN_OR_RETURN(edges_raw, ctx.knows.Filter(Eq(Col("person1Id"),
                                                        Lit(Value(person_id)))));
  }
  IDF_ASSIGN_OR_RETURN(
      DataFrame edges,
      edges_raw.SelectExprs({Col("person2Id"), Col("creationDate")},
                            {"person2Id", "friendshipDate"}));
  DataFrame joined;
  if (indexed) {
    IDF_ASSIGN_OR_RETURN(joined, ctx.person_by_id->Join(edges, "id", "person2Id"));
  } else {
    IDF_ASSIGN_OR_RETURN(joined, ctx.person.Join(edges, "id", "person2Id"));
  }
  IDF_ASSIGN_OR_RETURN(DataFrame sorted,
                       joined.OrderBy("friendshipDate", /*ascending=*/false));
  return CollectOf(sorted.Select({"id", "firstName", "lastName",
                                  "friendshipDate"}));
}

// SQ4: content of a message (post by id).
Result<RowVec> Sq4(const SnbContext& ctx, bool indexed, int64_t post_id) {
  DataFrame base = indexed ? ctx.post_by_id->ToDataFrame() : ctx.post;
  IDF_ASSIGN_OR_RETURN(DataFrame filtered,
                       base.Filter(Eq(Col("id"), Lit(Value(post_id)))));
  return CollectOf(filtered.Select({"creationDate", "content"}));
}

// SQ5: creator of a message (comment by id -> person). comment.id carries
// no index, so both engines scan the comment table (Figure 3: SQ5 shows no
// indexed speedup).
Result<RowVec> Sq5(const SnbContext& ctx, bool indexed, int64_t comment_id) {
  DataFrame comment_base =
      indexed ? ctx.comment_by_reply->ToDataFrame() : ctx.comment;
  DataFrame person_base = indexed ? ctx.person_by_id->ToDataFrame() : ctx.person;
  IDF_ASSIGN_OR_RETURN(DataFrame filtered,
                       comment_base.Filter(Eq(Col("id"), Lit(Value(comment_id)))));
  IDF_ASSIGN_OR_RETURN(DataFrame joined,
                       person_base.Join(filtered, "id", "creatorId"));
  return CollectOf(joined.Select({"id", "firstName", "lastName"}));
}

// SQ6: forum of a message and its moderator. The LDBC traversal walks the
// reply chain up to the containing forum — a path the Indexed DataFrame's
// indexes do not cover (the paper: SQ6 "cannot make use of the index").
// Both engines therefore run the same join pipeline over the post/forum/
// person tables; only the comment source differs (columnar cache vs. the
// indexed row batches), and the entry filter on comment.id is a scan
// either way.
Result<RowVec> Sq6(const SnbContext& ctx, bool indexed, int64_t comment_id) {
  DataFrame comment_base =
      indexed ? ctx.comment_by_reply->ToDataFrame() : ctx.comment;
  IDF_ASSIGN_OR_RETURN(DataFrame filtered,
                       comment_base.Filter(Eq(Col("id"), Lit(Value(comment_id)))));
  IDF_ASSIGN_OR_RETURN(DataFrame with_post,
                       ctx.post.Join(filtered, "id", "replyOfPostId"));
  IDF_ASSIGN_OR_RETURN(DataFrame with_forum,
                       ctx.forum.Join(with_post, "id", "forumId"));
  IDF_ASSIGN_OR_RETURN(DataFrame with_moderator,
                       ctx.person.Join(with_forum, "id", "moderatorId"));
  return CollectOf(with_moderator.SelectExprs(
      {Col("title"), Col("firstName"), Col("lastName")},
      {"forumTitle", "moderatorFirstName", "moderatorLastName"}));
}

// SQ7: replies to a message with their authors, newest reply first.
Result<RowVec> Sq7(const SnbContext& ctx, bool indexed, int64_t post_id) {
  DataFrame replies_raw;
  if (indexed) {
    replies_raw = ctx.comment_by_reply->GetRows(Value(post_id));
  } else {
    IDF_ASSIGN_OR_RETURN(replies_raw, ctx.comment.Filter(Eq(Col("replyOfPostId"),
                                                            Lit(Value(post_id)))));
  }
  IDF_ASSIGN_OR_RETURN(
      DataFrame replies,
      replies_raw.SelectExprs({Col("creatorId"), Col("creationDate"),
                               Col("content")},
                              {"creatorId", "replyDate", "replyContent"}));
  DataFrame joined;
  if (indexed) {
    IDF_ASSIGN_OR_RETURN(joined, ctx.person_by_id->Join(replies, "id", "creatorId"));
  } else {
    IDF_ASSIGN_OR_RETURN(joined, ctx.person.Join(replies, "id", "creatorId"));
  }
  IDF_ASSIGN_OR_RETURN(DataFrame sorted,
                       joined.OrderBy("replyDate", /*ascending=*/false));
  return CollectOf(sorted.SelectExprs(
      {Col("replyContent"), Col("firstName"), Col("lastName")},
      {"replyContent", "authorFirstName", "authorLastName"}));
}

}  // namespace

Result<RowVec> RunShortQuery(const SnbContext& ctx, int query_no, bool indexed,
                             int64_t param) {
  switch (query_no) {
    case 1:
      return Sq1(ctx, indexed, param);
    case 2:
      return Sq2(ctx, indexed, param);
    case 3:
      return Sq3(ctx, indexed, param);
    case 4:
      return Sq4(ctx, indexed, param);
    case 5:
      return Sq5(ctx, indexed, param);
    case 6:
      return Sq6(ctx, indexed, param);
    case 7:
      return Sq7(ctx, indexed, param);
    default:
      return Status::InvalidArgument("short query number must be 1..7, got " +
                                     std::to_string(query_no));
  }
}

int64_t DefaultParam(const SnbContext& ctx, int query_no) {
  switch (query_no) {
    case 1:
    case 2:
    case 3:
      return ctx.dataset.MidPersonId();
    case 4:
      return ctx.dataset.MidPostId();
    case 7:
      // Replies skew toward low post ids; pick a hot post so the result
      // set is non-trivial.
      return ctx.dataset.first_post_id + 3;
    case 5:
    case 6:
      return ctx.dataset.MidCommentId();
    default:
      return 0;
  }
}

const char* ShortQueryDescription(int query_no) {
  switch (query_no) {
    case 1:
      return "SQ1 person profile (person.id lookup)";
    case 2:
      return "SQ2 recent posts of person (post.creatorId lookup + top-10)";
    case 3:
      return "SQ3 friends of person (knows lookup + indexed person join)";
    case 4:
      return "SQ4 message content (post.id lookup)";
    case 5:
      return "SQ5 message creator (comment.id scan - no usable index)";
    case 6:
      return "SQ6 forum of message (comment/forum scans - no usable index)";
    case 7:
      return "SQ7 replies of message (comment.replyOfPostId lookup + join)";
    default:
      return "unknown";
  }
}

}  // namespace snb
}  // namespace idf
