#include "snb/tables.h"

namespace idf {
namespace snb {

SchemaPtr PersonSchema() {
  return Schema::Make({
      {"id", TypeId::kInt64, false},
      {"firstName", TypeId::kString, false},
      {"lastName", TypeId::kString, false},
      {"gender", TypeId::kString, false},
      {"birthday", TypeId::kTimestamp, false},
      {"creationDate", TypeId::kTimestamp, false},
      {"locationIP", TypeId::kString, false},
      {"browserUsed", TypeId::kString, false},
      {"cityId", TypeId::kInt64, false},
  });
}

SchemaPtr KnowsSchema() {
  return Schema::Make({
      {"person1Id", TypeId::kInt64, false},
      {"person2Id", TypeId::kInt64, false},
      {"creationDate", TypeId::kTimestamp, false},
  });
}

SchemaPtr PostSchema() {
  return Schema::Make({
      {"id", TypeId::kInt64, false},
      {"creatorId", TypeId::kInt64, false},
      {"forumId", TypeId::kInt64, false},
      {"creationDate", TypeId::kTimestamp, false},
      {"locationIP", TypeId::kString, false},
      {"browserUsed", TypeId::kString, false},
      {"content", TypeId::kString, false},
      {"length", TypeId::kInt32, false},
  });
}

SchemaPtr CommentSchema() {
  return Schema::Make({
      {"id", TypeId::kInt64, false},
      {"creatorId", TypeId::kInt64, false},
      {"creationDate", TypeId::kTimestamp, false},
      {"locationIP", TypeId::kString, false},
      {"browserUsed", TypeId::kString, false},
      {"content", TypeId::kString, false},
      {"length", TypeId::kInt32, false},
      {"replyOfPostId", TypeId::kInt64, false},
  });
}

SchemaPtr ForumSchema() {
  return Schema::Make({
      {"id", TypeId::kInt64, false},
      {"title", TypeId::kString, false},
      {"moderatorId", TypeId::kInt64, false},
      {"creationDate", TypeId::kTimestamp, false},
  });
}

SchemaPtr ForumMemberSchema() {
  return Schema::Make({
      {"forumId", TypeId::kInt64, false},
      {"personId", TypeId::kInt64, false},
      {"joinDate", TypeId::kTimestamp, false},
  });
}

}  // namespace snb
}  // namespace idf
