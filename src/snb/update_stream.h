// UpdateStreamGenerator: produces the continuous insert stream that the
// paper feeds through Kafka — new knows-edges, posts, and comments that
// keep the graph growing while queries run.
#pragma once

#include "common/hash.h"
#include "snb/datagen.h"

namespace idf {
namespace snb {

enum class UpdateKind : uint8_t { kKnowsEdge, kPost, kComment };

class UpdateStreamGenerator {
 public:
  /// `base` supplies the id ranges to extend; the generator continues them
  /// deterministically (seeded from the dataset's seed).
  explicit UpdateStreamGenerator(const SnbDataset& base);

  /// Next batch of `n` knows edges (both directions; 2n rows).
  RowVec NextKnowsBatch(size_t n);

  /// Next batch of `n` posts by existing persons (fresh post ids).
  RowVec NextPostBatch(size_t n);

  /// Next batch of `n` comments replying to existing or fresh posts.
  RowVec NextCommentBatch(size_t n);

  int64_t next_post_id() const { return next_post_id_; }
  int64_t next_comment_id() const { return next_comment_id_; }

 private:
  int64_t RandomPersonId();

  Random64 rng_;
  int64_t first_person_id_;
  int64_t num_persons_;
  int64_t first_post_id_;
  int64_t next_post_id_;
  int64_t next_comment_id_;
  int64_t first_forum_id_;
  int64_t num_forums_;
  uint64_t day_ = 0;
};

}  // namespace snb
}  // namespace idf
